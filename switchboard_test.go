// Facade-level integration tests: everything here uses only the public
// switchboard API, exactly as a downstream user would.
package switchboard_test

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"switchboard"
)

var (
	pipeOnce sync.Once
	pipe     struct {
		world *switchboard.World
		db    *switchboard.RecordsDB
		recs  []*switchboard.CallRecord
		in    *switchboard.ProvisionInputs
		lm    *switchboard.LoadModel
		plan  *switchboard.Plan
		alloc *switchboard.AllocationPlan
		err   error
	}
)

// buildPipeline runs the full public-API pipeline once and caches it.
func buildPipeline(t *testing.T) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe.world = switchboard.DefaultWorld()
		tc := switchboard.DefaultTraceConfig()
		tc.Days = 1
		tc.CallsPerDay = 1200
		gen, err := switchboard.NewGenerator(tc)
		if err != nil {
			pipe.err = err
			return
		}
		pipe.db = switchboard.NewRecordsDB(tc.Start, pipe.world)
		gen.EachCall(func(r *switchboard.CallRecord) bool {
			pipe.db.Add(r)
			pipe.recs = append(pipe.recs, r)
			return true
		})
		pipe.in = &switchboard.ProvisionInputs{
			World:              pipe.world,
			Latency:            pipe.db.Estimator(15),
			Demand:             pipe.db.PeakEnvelope(15),
			LatencyThresholdMs: 120,
			WithBackup:         true,
			SlotStride:         8,
		}
		if pipe.lm, pipe.err = switchboard.NewLoadModel(pipe.in); pipe.err != nil {
			return
		}
		if pipe.plan, pipe.err = switchboard.Provision(pipe.in); pipe.err != nil {
			return
		}
		pipe.alloc, pipe.err = switchboard.BuildAllocationPlan(pipe.lm, pipe.plan.Cores, pipe.plan.LinkGbps)
	})
	if pipe.err != nil {
		t.Fatal(pipe.err)
	}
}

func TestPublicPipelineEndToEnd(t *testing.T) {
	buildPipeline(t)
	if pipe.db.TotalCalls() == 0 {
		t.Fatal("no calls ingested")
	}
	if pipe.plan.TotalCores() <= 0 || pipe.plan.TotalGbps() <= 0 {
		t.Fatalf("degenerate plan: %g cores %g Gbps", pipe.plan.TotalCores(), pipe.plan.TotalGbps())
	}
	if pipe.plan.Cost(pipe.world) <= 0 {
		t.Fatal("zero cost")
	}
	if pipe.alloc.MeanACL <= 0 || pipe.alloc.MeanACL > 120 {
		t.Fatalf("plan mean ACL %g", pipe.alloc.MeanACL)
	}
	// The three schemes keep the Table 3 cost ordering through the facade.
	rr, err := switchboard.ProvisionRoundRobin(pipe.in)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := switchboard.ProvisionLocalityFirst(pipe.in)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.plan.Cost(pipe.world) > lf.Cost(pipe.world)*1.001 ||
		lf.Cost(pipe.world) > rr.Cost(pipe.world) {
		t.Errorf("cost ordering violated: sb=%g lf=%g rr=%g",
			pipe.plan.Cost(pipe.world), lf.Cost(pipe.world), rr.Cost(pipe.world))
	}
}

func TestPublicControllerFlow(t *testing.T) {
	buildPipeline(t)
	srv := switchboard.NewKVServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	kv, err := switchboard.DialKV(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	est := pipe.db.Estimator(15)
	aclOf := func(cfg switchboard.CallConfig, dc int) float64 { return est.ACL(cfg, dc) }
	ctrl, err := switchboard.NewController(switchboard.ControllerConfig{
		World:  pipe.world,
		Placer: switchboard.NewPlanPlacer(pipe.lm.Demand().Configs, pipe.alloc.Alloc, aclOf, len(pipe.world.DCs())),
		Store:  kv,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := switchboard.BuildEvents(pipe.recs[:200], ctrl.Freeze())
	stats, err := ctrl.Replay(events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Started == 0 || stats.Ended != stats.Started {
		t.Fatalf("stats = %+v", stats)
	}
	if srv.OpsServed() == 0 {
		t.Error("controller never wrote to the store")
	}
}

func TestPublicSimulator(t *testing.T) {
	buildPipeline(t)
	s, err := switchboard.NewSimulator(pipe.lm, pipe.db.Estimator(15), pipe.plan.Cores, pipe.plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(pipe.recs, &switchboard.GreedyLocalPolicy{LM: pipe.lm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != len(pipe.recs) {
		t.Fatalf("simulated %d of %d", res.Calls, len(pipe.recs))
	}
}

func TestPublicForecasting(t *testing.T) {
	buildPipeline(t)
	top := pipe.db.TopConfigs(1)
	if len(top) == 0 {
		t.Fatal("no configs")
	}
	m, err := switchboard.FitForecastAuto(top[0].Counts, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Forecast(8)
	if len(f) != 8 {
		t.Fatal("bad horizon")
	}
	acc, err := switchboard.EvaluateForecast(f, f)
	if err != nil || acc.RMSE != 0 {
		t.Fatalf("self-comparison RMSE %g, %v", acc.RMSE, err)
	}
}

func TestPublicWorldRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := switchboard.WriteWorld(&buf, switchboard.DefaultWorld()); err != nil {
		t.Fatal(err)
	}
	back, err := switchboard.ReadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.DCs()) != len(switchboard.DefaultWorld().DCs()) {
		t.Fatal("world round trip lost DCs")
	}
}

func TestPublicBackupHelpers(t *testing.T) {
	bk, err := switchboard.DefaultBackup([]float64{100, 110, 110})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, b := range bk {
		total += b
	}
	if math.Abs(total-160) > 1e-6 {
		t.Errorf("backup total %g, want 160", total)
	}
	caps, err := switchboard.PeakAwareBackup([][]float64{
		{100, 60, 20}, {30, 110, 60}, {20, 40, 110},
	})
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, c := range caps {
		total += c
	}
	if math.Abs(total-320) > 1e-6 {
		t.Errorf("peak-aware total %g, want 320", total)
	}
}

func TestPublicConfigHelpers(t *testing.T) {
	cfg := switchboard.CallConfig{
		Spread: switchboard.NewSpread(map[switchboard.CountryCode]int{"IN": 2, "JP": 1}),
		Media:  switchboard.Video,
	}
	back, err := switchboard.ParseConfigKey(cfg.Key())
	if err != nil || back.Key() != cfg.Key() {
		t.Fatalf("round trip: %v %v", back.Key(), err)
	}
	if cfg.Participants() != 3 {
		t.Error("participants wrong")
	}
}

func TestPublicEventsAndThroughput(t *testing.T) {
	buildPipeline(t)
	events := switchboard.BuildEvents(pipe.recs[:100], 300*time.Second)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	srv := switchboard.NewKVServer()
	srv.SetSimulatedLatency(300 * time.Microsecond)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	res, err := switchboard.BenchControllerThroughput(l.Addr().String(), 2, events, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsPerSec <= 0 || res.Normalized <= 0 {
		t.Fatalf("res = %+v", res)
	}
}
