// Package switchboard is a from-scratch reproduction of "Switchboard:
// Efficient Resource Management for Conferencing Services" (Bothra et al.,
// ACM SIGCOMM 2023): a controller that provisions media-processing compute
// and WAN bandwidth for a global conferencing service and assigns every call
// to a datacenter, exploiting three ideas — peak-aware provisioning across
// time zones, joint compute+network optimization, and application-level
// (call-configuration) forecasting.
//
// This package is the public facade: it re-exports the domain types and
// wires the subsystems (see DESIGN.md for the full inventory):
//
//   - world model and cost tables (internal/geo)
//   - call configs, media-type load table (internal/model)
//   - synthetic Teams-like workload generation (internal/trace)
//   - call records database and latency estimation (internal/records)
//   - Holt-Winters demand forecasting (internal/forecast)
//   - RR / LF baselines and the Switchboard LP (internal/provision),
//     solved by a from-scratch simplex (internal/lp)
//   - the daily allocation plan (internal/allocate)
//   - the realtime controller and its RESP kvstore (internal/controller,
//     internal/kvstore)
//   - the recurring-meeting config predictor (internal/predict)
//   - the experiment harness regenerating every paper table and figure
//     (internal/eval)
//   - realtime-path telemetry: metrics, decision tracing, pprof
//     (internal/obs, served by cmd/switchboard -debug-addr)
//
// Quickstart:
//
//	world := switchboard.DefaultWorld()
//	gen, _ := switchboard.NewGenerator(switchboard.DefaultTraceConfig())
//	db := switchboard.NewRecordsDB(gen.Config().Start, world)  // via TraceConfig.Start
//	gen.EachCall(func(r *switchboard.CallRecord) bool { db.Add(r); return true })
//	in := &switchboard.ProvisionInputs{
//		World:              world,
//		Latency:            db.Estimator(30),
//		Demand:             db.PeakEnvelope(50),
//		LatencyThresholdMs: 120,
//		WithBackup:         true,
//	}
//	plan, _ := switchboard.Provision(in)
//	fmt.Println(plan.TotalCores(), plan.TotalGbps(), plan.Cost(world))
//
// See examples/ for runnable programs.
package switchboard

import (
	"io"
	"time"

	"switchboard/internal/allocate"
	"switchboard/internal/controller"
	"switchboard/internal/eval"
	"switchboard/internal/forecast"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/predict"
	"switchboard/internal/provision"
	"switchboard/internal/records"
	"switchboard/internal/sim"
	"switchboard/internal/trace"
)

// World model.
type (
	// World is the set of countries, datacenters, WAN links, and routing.
	World = geo.World
	// Country is one participant location.
	Country = geo.Country
	// CountryCode identifies a country ("US", "IN", ...).
	CountryCode = geo.CountryCode
	// DC is a datacenter hosting MP capacity.
	DC = geo.DC
	// Link is one inter-country WAN edge.
	Link = geo.Link
	// LinkSpec declares a link when building a custom world.
	LinkSpec = geo.LinkSpec
	// Region is a coarse service region (AMER, EMEA, APAC).
	Region = geo.Region
)

// Regions.
const (
	AMER = geo.AMER
	EMEA = geo.EMEA
	APAC = geo.APAC
)

// DefaultWorld returns the built-in 44-country, 12-DC world.
func DefaultWorld() *World { return geo.DefaultWorld() }

// NewWorld builds a custom world from explicit data.
func NewWorld(countries []Country, dcs []DC, links []LinkSpec) (*World, error) {
	return geo.NewWorld(countries, dcs, links)
}

// ReadWorld decodes a JSON world definition (see geo.WorldSpec).
func ReadWorld(r io.Reader) (*World, error) { return geo.ReadWorld(r) }

// WriteWorld encodes a world definition as indented JSON.
func WriteWorld(w io.Writer, world *World) error { return geo.WriteWorld(w, world) }

// Domain types.
type (
	// MediaType is a call's richest stream kind (audio/screen-share/video).
	MediaType = model.MediaType
	// CallConfig is the unit of forecasting and provisioning (§5.1).
	CallConfig = model.CallConfig
	// Spread is a config's per-country participant histogram.
	Spread = model.Spread
	// CountryCount is one spread element.
	CountryCount = model.CountryCount
	// CallRecord is one completed call's stored metadata.
	CallRecord = model.CallRecord
	// LegRecord is one participant's connection to the MP server.
	LegRecord = model.LegRecord
)

// Media types.
const (
	Audio       = model.Audio
	ScreenShare = model.ScreenShare
	Video       = model.Video
)

// NewSpread builds a canonical spread from per-country counts.
func NewSpread(counts map[CountryCode]int) Spread { return model.NewSpread(counts) }

// ParseConfigKey parses a CallConfig.Key() encoding.
func ParseConfigKey(key string) (CallConfig, error) { return model.ParseConfigKey(key) }

// Workload generation.
type (
	// TraceConfig parameterizes the synthetic workload generator.
	TraceConfig = trace.Config
	// Generator produces a deterministic Teams-like call trace.
	Generator = trace.Generator
)

// DefaultTraceConfig returns the generator parameters the experiments use.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// NewGenerator validates the config and returns a trace generator.
func NewGenerator(cfg TraceConfig) (*Generator, error) { return trace.NewGenerator(cfg) }

// Records and demand.
type (
	// RecordsDB is the call records database (§5's building block 1).
	RecordsDB = records.DB
	// ConfigSeries is a config with its per-slot demand series.
	ConfigSeries = records.ConfigSeries
	// Demand is the provisioning input envelope.
	Demand = records.Demand
	// LatencyEstimator answers Lat(x, u) from pooled observations.
	LatencyEstimator = records.LatencyEstimator
)

// NewRecordsDB returns an empty records database anchored at origin.
func NewRecordsDB(origin time.Time, world *World) *RecordsDB { return records.New(origin, world) }

// LoadRecordsDB reads a snapshot written with RecordsDB.Save; the world must
// match the one the data was built with.
func LoadRecordsDB(r io.Reader, world *World) (*RecordsDB, error) { return records.Load(r, world) }

// EnvelopeFromSeries builds a provisioning demand envelope from explicit
// (observed or forecast) config series.
func EnvelopeFromSeries(series []ConfigSeries, cushion float64) *Demand {
	return records.EnvelopeFromSeries(series, cushion)
}

// Forecasting.
type (
	// ForecastModel is a fitted Holt-Winters state.
	ForecastModel = forecast.Model
	// ForecastAccuracy holds RMSE/MAE metrics (§6.5).
	ForecastAccuracy = forecast.Accuracy
)

// FitForecast fits Holt-Winters with fixed smoothing parameters.
func FitForecast(series []float64, season int, alpha, beta, gamma float64) (*ForecastModel, error) {
	return forecast.Fit(series, season, alpha, beta, gamma)
}

// FitForecastAuto grid-searches the smoothing parameters.
func FitForecastAuto(series []float64, season int) (*ForecastModel, error) {
	return forecast.FitAuto(series, season)
}

// EvaluateForecast compares a forecast with ground truth.
func EvaluateForecast(f, truth []float64) (ForecastAccuracy, error) {
	return forecast.Evaluate(f, truth)
}

// SeasonalNaiveForecast repeats the last observed season (baseline).
func SeasonalNaiveForecast(series []float64, season, horizon int) ([]float64, error) {
	return forecast.SeasonalNaive(series, season, horizon)
}

// DriftForecast extends the line through the first and last observations
// (baseline).
func DriftForecast(series []float64, horizon int) ([]float64, error) {
	return forecast.Drift(series, horizon)
}

// CompareForecasts scores Holt-Winters against the naive baselines on a
// train/test split.
func CompareForecasts(train, test []float64, season int) (*forecast.Comparison, error) {
	return forecast.Compare(train, test, season)
}

// Provisioning.
type (
	// ProvisionInputs bundles a provisioner's inputs.
	ProvisionInputs = provision.Inputs
	// Plan is a provisioning decision (cores per DC, Gbps per link).
	Plan = provision.Plan
	// LoadModel precomputes per-(config, DC) loads and ACLs.
	LoadModel = provision.LoadModel
	// FailureScenario is a set of DCs and links down simultaneously.
	FailureScenario = provision.Scenario
)

// Provision runs the Switchboard LP (Eq 3-9 with Eq 7-8 scenario maxima).
func Provision(in *ProvisionInputs) (*Plan, error) { return provision.Switchboard(in) }

// ProvisionRoundRobin runs the §3.1 baseline.
func ProvisionRoundRobin(in *ProvisionInputs) (*Plan, error) { return provision.RoundRobin(in) }

// ProvisionRoundRobinWeighted runs weighted round-robin with per-DC weights.
func ProvisionRoundRobinWeighted(in *ProvisionInputs, weights []float64) (*Plan, error) {
	return provision.RoundRobinWeighted(in, weights)
}

// ProvisionLocalityFirst runs the §3.2 baseline.
func ProvisionLocalityFirst(in *ProvisionInputs) (*Plan, error) { return provision.LocalityFirst(in) }

// NewLoadModel builds the shared load-accounting model.
func NewLoadModel(in *ProvisionInputs) (*LoadModel, error) { return provision.NewLoadModel(in) }

// DefaultBackup solves the §3.2 backup LP for given per-DC serving peaks.
func DefaultBackup(serving []float64) ([]float64, error) { return provision.DefaultBackup(serving) }

// PeakAwareBackup solves the §4.2 peak-aware capacity LP over a per-slot,
// per-DC demand matrix.
func PeakAwareBackup(demand [][]float64) ([]float64, error) {
	return provision.PeakAwareBackup(demand)
}

// Allocation plan.
type (
	// AllocationPlan is the daily latency-optimized allocation (Eq 10).
	AllocationPlan = allocate.Result
)

// BuildAllocationPlan computes the per-slot allocation within capacities.
func BuildAllocationPlan(lm *LoadModel, cores, linkGbps []float64) (*AllocationPlan, error) {
	return allocate.Build(lm, cores, linkGbps)
}

// Realtime controller.
type (
	// Controller is the realtime MP selector (§5.4).
	Controller = controller.Controller
	// ControllerConfig parameterizes a Controller.
	ControllerConfig = controller.Config
	// ControllerStats summarizes controller activity.
	ControllerStats = controller.Stats
	// Placer decides planned placements for known configs.
	Placer = controller.Placer
	// PlanPlacer tracks an allocation plan's remaining slots.
	PlanPlacer = controller.PlanPlacer
	// MinACLPlacer is the locality-first placement policy.
	MinACLPlacer = controller.MinACLPlacer
	// Event is one replayable controller input.
	Event = controller.Event
	// ThroughputResult is one Fig 10 benchmark run.
	ThroughputResult = controller.ThroughputResult
)

// NewController returns a realtime controller.
func NewController(cfg ControllerConfig) (*Controller, error) { return controller.New(cfg) }

// NewPlanPlacer indexes an allocation plan for slot accounting.
func NewPlanPlacer(configs []CallConfig, alloc [][][]float64, aclOf func(CallConfig, int) float64, nDCs int) *PlanPlacer {
	return controller.NewPlanPlacer(configs, alloc, aclOf, nDCs)
}

// BuildEvents expands call records into a time-ordered event stream.
func BuildEvents(recs []*CallRecord, freeze time.Duration) []Event {
	return controller.BuildEvents(recs, freeze)
}

// BenchControllerThroughput measures sustained controller write throughput
// against a kvstore at addr with the given worker count. targetRate (events
// per second) is the normalization denominator; 0 uses the replayed trace's
// own peak rate.
func BenchControllerThroughput(addr string, workers int, events []Event, targetRate float64) (ThroughputResult, error) {
	return controller.BenchThroughput(addr, workers, events, targetRate)
}

// Call-level simulation.
type (
	// Simulator replays individual calls against provisioned capacities.
	Simulator = sim.Simulator
	// SimResult summarizes one simulation run.
	SimResult = sim.Result
	// SimPolicy chooses the hosting DC for each arriving call.
	SimPolicy = sim.Policy
	// SimUsage is the simulator's live resource view.
	SimUsage = sim.Usage
	// GreedyLocalPolicy is the realtime analogue of locality-first.
	GreedyLocalPolicy = sim.GreedyLocalPolicy
	// SimPlanPolicy follows a daily allocation plan's quotas.
	SimPlanPolicy = sim.PlanPolicy
	// Predictor forecasts a recurring call's config before joins (§8).
	Predictor = controller.Predictor
)

// NewSimulator builds a call-level simulator over a load model and
// provisioned capacities.
func NewSimulator(lm *LoadModel, est *LatencyEstimator, capCores, capGbps []float64) (*Simulator, error) {
	return sim.New(lm, est, capCores, capGbps)
}

// KV store.
type (
	// KVServer is the RESP-speaking in-memory store.
	KVServer = kvstore.Server
	// KVClient is a pipelining kvstore client.
	KVClient = kvstore.Client
	// KVOptions tunes the client's deadlines and redial/backoff policy.
	KVOptions = kvstore.Options
)

// NewKVServer returns an empty store.
func NewKVServer() *KVServer { return kvstore.NewServer() }

// DialKV connects a client to a kvstore (or Redis) server.
func DialKV(addr string) (*KVClient, error) { return kvstore.Dial(addr) }

// DialKVOptions connects a client with explicit robustness options.
func DialKVOptions(addr string, opts KVOptions) (*KVClient, error) {
	return kvstore.DialOptions(addr, opts)
}

// DialKVFailover connects to the first reachable address of an HA pair (or
// larger set) and fails over across the rest on transport errors and MOVED
// redirects. The usual shape is {primary, standby}.
func DialKVFailover(addrs []string, opts KVOptions) (*KVClient, error) {
	return kvstore.DialFailover(addrs, opts)
}

// Config prediction (§8).
type (
	// PredictDataset is recurring-meeting attendance history.
	PredictDataset = predict.Dataset
	// PredictModel is the trained MOMC + logistic-regression predictor.
	PredictModel = predict.Model
)

// BuildPredictDataset derives attendance matrices from series records.
func BuildPredictDataset(series map[uint64][]*CallRecord, minInstances int) *PredictDataset {
	return predict.BuildDataset(series, minInstances)
}

// TrainPredictor fits the attendance model.
func TrainPredictor(ds *PredictDataset) (*PredictModel, error) {
	return predict.Train(ds, predict.TrainOptions{})
}

// Experiments.
type (
	// EvalConfig scales an experiment environment.
	EvalConfig = eval.Config
	// EvalEnv is a built experiment environment.
	EvalEnv = eval.Env
)

// DefaultEvalConfig is the scale the committed EXPERIMENTS.md numbers use.
func DefaultEvalConfig() EvalConfig { return eval.DefaultConfig() }

// QuickEvalConfig is a reduced scale for fast runs.
func QuickEvalConfig() EvalConfig { return eval.QuickConfig() }

// NewEvalEnv generates the experiment trace and databases.
func NewEvalEnv(cfg EvalConfig) (*EvalEnv, error) { return eval.NewEnv(cfg) }
