package main

import (
	"strings"
	"testing"
	"time"

	"switchboard/internal/httpapi"
	"switchboard/internal/obs"
)

func testSample(at time.Time, started uint64) *sample {
	return &sample{
		at: at,
		fleet: httpapi.FleetMetrics{
			Self: "10.0.0.1:8077",
			Instances: []httpapi.FleetInstance{
				{Instance: "10.0.0.1:8077"},
				{Instance: "10.0.0.2:8077"},
				{Instance: "10.0.0.3:8077", Stale: true, AgeMs: 2500, Error: "dial tcp: connection refused"},
			},
			Families: []obs.SnapFamily{
				{Name: "sb_controller_active_calls", Kind: "gauge",
					Points: []obs.SnapPoint{{Value: 12}, {Value: 30}}},
				{Name: "sb_controller_calls_started_total", Kind: "counter",
					Points: []obs.SnapPoint{{Count: started}}},
				{Name: "sb_controller_journal_depth", Kind: "gauge",
					Points: []obs.SnapPoint{{Value: 3}}},
				{Name: "sb_controller_place_seconds", Kind: "histogram",
					Bounds: []float64{0.001, 0.01, 0.1},
					Points: []obs.SnapPoint{{
						Count: 100, Sum: 0.5,
						Buckets: []uint64{90, 9, 1, 0},
						Exemplars: []obs.SnapExemplar{
							{Bucket: 2, Trace: "00000000deadbeef", Value: 0.042},
						},
					}}},
				{Name: "slo_placement_latency_burn", Kind: "gauge", LabelNames: []string{"window"},
					Points: []obs.SnapPoint{{Labels: []string{"5m"}, Value: 0.25}}},
			},
		},
		shards: &shardsView{
			Shards:    2,
			Self:      "10.0.0.1:8077",
			RingEpoch: 2,
			Phase:     "journal-handoff",
			Migration: &migration{From: 2, To: 3, Phase: "journal-handoff", Copied: 8, Total: 16},
			Map: []struct {
				Shard  int    `json:"shard"`
				Owned  bool   `json:"owned"`
				Leader string `json:"leader"`
				Epoch  int64  `json:"epoch"`
			}{
				{Shard: 0, Owned: true, Leader: "10.0.0.1:8077", Epoch: 4},
				{Shard: 1, Owned: false, Leader: "10.0.0.2:8077", Epoch: 7},
			},
		},
	}
}

// TestRenderFrame pins the dashboard's load-bearing content: shard leadership
// with epochs, staleness marks, the rate computed from the previous sample,
// the bucket-estimated p99, SLO burn, and the slowest exemplar's trace ID.
func TestRenderFrame(t *testing.T) {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	prev := testSample(t0, 100)
	cur := testSample(t0.Add(2*time.Second), 150)
	frame := renderFrame(prev, cur)

	for _, want := range []string{
		"3 instances (2 live, 1 STALE)",
		"10.0.0.2:8077", // shard 1 leader
		"« here",        // shard 0 is local
		"STALE",
		"last seen 3s ago", // 2500ms rounds to 3s
		"connection refused",
		"placements 25.0/s", // (150-100)/2s
		"p99 place 10.0ms",  // nearest-rank 99 of 100 lands in the (0.001,0.01] bucket
		"journal depth 3",
		"active calls 42",
		"latency[5m]=0.25",
		"trace 00000000deadbeef",
		"slowest placement 42.0ms",
		"ring epoch 2 — RESHARDING (journal-handoff)",
		"2 → 3 shards, 8/16 keys copied (50%)",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q\n%s", want, frame)
		}
	}
	// Epoch column renders both epochs.
	if !strings.Contains(frame, "4") || !strings.Contains(frame, "7") {
		t.Errorf("frame missing epochs:\n%s", frame)
	}

	// First frame: rates degrade to "-" rather than lying.
	first := renderFrame(nil, cur)
	if !strings.Contains(first, "placements -") {
		t.Errorf("first frame should render rate as '-':\n%s", first)
	}

	// A stable fleet renders the epoch line without reshard noise.
	stable := testSample(t0, 100)
	stable.shards.Phase = "stable"
	stable.shards.Migration = nil
	calm := renderFrame(nil, stable)
	if !strings.Contains(calm, "ring epoch 2 — stable") {
		t.Errorf("stable frame missing epoch line:\n%s", calm)
	}
	if strings.Contains(calm, "RESHARDING") {
		t.Errorf("stable frame claims a reshard:\n%s", calm)
	}
}

func TestQuantile(t *testing.T) {
	f := &obs.SnapFamily{
		Bounds: []float64{0.001, 0.01, 0.1},
		Points: []obs.SnapPoint{
			{Buckets: []uint64{50, 0, 0, 0}},
			{Buckets: []uint64{40, 9, 1, 0}},
		},
	}
	if q, ok := quantile(f, 0.5); !ok || q != 0.001 {
		t.Errorf("p50 = %v,%v want 0.001", q, ok)
	}
	if q, ok := quantile(f, 0.99); !ok || q != 0.01 {
		t.Errorf("p99 = %v,%v want 0.01 (rank 99 of 100 is the 99th sample, in bucket 2)", q, ok)
	}
	empty := &obs.SnapFamily{Bounds: []float64{1}, Points: []obs.SnapPoint{{Buckets: []uint64{0, 0}}}}
	if _, ok := quantile(empty, 0.99); ok {
		t.Error("empty histogram must report no quantile")
	}
}
