// Command sbtop is a live terminal dashboard for a switchboard fleet. It
// polls one node's /metrics/fleet (the label-wise merged view across every
// shard peer, with per-instance staleness) and /v1/shards (the leadership
// map), and redraws a compact operator view each interval:
//
//   - per-shard leader and lease epoch (an epoch climbing fast means churn)
//   - placement rate (calls/s, from the started-counter delta) and the p99
//     placement latency estimated from the fleet-merged histogram
//   - journal depth, active calls, kv retries, and SLO burn rates
//   - the slowest placement's exemplar trace ID, ready to paste into
//     sbtrace or /debug/spans?trace=
//
// Usage:
//
//	sbtop -addr 127.0.0.1:8077
//	sbtop -addr 127.0.0.1:8077 -once        # one frame, no screen control
//	sbtop -addr 127.0.0.1:8077 -interval 2s
//
// The node answering -addr must serve the fleet endpoints (any switchboard
// node does); a 404 on /v1/shards just means the deployment is unsharded and
// the shard table is omitted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"switchboard/internal/httpapi"
	"switchboard/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "switchboard API address to poll")
	interval := flag.Duration("interval", time.Second, "poll/redraw interval")
	once := flag.Bool("once", false, "print a single frame and exit (no screen control)")
	frames := flag.Int("frames", 0, "exit after this many frames (0 = run until interrupted)")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *sample
	drawn := 0
	for {
		cur, err := poll(client, *addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbtop: %v\n", err)
			if *once {
				os.Exit(1)
			}
			time.Sleep(*interval)
			continue
		}
		frame := renderFrame(prev, cur)
		if *once {
			fmt.Print(frame)
			return
		}
		// Home the cursor and clear below, rather than wiping the whole
		// screen: no flicker at 1 Hz redraw.
		fmt.Print("\x1b[H\x1b[J" + frame)
		drawn++
		if *frames > 0 && drawn >= *frames {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}

// shardsView is the subset of /v1/shards sbtop renders.
type shardsView struct {
	Shards    int        `json:"shards"`
	Self      string     `json:"self"`
	RingEpoch int64      `json:"ring_epoch"`
	Phase     string     `json:"phase"`
	Migration *migration `json:"migration"`
	Map       []struct {
		Shard  int    `json:"shard"`
		Owned  bool   `json:"owned"`
		Leader string `json:"leader"`
		Epoch  int64  `json:"epoch"`
	} `json:"map"`
}

// migration mirrors /v1/shards' "migration" object: the reshard
// coordinator's live checkpoint, present only while a split is in flight.
type migration struct {
	From   int    `json:"from"`
	To     int    `json:"to"`
	Phase  string `json:"phase"`
	Copied int64  `json:"copied"`
	Total  int64  `json:"total"`
}

// sample is one poll of the fleet: the merged metric families plus the
// leadership map, stamped with the poll time so deltas turn into rates.
type sample struct {
	at     time.Time
	fleet  httpapi.FleetMetrics
	shards *shardsView // nil when the deployment is unsharded
}

func poll(client *http.Client, addr string) (*sample, error) {
	s := &sample{at: time.Now()}
	if err := getJSON(client, "http://"+addr+"/metrics/fleet", &s.fleet); err != nil {
		return nil, err
	}
	var sv shardsView
	err := getJSON(client, "http://"+addr+"/v1/shards", &sv)
	if err == nil {
		s.shards = &sv
	} else if !strings.Contains(err.Error(), "status 404") {
		return nil, err
	}
	return s, nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderFrame renders one dashboard frame. prev supplies the previous poll
// for rate columns; nil (first frame) renders rates as "-".
func renderFrame(prev, cur *sample) string {
	var b strings.Builder
	live, stale := 0, 0
	for _, inst := range cur.fleet.Instances {
		if inst.Stale {
			stale++
		} else {
			live++
		}
	}
	fmt.Fprintf(&b, "switchboard fleet @ %s  —  self %s  —  %d instances (%d live",
		cur.at.Format("15:04:05"), cur.fleet.Self, live+stale, live)
	if stale > 0 {
		fmt.Fprintf(&b, ", %d STALE", stale)
	}
	b.WriteString(")\n\n")

	renderShards(&b, cur)
	renderInstances(&b, cur)
	renderRates(&b, prev, cur)
	renderSLO(&b, cur)
	renderExemplar(&b, cur)
	return b.String()
}

func renderShards(b *strings.Builder, cur *sample) {
	if cur.shards == nil {
		return
	}
	sv := cur.shards
	if sv.Phase != "" && sv.Phase != "stable" {
		fmt.Fprintf(b, "ring epoch %d — RESHARDING (%s)", sv.RingEpoch, sv.Phase)
		if mig := sv.Migration; mig != nil {
			fmt.Fprintf(b, "  %d → %d shards", mig.From, mig.To)
			if mig.Total > 0 {
				fmt.Fprintf(b, ", %d/%d keys copied (%d%%)", mig.Copied, mig.Total, 100*mig.Copied/mig.Total)
			}
		}
		b.WriteString("\n")
	} else {
		fmt.Fprintf(b, "ring epoch %d — stable\n", sv.RingEpoch)
	}
	fmt.Fprintf(b, "%-6s %-24s %-8s %s\n", "SHARD", "LEADER", "EPOCH", "")
	for _, m := range cur.shards.Map {
		leader := m.Leader
		if leader == "" {
			leader = "(unknown)"
		}
		note := ""
		if m.Owned {
			note = "« here"
		}
		fmt.Fprintf(b, "%-6d %-24s %-8d %s\n", m.Shard, leader, m.Epoch, note)
	}
	b.WriteString("\n")
}

func renderInstances(b *strings.Builder, cur *sample) {
	fmt.Fprintf(b, "%-24s %-10s %s\n", "INSTANCE", "STATUS", "")
	for _, inst := range cur.fleet.Instances {
		status, note := "live", ""
		if inst.Stale {
			status = "STALE"
			if inst.AgeMs > 0 {
				note = fmt.Sprintf("last seen %s ago", (time.Duration(inst.AgeMs) * time.Millisecond).Round(time.Second))
			} else {
				note = "never scraped"
			}
			if inst.Error != "" {
				note += "  (" + truncate(inst.Error, 48) + ")"
			}
		}
		fmt.Fprintf(b, "%-24s %-10s %s\n", inst.Instance, status, note)
	}
	b.WriteString("\n")
}

func renderRates(b *strings.Builder, prev, cur *sample) {
	started := counterTotal(cur.fleet.Families, "sb_controller_calls_started_total")
	retries := counterTotal(cur.fleet.Families, "sb_kvstore_client_retries_total")
	placeRate, retryRate := "-", "-"
	if prev != nil {
		dt := cur.at.Sub(prev.at).Seconds()
		if dt > 0 {
			placeRate = fmt.Sprintf("%.1f/s", rate(started, counterTotal(prev.fleet.Families, "sb_controller_calls_started_total"), dt))
			retryRate = fmt.Sprintf("%.1f/s", rate(retries, counterTotal(prev.fleet.Families, "sb_kvstore_client_retries_total"), dt))
		}
	}
	p99 := "-"
	if f := findFamily(cur.fleet.Families, "sb_controller_place_seconds"); f != nil {
		if q, ok := quantile(f, 0.99); ok {
			p99 = formatSeconds(q)
		}
	}
	fmt.Fprintf(b, "placements %-12s p99 place %-10s journal depth %-8.0f active calls %-8.0f kv retries %d (%s)\n\n",
		placeRate, p99,
		gaugeTotal(cur.fleet.Families, "sb_controller_journal_depth"),
		gaugeTotal(cur.fleet.Families, "sb_controller_active_calls"),
		retries, retryRate)
}

func renderSLO(b *strings.Builder, cur *sample) {
	lat := findFamily(cur.fleet.Families, "slo_placement_latency_burn")
	avail := findFamily(cur.fleet.Families, "slo_availability_burn")
	if lat == nil && avail == nil {
		return
	}
	b.WriteString("SLO burn (×budget, summed across instances):")
	for _, f := range []*obs.SnapFamily{lat, avail} {
		if f == nil {
			continue
		}
		short := "latency"
		if strings.Contains(f.Name, "availability") {
			short = "availability"
		}
		for _, p := range f.Points {
			fmt.Fprintf(b, "  %s[%s]=%.2f", short, strings.Join(p.Labels, ","), p.Value)
		}
	}
	b.WriteString("\n")
}

// renderExemplar surfaces the slowest placement's trace ID — the one-click
// path from "p99 looks bad" to the actual request tree.
func renderExemplar(b *strings.Builder, cur *sample) {
	f := findFamily(cur.fleet.Families, "sb_controller_place_seconds")
	if f == nil {
		return
	}
	var worst *obs.SnapExemplar
	for _, p := range f.Points {
		for i := range p.Exemplars {
			if worst == nil || p.Exemplars[i].Value > worst.Value {
				worst = &p.Exemplars[i]
			}
		}
	}
	if worst != nil {
		fmt.Fprintf(b, "slowest placement %s  trace %s  (sbtrace or /debug/spans?trace=%s)\n",
			formatSeconds(worst.Value), worst.Trace, worst.Trace)
	}
}

func findFamily(fams []obs.SnapFamily, name string) *obs.SnapFamily {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

func counterTotal(fams []obs.SnapFamily, name string) uint64 {
	f := findFamily(fams, name)
	if f == nil {
		return 0
	}
	var n uint64
	for _, p := range f.Points {
		n += p.Count
	}
	return n
}

func gaugeTotal(fams []obs.SnapFamily, name string) float64 {
	f := findFamily(fams, name)
	if f == nil {
		return 0
	}
	var v float64
	for _, p := range f.Points {
		v += p.Value
	}
	return v
}

func rate(cur, prev uint64, dt float64) float64 {
	if cur < prev {
		return 0 // counter reset (instance restart)
	}
	return float64(cur-prev) / dt
}

// quantile estimates quantile q from a histogram family by summing its points'
// (non-cumulative) buckets and walking to the bucket the target rank falls in,
// reporting that bucket's upper bound — the usual conservative bucket-quantile
// estimate. ok is false when the family holds no observations.
func quantile(f *obs.SnapFamily, q float64) (float64, bool) {
	nb := len(f.Bounds) + 1
	buckets := make([]uint64, nb)
	var total uint64
	for _, p := range f.Points {
		if len(p.Buckets) != nb {
			continue
		}
		for i, c := range p.Buckets {
			buckets[i] += c
			total += c
		}
	}
	if total == 0 {
		return 0, false
	}
	// Nearest-rank: the ceil(q·n)-th observation, 1-indexed.
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			if i < len(f.Bounds) {
				return f.Bounds[i], true
			}
			// Overflow bucket: all we know is it exceeds the last bound.
			return f.Bounds[len(f.Bounds)-1], true
		}
	}
	return f.Bounds[len(f.Bounds)-1], true
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func formatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}
