// Command switchboard runs the realtime MP-selection controller as an HTTP
// service. On startup it bootstraps itself the way the paper's daily offline
// stage does: it builds (or replays) a demand history, runs the provisioning
// LP with failure scenarios, computes the daily allocation plan, and starts
// serving placement decisions backed by a RESP kvstore (in-process by
// default, or an external Redis-compatible store via -kv).
//
// API (see internal/httpapi):
//
//	POST /v1/call/start  {"id": 1, "country": "JP"}
//	  -> {"dc": 8, "dc_name": "tokyo"}
//	POST /v1/call/config {"id": 1, "config": "video|ID:5,JP:3"}
//	  -> {"dc": 9, "dc_name": "singapore", "migrated": true}
//	POST /v1/call/end    {"id": 1}
//	POST /v1/dc/fail     {"dc": 3}
//	POST /v1/dc/recover  {"dc": 3}
//	GET  /v1/stats
//	GET  /v1/world
//	GET  /v1/shards      (sharded: ownership map, ring epoch, migration)
//	POST /v1/reshard     {"target_shards": 4}  (online split; 202 accepted)
//	GET  /v1/reshard     (ring epoch, phase, copy progress)
//	POST /v1/reshard/abort  (pre-cutover rollback)
//	GET  /healthz        (liveness: process is serving)
//	GET  /readyz         (readiness: 503 while the store path is degraded;
//	                      includes SLO burn rates)
//
// With -debug-addr a second listener serves operator endpoints (see
// internal/obs and DESIGN.md "Observability" / "Tracing"):
//
//	GET  /metrics        (Prometheus text exposition 0.0.4, incl. SLO burn gauges)
//	GET  /debug/trace    (last N placement/migration/failover decisions)
//	GET  /debug/spans    (recent spans; ?trace=<hex id> pulls one request's tree)
//	GET  /debug/pprof/*  (net/http/pprof)
//
// Every request through the API is traced (see internal/obs/span): the root
// span fans out to controller and kvstore child spans, and the trace ID rides
// the RESP connection so the store's per-verb timings join the same trace.
// -span-log additionally appends every finished span to a JSONL file that
// cmd/sbtrace turns into waterfalls and critical-path breakdowns. Logs go
// through log/slog and carry trace_id/span_id when the context has a span.
// -profile-dir harvests a bounded ring of rotated pprof snapshots (CPU +
// heap) for post-hoc analysis; it is off by default.
//
// Try it:
//
//	switchboard -addr 127.0.0.1:8077 -debug-addr 127.0.0.1:8078 -span-log spans.jsonl &
//	curl -s -d '{"id":1,"country":"JP"}' localhost:8077/v1/call/start
//	curl -s localhost:8078/debug/spans | python3 -m json.tool
//	sbtrace -f spans.jsonl
//
// High availability (see README "Running an HA pair" and DESIGN.md
// "Failover"): -repl-role primary|standby replicates the in-process store
// across two nodes (-repl-peer points the standby at the primary's
// -kv-listen address), -kv takes a comma-separated address list the client
// fails over across, and -lease runs lease-based controller leadership so
// exactly one node serves mutations while the other answers 503 with a
// leader hint.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"switchboard"
	"switchboard/internal/controller"
	"switchboard/internal/faults"
	"switchboard/internal/httpapi"
	"switchboard/internal/kvstore"
	"switchboard/internal/kvstore/replica"
	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
	"switchboard/internal/shard"
)

// fatal logs err at ERROR and exits. The slog equivalent of log.Fatal — kept
// tiny so startup error paths stay one line.
func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}

// errFlag turns a bad flag value into an error for fatal.
type errFlag string

func (e errFlag) Error() string { return string(e) }

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "HTTP listen address")
	kvAddr := flag.String("kv", "", "RESP store address, or a comma-separated failover list like primary,standby (empty starts an in-process kvstore)")
	kvListen := flag.String("kv-listen", "127.0.0.1:0", "in-process kvstore listen address (make it reachable when a standby peer replicates from this node)")
	replRole := flag.String("repl-role", "", "in-process kvstore replication role: 'primary' or 'standby' (empty disables replication)")
	replPeer := flag.String("repl-peer", "", "primary kvstore address a standby replicates from (required with -repl-role standby)")
	replAck := flag.String("repl-ack", "standby", "primary write acks: 'standby' (semi-synchronous; acked writes survive failover) or 'relaxed' (local-only acks)")
	replAckTimeout := flag.Duration("repl-ack-timeout", time.Second, "how long a write waits for the standby's ack before REPLWAIT")
	replFailoverTimeout := flag.Duration("repl-failover-timeout", 2*time.Second, "primary silence a standby tolerates before promoting itself")
	shards := flag.Int("shards", 0, "shard the control plane: partition the conference-ID space across this many shards, each with its own leadership lease (0 disables; >=2 makes this node one of a sharded fleet)")
	shardID := flag.Int("shard-id", -1, "shard this node is the preferred owner of (its elector races immediately; others wait a TTL), -1 for none")
	peers := flag.String("peers", "", "comma-separated API addresses of the other nodes in the sharded fleet (forward fallback when a shard's leader is unknown)")
	shardForward := flag.Bool("shard-forward", true, "proxy call-control requests to the owning shard's leader (false answers 307 + X-Switchboard-Shard-Leader hints instead)")
	shardTakeover := flag.Duration("shard-takeover", 0, "how long this node leaves a non-preferred shard's lease to its preferred owner before racing for it (0 = one lease TTL); size it to cover the fleet's boot stagger or the first node up grabs every shard")
	shardVnodes := flag.Int("shard-vnodes", 0, "virtual nodes per shard on the consistent-hash ring (0 = default)")
	shardEpochPoll := flag.Duration("shard-epoch-poll", shard.DefaultEpochPoll, "how often a sharded node re-reads the stored ring epoch (bounds how fast the fleet observes a live reshard's phase flips)")
	leaseOn := flag.Bool("lease", false, "run lease-based controller leadership against the store (this node serves mutations only while holding the lease)")
	leaseKey := flag.String("lease-key", controller.DefaultLeaseKey, "leadership lease key")
	leaseID := flag.String("lease-id", "", "this controller's lease owner ID (default: -addr)")
	leaseTTL := flag.Duration("lease-ttl", controller.DefaultLeaseTTL, "leadership lease TTL (bounds the leaderless window after a crash)")
	warmupDays := flag.Int("warmup-days", 2, "days of synthetic history for the bootstrap plan")
	callsPerDay := flag.Int("calls", 4000, "synthetic history calls per day")
	seed := flag.Int64("seed", 1, "synthetic history seed")
	worldPath := flag.String("world", "", "JSON world definition (default: the built-in world)")
	kvDialTimeout := flag.Duration("kv-dial-timeout", 2*time.Second, "store connection attempt timeout")
	kvTimeout := flag.Duration("kv-timeout", 5*time.Second, "per-command store read/write deadline")
	kvRetries := flag.Int("kv-retries", 2, "idempotent-command retries after a transport failure (-1 disables)")
	kvBackoffMin := flag.Duration("kv-backoff-min", 50*time.Millisecond, "minimum store redial backoff")
	kvBackoffMax := flag.Duration("kv-backoff-max", 2*time.Second, "maximum store redial backoff")
	journalCap := flag.Int("journal-cap", 8192, "degraded-mode write-behind journal capacity (-1 disables)")
	probeInterval := flag.Duration("probe-interval", time.Second, "store recovery probe interval while degraded")
	debugAddr := flag.String("debug-addr", "", "debug HTTP listen address serving /metrics, /debug/trace, /debug/spans, and pprof (empty disables)")
	traceCap := flag.Int("trace-cap", obs.DefaultRingCapacity, "decision trace ring capacity")
	spanCap := flag.Int("span-cap", span.DefaultRingCapacity, "span ring capacity behind /debug/spans")
	spanLog := flag.String("span-log", "", "append finished spans as JSONL to this file for cmd/sbtrace (empty disables)")
	profileDir := flag.String("profile-dir", "", "harvest rotated pprof snapshots (CPU + heap) into this directory for post-hoc analysis (empty disables)")
	profileInterval := flag.Duration("profile-interval", obs.DefaultProfileInterval, "how often -profile-dir harvests a snapshot pair")
	profileKeep := flag.Int("profile-keep", obs.DefaultProfileKeep, "how many snapshots of each kind -profile-dir keeps (older slots are overwritten)")
	chaosProb := flag.Float64("chaos-prob", 0, "per-operation probability of an injected store-path latency fault (0 disables; a live resilience drill, see internal/faults)")
	chaosDelay := flag.Duration("chaos-latency", time.Millisecond, "injected latency per chaos fault")
	flag.Parse()

	// Logs carry trace_id/span_id whenever the context has a span, so a
	// degraded-store warning can be joined to the request that tripped it.
	slog.SetDefault(slog.New(span.NewLogHandler(slog.NewTextHandler(os.Stderr, nil))))

	// Telemetry. The registry, decision ring, span ring, and tracer are always
	// built — the serve path's instrumentation is a few atomic ops per request
	// — but the debug listener only starts when -debug-addr is set.
	reg := obs.NewRegistry()
	ring := obs.NewDecisionRing(*traceCap)
	spans := span.NewRing(*spanCap)
	sinks := []span.Sink{spans}
	if *spanLog != "" {
		exp, err := span.OpenJSONL(*spanLog)
		if err != nil {
			fatal("opening -span-log", err)
		}
		defer func() { _ = exp.Close() }()
		slog.Info("exporting spans", "path", *spanLog)
		sinks = append(sinks, exp)
	}
	tracer := span.NewTracer(*seed, sinks...)

	// Continuous profiling: off unless -profile-dir names a directory. The
	// harvester keeps a bounded ring of CPU/heap snapshots so "what was it
	// doing an hour ago" is answerable without an operator attached to
	// /debug/pprof at the time.
	if *profileDir != "" {
		prof, err := obs.NewProfiler(obs.ProfileConfig{
			Dir:      *profileDir,
			Interval: *profileInterval,
			Keep:     *profileKeep,
			Logger:   slog.Default(),
		})
		if err != nil {
			fatal("starting profiler", err)
		}
		go prof.Run()
		defer prof.Stop()
		slog.Info("profile harvester on", "dir", *profileDir, "interval", *profileInterval, "keep", *profileKeep)
	}

	world := switchboard.DefaultWorld()
	if *worldPath != "" {
		f, err := os.Open(*worldPath)
		if err != nil {
			fatal("opening -world", err)
		}
		world, err = switchboard.ReadWorld(f)
		_ = f.Close()
		if err != nil {
			fatal("reading -world", err)
		}
	}

	// Offline stage: history -> demand -> provisioning LP -> daily plan.
	slog.Info("bootstrapping", "days", *warmupDays, "calls_per_day", *callsPerDay)
	tc := switchboard.DefaultTraceConfig()
	tc.Days = *warmupDays
	tc.CallsPerDay = *callsPerDay
	tc.Seed = *seed
	tc.World = world
	gen, err := switchboard.NewGenerator(tc)
	if err != nil {
		fatal("building generator", err)
	}
	db := switchboard.NewRecordsDB(tc.Start, world)
	gen.EachCall(func(r *switchboard.CallRecord) bool { db.Add(r); return true })
	est := db.Estimator(20)
	in := &switchboard.ProvisionInputs{
		World:              world,
		Latency:            est,
		Demand:             db.PeakEnvelope(25),
		LatencyThresholdMs: 120,
		WithBackup:         true,
		SlotStride:         8,
	}
	lm, err := switchboard.NewLoadModel(in)
	if err != nil {
		fatal("building load model", err)
	}
	plan, err := switchboard.Provision(in)
	if err != nil {
		fatal("provisioning", err)
	}
	alloc, err := switchboard.BuildAllocationPlan(lm, plan.Cores, plan.LinkGbps)
	if err != nil {
		fatal("building allocation plan", err)
	}
	slog.Info("plan ready", "cores", plan.TotalCores(), "gbps", plan.TotalGbps(), "mean_acl_ms", alloc.MeanACL)

	// State store. kvAddrs is the client's failover list; the in-process
	// store (when started) joins it — first for a primary (writes should
	// land locally), last for a standby (writes chase the peer until it
	// falls silent and this node promotes).
	var kvAddrs []string
	if *kvAddr != "" {
		kvAddrs = strings.Split(*kvAddr, ",")
	}
	if *kvAddr == "" || *replRole != "" {
		srv := switchboard.NewKVServer()
		srv.SetMetrics(kvstore.NewServerMetrics(reg))
		l, err := net.Listen("tcp", *kvListen)
		if err != nil {
			fatal("listening for kvstore", err)
		}
		go func() { _ = srv.Serve(l) }()
		local := l.Addr().String()
		ackMode := replica.AckStandby
		if *replAck == "relaxed" {
			ackMode = replica.AckRelaxed
		} else if *replAck != "standby" {
			fatal("bad -repl-ack", errFlag(*replAck))
		}
		primaryOpts := replica.PrimaryOptions{
			AckMode:    ackMode,
			AckTimeout: *replAckTimeout,
			Metrics:    replica.NewMetrics(reg),
		}
		switch *replRole {
		case "":
			kvAddrs = append([]string{local}, kvAddrs...)
			slog.Info("in-process kvstore", "addr", local)
		case "primary":
			replica.NewPrimary(srv, 0, primaryOpts)
			kvAddrs = append([]string{local}, kvAddrs...)
			slog.Info("in-process kvstore replicating as primary", "addr", local, "ack", *replAck)
		case "standby":
			if *replPeer == "" {
				fatal("-repl-role standby", errFlag("needs -repl-peer"))
			}
			standby := replica.NewStandby(srv, *replPeer, replica.StandbyOptions{
				FailoverTimeout: *replFailoverTimeout,
				Promote:         primaryOpts,
				Metrics:         primaryOpts.Metrics,
				Logger:          slog.Default(),
			})
			go standby.Run()
			defer standby.Stop()
			if len(kvAddrs) == 0 {
				kvAddrs = []string{*replPeer}
			}
			kvAddrs = append(kvAddrs, local)
			slog.Info("in-process kvstore standing by", "addr", local, "primary", *replPeer)
		default:
			fatal("bad -repl-role", errFlag(*replRole))
		}
	}
	// The injection family is registered up front (zero-valued when the drill
	// is off) so scrapers and dashboards always see it.
	injections := faults.NewInjectionCounter(reg)
	if *chaosProb > 0 {
		inj := faults.NewInjector(*seed, faults.Rule{Kind: faults.Latency, Prob: *chaosProb, Delay: *chaosDelay})
		inj.SetMetrics(injections)
		// The drill wraps the preferred store; failover addresses stay direct.
		proxy, err := faults.NewProxy(kvAddrs[0], inj)
		if err != nil {
			fatal("starting chaos proxy", err)
		}
		defer func() { _ = proxy.Close() }()
		slog.Info("chaos drill on", "via", proxy.Addr(), "prob", *chaosProb, "latency", *chaosDelay)
		kvAddrs[0] = proxy.Addr()
	}
	kv, err := switchboard.DialKVFailover(kvAddrs, switchboard.KVOptions{
		DialTimeout: *kvDialTimeout,
		IOTimeout:   *kvTimeout,
		MaxRetries:  *kvRetries,
		BackoffMin:  *kvBackoffMin,
		BackoffMax:  *kvBackoffMax,
		Seed:        *seed,
		Metrics:     kvstore.NewClientMetrics(reg),
	})
	if err != nil {
		fatal("dialing kvstore", err)
	}
	defer func() { _ = kv.Close() }()

	aclOf := func(cfg switchboard.CallConfig, dc int) float64 { return est.ACL(cfg, dc) }
	placer := switchboard.NewPlanPlacer(lm.Demand().Configs, alloc.Alloc, aclOf, len(world.DCs()))
	ctrlMetrics := controller.NewMetrics(reg)
	kvOpts := func(seedOff int64) switchboard.KVOptions {
		return switchboard.KVOptions{
			DialTimeout: *kvDialTimeout,
			IOTimeout:   *kvTimeout,
			MaxRetries:  *kvRetries,
			BackoffMin:  *kvBackoffMin,
			BackoffMax:  *kvBackoffMax,
			Seed:        *seed + seedOff,
		}
	}
	newCtrl := func(store *switchboard.KVClient, prefix string, sh int) *switchboard.Controller {
		c, err := switchboard.NewController(switchboard.ControllerConfig{
			World:         world,
			Placer:        placer,
			Store:         store,
			KeyPrefix:     prefix,
			Shard:         sh,
			JournalCap:    *journalCap,
			ProbeInterval: *probeInterval,
			Metrics:       ctrlMetrics,
			Decisions:     ring,
			Logger:        slog.Default(),
		})
		if err != nil {
			fatal("building controller", err)
		}
		return c
	}
	// shardCtrl builds one shard's controller with its own store client:
	// fencing epochs are per-client state and differ per shard. Used for the
	// boot ring and again by the manager when a live reshard widens it.
	shardCtrl := func(i int) (*switchboard.Controller, error) {
		skv, err := switchboard.DialKVFailover(kvAddrs, kvOpts(int64(2+i)))
		if err != nil {
			return nil, err
		}
		return newCtrl(skv, shard.KeyPrefix(i), i), nil
	}

	// Sharded control plane: one controller + lease race per shard, all
	// sharing the placer and the world. Per-shard leases replace the
	// fleet-wide -lease (each shard fences its own epoch), so the two flags
	// are mutually exclusive.
	var ctrl *switchboard.Controller
	var mgr *shard.Manager
	if *shards > 0 {
		if *leaseOn {
			fatal("flags", errFlag("-lease and -shards are mutually exclusive: sharding runs one lease per shard"))
		}
		shardRing, err := shard.NewRing(*shards, *shardVnodes)
		if err != nil {
			fatal("building shard ring", err)
		}
		id := *leaseID
		if id == "" {
			id = *addr
		}
		ctrls := make([]*switchboard.Controller, *shards)
		for i := range ctrls {
			if ctrls[i], err = shardCtrl(i); err != nil {
				fatal("dialing kvstore for shard", err)
			}
		}
		var prefer []int
		if *shardID >= 0 {
			prefer = []int{*shardID}
		}
		mgr, err = shard.NewManager(shard.Config{
			Ring:        shardRing,
			ID:          id,
			Controllers: ctrls,
			ElectorStore: func(i int) (*kvstore.Client, error) {
				return switchboard.DialKVFailover(kvAddrs, kvOpts(int64(100+i)))
			},
			// The epoch watcher and live-growth factory make this node a
			// reshard participant: it observes phase flips from the store and
			// can host shards the boot ring did not name.
			WatchStore: func() (*kvstore.Client, error) {
				return switchboard.DialKVFailover(kvAddrs, kvOpts(200))
			},
			NewController: shardCtrl,
			EpochPoll:     *shardEpochPoll,
			Prefer:        prefer,
			TTL:           *leaseTTL,
			TakeoverDelay: *shardTakeover,
			Recover:       true,
			Metrics:       shard.NewMetrics(reg),
			Logger:        slog.Default(),
			Tracer:        tracer,
		})
		if err != nil {
			fatal("building shard manager", err)
		}
		mgr.Start()
		slog.Info("sharded control plane on", "shards", *shards, "prefer", *shardID, "id", id, "ttl", *leaseTTL)
	} else {
		ctrl = newCtrl(kv, "", 0)
	}

	if *debugAddr != "" {
		debug := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugMux(reg, ring, spans),
			ReadHeaderTimeout: 5 * time.Second,
		}
		slog.Info("debug endpoints up", "url", "http://"+*debugAddr, "paths", "/metrics /debug/trace /debug/spans /debug/pprof")
		go func() { fatal("debug listener", debug.ListenAndServe()) }()
	}

	api := httpapi.New(world, ctrl)
	api.HTTP = obs.NewHTTPMetrics(reg)
	api.KV = kv
	api.Tracer = tracer
	api.Registry = reg
	api.Instance = *addr
	if mgr != nil {
		var peerList []string
		if *peers != "" {
			peerList = strings.Split(*peers, ",")
		}
		api.Shards = &httpapi.ShardRouter{Manager: mgr, Forward: *shardForward, Peers: peerList}
		// Reshard admin: any node of the fleet can accept POST /v1/reshard;
		// the coordinator lease (not the node) decides who actually drives.
		mgrID := mgr.ID()
		api.Reshard = &httpapi.ReshardAdmin{
			Manager: mgr,
			NewCoordinator: func() (*shard.Coordinator, error) {
				ckv, err := switchboard.DialKVFailover(kvAddrs, kvOpts(300))
				if err != nil {
					return nil, err
				}
				return shard.NewCoordinator(shard.CoordinatorConfig{
					Store:      ckv,
					ID:         mgrID,
					BootShards: *shards,
					BootVNodes: *shardVnodes,
					TTL:        *leaseTTL,
					Metrics:    mgr.Metrics(),
					Logger:     slog.Default(),
					Tracer:     tracer,
				})
			},
			Logger: slog.Default(),
		}
	}

	// Leadership: the elector gets its own client so election probes still
	// go through when the data path is saturated. On winning it arms the
	// controller's fencing epoch and drains anything journaled while
	// standing by; on losing it clears the fence so Stats surface any
	// in-flight stale writes as fenced rather than landing them.
	if *leaseOn {
		id := *leaseID
		if id == "" {
			id = *addr
		}
		lkv, err := switchboard.DialKVFailover(kvAddrs, switchboard.KVOptions{
			DialTimeout: *kvDialTimeout,
			IOTimeout:   *kvTimeout,
			MaxRetries:  *kvRetries,
			BackoffMin:  *kvBackoffMin,
			BackoffMax:  *kvBackoffMax,
			Seed:        *seed + 1,
		})
		if err != nil {
			fatal("dialing kvstore for leases", err)
		}
		defer func() { _ = lkv.Close() }()
		elector := controller.NewElector(controller.ElectorConfig{
			Store: lkv,
			Key:   *leaseKey,
			ID:    id,
			TTL:   *leaseTTL,
			OnLead: func(epoch int64) {
				ctrl.SetLease(*leaseKey, epoch)
				if _, err := ctrl.ReplayJournal(context.Background()); err != nil {
					slog.Warn("journal replay on takeover", "err", err)
				}
			},
			OnLose:  ctrl.ClearLease,
			Metrics: controller.NewElectorMetrics(reg),
			Logger:  slog.Default(),
			Tracer:  tracer,
		})
		go elector.Run()
		defer func() { elector.Stop(); <-elector.Done() }()
		api.Elector = elector
		slog.Info("lease leadership on", "key", *leaseKey, "id", id, "ttl", *leaseTTL)
	}
	// SLO burn gauges: placement latency from the controller histogram,
	// availability from the API's all-routes totals.
	slo := obs.NewSLOMonitor(reg, obs.SLOConfig{
		Latency: ctrlMetrics.PlaceSeconds,
		HTTP:    api.HTTP,
	})
	go slo.Run(obs.DefaultSLOSampleInterval)
	defer slo.Stop()
	api.SLO = slo
	server := &http.Server{
		Addr:              *addr,
		Handler:           api.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Orderly stop: SIGINT/SIGTERM hands owned shards off (journal drain
	// while the fence is still valid, then lease resignation so successors
	// promote within a renew interval) before the listener closes.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		if mgr != nil {
			slog.Info("shutting down; handing off shards")
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			mgr.Stop(ctx)
			cancel()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = server.Shutdown(ctx)
		cancel()
	}()
	slog.Info("controller serving", "url", "http://"+*addr)
	if err := server.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal("api listener", err)
	}
	slog.Info("shutdown complete")
}
