// Command sbbench measures the two core hot paths of the realtime service —
// the controller's in-memory placement decision and one kvstore round-trip
// over loopback TCP — and appends the results to BENCH_core.json, the repo's
// perf trajectory file: a history of runs keyed by git revision, so the
// trajectory across commits stays inspectable instead of being overwritten.
// CI runs it with -gate: a >10% ns/op regression on a core benchmark fails
// the build, and so does ANY allocs/op increase (allocation counts are
// deterministic, so the tolerance is zero; allocs are compared only between
// history entries marked allocs_gated, i.e. recorded under the same bench
// configuration). Label the PR bench-exempt, which sets SBBENCH_SKIP_GATE,
// when a regression is deliberate.
//
// core_placement runs with metrics and tracing ON — striped registry sinks,
// a child span per call exported to the sharded ring — so the recorded number
// is the production-shaped hot path, not the dark one.
//
// Usage:
//
//	sbbench                                   # print this run's JSON to stdout
//	sbbench -o BENCH_core.json -rev $(git rev-parse --short HEAD)
//	sbbench -benchtime 2s                     # longer sampling for quieter numbers
//	sbbench -o BENCH_core.json -rev HEAD -gate  # fail on core hot-path regression
//
// With -o, an existing file is loaded and the new run is appended to its
// "results" history (an entry with the same rev is replaced, so re-running
// on a dirty tree does not grow the file). A file in the pre-history flat
// format is migrated to a single "pre-history" entry.
//
// The same loops exist as BenchmarkCorePlacement / BenchmarkCoreKVRoundTrip
// in bench_test.go for `make bench` and profiling runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"switchboard"
	"switchboard/internal/controller"
	"switchboard/internal/des"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore/replica"
	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
)

// result is one benchmark point. ns/op is the headline; allocs and bytes
// catch regressions the timer hides (a stray allocation on a 700ns path).
type result struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
}

// run is one sbbench invocation: the machine it ran on, the revision it
// measured, and its benchmark points.
type run struct {
	Rev    string `json:"rev"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
	// AllocsGated marks entries recorded under the current gated-benchmark
	// configuration (telemetry-on placement loop). -gate compares
	// allocs_per_op only between marked entries: allocation counts are
	// deterministic, but changing what the bench loop instruments legitimately
	// changes them, so a config flip must not trip the gate against
	// pre-flip history.
	AllocsGated bool     `json:"allocs_gated,omitempty"`
	Results     []result `json:"results"`
}

// history is the trajectory file: every recorded run, oldest first.
type history struct {
	Results []run `json:"results"`
}

// legacyReport is the pre-history flat schema (one overwritten run with no
// rev), still recognized so old files migrate instead of erroring.
type legacyReport struct {
	GoOS    string   `json:"goos"`
	GoArch  string   `json:"goarch"`
	NumCPU  int      `json:"num_cpu"`
	Results []result `json:"results"`
}

// loadHistory reads an existing trajectory file, migrating the legacy flat
// format. A missing or unreadable file starts a fresh history.
func loadHistory(path string) []run {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var h history
	// History entries nest their own results; the inner slice being present
	// distinguishes the new schema from the legacy flat one (whose results
	// are bench points and leave run.Results nil).
	if json.Unmarshal(buf, &h) == nil && len(h.Results) > 0 && h.Results[0].Results != nil {
		return h.Results
	}
	var legacy legacyReport
	if json.Unmarshal(buf, &legacy) == nil && len(legacy.Results) > 0 {
		return []run{{
			Rev:    "pre-history",
			GoOS:   legacy.GoOS,
			GoArch: legacy.GoArch,
			NumCPU: legacy.NumCPU, Results: legacy.Results,
		}}
	}
	log.Printf("warning: %s is neither a bench history nor a legacy report; starting fresh", path)
	return nil
}

// gatedBenchmarks are the hot paths whose ns/op regressions fail a -gate run;
// the failover drill is excluded because its time is dominated by deliberate
// timeouts, not code under test.
var gatedBenchmarks = []string{"core_placement", "core_kv_round_trip"}

// gateTolerance is how much slower a gated benchmark may get before -gate
// fails: shared-runner noise sits well inside 10%, real regressions outside.
const gateTolerance = 1.10

// checkGate compares this run's gated benchmarks against the most recent
// prior run (skipping entries for the same rev, so re-runs on a dirty tree
// still compare against the actual predecessor). It returns the failures,
// one line each; no baseline means nothing to gate.
func checkGate(prior []run, this run, rev string) []string {
	var base *run
	for i := len(prior) - 1; i >= 0; i-- {
		if prior[i].Rev != rev {
			base = &prior[i]
			break
		}
	}
	if base == nil {
		log.Printf("gate: no prior run to compare against; passing")
		return nil
	}
	baseline := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	if !base.AllocsGated {
		log.Printf("gate: baseline rev %q predates alloc gating; gating ns/op only", base.Rev)
	}
	var failures []string
	for _, r := range this.Results {
		gated := false
		for _, name := range gatedBenchmarks {
			if r.Name == name {
				gated = true
				break
			}
		}
		was, ok := baseline[r.Name]
		if !gated || !ok || was.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp > was.NsPerOp*gateTolerance {
			failures = append(failures, fmt.Sprintf(
				"%s regressed: %.0f ns/op -> %.0f ns/op (%+.1f%%, gate %.0f%%) vs rev %q",
				r.Name, was.NsPerOp, r.NsPerOp, (r.NsPerOp/was.NsPerOp-1)*100, (gateTolerance-1)*100, base.Rev))
		} else {
			log.Printf("gate: %s %.0f ns/op vs %.0f ns/op at rev %q: ok", r.Name, r.NsPerOp, was.NsPerOp, base.Rev)
		}
		// Allocation counts are deterministic — zero tolerance. Only gated
		// between entries recorded under the same bench configuration (see
		// run.AllocsGated).
		if base.AllocsGated && this.AllocsGated {
			if r.AllocsOp > was.AllocsOp {
				failures = append(failures, fmt.Sprintf(
					"%s allocates more: %d allocs/op -> %d allocs/op vs rev %q",
					r.Name, was.AllocsOp, r.AllocsOp, base.Rev))
			} else {
				log.Printf("gate: %s %d allocs/op vs %d allocs/op at rev %q: ok",
					r.Name, r.AllocsOp, was.AllocsOp, base.Rev)
			}
		}
	}
	return failures
}

// benchDES runs a fixed 200k-call simulated day on the DES engine and
// returns a point with Iterations = events processed and NsPerOp = wall-clock
// nanoseconds per event. The engine never reads the wall clock itself, so the
// timing lives here.
func benchDES() (result, error) {
	const calls = 200_000
	w := geo.DefaultWorld()
	src, err := des.NewSynthSource(w, des.SynthConfig{Seed: 1, Calls: calls})
	if err != nil {
		return result{}, err
	}
	f, err := des.NewFleet(w, src.Configs(), 120)
	if err != nil {
		return result{}, err
	}
	cores, gbps := src.ExpectedPeakLoad(f)
	for i := range cores {
		cores[i] *= 1.25
	}
	for i := range gbps {
		gbps[i] *= 1.25
	}
	if err := f.SetCapacity(cores, gbps); err != nil {
		return result{}, err
	}
	start := time.Now()
	res, err := des.Run(des.Config{Fleet: f, Source: src, Placement: des.LowestACL{}, Seed: 1})
	elapsed := time.Since(start)
	if err != nil {
		return result{}, err
	}
	if res.DroppedEvents != 0 {
		return result{}, fmt.Errorf("des bench dropped %d events", res.DroppedEvents)
	}
	return result{
		Name:       "core_des_events_per_sec",
		Iterations: int(res.Events),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(res.Events),
	}, nil
}

func main() {
	out := flag.String("o", "", "output path (empty prints this run to stdout)")
	rev := flag.String("rev", "", "git revision this run measures (the history key)")
	benchtime := flag.Duration("benchtime", time.Second, "target sampling time per benchmark")
	gate := flag.Bool("gate", false,
		"fail when a core benchmark regresses more than 10% ns/op vs the previous recorded run (SBBENCH_SKIP_GATE=1 overrides)")
	flag.Parse()

	// testing.Benchmark honours -test.benchtime only via the testing flags,
	// which a plain main cannot set after flag.Parse; approximate it by
	// running until the measured time crosses the target.
	runBench := func(name string, fn func(b *testing.B)) result {
		var r testing.BenchmarkResult
		for n := 1; ; n *= 4 {
			r = testing.Benchmark(fn)
			if r.T >= *benchtime || n > 64 {
				break
			}
		}
		return result{
			Name:       name,
			Iterations: r.N,
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp:   r.AllocsPerOp(),
			BytesOp:    r.AllocedBytesPerOp(),
		}
	}

	placement := runBench("core_placement", func(b *testing.B) {
		// Metrics AND tracing on: this is the production-shaped hot path, not
		// the dark one. Every placement increments striped counters, times
		// itself into the place-seconds histogram (stamping exemplars), spawns
		// a child span under the bench root, and exports it to the sharded
		// ring — all of which the recorded ns/op must absorb.
		reg := obs.NewRegistry()
		tracer := span.NewTracer(1, span.NewRing(span.DefaultRingCapacity))
		ctrl, err := switchboard.NewController(switchboard.ControllerConfig{
			World:   switchboard.DefaultWorld(),
			Metrics: controller.NewMetrics(reg),
		})
		if err != nil {
			b.Fatal(err)
		}
		ctx, root := tracer.Start(context.Background(), "bench")
		defer root.End()
		now := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := uint64(i + 1)
			if _, err := ctrl.CallStarted(ctx, id, "JP", now); err != nil {
				b.Fatal(err)
			}
			if err := ctrl.CallEnded(ctx, id); err != nil {
				b.Fatal(err)
			}
		}
	})

	srv := switchboard.NewKVServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	client, err := switchboard.DialKV(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	kvRoundTrip := runBench("core_kv_round_trip", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := client.HSet("call:1", "state", "active"); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = client.Close()
	_ = srv.Close()

	// Promotion latency of an HA pair: kill the primary, clock stops when a
	// write lands on the promoted standby (same loop as BenchmarkFailover).
	failover := runBench("failover_promotion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			psrv := switchboard.NewKVServer()
			pl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go func() { _ = psrv.Serve(pl) }()
			replica.NewPrimary(psrv, 0, replica.PrimaryOptions{
				Heartbeat:  10 * time.Millisecond,
				AckTimeout: 200 * time.Millisecond,
			})
			ssrv := switchboard.NewKVServer()
			sl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go func() { _ = ssrv.Serve(sl) }()
			standby := replica.NewStandby(ssrv, pl.Addr().String(), replica.StandbyOptions{
				FailoverTimeout: 75 * time.Millisecond,
				DialTimeout:     50 * time.Millisecond,
				ReadTimeout:     30 * time.Millisecond,
				RedialInterval:  5 * time.Millisecond,
			})
			go standby.Run()
			cl, err := switchboard.DialKVFailover(
				[]string{pl.Addr().String(), sl.Addr().String()},
				switchboard.KVOptions{
					DialTimeout: 50 * time.Millisecond,
					IOTimeout:   50 * time.Millisecond,
					MaxRetries:  2,
					BackoffMin:  time.Millisecond,
					BackoffMax:  5 * time.Millisecond,
					Seed:        int64(i + 1),
				})
			if err != nil {
				b.Fatal(err)
			}
			if err := cl.HSet("call:1", "state", "active"); err != nil {
				b.Fatal(err)
			}
			for standby.LastSeq() == 0 {
				time.Sleep(time.Millisecond)
			}

			b.StartTimer()
			_ = psrv.Close()
			for {
				if err := cl.HSet("call:2", "state", "active"); err == nil {
					break
				}
			}
			b.StopTimer()

			_ = cl.Close()
			standby.Stop()
			<-standby.Done()
			_ = ssrv.Close()
			b.StartTimer()
		}
	})

	// DES engine throughput: one fixed 200k-call day through the simulation
	// queue (400k arrive/depart events), reported as ns per event so
	// 1e9/ns_per_op is events/s. Informational — not in gatedBenchmarks: the
	// engine's own BenchmarkEngine100k guards allocations, and a wall-clock
	// gate on a shared runner would flake.
	desPoint, err := benchDES()
	if err != nil {
		log.Fatal(err)
	}

	this := run{
		Rev:         *rev,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		AllocsGated: true,
		Results:     []result{placement, kvRoundTrip, failover, desPoint},
	}
	if *out == "" {
		buf, err := json.MarshalIndent(this, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(buf))
		return
	}
	runs := loadHistory(*out)
	var gateFailures []string
	if *gate {
		if os.Getenv("SBBENCH_SKIP_GATE") != "" {
			log.Printf("gate: skipped (SBBENCH_SKIP_GATE set)")
		} else {
			gateFailures = checkGate(runs, this, *rev)
		}
	}
	replaced := false
	if *rev != "" {
		for i := range runs {
			if runs[i].Rev == *rev {
				runs[i] = this
				replaced = true
				break
			}
		}
	}
	if !replaced {
		runs = append(runs, this)
	}
	buf, err := json.MarshalIndent(history{Results: runs}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d runs, rev %q)", *out, len(runs), *rev)
	// The run is recorded either way — a failed gate should still leave its
	// point in the trajectory for the investigation that follows.
	if len(gateFailures) > 0 {
		for _, f := range gateFailures {
			log.Printf("gate FAIL: %s", f)
		}
		os.Exit(1)
	}
}
