// Command sbbench measures the two core hot paths of the realtime service —
// the controller's in-memory placement decision and one kvstore round-trip
// over loopback TCP — and writes the results as BENCH_core.json, the repo's
// perf trajectory file. CI runs it non-gating on every push; compare the
// committed point against a fresh run before and after touching the
// controller or kvstore.
//
// Usage:
//
//	sbbench                 # print JSON to stdout
//	sbbench -o BENCH_core.json
//	sbbench -benchtime 2s   # longer sampling for quieter numbers
//
// The same loops exist as BenchmarkCorePlacement / BenchmarkCoreKVRoundTrip
// in bench_test.go for `make bench` and profiling runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"testing"
	"time"

	"switchboard"
)

// result is one benchmark point. ns/op is the headline; allocs and bytes
// catch regressions the timer hides (a stray allocation on a 700ns path).
type result struct {
	Name       string  `json:"name"`
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
	BytesOp    int64   `json:"bytes_per_op"`
}

type report struct {
	GoOS    string   `json:"goos"`
	GoArch  string   `json:"goarch"`
	NumCPU  int      `json:"num_cpu"`
	Results []result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output path (empty prints to stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target sampling time per benchmark")
	flag.Parse()

	// testing.Benchmark honours -test.benchtime only via the testing flags,
	// which a plain main cannot set after flag.Parse; approximate it by
	// running until the measured time crosses the target.
	run := func(name string, fn func(b *testing.B)) result {
		var r testing.BenchmarkResult
		for n := 1; ; n *= 4 {
			r = testing.Benchmark(fn)
			if r.T >= *benchtime || n > 64 {
				break
			}
		}
		return result{
			Name:       name,
			Iterations: r.N,
			NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp:   r.AllocsPerOp(),
			BytesOp:    r.AllocedBytesPerOp(),
		}
	}

	placement := run("core_placement", func(b *testing.B) {
		ctrl, err := switchboard.NewController(switchboard.ControllerConfig{
			World: switchboard.DefaultWorld(),
		})
		if err != nil {
			b.Fatal(err)
		}
		now := time.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := uint64(i + 1)
			if _, err := ctrl.CallStarted(id, "JP", now); err != nil {
				b.Fatal(err)
			}
			if err := ctrl.CallEnded(id); err != nil {
				b.Fatal(err)
			}
		}
	})

	srv := switchboard.NewKVServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	client, err := switchboard.DialKV(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	kvRoundTrip := run("core_kv_round_trip", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := client.HSet("call:1", "state", "active"); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = client.Close()
	_ = srv.Close()

	rep := report{
		GoOS:    runtime.GOOS,
		GoArch:  runtime.GOARCH,
		NumCPU:  runtime.NumCPU(),
		Results: []result{placement, kvRoundTrip},
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		fmt.Print(string(buf))
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
