// Command sblint runs Switchboard's project-specific static-analysis suite
// (internal/lint) over the module and prints findings as
//
//	file:line:col: [analyzer] message
//
// with paths relative to the module root, sorted by (file, line, col,
// analyzer, message) so output is byte-stable across runs and machines.
// It exits 0 when clean, 1 when there are findings, and 2 on load errors.
// `make check` runs it as part of the tier-1 gate; see DESIGN.md ("Static
// analysis") for the analyzer contracts, the call-graph model behind the
// interprocedural analyzers, and the annotation vocabulary
// (//sblint:allow, //sblint:hotpath, //sblint:allowalloc, ...).
//
// Usage:
//
//	sblint [-v] [-json] [-baseline file] [-write-baseline file] [packages]
//
// where packages are module-relative patterns like ./... (the default),
// ./internal/... or ./internal/lp.
//
//	-json           emit findings as a JSON array instead of text
//	-baseline file  suppress findings listed in file; only new findings
//	                fail (the committed baseline is empty: the repo is
//	                clean and stays clean)
//	-write-baseline file
//	                write the current findings to file and exit 0
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"switchboard/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "print analyzer names and type-check warnings")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	baselinePath := flag.String("baseline", "", "suppress findings listed in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sblint [-v] [-json] [-baseline file] [-write-baseline file] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	root, _, err := lint.Module(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sblint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sblint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, p := range pkgs {
			for _, terr := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "sblint: typecheck %s: %v\n", p.Path, terr)
			}
		}
	}
	selected := lint.Select(pkgs, flag.Args())
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "sblint: no packages match", strings.Join(flag.Args(), " "))
		os.Exit(2)
	}
	findings := lint.Run(selected, lint.Analyzers())
	// Module-relative paths: stable across checkouts, so they are what the
	// baseline stores and what CI diffs.
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, lint.FormatBaseline(findings), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sblint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "sblint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}

	var suppressed []lint.Finding
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sblint:", err)
			os.Exit(2)
		}
		findings, suppressed = base.Filter(findings)
	}

	if *jsonOut {
		data, err := lint.MarshalFindings(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sblint:", err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(suppressed) > 0 {
		fmt.Fprintf(os.Stderr, "sblint: %d baseline-suppressed finding(s)\n", len(suppressed))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sblint: %d new finding(s)\n", len(findings))
		os.Exit(1)
	}
}
