// Command sblint runs Switchboard's project-specific static-analysis suite
// (internal/lint) over the module and prints findings as
//
//	file:line:col: [analyzer] message
//
// It exits 0 when clean, 1 when there are findings, and 2 on load errors.
// `make check` runs it as part of the tier-1 gate; see DESIGN.md ("Static
// analysis") for the analyzer contracts, the //sblint:allow escape hatch,
// and the "// guarded by <mu>" annotation convention.
//
// Usage:
//
//	sblint [-v] [packages]
//
// where packages are module-relative patterns like ./... (the default),
// ./internal/... or ./internal/lp.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"switchboard/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "print analyzer names and type-check warnings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sblint [-v] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	pkgs, err := lint.Load(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sblint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, p := range pkgs {
			for _, terr := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "sblint: typecheck %s: %v\n", p.Path, terr)
			}
		}
	}
	selected := lint.Select(pkgs, flag.Args())
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "sblint: no packages match", strings.Join(flag.Args(), " "))
		os.Exit(2)
	}
	findings := lint.Run(selected, lint.Analyzers())
	wd, _ := os.Getwd()
	for _, f := range findings {
		if wd != "" {
			if rel, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sblint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
