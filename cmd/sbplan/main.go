// Command sbplan reads a call trace in JSON Lines form (as produced by
// cmd/sbgen, or any trace in the same shape) and computes a capacity
// provisioning plan for it, emitting the plan as JSON: cores per DC, Gbps
// per WAN link, total cost, and the latency-optimized allocation summary.
//
// Usage:
//
//	sbgen -days 7 -calls 20000 | sbplan -scheme sb -backup > plan.json
//	sbplan -in trace.jsonl -scheme lf
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"switchboard"
	"switchboard/internal/tracefile"
)

type planDTO struct {
	Scheme     string        `json:"scheme"`
	WithBackup bool          `json:"with_backup"`
	Calls      int64         `json:"calls"`
	Configs    int           `json:"configs_total"`
	TopConfigs int           `json:"configs_planned"`
	Cores      []dcCoresDTO  `json:"cores"`
	Links      []linkGbpsDTO `json:"links"`
	TotalCores float64       `json:"total_cores"`
	TotalGbps  float64       `json:"total_gbps"`
	Cost       float64       `json:"cost"`
	MeanACLMs  float64       `json:"mean_acl_ms"`
	Overflow   float64       `json:"allocation_overflow"`
}

type dcCoresDTO struct {
	DC    string  `json:"dc"`
	Cores float64 `json:"cores"`
}

type linkGbpsDTO struct {
	Link string  `json:"link"`
	Gbps float64 `json:"gbps"`
}

func main() {
	in := flag.String("in", "", "input trace path (default stdin)")
	scheme := flag.String("scheme", "sb", "provisioning scheme: rr, lf, or sb")
	backup := flag.Bool("backup", false, "provision backup for single DC/link failures")
	topConfigs := flag.Int("top", 50, "number of call configs to provision individually")
	threshold := flag.Float64("latency-ms", 120, "one-way ACL threshold in ms")
	stride := flag.Int("stride", 4, "slot coarsening stride for the LP")
	worldPath := flag.String("world", "", "JSON world definition (default: the built-in world)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		src = f
	}

	world := switchboard.DefaultWorld()
	if *worldPath != "" {
		f, err := os.Open(*worldPath)
		if err != nil {
			log.Fatal(err)
		}
		world, err = switchboard.ReadWorld(f)
		_ = f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	var db *switchboard.RecordsDB
	reader := tracefile.NewReader(src)
	err := reader.Each(func(r *switchboard.CallRecord) bool {
		if db == nil {
			// Anchor slot 0 at the first record's UTC midnight.
			origin := r.Start.UTC().Truncate(24 * time.Hour)
			db = switchboard.NewRecordsDB(origin, world)
		}
		db.Add(r)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	if db == nil || db.TotalCalls() == 0 {
		log.Fatal("sbplan: no records in input")
	}
	fmt.Fprintf(os.Stderr, "sbplan: %d calls, %d distinct configs\n", db.TotalCalls(), db.NumConfigs())

	inputs := &switchboard.ProvisionInputs{
		World:              world,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(*topConfigs),
		LatencyThresholdMs: *threshold,
		WithBackup:         *backup,
		SlotStride:         *stride,
	}
	lm, err := switchboard.NewLoadModel(inputs)
	if err != nil {
		log.Fatal(err)
	}

	var plan *switchboard.Plan
	switch *scheme {
	case "rr":
		plan, err = switchboard.ProvisionRoundRobin(inputs)
	case "lf":
		plan, err = switchboard.ProvisionLocalityFirst(inputs)
	case "sb":
		plan, err = switchboard.Provision(inputs)
	default:
		log.Fatalf("sbplan: unknown scheme %q (want rr, lf, or sb)", *scheme)
	}
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := switchboard.BuildAllocationPlan(lm, plan.Cores, plan.LinkGbps)
	if err != nil {
		log.Fatal(err)
	}

	dto := planDTO{
		Scheme:     plan.Scheme,
		WithBackup: *backup,
		Calls:      db.TotalCalls(),
		Configs:    db.NumConfigs(),
		TopConfigs: *topConfigs,
		TotalCores: plan.TotalCores(),
		TotalGbps:  plan.TotalGbps(),
		Cost:       plan.Cost(world),
		MeanACLMs:  alloc.MeanACL,
		Overflow:   alloc.Overflow,
	}
	for _, dc := range world.DCs() {
		if plan.Cores[dc.ID] > 1e-9 {
			dto.Cores = append(dto.Cores, dcCoresDTO{DC: dc.Name, Cores: plan.Cores[dc.ID]})
		}
	}
	for _, l := range world.Links() {
		if plan.LinkGbps[l.ID] > 1e-9 {
			dto.Links = append(dto.Links, linkGbpsDTO{
				Link: fmt.Sprintf("%s-%s", l.A, l.B),
				Gbps: plan.LinkGbps[l.ID],
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dto); err != nil {
		log.Fatal(err)
	}
}
