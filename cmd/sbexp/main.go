// Command sbexp regenerates every table and figure of the Switchboard paper
// (SIGCOMM 2023) on the synthetic substrate. Each experiment prints the same
// rows/series the paper reports, normalized the same way.
//
// Usage:
//
//	sbexp -exp all                 # run everything at the default scale
//	sbexp -exp table3 -scale quick # one experiment, reduced scale
//	sbexp -list                    # list experiment names
//
// Experiments: table1, fig3, fig4, fig7a, fig7b, fig7c, table3, table4,
// fig8, migration, fig9, fig10, predict, scale, ablation-joint,
// ablation-backup, simfidelity, predict-migrations, drill,
// forecast-baselines, chaos, dessweep.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"strings"
	"time"

	"switchboard"
	"switchboard/internal/eval"
	"switchboard/internal/model"
	"switchboard/internal/sim"
)

var experiments = []struct {
	name  string
	desc  string
	needs bool // needs an Env
	run   func(*eval.Env) error
}{
	{"table1", "relative compute/network load by media type", false, func(*eval.Env) error { return table1() }},
	{"fig3", "time-shifted per-country demand peaks", true, fig3},
	{"fig4", "peak-aware backup worked example", false, func(*eval.Env) error { return fig4() }},
	{"fig7a", "per-config demand forecast vs ground truth", true, fig7a},
	{"fig7b", "per-config growth rates", true, fig7b},
	{"fig7c", "call coverage of top-N configs", true, fig7c},
	{"table3", "provisioned resources, cost, and mean ACL", true, table3},
	{"table4", "forecast-vs-truth provisioning deltas", true, table4},
	{"fig8", "participant join-time CDF", true, fig8},
	{"migration", "inter-DC call migration rates", true, migration},
	{"fig9", "CDF of normalized forecast RMSE/MAE", true, fig9},
	{"fig10", "controller throughput vs worker threads", true, fig10},
	{"predict", "MOMC call-config predictor vs baseline", true, predictExp},
	{"scale", "controller sustains 1.4x peak load", true, scaleExp},
	{"ablation-joint", "joint vs compute-only provisioning", true, ablationJoint},
	{"ablation-backup", "peak-aware vs default backup", true, ablationBackup},
	{"simfidelity", "call-level replay of the fractional plan", true, simFidelity},
	{"predict-migrations", "migration reduction via config prediction", true, predictMigrations},
	{"drill", "DC-failure drill: backup vs serving-only plans", true, drill},
	{"forecast-baselines", "Holt-Winters vs seasonal-naive and drift", true, forecastBaselines},
	{"chaos", "fault-injection drill: degraded mode vs clean run", true, chaos},
	{"partition", "HA failover drill: silent primary partition, standby promotes", true, partitionExp},
	{"shard", "sharded-fleet drill: kill a shard leader, survivor takes over", true, shardExp},
	{"reshard", "live shard-split drill: grow the ring online under load", true, reshardExp},
	{"dessweep", "million-call DES fleet sweep across placement policies", false, dessweep},
}

// dessweep flags; the engine itself never reads the wall clock, so the
// events/s numbers here are measured around the eval call, in this package.
var (
	desCalls  = flag.Int("des-calls", 0, "dessweep: calls per run (0: 10M, or 100k at -scale quick)")
	desDetect = flag.String("des-detect", "", "dessweep: comma-separated failover detection delays to sweep (e.g. '5s,30s,2m'); empty runs without failures")
	desTrace  = flag.String("des-trace", "", "dessweep: write the first run's decision trace (span JSONL, sbtrace-compatible) to this file")
)

// desScale and desSeed carry -scale/-seed into the dessweep experiment
// (its table entry takes no Env).
var (
	desScale string
	desSeed  int64
)

func main() {
	expFlag := flag.String("exp", "all", "experiment name or 'all'")
	scale := flag.String("scale", "default", "'default' or 'quick'")
	seed := flag.Int64("seed", 0, "override trace seed (0 keeps the scale's seed)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("  %-16s %s\n", e.name, e.desc)
		}
		return
	}

	cfg := switchboard.DefaultEvalConfig()
	if *scale == "quick" {
		cfg = switchboard.QuickEvalConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	desScale, desSeed = *scale, *seed

	selected := map[string]bool{}
	runAll := *expFlag == "all"
	for _, name := range strings.Split(*expFlag, ",") {
		selected[strings.TrimSpace(name)] = true
	}

	var env *eval.Env
	needEnv := false
	for _, e := range experiments {
		if (runAll || selected[e.name]) && e.needs {
			needEnv = true
		}
	}
	if needEnv {
		fmt.Printf("# building environment: %d+%d days, %d calls/day, top %d configs (seed %d)\n",
			cfg.TrainDays, cfg.EvalDays, cfg.CallsPerDay, cfg.TopConfigs, cfg.Seed)
		start := time.Now()
		var err error
		env, err = switchboard.NewEvalEnv(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# trace: %d train + %d eval calls, %d distinct configs (%.1fs)\n\n",
			env.TrainDB.TotalCalls(), env.EvalDB.TotalCalls(), env.TrainDB.NumConfigs(),
			time.Since(start).Seconds())
	}

	ran := 0
	for _, e := range experiments {
		if !runAll && !selected[e.name] {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n", e.name, e.desc)
		start := time.Now()
		if err := e.run(env); err != nil {
			fatal(fmt.Errorf("%s: %w", e.name, err))
		}
		fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q; use -list", *expFlag))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sbexp:", err)
	os.Exit(1)
}

func table1() error {
	clA, nlA := model.Audio.ComputeLoad(), model.Audio.NetworkLoad()
	fmt.Printf("%-14s %8s %8s %10s\n", "media", "CL", "NL", "NL/CL")
	for _, m := range model.MediaTypes() {
		cl, nl := m.ComputeLoad()/clA, m.NetworkLoad()/nlA
		fmt.Printf("%-14s %7.1fx %7.1fx %9.1fx\n", m, cl, nl, nl/cl)
	}
	return nil
}

func fig3(env *eval.Env) error {
	res := eval.Fig3(env)
	fmt.Printf("normalized compute demand by UTC slot (48 half-hour slots)\n")
	for i, c := range res.Countries {
		fmt.Printf("%s peaks at %02d:%02d UTC:", c, res.PeakSlot[i]/2, (res.PeakSlot[i]%2)*30)
		for t := 0; t < model.SlotsPerDay; t += 4 {
			fmt.Printf(" %.2f", res.Series[i][t])
		}
		fmt.Println()
	}
	return nil
}

func fig4() error {
	res, err := eval.Fig4()
	if err != nil {
		return err
	}
	fmt.Printf("serving peaks (JP,HK,IN):        %v\n", res.Serving)
	fmt.Printf("default plan total (fig 4b):     %.0f cores (paper: 480)\n", res.DefaultTotal)
	fmt.Printf("peak-aware capacities (fig 4c):  %.0f/%.0f/%.0f (paper: 100/110/110)\n",
		res.PeakAware[0], res.PeakAware[1], res.PeakAware[2])
	fmt.Printf("peak-aware total:                %.0f cores (paper: 320)\n", res.PeakAwareTotal)
	return nil
}

func fig7a(env *eval.Env) error {
	res, err := eval.Fig7a(env)
	if err != nil {
		return err
	}
	fmt.Printf("config %q, horizon %d slots\n", res.ConfigKey, len(res.Forecast))
	fmt.Printf("normalized RMSE %.3f, normalized MAE %.3f\n", res.Accuracy.NormRMSE, res.Accuracy.NormMAE)
	fmt.Printf("%-6s %10s %10s\n", "slot", "truth", "forecast")
	for t := 0; t < len(res.Forecast); t += len(res.Forecast) / 12 {
		fmt.Printf("%-6d %10.1f %10.1f\n", t, res.Truth[t], res.Forecast[t])
	}
	return nil
}

func fig7b(env *eval.Env) error {
	res, err := eval.Fig7b(env, 15)
	if err != nil {
		return err
	}
	fmt.Printf("growth over the training window, normalized to max (paper normalizes too)\n")
	for i, key := range res.ConfigKeys {
		fmt.Printf("  %-28s %.2f\n", key, res.Growth[i])
	}
	return nil
}

func fig7c(env *eval.Env) error {
	res := eval.Fig7c(env)
	fmt.Printf("%d distinct configs\n", res.Distinct)
	fmt.Printf("%-10s %s\n", "top-frac", "calls covered")
	for i, f := range res.TopFracs {
		fmt.Printf("%-10.3f %.1f%%\n", f, 100*res.Coverage[i])
	}
	return nil
}

func table3(env *eval.Env) error {
	res, err := eval.Table3(env)
	if err != nil {
		return err
	}
	print3 := func(label string, rows []eval.Table3Row) {
		fmt.Printf("%s\n%-8s %8s %8s %8s %10s\n", label, "scheme", "cores", "WAN", "cost", "mean ACL")
		for _, r := range rows {
			fmt.Printf("%-8s %8.2f %8.2f %8.2f %10.2f\n", r.Scheme, r.Cores, r.WAN, r.Cost, r.MeanACL)
		}
	}
	print3("without backup (normalized to RR)", res.Without)
	print3("with backup (normalized to RR)", res.With)
	fmt.Printf("raw (with backup): ")
	for _, r := range res.RawWith {
		fmt.Printf("%s{cores %.0f, %.2f Gbps, ACL %.1f ms} ", r.Scheme, r.Cores, r.WAN, r.MeanACL)
	}
	fmt.Println()
	return nil
}

func table4(env *eval.Env) error {
	res, err := eval.Table4(env)
	if err != nil {
		return err
	}
	print4 := func(label string, rows []eval.Table4Row) {
		fmt.Printf("%s\n%-8s %10s %10s\n", label, "scheme", "cores", "WAN")
		for _, r := range rows {
			fmt.Printf("%-8s %+9.1f%% %+9.1f%%\n", r.Scheme, r.CoresDelta, r.WANDelta)
		}
	}
	print4("without backup (truth - forecast)/truth", res.Without)
	print4("with backup", res.With)
	return nil
}

func fig8(env *eval.Env) error {
	res := eval.Fig8(env)
	fmt.Printf("fraction of participants joined by minute:\n")
	for m := 0; m <= 20; m += 2 {
		fmt.Printf("  %2d min: %.2f\n", m, res.CDF[m])
	}
	fmt.Printf("at 300 s: %.1f%% (paper: ~80%% -> A = 300 s)\n", 100*res.At300s)
	return nil
}

func migration(env *eval.Env) error {
	res, err := eval.Migration(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %10s %10s %8s %10s\n", "", "calls", "migrated", "rate", "unplanned")
	fmt.Printf("%-4s %10d %10d %7.2f%% %10d\n", "SB", res.SB.Calls, res.SB.Migrated, 100*res.SB.Rate, res.SB.Unplanned)
	fmt.Printf("%-4s %10d %10d %7.2f%% %10d\n", "LF", res.LF.Calls, res.LF.Migrated, 100*res.LF.Rate, res.LF.Unplanned)
	fmt.Printf("(paper: both 1.53%%)\n")
	return nil
}

func fig9(env *eval.Env) error {
	res, err := eval.Fig9(env, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("%d configs scored; median normalized RMSE %.1f%%, MAE %.1f%% (paper: 13%% / 8%%)\n",
		res.Configs, 100*res.MedianRMSE, 100*res.MedianMAE)
	fmt.Printf("%-12s %10s %10s\n", "percentile", "RMSE", "MAE")
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90} {
		i := int(p * float64(len(res.NormRMSE)))
		if i >= len(res.NormRMSE) {
			i = len(res.NormRMSE) - 1
		}
		fmt.Printf("%-12.0f %9.1f%% %9.1f%%\n", p*100, 100*res.NormRMSE[i], 100*res.NormMAE[i])
	}
	return nil
}

func fig10(env *eval.Env) error {
	res, err := eval.Fig10(env, []int{1, 2, 4, 6, 8, 10})
	if err != nil {
		return err
	}
	fmt.Printf("peak event arrival rate: %.1f ev/s\n", res.PeakRate)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "threads", "events/s", "normalized", "min write", "max write")
	for _, r := range res.Runs {
		fmt.Printf("%-8d %12.0f %12.2f %12s %12s\n", r.Workers, r.EventsPerSec, r.Normalized, r.MinWrite, r.MaxWrite)
	}
	return nil
}

func predictExp(env *eval.Env) error {
	res, err := eval.Predict(env)
	if err != nil {
		return err
	}
	fmt.Printf("%d recurring series\n", res.Series)
	fmt.Printf("%-10s %8s %8s\n", "", "RMSE", "MAE")
	fmt.Printf("%-10s %8.2f %8.2f\n", "MOMC+LR", res.Model.RMSE, res.Model.MAE)
	fmt.Printf("%-10s %8.2f %8.2f\n", "baseline", res.Baseline.RMSE, res.Baseline.MAE)
	fmt.Printf("(paper: 0.97/0.90 vs 24.90/23.60 on production meetings)\n")
	return nil
}

func scaleExp(env *eval.Env) error {
	ok, run, err := eval.ScaleCheck(env, 12, 1.4)
	if err != nil {
		return err
	}
	fmt.Printf("12 threads: %.0f ev/s = %.2fx the production peak (%g ev/s); need >= 1.4x: %v\n",
		run.EventsPerSec, run.Normalized, eval.ProductionPeakRate, ok)
	return nil
}

func ablationJoint(env *eval.Env) error {
	res, err := eval.AblationJoint(env)
	if err != nil {
		return err
	}
	fmt.Printf("joint:        %.0f cores, %.2f Gbps, cost %.1f\n", res.BaseCores, res.BaseWAN, res.BaseCost)
	fmt.Printf("compute-only: %.0f cores, %.2f Gbps, cost %.1f (%.2fx joint)\n",
		res.VariantCores, res.VariantWAN, res.VariantCost, res.CostRatioVariant)
	return nil
}

func simFidelity(env *eval.Env) error {
	res, err := eval.SimFidelity(env)
	if err != nil {
		return err
	}
	fmt.Printf("plan mean ACL (fractional LP):  %.1f ms\n", res.PlanACL)
	fmt.Printf("%-14s %8s %10s %10s %10s %10s\n", "policy", "calls", "overflow", "ACL", "maxCPU", "maxLink")
	print := func(r *simResultRow) {
		fmt.Printf("%-14s %8d %9.2f%% %8.1fms %10.2f %10.2f\n",
			r.name, r.calls, 100*r.overflow, r.acl, r.maxCPU, r.maxLink)
	}
	print(&simResultRow{"plan", res.Plan.Calls, res.Plan.OverflowRate(), res.Plan.MeanACL, res.Plan.MaxCoreUtil, res.Plan.MaxLinkUtil})
	print(&simResultRow{"greedy-local", res.Greedy.Calls, res.Greedy.OverflowRate(), res.Greedy.MeanACL, res.Greedy.MaxCoreUtil, res.Greedy.MaxLinkUtil})
	fmt.Printf("unplanned-config calls: %d; stranded load %.2f cores / %.3f Gbps\n",
		res.Plan.UnknownConfigs, res.Plan.StrandedCores, res.Plan.StrandedGbps)
	return nil
}

type simResultRow struct {
	name            string
	calls           int
	overflow, acl   float64
	maxCPU, maxLink float64
}

func drill(env *eval.Env) error {
	res, err := eval.Drill(env)
	if err != nil {
		return err
	}
	fmt.Printf("failing %s mid-morning of the eval window's first day\n", res.FailedDC)
	fmt.Printf("%-14s %9s %10s %11s %12s %12s\n",
		"plan", "replaced", "overflow", "post-calls", "ACL before", "ACL after")
	for _, row := range []struct {
		name string
		r    *sim.DrillResult
	}{
		{"with backup", res.WithBackup},
		{"serving only", res.WithoutBackup},
	} {
		fmt.Printf("%-14s %9d %9.2f%% %11d %10.1fms %10.1fms\n",
			row.name, row.r.Replaced, 100*row.r.OverflowRateAfter(), row.r.PostCalls,
			row.r.MeanACLBefore, row.r.MeanACLAfter)
	}
	return nil
}

func forecastBaselines(env *eval.Env) error {
	res, err := eval.ForecastBaselines(env, 50)
	if err != nil {
		return err
	}
	fmt.Printf("%d configs; Holt-Winters wins %d (%.0f%%); median skill %+.1f%%\n",
		res.Configs, res.Wins, 100*float64(res.Wins)/float64(res.Configs), 100*res.MedianSkill)
	fmt.Printf("mean RMSE: HW %.2f, seasonal-naive %.2f, drift %.2f\n",
		res.MeanHW, res.MeanSeasonalNaive, res.MeanDrift)
	return nil
}

func chaos(env *eval.Env) error {
	res, err := eval.Chaos(env, 1)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d calls (%d events); store partitioned for the middle third (seed %d)\n",
		res.Calls, res.Events, res.Seed)
	fmt.Printf("%-22s %12s %12s\n", "", "clean", "chaos")
	fmt.Printf("%-22s %12.0f %12.0f\n", "events/s", res.CleanEventsPerSec, res.ChaosEventsPerSec)
	fmt.Printf("%-22s %12d %12d\n", "migrations", res.CleanMigrated, res.ChaosMigrated)
	fmt.Printf("max op stall under faults: %s (bounded by client deadlines)\n", res.MaxStall)
	fmt.Printf("degraded intervals %d, journaled writes replayed %d, dropped %d\n",
		res.Degraded, res.Replayed, res.Dropped)
	fmt.Printf("lost transitions after replay: %d (want 0)\n", res.LostTransitions)
	return nil
}

func partitionExp(env *eval.Env) error {
	res, err := eval.PartitionDrill(env, 1)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d calls (%d events) against a primary/standby pair; primary partitioned at the first third (seed %d)\n",
		res.Calls, res.Events, res.Seed)
	fmt.Printf("%-28s %12.0f\n", "events/s (incl. failover)", res.EventsPerSec)
	fmt.Printf("%-28s %12s\n", "standby promotion latency", res.PromotionLatency.Round(time.Millisecond))
	fmt.Printf("%-28s %12s\n", "max op stall", res.MaxStall.Round(time.Millisecond))
	fmt.Printf("%-28s %12d\n", "replicated log position", res.ReplicatedSeq)
	fmt.Printf("degraded intervals %d, journaled writes replayed %d, dropped %d\n",
		res.Degraded, res.Replayed, res.Dropped)
	fmt.Printf("lost transitions after failover: %d (want 0)\n", res.LostTransitions)
	return nil
}

func shardExp(env *eval.Env) error {
	res, err := eval.ShardDrill(env, 1)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d calls (%d events) against a %d-shard fleet; the two-shard node killed at the first third (seed %d)\n",
		res.Calls, res.Events, res.Shards, res.Seed)
	fmt.Printf("%-28s %12.0f\n", "events/s (incl. takeover)", res.EventsPerSec)
	fmt.Printf("%-28s %12s\n", "shard takeover latency", res.PromotionLatency.Round(time.Millisecond))
	fmt.Printf("%-28s %12s\n", "max stall, failed-over shards", res.MaxStall.Round(time.Millisecond))
	fmt.Printf("%-28s %12s\n", "max stall, untouched shard", res.UntouchedMaxStall.Round(time.Millisecond))
	fmt.Printf("lost transitions after takeover: %d (want 0)\n", res.LostTransitions)
	return nil
}

func reshardExp(env *eval.Env) error {
	res, err := eval.ReshardDrill(env, 1)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d calls (%d events) while splitting the ring %d → %d shards online (seed %d)\n",
		res.Calls, res.Events, res.FromShards, res.ToShards, res.Seed)
	fmt.Printf("%-28s %12.0f\n", "events/s (incl. split)", res.EventsPerSec)
	fmt.Printf("%-28s %12s\n", "split duration", res.SplitDuration.Round(time.Millisecond))
	fmt.Printf("%-28s %12d\n", "writes held at handoff", res.HeldWrites)
	fmt.Printf("%-28s %12s\n", "max held-write stall", res.MaxHeldStall.Round(time.Millisecond))
	fmt.Printf("%-28s %12s\n", "max stall otherwise", res.MaxStall.Round(time.Millisecond))
	fmt.Printf("final ring epoch: %d; lost transitions after split: %d (want 0)\n",
		res.FinalEpoch, res.LostTransitions)
	return nil
}

func predictMigrations(env *eval.Env) error {
	res, err := eval.PredictiveMigration(env)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %12s\n", "", "no predictor", "with predictor")
	fmt.Printf("%-22s %11.2f%% %11.2f%%\n", "migration rate (all)", 100*res.Without, 100*res.With)
	fmt.Printf("%-22s %11.2f%% %11.2f%%\n", "recurring calls only", 100*res.RecurringWithout, 100*res.RecurringWith)
	fmt.Printf("predicted placements: %d of %d recurring calls\n", res.PredictedCalls, res.RecurringCalls)
	return nil
}

func ablationBackup(env *eval.Env) error {
	res, err := eval.AblationBackup(env)
	if err != nil {
		return err
	}
	fmt.Printf("peak-aware:     %.0f cores (compute cost %.1f)\n", res.BaseCores, res.BaseComputeCost)
	fmt.Printf("default backup: %.0f cores (compute cost %.1f, %.2fx peak-aware)\n",
		res.VariantCores, res.VariantCompute, res.ComputeRatioVariant)
	return nil
}

// parseDelays parses the -des-detect list.
func parseDelays(s string) ([]time.Duration, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-des-detect: %w", err)
		}
		out = append(out, d)
	}
	return out, nil
}

// dessweep simulates the full fleet at call granularity — 10M calls across
// the 12 default DCs — under each placement policy, on the internal/des
// engine. With -des-detect it also sweeps failover detection timing through
// a peak-hour DC outage. The first run's decision trace (span JSONL, the
// live controller's format) goes to -des-trace for cmd/sbtrace.
func dessweep(*eval.Env) error {
	calls := *desCalls
	if calls <= 0 {
		calls = 10_000_000
		if desScale == "quick" {
			calls = 100_000
		}
	}
	seed := desSeed
	if seed == 0 {
		seed = 1
	}
	delays, err := parseDelays(*desDetect)
	if err != nil {
		return err
	}

	// Determinism self-check first: byte-identical trace on a re-run, and a
	// different seed must diverge. A violation fails the experiment (and the
	// CI smoke job) outright.
	base := eval.DESSweepConfig{Calls: calls, Seed: seed, DetectDelays: delays}
	if err := eval.DESSeedStable(base); err != nil {
		return err
	}
	fmt.Printf("seed-stability: ok (same seed replays byte-identical, different seed diverges)\n")

	policies := []string{"lowest-acl", "least-loaded", "power-of-two", "best-fit"}
	fmt.Printf("%d calls/run, seed %d; 12 DCs, headroom 1.25x expected peak\n", calls, seed)
	if len(delays) > 0 {
		fmt.Printf("failure scenario: busiest DC down 13:00-15:00, detection swept over %v\n", delays)
	}
	fmt.Printf("%-14s %8s %10s %9s %9s %9s %8s %10s %9s %12s\n",
		"policy", "detect", "placed", "overflow", "meanACL", "regret", "maxutil", "disrupted", "peak-cc", "Mev/s")
	for i, pname := range policies {
		cfg := base
		cfg.Policies = []string{pname}
		var traceW io.Writer
		var traceF *os.File
		if i == 0 && *desTrace != "" {
			traceF, err = os.Create(*desTrace)
			if err != nil {
				return err
			}
			traceW = traceF
		}
		start := time.Now()
		rows, err := eval.DESSweep(cfg, traceW)
		elapsed := time.Since(start)
		if traceF != nil {
			if cerr := traceF.Close(); err == nil && cerr != nil {
				err = cerr
			}
		}
		if err != nil {
			return err
		}
		var events uint64
		for _, r := range rows {
			events += r.Res.Events
			detect := "-"
			if len(delays) > 0 {
				detect = r.Detect.String()
			}
			fmt.Printf("%-14s %8s %10d %8.3f%% %7.1fms %7.2fms %8.2f %9.0fcs %9d %12s\n",
				r.Policy, detect, r.Res.Placed, 100*r.Res.OverflowShare, r.Res.MeanACLms,
				r.Res.RegretMeanMs, r.Res.MaxCoreUtil, r.Res.DisruptedCallSeconds,
				r.Res.PeakConcurrent, "")
		}
		fmt.Printf("%-14s %d events in %.2fs = %.2f Mev/s (single core)\n",
			pname+":", events, elapsed.Seconds(), float64(events)/elapsed.Seconds()/1e6)
	}
	if *desTrace != "" {
		fmt.Printf("decision trace: %s (analyze with: go run ./cmd/sbtrace -f %s)\n", *desTrace, *desTrace)
	}
	return nil
}
