// Command sbproxy runs the fault-injection TCP proxy (internal/faults) as a
// standalone process, with an HTTP control surface for scripted chaos drills:
// point a kvstore client (or a standby's -repl-peer) at -listen instead of
// the store, then flip faults on and off with curl. The CI partition smoke
// uses it to blackhole a live primary and watch the standby promote.
//
//	sbproxy -listen 127.0.0.1:7320 -upstream 127.0.0.1:7311 -ctl 127.0.0.1:7321 &
//	curl -X POST localhost:7321/partition   # silent blackhole, conns stay open
//	curl -X POST localhost:7321/heal        # bytes flow again
//	curl -X POST localhost:7321/cut         # sever conns, refuse new ones
//	curl -X POST localhost:7321/restore     # accept again
//
// -latency 20ms -latency-prob 0.3 arms seeded per-operation latency
// injection from startup, for drills that want jitter rather than outage
// (the CI reshard smoke runs its split under this).
package main

import (
	"encoding/json"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"time"

	"switchboard/internal/faults"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7320", "proxy listen address clients dial instead of the upstream")
	upstream := flag.String("upstream", "", "upstream address traffic is forwarded to (required)")
	ctl := flag.String("ctl", "127.0.0.1:7321", "HTTP control listen address")
	latency := flag.Duration("latency", 0, "inject this delay on proxied I/O (0 disables); jitter chaos for reshard/failover drills")
	latencyProb := flag.Float64("latency-prob", 1, "per-operation probability of the injected latency, in (0,1]")
	seed := flag.Int64("seed", 1, "fault-injector seed; same seed + same traffic = same injected faults")
	flag.Parse()
	if *upstream == "" {
		slog.Error("missing -upstream")
		os.Exit(1)
	}

	var inj *faults.Injector
	if *latency > 0 {
		inj = faults.NewInjector(*seed,
			faults.Rule{Kind: faults.Latency, Delay: *latency, Prob: *latencyProb})
		slog.Info("latency injection armed", "delay", *latency, "prob", *latencyProb, "seed", *seed)
	}
	proxy, err := faults.NewProxyAt(*listen, *upstream, inj)
	if err != nil {
		slog.Error("starting proxy", "err", err)
		os.Exit(1)
	}
	defer func() { _ = proxy.Close() }()

	// Each control verb answers with the proxy's current topology so drill
	// scripts can log what they just did.
	state := "forwarding"
	mux := http.NewServeMux()
	act := func(verb string, fn func()) {
		mux.HandleFunc("POST /"+verb, func(w http.ResponseWriter, r *http.Request) {
			fn()
			state = verb
			slog.Info("fault flipped", "verb", verb)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]string{
				"state": verb, "listen": proxy.Addr(), "upstream": *upstream,
			})
		})
	}
	act("partition", proxy.Partition)
	act("heal", proxy.Heal)
	act("cut", proxy.Cut)
	act("restore", proxy.Restore)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"state": state, "listen": proxy.Addr(), "upstream": *upstream,
		})
	})

	slog.Info("sbproxy up", "listen", proxy.Addr(), "upstream", *upstream, "ctl", *ctl)
	srv := &http.Server{Addr: *ctl, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil {
		slog.Error("control listener", "err", err)
		os.Exit(1)
	}
}
