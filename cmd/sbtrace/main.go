// Command sbtrace reassembles the JSONL span log written by
// `switchboard -span-log` (see internal/obs/span) into operator-readable
// views:
//
//   - a per-leg latency table: for every span name (a "leg" of the request
//     path: the HTTP edge, the controller decision, each kvstore verb),
//     count and p50/p90/p99/max durations across the whole log;
//   - a waterfall of one trace: the span tree indented by parentage, each
//     span's offset from the root and a bar showing where its time sits
//     inside the root's window;
//   - the trace's critical-path breakdown: the root's wall time partitioned
//     exactly among the spans that were active (a child's window is
//     attributed to the child, the gaps to the span itself), so the
//     breakdown sums to the root duration and shows where the time went.
//
// Usage:
//
//	sbtrace -f spans.jsonl              # legs table + slowest trace
//	sbtrace -f spans.jsonl -trace 4f2e8a91b3c07d65
//	switchboard -span-log /dev/stdout | sbtrace
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"switchboard/internal/obs/span"
)

func main() {
	file := flag.String("f", "", "span JSONL file (empty reads stdin)")
	traceArg := flag.String("trace", "", "trace ID (16 hex digits) to detail; default: the slowest root")
	width := flag.Int("width", 40, "waterfall bar width in columns")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		in = f
	}
	recs, err := span.ReadRecords(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(recs) == 0 {
		fmt.Println("no spans")
		return
	}

	legsTable(os.Stdout, recs)

	var want span.ID
	if *traceArg != "" {
		want, err = span.ParseID(*traceArg)
		if err != nil {
			log.Fatalf("bad -trace %q: %v", *traceArg, err)
		}
	} else {
		want = slowestTrace(recs)
	}
	tr := filterTrace(recs, want)
	if len(tr) == 0 {
		log.Fatalf("trace %s not in log", want)
	}
	fmt.Println()
	waterfall(os.Stdout, tr, *width)
	fmt.Println()
	criticalPath(os.Stdout, tr)
}

// legsTable prints per-span-name latency percentiles across all records.
func legsTable(w io.Writer, recs []span.Record) {
	byName := map[string][]time.Duration{}
	for _, r := range recs {
		byName[r.Name] = append(byName[r.Name], r.Duration)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	_, _ = fmt.Fprintf(w, "%-28s %7s %10s %10s %10s %10s\n", "leg", "count", "p50", "p90", "p99", "max")
	for _, n := range names {
		ds := byName[n]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		_, _ = fmt.Fprintf(w, "%-28s %7d %10s %10s %10s %10s\n", n, len(ds),
			fmtDur(pct(ds, 0.50)), fmtDur(pct(ds, 0.90)), fmtDur(pct(ds, 0.99)), fmtDur(ds[len(ds)-1]))
	}
}

// pct returns the q-quantile of sorted durations (nearest rank).
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// slowestTrace picks the trace whose root span (no parent) has the longest
// duration — usually the trace worth looking at first.
func slowestTrace(recs []span.Record) span.ID {
	var best span.ID
	var bestDur time.Duration = -1
	for _, r := range recs {
		if r.Parent == 0 && r.Duration > bestDur {
			best, bestDur = r.Trace, r.Duration
		}
	}
	if bestDur < 0 {
		// No root in the log (rotated away); fall back to any trace.
		best = recs[0].Trace
	}
	return best
}

func filterTrace(recs []span.Record, id span.ID) []span.Record {
	var out []span.Record
	for _, r := range recs {
		if r.Trace == id {
			out = append(out, r)
		}
	}
	return out
}

// tree indexes one trace's records by parentage. Spans whose parent is
// missing from the log (rotated away) count as roots so nothing is dropped.
type tree struct {
	children map[span.ID][]span.Record
	roots    []span.Record
}

func buildTree(tr []span.Record) *tree {
	have := map[span.ID]bool{}
	for _, r := range tr {
		have[r.Span] = true
	}
	t := &tree{children: map[span.ID][]span.Record{}}
	for _, r := range tr {
		if r.Parent != 0 && have[r.Parent] {
			t.children[r.Parent] = append(t.children[r.Parent], r)
		} else {
			t.roots = append(t.roots, r)
		}
	}
	byStart := func(s []span.Record) {
		sort.Slice(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(t.roots)
	for _, c := range t.children {
		byStart(c)
	}
	return t
}

// waterfall prints the span tree with offsets relative to the first root and
// bars positioned inside the trace's wall-clock window.
func waterfall(w io.Writer, tr []span.Record, width int) {
	t := buildTree(tr)
	origin := t.roots[0].Start
	var end time.Time
	for _, r := range tr {
		if r.End().After(end) {
			end = r.End()
		}
	}
	total := end.Sub(origin)
	_, _ = fmt.Fprintf(w, "trace %s (%d spans, %s):\n", tr[0].Trace, len(tr), fmtDur(total))
	var walk func(r span.Record, depth int)
	walk = func(r span.Record, depth int) {
		label := strings.Repeat("  ", depth) + r.Name
		status := ""
		if r.Status != "" {
			status = " [" + r.Status + "]"
		}
		if rt := r.Attrs.Get("retry"); rt == "true" {
			status += " [retry]"
		}
		_, _ = fmt.Fprintf(w, "  %-34s %9s %9s  |%s|%s\n", label,
			"+"+fmtDur(r.Start.Sub(origin)), fmtDur(r.Duration), bar(r, origin, total, width), status)
		for _, c := range t.children[r.Span] {
			walk(c, depth+1)
		}
	}
	for _, r := range t.roots {
		walk(r, 0)
	}
}

// bar renders a fixed-width gutter with the span's active window filled.
func bar(r span.Record, origin time.Time, total time.Duration, width int) string {
	if total <= 0 || width <= 0 {
		return ""
	}
	from := int(float64(r.Start.Sub(origin)) / float64(total) * float64(width))
	n := int(float64(r.Duration) / float64(total) * float64(width))
	if n < 1 {
		n = 1
	}
	if from >= width {
		from = width - 1
	}
	if from+n > width {
		n = width - from
	}
	return strings.Repeat(" ", from) + strings.Repeat("#", n) + strings.Repeat(" ", width-from-n)
}

// criticalPath partitions each root's wall time among the spans that were
// active: children are swept in start order, each child's (clipped,
// non-overlapping) window is attributed to that child recursively, and the
// uncovered gaps belong to the span itself. The result is an exact partition
// — per-name totals sum to the root duration.
func criticalPath(w io.Writer, tr []span.Record) {
	t := buildTree(tr)
	selfTime := map[string]time.Duration{}
	var attribute func(r span.Record, from, to time.Time)
	attribute = func(r span.Record, from, to time.Time) {
		cursor := from
		for _, c := range t.children[r.Span] {
			s, e := c.Start, c.End()
			if s.Before(cursor) {
				s = cursor
			}
			if e.After(to) {
				e = to
			}
			if !e.After(s) {
				continue
			}
			selfTime[r.Name] += s.Sub(cursor)
			attribute(c, s, e)
			cursor = e
		}
		if to.After(cursor) {
			selfTime[r.Name] += to.Sub(cursor)
		}
	}
	var total time.Duration
	for _, r := range t.roots {
		attribute(r, r.Start, r.End())
		total += r.Duration
	}
	type row struct {
		name string
		d    time.Duration
	}
	rows := make([]row, 0, len(selfTime))
	var accounted time.Duration
	for n, d := range selfTime {
		rows = append(rows, row{n, d})
		accounted += d
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	_, _ = fmt.Fprintf(w, "critical path (root %s, accounted %s, %.1f%%):\n",
		fmtDur(total), fmtDur(accounted), 100*float64(accounted)/float64(max64(total, 1)))
	for _, r := range rows {
		_, _ = fmt.Fprintf(w, "  %-28s %10s %5.1f%%\n", r.name, fmtDur(r.d), 100*float64(r.d)/float64(max64(total, 1)))
	}
}

func max64(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// fmtDur renders a duration compactly (microsecond resolution below 1ms,
// 10µs above, never scientific notation).
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
