// Command sbgen generates a synthetic Microsoft-Teams-like call trace and
// streams it as JSON Lines (one call record per line) to stdout or a file.
// The trace is deterministic for a given seed, so downstream experiments are
// reproducible. The output feeds cmd/sbplan and any tool speaking the
// internal/tracefile format.
//
// Usage:
//
//	sbgen -days 7 -calls 20000 -seed 1 > trace.jsonl
//	sbgen -days 1 -out day.jsonl -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"switchboard"
	"switchboard/internal/tracefile"
)

func main() {
	days := flag.Int("days", 1, "trace length in days")
	calls := flag.Int("calls", 5000, "approximate calls per day")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output path (default stdout)")
	stats := flag.Bool("stats", false, "print summary statistics to stderr")
	flag.Parse()

	cfg := switchboard.DefaultTraceConfig()
	cfg.Days = *days
	cfg.CallsPerDay = *calls
	cfg.Seed = *seed
	gen, err := switchboard.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		dst = f
	}
	w := tracefile.NewWriter(dst)

	var legs int
	perMedia := map[string]int{}
	gen.EachCall(func(r *switchboard.CallRecord) bool {
		if err := w.Write(r); err != nil {
			log.Fatal(err)
		}
		legs += len(r.Legs)
		perMedia[r.Config().Media.String()]++
		return true
	})
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	if *stats {
		n := w.Count()
		fmt.Fprintf(os.Stderr, "calls:        %d\n", n)
		fmt.Fprintf(os.Stderr, "participants: %d (%.1f per call)\n", legs, float64(legs)/float64(n))
		for _, m := range []string{"audio", "screenshare", "video"} {
			fmt.Fprintf(os.Stderr, "%-13s %d (%.0f%%)\n", m+":", perMedia[m], 100*float64(perMedia[m])/float64(n))
		}
	}
}
