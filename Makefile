# Tier-1 gate: everything `make check` runs must stay green on every commit
# (see README.md, "Developing").
GO ?= go

.PHONY: check check-race build vet fmt lint lint-json lint-fixtures test race bench bench-core des-smoke clean

check: build vet fmt lint test

check-race: race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail when it prints anything.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs running on:"; echo "$$out"; exit 1; fi

# Project-specific static analysis: the four intra-procedural v1 analyzers
# (determinism, lock-discipline, float-compare, error-sink) plus the four
# interprocedural v2 analyzers (hotpathalloc, fenceflow, ctxflow,
# atomicdiscipline); see DESIGN.md "Static analysis". The committed baseline
# is empty — the module is clean and any new finding fails the gate.
lint:
	$(GO) run ./cmd/sblint -baseline .sblint-baseline ./...

# Same gate, rendered as a JSON findings artifact for CI upload. Exit status
# is preserved: the artifact shows what failed.
lint-json:
	$(GO) run ./cmd/sblint -baseline .sblint-baseline -json ./... > sblint-findings.json; \
		status=$$?; cat sblint-findings.json; exit $$status

# The lint suite's own fixture tests (analyzer regression harness).
lint-fixtures:
	$(GO) test -race ./internal/lint/ ./cmd/sblint/...

test:
	$(GO) test ./...

# -short skips the minutes-long single-threaded LP replays (they exercise
# no concurrency; the plain `test` target still runs them in full) so the
# race gate finishes in CI-friendly time.
race:
	$(GO) test -race -short -timeout 20m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Core hot-path perf trajectory: controller placement + kvstore round-trip,
# appended to the BENCH_core.json run history keyed by the current revision
# (see cmd/sbbench). Gating: a >10% ns/op regression on a core benchmark
# fails the target (and CI); export SBBENCH_SKIP_GATE=1 — in CI, apply the
# bench-exempt PR label — when a regression is deliberate.
bench-core:
	$(GO) run ./cmd/sbbench -o BENCH_core.json -rev "$$(git rev-parse --short HEAD)" -gate
	@cat BENCH_core.json

# Deterministic-simulation smoke: a 100k-call dessweep under the race
# detector. sbexp exits non-zero on any dropped event or a seed-stability
# violation (same seed must replay byte-identical, a different seed must
# diverge), and the run's decision trace lands in des-smoke-trace.jsonl —
# span JSONL that cmd/sbtrace renders unchanged (CI uploads it as an
# artifact and does exactly that).
des-smoke:
	$(GO) run -race ./cmd/sbexp -exp dessweep -scale quick \
		-des-detect 30s -des-trace des-smoke-trace.jsonl

clean:
	$(GO) clean ./...
