# Tier-1 gate: everything `make check` runs must stay green on every commit
# (see README.md, "Developing").
GO ?= go

.PHONY: check build vet fmt test race bench clean

check: build vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail when it prints anything.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needs running on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
