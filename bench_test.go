// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md's per-experiment index). Each BenchmarkTableN/BenchmarkFigN
// wraps the corresponding experiment at a reduced, fixed scale so
// `go test -bench=. -benchmem` completes in minutes; cmd/sbexp runs the same
// experiments at the full default scale.
package switchboard_test

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"switchboard"
	"switchboard/internal/controller"
	"switchboard/internal/eval"
	"switchboard/internal/kvstore"
	"switchboard/internal/kvstore/replica"
	"switchboard/internal/lp"
	"switchboard/internal/model"
	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
	"switchboard/internal/provision"
)

// benchEnv is shared across benchmarks; building it (trace generation and
// ingestion) is itself measured by BenchmarkEnvBuild.
var (
	benchOnce sync.Once
	benchVal  *eval.Env
	benchErr  error
)

func benchConfig() eval.Config {
	return eval.Config{
		Seed:               1,
		TrainDays:          15, // two Holt-Winters seasons + one day
		EvalDays:           1,
		CallsPerDay:        1500,
		TopConfigs:         12,
		SlotStride:         8,
		LatencyThresholdMs: 120,
		MinLatencySamples:  15,
		KeepEvalRecords:    true,
	}
}

func benchEnv(b *testing.B) *eval.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchVal, benchErr = eval.NewEnv(benchConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchVal
}

// BenchmarkCorePlacement measures the controller's in-memory placement hot
// path (CallStarted + CallEnded, no store attached) with metrics and tracing
// enabled — the latency floor every realtime request pays before any
// persistence, production-shaped. cmd/sbbench runs the same loop to emit
// BENCH_core.json.
func BenchmarkCorePlacement(b *testing.B) {
	reg := obs.NewRegistry()
	tracer := span.NewTracer(1, span.NewRing(span.DefaultRingCapacity))
	ctrl, err := switchboard.NewController(switchboard.ControllerConfig{
		World:   switchboard.DefaultWorld(),
		Metrics: controller.NewMetrics(reg),
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, root := tracer.Start(context.Background(), "bench")
	defer root.End()
	now := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i + 1)
		if _, err := ctrl.CallStarted(ctx, id, "JP", now); err != nil {
			b.Fatal(err)
		}
		if err := ctrl.CallEnded(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreKVRoundTrip measures one kvstore HSET over loopback TCP — the
// synchronous store write on the controller's persistence path.
func BenchmarkCoreKVRoundTrip(b *testing.B) {
	srv := switchboard.NewKVServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()
	client, err := switchboard.DialKV(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.HSet("call:1", "state", "active"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvBuild measures the trace-generation + ingestion pipeline that
// feeds every experiment.
func BenchmarkEnvBuild(b *testing.B) {
	cfg := benchConfig()
	cfg.TrainDays, cfg.EvalDays = 2, 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.NewEnv(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1MediaLoads regenerates Table 1 (trivially cheap; included
// for completeness of the per-experiment index).
func BenchmarkTable1MediaLoads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range model.MediaTypes() {
			_ = m.ComputeLoad()
			_ = m.NetworkLoad()
		}
	}
}

// BenchmarkFig3DemandPeaks regenerates the time-shifted per-country demand
// series.
func BenchmarkFig3DemandPeaks(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.Fig3(env)
		if len(res.Series) != 3 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkFig4PeakAwareToy regenerates the §4.2 worked example (two LPs).
func BenchmarkFig4PeakAwareToy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.Fig4()
		if err != nil || res.PeakAwareTotal != 320 {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkFig7aForecast regenerates the top-config forecast.
func BenchmarkFig7aForecast(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig7a(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7bGrowth regenerates the per-config growth rates.
func BenchmarkFig7bGrowth(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig7b(env, 15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7cCoverage regenerates the top-N coverage curve.
func BenchmarkFig7cCoverage(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eval.Fig7c(env); res.Distinct == 0 {
			b.Fatal("no configs")
		}
	}
}

// BenchmarkTable3Provisioning regenerates the headline comparison (six
// provisioning runs, including the Switchboard scenario LPs with backup).
func BenchmarkTable3Provisioning(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table3(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4ForecastDelta regenerates the forecast-vs-truth deltas
// (twelve provisioning runs plus per-config forecasting).
func BenchmarkTable4ForecastDelta(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table4(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8JoinCDF regenerates the participant join-time CDF.
func BenchmarkFig8JoinCDF(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eval.Fig8(env); res.At300s == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkMigrationRate regenerates the §6.4 migration comparison (plan
// build + two full controller replays).
func BenchmarkMigrationRate(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Migration(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ForecastCDF regenerates the per-config forecast error CDF.
func BenchmarkFig9ForecastCDF(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig9(env, env.Cfg.TopConfigs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ControllerThroughput regenerates one Fig 10 sweep point
// (4 worker threads against the simulated cloud store).
func BenchmarkFig10ControllerThroughput(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig10(env, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMOMCPredictor regenerates the §8 predictor comparison.
func BenchmarkMOMCPredictor(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Predict(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationJoint regenerates the §4.3 joint-vs-compute-only ablation.
func BenchmarkAblationJoint(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationJoint(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBackup regenerates the §4.2 peak-aware-vs-default-backup
// ablation.
func BenchmarkAblationBackup(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AblationBackup(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimFidelity regenerates the call-level replay validation.
func BenchmarkSimFidelity(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.SimFidelity(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailureDrill regenerates the DC-failure drill (backup vs
// serving-only plans under a mid-day DC loss).
func BenchmarkFailureDrill(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Drill(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictiveMigration regenerates the §8 predictive-placement
// extension experiment.
func BenchmarkPredictiveMigration(b *testing.B) {
	env := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.PredictiveMigration(env); err != nil {
			b.Fatal(err)
		}
	}
}

// provisioningLP builds one F0-scenario-sized provisioning problem for the
// simplex ablation benchmarks.
func provisioningLP(env *eval.Env) (*lp.Problem, error) {
	demand := env.EvalDB.PeakEnvelope(env.Cfg.TopConfigs)
	in := &provision.Inputs{
		World:              env.World,
		Latency:            env.Est,
		Demand:             demand,
		LatencyThresholdMs: env.Cfg.LatencyThresholdMs,
		SlotStride:         env.Cfg.SlotStride,
	}
	lm, err := provision.NewLoadModel(in)
	if err != nil {
		return nil, err
	}
	// Rebuild the LP the way solveScenario does, via the public pieces:
	// a min-cost assignment with per-DC and per-link peaks.
	w := env.World
	p := lp.New(lp.Minimize)
	cp := make([]int, len(w.DCs()))
	for x := range cp {
		cp[x] = p.AddVar("CP", w.DCs()[x].CoreCost)
	}
	np := make([]int, len(w.Links()))
	for l := range np {
		np[l] = p.AddVar("NP", w.Links()[l].CostPerGbps)
	}
	d := lm.Demand()
	for t := range d.Counts {
		type acc struct {
			cols []int
			vals []float64
		}
		cpu := make([]acc, len(cp))
		net := make([]acc, len(np))
		for c, dem := range d.Counts[t] {
			if dem <= 0 {
				continue
			}
			var rowCols []int
			var rowVals []float64
			for _, x := range lm.Allowed(c) {
				v := p.AddVar("S", 0)
				rowCols = append(rowCols, v)
				rowVals = append(rowVals, 1)
				cpu[x].cols = append(cpu[x].cols, v)
				cpu[x].vals = append(cpu[x].vals, lm.ComputeLoad(c))
				for _, ll := range lm.LinkLoads(c, x) {
					net[ll.Link].cols = append(net[ll.Link].cols, v)
					net[ll.Link].vals = append(net[ll.Link].vals, ll.Gbps)
				}
			}
			p.AddRow("demand", rowCols, rowVals, lp.EQ, dem)
		}
		for x := range cpu {
			if len(cpu[x].cols) > 0 {
				p.AddRow("cpu", append(cpu[x].cols, cp[x]), append(cpu[x].vals, -1), lp.LE, 0)
			}
		}
		for l := range net {
			if len(net[l].cols) > 0 {
				p.AddRow("net", append(net[l].cols, np[l]), append(net[l].vals, -1), lp.LE, 0)
			}
		}
	}
	return p, nil
}

// BenchmarkSimplexDense solves the provisioning-shaped LP with the dense
// tableau backend (ablation A1).
func BenchmarkSimplexDense(b *testing.B) {
	env := benchEnv(b)
	p, err := provisioningLP(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve(lp.Options{Method: lp.MethodDense})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

// BenchmarkSimplexRevised solves the same LP with the revised simplex
// backend (ablation A1).
func BenchmarkSimplexRevised(b *testing.B) {
	env := benchEnv(b)
	p, err := provisioningLP(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve(lp.Options{Method: lp.MethodRevised})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

// BenchmarkFailover measures the HA pair's promotion latency: a primary with
// an attached, caught-up standby is killed and the timer runs until a write
// lands on the promoted standby — silence detection, promotion, and the
// client's failover included. cmd/sbbench runs the same loop to emit the
// failover_promotion point in BENCH_core.json.
func BenchmarkFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		psrv := kvstore.NewServer()
		pl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = psrv.Serve(pl) }()
		replica.NewPrimary(psrv, 0, replica.PrimaryOptions{
			Heartbeat:  10 * time.Millisecond,
			AckTimeout: 200 * time.Millisecond,
		})
		ssrv := kvstore.NewServer()
		sl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = ssrv.Serve(sl) }()
		standby := replica.NewStandby(ssrv, pl.Addr().String(), replica.StandbyOptions{
			FailoverTimeout: 75 * time.Millisecond,
			DialTimeout:     50 * time.Millisecond,
			ReadTimeout:     30 * time.Millisecond,
			RedialInterval:  5 * time.Millisecond,
		})
		go standby.Run()
		client, err := kvstore.DialFailover(
			[]string{pl.Addr().String(), sl.Addr().String()},
			kvstore.Options{
				DialTimeout: 50 * time.Millisecond,
				IOTimeout:   50 * time.Millisecond,
				MaxRetries:  2,
				BackoffMin:  time.Millisecond,
				BackoffMax:  5 * time.Millisecond,
				Seed:        int64(i + 1),
			})
		if err != nil {
			b.Fatal(err)
		}
		// One acked write through the attached standby proves the pair is
		// formed and caught up before the clock starts.
		if err := client.HSet("call:1", "state", "active"); err != nil {
			b.Fatal(err)
		}
		for standby.LastSeq() == 0 {
			time.Sleep(time.Millisecond)
		}

		b.StartTimer()
		_ = psrv.Close()
		for {
			if err := client.HSet("call:2", "state", "active"); err == nil {
				break
			}
		}
		b.StopTimer()

		_ = client.Close()
		standby.Stop()
		<-standby.Done()
		_ = ssrv.Close()
		b.StartTimer()
	}
}
