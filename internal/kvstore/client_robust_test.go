package kvstore

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fastOpts() Options {
	return Options{
		DialTimeout: 250 * time.Millisecond,
		IOTimeout:   250 * time.Millisecond,
		MaxRetries:  -1,
		BackoffMin:  20 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	}
}

// flakyServer accepts connections, reads a little, and hangs up without
// replying — every command dies mid-flight. It counts accepted connections.
func flakyServer(t *testing.T) (addr string, accepted *atomic.Int64, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			n.Add(1)
			go func(c net.Conn) {
				buf := make([]byte, 256)
				c.Read(buf)
				c.Close()
			}(c)
		}
	}()
	return l.Addr().String(), &n, func() { l.Close() }
}

func TestClientPoisonedFailsFast(t *testing.T) {
	srv, addr := startServer(t)
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	// The in-flight command hits a transport error and poisons the client.
	if _, err := c.Get("k"); err == nil {
		t.Fatal("command against a dead store succeeded")
	}
	if !c.Broken() {
		t.Fatal("client not poisoned after transport error")
	}
	// One redial attempt fails (nothing listens), opening the backoff
	// window; within it, commands fail fast with ErrBroken instead of
	// re-touching the network.
	c.Get("k")
	start := time.Now()
	_, err = c.Get("k")
	if !errors.Is(err, ErrBroken) {
		t.Fatalf("err = %v, want ErrBroken", err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("fail-fast path took %v", elapsed)
	}
}

func TestClientNonIdempotentNotRetried(t *testing.T) {
	addr, accepted, stop := flakyServer(t)
	defer stop()
	opts := fastOpts()
	opts.MaxRetries = 3
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := accepted.Load(); got != 1 {
		t.Fatalf("accepted = %d after dial", got)
	}
	// INCR died mid-flight: it may have executed server-side, so it must
	// NOT be replayed on a fresh connection.
	if _, err := c.Incr("counter"); err == nil {
		t.Fatal("INCR against flaky server succeeded")
	}
	if got := accepted.Load(); got != 1 {
		t.Errorf("non-idempotent command was retried (%d connections)", got)
	}
	// An idempotent command IS retried (each retry redials).
	if _, err := c.Get("k"); err == nil {
		t.Fatal("GET against flaky server succeeded")
	}
	if got := accepted.Load(); got < 3 {
		t.Errorf("idempotent command not retried (%d connections)", got)
	}
}

func TestClientRedialsAfterRestart(t *testing.T) {
	srv, addr := startServer(t)
	opts := fastOpts()
	opts.MaxRetries = 2
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Restart a fresh store on the same address.
	srv2 := NewServer()
	var l net.Listener
	for i := 0; ; i++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go srv2.Serve(l)
	defer srv2.Close()

	// The idempotent command survives transparently: the first attempt
	// fails on the dead connection, the retry redials into the new server.
	if _, err := c.Get("k"); !errors.Is(err, ErrNil) {
		t.Fatalf("GET after restart = %v, want ErrNil (fresh store)", err)
	}
	if c.Redials() < 1 {
		t.Errorf("Redials = %d, want >= 1", c.Redials())
	}
	if c.Broken() {
		t.Error("client still poisoned after successful redial")
	}
}

func TestClientDeadlineOnStalledServer(t *testing.T) {
	// A server that accepts and then reads forever without replying.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()

	c, err := DialOptions(l.Addr().String(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Get("k")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("command against stalled server succeeded")
	}
	if ne := net.Error(nil); !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want a timeout", err)
	}
	if elapsed > time.Second {
		t.Errorf("deadline took %v to fire, want ~250ms", elapsed)
	}
	if !c.Broken() {
		t.Error("client not poisoned after deadline")
	}
}

func TestPipelineServerErrorKeepsConn(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	replies, errs, err := c.Pipeline([][]string{
		{"SET", "k", "v"},
		{"INCR", "k"}, // server error: not an integer
		{"GET", "k"},
	})
	if err != nil {
		t.Fatalf("pipeline transport err = %v", err)
	}
	if replies[0].(string) != "OK" {
		t.Fatalf("replies[0] = %v", replies[0])
	}
	if !IsServerError(errs[1]) {
		t.Fatalf("errs[1] = %v, want server error", errs[1])
	}
	// Later replies still arrive and the connection stays healthy.
	if errs[2] != nil || replies[2].(string) != "v" {
		t.Fatalf("replies[2] = %v, %v", replies[2], errs[2])
	}
	if c.Broken() {
		t.Error("server error poisoned the connection")
	}
}

func TestPipelineTransportErrorPoisons(t *testing.T) {
	// A server that answers exactly one reply and hangs up: the second
	// reply dies mid-pipeline, which must poison (the stream position is
	// unrecoverable) and must never be auto-retried.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var accepted atomic.Int64
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func(c net.Conn) {
				buf := make([]byte, 1024)
				c.Read(buf)
				c.Write([]byte("+OK\r\n"))
				c.Close()
			}(c)
		}
	}()

	opts := fastOpts()
	opts.MaxRetries = 3 // must not apply to pipelines
	c, err := DialOptions(l.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	replies, _, err := c.Pipeline([][]string{{"SET", "a", "1"}, {"SET", "b", "2"}})
	if err == nil {
		t.Fatal("truncated pipeline succeeded")
	}
	if replies[0] != "OK" {
		t.Fatalf("first reply = %v, want OK before the failure", replies[0])
	}
	if !c.Broken() {
		t.Error("client not poisoned after mid-pipeline transport error")
	}
	if got := accepted.Load(); got != 1 {
		t.Errorf("pipeline was retried (%d connections)", got)
	}
}

func TestExpiryUnderConcurrentAccess(t *testing.T) {
	srv, addr := startServer(t)
	const workers = 6
	var wg sync.WaitGroup
	stopAt := time.Now().Add(300 * time.Millisecond)
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			key := "hot" + strconv.Itoa(id%2) // two contended keys
			for j := 0; time.Now().Before(stopAt); j++ {
				switch j % 4 {
				case 0:
					if err := c.Set(key, "v"); err != nil {
						errCh <- err
						return
					}
				case 1:
					// Expire immediately: other workers race the eviction.
					if _, err := c.Do("EXPIRE", key, "0"); err != nil && !IsServerError(err) {
						errCh <- err
						return
					}
				case 2:
					if _, err := c.Get(key); err != nil && !errors.Is(err, ErrNil) {
						errCh <- err
						return
					}
				case 3:
					if _, err := c.Do("TTL", key); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if srv.OpsServed() == 0 {
		t.Error("no ops served")
	}
}
