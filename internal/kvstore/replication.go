// Replication hooks: the seams internal/kvstore/replica attaches to.
//
// The server itself knows nothing about log shipping or failover. It exposes
// exactly four things: a Replicator hook that sequences and acks mutations, a
// gate that lets a standby refuse writes with a MOVED redirect, Apply for the
// standby's log-replay path, and Snapshot for catch-up. Keeping the policy in
// a separate package keeps the Fig 10 write path (no replicator attached)
// byte-for-byte what it was.

package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strconv"
	"strings"
	"time"
)

// Replicator sequences mutations into a replication log and decides when a
// write may be acked. internal/kvstore/replica.Primary implements it.
//
// Begin/Append and Begin/Abort bracket one mutation: Begin acquires the total
// mutation order, the server applies the command, and Append logs it (Abort
// logs nothing — the command failed). Holding the order across apply+append
// guarantees the log order equals the apply order, so a standby replaying the
// log converges on the same state.
type Replicator interface {
	Begin()
	Append(args []string) uint64
	Abort()
	// WaitAck blocks until the ack policy is satisfied for seq (or errors
	// after the configured timeout, in which case the reply is withheld and
	// the client sees a REPLWAIT error — applied locally but not acked).
	WaitAck(seq uint64) error
	// ServeSync takes over a connection that sent REPLSYNC and streams the
	// log to the standby until the connection dies.
	ServeSync(args []string, conn net.Conn, r *bufio.Reader, w *bufio.Writer)
}

// replicatorBox and gateBox exist so the hooks can be swapped atomically on a
// live server (a standby promotion attaches a replicator mid-flight).
type replicatorBox struct{ r Replicator }
type gateBox struct{ f func(cmd string) string }

// SetReplicator attaches (or with nil detaches) the replication hook.
func (s *Server) SetReplicator(r Replicator) {
	if r == nil {
		s.repl.Store(nil)
		return
	}
	s.repl.Store(&replicatorBox{r: r})
}

// SetGate attaches a per-command admission gate. The gate returns an empty
// string to admit, or a raw RESP error ("MOVED <addr>") to refuse. A standby
// gates mutations so clients follow the redirect to the primary; reads are
// served locally with replica (stale-read) semantics.
func (s *Server) SetGate(f func(cmd string) string) {
	if f == nil {
		s.gate.Store(nil)
		return
	}
	s.gate.Store(&gateBox{f: f})
}

// Mutates reports whether cmd changes store state — the set of verbs that
// must be replicated, fenced, and redirected off a standby.
func Mutates(cmd string) bool {
	// EqualFold instead of ToUpper: this runs on the client's per-command
	// encode path (writeCommand checks whether to arm the fence prefix) and
	// must not allocate. Keep the verb list in sync with the lint suite's
	// fenceflow analyzer (internal/lint/fenceflow.go).
	for _, m := range &mutatingCmds {
		if strings.EqualFold(cmd, m) {
			return true
		}
	}
	return false
}

// mutatingCmds lists every verb the store treats as a mutation (fenced,
// replicated, journaled).
var mutatingCmds = [...]string{
	"SET", "DEL", "INCR", "INCRBY", "HSET", "HCOPY", "EXPIRE", "PERSIST",
	"PEXPIREAT", "FLUSHALL", "SETLEASE", "DELLEASE", "LEASEGRANT", "LEASEDEL",
}

// executeReplicated applies one mutating command under the replicator's total
// mutation order, appends it to the log, and withholds the reply until the
// ack policy admits it. Error replies (first byte '-') are not replicated —
// they changed nothing. An ack timeout converts the buffered reply into a
// REPLWAIT error: the write is applied locally but the client must treat it
// like any transport-ambiguous failure, preserving "acked ⇒ on the standby".
func (s *Server) executeReplicated(repl Replicator, cmd string, args []string, w *bufio.Writer) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	repl.Begin()
	logArgs := s.dispatch(cmd, args, bw)
	_ = bw.Flush()
	var seq uint64
	if buf.Len() > 0 && buf.Bytes()[0] != '-' {
		if logArgs == nil {
			logArgs = args
		}
		seq = repl.Append(logArgs)
	} else {
		repl.Abort()
	}
	if seq != 0 {
		if err := repl.WaitAck(seq); err != nil {
			writeRawError(w, "REPLWAIT "+err.Error())
			return
		}
	}
	_, _ = w.Write(buf.Bytes())
}

// Apply executes one command against the local store without a client
// connection — the standby's replication-apply path. It bypasses the gate
// and the replicator (the entry is already sequenced) and returns any error
// reply the command produced.
func (s *Server) Apply(args []string) error {
	if len(args) == 0 {
		return errors.New("kvstore: empty apply")
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	s.opsServed.Add(1)
	cmd := strings.ToUpper(args[0])
	s.metrics.command(cmd)
	s.dispatch(cmd, args, bw)
	_ = bw.Flush()
	if buf.Len() > 0 && buf.Bytes()[0] == '-' {
		return respError(strings.TrimSuffix(buf.String()[1:], "\r\n"))
	}
	return nil
}

// Snapshot returns a command stream that rebuilds the store's current
// contents: SET/HSET per key (plus PEXPIREAT for TTL'd keys) and LEASEGRANT
// per lease. Callers needing a consistent cut against the replication log
// must block mutations around the call — replica.Primary holds its mutation
// order across Snapshot, so the cut is exactly the log position it records.
func (s *Server) Snapshot() [][]string {
	now := time.Now()
	var out [][]string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for key, e := range sh.m {
			if e.expired(now) {
				continue
			}
			switch e.kind {
			case "string":
				out = append(out, []string{"SET", key, e.str})
			case "hash":
				for f, v := range e.hash {
					out = append(out, []string{"HSET", key, f, v})
				}
			}
			if !e.expireAt.IsZero() {
				out = append(out, []string{"PEXPIREAT", key, strconv.FormatInt(e.expireAt.UnixMilli(), 10)})
			}
		}
		sh.mu.RUnlock()
	}
	out = append(out, s.leases.snapshot()...)
	return out
}

// ReadWireCommand reads one RESP command array (or inline command) from r.
// Exported for the replication stream, which reuses the command framing in
// both directions, and for protocol fuzzing.
func ReadWireCommand(r *bufio.Reader) ([]string, error) { return readCommand(r) }

// WriteWireCommand frames args as a RESP command array on w (no flush).
func WriteWireCommand(w *bufio.Writer, args []string) error {
	if _, err := w.WriteString("*" + strconv.Itoa(len(args)) + "\r\n"); err != nil {
		return err
	}
	for _, a := range args {
		if _, err := w.WriteString("$" + strconv.Itoa(len(a)) + "\r\n" + a + "\r\n"); err != nil {
			return err
		}
	}
	return nil
}
