package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"
)

// Client is a RESP client over one TCP connection. It is safe for a single
// goroutine; controller workers each own one client, mirroring the paper's
// per-thread Redis connections.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// lastRTT is the duration of the most recent round trip, exposed so
	// the controller benchmark can report write latencies (§6.6).
	lastRTT time.Duration
}

// ErrNil is returned by Get/HGet when the key or field does not exist.
var ErrNil = errors.New("kvstore: nil reply")

// Dial connects to a kvstore (or Redis) server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 16<<10),
		w:    bufio.NewWriterSize(conn, 16<<10),
	}, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }

// LastRTT returns the duration of the most recent command round trip.
func (c *Client) LastRTT() time.Duration { return c.lastRTT }

// Do sends one command and reads its reply. Integer replies are returned as
// int64, simple and bulk strings as string, nil replies as ErrNil.
func (c *Client) Do(args ...string) (interface{}, error) {
	start := time.Now()
	if err := c.writeCommand(args); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	reply, err := c.readReply()
	c.lastRTT = time.Since(start)
	return reply, err
}

// Pipeline sends several commands in one batch and returns all replies; a
// per-command nil reply appears as ErrNil in errs.
func (c *Client) Pipeline(cmds [][]string) (replies []interface{}, errs []error, err error) {
	for _, cmd := range cmds {
		if err := c.writeCommand(cmd); err != nil {
			return nil, nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, nil, err
	}
	replies = make([]interface{}, len(cmds))
	errs = make([]error, len(cmds))
	for i := range cmds {
		replies[i], errs[i] = c.readReply()
		if errs[i] != nil && !errors.Is(errs[i], ErrNil) {
			// Protocol-level failure: the connection is unusable.
			if isProtocolErr(errs[i]) {
				return replies, errs, errs[i]
			}
		}
	}
	return replies, errs, nil
}

func isProtocolErr(err error) bool {
	var re respError
	return !errors.As(err, &re)
}

// respError is a server-reported error (-ERR ...), distinct from transport
// failures.
type respError string

func (e respError) Error() string { return string(e) }

// Set stores a string value.
func (c *Client) Set(key, value string) error {
	r, err := c.Do("SET", key, value)
	if err != nil {
		return err
	}
	if s, ok := r.(string); !ok || s != "OK" {
		return fmt.Errorf("kvstore: unexpected SET reply %v", r)
	}
	return nil
}

// Get fetches a string value; ErrNil when absent.
func (c *Client) Get(key string) (string, error) {
	r, err := c.Do("GET", key)
	if err != nil {
		return "", err
	}
	s, ok := r.(string)
	if !ok {
		return "", fmt.Errorf("kvstore: unexpected GET reply %v", r)
	}
	return s, nil
}

// Incr atomically increments an integer key.
func (c *Client) Incr(key string) (int64, error) {
	r, err := c.Do("INCR", key)
	if err != nil {
		return 0, err
	}
	n, ok := r.(int64)
	if !ok {
		return 0, fmt.Errorf("kvstore: unexpected INCR reply %v", r)
	}
	return n, nil
}

// HSet stores a hash field.
func (c *Client) HSet(key, field, value string) error {
	_, err := c.Do("HSET", key, field, value)
	return err
}

// HGet fetches a hash field; ErrNil when absent.
func (c *Client) HGet(key, field string) (string, error) {
	r, err := c.Do("HGET", key, field)
	if err != nil {
		return "", err
	}
	s, ok := r.(string)
	if !ok {
		return "", fmt.Errorf("kvstore: unexpected HGET reply %v", r)
	}
	return s, nil
}

// HGetAll fetches every field of a hash (empty map when the key is absent).
func (c *Client) HGetAll(key string) (map[string]string, error) {
	r, err := c.Do("HGETALL", key)
	if err != nil {
		return nil, err
	}
	arr, ok := r.([]interface{})
	if !ok || len(arr)%2 != 0 {
		return nil, fmt.Errorf("kvstore: unexpected HGETALL reply %v", r)
	}
	out := make(map[string]string, len(arr)/2)
	for i := 0; i < len(arr); i += 2 {
		f, fok := arr[i].(string)
		v, vok := arr[i+1].(string)
		if !fok || !vok {
			return nil, fmt.Errorf("kvstore: non-string HGETALL element")
		}
		out[f] = v
	}
	return out, nil
}

// Keys lists all live keys (debugging aid; the server only supports the full
// wildcard).
func (c *Client) Keys() ([]string, error) {
	r, err := c.Do("KEYS", "*")
	if err != nil {
		return nil, err
	}
	arr, ok := r.([]interface{})
	if !ok {
		return nil, fmt.Errorf("kvstore: unexpected KEYS reply %v", r)
	}
	out := make([]string, 0, len(arr))
	for _, e := range arr {
		s, ok := e.(string)
		if !ok {
			return nil, fmt.Errorf("kvstore: non-string key")
		}
		out = append(out, s)
	}
	return out, nil
}

func (c *Client) writeCommand(args []string) error {
	if len(args) == 0 {
		return errors.New("kvstore: empty command")
	}
	c.w.WriteString("*" + strconv.Itoa(len(args)) + "\r\n")
	for _, a := range args {
		c.w.WriteString("$" + strconv.Itoa(len(a)) + "\r\n")
		c.w.WriteString(a)
		c.w.WriteString("\r\n")
	}
	return nil
}

func (c *Client) readReply() (interface{}, error) {
	line, err := readLine(c.r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errors.New("kvstore: empty reply")
	}
	switch line[0] {
	case '+':
		return line[1:], nil
	case '-':
		return nil, respError(line[1:])
	case ':':
		n, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("kvstore: bad integer reply %q", line)
		}
		return n, nil
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return nil, fmt.Errorf("kvstore: bad bulk header %q", line)
		}
		if n < 0 {
			return nil, ErrNil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, err
		}
		return string(buf[:n]), nil
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil {
			return nil, fmt.Errorf("kvstore: bad array header %q", line)
		}
		if n < 0 {
			return nil, ErrNil
		}
		out := make([]interface{}, n)
		for i := 0; i < n; i++ {
			v, err := c.readReply()
			if err != nil && !errors.Is(err, ErrNil) {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("kvstore: unknown reply type %q", line)
	}
}
