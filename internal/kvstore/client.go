package kvstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"switchboard/internal/obs/span"
)

// Options tunes the client's deadlines and redial policy. The zero value
// gives the production defaults; negative IOTimeout or MaxRetries disable
// the corresponding behavior.
type Options struct {
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// IOTimeout is the per-command read/write deadline (default 5s;
	// negative disables deadlines).
	IOTimeout time.Duration
	// MaxRetries is how many times an idempotent command is retried after
	// a transport failure, each retry preceded by a backoff sleep and a
	// redial (default 2; negative disables retries).
	MaxRetries int
	// BackoffMin and BackoffMax bound the capped exponential redial
	// backoff (defaults 50ms and 2s).
	BackoffMin, BackoffMax time.Duration
	// Seed drives the deterministic backoff jitter (default 1).
	Seed int64
	// Metrics, when non-nil, receives client telemetry (dials, redials,
	// retries, poisonings, per-command latency). Typically shared across
	// every client talking to the same store.
	Metrics *ClientMetrics
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	switch {
	case o.IOTimeout == 0:
		o.IOTimeout = 5 * time.Second
	case o.IOTimeout < 0:
		o.IOTimeout = 0
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 2
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = o.BackoffMin
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Client is a RESP client over one TCP connection. It is safe for a single
// goroutine; controller workers each own one client, mirroring the paper's
// per-thread Redis connections.
//
// A transport failure (timeout, reset, short read) mid-command leaves the
// RESP stream in an undefined position, so the client poisons the
// connection: it is closed immediately and every later command either
// redials (once the backoff window passes) or fails fast with ErrBroken.
// Only idempotent commands are retried automatically — a command that died
// in flight may or may not have executed, and INCR-style commands must not
// run twice.
type Client struct {
	// addrs is the failover set: addrs[cur] is the connection target, and a
	// failed dial rotates through the rest. A MOVED redirect (standby
	// pointing at the promoted primary) can append a new address at runtime.
	// lastAddr is the previously connected address, for failover counting.
	addrs    []string
	cur      int
	lastAddr string
	opts     Options

	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// fenceKey/fenceEpoch, when set, prefix every mutating command with
	// "FENCE <key> <epoch>" so the server rejects this writer once its
	// lease epoch is superseded (see SetFence).
	fenceKey   string
	fenceEpoch int64

	// broken is the transport error that poisoned the connection; nil
	// while healthy. nextRedial gates fail-fast: before it, calls return
	// ErrBroken without touching the network.
	broken     error
	failures   int
	nextRedial time.Time
	rng        uint64
	closed     bool

	// Robustness counters. The client itself is single-goroutine, but these
	// are read by stats/metrics endpoints from other goroutines, so they are
	// atomic.
	redials    atomic.Int64
	retries    atomic.Int64
	poisonings atomic.Int64
	failovers  atomic.Int64
	redirects  atomic.Int64

	// lastRTT is the duration of the most recent round trip, exposed so
	// the controller benchmark can report write latencies (§6.6).
	lastRTT time.Duration

	// scratch backs header encoding in writeCommand/writeBulk so framing a
	// command never heap-allocates (the client is single-goroutine, so one
	// buffer suffices). The front half renders integer arguments, the back
	// half renders length headers — writeInt uses both at once.
	scratch [64]byte
}

// ErrNil is returned by Get/HGet when the key or field does not exist.
var ErrNil = errors.New("kvstore: nil reply")

// ErrBroken is wrapped into errors returned while the client's connection
// is poisoned and the redial backoff window has not yet passed.
var ErrBroken = errors.New("kvstore: connection broken")

// errClosed is returned after Close.
var errClosed = errors.New("kvstore: client closed")

// ErrExhausted is returned by DialFailover when every address in the
// failover set refused or timed out — the caller gets one bounded dial pass
// over the list, not a hang.
var ErrExhausted = errors.New("kvstore: all addresses unreachable")

// ErrRedirectLoop is returned when a command chases MOVED redirects past the
// hop cap without landing on a server willing to execute it (e.g. two
// confused standbys pointing at each other after a botched failover).
var ErrRedirectLoop = errors.New("kvstore: MOVED redirect loop")

// Protocol sanity caps: frames beyond these are rejected rather than
// allocated, so a corrupt or hostile peer cannot force huge allocations.
const (
	maxBulkLen  = 8 << 20
	maxArrayLen = 1 << 20
)

// Dial connects to a kvstore (or Redis) server with default Options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects with explicit robustness options.
func DialOptions(addr string, opts Options) (*Client, error) {
	return DialFailover([]string{addr}, opts)
}

// DialFailover connects to the first reachable address in addrs and remembers
// the rest: after a transport failure, redials rotate through the set, and a
// MOVED redirect from a standby switches the client to the promoted primary.
// The usual shape is {primary, standby}.
func DialFailover(addrs []string, opts Options) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("kvstore: no addresses")
	}
	c := &Client{addrs: append([]string(nil), addrs...), opts: opts.withDefaults()}
	c.rng = uint64(c.opts.Seed)
	if err := c.connect(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrExhausted, err)
	}
	return c, nil
}

// connect dials addrs starting at cur, rotating on failure. Landing on a
// different address than the previous connection counts as a failover.
func (c *Client) connect() error {
	var lastErr error
	for i := 0; i < len(c.addrs); i++ {
		idx := (c.cur + i) % len(c.addrs)
		conn, err := net.DialTimeout("tcp", c.addrs[idx], c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		c.cur = idx
		if c.lastAddr != "" && c.lastAddr != c.addrs[idx] {
			c.failovers.Add(1)
			c.opts.Metrics.failedOver()
		}
		c.lastAddr = c.addrs[idx]
		c.conn = conn
		c.r = bufio.NewReaderSize(conn, 16<<10)
		c.w = bufio.NewWriterSize(conn, 16<<10)
		c.broken = nil
		c.failures = 0
		c.opts.Metrics.dialed()
		return nil
	}
	return lastErr
}

// Close releases the connection.
func (c *Client) Close() error {
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// LastRTT returns the duration of the most recent command round trip.
func (c *Client) LastRTT() time.Duration { return c.lastRTT }

// Broken reports whether the connection is currently poisoned.
func (c *Client) Broken() bool { return !c.closed && c.conn == nil && c.broken != nil }

// Redials returns how many times the client successfully reconnected after
// a transport failure.
func (c *Client) Redials() int64 { return c.redials.Load() }

// Retries returns how many idempotent commands were retried after a
// transport failure.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Poisonings returns how many times a transport error poisoned the
// connection.
func (c *Client) Poisonings() int64 { return c.poisonings.Load() }

// Failovers returns how many connects landed on a different address than the
// previous connection.
func (c *Client) Failovers() int64 { return c.failovers.Load() }

// Redirects returns how many MOVED redirects the client followed.
func (c *Client) Redirects() int64 { return c.redirects.Load() }

// Idempotent reports whether cmd can be retried after an ambiguous
// transport failure (the in-flight command may or may not have executed
// server-side). Counter mutations are the only non-idempotent commands in
// the supported subset. EqualFold keeps the check allocation-free — this
// runs on every command the client frames.
func Idempotent(cmd string) bool {
	return !strings.EqualFold(cmd, "INCR") && !strings.EqualFold(cmd, "INCRBY")
}

// poison marks the connection unusable after a transport error. The stream
// position is undefined (a reply may be half-read), so the connection is
// closed rather than resynchronized.
func (c *Client) poison(err error) {
	if c.conn != nil {
		_ = c.conn.Close() //sblint:allowalloc(transport-failure path; the connection is already dead)
		c.conn = nil
	}
	c.broken = err
	c.poisonings.Add(1)
	c.opts.Metrics.poisoned()
	// With a failover set, prefer a different address on the next dial: a
	// transport failure on a partitioned-but-accepting primary would
	// otherwise redial it forever. A healthy server that merely hiccuped
	// costs one MOVED round trip back.
	if len(c.addrs) > 1 {
		c.cur = (c.cur + 1) % len(c.addrs)
	}
	// The first redial may happen immediately; only failed redials grow
	// the backoff window.
	c.nextRedial = time.Now()
}

// ensureConn returns with a live connection, or an error. A poisoned client
// redials once its backoff window passed (always, when force is set); until
// then it fails fast with ErrBroken.
func (c *Client) ensureConn(force bool) error {
	if c.closed {
		return errClosed
	}
	if c.conn != nil {
		return nil
	}
	if !force && time.Now().Before(c.nextRedial) {
		return fmt.Errorf("%w: %v", ErrBroken, c.broken) //sblint:allowalloc(fail-fast error path; connection is down)
	}
	if err := c.connect(); err != nil {
		c.failures++
		c.nextRedial = time.Now().Add(c.backoff(c.failures - 1))
		c.broken = err
		return fmt.Errorf("%w: redial: %v", ErrBroken, err) //sblint:allowalloc(redial-failure error path)
	}
	c.redials.Add(1)
	c.opts.Metrics.redialed()
	return nil
}

// backoff returns the nth capped exponential backoff with deterministic
// ±25% jitter.
func (c *Client) backoff(n int) time.Duration {
	d := c.opts.BackoffMin
	for i := 0; i < n && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	j := float64(c.rng%1000)/1000 - 0.5 // uniform in [-0.5, 0.5)
	return d + time.Duration(float64(d)*0.5*j)
}

// doOnce runs one command over the live connection under the per-command
// deadline. A non-empty tid is propagated as a TRACEID prefix so the server
// can attribute the command to the originating trace.
func (c *Client) doOnce(tid string, args []string) (interface{}, error) {
	if c.opts.IOTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opts.IOTimeout)) //sblint:allowalloc(net.Conn deadline call; dynamic dispatch only, no data-dependent allocation)
	}
	if err := c.writeCommand(tid, args); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Do sends one command and reads its reply. Integer replies are returned as
// int64, simple and bulk strings as string, nil replies as ErrNil. After a
// transport failure, idempotent commands are transparently retried against
// a fresh connection (up to Options.MaxRetries times).
func (c *Client) Do(args ...string) (interface{}, error) {
	return c.DoContext(context.Background(), args...)
}

// DoContext is Do under a context. When ctx carries an active span, each wire
// attempt becomes a "kv.<VERB>" child span (retry legs carry retry=true) and
// the trace ID travels to the server as a TRACEID protocol prefix. With no
// span in ctx the path is identical to Do — no spans, no prefix, no
// allocations. The context is used for trace propagation only; deadlines
// remain Options.IOTimeout's job.
func (c *Client) DoContext(ctx context.Context, args ...string) (interface{}, error) {
	if len(args) == 0 {
		return nil, errKvEmptyCommand
	}
	parent := span.FromContext(ctx)
	var tid string
	if parent != nil {
		tid = parent.TraceID().String()
	}
	retriable := Idempotent(args[0])
	start := time.Now()
	var lastErr error
	movedHops := 0
	for attempt := 0; ; attempt++ {
		var sp *span.Span
		if parent != nil {
			sp = parent.NewChild("kv." + strings.ToUpper(args[0])) //sblint:allowalloc(tracing branch; parent is nil unless the caller carries a span)
			if attempt > 0 {
				sp.SetAttr("retry", "true")
			}
		}
		if err := c.ensureConn(attempt > 0); err != nil {
			lastErr = err
			sp.SetError(err)
			sp.End()
			if errors.Is(err, errClosed) {
				return nil, err
			}
		} else {
			reply, err := c.doOnce(tid, args)
			// A MOVED redirect means the peer refused to execute (it is a
			// standby), so following it is safe even for non-idempotent
			// commands and does not consume a retry. Hops are capped so two
			// confused servers pointing at each other cannot loop us.
			if addr, ok := MovedAddr(err); ok {
				if movedHops < maxMovedHops {
					movedHops++
					attempt--
					c.redirect(addr)
					lastErr = err
					sp.SetAttr("moved", addr)
					sp.End()
					continue
				}
				// Hop cap hit: the redirect chain is a loop, not a path.
				// Surface a typed error instead of chasing it forever.
				loopErr := fmt.Errorf("%w: %d hops ending at %q", ErrRedirectLoop, movedHops, addr) //sblint:allowalloc(redirect-loop error path)
				sp.SetError(loopErr)
				sp.End()
				return nil, loopErr
			}
			if err == nil || errors.Is(err, ErrNil) || IsServerError(err) {
				c.lastRTT = time.Since(start)
				c.opts.Metrics.observe(args[0], c.lastRTT.Seconds())
				sp.End()
				return reply, err
			}
			c.poison(err)
			lastErr = err
			sp.SetError(err)
			sp.End()
		}
		if !retriable || attempt >= c.opts.MaxRetries {
			return nil, lastErr
		}
		c.retries.Add(1)
		c.opts.Metrics.retried()
		time.Sleep(c.backoff(attempt))
	}
}

// Pipeline sends several commands in one batch and returns all replies; a
// per-command nil reply appears as ErrNil in errs, a server-reported error
// as a server error. A transport failure mid-pipeline poisons the
// connection and is returned as err — the remaining replies are
// unrecoverable because the stream position is lost, and the pipeline is
// never retried automatically (it may mix idempotent and non-idempotent
// commands).
func (c *Client) Pipeline(cmds [][]string) (replies []interface{}, errs []error, err error) {
	return c.PipelineContext(context.Background(), cmds)
}

// PipelineContext is Pipeline under a context. When ctx carries an active
// span the whole batch becomes one "kv.pipeline" child span (attr cmds=N) and
// every command in the batch is prefixed with the trace ID on the wire.
func (c *Client) PipelineContext(ctx context.Context, cmds [][]string) (replies []interface{}, errs []error, err error) {
	parent := span.FromContext(ctx)
	var tid string
	var sp *span.Span
	if parent != nil {
		tid = parent.TraceID().String()
		sp = parent.NewChild("kv.pipeline")
		sp.SetAttr("cmds", strconv.Itoa(len(cmds)))
	}
	replies, errs, err = c.pipeline(tid, cmds)
	sp.SetError(err)
	sp.End()
	return replies, errs, err
}

func (c *Client) pipeline(tid string, cmds [][]string) (replies []interface{}, errs []error, err error) {
	if err := c.ensureConn(false); err != nil {
		return nil, nil, err
	}
	if c.opts.IOTimeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.opts.IOTimeout))
	}
	for _, cmd := range cmds {
		if err := c.writeCommand(tid, cmd); err != nil {
			c.poison(err)
			return nil, nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		c.poison(err)
		return nil, nil, err
	}
	replies = make([]interface{}, len(cmds))
	errs = make([]error, len(cmds))
	for i := range cmds {
		if c.opts.IOTimeout > 0 {
			_ = c.conn.SetReadDeadline(time.Now().Add(c.opts.IOTimeout))
		}
		replies[i], errs[i] = c.readReply()
		if errs[i] != nil && !errors.Is(errs[i], ErrNil) && !IsServerError(errs[i]) {
			c.poison(errs[i])
			return replies, errs, errs[i]
		}
	}
	return replies, errs, nil
}

// respError is a server-reported error (-ERR ...), distinct from transport
// failures.
type respError string

func (e respError) Error() string { return string(e) }

// IsServerError reports whether err is a server-reported RESP error (-ERR
// ...) rather than a transport or protocol failure. Server errors leave the
// connection healthy.
func IsServerError(err error) bool {
	var re respError
	return errors.As(err, &re)
}

// maxMovedHops caps how many MOVED redirects one command follows.
const maxMovedHops = 4

// MovedAddr extracts the target address from a MOVED redirect error ("-MOVED
// <addr>", sent by a standby refusing a mutation); ok is false for any other
// error.
func MovedAddr(err error) (addr string, ok bool) {
	var re respError
	if !errors.As(err, &re) {
		return "", false
	}
	rest, found := strings.CutPrefix(string(re), "MOVED ")
	if !found || rest == "" {
		return "", false
	}
	return rest, true
}

// IsFencedError reports whether err is a FENCED rejection — this writer's
// lease epoch has been superseded and the write was refused.
func IsFencedError(err error) bool {
	var re respError
	return errors.As(err, &re) && strings.HasPrefix(string(re), "FENCED")
}

// IsLeaseHeldError reports whether err is a LEASEHELD rejection — another
// owner's lease grant is still live.
func IsLeaseHeldError(err error) bool {
	var re respError
	return errors.As(err, &re) && strings.HasPrefix(string(re), "LEASEHELD")
}

// LeaseHolder extracts the current owner from a LEASEHELD error ("" when err
// is not one).
func LeaseHolder(err error) string {
	var re respError
	if !errors.As(err, &re) {
		return ""
	}
	rest, found := strings.CutPrefix(string(re), "LEASEHELD ")
	if !found {
		return ""
	}
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// IsReplWaitError reports whether err is a REPLWAIT rejection — the write
// was applied on the primary but the standby did not acknowledge it in time,
// so the caller must treat it as an ambiguous (possibly lost) write.
func IsReplWaitError(err error) bool {
	var re respError
	return errors.As(err, &re) && strings.HasPrefix(string(re), "REPLWAIT")
}

// redirect points the client at addr (appending it to the failover set if
// new) and drops the current connection so the next attempt dials there.
func (c *Client) redirect(addr string) {
	if c.conn != nil {
		_ = c.conn.Close() //sblint:allowalloc(failover path; a MOVED redirect already cost a round trip)
		c.conn = nil
	}
	c.broken = fmt.Errorf("kvstore: moved to %s", addr) //sblint:allowalloc(failover path; records why the connection moved)
	found := false
	for i, a := range c.addrs {
		if a == addr {
			c.cur = i
			found = true
			break
		}
	}
	if !found {
		c.addrs = append(c.addrs, addr) //sblint:allowalloc(failover path; the address set grows once per new peer)
		c.cur = len(c.addrs) - 1
	}
	c.nextRedial = time.Now()
	c.redirects.Add(1)
	c.opts.Metrics.redirected()
}

// SetFence stamps every subsequent mutating command with the lease epoch the
// caller holds (a "FENCE <key> <epoch>" protocol prefix). Once another owner
// is granted the lease the server rejects these writes with FENCED — the
// fencing half of lease-based leadership. Reads are never fenced.
func (c *Client) SetFence(key string, epoch int64) {
	c.fenceKey, c.fenceEpoch = key, epoch
}

// ClearFence stops stamping mutations.
func (c *Client) ClearFence() {
	c.fenceKey, c.fenceEpoch = "", 0
}

// SetLease acquires or renews the TTL lease on key for owner, returning the
// lease epoch. While another owner's grant is live the error satisfies
// IsLeaseHeldError, and LeaseHolder names the owner.
func (c *Client) SetLease(key, owner string, ttl time.Duration) (int64, error) {
	return c.SetLeaseContext(context.Background(), key, owner, ttl)
}

// SetLeaseContext is SetLease under a context (see DoContext).
func (c *Client) SetLeaseContext(ctx context.Context, key, owner string, ttl time.Duration) (int64, error) {
	r, err := c.DoContext(ctx, "SETLEASE", key, owner, strconv.FormatInt(ttl.Milliseconds(), 10))
	if err != nil {
		return 0, err
	}
	n, ok := r.(int64)
	if !ok {
		return 0, fmt.Errorf("kvstore: unexpected SETLEASE reply %v", r)
	}
	return n, nil
}

// DelLease releases key if owner holds it.
func (c *Client) DelLease(key, owner string) error {
	_, err := c.Do("DELLEASE", key, owner)
	return err
}

// GetLease returns the live lease on key (ErrNil when free or lapsed).
func (c *Client) GetLease(key string) (owner string, epoch int64, remaining time.Duration, err error) {
	r, err := c.Do("GETLEASE", key)
	if err != nil {
		return "", 0, 0, err
	}
	arr, ok := r.([]interface{})
	if !ok || len(arr) != 3 {
		return "", 0, 0, fmt.Errorf("kvstore: unexpected GETLEASE reply %v", r)
	}
	owner, _ = arr[0].(string)
	es, _ := arr[1].(string)
	ms, _ := arr[2].(string)
	epoch, _ = strconv.ParseInt(es, 10, 64)
	remainMS, _ := strconv.ParseInt(ms, 10, 64)
	return owner, epoch, time.Duration(remainMS) * time.Millisecond, nil
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext round-trips a PING under a context (see DoContext).
func (c *Client) PingContext(ctx context.Context) error {
	r, err := c.DoContext(ctx, "PING") //sblint:allowalloc(health probe, not a data-path command; the argument slice is probe-rate)
	if err != nil {
		return err
	}
	if s, ok := r.(string); !ok || s != "PONG" {
		return fmt.Errorf("kvstore: unexpected PING reply %v", r) //sblint:allowalloc(protocol-error path)
	}
	return nil
}

// Set stores a string value.
func (c *Client) Set(key, value string) error {
	return c.SetContext(context.Background(), key, value)
}

// SetContext is Set under a context (see DoContext).
func (c *Client) SetContext(ctx context.Context, key, value string) error {
	r, err := c.DoContext(ctx, "SET", key, value)
	if err != nil {
		return err
	}
	if s, ok := r.(string); !ok || s != "OK" {
		return fmt.Errorf("kvstore: unexpected SET reply %v", r)
	}
	return nil
}

// Get fetches a string value; ErrNil when absent.
func (c *Client) Get(key string) (string, error) {
	return c.GetContext(context.Background(), key)
}

// GetContext is Get under a context (see DoContext).
func (c *Client) GetContext(ctx context.Context, key string) (string, error) {
	r, err := c.DoContext(ctx, "GET", key)
	if err != nil {
		return "", err
	}
	s, ok := r.(string)
	if !ok {
		return "", fmt.Errorf("kvstore: unexpected GET reply %v", r)
	}
	return s, nil
}

// Incr atomically increments an integer key.
func (c *Client) Incr(key string) (int64, error) {
	r, err := c.Do("INCR", key)
	if err != nil {
		return 0, err
	}
	n, ok := r.(int64)
	if !ok {
		return 0, fmt.Errorf("kvstore: unexpected INCR reply %v", r)
	}
	return n, nil
}

// HSet stores a hash field.
func (c *Client) HSet(key, field, value string) error {
	_, err := c.Do("HSET", key, field, value)
	return err
}

// HSetContext stores a hash field under a context (see DoContext).
func (c *Client) HSetContext(ctx context.Context, key, field, value string) error {
	_, err := c.DoContext(ctx, "HSET", key, field, value) //sblint:allowalloc(variadic argument slice; it never escapes DoContext, so escape analysis keeps it on the stack)
	return err
}

// Del removes a key. It is the typed wrapper raw `Do("DEL", ...)` callers
// should use: like every typed mutation it inherits the client's armed
// fence (see SetFence), which the fenceflow analyzer enforces.
func (c *Client) Del(key string) error {
	return c.DelContext(context.Background(), key)
}

// DelContext is Del under a context (see DoContext).
func (c *Client) DelContext(ctx context.Context, key string) error {
	_, err := c.DoContext(ctx, "DEL", key)
	return err
}

// HGet fetches a hash field; ErrNil when absent.
func (c *Client) HGet(key, field string) (string, error) {
	r, err := c.Do("HGET", key, field)
	if err != nil {
		return "", err
	}
	s, ok := r.(string)
	if !ok {
		return "", fmt.Errorf("kvstore: unexpected HGET reply %v", r)
	}
	return s, nil
}

// HGetAll fetches every field of a hash (empty map when the key is absent).
func (c *Client) HGetAll(key string) (map[string]string, error) {
	return c.HGetAllContext(context.Background(), key)
}

// HGetAllContext is HGetAll under a context (see DoContext).
func (c *Client) HGetAllContext(ctx context.Context, key string) (map[string]string, error) {
	r, err := c.DoContext(ctx, "HGETALL", key)
	if err != nil {
		return nil, err
	}
	arr, ok := r.([]interface{})
	if !ok || len(arr)%2 != 0 {
		return nil, fmt.Errorf("kvstore: unexpected HGETALL reply %v", r)
	}
	out := make(map[string]string, len(arr)/2)
	for i := 0; i < len(arr); i += 2 {
		f, fok := arr[i].(string)
		v, vok := arr[i+1].(string)
		if !fok || !vok {
			return nil, fmt.Errorf("kvstore: non-string HGETALL element")
		}
		out[f] = v
	}
	return out, nil
}

// Keys lists all live keys (debugging aid; see KeysPrefixContext for the
// scoped scan resharding uses).
func (c *Client) Keys() ([]string, error) {
	return c.KeysContext(context.Background())
}

// KeysContext is Keys under a context (see DoContext).
func (c *Client) KeysContext(ctx context.Context) ([]string, error) {
	return c.keysPattern(ctx, "*")
}

// KeysPrefixContext lists live keys under a literal prefix (server-side
// trailing-star KEYS), sorted. Prefer it over KeysContext on fleets of any
// size: the reply carries one shard's namespace, not the whole store.
func (c *Client) KeysPrefixContext(ctx context.Context, prefix string) ([]string, error) {
	return c.keysPattern(ctx, prefix+"*") //sblint:allowalloc(scan path, not a data-path command; one concat per scan)
}

func (c *Client) keysPattern(ctx context.Context, pattern string) ([]string, error) {
	r, err := c.DoContext(ctx, "KEYS", pattern)
	if err != nil {
		return nil, err
	}
	arr, ok := r.([]interface{})
	if !ok {
		return nil, fmt.Errorf("kvstore: unexpected KEYS reply %v", r)
	}
	out := make([]string, 0, len(arr))
	for _, e := range arr {
		s, ok := e.(string)
		if !ok {
			return nil, fmt.Errorf("kvstore: non-string key")
		}
		out = append(out, s)
	}
	return out, nil
}

// HCopyContext snapshots the src hash into dst in one server-side round trip,
// returning the field count copied (0 when src is absent). It is the typed
// wrapper for the mutating HCOPY verb, so it inherits the client's armed
// fence: a deposed migration coordinator's copies are rejected, not landed.
func (c *Client) HCopyContext(ctx context.Context, src, dst string) (int64, error) {
	r, err := c.DoContext(ctx, "HCOPY", src, dst)
	if err != nil {
		return 0, err
	}
	n, ok := r.(int64)
	if !ok {
		return 0, fmt.Errorf("kvstore: unexpected HCOPY reply %v", r)
	}
	return n, nil
}

// writeCommand frames args as a RESP array. A non-empty tid prepends the
// two-argument TRACEID prefix inside the same array, so the frame stays one
// self-delimiting unit (a server that knows the prefix strips it; the framing
// is still valid RESP either way). An armed fence (SetFence) additionally
// prepends "FENCE <key> <epoch>" to mutating commands.
//
// Encoding is allocation-free: headers render through the client's scratch
// buffer instead of string concatenation, so the per-command wire cost is
// pure bufio copies. Enforced by the hotpathalloc analyzer.
//
//sblint:hotpath
func (c *Client) writeCommand(tid string, args []string) error {
	if len(args) == 0 {
		return errKvEmptyCommand
	}
	fenced := c.fenceKey != "" && Mutates(args[0])
	n := len(args)
	if tid != "" {
		n += 2
	}
	if fenced {
		n += 3
	}
	c.writeHeader('*', int64(n))
	if tid != "" {
		c.writeBulk("TRACEID")
		c.writeBulk(tid)
	}
	if fenced {
		c.writeBulk("FENCE")
		c.writeBulk(c.fenceKey)
		c.writeInt(c.fenceEpoch)
	}
	for _, a := range args {
		c.writeBulk(a)
	}
	return nil
}

// errKvEmptyCommand is preallocated so writeCommand's error path does not
// construct an error value per call.
var errKvEmptyCommand = errors.New("kvstore: empty command")

func (c *Client) writeBulk(a string) {
	c.writeHeader('$', int64(len(a)))
	_, _ = c.w.WriteString(a)
	_, _ = c.w.WriteString("\r\n")
}

// writeInt renders an integer argument as a RESP bulk string ("$<len>\r\n
// <digits>\r\n") without allocating: digits land in the scratch buffer's
// front half and the length header is derived from the rendered width.
func (c *Client) writeInt(v int64) {
	buf := strconv.AppendInt(c.scratch[0:0:32], v, 10)
	c.writeHeader('$', int64(len(buf)))
	_, _ = c.w.Write(buf)
	_, _ = c.w.WriteString("\r\n")
}

// writeHeader emits "<prefix><decimal n>\r\n" through the scratch buffer's
// back half (the front half may still hold writeInt's digits; the capped
// subslices can never grow into each other).
func (c *Client) writeHeader(prefix byte, n int64) {
	b := append(c.scratch[32:32:64], prefix) //sblint:allowalloc(append into the fixed-cap scratch backing; 32 bytes always fit a RESP header, so it never grows)
	b = strconv.AppendInt(b, n, 10)
	b = append(b, '\r', '\n') //sblint:allowalloc(same fixed-cap scratch backing as above)
	_, _ = c.w.Write(b)
}

// readReply decodes one RESP reply. The only intended allocations are the
// ones that materialize reply *values* for the caller (bulk strings, array
// shells) and cold protocol-error paths; everything else on the decode path
// is allocation-free, enforced by the hotpathalloc analyzer.
//
//sblint:hotpath
func (c *Client) readReply() (interface{}, error) {
	line, err := readLine(c.r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errEmptyReply
	}
	switch line[0] {
	case '+':
		return line[1:], nil //sblint:allowalloc(reply value materialization is the API contract)
	case '-':
		return nil, respError(line[1:]) //sblint:allowalloc(server-error path; boxes one error value)
	case ':':
		n, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("kvstore: bad integer reply %q", line) //sblint:allowalloc(protocol-error path)
		}
		return n, nil //sblint:allowalloc(integer reply boxes into interface{}; replies are interface-typed by contract)
	case '$':
		n, err := strconv.Atoi(line[1:])
		if err != nil || n > maxBulkLen {
			return nil, fmt.Errorf("kvstore: bad bulk header %q", line) //sblint:allowalloc(protocol-error path)
		}
		if n < 0 {
			return nil, ErrNil
		}
		buf := make([]byte, n+2) //sblint:allowalloc(bulk reply payload buffer; sized by the server's header)
		if _, err := io.ReadFull(c.r, buf); err != nil {
			return nil, err
		}
		return string(buf[:n]), nil //sblint:allowalloc(reply value materialization is the API contract)
	case '*':
		n, err := strconv.Atoi(line[1:])
		if err != nil || n > maxArrayLen {
			return nil, fmt.Errorf("kvstore: bad array header %q", line) //sblint:allowalloc(protocol-error path)
		}
		if n < 0 {
			return nil, ErrNil
		}
		out := make([]interface{}, n) //sblint:allowalloc(array reply shell; sized by the server's header)
		for i := 0; i < n; i++ {
			v, err := c.readReply()
			if err != nil && !errors.Is(err, ErrNil) {
				return nil, err
			}
			out[i] = v
		}
		return out, nil //sblint:allowalloc(array reply boxes into interface{}; replies are interface-typed by contract)
	default:
		return nil, fmt.Errorf("kvstore: unknown reply type %q", line) //sblint:allowalloc(protocol-error path)
	}
}

// errEmptyReply is preallocated so the decode error path does not allocate
// per call.
var errEmptyReply = errors.New("kvstore: empty reply")
