package kvstore

import "switchboard/internal/obs"

// ClientMetrics is the client-side telemetry bundle, shared by every client
// built from the same Options. All methods are nil-safe so an uninstrumented
// client pays one nil check per event.
type ClientMetrics struct {
	Dials    *obs.Counter
	Redials  *obs.Counter
	Retries  *obs.Counter
	Poisoned *obs.Counter
	// Failovers counts connects that landed on a different address than the
	// previous connection; Redirects counts MOVED errors followed.
	Failovers *obs.Counter
	Redirects *obs.Counter
	// Latency is per-command round-trip time, labeled by command name.
	Latency *obs.HistogramVec
}

// NewClientMetrics registers the client metric families on r (nil r yields a
// usable all-nil bundle).
func NewClientMetrics(r *obs.Registry) *ClientMetrics {
	return &ClientMetrics{
		Dials:    r.Counter("sb_kvstore_client_dials_total", "Connection attempts that succeeded."),
		Redials:  r.Counter("sb_kvstore_client_redials_total", "Successful reconnects after a transport failure."),
		Retries:  r.Counter("sb_kvstore_client_retries_total", "Idempotent commands retried after a transport failure."),
		Poisoned: r.Counter("sb_kvstore_client_poisonings_total", "Connections poisoned by a mid-command transport error."),
		Failovers: r.Counter("sb_kvstore_client_failovers_total",
			"Connects that switched to a different store address."),
		Redirects: r.Counter("sb_kvstore_client_redirects_total",
			"MOVED redirects followed to a promoted standby."),
		Latency: r.HistogramVec("sb_kvstore_client_command_seconds",
			"Round-trip time per command, including retries.", obs.LatencyBuckets, "cmd"),
	}
}

func (m *ClientMetrics) dialed() {
	if m != nil {
		m.Dials.Inc()
	}
}

func (m *ClientMetrics) redialed() {
	if m != nil {
		m.Redials.Inc()
	}
}

func (m *ClientMetrics) retried() {
	if m != nil {
		m.Retries.Inc()
	}
}

func (m *ClientMetrics) poisoned() {
	if m != nil {
		m.Poisoned.Inc()
	}
}

func (m *ClientMetrics) failedOver() {
	if m != nil {
		m.Failovers.Inc()
	}
}

func (m *ClientMetrics) redirected() {
	if m != nil {
		m.Redirects.Inc()
	}
}

func (m *ClientMetrics) observe(cmd string, secs float64) {
	if m != nil {
		m.Latency.With(cmd).Observe(secs) //sblint:allowalloc(variadic label lookup; the single-label slice never escapes With, so it stays on the stack)
	}
}

// ServerMetrics is the server-side telemetry bundle.
type ServerMetrics struct {
	// Commands counts executed commands by name.
	Commands *obs.CounterVec
	// InFlight tracks the number of live client connections.
	InFlight *obs.Gauge
}

// NewServerMetrics registers the server metric families on r (nil r yields a
// usable all-nil bundle).
func NewServerMetrics(r *obs.Registry) *ServerMetrics {
	return &ServerMetrics{
		Commands: r.CounterVec("sb_kvstore_server_commands_total",
			"Commands executed, by command name.", "cmd"),
		InFlight: r.Gauge("sb_kvstore_server_inflight_conns", "Live client connections."),
	}
}

func (m *ServerMetrics) command(cmd string) {
	if m != nil {
		m.Commands.With(cmd).Inc()
	}
}

func (m *ServerMetrics) connDelta(d float64) {
	if m != nil {
		m.InFlight.Add(d)
	}
}
