package kvstore

import (
	"context"
	"errors"
	"testing"

	"switchboard/internal/obs/span"
)

// TestTraceIDWirePropagation drives traced commands through a live server and
// checks both sides of the join: client-side kv.<VERB> child spans with
// correct lineage, and server-side TraceRecords carrying the same trace ID
// per verb.
func TestTraceIDWirePropagation(t *testing.T) {
	srv, addr := startServer(t)
	defer srv.Close()
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ring := span.NewRing(64)
	tr := span.NewTracer(42, ring)
	ctx, root := tr.Start(context.Background(), "test.root")

	if err := c.HSetContext(ctx, "call:1", "dc", "tokyo"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DoContext(ctx, "GET", "missing"); !errors.Is(err, ErrNil) {
		t.Fatalf("GET missing = %v, want ErrNil", err)
	}
	if err := c.PingContext(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()

	// Client side: one child span per command, parented on the root.
	spans := ring.Trace(root.TraceID())
	names := map[string]int{}
	for _, s := range spans {
		names[s.Name]++
		if s.Name != "test.root" && s.Parent != root.SpanID() {
			t.Errorf("span %s parent = %v, want root %v", s.Name, s.Parent, root.SpanID())
		}
	}
	for _, want := range []string{"kv.HSET", "kv.GET", "kv.PING", "test.root"} {
		if names[want] != 1 {
			t.Errorf("trace has %d %q spans, want 1 (all: %v)", names[want], want, names)
		}
	}

	// Server side: the same trace ID recorded against each verb.
	recs := srv.TraceRecords()
	verbs := map[string]int{}
	for _, r := range recs {
		if r.Trace != root.TraceID().String() {
			t.Errorf("server record trace = %q, want %q", r.Trace, root.TraceID())
		}
		if r.Dur < 0 {
			t.Errorf("server record %v has negative duration", r)
		}
		verbs[r.Verb]++
	}
	for _, want := range []string{"HSET", "GET", "PING"} {
		if verbs[want] != 1 {
			t.Errorf("server recorded %d %s, want 1 (all: %v)", verbs[want], want, verbs)
		}
	}

	// Untraced commands leave no server record and work unchanged.
	before := len(srv.TraceRecords())
	if err := c.Set("plain", "v"); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get("plain"); err != nil || got != "v" {
		t.Fatalf("untraced round trip = %q, %v", got, err)
	}
	if after := len(srv.TraceRecords()); after != before {
		t.Fatalf("untraced commands grew the trace ring: %d -> %d", before, after)
	}
}

// TestPipelineContextTrace checks the batch path: one kv.pipeline span and a
// per-command server record sharing the trace ID.
func TestPipelineContextTrace(t *testing.T) {
	srv, addr := startServer(t)
	defer srv.Close()
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ring := span.NewRing(64)
	tr := span.NewTracer(7, ring)
	ctx, root := tr.Start(context.Background(), "batch")
	replies, errs, err := c.PipelineContext(ctx, [][]string{
		{"SET", "a", "1"},
		{"SET", "b", "2"},
		{"GET", "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("pipeline cmd %d: %v", i, e)
		}
	}
	if replies[2] != "1" {
		t.Fatalf("GET via pipeline = %v", replies[2])
	}
	root.End()

	spans := ring.Trace(root.TraceID())
	var pipe *span.Record
	for i := range spans {
		if spans[i].Name == "kv.pipeline" {
			pipe = &spans[i]
		}
	}
	if pipe == nil || pipe.Parent != root.SpanID() || pipe.Attrs.Get("cmds") != "3" {
		t.Fatalf("kv.pipeline span = %+v", pipe)
	}
	recs := srv.TraceRecords()
	if len(recs) != 3 {
		t.Fatalf("server recorded %d traced commands, want 3: %+v", len(recs), recs)
	}
	for _, r := range recs {
		if r.Trace != root.TraceID().String() {
			t.Errorf("pipeline record trace = %q, want %q", r.Trace, root.TraceID())
		}
	}
}

// TestDoContextNoSpanZeroOverhead pins the contract that an untraced context
// adds nothing to the wire: the server sees the plain command.
func TestDoContextNoSpanZeroOverhead(t *testing.T) {
	srv, addr := startServer(t)
	defer srv.Close()
	c, err := DialOptions(addr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.DoContext(context.Background(), "SET", "k", "v"); err != nil {
		t.Fatal(err)
	}
	if got := srv.TraceRecords(); len(got) != 0 {
		t.Fatalf("untraced DoContext left server records: %+v", got)
	}
}
