// Package kvstore implements a small Redis-like in-memory key-value store
// spoken over TCP plus a pipelining client. It stands in for the Azure Redis
// instance Switchboard's controller writes call state to (§6.6): the
// controller's worker threads each hold a connection and record call-config
// updates as calls arrive and participants join, which is exactly the write
// path the Fig 10 throughput benchmark exercises.
//
// The wire protocol is RESP2 (arrays of bulk strings in; simple strings,
// bulk strings, integers, and errors out), so the server is also usable with
// standard Redis tooling for the command subset it implements: PING, SET,
// GET, DEL, EXISTS, INCR, INCRBY, HSET, HGET, HLEN, FLUSHALL, DBSIZE.
//
// Tracing extension: a command array may be prefixed with the two arguments
// "TRACEID <hex>" (see internal/obs/span). The server strips the prefix
// before dispatch and records the verb and service time against the trace ID
// (TraceRecords), so client-side spans and server-side observations join on
// one identifier.
package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const numShards = 16

// Server is the in-memory store. The zero value is not usable; call
// NewServer.
type Server struct {
	shards [numShards]shard

	mu        sync.Mutex
	listener  net.Listener          // guarded by mu
	conns     map[net.Conn]struct{} // guarded by mu
	closed    bool                  // guarded by mu
	handlers  sync.WaitGroup
	opsServed atomic.Int64

	// simLatency, when positive, is the minimum per-command latency; a
	// deterministic heavy tail extends it up to 14x, emulating a
	// cloud-hosted store. The paper's controller observes 0.3-4.2 ms
	// writes against Azure Redis; an in-process loopback store is ~100x
	// faster, which would make thread-scaling (Fig 10) invisible.
	simLatency time.Duration

	// metrics receives server telemetry; nil-safe, set before Serve.
	metrics *ServerMetrics

	// traces holds the last traced-command observations (see TraceRecords).
	traces traceRing

	// leases is the TTL-lease table behind SETLEASE/GETLEASE and the FENCE
	// write prefix (see lease.go).
	leases leaseTable

	// repl and gate are the replication hooks (see replication.go). They are
	// atomic pointers because a standby promotion attaches them to a server
	// that is already handling connections.
	repl atomic.Pointer[replicatorBox]
	gate atomic.Pointer[gateBox]
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*entry // guarded by mu
}

type entry struct {
	// kind is "string" or "hash".
	kind string
	str  string
	hash map[string]string
	// expireAt is the lazy expiry deadline; zero means no expiry.
	expireAt time.Time
}

func (e *entry) expired(now time.Time) bool {
	return e != nil && !e.expireAt.IsZero() && now.After(e.expireAt)
}

// lookup returns the live entry for key, lazily deleting it if expired.
// Callers must hold the shard lock (read lock is insufficient when the key
// may be deleted, so lookup is used under the write lock; read paths call
// lookupRead).
//
//sblint:holds mu
func (sh *shard) lookup(key string, now time.Time) *entry {
	e := sh.m[key]
	if e.expired(now) {
		delete(sh.m, key)
		return nil
	}
	return e
}

// lookupRead returns the live entry without mutating (expired entries are
// simply treated as absent; they get collected on the next write-path
// touch).
//
//sblint:holds mu
func (sh *shard) lookupRead(key string, now time.Time) *entry {
	e := sh.m[key]
	if e.expired(now) {
		return nil
	}
	return e
}

// NewServer returns an empty store ready to serve.
func NewServer() *Server {
	s := &Server{conns: make(map[net.Conn]struct{})}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*entry)
	}
	s.leases.m = make(map[string]*leaseEntry)
	return s
}

// OpsServed returns the number of commands executed since start.
func (s *Server) OpsServed() int64 { return s.opsServed.Load() }

// SetSimulatedLatency makes every command take at least d, with a
// deterministic heavy tail up to 14x d (mean ~2.4x d), emulating a remote
// cloud store. Call before Serve.
func (s *Server) SetSimulatedLatency(d time.Duration) { s.simLatency = d }

// SetMetrics attaches a telemetry bundle (see NewServerMetrics). Call before
// Serve.
func (s *Server) SetMetrics(m *ServerMetrics) { s.metrics = m }

func (s *Server) shardOf(key string) *shard {
	h := fnv.New32a()
	_, _ = io.WriteString(h, key) // fnv.Write never fails
	return &s.shards[h.Sum32()%numShards]
}

// ListenAndServe listens on addr ("127.0.0.1:0" picks a free port) and
// serves until Close. The chosen address is available via Addr once it
// returns from the initial bind, so callers typically run this in a
// goroutine after calling Listen.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until Close is called. It returns only
// after every per-connection handler goroutine has drained, so a returned
// Serve means no server goroutine still touches the store.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = l.Close()
		return errors.New("kvstore: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			s.handlers.Wait()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			// Close raced the accept: drop the connection; the next
			// Accept fails and the loop exits above.
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.handlers.Done()
			s.handle(conn)
		}()
	}
}

// Addr returns the listener address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// Close stops accepting connections, severs all active ones, and waits for
// the per-connection handler goroutines to drain before returning.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	s.metrics.connDelta(1)
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.metrics.connDelta(-1)
	}()
	r := bufio.NewReaderSize(conn, 16<<10)
	w := bufio.NewWriterSize(conn, 16<<10)
	jitter := uint64(0x9e3779b97f4a7c15)
	for {
		args, err := readCommand(r)
		if err != nil {
			return
		}
		// A client that traces its requests prefixes the command with a
		// two-argument "TRACEID <hex>" pair (see Client.DoContext). Strip it
		// and time the command — including any simulated latency — so a
		// delayed command is attributable to the trace that issued it.
		var tid string
		var t0 time.Time
		if len(args) >= 3 && strings.EqualFold(args[0], "TRACEID") {
			tid = args[1]
			args = args[2:]
			t0 = time.Now()
		}
		// REPLSYNC dedicates the connection to a replication stream: the
		// handler goroutine becomes the stream writer and does not return to
		// command dispatch (see internal/kvstore/replica).
		if len(args) >= 1 && strings.EqualFold(args[0], "REPLSYNC") {
			if rb := s.repl.Load(); rb != nil && rb.r != nil {
				_ = w.Flush()
				rb.r.ServeSync(args, conn, r, w)
			} else {
				writeError(w, "replication not enabled")
				_ = w.Flush()
			}
			return
		}
		if s.simLatency > 0 {
			// xorshift-derived deterministic jitter: latency =
			// d·(1 + 13·u⁸) for u uniform in [0,1), i.e. a heavy
			// tail from d to 14d with mean ≈ 2.4d. With d = 300 µs
			// this reproduces the paper's 0.3-4.2 ms Azure Redis
			// write band.
			jitter ^= jitter << 13
			jitter ^= jitter >> 7
			jitter ^= jitter << 17
			u := float64(jitter%1000) / 1000
			u4 := u * u * u * u
			factor := 1 + 13*u4*u4
			time.Sleep(time.Duration(float64(s.simLatency) * factor))
		}
		// Flush when no further pipelined command is buffered.
		s.execute(args, w)
		if tid != "" {
			s.traces.record(TraceRecord{Trace: tid, Verb: strings.ToUpper(args[0]), Dur: time.Since(t0)})
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// readCommand parses one RESP command (array of bulk strings) or an inline
// command (space-separated line).
func readCommand(r *bufio.Reader) ([]string, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	if len(line) == 0 {
		return nil, errors.New("kvstore: empty command")
	}
	if line[0] != '*' {
		return strings.Fields(line), nil
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 0 || n > maxArrayLen {
		return nil, fmt.Errorf("kvstore: bad array header %q", line)
	}
	args := make([]string, 0, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if len(hdr) == 0 || hdr[0] != '$' {
			return nil, fmt.Errorf("kvstore: expected bulk string, got %q", hdr)
		}
		ln, err := strconv.Atoi(hdr[1:])
		if err != nil || ln < 0 || ln > maxBulkLen {
			return nil, fmt.Errorf("kvstore: bad bulk length %q", hdr)
		}
		buf := make([]byte, ln+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		args = append(args, string(buf[:ln]))
	}
	return args, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// execute runs one command, writing the RESP reply to w. It peels the FENCE
// prefix, consults the standby gate, and routes mutations through the
// replicator when one is attached; dispatch does the actual work.
func (s *Server) execute(args []string, w *bufio.Writer) {
	if len(args) == 0 {
		writeError(w, "empty command")
		return
	}
	s.opsServed.Add(1)
	cmd := strings.ToUpper(args[0])
	// "FENCE <leaseKey> <epoch>" prefixes a command with the writer's lease
	// epoch (see Client.SetFence). The command proceeds only while that epoch
	// is still the key's newest grant, so a deposed leader's stragglers are
	// rejected instead of corrupting the new leader's state.
	if cmd == "FENCE" {
		if len(args) < 4 {
			writeError(w, "wrong number of arguments for 'fence'")
			return
		}
		epoch, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			writeError(w, "fence epoch is not an integer")
			return
		}
		if msg := s.leases.checkFence(args[1], epoch); msg != "" {
			writeRawError(w, msg)
			return
		}
		args = args[3:]
		cmd = strings.ToUpper(args[0])
	}
	s.metrics.command(cmd)
	if gb := s.gate.Load(); gb != nil && gb.f != nil {
		if msg := gb.f(cmd); msg != "" {
			writeRawError(w, msg)
			return
		}
	}
	if rb := s.repl.Load(); rb != nil && rb.r != nil && Mutates(cmd) {
		s.executeReplicated(rb.r, cmd, args, w)
		return
	}
	s.dispatch(cmd, args, w)
}

// dispatch runs one command, writing the RESP reply to w. The returned
// logArgs override what the replication layer appends to its log: nil means
// "log the original args"; lease grants return a canonical absolute-deadline
// form so standbys replay the same outcome regardless of when they apply it.
func (s *Server) dispatch(cmd string, args []string, w *bufio.Writer) (logArgs []string) {
	switch cmd {
	case "PING":
		writeSimple(w, "PONG")
	case "SET":
		if !arity(w, args, 3) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.Lock()
		sh.m[args[1]] = &entry{kind: "string", str: args[2]}
		sh.mu.Unlock()
		writeSimple(w, "OK")
	case "GET":
		if !arity(w, args, 2) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.RLock()
		e := sh.lookupRead(args[1], time.Now())
		sh.mu.RUnlock()
		if e == nil || e.kind != "string" {
			writeNil(w)
			return
		}
		writeBulk(w, e.str)
	case "DEL":
		if len(args) < 2 {
			writeError(w, "wrong number of arguments for 'del'")
			return
		}
		var n int64
		now := time.Now()
		for _, key := range args[1:] {
			sh := s.shardOf(key)
			sh.mu.Lock()
			if sh.lookup(key, now) != nil {
				delete(sh.m, key)
				n++
			}
			sh.mu.Unlock()
		}
		writeInt(w, n)
	case "EXISTS":
		if !arity(w, args, 2) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.RLock()
		ok := sh.lookupRead(args[1], time.Now()) != nil
		sh.mu.RUnlock()
		if ok {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "INCR", "INCRBY":
		delta := int64(1)
		if cmd == "INCRBY" {
			if !arity(w, args, 3) {
				return
			}
			d, err := strconv.ParseInt(args[2], 10, 64)
			if err != nil {
				writeError(w, "value is not an integer")
				return
			}
			delta = d
		} else if !arity(w, args, 2) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.Lock()
		e := sh.lookup(args[1], time.Now())
		if e == nil {
			e = &entry{kind: "string", str: "0"}
			sh.m[args[1]] = e
		}
		cur, err := strconv.ParseInt(e.str, 10, 64)
		if err != nil || e.kind != "string" {
			sh.mu.Unlock()
			writeError(w, "value is not an integer or out of range")
			return
		}
		cur += delta
		e.str = strconv.FormatInt(cur, 10)
		sh.mu.Unlock()
		writeInt(w, cur)
	case "HSET":
		if !arity(w, args, 4) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.Lock()
		e := sh.lookup(args[1], time.Now())
		if e == nil || e.kind != "hash" {
			e = &entry{kind: "hash", hash: make(map[string]string)}
			sh.m[args[1]] = e
		}
		_, existed := e.hash[args[2]]
		e.hash[args[2]] = args[3]
		sh.mu.Unlock()
		if existed {
			writeInt(w, 0)
		} else {
			writeInt(w, 1)
		}
	case "HGET":
		if !arity(w, args, 3) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.RLock()
		e := sh.lookupRead(args[1], time.Now())
		var v string
		var ok bool
		if e != nil && e.kind == "hash" {
			v, ok = e.hash[args[2]]
		}
		sh.mu.RUnlock()
		if !ok {
			writeNil(w)
			return
		}
		writeBulk(w, v)
	case "HGETALL":
		if !arity(w, args, 2) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.RLock()
		e := sh.lookupRead(args[1], time.Now())
		var fields []string
		if e != nil && e.kind == "hash" {
			for f, v := range e.hash {
				fields = append(fields, f, v)
			}
		}
		sh.mu.RUnlock()
		// Deterministic field order for testability.
		sortPairs(fields)
		w.WriteString("*" + strconv.Itoa(len(fields)) + "\r\n")
		for _, f := range fields {
			writeBulk(w, f)
		}
	case "KEYS":
		// "*" and a trailing-star prefix ("shard/2/*") are supported — the
		// full wildcard for debugging, the prefix form for resharding scans.
		// Anything fancier is rejected (production Redis discourages KEYS
		// anyway).
		if !arity(w, args, 2) {
			return
		}
		pat := args[1]
		if !strings.HasSuffix(pat, "*") || strings.ContainsAny(pat[:len(pat)-1], "*?[") {
			writeError(w, "only KEYS * or a trailing-star prefix is supported")
			return
		}
		prefix := pat[:len(pat)-1]
		var keys []string
		now := time.Now()
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for key := range sh.m {
				if strings.HasPrefix(key, prefix) && sh.lookupRead(key, now) != nil {
					keys = append(keys, key)
				}
			}
			sh.mu.RUnlock()
		}
		sort.Strings(keys)
		w.WriteString("*" + strconv.Itoa(len(keys)) + "\r\n")
		for _, k := range keys {
			writeBulk(w, k)
		}
	case "HCOPY":
		// HCOPY src dst: replace dst with a snapshot of the src hash and
		// return the field count (0 deletes nothing and copies nothing — a
		// missing src is not an error, so migration scans can race expiry).
		// The resharding coordinator's bulk copy rides on this so a key moves
		// in one fenced round trip instead of HGETALL+N×HSET.
		if !arity(w, args, 3) {
			return
		}
		now := time.Now()
		src := s.shardOf(args[1])
		src.mu.RLock()
		e := src.lookupRead(args[1], now)
		var snap map[string]string
		if e != nil && e.kind == "hash" {
			snap = make(map[string]string, len(e.hash))
			for f, v := range e.hash {
				snap[f] = v
			}
		}
		src.mu.RUnlock()
		if len(snap) == 0 {
			writeInt(w, 0)
			return
		}
		// Snapshot under the source lock, write under the destination lock:
		// the two may be the same internal shard, so nesting would deadlock.
		dst := s.shardOf(args[2])
		dst.mu.Lock()
		dst.m[args[2]] = &entry{kind: "hash", hash: snap}
		dst.mu.Unlock()
		writeInt(w, int64(len(snap)))
	case "HLEN":
		if !arity(w, args, 2) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.RLock()
		e := sh.lookupRead(args[1], time.Now())
		var n int64
		if e != nil && e.kind == "hash" {
			n = int64(len(e.hash))
		}
		sh.mu.RUnlock()
		writeInt(w, n)
	case "EXPIRE":
		if !arity(w, args, 3) {
			return
		}
		secs, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			writeError(w, "value is not an integer or out of range")
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.Lock()
		e := sh.lookup(args[1], time.Now())
		if e == nil {
			sh.mu.Unlock()
			writeInt(w, 0)
			return
		}
		if secs <= 0 {
			delete(sh.m, args[1])
		} else {
			e.expireAt = time.Now().Add(time.Duration(secs) * time.Second)
		}
		sh.mu.Unlock()
		writeInt(w, 1)
	case "TTL":
		if !arity(w, args, 2) {
			return
		}
		sh := s.shardOf(args[1])
		now := time.Now()
		sh.mu.RLock()
		e := sh.lookupRead(args[1], now)
		sh.mu.RUnlock()
		switch {
		case e == nil:
			writeInt(w, -2)
		case e.expireAt.IsZero():
			writeInt(w, -1)
		default:
			// Round up so a key expiring in 0.5s reports 1.
			writeInt(w, int64((e.expireAt.Sub(now)+time.Second-1)/time.Second))
		}
	case "PERSIST":
		if !arity(w, args, 2) {
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.Lock()
		e := sh.lookup(args[1], time.Now())
		hadTTL := e != nil && !e.expireAt.IsZero()
		if hadTTL {
			e.expireAt = time.Time{}
		}
		sh.mu.Unlock()
		if hadTTL {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
	case "DBSIZE":
		var n int64
		now := time.Now()
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.RLock()
			for key := range sh.m {
				if sh.lookupRead(key, now) != nil {
					n++
				}
			}
			sh.mu.RUnlock()
		}
		writeInt(w, n)
	case "PEXPIREAT":
		// Internal absolute-deadline expiry, used by replication so a
		// standby applying a snapshot or log entry lands on the same
		// deadline the primary computed (EXPIRE is relative and would
		// drift by replication delay).
		if !arity(w, args, 3) {
			return
		}
		ms, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			writeError(w, "value is not an integer or out of range")
			return
		}
		sh := s.shardOf(args[1])
		sh.mu.Lock()
		e := sh.lookup(args[1], time.Now())
		if e == nil {
			sh.mu.Unlock()
			writeInt(w, 0)
			return
		}
		e.expireAt = time.UnixMilli(ms)
		sh.mu.Unlock()
		writeInt(w, 1)
	case "FLUSHALL":
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			sh.m = make(map[string]*entry)
			sh.mu.Unlock()
		}
		s.leases.clear()
		writeSimple(w, "OK")
	case "SETLEASE", "GETLEASE", "DELLEASE", "LEASEGRANT", "LEASEDEL":
		return s.leases.dispatch(cmd, args, w)
	default:
		writeError(w, "unknown command '"+args[0]+"'")
	}
	return nil
}

// sortPairs sorts a flat field/value list by field, keeping pairs together.
func sortPairs(pairs []string) {
	n := len(pairs) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pairs[2*idx[a]] < pairs[2*idx[b]] })
	out := make([]string, 0, len(pairs))
	for _, i := range idx {
		out = append(out, pairs[2*i], pairs[2*i+1])
	}
	copy(pairs, out)
}

func arity(w *bufio.Writer, args []string, want int) bool {
	if len(args) != want {
		writeError(w, "wrong number of arguments for '"+strings.ToLower(args[0])+"'")
		return false
	}
	return true
}

func writeSimple(w *bufio.Writer, s string) { w.WriteString("+" + s + "\r\n") }
func writeError(w *bufio.Writer, s string)  { w.WriteString("-ERR " + s + "\r\n") }

// writeRawError writes an error reply verbatim (no ERR prefix), for
// protocol-level codes clients parse: "MOVED <addr>", "FENCED ...",
// "LEASEHELD <owner> <ms>", "REPLWAIT ...".
func writeRawError(w *bufio.Writer, s string) { w.WriteString("-" + s + "\r\n") }
func writeInt(w *bufio.Writer, n int64)       { w.WriteString(":" + strconv.FormatInt(n, 10) + "\r\n") }
func writeNil(w *bufio.Writer)                { w.WriteString("$-1\r\n") }
func writeBulk(w *bufio.Writer, s string) {
	w.WriteString("$" + strconv.Itoa(len(s)) + "\r\n")
	w.WriteString(s)
	w.WriteString("\r\n")
}
