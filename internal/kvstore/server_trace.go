package kvstore

import (
	"sync"
	"time"
)

// TraceRecord is one server-side observation of a traced command: which
// trace issued it, the verb it ran, and how long the server spent on it
// (including any simulated latency). Matching these against the client's
// kv.<VERB> spans attributes a chaos-delayed command to the placement that
// issued it.
type TraceRecord struct {
	Trace string        `json:"trace"`
	Verb  string        `json:"verb"`
	Dur   time.Duration `json:"dur_ns"`
}

// traceRingCapacity bounds the server's traced-command memory. Only traced
// commands (TRACEID-prefixed) land here, so untraced load costs nothing.
const traceRingCapacity = 1024

type traceRing struct {
	mu   sync.Mutex
	buf  [traceRingCapacity]TraceRecord // guarded by mu
	next int                            // guarded by mu
	size int                            // guarded by mu
}

func (tr *traceRing) record(rec TraceRecord) {
	tr.mu.Lock()
	tr.buf[tr.next] = rec
	tr.next = (tr.next + 1) % len(tr.buf)
	if tr.size < len(tr.buf) {
		tr.size++
	}
	tr.mu.Unlock()
}

// TraceRecords returns the buffered traced-command observations, oldest
// first.
func (s *Server) TraceRecords() []TraceRecord {
	tr := &s.traces
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceRecord, 0, tr.size)
	for i := tr.size; i >= 1; i-- {
		out = append(out, tr.buf[(tr.next-i+len(tr.buf))%len(tr.buf)])
	}
	return out
}
