package kvstore

import (
	"errors"
	"testing"
	"time"
)

// TestLeaseAcquireRenewRelease pins the epoch discipline: epochs bump only on
// ownership change, never on renewal, and survive release so fencing tokens
// stay monotonic across leader turnover.
func TestLeaseAcquireRenewRelease(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)

	e1, err := c.SetLease("leader", "ctrl-A", 10*time.Second)
	if err != nil || e1 != 1 {
		t.Fatalf("acquire = %d, %v (want epoch 1)", e1, err)
	}
	// Renewal by the holder keeps the epoch: the lease is the same reign.
	e2, err := c.SetLease("leader", "ctrl-A", 10*time.Second)
	if err != nil || e2 != e1 {
		t.Fatalf("renew = %d, %v (want %d)", e2, err, e1)
	}
	owner, epoch, remaining, err := c.GetLease("leader")
	if err != nil || owner != "ctrl-A" || epoch != 1 {
		t.Fatalf("GetLease = %q/%d, %v", owner, epoch, err)
	}
	if remaining <= 0 || remaining > 10*time.Second {
		t.Fatalf("remaining = %v", remaining)
	}
	// Release, then a new owner: the epoch must move forward.
	if err := c.DelLease("leader", "ctrl-A"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.GetLease("leader"); err != ErrNil {
		t.Fatalf("released lease GetLease err = %v, want ErrNil", err)
	}
	e3, err := c.SetLease("leader", "ctrl-B", 10*time.Second)
	if err != nil || e3 != 2 {
		t.Fatalf("takeover = %d, %v (want epoch 2)", e3, err)
	}
}

// TestLeaseHeldAndExpiry: a held lease refuses other owners with a parseable
// LEASEHELD error, and lapses on its own once the TTL passes.
func TestLeaseHeldAndExpiry(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)

	if _, err := c.SetLease("leader", "ctrl-A", 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, err := c.SetLease("leader", "ctrl-B", time.Second)
	if err == nil || !IsLeaseHeldError(err) {
		t.Fatalf("contended acquire: got %v, want LEASEHELD", err)
	}
	if h := LeaseHolder(err); h != "ctrl-A" {
		t.Fatalf("LeaseHolder = %q", h)
	}
	// DelLease by a non-holder is a no-op.
	if err := c.DelLease("leader", "ctrl-B"); err != nil {
		t.Fatal(err)
	}
	if owner, _, _, _ := c.GetLease("leader"); owner != "ctrl-A" {
		t.Fatalf("non-holder release took the lease: owner %q", owner)
	}
	time.Sleep(60 * time.Millisecond)
	e, err := c.SetLease("leader", "ctrl-B", time.Second)
	if err != nil || e != 2 {
		t.Fatalf("post-expiry acquire = %d, %v (want epoch 2)", e, err)
	}
}

// TestFenceEpochs: fenced writes are admitted only while the writer's epoch
// is the key's newest grant; anything else — no lease, superseded epoch, or
// an epoch from the future — is rejected before touching the store.
func TestFenceEpochs(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)

	// Fencing against a key with no lease history fails closed.
	c.SetFence("leader", 1)
	if err := c.Set("k", "v"); err == nil || !IsFencedError(err) {
		t.Fatalf("no-lease fenced write: got %v, want FENCED", err)
	}
	c.ClearFence()

	e1, err := c.SetLease("leader", "ctrl-A", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFence("leader", e1)
	if err := c.Set("k", "v1"); err != nil {
		t.Fatalf("current-epoch fenced write: %v", err)
	}
	// Reads are never fenced, whatever the client's fence state.
	if v, err := c.Get("k"); err != nil || v != "v1" {
		t.Fatalf("fenced-client read = %q, %v", v, err)
	}

	// Ownership changes; the old epoch's writes must now bounce.
	c.ClearFence()
	if err := c.DelLease("leader", "ctrl-A"); err != nil {
		t.Fatal(err)
	}
	e2, err := c.SetLease("leader", "ctrl-B", 10*time.Second)
	if err != nil || e2 != e1+1 {
		t.Fatalf("takeover epoch = %d, %v", e2, err)
	}
	c.SetFence("leader", e1)
	if err := c.Set("k", "stale"); err == nil || !IsFencedError(err) {
		t.Fatalf("stale-epoch write: got %v, want FENCED", err)
	}
	c.SetFence("leader", e2)
	if err := c.Set("k", "v2"); err != nil {
		t.Fatalf("new-epoch write: %v", err)
	}
	if v, _ := c.Get("k"); v != "v2" {
		t.Fatalf("k = %q after fencing dance, want v2", v)
	}
}

// TestMovedRedirectLoopTerminates: a gate that always answers MOVED (pointing
// at the same server) must not spin the client forever — the hop cap turns a
// redirect loop into a server error after a bounded number of chases.
func TestMovedRedirectLoopTerminates(t *testing.T) {
	s, addr := startServer(t)
	s.SetGate(func(cmd string) string {
		if Mutates(cmd) {
			return "MOVED " + addr
		}
		return ""
	})
	c := dialT(t, addr)
	err := c.Set("k", "v")
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("redirect loop: got %v, want ErrRedirectLoop", err)
	}
	if got := c.Redirects(); got != maxMovedHops {
		t.Fatalf("redirects = %d, want the cap %d", got, maxMovedHops)
	}
	// Reads pass the gate untouched.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}
