package replica

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchboard/internal/kvstore"
)

// AckMode selects when a replicated write may be acknowledged to the client.
type AckMode int

const (
	// AckStandby (the default) withholds the reply until a standby holds
	// the entry — the semi-synchronous guarantee the failover e2e relies
	// on: every acked write survives promotion. With no standby attached
	// writes ack locally (the bootstrap window before the pair forms).
	AckStandby AckMode = iota
	// AckRelaxed acks as soon as the write is applied locally; replication
	// is asynchronous and the tail of acked writes can be lost on failover.
	// The -repl-ack=relaxed relaxation.
	AckRelaxed
)

// PrimaryOptions tunes the primary half. The zero value gives usable
// defaults.
type PrimaryOptions struct {
	AckMode AckMode
	// AckTimeout bounds how long a write waits for the standby before it is
	// refused with REPLWAIT (default 1s).
	AckTimeout time.Duration
	// Heartbeat is the idle-stream ping interval; standbys treat silence
	// beyond their FailoverTimeout as primary death (default 100ms).
	Heartbeat time.Duration
	// LogCap bounds the replication log (default 65536 entries).
	LogCap  int
	Metrics *Metrics
}

func (o PrimaryOptions) withDefaults() PrimaryOptions {
	if o.AckTimeout <= 0 {
		o.AckTimeout = time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 100 * time.Millisecond
	}
	if o.LogCap <= 0 {
		o.LogCap = 1 << 16
	}
	return o
}

// Primary sequences the local server's mutations into a replication log and
// streams it to standbys. Attach with NewPrimary; the server routes every
// mutation through Begin/Append and withholds replies via WaitAck.
type Primary struct {
	srv  *kvstore.Server
	log  *Log
	opts PrimaryOptions

	// order is the total mutation order: held from Begin (before the shard
	// apply) to Append/Abort, so log order equals apply order.
	order sync.Mutex

	mu       sync.Mutex
	acked    uint64        // guarded by mu; highest standby-acked sequence
	standbys int           // guarded by mu; attached sync streams
	progress chan struct{} // guarded by mu; closed and replaced when acked/standbys change
}

// NewPrimary wraps srv as a replication primary whose log starts after
// lastSeq (0 for a fresh store; a promoted standby passes the sequence it
// replicated up to) and attaches it as the server's replicator.
func NewPrimary(srv *kvstore.Server, lastSeq uint64, opts PrimaryOptions) *Primary {
	opts = opts.withDefaults()
	p := &Primary{
		srv:      srv,
		log:      NewLogAt(lastSeq, opts.LogCap),
		opts:     opts,
		progress: make(chan struct{}),
	}
	srv.SetReplicator(p)
	return p
}

// Begin acquires the total mutation order (see Replicator in kvstore).
func (p *Primary) Begin() { p.order.Lock() }

// Abort releases the order without logging (the command produced an error).
func (p *Primary) Abort() { p.order.Unlock() }

// Append logs one applied mutation and releases the order.
func (p *Primary) Append(args []string) uint64 {
	seq := p.log.Append(args)
	p.order.Unlock()
	p.mu.Lock()
	acked := p.acked
	p.mu.Unlock()
	p.opts.Metrics.position(seq, acked)
	return seq
}

// Lag returns the number of logged entries not yet standby-acknowledged.
func (p *Primary) Lag() uint64 {
	last := p.log.Last()
	p.mu.Lock()
	acked := p.acked
	p.mu.Unlock()
	if last < acked {
		return 0
	}
	return last - acked
}

// LastSeq returns the log head sequence.
func (p *Primary) LastSeq() uint64 { return p.log.Last() }

// WaitAck blocks until seq is standby-acknowledged per the ack policy.
func (p *Primary) WaitAck(seq uint64) error {
	if p.opts.AckMode == AckRelaxed {
		return nil
	}
	var timer *time.Timer
	for {
		p.mu.Lock()
		if p.standbys == 0 || p.acked >= seq {
			p.mu.Unlock()
			return nil
		}
		ch := p.progress
		p.mu.Unlock()
		if timer == nil {
			timer = time.NewTimer(p.opts.AckTimeout)
			defer timer.Stop()
		}
		select {
		case <-ch:
		case <-timer.C:
			p.opts.Metrics.ackTimeout()
			return fmt.Errorf("standby ack timeout after %v at seq %d", p.opts.AckTimeout, seq)
		}
	}
}

// signalLocked wakes every WaitAck waiter by replacing the progress channel
// (the close-and-remake idiom; sync.Cond has no timed wait).
//
//sblint:holds mu
func (p *Primary) signalLocked() {
	close(p.progress)
	p.progress = make(chan struct{})
}

// ack records a standby acknowledgment.
func (p *Primary) ack(seq uint64) {
	p.mu.Lock()
	if seq > p.acked {
		p.acked = seq
		p.signalLocked()
	}
	acked := p.acked
	p.mu.Unlock()
	p.opts.Metrics.position(p.log.Last(), acked)
}

// streamBatch caps how many entries one tail iteration copies and sends.
const streamBatch = 512

// ServeSync owns a REPLSYNC connection: it registers the standby, spawns a
// reader for its REPLACK frames, catches it up (snapshot or log tail), and
// then streams entries with REPLPING heartbeats on idle. All framing is
// plain RESP command arrays in both directions. Returns when the connection
// dies; the server's handler cleans up.
func (p *Primary) ServeSync(args []string, conn net.Conn, r *bufio.Reader, w *bufio.Writer) {
	var from uint64
	if len(args) >= 2 {
		if v, err := strconv.ParseUint(args[1], 10, 64); err == nil {
			from = v
		}
	}
	p.mu.Lock()
	p.standbys++
	p.signalLocked()
	n := p.standbys
	p.mu.Unlock()
	p.opts.Metrics.standbys(n)
	defer func() {
		p.mu.Lock()
		p.standbys--
		p.signalLocked()
		n := p.standbys
		p.mu.Unlock()
		p.opts.Metrics.standbys(n)
	}()
	go func() {
		// Acks flow standby->primary on the same connection. A read error
		// kills the connection, which unblocks the writer below.
		for {
			cmd, err := kvstore.ReadWireCommand(r)
			if err != nil {
				_ = conn.Close()
				return
			}
			if len(cmd) == 2 && strings.EqualFold(cmd[0], "REPLACK") {
				if seq, err := strconv.ParseUint(cmd[1], 10, 64); err == nil {
					p.ack(seq)
				}
			}
		}
	}()
	next := from + 1
	if !p.log.CanResumeFrom(from) {
		// The standby's position was trimmed away (or is from a divergent
		// history): send a full snapshot cut at the current log head.
		// Holding the mutation order across Snapshot makes the cut exact.
		p.order.Lock()
		cmds := p.srv.Snapshot()
		snapSeq := p.log.Last()
		p.order.Unlock()
		p.opts.Metrics.snapshot()
		hdr := []string{"SNAPSHOT", strconv.FormatUint(snapSeq, 10), strconv.Itoa(len(cmds))}
		if err := kvstore.WriteWireCommand(w, hdr); err != nil {
			return
		}
		for _, c := range cmds {
			if err := kvstore.WriteWireCommand(w, append([]string{"SNAPCMD"}, c...)); err != nil {
				return
			}
		}
		if err := w.Flush(); err != nil {
			return
		}
		next = snapSeq + 1
	} else {
		if err := kvstore.WriteWireCommand(w, []string{"CONTINUE", strconv.FormatUint(from, 10)}); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
	for {
		entries := p.log.From(next-1, streamBatch)
		if len(entries) == 0 {
			ping := []string{"REPLPING", strconv.FormatUint(p.log.Last(), 10)}
			if err := kvstore.WriteWireCommand(w, ping); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			select {
			case <-p.log.Changed():
			case <-time.After(p.opts.Heartbeat):
			}
			continue
		}
		for _, e := range entries {
			msg := append([]string{"ENTRY", strconv.FormatUint(e.Seq, 10)}, e.Args...)
			if err := kvstore.WriteWireCommand(w, msg); err != nil {
				return
			}
			p.opts.Metrics.streamed()
		}
		if err := w.Flush(); err != nil {
			return
		}
		next = entries[len(entries)-1].Seq + 1
	}
}
