package replica

import (
	"fmt"
	"testing"
	"time"

	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
	"switchboard/internal/obs"
)

// The failover e2e (the PR's acceptance bar): under a placement-like write
// load, the primary is killed or partitioned; the standby must promote, the
// client must fail over within clientDeadline, no acked write may be lost,
// and a fenced stale leader's post-takeover writes must be rejected.
//
// Timings are deliberately generous multiples of each other (heartbeat 25ms
// < read timeout 150ms < failover 500ms << deadlines in seconds) so the test
// is about ordering, not scheduler luck, and passes under -race.

const clientDeadline = 5 * time.Second

func TestChaosFailoverKill(t *testing.T)      { chaosFailover(t, false) }
func TestChaosFailoverPartition(t *testing.T) { chaosFailover(t, true) }

func chaosFailover(t *testing.T, partition bool) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	psrv, upstream := bootServer(t)
	paddr := upstream
	var proxy *faults.Proxy
	if partition {
		var err error
		proxy, err = faults.NewProxy(upstream, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = proxy.Close() })
		paddr = proxy.Addr()
	}
	NewPrimary(psrv, 0, PrimaryOptions{
		Heartbeat:  25 * time.Millisecond,
		AckTimeout: 500 * time.Millisecond,
		Metrics:    m,
	})
	ssrv, saddr := bootServer(t)
	promotedAt := make(chan time.Time, 1)
	sb := NewStandby(ssrv, paddr, StandbyOptions{
		FailoverTimeout: 500 * time.Millisecond,
		DialTimeout:     100 * time.Millisecond,
		ReadTimeout:     150 * time.Millisecond,
		RedialInterval:  20 * time.Millisecond,
		Metrics:         m,
		OnPromote:       func(*Primary) { promotedAt <- time.Now() },
	})
	go sb.Run()
	t.Cleanup(sb.Stop)

	cli, err := kvstore.DialFailover([]string{paddr, saddr}, kvstore.Options{
		DialTimeout: 100 * time.Millisecond,
		IOTimeout:   250 * time.Millisecond,
		MaxRetries:  2,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cli.Close() })

	// The stale leader-to-be acquires the lease and fences its writes. A
	// short TTL lets the successor take over quickly after the fault.
	epochA, err := cli.SetLease("leader", "ctrl-A", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cli.SetFence("leader", epochA)
	// Wait until the standby is attached and has replicated the lease —
	// from here on, every acked write is guaranteed to be on the standby.
	rdr := dial(t, saddr)
	waitFor(t, 5*time.Second, "lease replication", func() bool {
		owner, _, _, err := rdr.GetLease("leader")
		return err == nil && owner == "ctrl-A"
	})

	// Placement-like load: one HSET per call, acked writes recorded. The
	// fault fires mid-stream; the loop keeps going until it has seen 100
	// acked writes after the fault (prove the failover path carries load,
	// not just one probe).
	acked := make(map[string]string)
	var faultAt, recoveredAt time.Time
	postFaultAcks := 0
	for i := 1; ; i++ {
		if i == 100 {
			if partition {
				proxy.Partition()
			} else {
				_ = psrv.Close()
			}
			faultAt = time.Now()
			// The stale leader stops renewing; its lease will lapse while
			// the cluster fails over.
			cli.ClearFence()
		}
		key := fmt.Sprintf("call:%05d", i)
		val := fmt.Sprintf("ended-%d", i)
		if err := cli.HSet(key, "state", val); err == nil {
			acked[key] = val
			if !faultAt.IsZero() {
				if recoveredAt.IsZero() {
					recoveredAt = time.Now()
				}
				postFaultAcks++
				if postFaultAcks >= 100 {
					break
				}
			}
		}
		if !faultAt.IsZero() && time.Since(faultAt) > 2*clientDeadline {
			t.Fatalf("no recovery %v after the fault (%d post-fault acks)", time.Since(faultAt), postFaultAcks)
		}
	}

	// Standby must have promoted, and the client's first post-fault ack
	// must land within its deadline.
	var promoted time.Time
	select {
	case promoted = <-promotedAt:
	default:
		t.Fatal("standby never promoted")
	}
	t.Logf("promotion after %v, client recovery after %v (mode partition=%v)",
		promoted.Sub(faultAt), recoveredAt.Sub(faultAt), partition)
	if got := recoveredAt.Sub(faultAt); got > clientDeadline {
		t.Fatalf("client failover took %v, deadline %v", got, clientDeadline)
	}
	if m.Promotions.Value() != 1 {
		t.Fatalf("promotions counter = %v, want 1", m.Promotions.Value())
	}

	// Zero acked-write loss: every acked write must be readable on the
	// promoted standby.
	for key, want := range acked {
		got, err := rdr.HGet(key, "state")
		if err != nil || got != want {
			t.Fatalf("acked write lost: %s = %q, %v (want %q)", key, got, err, want)
		}
	}

	// Fencing: a new leader takes the lease on the promoted standby (the
	// old grant must lapse first), bumping the epoch...
	newLeader := dial(t, saddr)
	var epochB int64
	waitFor(t, 5*time.Second, "lease takeover", func() bool {
		e, err := newLeader.SetLease("leader", "ctrl-B", 10*time.Second)
		if err != nil {
			return false
		}
		epochB = e
		return true
	})
	if epochB != epochA+1 {
		t.Fatalf("takeover epoch = %d, want %d", epochB, epochA+1)
	}
	// ...after which the stale leader's fenced writes are rejected...
	stale := dial(t, saddr)
	stale.SetFence("leader", epochA)
	err = stale.HSet("call:stale", "state", "zombie")
	if err == nil || !kvstore.IsFencedError(err) {
		t.Fatalf("stale fenced write: got %v, want FENCED", err)
	}
	// ...while the new leader's fenced writes land.
	newLeader.SetFence("leader", epochB)
	if err := newLeader.HSet("call:new", "state", "ok"); err != nil {
		t.Fatalf("new leader fenced write: %v", err)
	}
	if _, err := rdr.HGet("call:stale", "state"); err != kvstore.ErrNil {
		t.Fatalf("zombie write visible: %v", err)
	}
}
