package replica

import (
	"bufio"
	"log/slog"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchboard/internal/kvstore"
)

// StandbyOptions tunes the standby half. The zero value gives usable
// defaults.
type StandbyOptions struct {
	// FailoverTimeout is how long the primary may stay silent (no stream
	// reads — covering crashes and partitions alike) before the standby
	// promotes itself (default 2s; negative disables self-promotion).
	FailoverTimeout time.Duration
	// DialTimeout bounds each connection attempt to the primary (default
	// 500ms).
	DialTimeout time.Duration
	// ReadTimeout is the per-read deadline on the sync stream; it must
	// exceed the primary's heartbeat interval or a healthy idle stream
	// looks dead (default 300ms).
	ReadTimeout time.Duration
	// RedialInterval paces reconnect attempts (default 50ms).
	RedialInterval time.Duration
	// Promote configures the Primary this standby becomes on promotion.
	Promote PrimaryOptions
	// OnPromote, when non-nil, runs once after promotion (off the Run
	// goroutine's lock).
	OnPromote func(*Primary)
	Metrics   *Metrics
	Logger    *slog.Logger
}

func (o StandbyOptions) withDefaults() StandbyOptions {
	if o.FailoverTimeout == 0 {
		o.FailoverTimeout = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 500 * time.Millisecond
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 300 * time.Millisecond
	}
	if o.RedialInterval <= 0 {
		o.RedialInterval = 50 * time.Millisecond
	}
	return o
}

// Standby replicates a primary into the local server. While standing by, the
// local server serves reads (stale-read replica semantics) but refuses
// mutations with "MOVED <primary>", so clients chase the true write path.
// When the primary falls silent past FailoverTimeout — or Promote is called
// — the gate lifts and the standby becomes a primary for the sequence space
// it replicated.
type Standby struct {
	srv     *kvstore.Server
	primary string
	opts    StandbyOptions

	mu          sync.Mutex
	lastSeq     uint64    // guarded by mu; highest applied sequence
	lastContact time.Time // guarded by mu; last successful stream read
	promoted    *Primary  // guarded by mu; non-nil once promoted

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// NewStandby wraps srv as a standby replicating from primaryAddr and arms
// the MOVED mutation gate. Call Run (usually in a goroutine) to start
// syncing. The server should start empty — a snapshot resets it, but a log
// tail applies on top of whatever is there.
func NewStandby(srv *kvstore.Server, primaryAddr string, opts StandbyOptions) *Standby {
	s := &Standby{
		srv:     srv,
		primary: primaryAddr,
		opts:    opts.withDefaults(),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	s.lastContact = time.Now()
	s.mu.Unlock()
	moved := "MOVED " + primaryAddr
	srv.SetGate(func(cmd string) string {
		if kvstore.Mutates(cmd) {
			return moved
		}
		return ""
	})
	return s
}

// Run syncs from the primary until Stop or promotion. The silence clock
// starts at NewStandby, so a primary that is unreachable from the outset
// still trips the failover timeout.
func (s *Standby) Run() {
	defer close(s.done)
	for {
		select {
		case <-s.stopCh:
			return
		default:
		}
		s.mu.Lock()
		promoted := s.promoted != nil
		silence := time.Since(s.lastContact)
		s.mu.Unlock()
		if promoted {
			return
		}
		if s.opts.FailoverTimeout > 0 && silence >= s.opts.FailoverTimeout {
			s.logf("primary silent, promoting", "silence", silence)
			s.Promote()
			return
		}
		conn, err := net.DialTimeout("tcp", s.primary, s.opts.DialTimeout)
		if err == nil {
			s.sync(conn)
			_ = conn.Close()
		}
		select {
		case <-s.stopCh:
			return
		case <-time.After(s.opts.RedialInterval):
		}
	}
}

// sync drives one REPLSYNC stream until it errors. Every successful read —
// entry, snapshot frame, or heartbeat — counts as primary contact; a
// blackholed connection (partition) stalls past ReadTimeout and returns, and
// the silence accumulates toward FailoverTimeout.
func (s *Standby) sync(conn net.Conn) {
	r := bufio.NewReaderSize(conn, 32<<10)
	w := bufio.NewWriterSize(conn, 4<<10)
	_ = conn.SetWriteDeadline(time.Now().Add(s.opts.ReadTimeout))
	if err := kvstore.WriteWireCommand(w, []string{"REPLSYNC", strconv.FormatUint(s.LastSeq(), 10)}); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}
	var snapSeq uint64
	snapRemaining := -1 // >=0 while receiving a snapshot body
	for {
		if s.Promoted() {
			return
		}
		select {
		case <-s.stopCh:
			return
		default:
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		msg, err := kvstore.ReadWireCommand(r)
		if err != nil {
			return
		}
		if len(msg) == 0 {
			continue
		}
		s.touch()
		switch strings.ToUpper(msg[0]) {
		case "SNAPSHOT": // SNAPSHOT <seq> <n>: full resync; wipe and rebuild
			if len(msg) != 3 {
				return
			}
			seq, err1 := strconv.ParseUint(msg[1], 10, 64)
			n, err2 := strconv.Atoi(msg[2])
			if err1 != nil || err2 != nil || n < 0 {
				return
			}
			_ = s.srv.Apply([]string{"FLUSHALL"})
			snapSeq, snapRemaining = seq, n
			if snapRemaining == 0 {
				s.finishSnapshot(conn, w, snapSeq)
				snapRemaining = -1
			}
		case "SNAPCMD":
			if snapRemaining <= 0 || len(msg) < 2 {
				return
			}
			_ = s.srv.Apply(msg[1:])
			s.opts.Metrics.applied()
			snapRemaining--
			if snapRemaining == 0 {
				s.finishSnapshot(conn, w, snapSeq)
				snapRemaining = -1
			}
		case "CONTINUE": // resuming the tail; nothing to do
		case "ENTRY": // ENTRY <seq> <args...>
			if len(msg) < 3 {
				return
			}
			seq, err := strconv.ParseUint(msg[1], 10, 64)
			if err != nil {
				return
			}
			// A reconnect can replay entries we already hold; applying
			// only forward keeps the apply stream idempotent.
			if seq > s.LastSeq() {
				_ = s.srv.Apply(msg[2:])
				s.setSeq(seq)
				s.opts.Metrics.applied()
			}
			if !s.sendAck(conn, w, seq) {
				return
			}
		case "REPLPING": // heartbeat; ack our position so the primary sees liveness
			if !s.sendAck(conn, w, s.LastSeq()) {
				return
			}
		}
	}
}

func (s *Standby) finishSnapshot(conn net.Conn, w *bufio.Writer, seq uint64) {
	s.setSeq(seq)
	_ = s.sendAck(conn, w, seq)
}

func (s *Standby) sendAck(conn net.Conn, w *bufio.Writer, seq uint64) bool {
	_ = conn.SetWriteDeadline(time.Now().Add(s.opts.ReadTimeout))
	if err := kvstore.WriteWireCommand(w, []string{"REPLACK", strconv.FormatUint(seq, 10)}); err != nil {
		return false
	}
	return w.Flush() == nil
}

func (s *Standby) touch() {
	s.mu.Lock()
	s.lastContact = time.Now()
	s.mu.Unlock()
}

func (s *Standby) setSeq(seq uint64) {
	s.mu.Lock()
	if seq > s.lastSeq {
		s.lastSeq = seq
	}
	s.mu.Unlock()
}

// LastSeq returns the highest applied sequence.
func (s *Standby) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// Promoted reports whether this standby has become a primary.
func (s *Standby) Promoted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted != nil
}

// Primary returns the Primary born at promotion (nil before).
func (s *Standby) Primary() *Primary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Promote lifts the mutation gate and attaches a fresh Primary continuing
// this standby's sequence space. Idempotent; safe to call while Run is
// active (Run notices and exits). Returns the promoted Primary.
func (s *Standby) Promote() *Primary {
	s.mu.Lock()
	if s.promoted != nil {
		p := s.promoted
		s.mu.Unlock()
		return p
	}
	po := s.opts.Promote
	if po.Metrics == nil {
		po.Metrics = s.opts.Metrics
	}
	s.srv.SetGate(nil)
	p := NewPrimary(s.srv, s.lastSeq, po)
	s.promoted = p
	seq := s.lastSeq
	s.mu.Unlock()
	s.opts.Metrics.promoted()
	s.logf("promoted to primary", "last_seq", seq)
	s.stopOnce.Do(func() { close(s.stopCh) })
	if s.opts.OnPromote != nil {
		s.opts.OnPromote(p)
	}
	return p
}

// Stop halts syncing (without promoting). Run returns within a read timeout.
func (s *Standby) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
}

// Done is closed when Run has returned.
func (s *Standby) Done() <-chan struct{} { return s.done }

func (s *Standby) logf(msg string, kv ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Info(msg, kv...)
	}
}
