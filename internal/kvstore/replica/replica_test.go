package replica

import (
	"net"
	"strconv"
	"testing"
	"time"

	"switchboard/internal/kvstore"
	"switchboard/internal/obs"
)

// bootServer starts a kvstore server on a fresh loopback port.
func bootServer(t *testing.T) (*kvstore.Server, string) {
	t.Helper()
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, l.Addr().String()
}

func dial(t *testing.T, addrs ...string) *kvstore.Client {
	t.Helper()
	c, err := kvstore.DialFailover(addrs, kvstore.Options{
		DialTimeout: 500 * time.Millisecond,
		IOTimeout:   time.Second,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLogTrimAndResume(t *testing.T) {
	l := NewLog(4)
	for i := 1; i <= 10; i++ {
		if seq := l.Append([]string{"SET", "k", strconv.Itoa(i)}); seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if l.Last() != 10 {
		t.Fatalf("last = %d", l.Last())
	}
	// Entries 7..10 are retained, so resume is possible from >= 6.
	if l.CanResumeFrom(5) {
		t.Fatal("resume from 5 should need a snapshot")
	}
	if !l.CanResumeFrom(6) || !l.CanResumeFrom(10) {
		t.Fatal("resume from 6 and 10 should tail")
	}
	if l.CanResumeFrom(11) {
		t.Fatal("resume from the future should resync")
	}
	got := l.From(8, 0)
	if len(got) != 2 || got[0].Seq != 9 || got[1].Seq != 10 {
		t.Fatalf("From(8) = %+v", got)
	}
	if n := len(l.From(0, 3)); n != 3 {
		t.Fatalf("From(0, max 3) returned %d entries", n)
	}
}

// TestReplicationTail replicates a live write stream and verifies the
// standby converges, lag drains to zero, and acked-write semantics hold.
func TestReplicationTail(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	psrv, paddr := bootServer(t)
	prim := NewPrimary(psrv, 0, PrimaryOptions{
		Heartbeat:  20 * time.Millisecond,
		AckTimeout: 2 * time.Second,
		Metrics:    m,
	})
	ssrv, saddr := bootServer(t)
	sb := NewStandby(ssrv, paddr, StandbyOptions{
		FailoverTimeout: -1, // never self-promote in this test
		ReadTimeout:     100 * time.Millisecond,
		Metrics:         m,
	})
	go sb.Run()
	t.Cleanup(sb.Stop)

	cli := dial(t, paddr)
	for i := 0; i < 50; i++ {
		if err := cli.HSet("call:"+strconv.Itoa(i), "state", "ended"); err != nil {
			t.Fatalf("HSet %d: %v", i, err)
		}
	}
	// Acked ⇒ on the standby, as soon as a standby is attached. The writes
	// above may have raced the attach, so wait for convergence explicitly.
	waitFor(t, 5*time.Second, "standby catch-up", func() bool { return sb.LastSeq() == prim.LastSeq() })
	rdr := dial(t, saddr)
	for i := 0; i < 50; i++ {
		v, err := rdr.HGet("call:"+strconv.Itoa(i), "state")
		if err != nil || v != "ended" {
			t.Fatalf("standby HGET %d = %q, %v", i, v, err)
		}
	}
	if prim.Lag() != 0 {
		t.Fatalf("lag = %d after catch-up", prim.Lag())
	}
	if m.AckedSeq.Value() != float64(prim.LastSeq()) {
		t.Fatalf("acked gauge = %v, log head %d", m.AckedSeq.Value(), prim.LastSeq())
	}
}

// TestSnapshotCatchUp attaches a standby after the log has been trimmed, so
// catch-up must go through the snapshot path (including lease state).
func TestSnapshotCatchUp(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	psrv, paddr := bootServer(t)
	NewPrimary(psrv, 0, PrimaryOptions{LogCap: 8, Heartbeat: 20 * time.Millisecond, Metrics: m})
	cli := dial(t, paddr)
	if _, err := cli.SetLease("leader", "ctrl-A", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := cli.Set("k"+strconv.Itoa(i), strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}

	ssrv, saddr := bootServer(t)
	sb := NewStandby(ssrv, paddr, StandbyOptions{
		FailoverTimeout: -1,
		ReadTimeout:     100 * time.Millisecond,
		Metrics:         m,
	})
	go sb.Run()
	t.Cleanup(sb.Stop)
	waitFor(t, 5*time.Second, "snapshot catch-up", func() bool { return sb.LastSeq() >= 101 })

	rdr := dial(t, saddr)
	for i := 0; i < 100; i++ {
		v, err := rdr.Get("k" + strconv.Itoa(i))
		if err != nil || v != strconv.Itoa(i) {
			t.Fatalf("standby GET k%d = %q, %v", i, v, err)
		}
	}
	owner, epoch, _, err := rdr.GetLease("leader")
	if err != nil || owner != "ctrl-A" || epoch != 1 {
		t.Fatalf("standby lease = %q/%d, %v", owner, epoch, err)
	}
	if m.Snapshots.Value() == 0 {
		t.Fatal("snapshot counter did not move")
	}
}

// TestStandbyGateMoved verifies a standby refuses mutations with a MOVED
// redirect that the client follows transparently, while serving reads.
func TestStandbyGateMoved(t *testing.T) {
	psrv, paddr := bootServer(t)
	prim := NewPrimary(psrv, 0, PrimaryOptions{Heartbeat: 20 * time.Millisecond})
	ssrv, saddr := bootServer(t)
	sb := NewStandby(ssrv, paddr, StandbyOptions{FailoverTimeout: -1, ReadTimeout: 100 * time.Millisecond})
	go sb.Run()
	t.Cleanup(sb.Stop)

	// A client pointed only at the standby still lands its write on the
	// primary via the redirect.
	cli := dial(t, saddr)
	if err := cli.Set("via-standby", "ok"); err != nil {
		t.Fatalf("redirected SET: %v", err)
	}
	if cli.Redirects() == 0 {
		t.Fatal("expected a MOVED redirect to be followed")
	}
	waitFor(t, 5*time.Second, "replication", func() bool { return sb.LastSeq() >= prim.LastSeq() })
	rdr := dial(t, saddr)
	if v, err := rdr.Get("via-standby"); err != nil || v != "ok" {
		t.Fatalf("standby read = %q, %v", v, err)
	}
}

// TestAckTimeoutRefusesWrite pins the REPLWAIT behavior: with a standby
// attached but not acking (stalled), an AckStandby write must be refused,
// and the client must classify it as a replication-wait server error.
func TestAckTimeoutRefusesWrite(t *testing.T) {
	psrv, paddr := bootServer(t)
	NewPrimary(psrv, 0, PrimaryOptions{
		AckTimeout: 100 * time.Millisecond,
		Heartbeat:  20 * time.Millisecond,
	})
	// A fake standby: sends REPLSYNC, then never acks.
	conn, err := net.Dial("tcp", paddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if _, err := conn.Write([]byte("REPLSYNC 0\r\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the stream register

	cli := dial(t, paddr)
	err = cli.Set("k", "v")
	if err == nil || !kvstore.IsReplWaitError(err) {
		t.Fatalf("want REPLWAIT error, got %v", err)
	}
	// Reads are unaffected by the ack policy.
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestRelaxedAckMode verifies -repl-ack=relaxed semantics: writes ack
// immediately even with a mute standby attached.
func TestRelaxedAckMode(t *testing.T) {
	psrv, paddr := bootServer(t)
	NewPrimary(psrv, 0, PrimaryOptions{
		AckMode:    AckRelaxed,
		AckTimeout: 50 * time.Millisecond,
		Heartbeat:  20 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", paddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if _, err := conn.Write([]byte("REPLSYNC 0\r\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	cli := dial(t, paddr)
	if err := cli.Set("k", "v"); err != nil {
		t.Fatalf("relaxed write should ack locally: %v", err)
	}
}

// TestPromoteIdempotent pins manual promotion: the gate lifts, writes land
// locally, and a second Promote returns the same Primary.
func TestPromoteIdempotent(t *testing.T) {
	_, paddr := bootServer(t)
	ssrv, saddr := bootServer(t)
	sb := NewStandby(ssrv, paddr, StandbyOptions{FailoverTimeout: -1, ReadTimeout: 50 * time.Millisecond})
	go sb.Run()
	p1 := sb.Promote()
	if p2 := sb.Promote(); p2 != p1 {
		t.Fatal("second Promote returned a different Primary")
	}
	<-sb.Done()
	cli := dial(t, saddr)
	if err := cli.Set("after-promote", "ok"); err != nil {
		t.Fatalf("write to promoted standby: %v", err)
	}
	if got := p1.LastSeq(); got == 0 {
		t.Fatal("promoted primary did not sequence the write")
	}
}
