// Package replica adds primary/standby replication and failover to the
// kvstore server, modeled on the semi-synchronous designs conferencing
// control planes lean on (the paper's controller assumes a durable Azure
// Redis; ADS argues the control plane itself must recover dynamically).
//
// The primary sequences every mutation into a bounded log and streams it to
// standbys over the store's own RESP wire protocol (REPLSYNC / ENTRY /
// REPLACK frames). A standby that is too far behind catches up from a
// snapshot, then tails the log. Under the default AckStandby policy a write
// is acked to the client only once the standby holds it, so a promoted
// standby is guaranteed to contain every acked write. The standby detects
// primary silence (heartbeats stop — crash or partition alike) and promotes
// itself: the mutation gate lifts, a fresh Primary attaches to the local
// server, and clients that followed its MOVED redirects or failover dials
// carry on. Leadership of the *controllers* is layered above this with TTL
// leases and fencing epochs (see internal/kvstore lease.go and
// internal/controller lease.go).
package replica

import (
	"sync"
)

// Entry is one sequenced mutation.
type Entry struct {
	Seq  uint64
	Args []string
}

// Log is the bounded in-memory replication log. Appends trim the front once
// the capacity is exceeded; a standby whose resume point has been trimmed
// away falls back to a snapshot.
type Log struct {
	mu      sync.Mutex
	entries []Entry // guarded by mu
	base    uint64  // guarded by mu; seq of entries[0] (last+1 when empty)
	last    uint64  // guarded by mu; highest appended seq (0 before first)
	cap     int
	changed chan struct{} // guarded by mu; closed and replaced on append
}

// NewLog returns an empty log retaining at most capacity entries.
func NewLog(capacity int) *Log { return NewLogAt(0, capacity) }

// NewLogAt returns an empty log whose next append gets sequence last+1 — a
// promoted standby continues the sequence space it replicated, so later
// standbys attach with their positions intact.
func NewLogAt(last uint64, capacity int) *Log {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Log{base: last + 1, last: last, cap: capacity, changed: make(chan struct{})}
}

// Append adds one mutation and returns its sequence number.
func (l *Log) Append(args []string) uint64 {
	l.mu.Lock()
	l.last++
	l.entries = append(l.entries, Entry{Seq: l.last, Args: args})
	if len(l.entries) > l.cap {
		drop := len(l.entries) - l.cap
		l.entries = append([]Entry(nil), l.entries[drop:]...)
		l.base = l.entries[0].Seq
	}
	seq := l.last
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
	return seq
}

// Last returns the highest appended sequence (0 before the first append).
func (l *Log) Last() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// CanResumeFrom reports whether a standby that has applied everything up to
// and including from can tail the log without a snapshot: every entry after
// from must still be retained, and from must not be ahead of this log (a
// position from a divergent history).
func (l *Log) CanResumeFrom(from uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return from <= l.last && from+1 >= l.base
}

// From returns up to max entries with Seq > from (a copy; max <= 0 means no
// limit).
func (l *Log) From(from uint64, max int) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.entries) && l.entries[i].Seq <= from {
		i++
	}
	n := len(l.entries) - i
	if max > 0 && n > max {
		n = max
	}
	out := make([]Entry, n)
	copy(out, l.entries[i:i+n])
	return out
}

// Changed returns a channel closed on the next append, for tailers to block
// on.
func (l *Log) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}
