package replica

import "switchboard/internal/obs"

// Metrics is the replication telemetry bundle, shared between the primary
// and standby halves (a promoted standby keeps reporting into the same
// family). All methods are nil-safe.
type Metrics struct {
	// LogSeq and AckedSeq are the primary's log head and the highest
	// standby-acknowledged sequence; Lag is their difference in entries.
	LogSeq   *obs.Gauge
	AckedSeq *obs.Gauge
	Lag      *obs.Gauge
	// Standbys is the number of attached sync streams.
	Standbys *obs.Gauge

	Streamed    *obs.Counter // entries sent to standbys
	Applied     *obs.Counter // entries applied by this standby
	Snapshots   *obs.Counter // catch-ups that needed a full snapshot
	AckTimeouts *obs.Counter // writes refused because the standby ack timed out
	Promotions  *obs.Counter // standby self- or operator-promotions
}

// NewMetrics registers the replication metric families on r (nil r yields a
// usable all-nil bundle).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		LogSeq:   r.Gauge("sb_repl_log_seq", "Primary replication log head sequence."),
		AckedSeq: r.Gauge("sb_repl_acked_seq", "Highest standby-acknowledged sequence."),
		Lag:      r.Gauge("sb_repl_lag_entries", "Replication lag in log entries (head - acked)."),
		Standbys: r.Gauge("sb_repl_standbys", "Attached standby sync streams."),
		Streamed: r.Counter("sb_repl_entries_streamed_total", "Log entries streamed to standbys."),
		Applied:  r.Counter("sb_repl_entries_applied_total", "Log entries applied on this standby."),
		Snapshots: r.Counter("sb_repl_snapshots_total",
			"Standby catch-ups that fell back to a full snapshot."),
		AckTimeouts: r.Counter("sb_repl_ack_timeouts_total",
			"Writes refused because the standby acknowledgment timed out."),
		Promotions: r.Counter("sb_repl_promotions_total", "Standby promotions to primary."),
	}
}

func (m *Metrics) position(logSeq, acked uint64) {
	if m == nil {
		return
	}
	m.LogSeq.Set(float64(logSeq))
	m.AckedSeq.Set(float64(acked))
	if logSeq >= acked {
		m.Lag.Set(float64(logSeq - acked))
	}
}

func (m *Metrics) standbys(n int) {
	if m != nil {
		m.Standbys.Set(float64(n))
	}
}

func (m *Metrics) streamed() {
	if m != nil {
		m.Streamed.Inc()
	}
}

func (m *Metrics) applied() {
	if m != nil {
		m.Applied.Inc()
	}
}

func (m *Metrics) snapshot() {
	if m != nil {
		m.Snapshots.Inc()
	}
}

func (m *Metrics) ackTimeout() {
	if m != nil {
		m.AckTimeouts.Inc()
	}
}

func (m *Metrics) promoted() {
	if m != nil {
		m.Promotions.Inc()
	}
}
