package kvstore

import (
	"errors"
	"net"
	"testing"
	"time"
)

// deadAddr returns an address nothing listens on: bind a port, then free it.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// TestDialFailoverAllDead pins the exhaustion contract: an all-dead failover
// list fails in one bounded pass with the typed ErrExhausted — no hang, no
// internal retry loop hiding behind the dial.
func TestDialFailoverAllDead(t *testing.T) {
	addrs := []string{deadAddr(t), deadAddr(t), deadAddr(t)}
	start := time.Now()
	c, err := DialFailover(addrs, Options{DialTimeout: 200 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		_ = c.Close()
		t.Fatal("DialFailover succeeded against an all-dead list")
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	// One pass over three addresses with a 200ms per-dial cap: localhost
	// connection-refused is immediate, so well under a second total. The
	// generous bound only catches a retry loop, not scheduler noise.
	if elapsed > 3*time.Second {
		t.Fatalf("all-dead dial took %v, want one bounded pass", elapsed)
	}
}

// TestMovedMutualRedirectLoop pins the cross-server loop: two stores each
// claiming the other is primary must yield the typed ErrRedirectLoop after
// the hop cap, quickly, instead of ping-ponging the client forever.
func TestMovedMutualRedirectLoop(t *testing.T) {
	sa, addrA := startServer(t)
	sb, addrB := startServer(t)
	sa.SetGate(func(cmd string) string {
		if Mutates(cmd) {
			return "MOVED " + addrB
		}
		return ""
	})
	sb.SetGate(func(cmd string) string {
		if Mutates(cmd) {
			return "MOVED " + addrA
		}
		return ""
	})
	c := dialT(t, addrA)
	start := time.Now()
	err := c.Set("k", "v")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("mutual MOVED loop: got %v, want ErrRedirectLoop", err)
	}
	if got := c.Redirects(); got != maxMovedHops {
		t.Fatalf("redirects = %d, want the cap %d", got, maxMovedHops)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("redirect loop took %v to terminate", elapsed)
	}
	// The client is still usable against the non-gated read path.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}
