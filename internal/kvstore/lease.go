// TTL leases and fencing epochs — the store-side half of leader election.
//
// Controllers race SETLEASE on a well-known key; the winner renews within the
// TTL, followers see LEASEHELD and wait for the lapse. Every ownership change
// bumps a monotonic epoch, and writers stamp their epoch onto mutations with
// the FENCE prefix (see Client.SetFence), so a deposed leader's in-flight
// writes are rejected the moment a successor is granted the lease. This is
// the standard lease+fencing construction (Gray & Cheriton '89; Chubby) and
// assumes roughly synchronized clocks between primary and standby — the
// replicated LEASEGRANT form carries an absolute deadline.

package kvstore

import (
	"bufio"
	"strconv"
	"sync"
	"time"
)

// leaseEntry is one lease key's state. Entries survive release and expiry
// (owner cleared, epoch kept) so epochs stay monotonic across the key's whole
// history — a fencing epoch must never be reissued.
type leaseEntry struct {
	owner    string
	epoch    int64
	expireAt time.Time
}

func (l *leaseEntry) live(now time.Time) bool {
	return l != nil && l.owner != "" && now.Before(l.expireAt)
}

// leaseTable holds every lease key. A single mutex (not the shard locks) is
// fine: the table sees one SETLEASE per controller per renew interval, not
// the data path's write rate.
type leaseTable struct {
	mu sync.Mutex
	m  map[string]*leaseEntry // guarded by mu
}

// dispatch executes one lease verb, writing the RESP reply to w and
// returning the canonical replication form (absolute deadlines, resolved
// epochs) so a standby replaying the log lands on identical lease state.
func (lt *leaseTable) dispatch(cmd string, args []string, w *bufio.Writer) (logArgs []string) {
	switch cmd {
	case "SETLEASE":
		// SETLEASE key owner ttlms -> :epoch, or -LEASEHELD <owner> <ms>
		// while another owner's grant is live. Acquiring bumps the epoch;
		// renewing (same owner) keeps it.
		if !arity(w, args, 4) {
			return
		}
		ttlMS, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil || ttlMS <= 0 {
			writeError(w, "ttl is not a positive integer")
			return
		}
		now := time.Now()
		lt.mu.Lock()
		l := lt.m[args[1]]
		if l == nil {
			l = &leaseEntry{}
			lt.m[args[1]] = l
		}
		if l.owner != args[2] && l.live(now) {
			owner, remain := l.owner, l.expireAt.Sub(now).Milliseconds()
			lt.mu.Unlock()
			writeRawError(w, "LEASEHELD "+owner+" "+strconv.FormatInt(remain, 10))
			return nil
		}
		if l.owner != args[2] {
			l.epoch++
			l.owner = args[2]
		}
		l.expireAt = now.Add(time.Duration(ttlMS) * time.Millisecond)
		epoch, deadline := l.epoch, l.expireAt.UnixMilli()
		lt.mu.Unlock()
		writeInt(w, epoch)
		return []string{"LEASEGRANT", args[1], args[2],
			strconv.FormatInt(epoch, 10), strconv.FormatInt(deadline, 10)}
	case "GETLEASE":
		// GETLEASE key -> [owner, epoch, remaining-ms], or nil when the
		// lease is free or lapsed.
		if !arity(w, args, 2) {
			return
		}
		now := time.Now()
		lt.mu.Lock()
		l := lt.m[args[1]]
		if !l.live(now) {
			lt.mu.Unlock()
			writeNil(w)
			return
		}
		owner, epoch, remain := l.owner, l.epoch, l.expireAt.Sub(now).Milliseconds()
		lt.mu.Unlock()
		w.WriteString("*3\r\n")
		writeBulk(w, owner)
		writeBulk(w, strconv.FormatInt(epoch, 10))
		writeBulk(w, strconv.FormatInt(remain, 10))
	case "DELLEASE":
		// DELLEASE key owner -> :1 when the caller held it (now released),
		// :0 otherwise. Release keeps the epoch so it cannot be reissued.
		if !arity(w, args, 3) {
			return
		}
		lt.mu.Lock()
		l := lt.m[args[1]]
		freed := l != nil && l.owner == args[2]
		if freed {
			l.owner = ""
			l.expireAt = time.Time{}
		}
		lt.mu.Unlock()
		if freed {
			writeInt(w, 1)
		} else {
			writeInt(w, 0)
		}
		return []string{"LEASEDEL", args[1]}
	case "LEASEGRANT":
		// LEASEGRANT key owner epoch deadline-unix-ms: the replication and
		// snapshot form — an unconditional overwrite with an absolute
		// deadline (no TTL drift on replay; same-clock assumption above).
		if !arity(w, args, 5) {
			return
		}
		epoch, err1 := strconv.ParseInt(args[3], 10, 64)
		ms, err2 := strconv.ParseInt(args[4], 10, 64)
		if err1 != nil || err2 != nil {
			writeError(w, "bad leasegrant arguments")
			return
		}
		lt.mu.Lock()
		l := lt.m[args[1]]
		if l == nil {
			l = &leaseEntry{}
			lt.m[args[1]] = l
		}
		l.owner = args[2]
		l.epoch = epoch
		l.expireAt = time.UnixMilli(ms)
		if ms == 0 {
			l.expireAt = time.Time{}
		}
		lt.mu.Unlock()
		writeSimple(w, "OK")
	case "LEASEDEL":
		// LEASEDEL key: replication form of a release (epoch survives).
		if !arity(w, args, 2) {
			return
		}
		lt.mu.Lock()
		if l := lt.m[args[1]]; l != nil {
			l.owner = ""
			l.expireAt = time.Time{}
		}
		lt.mu.Unlock()
		writeSimple(w, "OK")
	}
	return nil
}

// checkFence admits a FENCE-prefixed write iff epoch is still the newest
// grant for key; the returned string is a raw RESP error message ("" admits).
func (lt *leaseTable) checkFence(key string, epoch int64) string {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l := lt.m[key]
	if l == nil {
		return "FENCED no lease " + key
	}
	if l.epoch != epoch {
		return "FENCED epoch " + strconv.FormatInt(epoch, 10) +
			" superseded by " + strconv.FormatInt(l.epoch, 10)
	}
	return ""
}

// snapshot returns the table as LEASEGRANT commands (released leases are
// included with an empty owner, carrying the epoch floor forward).
func (lt *leaseTable) snapshot() [][]string {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	out := make([][]string, 0, len(lt.m))
	for key, l := range lt.m {
		var ms int64
		if !l.expireAt.IsZero() {
			ms = l.expireAt.UnixMilli()
		}
		out = append(out, []string{"LEASEGRANT", key, l.owner,
			strconv.FormatInt(l.epoch, 10), strconv.FormatInt(ms, 10)})
	}
	return out
}

func (lt *leaseTable) clear() {
	lt.mu.Lock()
	lt.m = make(map[string]*leaseEntry)
	lt.mu.Unlock()
}
