package kvstore

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadCommand: arbitrary bytes must never panic the RESP parser; they
// either yield a command or an error.
func FuzzReadCommand(f *testing.F) {
	f.Add("PING\r\n")
	f.Add("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
	f.Add("*1\r\n$-1\r\n")
	f.Add("*999999\r\n")
	f.Add("$5\r\nhello\r\n")
	f.Add("\r\n")
	f.Add("*2\r\n$3\r\nGET\r\n$100\r\nshort\r\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := bufio.NewReader(strings.NewReader(input))
		for i := 0; i < 4; i++ {
			args, err := readCommand(r)
			if err != nil {
				return
			}
			if args == nil {
				t.Fatal("nil args without error")
			}
		}
	})
}
