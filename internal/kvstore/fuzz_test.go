package kvstore

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzReadCommand: arbitrary bytes must never panic the RESP parser; they
// either yield a command or an error.
func FuzzReadCommand(f *testing.F) {
	f.Add("PING\r\n")
	f.Add("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
	f.Add("*1\r\n$-1\r\n")
	f.Add("*999999\r\n")
	f.Add("$5\r\nhello\r\n")
	f.Add("\r\n")
	f.Add("*2\r\n$3\r\nGET\r\n$100\r\nshort\r\n")
	// Truncated frames: headers promising bytes that never arrive.
	f.Add("*2\r\n$3\r\nGE")
	f.Add("*3\r\n$4\r\nHSET\r\n$2\r\nab")
	f.Add("$10\r\nabc")
	// Oversized frames: headers beyond the sanity caps must be rejected,
	// not allocated.
	f.Add("*1048577\r\n")
	f.Add("*2\r\n$3\r\nSET\r\n$999999999\r\n")
	f.Add("$8388609\r\n")
	f.Add("*-100\r\n")
	f.Add("$-100\r\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := bufio.NewReader(strings.NewReader(input))
		for i := 0; i < 4; i++ {
			args, err := readCommand(r)
			if err != nil {
				return
			}
			if args == nil {
				t.Fatal("nil args without error")
			}
		}
	})
}

// FuzzReadReply: the client-side RESP parser must never panic or allocate
// unboundedly on hostile or truncated reply streams.
func FuzzReadReply(f *testing.F) {
	f.Add("+OK\r\n")
	f.Add("-ERR boom\r\n")
	f.Add(":42\r\n")
	f.Add("$-1\r\n")
	f.Add("$5\r\nhello\r\n")
	f.Add("*2\r\n+a\r\n:1\r\n")
	f.Add("*-1\r\n")
	// Truncated and oversized frames.
	f.Add("$10\r\nabc")
	f.Add("*3\r\n+a\r\n")
	f.Add("$999999999\r\n")
	f.Add("*999999999\r\n")
	f.Add(":not-a-number\r\n")
	f.Add("?what\r\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		c := &Client{r: bufio.NewReader(strings.NewReader(input))}
		for i := 0; i < 4; i++ {
			if _, err := c.readReply(); err != nil {
				return
			}
		}
	})
}
