package kvstore

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
)

// FuzzReadCommand: arbitrary bytes must never panic the RESP parser; they
// either yield a command or an error.
func FuzzReadCommand(f *testing.F) {
	f.Add("PING\r\n")
	f.Add("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
	f.Add("*1\r\n$-1\r\n")
	f.Add("*999999\r\n")
	f.Add("$5\r\nhello\r\n")
	f.Add("\r\n")
	f.Add("*2\r\n$3\r\nGET\r\n$100\r\nshort\r\n")
	// Truncated frames: headers promising bytes that never arrive.
	f.Add("*2\r\n$3\r\nGE")
	f.Add("*3\r\n$4\r\nHSET\r\n$2\r\nab")
	f.Add("$10\r\nabc")
	// Oversized frames: headers beyond the sanity caps must be rejected,
	// not allocated.
	f.Add("*1048577\r\n")
	f.Add("*2\r\n$3\r\nSET\r\n$999999999\r\n")
	f.Add("$8388609\r\n")
	f.Add("*-100\r\n")
	f.Add("$-100\r\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := bufio.NewReader(strings.NewReader(input))
		for i := 0; i < 4; i++ {
			args, err := readCommand(r)
			if err != nil {
				return
			}
			if args == nil {
				t.Fatal("nil args without error")
			}
		}
	})
}

// FuzzReadReply: the client-side RESP parser must never panic or allocate
// unboundedly on hostile or truncated reply streams.
func FuzzReadReply(f *testing.F) {
	f.Add("+OK\r\n")
	f.Add("-ERR boom\r\n")
	f.Add(":42\r\n")
	f.Add("$-1\r\n")
	f.Add("$5\r\nhello\r\n")
	f.Add("*2\r\n+a\r\n:1\r\n")
	f.Add("*-1\r\n")
	// Truncated and oversized frames.
	f.Add("$10\r\nabc")
	f.Add("*3\r\n+a\r\n")
	f.Add("$999999999\r\n")
	f.Add("*999999999\r\n")
	f.Add(":not-a-number\r\n")
	f.Add("?what\r\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		c := &Client{r: bufio.NewReader(strings.NewReader(input))}
		for i := 0; i < 4; i++ {
			if _, err := c.readReply(); err != nil {
				return
			}
		}
	})
}

// FuzzReplyRoundTrip closes the protocol loop: whatever commands the fuzzer
// invents (one per line, space-separated, the inline command form), the
// server's reply stream must parse cleanly through the client's readReply —
// one reply per command, no leftover bytes, and no transport-level error.
// Server-reported errors (-ERR ...) and nil replies are valid outcomes; a
// parser error or a desynchronized stream is a bug in whichever side framed
// it.
func FuzzReplyRoundTrip(f *testing.F) {
	// Seed with the server's full command corpus, exercising every reply
	// shape it can emit (simple, integer, bulk, nil, array, error).
	for _, cmds := range [][]string{
		{"PING"},
		{"SET k v", "GET k", "DEL k", "GET k"},
		{"EXISTS k", "SET k v", "EXISTS k"},
		{"INCR n", "INCRBY n 41", "INCR n"},
		{"HSET h f v", "HGET h f", "HGETALL h", "HLEN h"},
		{"HSET h a 1", "HSET h b 2", "KEYS *", "DBSIZE"},
		{"SET k v", "EXPIRE k 100", "TTL k", "PERSIST k", "TTL k"},
		{"FLUSHALL", "DBSIZE"},
		{"GET"},               // arity error
		{"NOSUCHCOMMAND x"},   // unknown command error
		{"SET k v", "INCR k"}, // type error
		{"HGET h missing", "GET missing"},
	} {
		f.Add(strings.Join(cmds, "\n"))
	}
	f.Fuzz(func(t *testing.T, input string) {
		var cmds [][]string
		for _, line := range strings.Split(input, "\n") {
			args := strings.Fields(line)
			if len(args) == 0 {
				continue
			}
			// SHUTDOWN-style meta commands do not exist; every parsed
			// line goes straight to execute, exactly as handle() would
			// after readCommand.
			cmds = append(cmds, args)
		}
		if len(cmds) == 0 {
			return
		}
		srv := NewServer()
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		for _, args := range cmds {
			srv.execute(args, w)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		c := &Client{r: bufio.NewReader(bytes.NewReader(buf.Bytes()))}
		for i, args := range cmds {
			_, err := c.readReply()
			if err != nil && !errors.Is(err, ErrNil) && !IsServerError(err) {
				t.Fatalf("reply %d to %q: transport error %v\nstream: %q", i, args, err, buf.String())
			}
		}
		if n := c.r.Buffered(); n != 0 {
			rest, _ := c.r.Peek(n)
			t.Fatalf("%d leftover bytes after %d replies: %q", n, len(cmds), rest)
		}
	})
}

// FuzzPipelinedTracedFrames drives the real connection handler with a
// pipelined batch of properly-framed RESP commands — optionally each carrying
// the TRACEID two-argument prefix — written in one burst, the way Client
// pipelining does. Whatever verbs the fuzzer invents, the handler must answer
// exactly one reply per frame, keep the stream in sync (no leftover bytes),
// and, when traced, attribute every command to the trace that issued it.
func FuzzPipelinedTracedFrames(f *testing.F) {
	f.Add("SET k v\nGET k\nDEL k", true)
	f.Add("HSET h f v\nHGET h f\nHGETALL h", false)
	f.Add("SETLEASE leader ctrl-A 1000\nGETLEASE leader\nDELLEASE leader ctrl-A", true)
	f.Add("FENCE leader 1 SET k v\nGET k", true)
	f.Add("INCR n\nINCRBY n nope\nPING", false)
	f.Add("TRACEID deadbeef GET k", true) // a second TRACEID pair inside the frame
	f.Add("GET\nNOSUCH x\nFLUSHALL", true)
	f.Fuzz(func(t *testing.T, input string, traced bool) {
		var cmds [][]string
		for _, line := range strings.Split(input, "\n") {
			args := strings.Fields(line)
			if len(args) == 0 {
				continue
			}
			// REPLSYNC hijacks the connection into a replication stream and
			// never returns to command dispatch; everything else must answer.
			// The handler strips one TRACEID pair before that check, so a
			// fuzzer-invented "TRACEID x REPLSYNC ..." hijacks too.
			verb := args
			if len(verb) >= 3 && strings.EqualFold(verb[0], "TRACEID") {
				verb = verb[2:]
			}
			if strings.EqualFold(verb[0], "REPLSYNC") {
				continue
			}
			cmds = append(cmds, args)
			if len(cmds) == 64 {
				break
			}
		}
		if len(cmds) == 0 {
			return
		}
		srv := NewServer()
		const tid = "f00dfeed00000000"
		clientEnd, serverEnd := net.Pipe()
		defer clientEnd.Close()
		done := make(chan struct{})
		go func() { srv.handle(serverEnd); close(done) }()
		go func() {
			w := bufio.NewWriter(clientEnd)
			for _, args := range cmds {
				frame := args
				if traced {
					frame = append([]string{"TRACEID", tid}, args...)
				}
				if err := WriteWireCommand(w, frame); err != nil {
					return
				}
			}
			_ = w.Flush()
		}()
		c := &Client{r: bufio.NewReader(clientEnd)}
		for i, args := range cmds {
			_, err := c.readReply()
			if err != nil && !errors.Is(err, ErrNil) && !IsServerError(err) {
				t.Fatalf("reply %d to %q: transport error %v", i, args, err)
			}
		}
		_ = clientEnd.Close()
		<-done
		if traced {
			n := 0
			for _, rec := range srv.TraceRecords() {
				if rec.Trace == tid {
					n++
				}
			}
			if want := min(len(cmds), traceRingCapacity); n != want {
				t.Fatalf("trace records for %s = %d, want %d", tid, n, want)
			}
		}
	})
}
