package kvstore

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"
)

// startServer returns a serving store and its dial address.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSetGet(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	if err := c.Set("k", "v"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || v != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestGetMissing(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	if _, err := c.Get("nope"); !errors.Is(err, ErrNil) {
		t.Fatalf("err = %v, want ErrNil", err)
	}
}

func TestIncr(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	for want := int64(1); want <= 3; want++ {
		n, err := c.Incr("counter")
		if err != nil || n != want {
			t.Fatalf("Incr = %d, %v; want %d", n, err, want)
		}
	}
	r, err := c.Do("INCRBY", "counter", "7")
	if err != nil || r.(int64) != 10 {
		t.Fatalf("INCRBY = %v, %v", r, err)
	}
	// INCR on a non-integer errors but keeps the connection usable.
	c.Set("s", "abc")
	if _, err := c.Incr("s"); err == nil {
		t.Fatal("INCR on string should error")
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNil) {
		t.Fatalf("connection unusable after command error: %v", err)
	}
}

func TestHashOps(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	if err := c.HSet("call:1", "config", "audio|US:2"); err != nil {
		t.Fatal(err)
	}
	v, err := c.HGet("call:1", "config")
	if err != nil || v != "audio|US:2" {
		t.Fatalf("HGet = %q, %v", v, err)
	}
	if _, err := c.HGet("call:1", "missing"); !errors.Is(err, ErrNil) {
		t.Fatalf("missing field err = %v", err)
	}
	r, err := c.Do("HLEN", "call:1")
	if err != nil || r.(int64) != 1 {
		t.Fatalf("HLEN = %v, %v", r, err)
	}
}

func TestDelExistsDbsize(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	c.Set("a", "1")
	c.Set("b", "2")
	if r, _ := c.Do("DBSIZE"); r.(int64) != 2 {
		t.Fatalf("DBSIZE = %v", r)
	}
	if r, _ := c.Do("EXISTS", "a"); r.(int64) != 1 {
		t.Fatalf("EXISTS = %v", r)
	}
	if r, _ := c.Do("DEL", "a", "b", "c"); r.(int64) != 2 {
		t.Fatalf("DEL = %v", r)
	}
	if r, _ := c.Do("EXISTS", "a"); r.(int64) != 0 {
		t.Fatalf("EXISTS after DEL = %v", r)
	}
	if r, _ := c.Do("FLUSHALL"); r.(string) != "OK" {
		t.Fatalf("FLUSHALL = %v", r)
	}
	if r, _ := c.Do("DBSIZE"); r.(int64) != 0 {
		t.Fatalf("DBSIZE after FLUSHALL = %v", r)
	}
}

func TestPing(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	r, err := c.Do("PING")
	if err != nil || r.(string) != "PONG" {
		t.Fatalf("PING = %v, %v", r, err)
	}
	if c.LastRTT() <= 0 {
		t.Error("LastRTT not recorded")
	}
}

func TestUnknownCommandAndArity(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	if _, err := c.Do("SPONGE"); err == nil {
		t.Error("unknown command should error")
	}
	if _, err := c.Do("SET", "only-key"); err == nil {
		t.Error("bad arity should error")
	}
	// Connection survives server-side errors.
	if err := c.Set("k", "v"); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestPipeline(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	cmds := [][]string{
		{"SET", "x", "1"},
		{"INCR", "x"},
		{"GET", "x"},
		{"GET", "missing"},
	}
	replies, errs, err := c.Pipeline(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if replies[0].(string) != "OK" || replies[1].(int64) != 2 || replies[2].(string) != "2" {
		t.Fatalf("replies = %v", replies)
	}
	if !errors.Is(errs[3], ErrNil) {
		t.Fatalf("errs[3] = %v", errs[3])
	}
}

func TestInlineProtocol(t *testing.T) {
	// Telnet-style inline commands are accepted too.
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "SET inline works\r\nGET inline\r\n")
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	if got != "+OK\r\n$5\r\nworks\r\n" {
		t.Fatalf("raw reply = %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t)
	const workers = 8
	const opsEach = 200
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for j := 0; j < opsEach; j++ {
				if _, err := c.Incr("shared"); err != nil {
					errCh <- err
					return
				}
				if err := c.Set("w"+strconv.Itoa(id), strconv.Itoa(j)); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	c := dialT(t, addr)
	n, err := c.Incr("shared")
	if err != nil {
		t.Fatal(err)
	}
	if n != workers*opsEach+1 {
		t.Errorf("shared counter = %d, want %d", n, workers*opsEach+1)
	}
	if s.OpsServed() < workers*opsEach*2 {
		t.Errorf("ops served = %d", s.OpsServed())
	}
}

func TestHGetAllAndKeys(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	c.HSet("call:1", "dc", "8")
	c.HSet("call:1", "config", "audio|US:2")
	c.Set("plain", "x")

	m, err := c.HGetAll("call:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["dc"] != "8" || m["config"] != "audio|US:2" {
		t.Fatalf("HGetAll = %v", m)
	}
	// Absent key yields an empty map.
	if m, err := c.HGetAll("nope"); err != nil || len(m) != 0 {
		t.Fatalf("HGetAll missing = %v, %v", m, err)
	}
	keys, err := c.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "call:1" || keys[1] != "plain" {
		t.Fatalf("Keys = %v", keys)
	}
	// Trailing-star prefix patterns narrow the scan.
	pref, err := c.KeysPrefixContext(context.Background(), "call:")
	if err != nil {
		t.Fatal(err)
	}
	if len(pref) != 1 || pref[0] != "call:1" {
		t.Fatalf("KeysPrefix = %v", pref)
	}
	// Pattern matching beyond a trailing * is refused.
	if _, err := c.Do("KEYS", "call:?*"); err == nil {
		t.Error("KEYS with non-prefix pattern should error")
	}
	if _, err := c.Do("KEYS", "c*ll:*"); err == nil {
		t.Error("KEYS with inner star should error")
	}
}

func TestExpiry(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	c.Set("k", "v")
	// EXPIRE on a missing key.
	if r, _ := c.Do("EXPIRE", "nope", "10"); r.(int64) != 0 {
		t.Errorf("EXPIRE missing = %v", r)
	}
	// TTL states: missing, no expiry, with expiry.
	if r, _ := c.Do("TTL", "nope"); r.(int64) != -2 {
		t.Errorf("TTL missing = %v", r)
	}
	if r, _ := c.Do("TTL", "k"); r.(int64) != -1 {
		t.Errorf("TTL persistent = %v", r)
	}
	if r, _ := c.Do("EXPIRE", "k", "100"); r.(int64) != 1 {
		t.Errorf("EXPIRE = %v", r)
	}
	if r, _ := c.Do("TTL", "k"); r.(int64) < 95 || r.(int64) > 100 {
		t.Errorf("TTL = %v, want ~100", r)
	}
	// PERSIST clears the deadline.
	if r, _ := c.Do("PERSIST", "k"); r.(int64) != 1 {
		t.Errorf("PERSIST = %v", r)
	}
	if r, _ := c.Do("TTL", "k"); r.(int64) != -1 {
		t.Errorf("TTL after PERSIST = %v", r)
	}
	if r, _ := c.Do("PERSIST", "k"); r.(int64) != 0 {
		t.Errorf("second PERSIST = %v", r)
	}
	// Non-positive expiry deletes immediately.
	if r, _ := c.Do("EXPIRE", "k", "0"); r.(int64) != 1 {
		t.Errorf("EXPIRE 0 = %v", r)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNil) {
		t.Errorf("key survived EXPIRE 0: %v", err)
	}
	if _, err := c.Do("EXPIRE", "k", "banana"); err == nil {
		t.Error("non-integer expiry should error")
	}
}

func TestExpiryLazyEviction(t *testing.T) {
	srv, addr := startServer(t)
	c := dialT(t, addr)
	c.Set("gone", "soon")
	// Set a deadline in the past by writing directly (avoids sleeping).
	sh := srv.shardOf("gone")
	sh.mu.Lock()
	sh.m["gone"].expireAt = time.Now().Add(-time.Second)
	sh.mu.Unlock()
	if _, err := c.Get("gone"); !errors.Is(err, ErrNil) {
		t.Errorf("expired key still readable: %v", err)
	}
	if r, _ := c.Do("EXISTS", "gone"); r.(int64) != 0 {
		t.Errorf("EXISTS expired = %v", r)
	}
	if r, _ := c.Do("DBSIZE"); r.(int64) != 0 {
		t.Errorf("DBSIZE counts expired key: %v", r)
	}
	// A write-path touch collects it; INCR recreates from 0.
	if n, err := c.Incr("gone"); err != nil || n != 1 {
		t.Errorf("INCR over expired = %d, %v", n, err)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	s := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	if s.Addr() == nil {
		t.Error("Addr nil while serving")
	}
	s.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func BenchmarkSetGet(b *testing.B) {
	s := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set("bench", "value"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline100(b *testing.B) {
	s := NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()
	c, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	cmds := make([][]string, 100)
	for i := range cmds {
		cmds[i] = []string{"INCR", "pipebench"}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Pipeline(cmds); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHCopy: HCOPY snapshots the source hash into the destination (the
// reshard bulk-copy primitive) — replacing any prior destination state,
// reporting 0 for a missing source without touching the destination, and
// surviving src==dst (the snapshot-then-write order must not self-deadlock).
func TestHCopy(t *testing.T) {
	_, addr := startServer(t)
	c := dialT(t, addr)
	ctx := context.Background()
	for _, kv := range [][3]string{
		{"src", "dc", "8"}, {"src", "state", "live"},
		{"dst", "dc", "1"}, {"dst", "old", "x"},
	} {
		if err := c.HSet(kv[0], kv[1], kv[2]); err != nil {
			t.Fatal(err)
		}
	}
	n, err := c.HCopyContext(ctx, "src", "dst")
	if err != nil || n != 2 {
		t.Fatalf("HCOPY = %d, %v", n, err)
	}
	m, err := c.HGetAll("dst")
	if err != nil {
		t.Fatal(err)
	}
	// The copy replaces, not merges: stale fields must not survive.
	if len(m) != 2 || m["dc"] != "8" || m["state"] != "live" {
		t.Fatalf("dst after HCOPY = %v", m)
	}
	// Missing source: 0 copied, destination untouched.
	if n, err := c.HCopyContext(ctx, "nope", "dst"); err != nil || n != 0 {
		t.Fatalf("HCOPY missing src = %d, %v", n, err)
	}
	if m, _ := c.HGetAll("dst"); len(m) != 2 {
		t.Fatalf("missing-source HCOPY touched dst: %v", m)
	}
	// src == dst must not deadlock on the store's internal shard lock.
	if n, err := c.HCopyContext(ctx, "src", "src"); err != nil || n != 2 {
		t.Fatalf("self HCOPY = %d, %v", n, err)
	}
	// Copying over a plain string key replaces it with the hash.
	c.Set("plain", "v")
	if _, err := c.HCopyContext(ctx, "src", "plain"); err != nil {
		t.Fatal(err)
	}
	if m, _ := c.HGetAll("plain"); m["dc"] != "8" {
		t.Fatalf("HCOPY over string key = %v", m)
	}
}
