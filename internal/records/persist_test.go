package records

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/trace"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.Days = 2
	cfg.CallsPerDay = 800
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := geo.DefaultWorld()
	db := New(cfg.Start, w)
	g.EachCall(func(r *model.CallRecord) bool { db.Add(r); return true })

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, w)
	if err != nil {
		t.Fatal(err)
	}

	if back.TotalCalls() != db.TotalCalls() || back.NumSlots() != db.NumSlots() {
		t.Fatalf("totals: %d/%d vs %d/%d", back.TotalCalls(), back.NumSlots(), db.TotalCalls(), db.NumSlots())
	}
	if back.NumConfigs() != db.NumConfigs() {
		t.Fatalf("configs: %d vs %d", back.NumConfigs(), db.NumConfigs())
	}
	// Top configs and series identical.
	a, b := db.TopConfigs(10), back.TopConfigs(10)
	for i := range a {
		if a[i].Config.Key() != b[i].Config.Key() || a[i].Total != b[i].Total {
			t.Fatalf("top config %d differs: %v vs %v", i, a[i], b[i])
		}
		for s := range a[i].Counts {
			if a[i].Counts[s] != b[i].Counts[s] {
				t.Fatalf("series %d slot %d differs", i, s)
			}
		}
	}
	// Latency estimates identical.
	estA, estB := db.Estimator(10), back.Estimator(10)
	for _, dc := range w.DCs() {
		for _, c := range w.Countries() {
			la, lb := estA.Latency(dc.ID, c.Code), estB.Latency(dc.ID, c.Code)
			if math.Abs(la-lb) > 1e-12 {
				t.Fatalf("latency %s->%s: %g vs %g", dc.Name, c.Code, la, lb)
			}
		}
	}
	// Join CDF and demand envelope identical.
	ca, cb := db.JoinCDF(), back.JoinCDF()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("join CDF differs")
		}
	}
	da, dbx := db.PeakEnvelope(10), back.PeakEnvelope(10)
	if math.Abs(da.TotalCalls()-dbx.TotalCalls()) > 1e-9 {
		t.Fatalf("envelope totals differ: %g vs %g", da.TotalCalls(), dbx.TotalCalls())
	}
	// Series records survive (for the predictor).
	if len(back.SeriesRecords()) != len(db.SeriesRecords()) {
		t.Fatal("series records lost")
	}
	// Fig 3 series survive.
	fa, fb := db.ComputeDemandByCountry("JP"), back.ComputeDemandByCountry("JP")
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("compute demand series differs")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	w := geo.DefaultWorld()
	if _, err := Load(strings.NewReader("not gob"), w); err == nil {
		t.Error("garbage input should error")
	}
	// Wrong version.
	var buf bytes.Buffer
	db := New(trace.DefaultConfig().Start, w)
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding a bumped snapshot: simplest is a
	// truncated stream.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc), w); err == nil {
		t.Error("truncated snapshot should error")
	}
}
