package records

import (
	"fmt"
	"io"
	"time"

	"encoding/gob"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// Snapshot formats: ingesting weeks of trace takes far longer than loading
// the aggregates back, so a DB can be saved after ingestion and reloaded by
// later runs (the world is not serialized — supply the same one on load).

// dbSnapshot is the gob-encoded shape of a DB.
type dbSnapshot struct {
	Version  int
	Origin   time.Time
	NumSlots int

	Configs []configSnapshot
	Latency []latencySnapshot

	ComputeByCountry map[string][]float64
	JoinHist         [joinHistBuckets]int64
	TotalLegs        int64
	TotalCalls       int64

	Series map[uint64][]*model.CallRecord
}

type configSnapshot struct {
	Key    string
	Counts []float64
	Total  float64
}

type latencySnapshot struct {
	DC      int
	Country string
	Samples []float64
	Seen    int64
}

const snapshotVersion = 1

// Save writes the database's aggregates to w.
func (db *DB) Save(w io.Writer) error {
	snap := dbSnapshot{
		Version:          snapshotVersion,
		Origin:           db.origin,
		NumSlots:         db.numSlots,
		ComputeByCountry: make(map[string][]float64, len(db.computeByCountry)),
		JoinHist:         db.joinHist,
		TotalLegs:        db.totalLegs,
		TotalCalls:       db.totalCalls,
		Series:           db.series,
	}
	for key, cs := range db.byConfig {
		snap.Configs = append(snap.Configs, configSnapshot{
			Key:    key,
			Counts: cs.counts,
			Total:  cs.total,
		})
	}
	for k, r := range db.latency {
		snap.Latency = append(snap.Latency, latencySnapshot{
			DC:      k.dc,
			Country: string(k.country),
			Samples: r.samples,
			Seen:    r.seen,
		})
	}
	for c, series := range db.computeByCountry {
		snap.ComputeByCountry[string(c)] = series
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("records: saving snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and reconstructs the database over
// the given world (which must match the one the data was built with).
func Load(r io.Reader, world *geo.World) (*DB, error) {
	var snap dbSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("records: loading snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("records: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	db := New(snap.Origin, world)
	db.numSlots = snap.NumSlots
	db.joinHist = snap.JoinHist
	db.totalLegs = snap.TotalLegs
	db.totalCalls = snap.TotalCalls
	if snap.Series != nil {
		db.series = snap.Series
	}
	for _, cs := range snap.Configs {
		cfg, err := model.ParseConfigKey(cs.Key)
		if err != nil {
			return nil, fmt.Errorf("records: snapshot config %q: %w", cs.Key, err)
		}
		db.byConfig[cs.Key] = &configStats{cfg: cfg, counts: cs.Counts, total: cs.Total}
	}
	for _, ls := range snap.Latency {
		db.latency[latKey{dc: ls.DC, country: geo.CountryCode(ls.Country)}] = &reservoir{
			samples: ls.Samples,
			seen:    ls.Seen,
		}
	}
	for c, series := range snap.ComputeByCountry {
		db.computeByCountry[geo.CountryCode(c)] = series
	}
	return db, nil
}
