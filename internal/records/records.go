// Package records implements Switchboard's call records database (§5,
// building block 1): streaming ingestion of call-leg records into the
// aggregate views the rest of the controller consumes — per-config demand
// timeseries, pooled per-(DC, country) latency estimates, per-country compute
// demand (Fig 3), the participant join-time CDF (Fig 8), and config coverage
// statistics (Fig 7c).
//
// Ingestion keeps memory bounded: full records are only retained for
// recurring meeting series (the §8 predictor needs per-instance attendance);
// everything else is folded into fixed-size aggregates, so arbitrarily long
// traces stream through.
package records

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// DB is the call records database. Ingest with Add; it is not safe for
// concurrent writers.
type DB struct {
	origin time.Time
	world  *geo.World

	byConfig map[string]*configStats
	numSlots int // highest slot index seen + 1

	latency map[latKey]*reservoir

	// computeByCountry[country][slotIndex] = cores demanded by that
	// country's participants.
	computeByCountry map[geo.CountryCode][]float64

	joinHist   [joinHistBuckets]int64 // participant join offsets, 1-minute buckets
	totalLegs  int64
	totalCalls int64

	series map[uint64][]*model.CallRecord

	rng *rand.Rand
}

type configStats struct {
	cfg    model.CallConfig
	counts []float64 // per absolute slot index
	total  float64
}

type latKey struct {
	dc      int
	country geo.CountryCode
}

const (
	joinHistBuckets = 60 // minutes
	reservoirSize   = 512
)

// reservoir keeps a uniform sample of latency observations for one
// (DC, country) pair.
type reservoir struct {
	samples []float64
	seen    int64
	sorted  bool
}

func (r *reservoir) add(v float64, rng *rand.Rand) {
	r.seen++
	r.sorted = false
	if len(r.samples) < reservoirSize {
		r.samples = append(r.samples, v)
		return
	}
	if j := rng.Int63n(r.seen); j < reservoirSize {
		r.samples[j] = v
	}
}

func (r *reservoir) median() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	n := len(r.samples)
	if n%2 == 1 {
		return r.samples[n/2]
	}
	return (r.samples[n/2-1] + r.samples[n/2]) / 2
}

// New returns an empty database. origin anchors slot indices (slot 0 starts
// at origin); world is used for spread/region lookups and must match the
// trace's world.
func New(origin time.Time, world *geo.World) *DB {
	return &DB{
		origin:           origin,
		world:            world,
		byConfig:         make(map[string]*configStats),
		latency:          make(map[latKey]*reservoir),
		computeByCountry: make(map[geo.CountryCode][]float64),
		series:           make(map[uint64][]*model.CallRecord),
		rng:              rand.New(rand.NewSource(99)),
	}
}

// Add ingests one call record.
func (db *DB) Add(r *model.CallRecord) {
	slot := model.SlotIndex(db.origin, r.Start)
	if slot < 0 {
		return // before the observation window
	}
	if slot >= db.numSlots {
		db.numSlots = slot + 1
	}
	cfg := r.Config()
	key := cfg.Key()
	cs := db.byConfig[key]
	if cs == nil {
		cs = &configStats{cfg: cfg}
		db.byConfig[key] = cs
	}
	for len(cs.counts) <= slot {
		cs.counts = append(cs.counts, 0)
	}
	cs.counts[slot]++
	cs.total++
	db.totalCalls++

	cl := cfg.Media.ComputeLoad()
	for _, leg := range r.Legs {
		db.totalLegs++
		k := latKey{dc: r.DC, country: leg.Country}
		res := db.latency[k]
		if res == nil {
			res = &reservoir{}
			db.latency[k] = res
		}
		res.add(leg.LatencyMs, db.rng)

		bucket := int(leg.JoinOffset / time.Minute)
		if bucket >= joinHistBuckets {
			bucket = joinHistBuckets - 1
		}
		db.joinHist[bucket]++

		series := db.computeByCountry[leg.Country]
		for len(series) <= slot {
			series = append(series, 0)
		}
		series[slot] += cl
		db.computeByCountry[leg.Country] = series
	}

	if r.SeriesID != 0 {
		db.series[r.SeriesID] = append(db.series[r.SeriesID], r)
	}
}

// TotalCalls returns the number of ingested calls.
func (db *DB) TotalCalls() int64 { return db.totalCalls }

// NumSlots returns the number of 30-minute slots covered by ingested data.
func (db *DB) NumSlots() int { return db.numSlots }

// Origin returns the slot-0 anchor time.
func (db *DB) Origin() time.Time { return db.origin }

// NumConfigs returns the number of distinct call configs seen.
func (db *DB) NumConfigs() int { return len(db.byConfig) }

// TopConfigs returns the n most frequent call configs in descending call
// count, with their per-slot demand series (length NumSlots).
func (db *DB) TopConfigs(n int) []ConfigSeries {
	all := make([]ConfigSeries, 0, len(db.byConfig))
	for _, cs := range db.byConfig {
		counts := make([]float64, db.numSlots)
		copy(counts, cs.counts)
		all = append(all, ConfigSeries{Config: cs.cfg, Counts: counts, Total: cs.total})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Total != all[j].Total {
			return all[i].Total > all[j].Total
		}
		return all[i].Config.Key() < all[j].Config.Key()
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// ConfigSeries is a call config with its demand timeseries.
type ConfigSeries struct {
	Config model.CallConfig
	// Counts[i] is the number of calls in absolute slot i.
	Counts []float64
	// Total is the call count across the window.
	Total float64
}

// Coverage returns, for the top-fraction points given (e.g. 0.001, 0.01),
// the fraction of calls covered by that share of distinct configs — the
// paper's Fig 7c.
func (db *DB) Coverage(topFracs []float64) []float64 {
	totals := make([]float64, 0, len(db.byConfig))
	var sum float64
	for _, cs := range db.byConfig {
		totals = append(totals, cs.total)
		sum += cs.total
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(totals)))
	out := make([]float64, len(topFracs))
	for i, f := range topFracs {
		k := int(math.Ceil(f * float64(len(totals))))
		if k > len(totals) {
			k = len(totals)
		}
		var covered float64
		for _, v := range totals[:k] {
			covered += v
		}
		if sum > 0 {
			out[i] = covered / sum
		}
	}
	return out
}

// ComputeDemandByCountry returns the average per-slot-of-day compute demand
// (cores) generated by participants in the given country — Fig 3's series.
func (db *DB) ComputeDemandByCountry(country geo.CountryCode) []float64 {
	out := make([]float64, model.SlotsPerDay)
	series := db.computeByCountry[country]
	if len(series) == 0 {
		return out
	}
	days := make([]float64, model.SlotsPerDay)
	for i, v := range series {
		out[i%model.SlotsPerDay] += v
		days[i%model.SlotsPerDay]++
	}
	for i := range out {
		if days[i] > 0 {
			out[i] /= days[i]
		}
	}
	return out
}

// JoinCDF returns the cumulative fraction of participants joined by each
// minute offset — Fig 8.
func (db *DB) JoinCDF() []float64 {
	out := make([]float64, joinHistBuckets)
	var cum int64
	for i, n := range db.joinHist {
		cum += n
		if db.totalLegs > 0 {
			out[i] = float64(cum) / float64(db.totalLegs)
		}
	}
	return out
}

// SeriesRecords returns the retained recurring-meeting records grouped by
// series ID, each group in start-time order.
func (db *DB) SeriesRecords() map[uint64][]*model.CallRecord {
	for _, recs := range db.series {
		sort.Slice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	}
	return db.series
}

// LatencySamples returns how many latency observations exist for a pair.
func (db *DB) LatencySamples(dc int, country geo.CountryCode) int64 {
	if r := db.latency[latKey{dc, country}]; r != nil {
		return r.seen
	}
	return 0
}

// Estimator builds a latency estimator over the pooled observations,
// falling back to the world model for pairs with fewer than minSamples
// observations (the counterfactual pairs of §6.2: the logs only contain
// latencies for the DC that actually hosted each call).
func (db *DB) Estimator(minSamples int64) *LatencyEstimator {
	est := &LatencyEstimator{
		world:   db.world,
		medians: make(map[latKey]float64, len(db.latency)),
	}
	for k, r := range db.latency {
		if r.seen >= minSamples {
			est.medians[k] = r.median()
		}
	}
	return est
}

// LatencyEstimator answers Lat(x, u) queries: the median of observed call-leg
// latencies for the (DC, country) pair when data exists, otherwise the
// distance-model latency. It is safe for concurrent readers.
type LatencyEstimator struct {
	world   *geo.World
	medians map[latKey]float64
}

// Latency returns the estimated one-way latency in milliseconds between the
// DC and a participant in the country.
func (e *LatencyEstimator) Latency(dc int, country geo.CountryCode) float64 {
	if v, ok := e.medians[latKey{dc, country}]; ok {
		return v
	}
	return e.world.Latency(dc, country)
}

// Observed reports whether the pair's estimate comes from measured data.
func (e *LatencyEstimator) Observed(dc int, country geo.CountryCode) bool {
	_, ok := e.medians[latKey{dc, country}]
	return ok
}

// ACL returns the participant-weighted average call latency of hosting cfg
// at DC dc under this estimator (Table 2's ACL(x, c)).
func (e *LatencyEstimator) ACL(cfg model.CallConfig, dc int) float64 {
	var sum float64
	var n int
	for _, cc := range cfg.Spread {
		sum += e.Latency(dc, cc.Country) * float64(cc.Count)
		n += cc.Count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
