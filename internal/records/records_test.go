package records

import (
	"math"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/trace"
)

var origin = time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC)

func makeRecord(id uint64, start time.Time, dc int, media model.MediaType, legs ...geo.CountryCode) *model.CallRecord {
	r := &model.CallRecord{ID: id, Start: start, Duration: 30 * time.Minute, DC: dc}
	for i, c := range legs {
		r.Legs = append(r.Legs, model.LegRecord{
			Participant: uint64(100*id) + uint64(i),
			Country:     c,
			JoinOffset:  time.Duration(i) * time.Minute,
			LatencyMs:   10 + float64(i),
			Media:       media,
		})
	}
	return r
}

func TestAddAndSeries(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	db.Add(makeRecord(1, origin.Add(10*time.Minute), 0, model.Audio, "US", "US"))
	db.Add(makeRecord(2, origin.Add(20*time.Minute), 0, model.Audio, "US", "US"))
	db.Add(makeRecord(3, origin.Add(40*time.Minute), 0, model.Video, "US", "US"))
	db.Add(makeRecord(4, origin.Add(-time.Hour), 0, model.Audio, "US")) // before origin: dropped

	if db.TotalCalls() != 3 {
		t.Errorf("total calls = %d, want 3", db.TotalCalls())
	}
	if db.NumConfigs() != 2 {
		t.Errorf("configs = %d, want 2", db.NumConfigs())
	}
	top := db.TopConfigs(10)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	if top[0].Config.Key() != "audio|US:2" || top[0].Total != 2 {
		t.Errorf("top config = %v (%g)", top[0].Config.Key(), top[0].Total)
	}
	if top[0].Counts[0] != 2 || len(top[0].Counts) != db.NumSlots() {
		t.Errorf("series = %v", top[0].Counts)
	}
}

func TestCoverageMonotone(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	// 10 calls of one config, 1 call each of 9 others.
	for i := 0; i < 10; i++ {
		db.Add(makeRecord(uint64(i), origin.Add(time.Minute), 0, model.Audio, "US", "US"))
	}
	countries := []geo.CountryCode{"IN", "JP", "DE", "BR", "AU", "GB", "SG", "FR", "CA"}
	for i, c := range countries {
		db.Add(makeRecord(uint64(100+i), origin.Add(time.Minute), 0, model.Video, c))
	}
	cov := db.Coverage([]float64{0.1, 0.5, 1.0})
	if cov[0] > cov[1]+1e-12 || cov[1] > cov[2]+1e-12 {
		t.Errorf("coverage not monotone: %v", cov)
	}
	// Top 10% of 10 configs = the heavy config = 10/19 of calls.
	if math.Abs(cov[0]-10.0/19) > 1e-9 {
		t.Errorf("cov[0.1] = %g, want %g", cov[0], 10.0/19)
	}
	if math.Abs(cov[2]-1) > 1e-9 {
		t.Errorf("cov[1.0] = %g, want 1", cov[2])
	}
}

func TestLatencyEstimatorMedianAndFallback(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	rec := makeRecord(1, origin.Add(time.Minute), 0, model.Audio, "US")
	// Three observations 8, 10, 12 -> median 10.
	for i, v := range []float64{8, 10, 12} {
		r := *rec
		r.ID = uint64(i + 1)
		r.Legs = []model.LegRecord{{Participant: 1, Country: "US", LatencyMs: v}}
		db.Add(&r)
	}
	est := db.Estimator(3)
	if got := est.Latency(0, "US"); math.Abs(got-10) > 1e-9 {
		t.Errorf("median latency = %g, want 10", got)
	}
	if !est.Observed(0, "US") {
		t.Error("US pair should be observed")
	}
	// Unobserved pair falls back to the model.
	if got, want := est.Latency(0, "JP"), w.Latency(0, "JP"); got != want {
		t.Errorf("fallback latency = %g, want %g", got, want)
	}
	if est.Observed(0, "JP") {
		t.Error("JP pair should be unobserved")
	}
	// minSamples above the observation count also falls back.
	est2 := db.Estimator(10)
	if est2.Observed(0, "US") {
		t.Error("minSamples not honored")
	}
}

func TestEstimatorACL(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	est := db.Estimator(1)
	cfg := model.CallConfig{Spread: model.NewSpread(map[geo.CountryCode]int{"IN": 3, "JP": 1}), Media: model.Audio}
	var pune int
	for _, dc := range w.DCs() {
		if dc.Name == "pune" {
			pune = dc.ID
		}
	}
	want := (3*w.Latency(pune, "IN") + w.Latency(pune, "JP")) / 4
	if got := est.ACL(cfg, pune); math.Abs(got-want) > 1e-9 {
		t.Errorf("ACL = %g, want %g", got, want)
	}
	if est.ACL(model.CallConfig{}, pune) != 0 {
		t.Error("empty config ACL should be 0")
	}
}

func TestReservoirBounded(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	for i := 0; i < reservoirSize*4; i++ {
		r := makeRecord(uint64(i+1), origin.Add(time.Minute), 0, model.Audio, "US")
		r.Legs[0].LatencyMs = float64(i + 1)
		db.Add(r)
	}
	res := db.latency[latKey{0, "US"}]
	if len(res.samples) != reservoirSize {
		t.Errorf("reservoir has %d samples, want %d", len(res.samples), reservoirSize)
	}
	if res.seen != reservoirSize*4 {
		t.Errorf("seen = %d", res.seen)
	}
	// Median of 1..2048 is ~1024; the reservoir estimate should be in the
	// right neighborhood.
	med := res.median()
	if med < 700 || med > 1350 {
		t.Errorf("reservoir median %g far from 1024", med)
	}
}

func TestJoinCDF(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	db.Add(makeRecord(1, origin.Add(time.Minute), 0, model.Audio, "US", "US", "US"))
	cdf := db.JoinCDF()
	if len(cdf) != joinHistBuckets {
		t.Fatalf("cdf length %d", len(cdf))
	}
	if cdf[len(cdf)-1] != 1 {
		t.Errorf("cdf end = %g, want 1", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("cdf not monotone")
		}
	}
	// Legs joined at 0, 1, 2 minutes: all joined by bucket 2.
	if cdf[2] != 1 {
		t.Errorf("cdf[2] = %g, want 1", cdf[2])
	}
}

func TestComputeDemandByCountry(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	// Two days, same slot: averages to one call's load.
	db.Add(makeRecord(1, origin.Add(10*time.Minute), 0, model.Audio, "JP", "JP"))
	db.Add(makeRecord(2, origin.Add(24*time.Hour+10*time.Minute), 0, model.Audio, "JP", "JP"))
	d := db.ComputeDemandByCountry("JP")
	if len(d) != model.SlotsPerDay {
		t.Fatalf("len = %d", len(d))
	}
	want := 2 * model.Audio.ComputeLoad()
	if math.Abs(d[0]-want) > 1e-9 {
		t.Errorf("slot 0 demand = %g, want %g", d[0], want)
	}
	if db.ComputeDemandByCountry("ZZ")[0] != 0 {
		t.Error("unknown country should have zero demand")
	}
}

func TestSeriesRecordsSorted(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	r1 := makeRecord(1, origin.Add(48*time.Hour), 0, model.Audio, "US")
	r1.SeriesID = 7
	r2 := makeRecord(2, origin.Add(24*time.Hour), 0, model.Audio, "US")
	r2.SeriesID = 7
	db.Add(r1)
	db.Add(r2)
	recs := db.SeriesRecords()[7]
	if len(recs) != 2 || !recs[0].Start.Before(recs[1].Start) {
		t.Errorf("series records not sorted: %v", recs)
	}
}

func TestPeakEnvelope(t *testing.T) {
	w := geo.DefaultWorld()
	db := New(origin, w)
	// Config A: 3 calls in slot 0 day 1, 1 call slot 0 day 2 -> envelope 3.
	for i := 0; i < 3; i++ {
		db.Add(makeRecord(uint64(i+1), origin.Add(time.Minute), 0, model.Audio, "US", "US"))
	}
	db.Add(makeRecord(4, origin.Add(24*time.Hour+time.Minute), 0, model.Audio, "US", "US"))
	// Config B (tail): one call, excluded from top-1.
	db.Add(makeRecord(5, origin.Add(time.Minute), 0, model.Video, "JP"))

	d := db.PeakEnvelope(1)
	if len(d.Configs) != 1 || d.Configs[0].Key() != "audio|US:2" {
		t.Fatalf("configs = %v", d.Configs)
	}
	// Cushion = 5 total / 4 covered.
	if math.Abs(d.Cushion-1.25) > 1e-9 {
		t.Errorf("cushion = %g, want 1.25", d.Cushion)
	}
	if math.Abs(d.Counts[0][0]-3*1.25) > 1e-9 {
		t.Errorf("slot 0 demand = %g, want %g", d.Counts[0][0], 3*1.25)
	}
	if d.Slots() != model.SlotsPerDay {
		t.Errorf("slots = %d", d.Slots())
	}
	if d.PeakCalls() != 3*1.25 {
		t.Errorf("peak = %g", d.PeakCalls())
	}
	// The envelope takes the per-slot max across days (3, not 3+1).
	if math.Abs(d.TotalCalls()-3*1.25) > 1e-9 {
		t.Errorf("total = %g, want 3.75", d.TotalCalls())
	}
}

func TestEnvelopeFromEmptySeries(t *testing.T) {
	d := EnvelopeFromSeries(nil, 1)
	if d.TotalCalls() != 0 || d.PeakCalls() != 0 {
		t.Error("empty envelope should be zero")
	}
}

func TestIngestFullTrace(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.Days = 2
	cfg.CallsPerDay = 2000
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := New(cfg.Start, geo.DefaultWorld())
	g.EachCall(func(r *model.CallRecord) bool { db.Add(r); return true })

	if db.TotalCalls() < 2000 {
		t.Fatalf("ingested only %d calls", db.TotalCalls())
	}
	if db.NumSlots() > cfg.Days*model.SlotsPerDay {
		t.Errorf("slots = %d beyond horizon", db.NumSlots())
	}
	// The estimator should report observed medians close to the model for
	// pairs with traffic (the generator adds ~8% lognormal noise).
	w := geo.DefaultWorld()
	est := db.Estimator(30)
	usEast := w.NearestDC("US", true)
	if !est.Observed(usEast, "US") {
		t.Fatal("expected US->us-east observations")
	}
	modelLat := w.Latency(usEast, "US")
	if got := est.Latency(usEast, "US"); math.Abs(got-modelLat)/modelLat > 0.15 {
		t.Errorf("estimated %g vs model %g", got, modelLat)
	}
	// Coverage curve sanity (Fig 7c shape): top 10% of configs cover the
	// majority of calls.
	cov := db.Coverage([]float64{0.10})
	if cov[0] < 0.5 {
		t.Errorf("top-10%% coverage = %g, want >= 0.5", cov[0])
	}
	// Demand envelope covers a plausible fraction of per-day volume.
	d := db.PeakEnvelope(100)
	if d.TotalCalls() <= 0 || d.PeakCalls() <= 0 {
		t.Error("empty demand envelope from real trace")
	}
}
