package records

import (
	"switchboard/internal/model"
)

// Demand is the input to capacity provisioning: for every slot of day and
// every (top) call config, the number of calls that must be hosted
// simultaneously. The paper provisions for every 30-minute slot of a
// multi-month window; this representation compresses the window into a
// peak-day envelope (the per-slot maximum across days), which is what the
// peak-cost objective responds to (see DESIGN.md, Known deviations).
type Demand struct {
	// Configs are the call configs being provisioned for, most frequent
	// first.
	Configs []model.CallConfig
	// Counts[t][c] is the demand D(t,c) for slot-of-day t and config c,
	// already inflated by Cushion.
	Counts [][]float64
	// Cushion is the multiplicative inflation applied to cover the long
	// tail of configs not individually forecast (§5.2).
	Cushion float64
	// CoveredFrac is the fraction of all calls the selected configs
	// represent before inflation.
	CoveredFrac float64
}

// PeakEnvelope builds the provisioning demand from the top n configs in the
// database: the per-slot-of-day maximum across observed days, inflated so
// that total provisioned demand accounts for the uncovered tail.
func (db *DB) PeakEnvelope(topN int) *Demand {
	top := db.TopConfigs(topN)
	var covered float64
	for _, cs := range top {
		covered += cs.Total
	}
	cushion := 1.0
	if covered > 0 && db.totalCalls > 0 {
		cushion = float64(db.totalCalls) / covered
	}
	return EnvelopeFromSeries(top, cushion)
}

// EnvelopeFromSeries builds a peak-day demand envelope from explicit config
// series (observed or forecast), applying the given cushion. Series may have
// different lengths; missing slots count as zero.
func EnvelopeFromSeries(series []ConfigSeries, cushion float64) *Demand {
	d := &Demand{
		Configs: make([]model.CallConfig, len(series)),
		Counts:  make([][]float64, model.SlotsPerDay),
		Cushion: cushion,
	}
	for t := range d.Counts {
		d.Counts[t] = make([]float64, len(series))
	}
	var grand, covered float64
	for c, cs := range series {
		d.Configs[c] = cs.Config
		covered += cs.Total
		for i, v := range cs.Counts {
			t := i % model.SlotsPerDay
			if v > d.Counts[t][c] {
				d.Counts[t][c] = v
			}
		}
	}
	for t := range d.Counts {
		for c := range d.Counts[t] {
			d.Counts[t][c] *= cushion
			grand += d.Counts[t][c]
		}
	}
	if grand > 0 {
		d.CoveredFrac = covered / (covered * cushion)
	}
	return d
}

// TotalCalls returns the summed demand across all slots and configs.
func (d *Demand) TotalCalls() float64 {
	var sum float64
	for _, row := range d.Counts {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// PeakCalls returns the maximum per-slot total demand.
func (d *Demand) PeakCalls() float64 {
	var peak float64
	for _, row := range d.Counts {
		var s float64
		for _, v := range row {
			s += v
		}
		if s > peak {
			peak = s
		}
	}
	return peak
}

// Slots returns the number of time slots in the envelope.
func (d *Demand) Slots() int { return len(d.Counts) }
