package shard

import (
	"context"
	"testing"
	"time"

	"strconv"

	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
)

// chaosShard is the shard failover e2e. Topology: one store; node A reaches
// it through two faults.Proxy hops (one for its controllers' data path, one
// for its electors) so the test can fail A's network and later heal only the
// data path; node B dials direct. A prefers shards {0,1}, B prefers {2}.
//
// The drill: fault A (kill or partition), then assert
//   - B promotes to A's shards within the deadline,
//   - shard 2 keeps serving placements through B during the whole transition,
//   - every write acked before the fault is still in the store (audited with
//     a fresh direct client),
//   - B recovered A's in-flight call state (ending a pre-fault call works),
//   - a write A journaled while deposed is fenced on replay, not landed over
//     the successor's state.
//
// Healing only the data path keeps A's electors dark, so A provably cannot
// have re-won the shard when its stale-epoch replay goes through — the fence
// verdict is deterministic, not a race against A's next campaign.
func chaosShard(t *testing.T, partition bool) {
	storeAddr := startStore(t)
	dataProxy, err := faults.NewProxy(storeAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dataProxy.Close() })
	elecProxy, err := faults.NewProxy(storeAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = elecProxy.Close() })

	ring, err := NewRing(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewManager(Config{
		Ring:        ring,
		ID:          "node-a",
		Controllers: newShardCtrls(t, dataProxy.Addr(), 3, 1),
		ElectorStore: func(i int) (*kvstore.Client, error) {
			return kvstore.DialOptions(elecProxy.Addr(), fastOpts(101+int64(i)))
		},
		Prefer:  []int{0, 1},
		TTL:     testTTL,
		Renew:   testRenew,
		Recover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		a.Stop(ctx)
		cancel()
	})
	b := newManager(t, storeAddr, "node-b", 3, []int{2}, 50)

	a.Start()
	b.Start()
	await(t, "steady-state ownership (a: 0,1; b: 2)", 8*time.Second, func() bool {
		return a.Owns(0) && a.Owns(1) && b.Owns(2)
	})

	// confOn deals out fresh conference IDs landing on a given shard.
	next := uint64(0)
	confOn := func(sh int) uint64 {
		for {
			next++
			if ring.Lookup(next) == sh {
				return next
			}
		}
	}
	ctx := context.Background()
	now := time.Now()

	// Acked writes before the fault: three calls per shard through each
	// shard's owner. Every one of these must survive the failover.
	acked := make(map[int][]uint64)
	for sh := 0; sh < 3; sh++ {
		owner := a
		if sh == 2 {
			owner = b
		}
		for i := 0; i < 3; i++ {
			id := confOn(sh)
			if _, err := owner.Controller(sh).CallStarted(ctx, id, "JP", now); err != nil {
				t.Fatalf("pre-fault CallStarted(shard %d, conf %d): %v", sh, id, err)
			}
			acked[sh] = append(acked[sh], id)
		}
	}

	// Fault node A's network, both paths.
	if partition {
		dataProxy.Partition()
		elecProxy.Partition()
	} else {
		dataProxy.Cut()
		elecProxy.Cut()
	}

	// A, not yet aware it is deposed, accepts one more call on shard 0. The
	// store is unreachable so the write lands in the journal — the fencing
	// assertion below proves it can never reach the store under A's epoch.
	fencedCall := confOn(0)
	if _, err := a.Controller(0).CallStarted(ctx, fencedCall, "US", now); err != nil {
		t.Fatalf("CallStarted during fault should journal, got %v", err)
	}
	if a.Controller(0).JournalDepth() == 0 {
		t.Fatal("fault-time write did not journal")
	}

	// B must take over A's shards — and the untouched shard 2 must keep
	// placing calls through B at every poll on the way there.
	deadline := time.Now().Add(8 * time.Second)
	for !(b.Owns(0) && b.Owns(1)) {
		if time.Now().After(deadline) {
			t.Fatalf("node-b did not promote within deadline; owns %v", b.Owned())
		}
		id := confOn(2)
		if _, err := b.Controller(2).CallStarted(ctx, id, "DE", now); err != nil {
			t.Fatalf("surviving shard 2 refused a placement mid-failover: %v", err)
		}
		acked[2] = append(acked[2], id)
		time.Sleep(20 * time.Millisecond)
	}
	await(t, "node-a to notice it is deposed", 8*time.Second, func() bool {
		return len(a.Owned()) == 0
	})

	// Zero acked-write loss: audit every acked call with a fresh client
	// dialed straight at the store.
	audit := dialFast(t, storeAddr, 999)
	defer audit.Close()
	for sh, ids := range acked {
		for _, id := range ids {
			key := KeyPrefix(sh) + "call:" + strconv.FormatUint(id, 10)
			if dc, err := audit.HGet(key, "dc"); err != nil || dc == "" {
				t.Fatalf("acked write lost: %s dc=%q err=%v", key, dc, err)
			}
		}
	}

	// Continuity: B's recovery rebuilt A's in-flight calls, so ending a call
	// started under A succeeds on B instead of ErrUnknownCall.
	if err := b.Controller(0).CallEnded(ctx, acked[0][0]); err != nil {
		t.Fatalf("successor does not know pre-fault call: %v", err)
	}

	// Heal the data path only (electors stay dark: A cannot re-campaign).
	// A's journal replay now reaches the store carrying the deposed epoch and
	// must be fenced, leaving no trace of fencedCall.
	if partition {
		dataProxy.Heal()
	} else {
		dataProxy.Restore()
	}
	await(t, "stale-epoch journal replay to be fenced", 8*time.Second, func() bool {
		_, _ = a.Controller(0).ReplayJournal(ctx)
		return a.Controller(0).Stats().Fenced >= 1
	})
	if dc, err := audit.HGet(KeyPrefix(0)+"call:"+strconv.FormatUint(fencedCall, 10), "dc"); err == nil && dc != "" {
		t.Fatalf("fenced write landed in the store: dc=%q", dc)
	}
}

func TestShardChaosKill(t *testing.T) {
	chaosShard(t, false)
}

func TestShardChaosPartition(t *testing.T) {
	chaosShard(t, true)
}
