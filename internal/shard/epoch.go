// Ring epochs: the fleet-shared record of which consistent-hash ring is
// serving, stored in the kvstore so every node routes from the same ring
// without coordination beyond a poll. A stable fleet runs one ring at one
// epoch; a live reshard walks the record through
// prepare → copy → journal-handoff → cutover → stable, and every node's
// Manager derives its routing (dual rings, write holds, double reads) purely
// from the last record it observed. The record is only ever written by the
// reshard coordinator under the coordinator lease's fence, so a deposed
// coordinator cannot flip the fleet's ring.

package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"switchboard/internal/kvstore"
)

// Store keys for the resharding control state. They live outside every
// shard's KeyPrefix namespace (shard prefixes are "shard/<i>/"), so shard
// scans and migrations never sweep them up.
const (
	// EpochKey holds the fleet's serving EpochState (JSON).
	EpochKey = "shard/epoch"
	// ReshardStateKey holds the coordinator's checkpoint (JSON), present
	// only while a reshard is in flight.
	ReshardStateKey = "shard/reshard/state"
	// ReshardLeaseKey is the lease the migration coordinator holds; its
	// fencing epoch makes a crashed-and-resumed coordinator supersede the
	// old one's straggling writes.
	ReshardLeaseKey = "shard/reshard/leader"
	// ackPrefix prefixes the per-source-shard journal-handoff acks.
	ackPrefix = "shard/reshard/ack/"
)

// Reshard phases, in order. A fleet at PhaseStable serves one ring; every
// other phase is a step of a live split (see DESIGN.md "Resharding" for the
// state machine and the per-phase failure matrix).
const (
	PhaseStable  = "stable"
	PhasePrepare = "prepare"
	PhaseCopy    = "copy"
	// PhaseHandoff is the journal-handoff barrier: writes to moving keys are
	// held (503 + Retry-After) while every source shard's leader drains its
	// journal and acks at its lease epoch, after which the coordinator delta
	// copies the quiesced keys.
	PhaseHandoff = "journal-handoff"
	// PhaseCutover serves writes from the target ring while reads double up
	// on the previous owner's prefix for calls not yet recovered.
	PhaseCutover = "cutover"
)

// AckKey returns the key source shard s's leader acks journal handoff under.
func AckKey(shard int) string {
	return ackPrefix + strconv.Itoa(shard)
}

// EpochState is the fleet-shared serving-ring record at EpochKey. Epoch
// counts ring generations (the boot ring is epoch 1) and bumps exactly once
// per reshard, at cutover.
type EpochState struct {
	Epoch  int64  `json:"epoch"`
	Shards int    `json:"shards"`
	VNodes int    `json:"vnodes"`
	Phase  string `json:"phase"`
	// TargetShards is the ring width being migrated to; set during
	// prepare/copy/journal-handoff, zero when stable.
	TargetShards int `json:"target_shards,omitempty"`
	// PrevShards is the pre-cutover ring width double reads fall back to;
	// set only during cutover.
	PrevShards int `json:"prev_shards,omitempty"`
}

// ReshardState is the coordinator's resumable checkpoint at ReshardStateKey:
// enough for any node to pick the migration up mid-phase after a coordinator
// crash. Copy progress is checkpointed per source shard; rescanning a
// partially copied shard is idempotent (HCOPY replaces the destination).
type ReshardState struct {
	From   int    `json:"from"`
	To     int    `json:"to"`
	VNodes int    `json:"vnodes"`
	Epoch  int64  `json:"epoch"` // serving epoch when the reshard began
	Phase  string `json:"phase"`
	// NextShard is the next source shard the copy scan will visit.
	NextShard int `json:"next_shard"`
	// Copied and Total track moved keys for progress reporting; Total grows
	// as scans discover keys, so Copied/Total is a live fraction, not a
	// promise.
	Copied int `json:"copied"`
	Total  int `json:"total"`
}

// LoadEpoch reads the fleet's EpochState; ok is false when no reshard has
// ever written one (a boot-ring fleet).
func LoadEpoch(ctx context.Context, c *kvstore.Client) (es EpochState, ok bool, err error) {
	raw, err := c.GetContext(ctx, EpochKey)
	if err == kvstore.ErrNil {
		return EpochState{}, false, nil
	}
	if err != nil {
		return EpochState{}, false, err
	}
	if err := json.Unmarshal([]byte(raw), &es); err != nil {
		return EpochState{}, false, fmt.Errorf("shard: corrupt %s: %w", EpochKey, err)
	}
	if es.Shards <= 0 || es.Epoch <= 0 {
		return EpochState{}, false, fmt.Errorf("shard: invalid %s: %+v", EpochKey, es)
	}
	return es, true, nil
}

// SaveEpoch publishes es to the fleet. The caller's client must have the
// coordinator lease's fence armed: the write is how a reshard moves the whole
// fleet, so only the live coordinator may perform it.
//
//sblint:fencepath
func SaveEpoch(ctx context.Context, c *kvstore.Client, es EpochState) error {
	raw, err := json.Marshal(es)
	if err != nil {
		return err
	}
	return c.SetContext(ctx, EpochKey, string(raw))
}

// LoadReshard reads the coordinator checkpoint; ok is false when no reshard
// is in flight.
func LoadReshard(ctx context.Context, c *kvstore.Client) (st ReshardState, ok bool, err error) {
	raw, err := c.GetContext(ctx, ReshardStateKey)
	if err == kvstore.ErrNil {
		return ReshardState{}, false, nil
	}
	if err != nil {
		return ReshardState{}, false, err
	}
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		return ReshardState{}, false, fmt.Errorf("shard: corrupt %s: %w", ReshardStateKey, err)
	}
	return st, true, nil
}

// saveReshard checkpoints the coordinator state (fenced like SaveEpoch).
//
//sblint:fencepath
func saveReshard(ctx context.Context, c *kvstore.Client, st ReshardState) error {
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return c.SetContext(ctx, ReshardStateKey, string(raw))
}
