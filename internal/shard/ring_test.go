package shard

import "testing"

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
	if _, err := NewRing(-3, 8); err == nil {
		t.Fatal("NewRing(-3) succeeded")
	}
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.points) != 4*DefaultVirtualNodes {
		t.Fatalf("points = %d, want %d", len(r.points), 4*DefaultVirtualNodes)
	}
}

// TestRingDeterministic pins the coordination-free agreement property: two
// rings built from the same (shards, vnodes) pair map every conference ID
// identically, because routing correctness across a fleet depends on it.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 10000; id++ {
		if ga, gb := a.Lookup(id), b.Lookup(id); ga != gb {
			t.Fatalf("ring disagreement for conf %d: %d vs %d", id, ga, gb)
		}
	}
}

// TestRingLookupInRange covers sequential and sparse ID patterns, including
// the wrap past the highest ring point.
func TestRingLookupInRange(t *testing.T) {
	r, err := NewRing(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 50000; id++ {
		if sh := r.Lookup(id); sh < 0 || sh >= 3 {
			t.Fatalf("Lookup(%d) = %d, out of range", id, sh)
		}
	}
	for _, id := range []uint64{0, 1, 1 << 32, 1<<64 - 1, 0xdeadbeef} {
		if sh := r.Lookup(id); sh < 0 || sh >= 3 {
			t.Fatalf("Lookup(%#x) = %d, out of range", id, sh)
		}
	}
}

// TestRingBalance: with the default virtual-node count no shard should be
// starved or hot beyond a loose bound — consistent hashing with 64 vnodes
// keeps the worst shard within a few percent of fair share, and this guards
// against a regression to e.g. a broken mixer that lands everything on one
// shard.
func TestRingBalance(t *testing.T) {
	const shards, ids = 4, 100000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for id := uint64(0); id < ids; id++ {
		counts[r.Lookup(id)]++
	}
	fair := ids / shards
	for s, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("shard %d holds %d of %d ids (fair %d): distribution broken %v",
				s, n, ids, fair, counts)
		}
	}
}

func TestLeaseAndPrefixKeys(t *testing.T) {
	if got := LeaseKey(2); got != "shard/2/leader" {
		t.Fatalf("LeaseKey(2) = %q", got)
	}
	if got := KeyPrefix(7); got != "shard/7/" {
		t.Fatalf("KeyPrefix(7) = %q", got)
	}
	// Lease keys must never collide with call-state keys under the prefix:
	// RecoverCalls skips non-numeric suffixes, so "leader" must not parse.
	if LeaseKey(1) == KeyPrefix(1)+"call:1" {
		t.Fatal("lease key collides with call-state namespace")
	}
}
