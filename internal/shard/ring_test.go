package shard

import "testing"

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(0, 8); err == nil {
		t.Fatal("NewRing(0) succeeded")
	}
	if _, err := NewRing(-3, 8); err == nil {
		t.Fatal("NewRing(-3) succeeded")
	}
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.points) != 4*DefaultVirtualNodes {
		t.Fatalf("points = %d, want %d", len(r.points), 4*DefaultVirtualNodes)
	}
}

// TestRingDeterministic pins the coordination-free agreement property: two
// rings built from the same (shards, vnodes) pair map every conference ID
// identically, because routing correctness across a fleet depends on it.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5, 32)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 10000; id++ {
		if ga, gb := a.Lookup(id), b.Lookup(id); ga != gb {
			t.Fatalf("ring disagreement for conf %d: %d vs %d", id, ga, gb)
		}
	}
}

// TestRingLookupInRange covers sequential and sparse ID patterns, including
// the wrap past the highest ring point.
func TestRingLookupInRange(t *testing.T) {
	r, err := NewRing(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 50000; id++ {
		if sh := r.Lookup(id); sh < 0 || sh >= 3 {
			t.Fatalf("Lookup(%d) = %d, out of range", id, sh)
		}
	}
	for _, id := range []uint64{0, 1, 1 << 32, 1<<64 - 1, 0xdeadbeef} {
		if sh := r.Lookup(id); sh < 0 || sh >= 3 {
			t.Fatalf("Lookup(%#x) = %d, out of range", id, sh)
		}
	}
}

// TestRingBalance: with the default virtual-node count no shard should be
// starved or hot beyond a loose bound — consistent hashing with 64 vnodes
// keeps the worst shard within a few percent of fair share, and this guards
// against a regression to e.g. a broken mixer that lands everything on one
// shard.
func TestRingBalance(t *testing.T) {
	const shards, ids = 4, 100000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for id := uint64(0); id < ids; id++ {
		counts[r.Lookup(id)]++
	}
	fair := ids / shards
	for s, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("shard %d holds %d of %d ids (fair %d): distribution broken %v",
				s, n, ids, fair, counts)
		}
	}
}

func TestLeaseAndPrefixKeys(t *testing.T) {
	if got := LeaseKey(2); got != "shard/2/leader" {
		t.Fatalf("LeaseKey(2) = %q", got)
	}
	if got := KeyPrefix(7); got != "shard/7/" {
		t.Fatalf("KeyPrefix(7) = %q", got)
	}
	// Lease keys must never collide with call-state keys under the prefix:
	// RecoverCalls skips non-numeric suffixes, so "leader" must not parse.
	if LeaseKey(1) == KeyPrefix(1)+"call:1" {
		t.Fatal("lease key collides with call-state namespace")
	}
}

// TestRingEpochTransition pins the property the whole online-reshard design
// leans on: growing an N-shard ring to N+1 moves roughly 1/(N+1) of the key
// space, every moved key lands on the ADDED shard, and every unmoved key
// keeps byte-identical ownership. If a ring change could move keys between
// surviving shards, the copy/cutover protocol would need all-pairs
// migration; this test is the proof it does not.
func TestRingEpochTransition(t *testing.T) {
	const ids = 40000
	for _, vnodes := range []int{16, 64, 128} {
		for _, n := range []int{3, 4, 7} {
			oldRing, err := NewRing(n, vnodes)
			if err != nil {
				t.Fatal(err)
			}
			newRing, err := NewRing(n+1, vnodes)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for id := uint64(0); id < ids; id++ {
				was, is := oldRing.Lookup(id), newRing.Lookup(id)
				if was == is {
					continue
				}
				moved++
				if is != n {
					t.Fatalf("vnodes=%d %d->%d: id %d moved %d->%d, not onto the added shard %d",
						vnodes, n, n+1, id, was, is, n)
				}
			}
			frac := float64(moved) / ids
			ideal := 1 / float64(n+1)
			if frac < ideal/2 || frac > ideal*2 {
				t.Fatalf("vnodes=%d %d->%d: moved fraction %.4f outside [%.4f, %.4f]",
					vnodes, n, n+1, frac, ideal/2, ideal*2)
			}
		}
	}
}

// TestRingTransitionDeterministic: the moved-range diff between two epochs is
// a pure function of (shards, vnodes) — two independently built ring pairs
// compute the identical diff, so a coordinator and a watcher on different
// nodes always agree on which keys move.
func TestRingTransitionDeterministic(t *testing.T) {
	build := func() map[uint64][2]int {
		oldRing, _ := NewRing(3, 64)
		newRing, _ := NewRing(4, 64)
		diff := make(map[uint64][2]int)
		for id := uint64(0); id < 5000; id++ {
			was, is := oldRing.Lookup(id), newRing.Lookup(id)
			if was != is {
				diff[id] = [2]int{was, is}
			}
		}
		return diff
	}
	first, second := build(), build()
	if len(first) == 0 {
		t.Fatal("no keys moved in a 3->4 grow")
	}
	if len(first) != len(second) {
		t.Fatalf("diff sizes differ: %d vs %d", len(first), len(second))
	}
	for id, d := range first {
		if second[id] != d {
			t.Fatalf("id %d: diff %v vs %v across two computations", id, d, second[id])
		}
	}
}
