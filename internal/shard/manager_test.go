package shard

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
)

var world = geo.DefaultWorld()

// Chaos-grade timing: lease TTL well above the client I/O deadline, renew
// well below the TTL, everything far under the test deadlines so the suite
// stays solid under -race on a loaded CI box.
const (
	testTTL   = 400 * time.Millisecond
	testRenew = 100 * time.Millisecond
)

func startStore(t *testing.T) string {
	t.Helper()
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

func fastOpts(seed int64) kvstore.Options {
	return kvstore.Options{
		DialTimeout: 300 * time.Millisecond,
		IOTimeout:   200 * time.Millisecond,
		MaxRetries:  1,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		Seed:        seed,
	}
}

func dialFast(t *testing.T, addr string, seed int64) *kvstore.Client {
	t.Helper()
	c, err := kvstore.DialOptions(addr, fastOpts(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newShardCtrls builds one controller per shard, each with its own store
// client dialed through addr (a node's store path, possibly a chaos proxy).
func newShardCtrls(t *testing.T, addr string, shards int, seed int64) []*controller.Controller {
	t.Helper()
	ctrls := make([]*controller.Controller, shards)
	for i := range ctrls {
		store := dialFast(t, addr, seed+int64(i))
		t.Cleanup(func() { _ = store.Close() })
		c, err := controller.New(controller.Config{
			World:         world,
			Store:         store,
			KeyPrefix:     KeyPrefix(i),
			Shard:         i,
			ProbeInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctrls[i] = c
	}
	return ctrls
}

// newManager assembles a node: per-shard controllers and electors all dialing
// the store through addr.
func newManager(t *testing.T, addr, id string, shards int, prefer []int, seed int64) *Manager {
	t.Helper()
	ring, err := NewRing(shards, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		Ring:        ring,
		ID:          id,
		Controllers: newShardCtrls(t, addr, shards, seed),
		ElectorStore: func(i int) (*kvstore.Client, error) {
			return kvstore.DialOptions(addr, fastOpts(seed+100+int64(i)))
		},
		Prefer:  prefer,
		TTL:     testTTL,
		Renew:   testRenew,
		Recover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		m.Stop(ctx)
		cancel()
	})
	return m
}

func await(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestManagerValidates(t *testing.T) {
	ring, _ := NewRing(2, 8)
	dial := func(int) (*kvstore.Client, error) { return nil, fmt.Errorf("unused") }
	cases := []Config{
		{ID: "a", ElectorStore: dial},
		{Ring: ring, ElectorStore: dial},
		{Ring: ring, ID: "a"},
		{Ring: ring, ID: "a", ElectorStore: dial, Controllers: make([]*controller.Controller, 1)},
	}
	for i, cfg := range cases {
		if _, err := NewManager(cfg); err == nil {
			t.Errorf("case %d: NewManager accepted invalid config", i)
		}
	}
}

// TestSingleNodeOwnsAll: alone in the fleet, a node ends up leading every
// shard (preferred ones immediately, the rest after the takeover delay).
func TestSingleNodeOwnsAll(t *testing.T) {
	addr := startStore(t)
	m := newManager(t, addr, "node-a", 3, []int{0, 1, 2}, 1)
	m.Start()
	await(t, "node to own all shards", 5*time.Second, func() bool {
		return len(m.Owned()) == 3
	})
	for conf := uint64(0); conf < 100; conf++ {
		ctrl, sh, owned := m.ControllerFor(conf)
		if !owned || ctrl == nil || ctrl.Shard() != sh {
			t.Fatalf("ControllerFor(%d) = shard %d owned=%v ctrl.Shard()=%d", conf, sh, owned, ctrl.Shard())
		}
	}
}

// TestPreferredOwnershipSplit pins the deterministic boot: with disjoint
// preferences and a takeover delay, each node settles on exactly its
// preferred shards.
func TestPreferredOwnershipSplit(t *testing.T) {
	addr := startStore(t)
	a := newManager(t, addr, "node-a", 2, []int{0}, 1)
	b := newManager(t, addr, "node-b", 2, []int{1}, 50)
	a.Start()
	b.Start()
	await(t, "preference split", 5*time.Second, func() bool {
		return a.Owns(0) && b.Owns(1)
	})
	// Steady state holds: the non-preferred electors are racing by now (the
	// takeover delay is one TTL) and must keep losing to the live owners.
	time.Sleep(2 * testTTL)
	if !a.Owns(0) || a.Owns(1) || !b.Owns(1) || b.Owns(0) {
		t.Fatalf("ownership drifted: a=%v b=%v", a.Owned(), b.Owned())
	}
	// Each node can name the other shard's leader for routing.
	await(t, "cross hints", 2*time.Second, func() bool {
		return a.OwnerHint(1) == "node-b" && b.OwnerHint(0) == "node-a"
	})
}

// TestOrderlyHandoff: stopping a node resigns its shard leases, and a
// standing-by peer promotes within roughly a renew interval — far faster
// than waiting out the TTL.
func TestOrderlyHandoff(t *testing.T) {
	addr := startStore(t)
	a := newManager(t, addr, "node-a", 2, []int{0, 1}, 1)
	b := newManager(t, addr, "node-b", 2, nil, 50)
	a.Start()
	b.Start()
	await(t, "node-a to own both shards", 5*time.Second, func() bool {
		return len(a.Owned()) == 2
	})
	// Seed a live call on shard 0 through its owner so the successor has
	// state to recover.
	ctrl0 := a.Controller(0)
	confOnShard := func(sh int) uint64 {
		for conf := uint64(1); ; conf++ {
			if a.Ring().Lookup(conf) == sh {
				return conf
			}
		}
	}
	call := confOnShard(0)
	if _, err := ctrl0.CallStarted(context.Background(), call, "JP", time.Now()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	a.Stop(ctx)
	cancel()
	await(t, "node-b to take over after handoff", 5*time.Second, func() bool {
		return len(b.Owned()) == 2
	})
	// The successor recovered the in-flight call from the store: ending it
	// succeeds instead of ErrUnknownCall.
	if err := b.Controller(0).CallEnded(context.Background(), call); err != nil {
		t.Fatalf("recovered call not known to successor: %v", err)
	}
}
