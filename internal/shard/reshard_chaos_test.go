package shard

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
)

// reshardTestPoll keeps the drill fast: managers observe phase flips within
// 50ms, the coordinator's wait loops spin at 25ms.
const reshardTestPoll = 50 * time.Millisecond

// newReshardManager assembles a reshard-capable node: per-shard controllers
// and electors dialing through dataAddr/elecAddr (possibly chaos proxies),
// plus the epoch watcher and live-growth factory that make it a reshard
// participant.
func newReshardManager(t *testing.T, dataAddr, elecAddr, id string, shards int, prefer []int, seed int64) *Manager {
	t.Helper()
	ring, err := NewRing(shards, 16)
	if err != nil {
		t.Fatal(err)
	}
	newCtrl := func(i int) (*controller.Controller, error) {
		store, err := kvstore.DialOptions(dataAddr, fastOpts(seed+int64(i)))
		if err != nil {
			return nil, err
		}
		c, err := controller.New(controller.Config{
			World:         world,
			Store:         store,
			KeyPrefix:     KeyPrefix(i),
			Shard:         i,
			ProbeInterval: 20 * time.Millisecond,
		})
		if err != nil {
			_ = store.Close()
			return nil, err
		}
		return c, nil
	}
	ctrls := make([]*controller.Controller, shards)
	for i := range ctrls {
		if ctrls[i], err = newCtrl(i); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(Config{
		Ring:        ring,
		ID:          id,
		Controllers: ctrls,
		ElectorStore: func(i int) (*kvstore.Client, error) {
			return kvstore.DialOptions(elecAddr, fastOpts(seed+100+int64(i)))
		},
		NewController: newCtrl,
		WatchStore: func() (*kvstore.Client, error) {
			return kvstore.DialOptions(dataAddr, fastOpts(seed+200))
		},
		EpochPoll: reshardTestPoll,
		Prefer:    prefer,
		TTL:       testTTL,
		Renew:     testRenew,
		Recover:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		m.Stop(ctx)
		cancel()
	})
	return m
}

// newTestCoordinator builds a coordinator with its own direct store client
// and drill-speed pacing.
func newTestCoordinator(t *testing.T, storeAddr, id string, seed int64, hook func(phase, step string)) *Coordinator {
	t.Helper()
	store := dialFast(t, storeAddr, seed)
	t.Cleanup(func() { _ = store.Close() })
	co, err := NewCoordinator(CoordinatorConfig{
		Store:       store,
		ID:          id,
		BootShards:  3,
		BootVNodes:  16,
		TTL:         testTTL,
		Renew:       testRenew,
		Poll:        25 * time.Millisecond,
		CutoverHold: 2 * testTTL,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		StepHook:    hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// chaosReshard is the live shard-split e2e. Topology: one store; node A
// reaches it through two faults.Proxy hops (data path and electors) so the
// test can fail A's network and later heal only the data path; node B dials
// direct. A prefers {0,1}, B prefers {2}; the fleet boots on a 3-shard ring
// and is split to 4 while serving.
//
// The drill, all under -race:
//   - seed acked calls on every source shard, classified moved/unmoved
//     against the 3→4 ring diff;
//   - start coordinator C1; at the first copied key, fail node A (kill or
//     partition — A leads shards 0 and 1, both mid-migration); two keys
//     later, crash C1 (context cancel) with the copy half done;
//   - assert B takes over A's shards while the untouched keys of shard 2
//     keep placing at every poll;
//   - start coordinator C2, which must take over the lapsed reshard lease,
//     resume from C1's checkpoint, and drive the split to completion;
//   - assert the fleet converges to epoch 2 / 4 shards / stable, every acked
//     placement survives under its post-split owner (audited with a fresh
//     direct client), moved source copies are retired, and a call started
//     pre-split can be ended on its new owner;
//   - heal A's data path only (electors stay dark, so A provably has not
//     re-won anything) and assert A's stale-epoch journal replay is FENCED,
//     leaving no trace in the store.
func chaosReshard(t *testing.T, partition bool) {
	storeAddr := startStore(t)
	dataProxy, err := faults.NewProxy(storeAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dataProxy.Close() })
	elecProxy, err := faults.NewProxy(storeAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = elecProxy.Close() })

	a := newReshardManager(t, dataProxy.Addr(), elecProxy.Addr(), "node-a", 3, []int{0, 1}, 1)
	b := newReshardManager(t, storeAddr, storeAddr, "node-b", 3, []int{2}, 50)
	a.Start()
	b.Start()
	await(t, "steady-state ownership (a: 0,1; b: 2)", 8*time.Second, func() bool {
		return a.Owns(0) && a.Owns(1) && b.Owns(2)
	})

	ring3, _ := NewRing(3, 16)
	ring4, _ := NewRing(4, 16)
	// confOn deals fresh conference IDs by source shard and whether the 3→4
	// split moves them (grow-only rings move keys onto shard 3 exclusively).
	next := uint64(0)
	confOn := func(sh int, moved bool) uint64 {
		for {
			next++
			if ring3.Lookup(next) != sh {
				continue
			}
			if m := ring4.Lookup(next) != sh; m == moved {
				return next
			}
		}
	}
	ctx := context.Background()
	now := time.Now()

	// Acked calls before the split: per source shard, two that will move to
	// shard 3 and two that stay. Every one must survive the reshard.
	type call struct {
		id        uint64
		from, own int // source shard, post-split owner
	}
	var acked []call
	for sh := 0; sh < 3; sh++ {
		owner := a
		if sh == 2 {
			owner = b
		}
		for _, moved := range []bool{true, true, false, false} {
			id := confOn(sh, moved)
			own := ring4.Lookup(id)
			if _, err := owner.Controller(sh).CallStarted(ctx, id, "JP", now); err != nil {
				t.Fatalf("pre-split CallStarted(shard %d, conf %d): %v", sh, id, err)
			}
			acked = append(acked, call{id: id, from: sh, own: own})
		}
	}

	// Coordinator C1: at the first copied key, fail node A — the leader of
	// two migrating shards dies mid-copy. Two keys later, C1 itself crashes.
	ctx1, crashC1 := context.WithCancel(context.Background())
	defer crashC1()
	var killOnce, crashOnce sync.Once
	var copies atomic.Int32
	c1 := newTestCoordinator(t, storeAddr, "coord-1", 500, func(phase, step string) {
		if phase != PhaseCopy || len(step) < 7 || step[:7] != "copied:" {
			return
		}
		switch copies.Add(1) {
		case 1:
			killOnce.Do(func() {
				if partition {
					dataProxy.Partition()
					elecProxy.Partition()
				} else {
					dataProxy.Cut()
					elecProxy.Cut()
				}
			})
		case 3:
			crashOnce.Do(crashC1)
		}
	})
	c1done := make(chan error, 1)
	go func() {
		_, err := c1.Run(ctx1, 4)
		c1done <- err
	}()

	// A, cut off and not yet aware it is deposed, accepts one more call on an
	// unmoved shard-0 key. The store is unreachable, so the write journals —
	// the fencing assertion at the end proves it can never land.
	await(t, "coordinator C1 to start copying", 8*time.Second, func() bool { return copies.Load() >= 1 })
	fencedCall := confOn(0, false)
	if _, err := a.Controller(0).CallStarted(ctx, fencedCall, "US", now); err != nil {
		t.Fatalf("CallStarted during fault should journal, got %v", err)
	}
	if a.Controller(0).JournalDepth() == 0 {
		t.Fatal("fault-time write did not journal")
	}

	// B must take over A's shards — and shard 2's untouched keys must keep
	// placing through B at every poll on the way there.
	deadline := time.Now().Add(8 * time.Second)
	for !(b.Owns(0) && b.Owns(1)) {
		if time.Now().After(deadline) {
			t.Fatalf("node-b did not promote within deadline; owns %v", b.Owned())
		}
		id := confOn(2, false)
		if _, err := b.Controller(2).CallStarted(ctx, id, "DE", now); err != nil {
			t.Fatalf("untouched shard 2 refused a placement mid-reshard-failover: %v", err)
		}
		acked = append(acked, call{id: id, from: 2, own: 2})
		time.Sleep(20 * time.Millisecond)
	}
	if err := <-c1done; err == nil {
		t.Fatal("crashed coordinator C1 reported success")
	}

	// Coordinator C2 on a different node identity: takes over the lapsed
	// reshard lease (fence bump), resumes from C1's checkpoint, and finishes.
	c2 := newTestCoordinator(t, storeAddr, "coord-2", 600, nil)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	st, err := c2.Run(ctx2, 4)
	if err != nil {
		t.Fatalf("resumed coordinator failed: %v (phase %s)", err, st.Phase)
	}

	// Convergence: the surviving node serves the 4-shard ring at epoch 2,
	// stable, owning everything.
	await(t, "node-b to converge on epoch 2 / 4 shards / stable", 10*time.Second, func() bool {
		return b.RingEpoch() == 2 && b.Phase() == PhaseStable && b.Ring().Shards() == 4 &&
			b.Owns(0) && b.Owns(1) && b.Owns(2) && b.Owns(3)
	})

	// Zero acked-write loss: every acked call lives under its post-split
	// owner's prefix, audited with a fresh client dialed straight at the
	// store; moved source copies are retired.
	audit := dialFast(t, storeAddr, 999)
	defer audit.Close()
	for _, c := range acked {
		key := KeyPrefix(c.own) + "call:" + strconv.FormatUint(c.id, 10)
		if dc, err := audit.HGet(key, "dc"); err != nil || dc == "" {
			t.Fatalf("acked write lost after split: %s dc=%q err=%v", key, dc, err)
		}
		if c.own != c.from {
			old := KeyPrefix(c.from) + "call:" + strconv.FormatUint(c.id, 10)
			if h, err := audit.HGetAll(old); err == nil && len(h) > 0 {
				t.Fatalf("moved key not retired from source prefix: %s", old)
			}
		}
	}

	// Continuity across the split: a call started pre-split on shard 0 that
	// moved to shard 3 can be ended on its new owner.
	for _, c := range acked {
		if c.from == 0 && c.own == 3 {
			if err := b.Controller(3).CallEnded(ctx, c.id); err != nil {
				t.Fatalf("new owner does not know migrated call %d: %v", c.id, err)
			}
			break
		}
	}

	// Heal the data path only (electors stay dark: A cannot re-campaign). A's
	// journal replay now reaches the store carrying the deposed epoch and
	// must be fenced, leaving no trace of fencedCall.
	if partition {
		dataProxy.Heal()
	} else {
		dataProxy.Restore()
	}
	await(t, "stale-epoch journal replay to be fenced", 8*time.Second, func() bool {
		_, _ = a.Controller(0).ReplayJournal(ctx)
		return a.Controller(0).Stats().Fenced >= 1
	})
	if dc, err := audit.HGet(KeyPrefix(0)+"call:"+strconv.FormatUint(fencedCall, 10), "dc"); err == nil && dc != "" {
		t.Fatalf("fenced write landed in the store: dc=%q", dc)
	}
}

func TestReshardChaosKill(t *testing.T) {
	chaosReshard(t, false)
}

func TestReshardChaosPartition(t *testing.T) {
	chaosReshard(t, true)
}
