package shard

import (
	"strconv"

	"switchboard/internal/controller"
	"switchboard/internal/obs"
)

// Metrics is the sharded-control-plane telemetry bundle: per-shard leadership
// gauges plus fleet-level counters aggregated across every shard's elector.
// Nil-safe like the rest of the obs sinks.
type Metrics struct {
	// Leader and Epoch are per-shard: sb_shard_leader{shard="2"} is 1 while
	// this process leads shard 2, and sb_shard_epoch carries that
	// leadership's fencing epoch.
	Leader *obs.GaugeVec
	Epoch  *obs.GaugeVec
	// Owned is how many shards this process currently leads.
	Owned *obs.Gauge
	// Renewals/Losses/Takeovers aggregate the per-shard elector counters.
	Renewals  *obs.Counter
	Losses    *obs.Counter
	Takeovers *obs.Counter
	// Handoffs counts orderly shard handoffs (drain + resign) on Stop.
	Handoffs *obs.Counter
	// RingEpoch is the serving ring's epoch as last observed by this node
	// (1 for the boot ring; bumps once per completed reshard).
	RingEpoch *obs.Gauge
	// ReshardPhase is the observed reshard phase: 0 stable, 1 prepare,
	// 2 copy, 3 journal-handoff, 4 cutover.
	ReshardPhase *obs.Gauge
	// ReshardCopied / ReshardTotal mirror the coordinator's moved-key
	// progress (both 0 when no reshard is in flight).
	ReshardCopied *obs.Gauge
	ReshardTotal  *obs.Gauge
	// ReshardRetries counts coordinator step retries (capped jittered
	// backoff on store trouble).
	ReshardRetries *obs.Counter
	// HandoffHeld counts writes 503'd by the journal-handoff write pause.
	HandoffHeld *obs.Counter
	// ProxyHopsExhausted counts requests bounced between nodes until the
	// proxy hop budget ran out (typed 503 instead of serving).
	ProxyHopsExhausted *obs.Counter
}

// NewMetrics registers the shard metric families on r (nil r yields a usable
// all-nil Metrics).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Leader: r.GaugeVec("sb_shard_leader",
			"1 while this process holds the shard's leadership lease.", "shard"),
		Epoch: r.GaugeVec("sb_shard_epoch",
			"Lease epoch of the shard leadership (0 when not leading).", "shard"),
		Owned: r.Gauge("sb_shard_owned",
			"Shards this process currently leads."),
		Renewals: r.Counter("sb_shard_lease_renewals_total",
			"Successful shard-lease acquisitions and renewals, all shards."),
		Losses: r.Counter("sb_shard_lease_losses_total",
			"Shard leadership losses, all shards."),
		Takeovers: r.Counter("sb_shard_lease_takeovers_total",
			"Shard leaderships acquired over a lapsed lease, all shards."),
		Handoffs: r.Counter("sb_shard_handoffs_total",
			"Orderly shard handoffs (journal drained, lease resigned)."),
		RingEpoch: r.Gauge("sb_shard_ring_epoch",
			"Serving ring epoch as last observed (1 = boot ring)."),
		ReshardPhase: r.Gauge("sb_shard_reshard_phase",
			"Observed reshard phase: 0 stable, 1 prepare, 2 copy, 3 journal-handoff, 4 cutover."),
		ReshardCopied: r.Gauge("sb_reshard_keys_copied",
			"Moved call-state keys copied so far by the running reshard."),
		ReshardTotal: r.Gauge("sb_reshard_keys_total",
			"Moved call-state keys discovered so far by the running reshard."),
		ReshardRetries: r.Counter("sb_reshard_retries_total",
			"Reshard coordinator step retries (capped jittered backoff)."),
		HandoffHeld: r.Counter("sb_shard_handoff_held_total",
			"Writes held (503) by the journal-handoff pause on moving keys."),
		ProxyHopsExhausted: r.Counter("sb_shard_proxy_hops_exhausted_total",
			"Requests that exhausted the shard proxy hop budget."),
	}
}

// ringEpochGauge, phaseGauge, and reshardGauges dodge nil-Metrics checks at
// the watcher's update sites.
func (m *Metrics) ringEpochGauge() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.RingEpoch
}

func (m *Metrics) phaseGauge() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.ReshardPhase
}

func (m *Metrics) reshardGauges(copied, total float64) {
	if m == nil {
		return
	}
	m.ReshardCopied.Set(copied)
	m.ReshardTotal.Set(total)
}

// ownedGauge dodges nil-Metrics checks at the Manager's lead/lose sites.
func (m *Metrics) ownedGauge() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.Owned
}

// electorMetrics adapts the bundle into the per-shard view one
// controller.Elector updates: its own leader/epoch gauges, shared counters.
func (m *Metrics) electorMetrics(shard int) *controller.ElectorMetrics {
	if m == nil {
		return nil
	}
	label := strconv.Itoa(shard)
	return &controller.ElectorMetrics{
		Leader:    m.Leader.With(label),
		Epoch:     m.Epoch.With(label),
		Renewals:  m.Renewals,
		Losses:    m.Losses,
		Takeovers: m.Takeovers,
	}
}
