package shard

import (
	"strconv"

	"switchboard/internal/controller"
	"switchboard/internal/obs"
)

// Metrics is the sharded-control-plane telemetry bundle: per-shard leadership
// gauges plus fleet-level counters aggregated across every shard's elector.
// Nil-safe like the rest of the obs sinks.
type Metrics struct {
	// Leader and Epoch are per-shard: sb_shard_leader{shard="2"} is 1 while
	// this process leads shard 2, and sb_shard_epoch carries that
	// leadership's fencing epoch.
	Leader *obs.GaugeVec
	Epoch  *obs.GaugeVec
	// Owned is how many shards this process currently leads.
	Owned *obs.Gauge
	// Renewals/Losses/Takeovers aggregate the per-shard elector counters.
	Renewals  *obs.Counter
	Losses    *obs.Counter
	Takeovers *obs.Counter
	// Handoffs counts orderly shard handoffs (drain + resign) on Stop.
	Handoffs *obs.Counter
}

// NewMetrics registers the shard metric families on r (nil r yields a usable
// all-nil Metrics).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Leader: r.GaugeVec("sb_shard_leader",
			"1 while this process holds the shard's leadership lease.", "shard"),
		Epoch: r.GaugeVec("sb_shard_epoch",
			"Lease epoch of the shard leadership (0 when not leading).", "shard"),
		Owned: r.Gauge("sb_shard_owned",
			"Shards this process currently leads."),
		Renewals: r.Counter("sb_shard_lease_renewals_total",
			"Successful shard-lease acquisitions and renewals, all shards."),
		Losses: r.Counter("sb_shard_lease_losses_total",
			"Shard leadership losses, all shards."),
		Takeovers: r.Counter("sb_shard_lease_takeovers_total",
			"Shard leaderships acquired over a lapsed lease, all shards."),
		Handoffs: r.Counter("sb_shard_handoffs_total",
			"Orderly shard handoffs (journal drained, lease resigned)."),
	}
}

// ownedGauge dodges nil-Metrics checks at the Manager's lead/lose sites.
func (m *Metrics) ownedGauge() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.Owned
}

// electorMetrics adapts the bundle into the per-shard view one
// controller.Elector updates: its own leader/epoch gauges, shared counters.
func (m *Metrics) electorMetrics(shard int) *controller.ElectorMetrics {
	if m == nil {
		return nil
	}
	label := strconv.Itoa(shard)
	return &controller.ElectorMetrics{
		Leader:    m.Leader.With(label),
		Epoch:     m.Epoch.With(label),
		Renewals:  m.Renewals,
		Losses:    m.Losses,
		Takeovers: m.Takeovers,
	}
}
