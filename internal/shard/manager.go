package shard

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/kvstore"
	"switchboard/internal/obs/span"
)

// DefaultTakeoverDelay multiplies the lease TTL into the head start a shard's
// preferred owner gets before peers begin racing its lease (see
// Config.Prefer).
const DefaultTakeoverDelay = 1

// DefaultEpochPoll is how often a Manager re-reads the fleet's ring epoch
// from the store (see Config.WatchStore). The poll bounds how stale a node's
// routing can be during a reshard; phases tolerate staleness by design (a
// stale router's writes land on a leader that re-checks its own view).
const DefaultEpochPoll = 250 * time.Millisecond

// Config parameterizes a Manager.
type Config struct {
	// Ring maps conference IDs onto shards at boot. Required; every node in
	// the fleet must use an identical boot ring. A live reshard supersedes it
	// fleet-wide via the stored ring epoch (see WatchStore).
	Ring *Ring
	// ID is this process's lease owner identity. Use the node's advertised
	// HTTP address: peers surface it as the redirect/forward target for
	// shards this node leads. Required.
	ID string
	// Controllers holds one controller per boot shard, each persisting under
	// KeyPrefix(i) with Config.Shard = i. Required, len == Ring.Shards().
	Controllers []*controller.Controller
	// ElectorStore dials a dedicated store client for shard i's elector.
	// Elections must not share the data path's clients: probes have to go
	// through when a shard's write path is saturated. Required.
	ElectorStore func(shard int) (*kvstore.Client, error)
	// NewController builds the controller for a shard added by live
	// resharding, persisting under KeyPrefix(i) with Config.Shard = i. nil
	// means this node cannot grow its shard set and will keep serving its
	// boot ring even if the stored epoch names more shards.
	NewController func(shard int) (*controller.Controller, error)
	// WatchStore dials the manager's own store client for ring-epoch
	// watching. nil disables epoch watching: the node serves its boot ring
	// forever and takes no part in live resharding.
	WatchStore func() (*kvstore.Client, error)
	// EpochPoll is the ring-epoch poll interval; zero means DefaultEpochPoll.
	EpochPoll time.Duration
	// Prefer lists the shards this node is the preferred owner of: their
	// electors race immediately at Start, while every other shard's elector
	// waits TakeoverDelay first. A fleet whose preferences partition the
	// shards gets a deterministic steady-state ownership map; failover is
	// unaffected (after the delay every elector races every renew interval).
	Prefer []int
	// TTL and Renew parameterize each shard's lease (see
	// controller.ElectorConfig); zero means the controller defaults.
	TTL, Renew time.Duration
	// TakeoverDelay is how long a non-preferred elector waits before its
	// first attempt; zero means one TTL.
	TakeoverDelay time.Duration
	// Recover, when true, has a fresh shard leader rebuild in-flight call
	// state from the store (controller.RecoverCalls) after draining its
	// journal, so calls started under the previous leader keep their freeze
	// and end transitions.
	Recover bool
	Metrics *Metrics
	Logger  *slog.Logger
	Tracer  *span.Tracer
}

// routeState is the immutable routing view derived from the last observed
// ring epoch, swapped atomically so the request path reads it without locks.
// A stable fleet carries one ring; mid-reshard views add the target ring
// (pre-cutover) or the previous ring (during cutover, for double reads).
type routeState struct {
	epoch int64
	phase string
	ring  *Ring // authoritative ring for writes
	next  *Ring // target ring during prepare/copy/journal-handoff; else nil
	prev  *Ring // pre-cutover ring during cutover (double-read fallback); else nil
}

// RouteDecision is how one conference ID routes under the current ring
// epoch. At most one of Held/DoubleRead is set.
type RouteDecision struct {
	// Shard must serve the request (its leader, wherever that is).
	Shard int
	// Held means the write is paused by the journal-handoff barrier: the
	// key is moving and its old owner is draining. Callers answer 503 with a
	// short Retry-After — the write is unacked, so nothing is lost.
	Held bool
	// DoubleRead means the key moved in the cutover now serving: if Shard's
	// controller does not know the call, its state may still sit under
	// OldShard's prefix (controller.RecoverCall with that prefix).
	DoubleRead bool
	// OldShard is the pre-cutover owner; valid only when DoubleRead.
	OldShard int
}

// decide routes one conference ID under this view.
func (rs *routeState) decide(conf uint64) RouteDecision {
	d := RouteDecision{Shard: rs.ring.Lookup(conf), OldShard: -1}
	switch rs.phase {
	case PhaseHandoff:
		if rs.next != nil && rs.next.Lookup(conf) != d.Shard {
			d.Held = true
		}
	case PhaseCutover:
		if rs.prev != nil {
			if old := rs.prev.Lookup(conf); old != d.Shard {
				d.DoubleRead = true
				d.OldShard = old
			}
		}
	}
	return d
}

// tracked reports whether a write admitted under this view must be counted
// in-flight: pre-handoff phases admit writes to moving keys, and the handoff
// barrier later waits for those to drain before acking.
func (rs *routeState) tracked(conf uint64, d RouteDecision) bool {
	if rs.next == nil || (rs.phase != PhasePrepare && rs.phase != PhaseCopy) {
		return false
	}
	return rs.next.Lookup(conf) != d.Shard
}

// Manager runs one leadership race per shard and tracks which shards this
// process currently leads, growing its shard set live when the stored ring
// epoch names a wider ring. Safe for concurrent use.
type Manager struct {
	cfg Config

	route atomic.Pointer[routeState]

	// watchMu serializes every use of the watch client: the kvstore client
	// is single-connection and not safe for concurrent commands, and
	// pollEpoch runs from both the watch loop and concurrent lead() hooks.
	watchMu   sync.Mutex
	watch     *kvstore.Client // guarded by watchMu
	watchStop chan struct{}
	watchDone chan struct{}

	mu            sync.Mutex
	ctrls         []*controller.Controller // guarded by mu; grows on reshard
	electors      []*controller.Elector    // guarded by mu; grows on reshard
	stores        []*kvstore.Client        // guarded by mu; grows on reshard
	owned         map[int]bool             // guarded by mu; shards this process leads
	started       bool                     // guarded by mu
	stopped       bool                     // guarded by mu
	timers        []*time.Timer            // guarded by mu; pending delayed elector starts
	running       map[int]struct{}         // guarded by mu; electors whose Run loop is live
	movedInflight map[int]int              // guarded by mu; in-flight moved-key writes per shard
	acked         map[int]int64            // guarded by mu; last handoff ack epoch per source shard
	progress      *ReshardState            // guarded by mu; last observed coordinator checkpoint
}

// NewManager validates cfg and builds the per-shard electors (none running
// yet; call Start).
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Ring == nil {
		return nil, errConfig("Ring is required")
	}
	if cfg.ID == "" {
		return nil, errConfig("ID is required")
	}
	if len(cfg.Controllers) != cfg.Ring.Shards() {
		return nil, errConfig("need exactly one controller per shard")
	}
	if cfg.ElectorStore == nil {
		return nil, errConfig("ElectorStore is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = controller.DefaultLeaseTTL
	}
	if cfg.TakeoverDelay <= 0 {
		cfg.TakeoverDelay = DefaultTakeoverDelay * cfg.TTL
	}
	if cfg.EpochPoll <= 0 {
		cfg.EpochPoll = DefaultEpochPoll
	}
	m := &Manager{
		cfg:           cfg,
		owned:         make(map[int]bool),
		running:       make(map[int]struct{}),
		movedInflight: make(map[int]int),
		acked:         make(map[int]int64),
	}
	m.route.Store(&routeState{epoch: 1, phase: PhaseStable, ring: cfg.Ring})
	m.cfg.Metrics.ringEpochGauge().Set(1)
	for i := 0; i < cfg.Ring.Shards(); i++ {
		if err := m.addShardLocked(i, cfg.Controllers[i]); err != nil {
			for _, s := range m.stores {
				_ = s.Close()
			}
			return nil, err
		}
	}
	return m, nil
}

// addShardLocked registers shard i's controller, elector store, and elector.
// Called with mu held except from NewManager (no concurrency yet).
//
//sblint:holds mu
func (m *Manager) addShardLocked(i int, ctrl *controller.Controller) error {
	store, err := m.cfg.ElectorStore(i)
	if err != nil {
		return err
	}
	shard := i
	ctrl.SetRecoverFilter(func(id uint64) bool {
		return m.route.Load().ring.Lookup(id) == shard
	})
	m.ctrls = append(m.ctrls, ctrl)
	m.stores = append(m.stores, store)
	m.electors = append(m.electors, controller.NewElector(controller.ElectorConfig{
		Store:   store,
		Key:     LeaseKey(shard),
		ID:      m.cfg.ID,
		TTL:     m.cfg.TTL,
		Renew:   m.cfg.Renew,
		OnLead:  func(epoch int64) { m.lead(shard, epoch) },
		OnLose:  func() { m.lose(shard) },
		Metrics: m.cfg.Metrics.electorMetrics(shard),
		Logger:  m.cfg.Logger,
		Tracer:  m.cfg.Tracer,
	}))
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "shard: " + string(e) }

// Start launches the leadership races: preferred shards immediately, the rest
// after TakeoverDelay (so a booting fleet settles onto its preference map
// instead of whoever's scheduler won the first millisecond). With a
// WatchStore it also starts the ring-epoch watcher, first syncing once so a
// node booting into a mid-flight reshard joins at the fleet's ring, not its
// stale boot ring.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()

	if m.cfg.WatchStore != nil {
		if c, err := m.cfg.WatchStore(); err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("ring-epoch watch disabled: store dial failed", "err", err)
			}
		} else {
			m.watchMu.Lock()
			m.watch = c
			m.watchMu.Unlock()
			m.watchStop = make(chan struct{})
			m.watchDone = make(chan struct{})
			m.pollEpoch()
			go m.watchLoop()
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	preferred := make(map[int]bool, len(m.cfg.Prefer))
	for _, s := range m.cfg.Prefer {
		if s >= 0 && s < len(m.electors) {
			preferred[s] = true
		}
	}
	for i := range m.electors {
		if preferred[i] {
			m.runElectorLocked(i)
			continue
		}
		shard := i
		m.timers = append(m.timers, time.AfterFunc(m.cfg.TakeoverDelay, func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.stopped {
				return
			}
			m.runElectorLocked(shard)
		}))
	}
}

// runElectorLocked launches shard i's lease loop once. Callers hold mu.
//
//sblint:holds mu
func (m *Manager) runElectorLocked(i int) {
	if _, live := m.running[i]; live {
		return
	}
	m.running[i] = struct{}{}
	go m.electors[i].Run()
}

// lead is the per-shard OnLead hook: sync the ring epoch (a successor must
// know whether a handoff or cutover is in flight before serving a single
// write), arm the controller's fence for this shard's lease epoch, drain
// anything it journaled while standing by, and optionally rebuild in-flight
// call state the previous leader persisted.
func (m *Manager) lead(shard int, epoch int64) {
	m.pollEpoch()
	ctrl := m.controller(shard)
	ctrl.SetLease(LeaseKey(shard), epoch)
	ctx := context.Background()
	if _, err := ctrl.ReplayJournal(ctx); err != nil && m.cfg.Logger != nil {
		m.cfg.Logger.Warn("shard journal replay on takeover", "shard", shard, "err", err)
	}
	if m.cfg.Recover {
		if n, err := ctrl.RecoverCalls(ctx); err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("shard call-state recovery failed", "shard", shard, "err", err)
			}
		} else if n > 0 && m.cfg.Logger != nil {
			m.cfg.Logger.Info("shard call state recovered", "shard", shard, "calls", n)
		}
	}
	m.mu.Lock()
	m.owned[shard] = true
	delete(m.acked, shard) // a fresh reign must ack handoff at its own epoch
	n := len(m.owned)
	m.mu.Unlock()
	m.cfg.Metrics.ownedGauge().Set(float64(n))
}

// lose is the per-shard OnLose hook. The controller's fence is deliberately
// LEFT ARMED at the deposed epoch: anything still journaled on this shard
// belongs to the lost leadership, and replaying it under the old epoch makes
// the store reject it (fenced, counted in Stats) instead of landing it over
// the successor's state. Re-winning the shard re-arms the fence at the new
// epoch via lead.
func (m *Manager) lose(shard int) {
	m.mu.Lock()
	delete(m.owned, shard)
	delete(m.acked, shard)
	n := len(m.owned)
	m.mu.Unlock()
	m.cfg.Metrics.ownedGauge().Set(float64(n))
}

// Ring returns the ring currently authoritative for writes (the boot ring
// until a stored epoch supersedes it).
func (m *Manager) Ring() *Ring { return m.route.Load().ring }

// RingEpoch returns the serving ring's epoch (1 for the boot ring).
func (m *Manager) RingEpoch() int64 { return m.route.Load().epoch }

// Phase returns the reshard phase this node last observed (PhaseStable when
// no reshard is in flight).
func (m *Manager) Phase() string { return m.route.Load().phase }

// Reshard returns the last observed coordinator checkpoint for progress
// reporting; ok is false when no reshard is in flight.
func (m *Manager) Reshard() (st ReshardState, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.progress == nil {
		return ReshardState{}, false
	}
	return *m.progress, true
}

// Metrics returns the manager's telemetry bundle (may be nil).
func (m *Manager) Metrics() *Metrics { return m.cfg.Metrics }

// ID returns this process's lease owner identity.
func (m *Manager) ID() string { return m.cfg.ID }

// TTL returns the shard lease TTL (the honest Retry-After for a routing 503:
// ownership moves within one TTL).
func (m *Manager) TTL() time.Duration { return m.cfg.TTL }

// Owns reports whether this process currently leads the shard.
func (m *Manager) Owns(shard int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owned[shard]
}

// Owned returns the shards this process currently leads, sorted.
func (m *Manager) Owned() []int {
	m.mu.Lock()
	out := make([]int, 0, len(m.owned))
	for s := range m.owned {
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Ints(out)
	return out
}

// controller returns shard i's controller.
func (m *Manager) controller(shard int) *controller.Controller {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ctrls[shard]
}

// Controller returns shard i's controller (led or not), nil when out of
// range.
func (m *Manager) Controller(shard int) *controller.Controller {
	m.mu.Lock()
	defer m.mu.Unlock()
	if shard < 0 || shard >= len(m.ctrls) {
		return nil
	}
	return m.ctrls[shard]
}

// Controllers returns a snapshot of every shard controller, indexed by shard.
func (m *Manager) Controllers() []*controller.Controller {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*controller.Controller, len(m.ctrls))
	copy(out, m.ctrls)
	return out
}

// ControllerFor resolves a conference ID to its shard under the serving ring
// and reports whether this process leads it; ctrl is the local controller for
// that shard either way (callers must not route mutations through it unless
// owned).
func (m *Manager) ControllerFor(conf uint64) (ctrl *controller.Controller, shard int, owned bool) {
	shard = m.route.Load().ring.Lookup(conf)
	return m.controller(shard), shard, m.Owns(shard)
}

// Route resolves a conference ID under the current ring epoch without
// registering a write (for reads and redirects).
func (m *Manager) Route(conf uint64) RouteDecision {
	return m.route.Load().decide(conf)
}

// BeginWrite resolves the shard that must serve a call-state write under the
// current ring epoch. While a reshard is copying, admitted writes to moving
// keys are tracked in flight — release (non-nil only then) must be called
// once the write is done, and the journal-handoff barrier waits for the
// count to drain before acking, so "drained" provably covers every admitted
// write. Re-deciding after registering closes the race with a concurrent
// phase flip: either the write registered before the flip (the barrier waits
// for it) or it observes the flip and is held.
func (m *Manager) BeginWrite(conf uint64) (RouteDecision, func()) {
	for {
		rs := m.route.Load()
		d := rs.decide(conf)
		if !rs.tracked(conf, d) {
			return d, nil
		}
		shard := d.Shard
		m.mu.Lock()
		m.movedInflight[shard]++
		m.mu.Unlock()
		if m.route.Load() == rs {
			return d, func() {
				m.mu.Lock()
				m.movedInflight[shard]--
				m.mu.Unlock()
			}
		}
		// The route flipped between deciding and registering; undo and retry
		// against the new view.
		m.mu.Lock()
		m.movedInflight[shard]--
		m.mu.Unlock()
	}
}

// Epoch returns the fencing epoch of shard's lease as last observed by this
// node's elector (0 before any election lands). Monotonic per shard: every
// leadership change bumps it, so dashboards can tell a stable leader from one
// that is churning.
func (m *Manager) Epoch(shard int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if shard < 0 || shard >= len(m.electors) {
		return 0
	}
	return m.electors[shard].Epoch()
}

// OwnerHint returns the last observed leader of a shard this process does not
// lead ("" when unknown or led locally) — the redirect target for the HTTP
// router.
func (m *Manager) OwnerHint(shard int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if shard < 0 || shard >= len(m.electors) {
		return ""
	}
	return m.electors[shard].LeaderHint()
}

// Stop performs an orderly shutdown with live shard handoff: for every shard
// this process leads it first drains the controller's journal into the store
// (the fence is still armed, so the writes land under this leadership's
// epoch), then resigns the lease so a successor takes over within a renew
// interval instead of waiting out the TTL; the successor's OnLead replays its
// own journal and (with Recover) rebuilds call state from the store. Elector
// store clients are closed on the way out. ctx bounds the journal drains.
func (m *Manager) Stop(ctx context.Context) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	for _, t := range m.timers {
		t.Stop()
	}
	ownedNow := make([]int, 0, len(m.owned))
	for s := range m.owned {
		ownedNow = append(ownedNow, s)
	}
	running := make([]int, 0, len(m.running))
	for i := range m.running {
		running = append(running, i)
	}
	ctrls := make([]*controller.Controller, len(m.ctrls))
	copy(ctrls, m.ctrls)
	electors := make([]*controller.Elector, len(m.electors))
	copy(electors, m.electors)
	stores := make([]*kvstore.Client, len(m.stores))
	copy(stores, m.stores)
	watchStop := m.watchStop
	m.mu.Unlock()
	sort.Ints(ownedNow)

	if watchStop != nil {
		close(watchStop)
		<-m.watchDone
		m.watchMu.Lock()
		_ = m.watch.Close()
		m.watchMu.Unlock()
	}

	// Drain before resigning: an owned shard's journal must land under the
	// epoch this node still holds, or the successor can never see the writes.
	for _, s := range ownedNow {
		if _, err := ctrls[s].ReplayJournal(ctx); err != nil && m.cfg.Logger != nil {
			m.cfg.Logger.WarnContext(ctx, "shard handoff drain failed; successor will fence stragglers",
				"shard", s, "err", err)
		}
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.Handoffs.Inc()
		}
	}
	for _, i := range running {
		electors[i].Stop()
	}
	for _, i := range running {
		<-electors[i].Done()
	}
	for _, s := range stores {
		_ = s.Close()
	}
}
