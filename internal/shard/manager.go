package shard

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/kvstore"
	"switchboard/internal/obs/span"
)

// DefaultTakeoverDelay multiplies the lease TTL into the head start a shard's
// preferred owner gets before peers begin racing its lease (see
// Config.Prefer).
const DefaultTakeoverDelay = 1

// Config parameterizes a Manager.
type Config struct {
	// Ring maps conference IDs onto shards. Required; every node in the
	// fleet must use an identical ring.
	Ring *Ring
	// ID is this process's lease owner identity. Use the node's advertised
	// HTTP address: peers surface it as the redirect/forward target for
	// shards this node leads. Required.
	ID string
	// Controllers holds one controller per shard, each persisting under
	// KeyPrefix(i) with Config.Shard = i. Required, len == Ring.Shards().
	Controllers []*controller.Controller
	// ElectorStore dials a dedicated store client for shard i's elector.
	// Elections must not share the data path's clients: probes have to go
	// through when a shard's write path is saturated. Required.
	ElectorStore func(shard int) (*kvstore.Client, error)
	// Prefer lists the shards this node is the preferred owner of: their
	// electors race immediately at Start, while every other shard's elector
	// waits TakeoverDelay first. A fleet whose preferences partition the
	// shards gets a deterministic steady-state ownership map; failover is
	// unaffected (after the delay every elector races every renew interval).
	Prefer []int
	// TTL and Renew parameterize each shard's lease (see
	// controller.ElectorConfig); zero means the controller defaults.
	TTL, Renew time.Duration
	// TakeoverDelay is how long a non-preferred elector waits before its
	// first attempt; zero means one TTL.
	TakeoverDelay time.Duration
	// Recover, when true, has a fresh shard leader rebuild in-flight call
	// state from the store (controller.RecoverCalls) after draining its
	// journal, so calls started under the previous leader keep their freeze
	// and end transitions.
	Recover bool
	Metrics *Metrics
	Logger  *slog.Logger
	Tracer  *span.Tracer
}

// Manager runs one leadership race per shard and tracks which shards this
// process currently leads. Safe for concurrent use.
type Manager struct {
	cfg      Config
	electors []*controller.Elector
	stores   []*kvstore.Client

	mu      sync.Mutex
	owned   map[int]bool     // guarded by mu; shards this process leads
	started bool             // guarded by mu
	stopped bool             // guarded by mu
	timers  []*time.Timer    // guarded by mu; pending delayed elector starts
	running map[int]struct{} // guarded by mu; electors whose Run loop is live
}

// NewManager validates cfg and builds the per-shard electors (none running
// yet; call Start).
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Ring == nil {
		return nil, errConfig("Ring is required")
	}
	if cfg.ID == "" {
		return nil, errConfig("ID is required")
	}
	if len(cfg.Controllers) != cfg.Ring.Shards() {
		return nil, errConfig("need exactly one controller per shard")
	}
	if cfg.ElectorStore == nil {
		return nil, errConfig("ElectorStore is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = controller.DefaultLeaseTTL
	}
	if cfg.TakeoverDelay <= 0 {
		cfg.TakeoverDelay = DefaultTakeoverDelay * cfg.TTL
	}
	m := &Manager{
		cfg:     cfg,
		owned:   make(map[int]bool),
		running: make(map[int]struct{}),
	}
	for i := 0; i < cfg.Ring.Shards(); i++ {
		store, err := cfg.ElectorStore(i)
		if err != nil {
			for _, s := range m.stores {
				_ = s.Close()
			}
			return nil, err
		}
		m.stores = append(m.stores, store)
		shard := i
		m.electors = append(m.electors, controller.NewElector(controller.ElectorConfig{
			Store:   store,
			Key:     LeaseKey(shard),
			ID:      cfg.ID,
			TTL:     cfg.TTL,
			Renew:   cfg.Renew,
			OnLead:  func(epoch int64) { m.lead(shard, epoch) },
			OnLose:  func() { m.lose(shard) },
			Metrics: cfg.Metrics.electorMetrics(shard),
			Logger:  cfg.Logger,
			Tracer:  cfg.Tracer,
		}))
	}
	return m, nil
}

type errConfig string

func (e errConfig) Error() string { return "shard: " + string(e) }

// Start launches the leadership races: preferred shards immediately, the rest
// after TakeoverDelay (so a booting fleet settles onto its preference map
// instead of whoever's scheduler won the first millisecond).
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || m.stopped {
		return
	}
	m.started = true
	preferred := make(map[int]bool, len(m.cfg.Prefer))
	for _, s := range m.cfg.Prefer {
		if s >= 0 && s < len(m.electors) {
			preferred[s] = true
		}
	}
	for i := range m.electors {
		if preferred[i] {
			m.runElectorLocked(i)
			continue
		}
		shard := i
		m.timers = append(m.timers, time.AfterFunc(m.cfg.TakeoverDelay, func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.stopped {
				return
			}
			m.runElectorLocked(shard)
		}))
	}
}

// runElectorLocked launches shard i's lease loop once. Callers hold mu.
//
//sblint:holds mu
func (m *Manager) runElectorLocked(i int) {
	if _, live := m.running[i]; live {
		return
	}
	m.running[i] = struct{}{}
	go m.electors[i].Run()
}

// lead is the per-shard OnLead hook: arm the controller's fence for this
// shard's lease epoch, drain anything it journaled while standing by, and
// optionally rebuild in-flight call state the previous leader persisted.
func (m *Manager) lead(shard int, epoch int64) {
	ctrl := m.cfg.Controllers[shard]
	ctrl.SetLease(LeaseKey(shard), epoch)
	ctx := context.Background()
	if _, err := ctrl.ReplayJournal(ctx); err != nil && m.cfg.Logger != nil {
		m.cfg.Logger.Warn("shard journal replay on takeover", "shard", shard, "err", err)
	}
	if m.cfg.Recover {
		if n, err := ctrl.RecoverCalls(ctx); err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("shard call-state recovery failed", "shard", shard, "err", err)
			}
		} else if n > 0 && m.cfg.Logger != nil {
			m.cfg.Logger.Info("shard call state recovered", "shard", shard, "calls", n)
		}
	}
	m.mu.Lock()
	m.owned[shard] = true
	n := len(m.owned)
	m.mu.Unlock()
	m.cfg.Metrics.ownedGauge().Set(float64(n))
}

// lose is the per-shard OnLose hook. The controller's fence is deliberately
// LEFT ARMED at the deposed epoch: anything still journaled on this shard
// belongs to the lost leadership, and replaying it under the old epoch makes
// the store reject it (fenced, counted in Stats) instead of landing it over
// the successor's state. Re-winning the shard re-arms the fence at the new
// epoch via lead.
func (m *Manager) lose(shard int) {
	m.mu.Lock()
	delete(m.owned, shard)
	n := len(m.owned)
	m.mu.Unlock()
	m.cfg.Metrics.ownedGauge().Set(float64(n))
}

// Ring returns the manager's ring.
func (m *Manager) Ring() *Ring { return m.cfg.Ring }

// ID returns this process's lease owner identity.
func (m *Manager) ID() string { return m.cfg.ID }

// TTL returns the shard lease TTL (the honest Retry-After for a routing 503:
// ownership moves within one TTL).
func (m *Manager) TTL() time.Duration { return m.cfg.TTL }

// Owns reports whether this process currently leads the shard.
func (m *Manager) Owns(shard int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owned[shard]
}

// Owned returns the shards this process currently leads, sorted.
func (m *Manager) Owned() []int {
	m.mu.Lock()
	out := make([]int, 0, len(m.owned))
	for s := range m.owned {
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Ints(out)
	return out
}

// Controller returns shard i's controller (led or not).
func (m *Manager) Controller(shard int) *controller.Controller {
	return m.cfg.Controllers[shard]
}

// Controllers returns every shard controller, indexed by shard.
func (m *Manager) Controllers() []*controller.Controller {
	return m.cfg.Controllers
}

// ControllerFor resolves a conference ID to its shard and reports whether
// this process leads it; ctrl is the local controller for that shard either
// way (callers must not route mutations through it unless owned).
func (m *Manager) ControllerFor(conf uint64) (ctrl *controller.Controller, shard int, owned bool) {
	shard = m.cfg.Ring.Lookup(conf)
	return m.cfg.Controllers[shard], shard, m.Owns(shard)
}

// Epoch returns the fencing epoch of shard's lease as last observed by this
// node's elector (0 before any election lands). Monotonic per shard: every
// leadership change bumps it, so dashboards can tell a stable leader from one
// that is churning.
func (m *Manager) Epoch(shard int) int64 {
	if shard < 0 || shard >= len(m.electors) {
		return 0
	}
	return m.electors[shard].Epoch()
}

// OwnerHint returns the last observed leader of a shard this process does not
// lead ("" when unknown or led locally) — the redirect target for the HTTP
// router.
func (m *Manager) OwnerHint(shard int) string {
	if shard < 0 || shard >= len(m.electors) {
		return ""
	}
	return m.electors[shard].LeaderHint()
}

// Stop performs an orderly shutdown with live shard handoff: for every shard
// this process leads it first drains the controller's journal into the store
// (the fence is still armed, so the writes land under this leadership's
// epoch), then resigns the lease so a successor takes over within a renew
// interval instead of waiting out the TTL; the successor's OnLead replays its
// own journal and (with Recover) rebuilds call state from the store. Elector
// store clients are closed on the way out. ctx bounds the journal drains.
func (m *Manager) Stop(ctx context.Context) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	for _, t := range m.timers {
		t.Stop()
	}
	ownedNow := make([]int, 0, len(m.owned))
	for s := range m.owned {
		ownedNow = append(ownedNow, s)
	}
	running := make([]int, 0, len(m.running))
	for i := range m.running {
		running = append(running, i)
	}
	m.mu.Unlock()
	sort.Ints(ownedNow)

	// Drain before resigning: an owned shard's journal must land under the
	// epoch this node still holds, or the successor can never see the writes.
	for _, s := range ownedNow {
		if _, err := m.cfg.Controllers[s].ReplayJournal(ctx); err != nil && m.cfg.Logger != nil {
			m.cfg.Logger.WarnContext(ctx, "shard handoff drain failed; successor will fence stragglers",
				"shard", s, "err", err)
		}
		if m.cfg.Metrics != nil {
			m.cfg.Metrics.Handoffs.Inc()
		}
	}
	for _, i := range running {
		m.electors[i].Stop()
	}
	for _, i := range running {
		<-m.electors[i].Done()
	}
	for _, s := range m.stores {
		_ = s.Close()
	}
}
