// The ring-epoch watcher: each Manager polls the stored EpochState and
// derives its routing view from it — growing its shard set when the epoch
// names a wider ring, flipping write holds at journal-handoff, double-reading
// through cutover, and evicting moved calls once the fleet is stable on the
// target ring. All of a node's reshard participation happens here; the
// coordinator only ever writes store state, so any node that can read the
// store converges without talking to the coordinator.

package shard

import (
	"context"
	"time"

	"switchboard/internal/controller"
)

// phaseOrd maps a reshard phase onto the sb_shard_reshard_phase gauge.
func phaseOrd(phase string) float64 {
	switch phase {
	case PhasePrepare:
		return 1
	case PhaseCopy:
		return 2
	case PhaseHandoff:
		return 3
	case PhaseCutover:
		return 4
	default:
		return 0
	}
}

// watchLoop re-reads the ring epoch until Stop.
func (m *Manager) watchLoop() {
	defer close(m.watchDone)
	t := time.NewTicker(m.cfg.EpochPoll)
	defer t.Stop()
	for {
		select {
		case <-m.watchStop:
			return
		case <-t.C:
			m.mu.Lock()
			stopped := m.stopped
			m.mu.Unlock()
			if stopped {
				return
			}
			m.pollEpoch()
		}
	}
}

// pollEpoch makes one watch pass: read the fleet's EpochState, reconcile the
// routing view, mirror the coordinator's checkpoint for progress reporting,
// and during journal-handoff drain-and-ack the source shards this node
// leads. Also called synchronously from lead(), so a fresh shard leader
// serves its first write from the fleet's current view, never a stale one.
func (m *Manager) pollEpoch() {
	m.watchMu.Lock()
	defer m.watchMu.Unlock()
	if m.watch == nil {
		return // no watch store configured: the boot ring is the serving ring
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.TTL)
	defer cancel()
	es, ok, err := LoadEpoch(ctx, m.watch)
	if err != nil {
		if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("ring-epoch poll failed", "err", err)
		}
		return
	}
	if !ok {
		return // no epoch stored yet: the boot ring is the serving ring
	}
	m.applyEpoch(es)

	if es.Phase == PhaseStable {
		m.mu.Lock()
		m.progress = nil
		m.mu.Unlock()
		m.cfg.Metrics.reshardGauges(0, 0)
		return
	}
	if st, stOK, stErr := LoadReshard(ctx, m.watch); stErr == nil && stOK {
		m.mu.Lock()
		m.progress = &st
		m.mu.Unlock()
		m.cfg.Metrics.reshardGauges(float64(st.Copied), float64(st.Total))
	}
	if es.Phase == PhaseHandoff {
		m.ackHandoffs(ctx, es)
	}
}

// applyEpoch reconciles the routing view with an observed EpochState and
// runs the transition actions the phase change demands. Idempotent: a state
// equal to the current view is a no-op, so the poll loop can call it every
// tick.
func (m *Manager) applyEpoch(es EpochState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.route.Load()
	if cur.epoch == es.Epoch && cur.phase == es.Phase && cur.ring.Shards() == es.Shards {
		return
	}

	// Grow before routing: a view is only publishable once every shard it
	// can name has a controller and an elector racing.
	width := es.Shards
	if es.TargetShards > width {
		width = es.TargetShards
	}
	if !m.ensureShardsLocked(width) {
		return // growth impossible (no factory / dial failure); keep the old view
	}

	next := &routeState{epoch: es.Epoch, phase: es.Phase}
	next.ring = m.ringFor(cur, es.Shards, es.VNodes)
	if next.ring == nil {
		return
	}
	switch {
	case es.Phase == PhaseCutover && es.PrevShards > 0:
		if next.prev = m.ringFor(cur, es.PrevShards, es.VNodes); next.prev == nil {
			return
		}
	case es.Phase == PhasePrepare || es.Phase == PhaseCopy || es.Phase == PhaseHandoff:
		if es.TargetShards > 0 {
			if next.next = m.ringFor(cur, es.TargetShards, es.VNodes); next.next == nil {
				return
			}
		}
	}
	m.route.Store(next)
	m.cfg.Metrics.ringEpochGauge().Set(float64(es.Epoch))
	m.cfg.Metrics.phaseGauge().Set(phaseOrd(es.Phase))
	if m.cfg.Logger != nil {
		m.cfg.Logger.Info("ring epoch applied", "epoch", es.Epoch, "phase", es.Phase,
			"shards", es.Shards, "target", es.TargetShards)
	}

	switch es.Phase {
	case PhaseCutover:
		// Moved keys now live under the new owners' prefixes; a new-shard
		// leader that won its lease mid-copy recovered nothing, so rebuild.
		for s := range m.owned {
			if s >= es.PrevShards && s < len(m.ctrls) {
				go m.recoverShard(s)
			}
		}
	case PhaseStable:
		switch {
		case es.Epoch > cur.epoch:
			// Reshard done: drop moved calls from their old owners — the new
			// owners recovered them from the copied state.
			ring := next.ring
			for i, ctrl := range m.ctrls {
				shard := i
				if n := ctrl.EvictCalls(func(id uint64) bool { return ring.Lookup(id) != shard }); n > 0 && m.cfg.Logger != nil {
					m.cfg.Logger.Info("moved calls evicted after reshard", "shard", shard, "calls", n)
				}
			}
		case cur.phase != PhaseStable:
			// Abort: the fleet rolled back to the source ring. Drop anything
			// the aborted target shards picked up.
			for i := es.Shards; i < len(m.ctrls); i++ {
				m.ctrls[i].EvictCalls(func(uint64) bool { return true })
			}
		}
		m.acked = make(map[int]int64)
	}
}

// ringFor builds a ring of the given width, reusing the current view's rings
// when the width matches (lookups stay on the exact same structure). Returns
// nil only on an invalid width.
func (m *Manager) ringFor(cur *routeState, shards, vnodes int) *Ring {
	for _, r := range []*Ring{cur.ring, cur.next, cur.prev} {
		if r != nil && r.Shards() == shards {
			return r
		}
	}
	r, err := NewRing(shards, vnodes)
	if err != nil {
		if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("ring build failed", "shards", shards, "err", err)
		}
		return nil
	}
	return r
}

// ensureShardsLocked grows the controller/elector set to width shards,
// reporting whether the manager now covers them. Callers hold mu.
//
//sblint:holds mu
func (m *Manager) ensureShardsLocked(width int) bool {
	for i := len(m.ctrls); i < width; i++ {
		if m.cfg.NewController == nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("cannot grow shard set: no controller factory", "want", width)
			}
			return false
		}
		ctrl, err := m.cfg.NewController(i)
		if err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("shard controller build failed", "shard", i, "err", err)
			}
			return false
		}
		if err := m.addShardLocked(i, ctrl); err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.Warn("shard elector dial failed", "shard", i, "err", err)
			}
			return false
		}
		// New shards have no preferred owner: every node races immediately
		// and the lease arbitrates.
		if m.started && !m.stopped {
			m.runElectorLocked(i)
		}
	}
	return true
}

// recoverShard rebuilds an owned target shard's call state at cutover.
func (m *Manager) recoverShard(shard int) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*m.cfg.TTL)
	defer cancel()
	if n, err := m.controller(shard).RecoverCalls(ctx); err != nil {
		if m.cfg.Logger != nil {
			m.cfg.Logger.Warn("cutover call-state recovery failed", "shard", shard, "err", err)
		}
	} else if n > 0 && m.cfg.Logger != nil {
		m.cfg.Logger.Info("cutover call state recovered", "shard", shard, "calls", n)
	}
}

// ackHandoffs runs the leader side of the journal-handoff barrier for every
// source shard this node leads: once the shard's moved-write in-flight count
// has drained (BeginWrite holds new ones by now — the route flipped before
// this runs), drain the journal and write the ack stamped with this reign's
// lease epoch, atomically under the controller's store lock. The coordinator
// only proceeds when each shard's ack matches its CURRENT lease epoch, so an
// ack from a deposed reign never green-lights the delta copy — and the ack
// write itself is fenced anyway. Non-blocking: shards that still have writes
// in flight are retried next poll.
func (m *Manager) ackHandoffs(ctx context.Context, es EpochState) {
	type ackJob struct {
		shard int
		epoch int64
		ctrl  *controller.Controller
	}
	m.mu.Lock()
	var todo []ackJob
	for s := range m.owned {
		epoch := m.epochLocked(s)
		if s < es.Shards && epoch != 0 && m.movedInflight[s] == 0 && m.acked[s] != epoch {
			todo = append(todo, ackJob{shard: s, epoch: epoch, ctrl: m.ctrls[s]})
		}
	}
	m.mu.Unlock()

	for _, j := range todo {
		s, epoch := j.shard, j.epoch
		if err := j.ctrl.AckHandoff(ctx, AckKey(s), epoch); err != nil {
			if m.cfg.Logger != nil {
				m.cfg.Logger.WarnContext(ctx, "journal-handoff ack failed", "shard", s, "err", err)
			}
			continue
		}
		m.mu.Lock()
		m.acked[s] = epoch
		m.mu.Unlock()
		if m.cfg.Logger != nil {
			m.cfg.Logger.InfoContext(ctx, "journal handoff acked", "shard", s, "epoch", epoch)
		}
	}
}

// epochLocked is Epoch without re-locking. Callers hold mu.
//
//sblint:holds mu
func (m *Manager) epochLocked(shard int) int64 {
	if shard < 0 || shard >= len(m.electors) {
		return 0
	}
	return m.electors[shard].Epoch()
}
