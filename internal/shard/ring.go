// Package shard partitions the conference-ID space across N control-plane
// shards and runs the per-shard leadership races that decide which controller
// process owns each slice. A Ring maps a conference ID onto a shard via
// consistent hashing with virtual nodes; a Manager races one
// controller.Elector per shard over its own lease key (shard/<i>/leader),
// reusing the store's epoch fencing so a deposed shard leader's straggling
// writes are rejected per shard. The HTTP surface resolves the owning shard
// for every call-control request and either serves it locally, proxies it to
// the owner, or redirects with a leader hint (see internal/httpapi).
package shard

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-shard virtual-node count. More points smooth
// the key distribution; 64 keeps the worst shard within a few percent of fair
// share while the ring stays a few KB.
const DefaultVirtualNodes = 64

// LeaseKey returns the store key shard i's leadership race runs on.
func LeaseKey(shard int) string {
	return "shard/" + strconv.Itoa(shard) + "/leader"
}

// KeyPrefix returns the store-key namespace for shard i's call state, fed to
// controller.Config.KeyPrefix so shard journals and state never collide.
func KeyPrefix(shard int) string {
	return "shard/" + strconv.Itoa(shard) + "/"
}

// ringPoint is one virtual node: a position on the hash circle and the shard
// that owns the arc ending there.
type ringPoint struct {
	hash  uint64
	shard int
}

// Ring is a consistent-hash ring over a fixed shard count. It is immutable
// after construction and safe for concurrent use without locking. Every node
// in a fleet must build the ring with the same (shards, virtualNodes) pair —
// the mapping is a pure function of those two numbers, so agreement needs no
// coordination.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash; immutable after NewRing
}

// NewRing builds a ring with the given shard count and virtual nodes per
// shard (DefaultVirtualNodes when vnodes <= 0).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least 1 shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(uint64(s)<<32 | uint64(v) | 1<<63)
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between shards would make the mapping depend on
		// sort stability; break it by shard so every node agrees.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Lookup maps a conference ID onto its owning shard: hash the ID onto the
// circle and walk clockwise to the first virtual node.
func (r *Ring) Lookup(conf uint64) int {
	h := mix64(conf)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the last point back to the first
	}
	return r.points[i].shard
}

// mix64 is the splitmix64 finalizer — the same mixer the span tracer uses for
// trace IDs: cheap, stateless, and avalanche-complete, so sequential
// conference IDs spread uniformly over the circle.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
