package shard

import "testing"

// pickConf returns a conference ID owned by shard `from` on `old` that
// lands on a shard != from under `new` (moved=true), or stays (moved=false).
func pickConf(t *testing.T, oldR, newR *Ring, from int, moved bool) uint64 {
	t.Helper()
	for id := uint64(1); id < 100000; id++ {
		if oldR.Lookup(id) != from {
			continue
		}
		if (newR.Lookup(id) != from) == moved {
			return id
		}
	}
	t.Fatalf("no conf on shard %d with moved=%v", from, moved)
	return 0
}

// TestRouteDecide pins the dual-ring routing table: which phases hold
// writes, which double-read, and which pass untouched.
func TestRouteDecide(t *testing.T) {
	r3, err := NewRing(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	moved := pickConf(t, r3, r4, 1, true)
	unmoved := pickConf(t, r3, r4, 1, false)

	// Stable: one ring, no reshard behavior ever.
	stable := &routeState{epoch: 1, phase: PhaseStable, ring: r3}
	for _, id := range []uint64{moved, unmoved} {
		d := stable.decide(id)
		if d.Held || d.DoubleRead || d.OldShard != -1 {
			t.Fatalf("stable decide(%d) = %+v", id, d)
		}
		if stable.tracked(id, d) {
			t.Fatalf("stable tracked(%d)", id)
		}
	}

	// Copy: source ring routes, moved writes are admitted but tracked so
	// the handoff barrier can wait for them to drain.
	cp := &routeState{epoch: 1, phase: PhaseCopy, ring: r3, next: r4}
	if d := cp.decide(moved); d.Held || d.DoubleRead || d.Shard != 1 {
		t.Fatalf("copy decide(moved) = %+v", d)
	} else if !cp.tracked(moved, d) {
		t.Fatal("copy-phase write to a moving key must be tracked in-flight")
	}
	if d := cp.decide(unmoved); cp.tracked(unmoved, d) {
		t.Fatal("copy-phase write to an unmoved key must not be tracked")
	}

	// Journal-handoff: moved writes are held (503 upstream), unmoved flow.
	ho := &routeState{epoch: 1, phase: PhaseHandoff, ring: r3, next: r4}
	if d := ho.decide(moved); !d.Held {
		t.Fatalf("handoff decide(moved) = %+v, want held", d)
	} else if ho.tracked(moved, d) {
		t.Fatal("a held write must not be tracked: it was never admitted")
	}
	if d := ho.decide(unmoved); d.Held {
		t.Fatalf("handoff decide(unmoved) = %+v, want pass", d)
	}

	// Cutover: target ring authoritative; moved keys double-read through
	// their pre-split owner, unmoved keys don't.
	cut := &routeState{epoch: 2, phase: PhaseCutover, ring: r4, prev: r3}
	d := cut.decide(moved)
	if !d.DoubleRead || d.Shard != r4.Lookup(moved) || d.OldShard != 1 {
		t.Fatalf("cutover decide(moved) = %+v, want double-read shard %d old 1", d, r4.Lookup(moved))
	}
	if d.Held {
		t.Fatal("cutover must not hold writes")
	}
	if d := cut.decide(unmoved); d.DoubleRead || d.OldShard != -1 {
		t.Fatalf("cutover decide(unmoved) = %+v", d)
	}
}
