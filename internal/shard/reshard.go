// The reshard coordinator: walks a live fleet from an N-shard ring to a
// wider one with zero acked-write loss. The coordinator is a store-driven
// state machine — every step is checkpointed under ReshardStateKey and every
// write rides the coordinator lease's fence, so any node can resume a
// crashed migration and a deposed coordinator's stragglers are rejected by
// the store instead of corrupting the one that took over.
//
// Phase protocol (see DESIGN.md "Resharding" for the failure matrix):
//
//	prepare          publish the target ring; fleet grows, new shards elect
//	copy             bulk-copy moving keys old→new prefix (racy, resumable)
//	journal-handoff  hold writes to moving keys; every source leader drains
//	                 its journal and acks at its lease epoch; delta-copy the
//	                 now-quiescent keys
//	cutover          bump the epoch: target ring serves, double reads cover
//	                 stragglers; then retire moved keys and go stable
//
// An abort before cutover rolls back to the source ring: every acked write
// is still under its source prefix (the copies are copies), so rollback
// deletes the partial destination state and republishes the old ring.

package shard

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchboard/internal/kvstore"
	"switchboard/internal/obs/span"
)

// Coordinator step-pacing defaults.
const (
	// DefaultReshardPoll paces the coordinator's wait loops (leaders, acks).
	DefaultReshardPoll = 100 * time.Millisecond
	// DefaultReshardBackoffBase / Max bound the capped jittered retry backoff.
	DefaultReshardBackoffBase = 50 * time.Millisecond
	DefaultReshardBackoffMax  = 2 * time.Second
	// DefaultReshardAttempts bounds one step's retries before the run fails
	// (the checkpoint survives; a later run resumes).
	DefaultReshardAttempts = 8
	// reshardCheckpointEvery is how many copied keys between progress
	// checkpoints mid-shard.
	reshardCheckpointEvery = 16
)

// CoordinatorConfig parameterizes a reshard Coordinator.
type CoordinatorConfig struct {
	// Store is the coordinator's own store client; the coordinator arms its
	// fence with the reshard lease, so it must not be shared with electors
	// or controllers. Required.
	Store *kvstore.Client
	// ID identifies this coordinator as the reshard lease owner (the node's
	// advertised address). Required.
	ID string
	// BootShards/BootVNodes describe the serving ring when no EpochState has
	// ever been stored (a fleet still on its boot ring). Required.
	BootShards int
	BootVNodes int
	// TTL and Renew parameterize the coordinator lease; zero means the
	// controller-lease defaults. A crashed coordinator can be superseded one
	// TTL after its last renewal.
	TTL, Renew time.Duration
	// Poll paces the wait loops; zero means DefaultReshardPoll.
	Poll time.Duration
	// CutoverHold is how long cutover keeps serving double reads before the
	// target ring is declared stable and moved keys are retired; zero means
	// two lease TTLs (time for every node to observe the flip and recover).
	CutoverHold time.Duration
	// BackoffBase/BackoffMax/MaxAttempts shape the per-step retry loop; zero
	// means the defaults above.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	MaxAttempts int
	Metrics     *Metrics
	Logger      *slog.Logger
	Tracer      *span.Tracer
	// StepHook, when non-nil, is called at phase entries and per copied key
	// — test instrumentation for deterministic crash injection. Must be fast.
	StepHook func(phase, step string)
}

// Coordinator drives one reshard (or its resumption) to completion.
type Coordinator struct {
	cfg   CoordinatorConfig
	epoch int64 // coordinator lease epoch once acquired

	// storeMu serializes every command on the single-connection store
	// client: the lease renew loop runs concurrently with the phase machine.
	storeMu sync.Mutex
}

// locked runs one store command under storeMu.
func (co *Coordinator) locked(f func() error) error {
	co.storeMu.Lock()
	defer co.storeMu.Unlock()
	return f()
}

// NewCoordinator validates cfg.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errConfig("coordinator Store is required")
	}
	if cfg.ID == "" {
		return nil, errConfig("coordinator ID is required")
	}
	if cfg.BootShards <= 0 {
		return nil, errConfig("coordinator BootShards is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3 * time.Second
	}
	if cfg.Renew <= 0 {
		cfg.Renew = cfg.TTL / 3
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultReshardPoll
	}
	if cfg.CutoverHold <= 0 {
		cfg.CutoverHold = 2 * cfg.TTL
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultReshardBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultReshardBackoffMax
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultReshardAttempts
	}
	return &Coordinator{cfg: cfg}, nil
}

// LeaseHolder reports who currently holds the reshard coordinator lease (""
// when free). Advisory: the lease itself arbitrates, this only lets an API
// answer 409 instead of silently queueing behind a live coordinator.
func (co *Coordinator) LeaseHolder() string {
	var owner string
	err := co.locked(func() error {
		var lerr error
		owner, _, _, lerr = co.cfg.Store.GetLease(ReshardLeaseKey)
		return lerr
	})
	if err != nil {
		return ""
	}
	return owner
}

// Close releases the coordinator's store client.
func (co *Coordinator) Close() error {
	return co.cfg.Store.Close()
}

func (co *Coordinator) hook(phase, step string) {
	if co.cfg.StepHook != nil {
		co.cfg.StepHook(phase, step)
	}
}

func (co *Coordinator) logf(level slog.Level, msg string, args ...any) {
	if co.cfg.Logger != nil {
		co.cfg.Logger.Log(context.Background(), level, msg, args...)
	}
}

// Run drives a split of the serving ring to target shards, resuming any
// checkpointed migration first (whatever its target). It blocks until the
// fleet is stable on the widened ring, the context dies, or the coordinator
// lease is lost to a successor. Safe to call on any node: the lease decides
// who actually coordinates, and the loser waits to take over.
func (co *Coordinator) Run(ctx context.Context, target int) (ReshardState, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := co.acquireLease(ctx); err != nil {
		return ReshardState{}, err
	}
	defer co.releaseLease()
	go co.renewLoop(ctx, cancel)

	st, resumed, err := co.loadOrInit(ctx, target)
	if err != nil {
		return st, err
	}
	if resumed {
		co.logf(slog.LevelInfo, "resuming checkpointed reshard",
			"from", st.From, "to", st.To, "phase", st.Phase, "copied", st.Copied)
	} else if err := co.checkpoint(ctx, &st); err != nil {
		return st, err
	}

	for {
		co.hook(st.Phase, "enter")
		ctx, sp := co.phaseSpan(ctx, st.Phase)
		var err error
		switch st.Phase {
		case PhasePrepare:
			err = co.prepare(ctx, &st)
		case PhaseCopy:
			err = co.copy(ctx, &st)
		case PhaseHandoff:
			err = co.handoff(ctx, &st)
		case PhaseCutover:
			err = co.cutover(ctx, &st)
		default:
			err = fmt.Errorf("shard: unknown reshard phase %q", st.Phase)
		}
		if sp != nil {
			sp.SetError(err)
			sp.End()
		}
		if err != nil {
			return st, err
		}
		if st.Phase == PhaseStable {
			co.logf(slog.LevelInfo, "reshard complete",
				"from", st.From, "to", st.To, "epoch", st.Epoch+1, "moved", st.Copied)
			return st, nil
		}
	}
}

// Abort rolls a checkpointed migration back to its source ring. Refused at
// or past cutover — by then the target ring is serving acked writes, so the
// only safe direction is forward. Rollback loses nothing: pre-cutover, every
// acked write still lives under its source shard's prefix and only the
// copied duplicates are deleted.
func (co *Coordinator) Abort(ctx context.Context) (ReshardState, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := co.acquireLease(ctx); err != nil {
		return ReshardState{}, err
	}
	defer co.releaseLease()
	go co.renewLoop(ctx, cancel)

	st, ok, err := LoadReshard(ctx, co.cfg.Store)
	if err != nil {
		return st, err
	}
	if !ok {
		return st, fmt.Errorf("shard: no reshard in flight")
	}
	if st.Phase == PhaseCutover {
		return st, fmt.Errorf("shard: reshard is past cutover; it can only roll forward")
	}
	co.hook("abort", "enter")

	// Nobody may route by the target ring anymore before the copies go away.
	if err := co.publishEpoch(ctx, EpochState{
		Epoch: st.Epoch, Shards: st.From, VNodes: st.VNodes, Phase: PhaseStable,
	}); err != nil {
		return st, err
	}
	// Delete the partial destination state: moving keys only ever copy into
	// the added shards' prefixes, which carry nothing else pre-cutover.
	for s := st.From; s < st.To; s++ {
		prefix := KeyPrefix(s) + "call:"
		err := co.retry(ctx, "abort.scan", func(ctx context.Context) error {
			return co.locked(func() error {
				keys, kerr := co.cfg.Store.KeysPrefixContext(ctx, prefix)
				if kerr != nil {
					return kerr
				}
				for _, k := range keys {
					if derr := co.cfg.Store.DelContext(ctx, k); derr != nil {
						return derr
					}
				}
				return nil
			})
		})
		if err != nil {
			return st, err
		}
	}
	if err := co.clearControlState(ctx, st); err != nil {
		return st, err
	}
	co.logf(slog.LevelInfo, "reshard aborted; source ring restored",
		"from", st.From, "to", st.To, "phase", st.Phase)
	st.Phase = PhaseStable
	return st, nil
}

// acquireLease races the reshard lease until granted, waiting out a live
// coordinator (taking over one TTL after it stops renewing), then arms the
// store client's fence with the granted epoch so every subsequent
// coordinator write is rejected once a successor supersedes this run.
func (co *Coordinator) acquireLease(ctx context.Context) error {
	var attempt int
	for {
		var epoch int64
		err := co.locked(func() error {
			var lerr error
			epoch, lerr = co.cfg.Store.SetLeaseContext(ctx, ReshardLeaseKey, co.cfg.ID, co.cfg.TTL)
			if lerr == nil {
				co.cfg.Store.SetFence(ReshardLeaseKey, epoch)
			}
			return lerr
		})
		switch {
		case err == nil:
			co.epoch = epoch
			co.logf(slog.LevelInfo, "reshard coordinator lease acquired", "epoch", epoch)
			return nil
		case kvstore.IsLeaseHeldError(err):
			// A live coordinator exists; wait to take over if it dies.
			attempt = 0
		default:
			attempt++
			if attempt >= co.cfg.MaxAttempts {
				return fmt.Errorf("shard: reshard lease acquire: %w", err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(co.cfg.Poll):
		}
	}
}

// renewLoop keeps the lease fresh; losing it (superseded or fenced) cancels
// the run so a half-done step never races the successor.
func (co *Coordinator) renewLoop(ctx context.Context, cancel context.CancelFunc) {
	t := time.NewTicker(co.cfg.Renew)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			err := co.locked(func() error {
				_, lerr := co.cfg.Store.SetLeaseContext(ctx, ReshardLeaseKey, co.cfg.ID, co.cfg.TTL)
				return lerr
			})
			if err != nil && (kvstore.IsLeaseHeldError(err) || kvstore.IsFencedError(err)) {
				co.logf(slog.LevelWarn, "reshard coordinator superseded", "err", err)
				cancel()
				return
			}
		}
	}
}

// releaseLease resigns on the way out (best effort; the lease lapses anyway).
func (co *Coordinator) releaseLease() {
	_ = co.locked(func() error {
		co.cfg.Store.ClearFence()
		return co.cfg.Store.DelLease(ReshardLeaseKey, co.cfg.ID)
	})
}

// loadOrInit resumes the checkpointed migration or initializes a fresh one
// from the serving epoch.
func (co *Coordinator) loadOrInit(ctx context.Context, target int) (ReshardState, bool, error) {
	var st ReshardState
	var ok bool
	err := co.locked(func() error {
		var lerr error
		st, ok, lerr = LoadReshard(ctx, co.cfg.Store)
		return lerr
	})
	if err != nil {
		return st, false, err
	}
	if ok {
		if st.To != target {
			co.logf(slog.LevelWarn, "finishing in-flight reshard before new targets can be accepted",
				"inflight_to", st.To, "requested", target)
		}
		return st, true, nil
	}
	var es EpochState
	var haveEpoch bool
	err = co.locked(func() error {
		var lerr error
		es, haveEpoch, lerr = LoadEpoch(ctx, co.cfg.Store)
		return lerr
	})
	if err != nil {
		return ReshardState{}, false, err
	}
	if !haveEpoch {
		es = EpochState{Epoch: 1, Shards: co.cfg.BootShards, VNodes: co.cfg.BootVNodes, Phase: PhaseStable}
	}
	if es.Phase != PhaseStable {
		return ReshardState{}, false, fmt.Errorf("shard: epoch record mid-phase %q with no checkpoint; refusing", es.Phase)
	}
	if target <= es.Shards {
		return ReshardState{}, false, fmt.Errorf("shard: target %d does not grow the %d-shard ring", target, es.Shards)
	}
	return ReshardState{
		From: es.Shards, To: target, VNodes: es.VNodes,
		Epoch: es.Epoch, Phase: PhasePrepare,
	}, false, nil
}

// checkpoint persists the coordinator state (fenced).
//
//sblint:fencepath
func (co *Coordinator) checkpoint(ctx context.Context, st *ReshardState) error {
	return co.retry(ctx, "checkpoint", func(ctx context.Context) error {
		return co.locked(func() error { return saveReshard(ctx, co.cfg.Store, *st) })
	})
}

// publishEpoch moves the whole fleet: every Manager derives its routing from
// this record on its next poll (fenced).
//
//sblint:fencepath
func (co *Coordinator) publishEpoch(ctx context.Context, es EpochState) error {
	return co.retry(ctx, "publish-epoch", func(ctx context.Context) error {
		return co.locked(func() error { return SaveEpoch(ctx, co.cfg.Store, es) })
	})
}

// prepare publishes the target ring and waits until every added shard has a
// live leader — nodes observe the phase, grow their shard sets, and race the
// new leases.
func (co *Coordinator) prepare(ctx context.Context, st *ReshardState) error {
	if err := co.publishEpoch(ctx, EpochState{
		Epoch: st.Epoch, Shards: st.From, VNodes: st.VNodes,
		Phase: PhasePrepare, TargetShards: st.To,
	}); err != nil {
		return err
	}
	for s := st.From; s < st.To; s++ {
		if err := co.waitLeader(ctx, s); err != nil {
			return err
		}
	}
	st.Phase = PhaseCopy
	return co.checkpoint(ctx, st)
}

// copy bulk-copies every moving key into its target shard's prefix while
// writes keep flowing to the source owners (the journal-handoff delta pass
// re-copies what raced). Resumable per source shard; re-copying is
// idempotent (HCOPY replaces the destination).
func (co *Coordinator) copy(ctx context.Context, st *ReshardState) error {
	if err := co.publishEpoch(ctx, EpochState{
		Epoch: st.Epoch, Shards: st.From, VNodes: st.VNodes,
		Phase: PhaseCopy, TargetShards: st.To,
	}); err != nil {
		return err
	}
	if err := co.copyMoved(ctx, st, PhaseCopy, true); err != nil {
		return err
	}
	st.Phase = PhaseHandoff
	return co.checkpoint(ctx, st)
}

// handoff runs the barrier that makes the final copy exact: writes to moving
// keys are held fleet-wide (the phase flip does that), every source shard's
// leader drains its journal and acks at its current lease epoch, and the
// delta copy then runs against provably quiescent keys. If any source
// shard's leadership changes while the delta runs, its new leader may have
// landed journaled writes the scan missed — so the lease epochs are
// re-checked after the delta and the barrier re-runs until a pass sees no
// churn.
func (co *Coordinator) handoff(ctx context.Context, st *ReshardState) error {
	if err := co.publishEpoch(ctx, EpochState{
		Epoch: st.Epoch, Shards: st.From, VNodes: st.VNodes,
		Phase: PhaseHandoff, TargetShards: st.To,
	}); err != nil {
		return err
	}
	for {
		acked, err := co.waitAcks(ctx, st)
		if err != nil {
			return err
		}
		co.hook(PhaseHandoff, "delta")
		if err := co.copyMoved(ctx, st, PhaseHandoff, false); err != nil {
			return err
		}
		stable, err := co.acksStillCurrent(ctx, st, acked)
		if err != nil {
			return err
		}
		if stable {
			break
		}
		co.logf(slog.LevelWarn, "leadership churned during delta copy; re-running handoff barrier")
	}
	st.Phase = PhaseCutover
	return co.checkpoint(ctx, st)
}

// cutover bumps the ring epoch: the target ring serves, moved-key writes land
// on their new owners under the new owners' leases, and reads double up on
// the retired prefixes until every node has recovered. After the hold, moved
// source keys are retired (only those whose copy verifiably exists) and the
// fleet is declared stable.
func (co *Coordinator) cutover(ctx context.Context, st *ReshardState) error {
	if err := co.publishEpoch(ctx, EpochState{
		Epoch: st.Epoch + 1, Shards: st.To, VNodes: st.VNodes,
		Phase: PhaseCutover, PrevShards: st.From,
	}); err != nil {
		return err
	}
	// Every shard of the target ring must have a live leader before the
	// double-read window is allowed to close.
	for s := 0; s < st.To; s++ {
		if err := co.waitLeader(ctx, s); err != nil {
			return err
		}
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(co.cfg.CutoverHold):
	}
	co.hook(PhaseCutover, "retire")
	if err := co.retireMoved(ctx, st); err != nil {
		return err
	}
	if err := co.publishEpoch(ctx, EpochState{
		Epoch: st.Epoch + 1, Shards: st.To, VNodes: st.VNodes, Phase: PhaseStable,
	}); err != nil {
		return err
	}
	if err := co.clearControlState(ctx, *st); err != nil {
		return err
	}
	st.Phase = PhaseStable
	return nil
}

// copyMoved scans every source shard's call keys and copies the ones whose
// owner changes to the target ring. countProgress tracks Copied/Total and
// checkpoints (the bulk pass); the delta pass skips the bookkeeping.
func (co *Coordinator) copyMoved(ctx context.Context, st *ReshardState, phase string, countProgress bool) error {
	oldRing, err := NewRing(st.From, st.VNodes)
	if err != nil {
		return err
	}
	newRing, err := NewRing(st.To, st.VNodes)
	if err != nil {
		return err
	}
	start := 0
	if countProgress {
		start = st.NextShard
	}
	for s := start; s < st.From; s++ {
		prefix := KeyPrefix(s) + "call:"
		var keys []string
		if err := co.retry(ctx, phase+".scan", func(ctx context.Context) error {
			return co.locked(func() error {
				var kerr error
				keys, kerr = co.cfg.Store.KeysPrefixContext(ctx, prefix)
				return kerr
			})
		}); err != nil {
			return err
		}
		var sinceCheckpoint int
		for _, k := range keys {
			id, perr := strconv.ParseUint(strings.TrimPrefix(k, prefix), 10, 64)
			if perr != nil {
				continue // not call state (a lease under the shard prefix)
			}
			dstShard := newRing.Lookup(id)
			if dstShard == oldRing.Lookup(id) {
				continue
			}
			if countProgress {
				st.Total++
			}
			dst := KeyPrefix(dstShard) + "call:" + strconv.FormatUint(id, 10)
			key := k
			if err := co.retry(ctx, phase+".copy", func(ctx context.Context) error {
				return co.locked(func() error {
					_, herr := co.cfg.Store.HCopyContext(ctx, key, dst)
					return herr
				})
			}); err != nil {
				return err
			}
			if countProgress {
				st.Copied++
				sinceCheckpoint++
				if sinceCheckpoint >= reshardCheckpointEvery {
					sinceCheckpoint = 0
					if err := co.checkpoint(ctx, st); err != nil {
						return err
					}
				}
			}
			co.hook(phase, "copied:"+key)
		}
		if countProgress {
			st.NextShard = s + 1
			if err := co.checkpoint(ctx, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// retireMoved deletes moved keys from their source prefixes, each only after
// verifying its copy exists under the new owner.
func (co *Coordinator) retireMoved(ctx context.Context, st *ReshardState) error {
	oldRing, err := NewRing(st.From, st.VNodes)
	if err != nil {
		return err
	}
	newRing, err := NewRing(st.To, st.VNodes)
	if err != nil {
		return err
	}
	for s := 0; s < st.From; s++ {
		prefix := KeyPrefix(s) + "call:"
		var keys []string
		if err := co.retry(ctx, "retire.scan", func(ctx context.Context) error {
			return co.locked(func() error {
				var kerr error
				keys, kerr = co.cfg.Store.KeysPrefixContext(ctx, prefix)
				return kerr
			})
		}); err != nil {
			return err
		}
		for _, k := range keys {
			id, perr := strconv.ParseUint(strings.TrimPrefix(k, prefix), 10, 64)
			if perr != nil {
				continue
			}
			dstShard := newRing.Lookup(id)
			if dstShard == oldRing.Lookup(id) {
				continue
			}
			dst := KeyPrefix(dstShard) + "call:" + strconv.FormatUint(id, 10)
			key := k
			if err := co.retry(ctx, "retire.del", func(ctx context.Context) error {
				return co.locked(func() error {
					h, herr := co.cfg.Store.HGetAllContext(ctx, dst)
					if herr != nil {
						return herr
					}
					if len(h) == 0 {
						// The copy is missing (a write landed after the delta
						// — see the failure matrix). Keep the source key: a
						// stale duplicate is recoverable, a deleted original
						// is not.
						co.logf(slog.LevelWarn, "retire skipped: destination copy missing", "key", key)
						return nil
					}
					return co.cfg.Store.DelContext(ctx, key)
				})
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// clearControlState removes the checkpoint and the per-shard acks.
//
//sblint:fencepath
func (co *Coordinator) clearControlState(ctx context.Context, st ReshardState) error {
	return co.retry(ctx, "clear-state", func(ctx context.Context) error {
		return co.locked(func() error {
			if err := co.cfg.Store.DelContext(ctx, ReshardStateKey); err != nil {
				return err
			}
			for s := 0; s < st.From; s++ {
				if err := co.cfg.Store.DelContext(ctx, AckKey(s)); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// waitLeader polls until shard s's lease has a live owner.
func (co *Coordinator) waitLeader(ctx context.Context, s int) error {
	for {
		var owner string
		err := co.locked(func() error {
			var lerr error
			owner, _, _, lerr = co.cfg.Store.GetLease(LeaseKey(s))
			return lerr
		})
		if err == nil && owner != "" {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("shard: waiting for shard %d leader: %w", s, ctx.Err())
		case <-time.After(co.cfg.Poll):
		}
	}
}

// waitAcks blocks until every source shard's handoff ack matches its current
// lease epoch, returning the matched epochs. A shard whose leader died
// mid-drain re-acks at the successor's epoch (the successor drains its own
// journal before serving), so the wait converges as long as leaders keep
// getting elected.
func (co *Coordinator) waitAcks(ctx context.Context, st *ReshardState) (map[int]int64, error) {
	acked := make(map[int]int64, st.From)
	for {
		all := true
		for s := 0; s < st.From; s++ {
			var owner string
			var epoch int64
			var raw string
			err := co.locked(func() error {
				var lerr error
				owner, epoch, _, lerr = co.cfg.Store.GetLease(LeaseKey(s))
				if lerr != nil || owner == "" {
					return lerr
				}
				raw, lerr = co.cfg.Store.GetContext(ctx, AckKey(s))
				return lerr
			})
			if err != nil || owner == "" {
				all = false
				continue
			}
			ack, perr := strconv.ParseInt(raw, 10, 64)
			if perr != nil || ack != epoch {
				all = false
				continue
			}
			acked[s] = ack
		}
		if all {
			return acked, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("shard: waiting for journal-handoff acks: %w", ctx.Err())
		case <-time.After(co.cfg.Poll):
		}
	}
}

// acksStillCurrent re-checks that no source shard's leadership moved since
// its ack was collected.
func (co *Coordinator) acksStillCurrent(ctx context.Context, st *ReshardState, acked map[int]int64) (bool, error) {
	for s := 0; s < st.From; s++ {
		var owner string
		var epoch int64
		err := co.locked(func() error {
			var lerr error
			owner, epoch, _, lerr = co.cfg.Store.GetLease(LeaseKey(s))
			return lerr
		})
		if err != nil || owner == "" || epoch != acked[s] {
			if ctx.Err() != nil {
				return false, ctx.Err()
			}
			return false, nil
		}
	}
	return true, nil
}

// retry runs one coordinator step with capped, deterministically jittered
// backoff. Fenced errors abort immediately: the store has already granted
// the reshard lease to a successor, and retrying a superseded coordinator's
// write would race the resumed migration.
func (co *Coordinator) retry(ctx context.Context, step string, f func(ctx context.Context) error) error {
	for attempt := 1; ; attempt++ {
		err := f(ctx)
		if err == nil {
			return nil
		}
		if kvstore.IsFencedError(err) {
			return fmt.Errorf("shard: reshard step %s superseded: %w", step, err)
		}
		if attempt >= co.cfg.MaxAttempts {
			return fmt.Errorf("shard: reshard step %s: %w (after %d attempts)", step, err, attempt)
		}
		if co.cfg.Metrics != nil {
			co.cfg.Metrics.ReshardRetries.Inc()
		}
		co.logf(slog.LevelWarn, "reshard step retrying", "step", step, "attempt", attempt, "err", err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(co.backoff(attempt)):
		}
	}
}

// backoff is capped exponential with deterministic jitter (splitmix of the
// attempt counter — no global randomness, so drills replay identically).
func (co *Coordinator) backoff(attempt int) time.Duration {
	d := co.cfg.BackoffBase << (attempt - 1)
	if d > co.cfg.BackoffMax || d <= 0 {
		d = co.cfg.BackoffMax
	}
	jitter := time.Duration(mix64(uint64(attempt)) % uint64(d/2+1))
	return d/2 + jitter
}

// phaseSpan opens a tracing span for one phase.
func (co *Coordinator) phaseSpan(ctx context.Context, phase string) (context.Context, *span.Span) {
	if co.cfg.Tracer == nil {
		return ctx, nil
	}
	return co.cfg.Tracer.Start(ctx, "reshard."+phase)
}
