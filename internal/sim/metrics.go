package sim

import "switchboard/internal/obs"

// Metrics mirrors Run's tallies into an obs registry. The simulator is a
// determinism-linted package, so only counters appear here — no wall-clock
// timings.
type Metrics struct {
	Calls      *obs.Counter
	Placed     *obs.Counter
	Overflowed *obs.Counter
	Unknown    *obs.Counter
}

// NewMetrics registers the simulator metric families on r (nil r yields a
// usable all-nil bundle).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Calls:      r.Counter("sb_sim_calls_total", "Calls replayed by the simulator."),
		Placed:     r.Counter("sb_sim_placed_total", "Replayed calls hosted within compute capacity."),
		Overflowed: r.Counter("sb_sim_overflowed_total", "Replayed calls admitted beyond compute capacity."),
		Unknown:    r.Counter("sb_sim_unknown_configs_total", "Replayed calls outside the plan's config universe."),
	}
}

// SetMetrics attaches a telemetry bundle; Run mirrors its tallies into it
// once per replay (aggregated at the end, off the per-event path).
func (s *Simulator) SetMetrics(m *Metrics) { s.metrics = m }

// mirror adds one run's tallies to the attached bundle, if any.
func (s *Simulator) mirror(res *Result) {
	if s.metrics == nil {
		return
	}
	s.metrics.Calls.Add(uint64(res.Calls))
	s.metrics.Placed.Add(uint64(res.Placed))
	s.metrics.Overflowed.Add(uint64(res.Overflowed))
	s.metrics.Unknown.Add(uint64(res.UnknownConfigs))
}
