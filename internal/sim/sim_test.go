package sim

import (
	"sync"
	"testing"
	"time"

	"switchboard/internal/allocate"
	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/provision"
	"switchboard/internal/records"
	"switchboard/internal/trace"
)

type fixture struct {
	lm    *provision.LoadModel
	est   *records.LatencyEstimator
	plan  *provision.Plan
	alloc *allocate.Result
	recs  []*model.CallRecord
	start time.Time
}

var (
	fixtureOnce sync.Once
	fixtureVal  *fixture
)

// buildFixture builds (once) the shared provisioning fixture; tests must not
// mutate it.
func buildFixture(t *testing.T) *fixture {
	t.Helper()
	fixtureOnce.Do(func() { fixtureVal = buildFixtureOnce(t) })
	if fixtureVal == nil {
		t.Fatal("fixture failed to build")
	}
	return fixtureVal
}

func buildFixtureOnce(t *testing.T) *fixture {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Days = 1
	cfg.CallsPerDay = 1500
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := geo.DefaultWorld()
	db := records.New(cfg.Start, w)
	var recs []*model.CallRecord
	g.EachCall(func(r *model.CallRecord) bool {
		db.Add(r)
		recs = append(recs, r)
		return true
	})
	in := &provision.Inputs{
		World:              w,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(60),
		LatencyThresholdMs: 120,
		WithBackup:         true,
		SlotStride:         8,
	}
	lm, err := provision.NewLoadModel(in)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := provision.Switchboard(in)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := allocate.Build(lm, plan.Cores, plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{lm: lm, est: db.Estimator(20), plan: plan, alloc: alloc, recs: recs, start: cfg.Start}
}

func TestNewValidation(t *testing.T) {
	f := buildFixture(t)
	if _, err := New(f.lm, f.est, []float64{1}, f.plan.LinkGbps); err == nil {
		t.Error("bad capacity vector should error")
	}
	s, err := New(f.lm, f.est, f.plan.Cores, f.plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(f.recs, nil); err == nil {
		t.Error("nil policy should error")
	}
}

func TestGreedyLocalWithinProvisionedCapacity(t *testing.T) {
	f := buildFixture(t)
	s, err := New(f.lm, f.est, f.plan.Cores, f.plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(f.recs, &GreedyLocalPolicy{LM: f.lm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != len(f.recs) {
		t.Fatalf("simulated %d of %d calls", res.Calls, len(f.recs))
	}
	// The plan was provisioned (with backup headroom) for this very
	// demand; integral replay should overflow rarely, if at all.
	if rate := res.OverflowRate(); rate > 0.08 {
		t.Errorf("overflow rate %.3f too high for in-sample replay", rate)
	}
	if res.MeanACL <= 0 || res.MeanACL > 120 {
		t.Errorf("mean ACL %.1f implausible", res.MeanACL)
	}
	// Energy conservation: usage returns to zero after all calls end
	// (checked indirectly: peaks are finite and positive somewhere).
	var totalPeak float64
	for _, p := range res.PeakCores {
		totalPeak += p
	}
	if totalPeak <= 0 {
		t.Error("no compute peaks recorded")
	}
}

func TestPlanPolicyFollowsPlan(t *testing.T) {
	f := buildFixture(t)
	s, err := New(f.lm, f.est, f.plan.Cores, f.plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	pol := &PlanPolicy{LM: f.lm, Alloc: f.alloc.Alloc, Origin: f.start}
	res, err := s.Run(f.recs, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 || res.Placed == 0 {
		t.Fatalf("res = %+v", res)
	}
	if rate := res.OverflowRate(); rate > 0.08 {
		t.Errorf("plan policy overflow rate %.3f", rate)
	}
	// The plan policy's realized latency should be within a factor of the
	// greedy-local optimum (it follows a latency-minimizing plan).
	greedy, err := s.Run(f.recs, &GreedyLocalPolicy{LM: f.lm})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanACL > 2*greedy.MeanACL+5 {
		t.Errorf("plan ACL %.1f far above greedy %.1f", res.MeanACL, greedy.MeanACL)
	}
}

func TestScarcityOverflowsAreCounted(t *testing.T) {
	f := buildFixture(t)
	tiny := make([]float64, len(f.plan.Cores))
	links := make([]float64, len(f.plan.LinkGbps))
	s, err := New(f.lm, f.est, tiny, links)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(f.recs, &GreedyLocalPolicy{LM: f.lm})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflowed != res.Calls {
		t.Errorf("with zero capacity, %d/%d overflowed", res.Overflowed, res.Calls)
	}
	if res.StrandedCores <= 0 {
		t.Errorf("zero-capacity run should report stranded load, got %g", res.StrandedCores)
	}
}

func TestRealizedPeaksTrackCapacity(t *testing.T) {
	f := buildFixture(t)
	s, err := New(f.lm, f.est, f.plan.Cores, f.plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(f.recs, &GreedyLocalPolicy{LM: f.lm})
	if err != nil {
		t.Fatal(err)
	}
	// With backup headroom the plan should leave slack. Integral,
	// within-slot-bursty arrivals plus tail (unplanned-config) traffic
	// can push a small DC past its planned share, but not wildly.
	if res.MaxCoreUtil > 2.0 {
		t.Errorf("max core utilization %.2f", res.MaxCoreUtil)
	}
	// In absolute terms any overshoot stays small (a few cores).
	if res.MaxCoreOvershoot > 3.0 {
		t.Errorf("max absolute core overshoot %.2f cores", res.MaxCoreOvershoot)
	}
	// The utilization timeline is consistent with the global peaks.
	if len(res.CoreTimeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	maxOfTimeline := make([]float64, len(res.PeakCores))
	for _, row := range res.CoreTimeline {
		for x, v := range row {
			if v > maxOfTimeline[x] {
				maxOfTimeline[x] = v
			}
		}
	}
	for x := range res.PeakCores {
		if maxOfTimeline[x] > res.PeakCores[x]+1e-9 {
			t.Fatalf("timeline max %g above global peak %g at DC %d", maxOfTimeline[x], res.PeakCores[x], x)
		}
	}
	util := res.UtilizationAt(0, f.plan.Cores)
	if len(util) != len(f.plan.Cores) {
		t.Fatal("utilization vector sized wrong")
	}
	if out := res.UtilizationAt(-1, f.plan.Cores); out[0] != 0 {
		t.Error("out-of-range slot should be zero")
	}
}

func TestUnknownConfigsHandled(t *testing.T) {
	f := buildFixture(t)
	s, err := New(f.lm, f.est, f.plan.Cores, f.plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	// A config certainly outside the planned universe.
	exotic := &model.CallRecord{
		ID:       999999,
		Start:    f.start.Add(time.Hour),
		Duration: 20 * time.Minute,
		Legs: []model.LegRecord{
			{Participant: 1, Country: "NZ", Media: model.Video},
			{Participant: 2, Country: "CL", Media: model.Video, JoinOffset: time.Minute},
			{Participant: 3, Country: "KE", Media: model.Video, JoinOffset: time.Minute},
		},
	}
	res, err := s.Run([]*model.CallRecord{exotic}, &GreedyLocalPolicy{LM: f.lm})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnknownConfigs != 1 || res.Calls != 1 {
		t.Errorf("res = %+v", res)
	}
	if res.MeanACL <= 0 {
		t.Error("unknown config should still get an ACL")
	}
}
