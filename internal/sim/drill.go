package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"switchboard/internal/des"
	"switchboard/internal/model"
	"switchboard/internal/provision"
)

// DrillResult reports a DC-failure drill: the simulator replays calls
// normally until the failure instant, then kills one DC — every call hosted
// there is re-placed onto surviving DCs, and all later arrivals avoid it.
// Comparing a backup-provisioned plan against a serving-only plan under the
// same drill shows what the paper's failure scenarios (Eq 7-8) actually buy.
type DrillResult struct {
	// FailedDC is the killed datacenter.
	FailedDC int
	// Replaced counts calls that were live on the failed DC and had to
	// move.
	Replaced int
	// ReplaceOverflowed counts re-placements that exceeded surviving
	// capacity at the moment of failover.
	ReplaceOverflowed int
	// PostOverflowed counts post-failure arrivals that exceeded capacity.
	PostOverflowed int
	// PostCalls counts post-failure arrivals.
	PostCalls int
	// MeanACLBefore and MeanACLAfter are realized ACLs for calls placed
	// before and after the failure instant (re-placed calls count in
	// "after" with their new DC).
	MeanACLBefore, MeanACLAfter float64
	// MaxCoreUtilAfter is the peak post-failure utilization across
	// surviving DCs with nonzero capacity.
	MaxCoreUtilAfter float64
}

// OverflowRateAfter returns the post-failure overflow fraction, counting
// both forced re-placements and new arrivals.
func (r *DrillResult) OverflowRateAfter() float64 {
	total := r.Replaced + r.PostCalls
	if total == 0 {
		return 0
	}
	return float64(r.ReplaceOverflowed+r.PostOverflowed) / float64(total)
}

// maskedPolicy hides a failed DC from the wrapped policy's candidate set.
type maskedPolicy struct {
	inner  Policy
	failed int
}

func (m *maskedPolicy) Name() string { return m.inner.Name() }

func (m *maskedPolicy) Choose(c int, at time.Time, candidates []int, u *Usage) int {
	alive := make([]int, 0, len(candidates))
	for _, x := range candidates {
		if x != m.failed {
			alive = append(alive, x)
		}
	}
	if len(alive) == 0 {
		// Nothing eligible survives: the inner policy gets the full
		// DC range minus the failed one (min-ACL escape hatch).
		for x := range u.CapCores {
			if x != m.failed {
				alive = append(alive, x)
			}
		}
	}
	return m.inner.Choose(c, at, alive, u)
}

// RunFailureDrill replays the records with DC failedDC failing at failAt.
// Before the failure the run is identical to Run; at the instant of failure
// every call hosted at the failed DC is re-placed (lowest-ACL surviving
// candidate with headroom, else lowest-ACL outright), and from then on the
// failed DC is masked out of every placement.
func (s *Simulator) RunFailureDrill(recs []*model.CallRecord, p Policy, failedDC int, failAt time.Time) (*DrillResult, error) {
	if p == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if failedDC < 0 || failedDC >= len(s.world.DCs()) {
		return nil, fmt.Errorf("sim: invalid failed DC %d", failedDC)
	}

	q := scheduleReplay(recs)

	w := s.world
	u := &Usage{
		Cores:    make([]float64, len(w.DCs())),
		Gbps:     make([]float64, len(w.Links())),
		CapCores: s.capCores,
		CapGbps:  s.capGbps,
	}
	res := &DrillResult{FailedDC: failedDC}
	active := make(map[uint64]*drillPlacement, 1024)
	failed := false
	var aclBeforeSum, aclAfterSum float64
	var nBefore, nAfter int
	masked := &maskedPolicy{inner: p, failed: failedDC}

	remove := func(pl *drillPlacement) {
		u.Cores[pl.dc] -= pl.cores
		for _, ll := range pl.links {
			u.Gbps[ll.Link] -= ll.Gbps
		}
	}
	add := func(pl *drillPlacement) {
		u.Cores[pl.dc] += pl.cores
		for _, ll := range pl.links {
			u.Gbps[ll.Link] += ll.Gbps
		}
	}
	trackPostUtil := func() {
		for x, cap := range s.capCores {
			if x == failedDC || cap <= 1e-9 {
				continue
			}
			if r := u.Cores[x] / cap; r > res.MaxCoreUtilAfter {
				res.MaxCoreUtilAfter = r
			}
		}
	}

	failover := func() {
		// Re-place every call on the failed DC, in call-ID order for
		// determinism.
		var ids []uint64
		for id, pl := range active {
			if pl.dc == failedDC {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			pl := active[id]
			remove(pl)
			res.Replaced++
			newDC := s.failoverDC(pl, failedDC, u)
			pl.dc = newDC
			if pl.c >= 0 {
				pl.links = s.lm.LinkLoads(pl.c, newDC)
			} else {
				pl.links = pathLoadsFor(w, pl.cfg, newDC)
			}
			if !u.FitsCompute(newDC, pl.cores) {
				res.ReplaceOverflowed++
			}
			add(pl)
			if pl.c >= 0 {
				aclAfterSum += s.lm.ACL(pl.c, newDC)
			} else {
				aclAfterSum += s.est.ACL(pl.cfg, newDC)
			}
			nAfter++
		}
		trackPostUtil()
	}

	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		at := replayAt(ev)
		if !failed && !at.Before(failAt) {
			failed = true
			failover()
		}
		if ev.Kind == des.KindReplayEnd {
			if pl, ok := active[ev.Rec.ID]; ok {
				delete(active, ev.Rec.ID)
				remove(pl)
			}
			continue
		}

		cfg := ev.Rec.Config()
		pl := &drillPlacement{c: -1, cfg: cfg}
		if c, known := s.configIx[cfg.Key()]; known {
			pl.c = c
			pl.cores = s.lm.ComputeLoad(c)
			var dc int
			if failed {
				dc = masked.Choose(c, at, s.lm.Allowed(c), u)
			} else {
				dc = p.Choose(c, at, s.lm.Allowed(c), u)
			}
			if dc < 0 || dc >= len(w.DCs()) {
				return nil, fmt.Errorf("sim: policy %q chose invalid DC %d", p.Name(), dc)
			}
			pl.dc = dc
			pl.links = s.lm.LinkLoads(c, dc)
		} else {
			pl.cores = cfg.ComputeLoad()
			maj, _ := cfg.Spread.Majority()
			pl.dc = -1
			for _, cand := range w.DCsByLatency(maj) {
				if failed && cand == failedDC {
					continue
				}
				ll := pathLoadsFor(w, cfg, cand)
				if u.FitsAt(cand, pl.cores, ll) {
					pl.dc, pl.links = cand, ll
					break
				}
			}
			if pl.dc < 0 {
				for _, cand := range w.DCsByLatency(maj) {
					if !failed || cand != failedDC {
						pl.dc = cand
						break
					}
				}
				pl.links = pathLoadsFor(w, cfg, pl.dc)
			}
		}

		fits := u.FitsCompute(pl.dc, pl.cores)
		var acl float64
		if pl.c >= 0 {
			acl = s.lm.ACL(pl.c, pl.dc)
		} else {
			acl = s.est.ACL(pl.cfg, pl.dc)
		}
		if failed {
			res.PostCalls++
			if !fits {
				res.PostOverflowed++
			}
			aclAfterSum += acl
			nAfter++
		} else {
			// Pre-failure overflow is Run's subject, not the drill's;
			// it still shows up in utilization.
			aclBeforeSum += acl
			nBefore++
		}
		add(pl)
		if failed {
			trackPostUtil()
		}
		active[ev.Rec.ID] = pl
	}
	if !failed {
		return nil, fmt.Errorf("sim: failure instant %v after the last event", failAt)
	}

	if nBefore > 0 {
		res.MeanACLBefore = aclBeforeSum / float64(nBefore)
	}
	if nAfter > 0 {
		res.MeanACLAfter = aclAfterSum / float64(nAfter)
	}
	return res, nil
}

// failoverDC picks where a displaced call goes: the lowest-ACL surviving
// candidate with headroom, else the lowest-ACL surviving candidate.
func (s *Simulator) failoverDC(pl *drillPlacement, failedDC int, u *Usage) int {
	var candidates []int
	if pl.c >= 0 {
		candidates = s.lm.Allowed(pl.c)
	}
	best, bestACL := -1, math.Inf(1)
	consider := func(x int, acl float64, needFit bool) {
		if x == failedDC {
			return
		}
		if needFit && !u.FitsAt(x, pl.cores, linkLoadsAt(s, pl, x)) {
			return
		}
		if acl < bestACL {
			best, bestACL = x, acl
		}
	}
	for pass := 0; pass < 2 && best < 0; pass++ {
		needFit := pass == 0
		if pl.c >= 0 {
			for _, x := range candidates {
				consider(x, s.lm.ACL(pl.c, x), needFit)
			}
		}
		if best < 0 {
			for x := range s.world.DCs() {
				var acl float64
				if pl.c >= 0 {
					acl = s.lm.ACL(pl.c, x)
				} else {
					acl = s.est.ACL(pl.cfg, x)
				}
				consider(x, acl, needFit)
			}
		}
	}
	return best
}

func linkLoadsAt(s *Simulator, pl *drillPlacement, x int) []provision.LinkLoad {
	if pl.c >= 0 {
		return s.lm.LinkLoads(pl.c, x)
	}
	return pathLoadsFor(s.world, pl.cfg, x)
}

// drillPlacement is the drill's per-call bookkeeping: where the call lives
// and what it consumes. c is the config index, or -1 for configs outside the
// planned universe.
type drillPlacement struct {
	dc    int
	c     int
	cfg   model.CallConfig
	cores float64
	links []provision.LinkLoad
}
