package sim

import (
	"testing"
	"time"

	"switchboard/internal/provision"
)

func TestDrillValidation(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("minutes-long single-threaded replay; skipped under -short and -race")
	}
	f := buildFixture(t)
	s, err := New(f.lm, f.est, f.plan.Cores, f.plan.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunFailureDrill(f.recs, nil, 0, f.start); err == nil {
		t.Error("nil policy should error")
	}
	if _, err := s.RunFailureDrill(f.recs, &GreedyLocalPolicy{LM: f.lm}, 99, f.start); err == nil {
		t.Error("invalid DC should error")
	}
	if _, err := s.RunFailureDrill(f.recs, &GreedyLocalPolicy{LM: f.lm}, 0, f.start.AddDate(0, 0, 30)); err == nil {
		t.Error("failure after the trace should error")
	}
}

// TestDrillBackupAbsorbsFailure is the point of backup provisioning: under a
// DC failure mid-peak, the backup-provisioned plan absorbs the displaced and
// subsequent calls, while a serving-only plan overflows much more.
func TestDrillBackupAbsorbsFailure(t *testing.T) {
	f := buildFixture(t)

	// Serving-only plan for the same demand.
	in := &provision.Inputs{
		World:              f.lm.World(),
		Latency:            f.est,
		Demand:             f.lm.Demand(),
		LatencyThresholdMs: 120,
		WithBackup:         false,
	}
	servingOnly, err := provision.Switchboard(in)
	if err != nil {
		t.Fatal(err)
	}

	// Fail the busiest DC of the backup plan at mid-day (around the
	// global peak for this trace).
	failed := 0
	for x, cores := range f.plan.Cores {
		if cores > f.plan.Cores[failed] {
			failed = x
		}
	}
	failAt := f.start.Add(9 * time.Hour)

	run := func(cores, links []float64) *DrillResult {
		s, err := New(f.lm, f.est, cores, links)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunFailureDrill(f.recs, &GreedyLocalPolicy{LM: f.lm}, failed, failAt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withBackup := run(f.plan.Cores, f.plan.LinkGbps)
	withoutBackup := run(servingOnly.Cores, servingOnly.LinkGbps)

	if withBackup.Replaced == 0 {
		t.Fatalf("drill displaced no calls (failed DC %d); result %+v", failed, withBackup)
	}
	if withBackup.PostCalls == 0 {
		t.Fatal("no post-failure arrivals")
	}
	// The backup plan absorbs the planned demand; residual overflow comes
	// from tail traffic outside the planned config universe (whose
	// cushion headroom died with the DC) and integral burstiness.
	if rate := withBackup.OverflowRateAfter(); rate > 0.25 {
		t.Errorf("backup plan post-failure overflow %.3f, want modest", rate)
	}
	// The serving-only plan must do strictly worse.
	if withoutBackup.OverflowRateAfter() <= withBackup.OverflowRateAfter() {
		t.Errorf("serving-only overflow %.3f not above backup plan %.3f",
			withoutBackup.OverflowRateAfter(), withBackup.OverflowRateAfter())
	}
	// Latency degrades gracefully, not catastrophically.
	if withBackup.MeanACLAfter > withBackup.MeanACLBefore*4+20 {
		t.Errorf("post-failure ACL %.1f vs %.1f before", withBackup.MeanACLAfter, withBackup.MeanACLBefore)
	}
	if withBackup.MaxCoreUtilAfter <= 0 {
		t.Error("no post-failure utilization recorded")
	}
}
