// Package sim is a discrete-event, call-level simulator: it replays
// individual calls (real start times, durations, and spreads) against a
// provisioning plan and a placement policy, tracking instantaneous per-DC
// compute and per-link bandwidth usage, realized average call latency, and
// capacity violations.
//
// The provisioning LP reasons about fractional call counts per 30-minute
// slot; production traffic is integral and bursty within slots. The paper
// validates its plans by replaying Teams calls; this simulator plays that
// role for the synthetic substrate — it answers "does the plan actually
// carry the calls?" rather than "does the LP bound the averages?".
//
// Event sequencing runs on internal/des's shared-clock queue: replay events
// are keyed (instant, ends-before-starts, call ID), reproducing exactly the
// ordering this package has always used, so results are stable across the
// migration while both simulators share one scheduling core.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"switchboard/internal/des"
	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/obs"
	"switchboard/internal/provision"
	"switchboard/internal/records"
)

// Usage is the simulator's live resource view, exposed to policies.
type Usage struct {
	// Cores[x] is the compute currently consumed at DC x.
	Cores []float64
	// Gbps[l] is the bandwidth currently consumed on link l.
	Gbps []float64
	// CapCores and CapGbps are the provisioned capacities.
	CapCores []float64
	CapGbps  []float64
}

// ComputeHeadroom returns the free cores at DC x.
func (u *Usage) ComputeHeadroom(x int) float64 { return u.CapCores[x] - u.Cores[x] }

// FitsAt reports whether one call of the given loads fits at DC x without
// exceeding compute or any link capacity. Policies use it to prefer
// placements that stay inside the plan on both resources.
func (u *Usage) FitsAt(x int, cores float64, links []provision.LinkLoad) bool {
	if !u.FitsCompute(x, cores) {
		return false
	}
	for _, ll := range links {
		if u.Gbps[ll.Link]+ll.Gbps > u.CapGbps[ll.Link]+1e-9 {
			return false
		}
	}
	return true
}

// FitsCompute reports whether the call's cores fit at DC x. Compute is the
// hard resource: an MP server either exists or it doesn't. WAN capacity, by
// contrast, is the *provisioned peak* the plan pays for — physical links are
// far larger, so exceeding it degrades cost, not calls (tracked via
// Result.LinkExcessGbps).
func (u *Usage) FitsCompute(x int, cores float64) bool {
	return u.Cores[x]+cores <= u.CapCores[x]+1e-9
}

// Policy chooses the hosting DC for an arriving call. candidates are the
// latency-feasible DCs (Eq 4 filtering, min-ACL fallback applied); the
// policy may return any DC, but choosing outside candidates or above
// capacity is counted against it by the simulator.
type Policy interface {
	Name() string
	// Choose returns the DC for one call of config index c (within the
	// LoadModel's config universe) arriving at the given time.
	Choose(c int, at time.Time, candidates []int, u *Usage) int
}

// Releaser is an optional Policy extension: the simulator notifies it when a
// call it placed ends, so quota-tracking policies can tally usage the way
// §5.4(b) prescribes ("as new calls arrive and old calls end ... resource
// usage tallied up accurately").
type Releaser interface {
	Release(c int, startedAt time.Time, dc int)
}

// Result summarizes one simulation run.
type Result struct {
	Policy string
	// Calls is the number of simulated calls; Placed counts those hosted
	// within compute capacity, Overflowed those admitted beyond it (they
	// are still hosted — conferencing calls are not droppable — but
	// flagged). WAN exceedance is cost, not failure; see LinkExcessGbps.
	Calls      int
	Placed     int
	Overflowed int
	// LinkExcessGbps sums, over links, the realized peak beyond the
	// provisioned capacity — the extra WAN the plan would have had to
	// pay for.
	LinkExcessGbps float64
	// MeanACL is the realized call-weighted average latency (ms).
	MeanACL float64
	// PeakCores / PeakGbps are the realized per-resource peaks.
	PeakCores []float64
	PeakGbps  []float64
	// MaxCoreUtil / MaxLinkUtil are the maximum realized peak/capacity
	// ratios across DCs / links with at least utilFloor capacity (tiny
	// placements make ratios on near-zero-capacity resources meaningless;
	// see MaxCoreOvershoot for the absolute view).
	MaxCoreUtil float64
	MaxLinkUtil float64
	// MaxCoreOvershoot is the largest absolute excess (peak − capacity,
	// in cores) across all DCs, including near-zero-capacity ones.
	MaxCoreOvershoot float64
	// StrandedCores / StrandedGbps are peak loads that landed on DCs /
	// links with zero provisioned capacity (traffic from configs outside
	// the planned universe placed by the nearest-DC rule; at production
	// coverage this is negligible, at small synthetic coverage it is
	// worth watching).
	StrandedCores float64
	StrandedGbps  float64
	// UnknownConfigs counts calls whose config was outside the plan's
	// config universe (placed by nearest-DC rule).
	UnknownConfigs int
	// CoreTimeline[slot][dc] is the peak compute usage at the DC during
	// each 30-minute slot of the replay (slot 0 starts at the first
	// event), for utilization plots and post-hoc analysis.
	CoreTimeline [][]float64
}

// UtilizationAt returns the per-DC utilization ratios for one timeline slot
// (zero capacity yields zero).
func (r *Result) UtilizationAt(slot int, capCores []float64) []float64 {
	out := make([]float64, len(capCores))
	if slot < 0 || slot >= len(r.CoreTimeline) {
		return out
	}
	for x, cap := range capCores {
		if cap > 1e-9 {
			out[x] = r.CoreTimeline[slot][x] / cap
		}
	}
	return out
}

// OverflowRate returns Overflowed / Calls.
func (r *Result) OverflowRate() float64 {
	if r.Calls == 0 {
		return 0
	}
	return float64(r.Overflowed) / float64(r.Calls)
}

// Simulator replays call records against a plan.
type Simulator struct {
	lm       *provision.LoadModel
	world    *geo.World
	est      *records.LatencyEstimator
	capCores []float64
	capGbps  []float64
	configIx map[string]int
	metrics  *Metrics
}

// New builds a simulator over the load model's config universe and the given
// provisioned capacities.
func New(lm *provision.LoadModel, est *records.LatencyEstimator, capCores, capGbps []float64) (*Simulator, error) {
	w := lm.World()
	if len(capCores) != len(w.DCs()) || len(capGbps) != len(w.Links()) {
		return nil, fmt.Errorf("sim: capacity vectors sized %d/%d, want %d/%d",
			len(capCores), len(capGbps), len(w.DCs()), len(w.Links()))
	}
	s := &Simulator{
		lm:       lm,
		world:    w,
		est:      est,
		capCores: capCores,
		capGbps:  capGbps,
		configIx: make(map[string]int, len(lm.Demand().Configs)),
	}
	for i, cfg := range lm.Demand().Configs {
		s.configIx[cfg.Key()] = i
	}
	return s, nil
}

// scheduleReplay loads the records into a des event queue. The key — instant
// first, ends before starts (PriDepart < PriArrive), then call ID as the
// sequence — reproduces the comparator this package sorted with before the
// engines shared a queue, so replay ordering (and every published number) is
// unchanged.
func scheduleReplay(recs []*model.CallRecord) *des.Queue {
	q := des.NewQueue(2 * len(recs))
	for _, r := range recs {
		if len(r.Legs) == 0 {
			continue
		}
		q.Push(des.Event{At: r.Start.UnixNano(), Seq: r.ID, Pri: des.PriArrive, Kind: des.KindReplayStart, Rec: r})
		q.Push(des.Event{At: r.Start.Add(r.Duration).UnixNano(), Seq: r.ID, Pri: des.PriDepart, Kind: des.KindReplayEnd, Rec: r})
	}
	return q
}

// replayAt reconstructs an event's wall-clock instant from its record.
func replayAt(ev des.Event) time.Time {
	if ev.Kind == des.KindReplayStart {
		return ev.Rec.Start
	}
	return ev.Rec.Start.Add(ev.Rec.Duration)
}

// Run replays the records in time order under the policy.
func (s *Simulator) Run(recs []*model.CallRecord, p Policy) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	q := scheduleReplay(recs)

	w := s.world
	u := &Usage{
		Cores:    make([]float64, len(w.DCs())),
		Gbps:     make([]float64, len(w.Links())),
		CapCores: s.capCores,
		CapGbps:  s.capGbps,
	}
	res := &Result{
		Policy:    p.Name(),
		PeakCores: make([]float64, len(w.DCs())),
		PeakGbps:  make([]float64, len(w.Links())),
	}
	type placement struct {
		dc      int
		c       int // config index, -1 when outside the plan universe
		started time.Time
		cores   float64
		links   []provision.LinkLoad
	}
	active := make(map[uint64]placement, 1024)
	var aclSum float64
	releaser, _ := p.(Releaser)
	var origin time.Time
	originSet := false
	trackTimeline := func(at time.Time, dc int) {
		slot := model.SlotIndex(origin, at)
		if slot < 0 {
			return
		}
		for len(res.CoreTimeline) <= slot {
			res.CoreTimeline = append(res.CoreTimeline, make([]float64, len(w.DCs())))
		}
		if u.Cores[dc] > res.CoreTimeline[slot][dc] {
			res.CoreTimeline[slot][dc] = u.Cores[dc]
		}
	}

	for {
		ev, ok := q.Pop()
		if !ok {
			break
		}
		at := replayAt(ev)
		if !originSet {
			origin, originSet = at, true
		}
		if ev.Kind == des.KindReplayEnd {
			pl, ok := active[ev.Rec.ID]
			if !ok {
				continue
			}
			delete(active, ev.Rec.ID)
			u.Cores[pl.dc] -= pl.cores
			for _, ll := range pl.links {
				u.Gbps[ll.Link] -= ll.Gbps
			}
			if releaser != nil && pl.c >= 0 {
				releaser.Release(pl.c, pl.started, pl.dc)
			}
			continue
		}

		cfg := ev.Rec.Config()
		c, known := s.configIx[cfg.Key()]
		var dc int
		var cores float64
		var links []provision.LinkLoad
		if known {
			dc = p.Choose(c, at, s.lm.Allowed(c), u)
			if dc < 0 || dc >= len(w.DCs()) {
				return nil, fmt.Errorf("sim: policy %q chose invalid DC %d", p.Name(), dc)
			}
			cores = s.lm.ComputeLoad(c)
			links = s.lm.LinkLoads(c, dc)
			aclSum += s.lm.ACL(c, dc)
		} else {
			// Outside the planned config universe: the §5.4
			// unanticipated-config rule sends the call to the
			// majority country's closest DC; like any real
			// controller we prefer a close DC that still has
			// headroom before overloading the closest one.
			res.UnknownConfigs++
			maj, _ := cfg.Spread.Majority()
			cores = cfg.ComputeLoad()
			dc = -1
			for _, cand := range w.DCsByLatency(maj) {
				ll := pathLoadsFor(w, cfg, cand)
				if u.FitsAt(cand, cores, ll) {
					dc, links = cand, ll
					break
				}
			}
			if dc < 0 {
				dc = w.NearestDC(maj, true)
				if dc < 0 {
					dc = 0
				}
				links = pathLoadsFor(w, cfg, dc)
			}
			aclSum += s.est.ACL(cfg, dc)
		}

		if u.FitsCompute(dc, cores) {
			res.Placed++
		} else {
			res.Overflowed++
		}
		u.Cores[dc] += cores
		for _, ll := range links {
			u.Gbps[ll.Link] += ll.Gbps
		}
		if u.Cores[dc] > res.PeakCores[dc] {
			res.PeakCores[dc] = u.Cores[dc]
		}
		trackTimeline(at, dc)
		for _, ll := range links {
			if u.Gbps[ll.Link] > res.PeakGbps[ll.Link] {
				res.PeakGbps[ll.Link] = u.Gbps[ll.Link]
			}
		}
		cIdx := -1
		if known {
			cIdx = c
		}
		active[ev.Rec.ID] = placement{dc: dc, c: cIdx, started: at, cores: cores, links: links}
		res.Calls++
	}

	if res.Calls > 0 {
		res.MeanACL = aclSum / float64(res.Calls)
	}
	for x, peak := range res.PeakCores {
		if s.capCores[x] >= coreUtilFloor {
			if r := peak / s.capCores[x]; r > res.MaxCoreUtil {
				res.MaxCoreUtil = r
			}
		} else if s.capCores[x] <= 1e-9 && peak > res.StrandedCores {
			res.StrandedCores = peak
		}
		if over := peak - s.capCores[x]; over > res.MaxCoreOvershoot {
			res.MaxCoreOvershoot = over
		}
	}
	for l, peak := range res.PeakGbps {
		if s.capGbps[l] >= linkUtilFloor {
			if r := peak / s.capGbps[l]; r > res.MaxLinkUtil {
				res.MaxLinkUtil = r
			}
		} else if s.capGbps[l] <= 1e-9 && peak > res.StrandedGbps {
			res.StrandedGbps = peak
		}
		if over := peak - s.capGbps[l]; over > 0 {
			res.LinkExcessGbps += over
		}
	}
	s.mirror(res)
	return res, nil
}

// Utilization-ratio floors: below these capacities a ratio is noise.
const (
	coreUtilFloor = 1.0  // one core
	linkUtilFloor = 0.01 // 10 Mbps
)

// pathLoadsFor computes per-link loads for a config outside the load model's
// universe.
func pathLoadsFor(w *geo.World, cfg model.CallConfig, dc int) []provision.LinkLoad {
	perLink := make(map[int]float64)
	mbps := cfg.Media.NetworkLoad()
	for _, cc := range cfg.Spread {
		for _, l := range w.Path(dc, cc.Country) {
			perLink[l] += mbps * float64(cc.Count) / 1000
		}
	}
	out := make([]provision.LinkLoad, 0, len(perLink))
	for l, g := range perLink {
		out = append(out, provision.LinkLoad{Link: l, Gbps: g})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}

// GreedyLocalPolicy hosts each call at the lowest-ACL candidate that still
// has compute and link headroom, falling back to the lowest-ACL candidate
// outright — the realtime analogue of locality-first.
type GreedyLocalPolicy struct {
	LM *provision.LoadModel
}

// Name implements Policy.
func (p *GreedyLocalPolicy) Name() string { return "greedy-local" }

// Choose implements Policy.
func (p *GreedyLocalPolicy) Choose(c int, _ time.Time, candidates []int, u *Usage) int {
	best, bestACL := -1, math.Inf(1)
	for _, x := range candidates {
		if !u.FitsAt(x, p.LM.ComputeLoad(c), p.LM.LinkLoads(c, x)) {
			continue
		}
		if a := p.LM.ACL(c, x); a < bestACL {
			best, bestACL = x, a
		}
	}
	if best >= 0 {
		return best
	}
	// Everything full: take the lowest-ACL candidate and let the
	// simulator count the overflow.
	for _, x := range candidates {
		if a := p.LM.ACL(c, x); a < bestACL {
			best, bestACL = x, a
		}
	}
	return best
}

// PlanPolicy follows a daily allocation plan's per-slot shares: each (slot,
// config) has per-DC quotas; a call takes the lowest-ACL DC with both quota
// and capacity left, then the plan's fallbacks.
type PlanPolicy struct {
	LM *provision.LoadModel
	// Alloc is the allocation plan tensor [planSlot][config][dc].
	Alloc [][][]float64
	// Origin anchors slot-of-day computation.
	Origin time.Time

	remaining [][][]float64
	lastDay   int
}

// Name implements Policy.
func (p *PlanPolicy) Name() string { return "plan" }

// Release implements Releaser: a finished call returns its quota slot so the
// tally tracks concurrency, as §5.4(b) prescribes.
func (p *PlanPolicy) Release(c int, startedAt time.Time, dc int) {
	day := int(startedAt.Sub(p.Origin).Hours() / 24)
	if p.remaining == nil || day != p.lastDay {
		return // a fresh daily plan superseded this call's quotas
	}
	nT := len(p.remaining)
	slot := model.SlotOfDay(startedAt) * nT / model.SlotsPerDay
	if slot >= nT {
		slot = nT - 1
	}
	if dc >= 0 && dc < len(p.remaining[slot][c]) {
		p.remaining[slot][c][dc]++
	}
}

// Choose implements Policy.
func (p *PlanPolicy) Choose(c int, at time.Time, candidates []int, u *Usage) int {
	day := int(at.Sub(p.Origin).Hours() / 24)
	if p.remaining == nil || day != p.lastDay {
		// A fresh plan is issued daily (§5.3); reset quotas.
		p.remaining = cloneAlloc(p.Alloc)
		p.lastDay = day
	}
	nT := len(p.remaining)
	slot := model.SlotOfDay(at) * nT / model.SlotsPerDay
	if slot >= nT {
		slot = nT - 1
	}
	row := p.remaining[slot][c]

	best, bestACL := -1, math.Inf(1)
	for _, x := range candidates {
		if row[x] < 1 {
			continue
		}
		if !u.FitsAt(x, p.LM.ComputeLoad(c), p.LM.LinkLoads(c, x)) {
			continue
		}
		if a := p.LM.ACL(c, x); a < bestACL {
			best, bestACL = x, a
		}
	}
	if best < 0 {
		// Quotas exhausted: any candidate with headroom.
		for _, x := range candidates {
			if !u.FitsAt(x, p.LM.ComputeLoad(c), p.LM.LinkLoads(c, x)) {
				continue
			}
			if a := p.LM.ACL(c, x); a < bestACL {
				best, bestACL = x, a
			}
		}
	}
	if best < 0 {
		for _, x := range candidates {
			if a := p.LM.ACL(c, x); a < bestACL {
				best, bestACL = x, a
			}
		}
	}
	if best >= 0 && row[best] >= 1 {
		row[best]--
	}
	return best
}

func cloneAlloc(a [][][]float64) [][][]float64 {
	out := make([][][]float64, len(a))
	for t := range a {
		out[t] = make([][]float64, len(a[t]))
		for c := range a[t] {
			out[t][c] = append([]float64(nil), a[t][c]...)
		}
	}
	return out
}

// Metrics mirrors Run's tallies into an obs registry. The simulator is a
// determinism-linted package, so only counters appear here — no wall-clock
// timings.
type Metrics struct {
	Calls      *obs.Counter
	Placed     *obs.Counter
	Overflowed *obs.Counter
	Unknown    *obs.Counter
}

// NewMetrics registers the simulator metric families on r (nil r yields a
// usable all-nil bundle).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Calls:      r.Counter("sb_sim_calls_total", "Calls replayed by the simulator."),
		Placed:     r.Counter("sb_sim_placed_total", "Replayed calls hosted within compute capacity."),
		Overflowed: r.Counter("sb_sim_overflowed_total", "Replayed calls admitted beyond compute capacity."),
		Unknown:    r.Counter("sb_sim_unknown_configs_total", "Replayed calls outside the plan's config universe."),
	}
}

// SetMetrics attaches a telemetry bundle; Run mirrors its tallies into it
// once per replay (aggregated at the end, off the per-event path).
func (s *Simulator) SetMetrics(m *Metrics) { s.metrics = m }

// mirror adds one run's tallies to the attached bundle, if any.
func (s *Simulator) mirror(res *Result) {
	if s.metrics == nil {
		return
	}
	s.metrics.Calls.Add(uint64(res.Calls))
	s.metrics.Placed.Add(uint64(res.Placed))
	s.metrics.Overflowed.Add(uint64(res.Overflowed))
	s.metrics.Unknown.Add(uint64(res.UnknownConfigs))
}
