//go:build race

package sim

// raceEnabled mirrors whether the race detector is compiled in; the heavy
// single-threaded replay tests skip themselves under it (they exercise no
// concurrency and would multiply the suite's runtime past CI timeouts).
const raceEnabled = true
