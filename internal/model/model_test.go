package model

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"switchboard/internal/geo"
)

func TestMediaLoadRatiosMatchTable1(t *testing.T) {
	// Table 1: compute 1x / 1-2x / 2-4x, network 1x / 10-20x / 30-40x.
	clA, clS, clV := Audio.ComputeLoad(), ScreenShare.ComputeLoad(), Video.ComputeLoad()
	nlA, nlS, nlV := Audio.NetworkLoad(), ScreenShare.NetworkLoad(), Video.NetworkLoad()
	if r := clS / clA; r < 1 || r > 2 {
		t.Errorf("screenshare compute ratio %g outside [1,2]", r)
	}
	if r := clV / clA; r < 2 || r > 4 {
		t.Errorf("video compute ratio %g outside [2,4]", r)
	}
	if r := nlS / nlA; r < 10 || r > 20 {
		t.Errorf("screenshare network ratio %g outside [10,20]", r)
	}
	if r := nlV / nlA; r < 30 || r > 40 {
		t.Errorf("video network ratio %g outside [30,40]", r)
	}
	// NL/CL ratio column: screenshare 10-15x, video 15-20x relative to audio.
	base := nlA / clA
	if r := (nlS / clS) / base; r < 10 || r > 15 {
		t.Errorf("screenshare NL/CL ratio %g outside [10,15]", r)
	}
	if r := (nlV / clV) / base; r < 15 || r > 20 {
		t.Errorf("video NL/CL ratio %g outside [15,20]", r)
	}
}

func TestMediaTypeStrings(t *testing.T) {
	for _, m := range MediaTypes() {
		parsed, err := ParseMediaType(m.String())
		if err != nil || parsed != m {
			t.Errorf("round trip %v failed: %v %v", m, parsed, err)
		}
	}
	if _, err := ParseMediaType("smoke-signals"); err == nil {
		t.Error("expected error for unknown media type")
	}
}

func TestSpreadCanonical(t *testing.T) {
	s := NewSpread(map[geo.CountryCode]int{"JP": 1, "IN": 2, "ZZ": 0, "AU": -3})
	if len(s) != 2 {
		t.Fatalf("spread = %v, want 2 entries", s)
	}
	if s[0].Country != "IN" || s[1].Country != "JP" {
		t.Errorf("spread not sorted: %v", s)
	}
	if s.Participants() != 3 {
		t.Errorf("participants = %d, want 3", s.Participants())
	}
	maj, strict := s.Majority()
	if maj != "IN" || !strict {
		t.Errorf("majority = %v strict=%v, want IN strict", maj, strict)
	}
}

func TestMajorityNoStrict(t *testing.T) {
	s := NewSpread(map[geo.CountryCode]int{"IN": 2, "JP": 2})
	if _, strict := s.Majority(); strict {
		t.Error("2-2 split should not be a strict majority")
	}
}

func TestConfigKeyRoundTrip(t *testing.T) {
	cfg := CallConfig{
		Spread: NewSpread(map[geo.CountryCode]int{"IN": 2, "JP": 1}),
		Media:  Audio,
	}
	key := cfg.Key()
	if key != "audio|IN:2,JP:1" {
		t.Errorf("key = %q", key)
	}
	back, err := ParseConfigKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != key {
		t.Errorf("round trip: %q != %q", back.Key(), key)
	}
}

func TestParseConfigKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "audio", "polka|IN:2", "audio|IN", "audio|IN:x", "audio|IN:0", "audio|IN:-2"} {
		if _, err := ParseConfigKey(bad); err == nil {
			t.Errorf("ParseConfigKey(%q) succeeded, want error", bad)
		}
	}
}

// TestPropertyConfigKeyRoundTrip: Key/ParseConfigKey round-trips for random
// configs.
func TestPropertyConfigKeyRoundTrip(t *testing.T) {
	codes := []geo.CountryCode{"US", "IN", "JP", "DE", "BR", "AU", "GB", "SG"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		counts := make(map[geo.CountryCode]int)
		for i := 0; i <= rng.Intn(5); i++ {
			counts[codes[rng.Intn(len(codes))]] += 1 + rng.Intn(9)
		}
		cfg := CallConfig{Spread: NewSpread(counts), Media: MediaTypes()[rng.Intn(3)]}
		back, err := ParseConfigKey(cfg.Key())
		return err == nil && back.Key() == cfg.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeLoad(t *testing.T) {
	cfg := CallConfig{
		Spread: NewSpread(map[geo.CountryCode]int{"IN": 3}),
		Media:  Video,
	}
	want := 3 * Video.ComputeLoad()
	if got := cfg.ComputeLoad(); got != want {
		t.Errorf("compute load = %g, want %g", got, want)
	}
}

func TestACL(t *testing.T) {
	w := geo.DefaultWorld()
	var pune, tokyo int
	for _, dc := range w.DCs() {
		switch dc.Name {
		case "pune":
			pune = dc.ID
		case "tokyo":
			tokyo = dc.ID
		}
	}
	cfg := CallConfig{Spread: NewSpread(map[geo.CountryCode]int{"IN": 2, "JP": 1}), Media: Audio}
	aclPune := cfg.ACL(w, pune)
	aclTokyo := cfg.ACL(w, tokyo)
	// Majority in India: hosting in pune should beat tokyo.
	if aclPune >= aclTokyo {
		t.Errorf("ACL pune=%g >= tokyo=%g for an India-majority call", aclPune, aclTokyo)
	}
	// ACL must be a weighted average: between min and max leg latency.
	lo := w.Latency(pune, "IN")
	hi := w.Latency(pune, "JP")
	if aclPune < lo || aclPune > hi {
		t.Errorf("ACL %g outside leg range [%g, %g]", aclPune, lo, hi)
	}
	if (CallConfig{}).ACL(w, pune) != 0 {
		t.Error("empty config ACL should be 0")
	}
}

func TestRegionsAndInterCountry(t *testing.T) {
	w := geo.DefaultWorld()
	cfg := CallConfig{Spread: NewSpread(map[geo.CountryCode]int{"IN": 1, "US": 1})}
	regs := cfg.Regions(w)
	if len(regs) != 2 {
		t.Errorf("regions = %v, want APAC+AMER", regs)
	}
	if !cfg.InterCountry() {
		t.Error("IN+US should be inter-country")
	}
	solo := CallConfig{Spread: NewSpread(map[geo.CountryCode]int{"IN": 4})}
	if solo.InterCountry() {
		t.Error("single-country call marked inter-country")
	}
}

func TestCallRecordConfig(t *testing.T) {
	rec := &CallRecord{
		Legs: []LegRecord{
			{Country: "IN", JoinOffset: 0, Media: Audio},
			{Country: "IN", JoinOffset: 2 * time.Minute, Media: Video},
			{Country: "JP", JoinOffset: 10 * time.Minute, Media: Audio},
		},
	}
	full := rec.Config()
	if full.Key() != "video|IN:2,JP:1" {
		t.Errorf("full config = %q", full.Key())
	}
	frozen := rec.ConfigFrozenAt(5 * time.Minute)
	if frozen.Key() != "video|IN:2" {
		t.Errorf("frozen config = %q", frozen.Key())
	}
}

func TestSlotting(t *testing.T) {
	origin := time.Date(2022, 9, 1, 0, 0, 0, 0, time.UTC)
	if SlotsPerDay != 48 {
		t.Fatalf("SlotsPerDay = %d", SlotsPerDay)
	}
	cases := []struct {
		t    time.Time
		slot int
		idx  int
	}{
		{origin, 0, 0},
		{origin.Add(29 * time.Minute), 0, 0},
		{origin.Add(30 * time.Minute), 1, 1},
		{origin.Add(24 * time.Hour), 0, 48},
		{origin.Add(-1 * time.Minute), 47, -1},
	}
	for _, c := range cases {
		if got := SlotOfDay(c.t); got != c.slot {
			t.Errorf("SlotOfDay(%v) = %d, want %d", c.t, got, c.slot)
		}
		if got := SlotIndex(origin, c.t); got != c.idx {
			t.Errorf("SlotIndex(%v) = %d, want %d", c.t, got, c.idx)
		}
	}
	if SlotStart(origin, 48) != origin.Add(24*time.Hour) {
		t.Error("SlotStart mismatch")
	}
}

// TestPropertySlotIndexMonotonic: SlotIndex is nondecreasing in time and
// consistent with SlotStart.
func TestPropertySlotIndexMonotonic(t *testing.T) {
	origin := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(minsA, minsB int16) bool {
		ta := origin.Add(time.Duration(minsA) * time.Minute)
		tb := origin.Add(time.Duration(minsB) * time.Minute)
		ia, ib := SlotIndex(origin, ta), SlotIndex(origin, tb)
		if ta.Before(tb) && ia > ib {
			return false
		}
		// A slot's start must map back to its own index.
		return SlotIndex(origin, SlotStart(origin, ia)) == ia
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
