package model

import (
	"testing"
)

// FuzzParseConfigKey: arbitrary strings must never panic the parser, and any
// key it accepts must round-trip canonically (parse → Key → parse is a
// fixed point).
func FuzzParseConfigKey(f *testing.F) {
	f.Add("audio|IN:2,JP:1")
	f.Add("video|US:100")
	f.Add("screenshare|")
	f.Add("audio|:3")
	f.Add("|")
	f.Add("video|US:1,US:2")
	f.Fuzz(func(t *testing.T, key string) {
		cfg, err := ParseConfigKey(key)
		if err != nil {
			return
		}
		canon := cfg.Key()
		again, err := ParseConfigKey(canon)
		if err != nil {
			t.Fatalf("canonical key %q failed to parse: %v", canon, err)
		}
		if again.Key() != canon {
			t.Fatalf("not a fixed point: %q -> %q", canon, again.Key())
		}
	})
}
