// Package model defines Switchboard's core domain types: media types with
// their relative compute/network loads (the paper's Table 1), call
// configurations (§5.1), call and call-leg records, and the 30-minute time
// buckets all forecasting and provisioning operate on.
package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"switchboard/internal/geo"
)

// MediaType classifies a call by its most resource-intensive stream, per
// §5.1: every call has audio; one camera upgrades it to Video; one shared
// screen makes it ScreenShare. The ordering of the constants is the upgrade
// order used when participants change media mid-call.
type MediaType int

// Media types in upgrade order.
const (
	Audio MediaType = iota
	ScreenShare
	Video
	numMediaTypes
)

// MediaTypes lists all media types.
func MediaTypes() []MediaType { return []MediaType{Audio, ScreenShare, Video} }

func (m MediaType) String() string {
	switch m {
	case Audio:
		return "audio"
	case ScreenShare:
		return "screenshare"
	case Video:
		return "video"
	default:
		return fmt.Sprintf("MediaType(%d)", int(m))
	}
}

// ParseMediaType is the inverse of MediaType.String.
func ParseMediaType(s string) (MediaType, error) {
	switch s {
	case "audio":
		return Audio, nil
	case "screenshare":
		return ScreenShare, nil
	case "video":
		return Video, nil
	}
	return 0, fmt.Errorf("model: unknown media type %q", s)
}

// Relative per-participant loads by media type. The ratios follow the
// paper's Table 1: compute 1× / 1.2× / 2× and network 1× / 15× / 35× for
// audio / screen-share / video (exact production values are confidential;
// these sit inside the published ranges). Compute is in cores per
// participant, network in Mbps per call leg.
var (
	computeLoadCores = [numMediaTypes]float64{Audio: 0.02, ScreenShare: 0.024, Video: 0.04}
	networkLoadMbps  = [numMediaTypes]float64{Audio: 0.10, ScreenShare: 1.50, Video: 3.50}
)

// ComputeLoad returns the cores one participant of a call with this media
// type consumes on the MP server (CL in the paper).
func (m MediaType) ComputeLoad() float64 { return computeLoadCores[m] }

// NetworkLoad returns the Mbps one call leg with this media type carries on
// each WAN link along its path (NL in the paper).
func (m MediaType) NetworkLoad() float64 { return networkLoadMbps[m] }

// CountryCount is one (country, participant count) element of a call
// configuration's spread.
type CountryCount struct {
	Country geo.CountryCode
	Count   int
}

// Spread is the location histogram of a call's participants, sorted by
// country code. Use NewSpread to construct a canonical instance.
type Spread []CountryCount

// NewSpread builds a canonical spread from a country->count map, dropping
// non-positive counts.
func NewSpread(counts map[geo.CountryCode]int) Spread {
	s := make(Spread, 0, len(counts))
	for c, n := range counts {
		if n > 0 {
			s = append(s, CountryCount{Country: c, Count: n})
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Country < s[j].Country })
	return s
}

// Participants returns the total participant count.
func (s Spread) Participants() int {
	var n int
	for _, cc := range s {
		n += cc.Count
	}
	return n
}

// Majority returns the country contributing the most participants (ties
// broken by country code order) and whether it holds a strict majority.
func (s Spread) Majority() (geo.CountryCode, bool) {
	var best geo.CountryCode
	bestN := -1
	for _, cc := range s {
		if cc.Count > bestN {
			best, bestN = cc.Country, cc.Count
		}
	}
	return best, bestN*2 > s.Participants()
}

// CallConfig is the unit of forecasting and provisioning (§5.1): the spread
// of participant locations plus the call's media type. Configs with equal
// Key() are fungible for resource purposes.
type CallConfig struct {
	Spread Spread
	Media  MediaType
}

// Key returns a canonical string encoding, e.g. "video|IN:2,JP:1", usable as
// a map key and stable across processes.
func (c CallConfig) Key() string {
	var b strings.Builder
	b.WriteString(c.Media.String())
	b.WriteByte('|')
	for i, cc := range c.Spread {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(cc.Country))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(cc.Count))
	}
	return b.String()
}

// ParseConfigKey is the inverse of Key.
func ParseConfigKey(key string) (CallConfig, error) {
	media, rest, ok := strings.Cut(key, "|")
	if !ok {
		return CallConfig{}, fmt.Errorf("model: bad config key %q", key)
	}
	m, err := ParseMediaType(media)
	if err != nil {
		return CallConfig{}, err
	}
	counts := make(map[geo.CountryCode]int)
	if rest != "" {
		for _, part := range strings.Split(rest, ",") {
			country, countStr, ok := strings.Cut(part, ":")
			if !ok {
				return CallConfig{}, fmt.Errorf("model: bad spread element %q in %q", part, key)
			}
			n, err := strconv.Atoi(countStr)
			if err != nil || n <= 0 {
				return CallConfig{}, fmt.Errorf("model: bad count in %q", part)
			}
			counts[geo.CountryCode(country)] += n
		}
	}
	return CallConfig{Spread: NewSpread(counts), Media: m}, nil
}

// Participants returns the total participant count of the config.
func (c CallConfig) Participants() int { return c.Spread.Participants() }

// ComputeLoad returns the cores one call of this config consumes
// (CL_media × |P(c)| in the paper's Eq 5).
func (c CallConfig) ComputeLoad() float64 {
	return c.Media.ComputeLoad() * float64(c.Participants())
}

// ACL returns the average call latency (ms) of hosting this config at DC dc:
// the participant-weighted mean one-way leg latency (Table 2's ACL(x,c)).
func (c CallConfig) ACL(w *geo.World, dc int) float64 {
	if len(c.Spread) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, cc := range c.Spread {
		sum += w.Latency(dc, cc.Country) * float64(cc.Count)
		n += cc.Count
	}
	return sum / float64(n)
}

// Regions returns the set of regions the participants span.
func (c CallConfig) Regions(w *geo.World) []geo.Region {
	seen := make(map[geo.Region]bool)
	var out []geo.Region
	for _, cc := range c.Spread {
		if country, ok := w.Country(cc.Country); ok && !seen[country.Region] {
			seen[country.Region] = true
			out = append(out, country.Region)
		}
	}
	return out
}

// InterCountry reports whether participants span more than one country.
func (c CallConfig) InterCountry() bool { return len(c.Spread) > 1 }

// LegRecord is one participant's connection to the MP server.
type LegRecord struct {
	// Participant is a stable pseudonymous user identifier, used by the
	// recurring-meeting predictor; 0 means unknown.
	Participant uint64
	// Country is the participant's location.
	Country geo.CountryCode
	// JoinOffset is when the participant joined, relative to call start.
	JoinOffset time.Duration
	// LatencyMs is the observed one-way latency of the leg.
	LatencyMs float64
	// Media is the richest stream this participant sent.
	Media MediaType
}

// CallRecord is the stored metadata of one completed call (§5's call records
// database).
type CallRecord struct {
	ID       uint64
	Start    time.Time
	Duration time.Duration
	// DC is the hosting datacenter's ID.
	DC int
	// SeriesID groups recurring instances of the same meeting series;
	// 0 means ad-hoc.
	SeriesID uint64
	Legs     []LegRecord
}

// Config derives the call configuration from the recorded legs: the spread
// of leg countries and the richest media type seen.
func (r *CallRecord) Config() CallConfig {
	counts := make(map[geo.CountryCode]int, len(r.Legs))
	media := Audio
	for _, l := range r.Legs {
		counts[l.Country]++
		if l.Media > media {
			media = l.Media
		}
	}
	return CallConfig{Spread: NewSpread(counts), Media: media}
}

// ConfigFrozenAt derives the call config as known A into the call: only legs
// that joined by then are counted (§5.4's freeze at A = 300 s).
func (r *CallRecord) ConfigFrozenAt(a time.Duration) CallConfig {
	counts := make(map[geo.CountryCode]int, len(r.Legs))
	media := Audio
	for _, l := range r.Legs {
		if l.JoinOffset > a {
			continue
		}
		counts[l.Country]++
		if l.Media > media {
			media = l.Media
		}
	}
	return CallConfig{Spread: NewSpread(counts), Media: media}
}

// Time bucketing: all demand series use fixed 30-minute slots (§5.2).
const (
	// SlotDuration is the width of one demand time bucket.
	SlotDuration = 30 * time.Minute
	// SlotsPerDay is the number of buckets in one day.
	SlotsPerDay = int(24 * time.Hour / SlotDuration)
)

// SlotOfDay returns the bucket index within the UTC day, in [0, SlotsPerDay).
func SlotOfDay(t time.Time) int {
	t = t.UTC()
	return (t.Hour()*60 + t.Minute()) / int(SlotDuration/time.Minute)
}

// SlotIndex returns the absolute bucket index of t relative to origin
// (negative if t precedes origin).
func SlotIndex(origin, t time.Time) int {
	d := t.Sub(origin)
	if d < 0 {
		return int((d - SlotDuration + time.Nanosecond) / SlotDuration)
	}
	return int(d / SlotDuration)
}

// SlotStart returns the start time of the absolute bucket idx relative to
// origin.
func SlotStart(origin time.Time, idx int) time.Time {
	return origin.Add(time.Duration(idx) * SlotDuration)
}
