// Package tracefile reads and writes call traces as JSON Lines, the
// interchange format between the workload tools: cmd/sbgen exports synthetic
// traces, cmd/sbplan provisions from them, and third-party traces in the
// same shape can be fed through the whole pipeline in place of the built-in
// generator.
//
// Each line is one call record:
//
//	{"id":1,"start":"2022-09-05T08:11:04Z","duration_s":1800,"dc":8,
//	 "config":"video|IN:2,JP:1",
//	 "legs":[{"participant":7,"country":"IN","join_offset_s":0,
//	          "latency_ms":8.2,"media":"video"}, ...]}
//
// The "config" field is advisory (derivable from the legs) and is validated
// on read when present.
package tracefile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// Leg is the JSON shape of one call leg.
type Leg struct {
	Participant uint64  `json:"participant"`
	Country     string  `json:"country"`
	JoinOffsetS float64 `json:"join_offset_s"`
	LatencyMs   float64 `json:"latency_ms"`
	Media       string  `json:"media"`
}

// Record is the JSON shape of one call record.
type Record struct {
	ID        uint64  `json:"id"`
	Start     string  `json:"start"`
	DurationS float64 `json:"duration_s"`
	DC        int     `json:"dc"`
	SeriesID  uint64  `json:"series_id,omitempty"`
	ConfigKey string  `json:"config,omitempty"`
	Legs      []Leg   `json:"legs"`
}

// Writer streams call records as JSON Lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w with a buffered JSONL encoder. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<20)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write encodes one record.
func (w *Writer) Write(r *model.CallRecord) error {
	dto := Record{
		ID:        r.ID,
		Start:     r.Start.UTC().Format(time.RFC3339Nano),
		DurationS: r.Duration.Seconds(),
		DC:        r.DC,
		SeriesID:  r.SeriesID,
		ConfigKey: r.Config().Key(),
	}
	for _, l := range r.Legs {
		dto.Legs = append(dto.Legs, Leg{
			Participant: l.Participant,
			Country:     string(l.Country),
			JoinOffsetS: l.JoinOffset.Seconds(),
			LatencyMs:   l.LatencyMs,
			Media:       l.Media.String(),
		})
	}
	if err := w.enc.Encode(dto); err != nil {
		return fmt.Errorf("tracefile: record %d: %w", r.ID, err)
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams call records from JSON Lines.
type Reader struct {
	dec  *json.Decoder
	line int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{dec: json.NewDecoder(bufio.NewReaderSize(r, 1<<20))}
}

// Read decodes the next record, returning io.EOF at end of input.
func (r *Reader) Read() (*model.CallRecord, error) {
	var dto Record
	if err := r.dec.Decode(&dto); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("tracefile: record %d: %w", r.line+1, err)
	}
	r.line++
	rec, err := dto.ToModel()
	if err != nil {
		return nil, fmt.Errorf("tracefile: record %d: %w", r.line, err)
	}
	return rec, nil
}

// ReadAll decodes every remaining record.
func (r *Reader) ReadAll() ([]*model.CallRecord, error) {
	var out []*model.CallRecord
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Each invokes fn for every remaining record, stopping early when fn returns
// false.
func (r *Reader) Each(fn func(*model.CallRecord) bool) error {
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(rec) {
			return nil
		}
	}
}

// ToModel validates the DTO and converts it to a model record.
func (d *Record) ToModel() (*model.CallRecord, error) {
	if d.ID == 0 {
		return nil, fmt.Errorf("missing id")
	}
	start, err := time.Parse(time.RFC3339Nano, d.Start)
	if err != nil {
		return nil, fmt.Errorf("bad start time %q: %w", d.Start, err)
	}
	if d.DurationS <= 0 {
		return nil, fmt.Errorf("non-positive duration %g", d.DurationS)
	}
	if len(d.Legs) == 0 {
		return nil, fmt.Errorf("no legs")
	}
	rec := &model.CallRecord{
		ID:       d.ID,
		Start:    start,
		Duration: time.Duration(d.DurationS * float64(time.Second)),
		DC:       d.DC,
		SeriesID: d.SeriesID,
	}
	for i, l := range d.Legs {
		media, err := model.ParseMediaType(l.Media)
		if err != nil {
			return nil, fmt.Errorf("leg %d: %w", i, err)
		}
		if l.Country == "" {
			return nil, fmt.Errorf("leg %d: missing country", i)
		}
		if l.JoinOffsetS < 0 {
			return nil, fmt.Errorf("leg %d: negative join offset", i)
		}
		rec.Legs = append(rec.Legs, model.LegRecord{
			Participant: l.Participant,
			Country:     geo.CountryCode(l.Country),
			JoinOffset:  time.Duration(l.JoinOffsetS * float64(time.Second)),
			LatencyMs:   l.LatencyMs,
			Media:       media,
		})
	}
	if d.ConfigKey != "" {
		if got := rec.Config().Key(); got != d.ConfigKey {
			return nil, fmt.Errorf("config %q does not match legs (%q)", d.ConfigKey, got)
		}
	}
	return rec, nil
}
