package tracefile

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"switchboard/internal/model"
	"switchboard/internal/trace"
)

func TestRoundTrip(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.Days = 1
	cfg.CallsPerDay = 300
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := g.GenerateAll()

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(recs) {
		t.Fatalf("wrote %d, want %d", w.Count(), len(recs))
	}

	back, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("read %d, want %d", len(back), len(recs))
	}
	for i := range recs {
		a, b := recs[i], back[i]
		if a.ID != b.ID || !a.Start.Equal(b.Start) || a.DC != b.DC || a.SeriesID != b.SeriesID {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, a, b)
		}
		if a.Config().Key() != b.Config().Key() {
			t.Fatalf("record %d config mismatch", i)
		}
		if len(a.Legs) != len(b.Legs) {
			t.Fatalf("record %d legs %d vs %d", i, len(a.Legs), len(b.Legs))
		}
		for j := range a.Legs {
			la, lb := a.Legs[j], b.Legs[j]
			if la.Participant != lb.Participant || la.Country != lb.Country || la.Media != lb.Media {
				t.Fatalf("record %d leg %d mismatch", i, j)
			}
		}
	}
}

func TestReaderEach(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	cfg := trace.DefaultConfig()
	cfg.Days = 1
	cfg.CallsPerDay = 100
	g, _ := trace.NewGenerator(cfg)
	g.EachCall(func(r *model.CallRecord) bool { w.Write(r); return true })
	w.Flush()

	n := 0
	if err := NewReader(&buf).Each(func(*model.CallRecord) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop read %d", n)
	}
}

func TestReadValidation(t *testing.T) {
	cases := map[string]string{
		"missing id":       `{"start":"2022-09-05T00:00:00Z","duration_s":60,"legs":[{"country":"US","media":"audio"}]}`,
		"bad start":        `{"id":1,"start":"yesterday","duration_s":60,"legs":[{"country":"US","media":"audio"}]}`,
		"bad duration":     `{"id":1,"start":"2022-09-05T00:00:00Z","duration_s":0,"legs":[{"country":"US","media":"audio"}]}`,
		"no legs":          `{"id":1,"start":"2022-09-05T00:00:00Z","duration_s":60,"legs":[]}`,
		"bad media":        `{"id":1,"start":"2022-09-05T00:00:00Z","duration_s":60,"legs":[{"country":"US","media":"morse"}]}`,
		"missing country":  `{"id":1,"start":"2022-09-05T00:00:00Z","duration_s":60,"legs":[{"media":"audio"}]}`,
		"negative offset":  `{"id":1,"start":"2022-09-05T00:00:00Z","duration_s":60,"legs":[{"country":"US","media":"audio","join_offset_s":-5}]}`,
		"config mismatch":  `{"id":1,"start":"2022-09-05T00:00:00Z","duration_s":60,"config":"video|JP:9","legs":[{"country":"US","media":"audio"}]}`,
		"not json at all":  `this is not json`,
		"truncated object": `{"id":1,`,
	}
	for name, line := range cases {
		if _, err := NewReader(strings.NewReader(line)).Read(); err == nil || err == io.EOF {
			t.Errorf("%s: expected validation error, got %v", name, err)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	recs, err := NewReader(strings.NewReader("")).ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("got %v, %v", recs, err)
	}
}

func TestConfigKeyOptional(t *testing.T) {
	line := `{"id":1,"start":"2022-09-05T00:00:00Z","duration_s":60,"legs":[{"participant":3,"country":"US","media":"audio"}]}`
	rec, err := NewReader(strings.NewReader(line)).Read()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Config().Key() != "audio|US:1" {
		t.Errorf("config = %q", rec.Config().Key())
	}
}
