package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/obs"
	"switchboard/internal/shard"
)

// shardNode is one member of an in-process sharded fleet: an HTTP server on a
// real port whose address doubles as its lease identity, so peers' forwards
// and redirects actually land here.
type shardNode struct {
	addr string
	mgr  *shard.Manager
	api  *Server
}

func startShardStore(t *testing.T) string {
	t.Helper()
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

func startShardNode(t *testing.T, storeAddr string, ring *shard.Ring, prefer []int, peers []string, forward bool) *shardNode {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	world := geo.DefaultWorld()
	ctrls := make([]*controller.Controller, ring.Shards())
	for i := range ctrls {
		kc, err := kvstore.Dial(storeAddr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = kc.Close() })
		ctrls[i], err = controller.New(controller.Config{
			World:     world,
			Store:     kc,
			KeyPrefix: shard.KeyPrefix(i),
			Shard:     i,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mgr, err := shard.NewManager(shard.Config{
		Ring:        ring,
		ID:          addr,
		Controllers: ctrls,
		ElectorStore: func(i int) (*kvstore.Client, error) {
			return kvstore.Dial(storeAddr)
		},
		Prefer:  prefer,
		TTL:     300 * time.Millisecond,
		Renew:   75 * time.Millisecond,
		Metrics: shard.NewMetrics(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		mgr.Stop(ctx)
		cancel()
	})
	s := New(world, nil)
	s.Shards = &ShardRouter{Manager: mgr, Forward: forward, Peers: peers}
	hs := &http.Server{Handler: s.Mux()}
	go func() { _ = hs.Serve(l) }()
	t.Cleanup(func() { _ = hs.Close() })
	return &shardNode{addr: addr, mgr: mgr, api: s}
}

// noRedirect posts without following 307s, so routing hints can be asserted.
var noRedirect = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

func postStart(t *testing.T, addr string, id uint64, hdr map[string]string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"id": id, "country": "JP"})
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/call/start", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func awaitSplit(t *testing.T, a, b *shardNode) {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for !(a.mgr.Owns(0) && b.mgr.Owns(1) &&
		a.mgr.OwnerHint(1) == b.addr && b.mgr.OwnerHint(0) == a.addr) {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never settled: a owns %v, b owns %v", a.mgr.Owned(), b.mgr.Owned())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func confOnShard(ring *shard.Ring, sh int, from uint64) uint64 {
	for id := from; ; id++ {
		if ring.Lookup(id) == sh {
			return id
		}
	}
}

// TestShardRoutingHints: with forwarding off, a request landing on the wrong
// node answers 307 with the owner's address in Location and
// ShardLeaderHeader, SLO-exempted, while owned requests serve locally.
func TestShardRoutingHints(t *testing.T) {
	store := startShardStore(t)
	ring, _ := shard.NewRing(2, 16)
	a := startShardNode(t, store, ring, []int{0}, nil, false)
	b := startShardNode(t, store, ring, []int{1}, nil, false)
	a.mgr.Start()
	b.mgr.Start()
	awaitSplit(t, a, b)

	// Owned locally: served in place, stamped with its shard.
	own := confOnShard(ring, 0, 1)
	resp := postStart(t, a.addr, own, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owned request: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(ShardHeader); got != "0" {
		t.Fatalf("%s = %q, want 0", ShardHeader, got)
	}

	// Not owned: a 307 routing hint pointing at the owner.
	other := confOnShard(ring, 1, 1)
	resp = postStart(t, a.addr, other, nil)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owned request: %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get(ShardLeaderHeader); got != b.addr {
		t.Fatalf("%s = %q, want %q", ShardLeaderHeader, got, b.addr)
	}
	if loc := resp.Header.Get("Location"); loc != "http://"+b.addr+"/v1/call/start" {
		t.Fatalf("Location = %q", loc)
	}
	if resp.Header.Get(obs.StandbyHeader) == "" {
		t.Fatal("routing hint must carry the SLO exemption header")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("routing hint must carry Retry-After")
	}
	// Following the hint succeeds: 307 preserves method and body.
	resp = postStart(t, b.addr, other, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request at hinted owner: %d", resp.StatusCode)
	}
}

// TestShardForwarding: with forwarding on, the wrong node proxies to the
// owner and relays its answer — the client sees one 200 regardless of where
// it aimed.
func TestShardForwarding(t *testing.T) {
	store := startShardStore(t)
	ring, _ := shard.NewRing(2, 16)
	a := startShardNode(t, store, ring, []int{0}, nil, true)
	b := startShardNode(t, store, ring, []int{1}, nil, true)
	a.mgr.Start()
	b.mgr.Start()
	awaitSplit(t, a, b)

	other := confOnShard(ring, 1, 1)
	resp := postStart(t, a.addr, other, nil)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("forwarded request: %d %s", resp.StatusCode, body)
	}
	var out StartResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.DCName == "" {
		t.Fatal("forwarded response missing placement")
	}
	// The owner, not the proxy, registered the call: a duplicate start at the
	// owner conflicts.
	resp = postStart(t, b.addr, other, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate at owner after forward: %d, want 409", resp.StatusCode)
	}
}

// TestShardForwardHopBound: a request arriving with the hop budget spent is
// not forwarded or redirected again — it answers the typed hop-exhaustion
// 503 (SLO-exempt, Retry-After from the lease TTL) and bumps the counter, so
// stale hints fleet-wide cannot loop a request forever.
func TestShardForwardHopBound(t *testing.T) {
	store := startShardStore(t)
	ring, _ := shard.NewRing(2, 16)
	a := startShardNode(t, store, ring, []int{0}, nil, true)
	b := startShardNode(t, store, ring, []int{1}, nil, true)
	a.mgr.Start()
	b.mgr.Start()
	awaitSplit(t, a, b)

	other := confOnShard(ring, 1, 1)
	resp := postStart(t, a.addr, other, map[string]string{
		HopsHeader: strconv.Itoa(DefaultMaxHops),
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("hop-capped request: %d, want typed 503", resp.StatusCode)
	}
	if resp.Header.Get(obs.StandbyHeader) == "" {
		t.Fatal("hop-exhaustion 503 must be SLO-exempt")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("hop-exhaustion 503 must carry Retry-After")
	}
	var out struct {
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Reason != "proxy hop budget exhausted" {
		t.Fatalf("reason = %q", out.Reason)
	}
	if got := a.mgr.Metrics().ProxyHopsExhausted.Value(); got != 1 {
		t.Fatalf("sb_shard_proxy_hops_exhausted_total = %v, want 1", got)
	}
}

// TestShardLeaderUnknown: a lone node that owns nothing and has no hints or
// peers answers a routing 503, SLO-exempt, with Retry-After derived from the
// lease TTL — not a hard failure.
func TestShardLeaderUnknown(t *testing.T) {
	store := startShardStore(t)
	ring, _ := shard.NewRing(2, 16)
	// Manager never started: owns nothing, knows nobody.
	n := startShardNode(t, store, ring, nil, nil, false)
	resp := postStart(t, n.addr, 1, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("leaderless request: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(obs.StandbyHeader) == "" {
		t.Fatal("routing 503 must be SLO-exempt")
	}
	// TTL 300ms rounds up to 1 second.
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1", got)
	}
}

// TestShardsEndpoint: /v1/shards serves the routing map.
func TestShardsEndpoint(t *testing.T) {
	store := startShardStore(t)
	ring, _ := shard.NewRing(2, 16)
	a := startShardNode(t, store, ring, []int{0}, nil, false)
	b := startShardNode(t, store, ring, []int{1}, nil, false)
	a.mgr.Start()
	b.mgr.Start()
	awaitSplit(t, a, b)

	resp, err := http.Get("http://" + a.addr + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Shards int    `json:"shards"`
		Self   string `json:"self"`
		Owned  []int  `json:"owned"`
		Map    []struct {
			Shard  int    `json:"shard"`
			Owned  bool   `json:"owned"`
			Leader string `json:"leader"`
		} `json:"map"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Shards != 2 || out.Self != a.addr {
		t.Fatalf("shards=%d self=%q", out.Shards, out.Self)
	}
	if len(out.Owned) != 1 || out.Owned[0] != 0 {
		t.Fatalf("owned = %v, want [0]", out.Owned)
	}
	for _, m := range out.Map {
		want := a.addr
		if m.Shard == 1 {
			want = b.addr
		}
		if m.Leader != want {
			t.Fatalf("shard %d leader = %q, want %q", m.Shard, m.Leader, want)
		}
	}
}

func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{200 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1200 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.d); got != c.want {
			t.Errorf("retryAfterSecs(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
