// Package httpapi exposes the realtime controller over HTTP — the service
// surface cmd/switchboard serves. Handlers are plain net/http so they can be
// tested with httptest and embedded in other binaries.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
	"switchboard/internal/shard"
)

// maxRequestBody caps request bodies; call-control messages are tiny, so
// anything larger is hostile or broken.
const maxRequestBody = 64 << 10

// Server wires the controller to HTTP routes.
type Server struct {
	world *geo.World
	ctrl  *controller.Controller
	// Now returns the current time; overridable for tests.
	Now func() time.Time
	// HTTP, when non-nil, wraps every route in request-count/latency/status
	// middleware (see obs.NewHTTPMetrics). Set before calling Mux.
	HTTP *obs.HTTPMetrics
	// KV, when non-nil, contributes the store client's retry/redial/poison
	// counters to /v1/stats. Set before serving.
	KV *kvstore.Client
	// Tracer, when non-nil, starts a root span per request; the request
	// context carries it through the controller into the kvstore wire. Set
	// before calling Mux.
	Tracer *span.Tracer
	// SLO, when non-nil, contributes burn-rate summaries to /readyz. Set
	// before serving.
	SLO *obs.SLOMonitor
	// Elector, when non-nil, makes this replica leadership-aware: call-control
	// POSTs and /readyz answer 503 with a Retry-After and a leader hint while
	// another controller holds the lease. Set before calling Mux.
	Elector *controller.Elector
	// Registry, when non-nil, serves this node's metric snapshot as JSON on
	// /metrics/instance and the fleet-wide label-merged view on
	// /metrics/fleet (see fleet.go). Set before calling Mux.
	Registry *obs.Registry
	// Instance names this node in fleet metric snapshots. Defaults to the
	// shard manager's ID when sharded, else "self". Set before serving.
	Instance string
	// FleetTimeout bounds each peer scrape during a /metrics/fleet fan-out
	// (DefaultFleetTimeout when 0).
	FleetTimeout time.Duration
	// Shards, when non-nil, makes this node one of a sharded fleet:
	// call-control requests resolve their owning shard from the conference ID
	// and are served locally, proxied to the owner, or answered with routing
	// hints (see ShardRouter). Mutually exclusive with Elector — per-shard
	// leases replace the fleet-wide one. Set before calling Mux.
	Shards *ShardRouter
	// Reshard, when non-nil, registers the reshard admin endpoints
	// (POST/GET /v1/reshard, POST /v1/reshard/abort). Requires Shards. Set
	// before calling Mux.
	Reshard *ReshardAdmin

	fleet fleetCache // last-good peer snapshots for /metrics/fleet
}

// New returns a Server for the given world and controller.
func New(world *geo.World, ctrl *controller.Controller) *Server {
	return &Server{world: world, ctrl: ctrl, Now: time.Now}
}

// Mux returns the route table:
//
//	POST /v1/call/start  {"id":1,"country":"JP","series_id":7}
//	POST /v1/call/config {"id":1,"config":"video|ID:5,JP:3"}
//	POST /v1/call/end    {"id":1}
//	POST /v1/dc/fail     {"dc":3}
//	POST /v1/dc/recover  {"dc":3}
//	GET  /v1/stats
//	GET  /v1/world
//	GET  /healthz
//	GET  /readyz
//
// /healthz answers 200 whenever the process serves requests (liveness).
// /readyz additionally demands the store path be healthy: while the
// controller runs degraded (journaling writes) it answers 503, so load
// balancers stop steering new call-control traffic at this replica without
// killing it — the journal still needs to drain.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	// handle routes through the tracing then metrics middleware; the route
	// pattern doubles as the metric label and span name. Nil s.HTTP or
	// s.Tracer each wrap to the bare handler, so the stack degrades to
	// nothing when telemetry is off.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.HTTP.Wrap(pattern, s.Tracer.WrapHTTP(pattern, h)))
	}
	handle("POST /v1/call/start", s.callRoute(s.handleStart))
	handle("POST /v1/call/config", s.callRoute(s.handleConfig))
	handle("POST /v1/call/end", s.callRoute(s.handleEnd))
	handle("POST /v1/dc/fail", s.leaderOnly(s.handleDCFail))
	handle("POST /v1/dc/recover", s.leaderOnly(s.handleDCRecover))
	handle("GET /v1/stats", s.handleStats)
	handle("GET /v1/world", s.handleWorld)
	if s.Shards != nil {
		handle("GET /v1/shards", s.handleShards)
	}
	if s.Reshard != nil {
		handle("POST /v1/reshard", s.handleReshardStart)
		handle("GET /v1/reshard", s.handleReshardStatus)
		handle("POST /v1/reshard/abort", s.handleReshardAbort)
	}
	if s.Registry != nil {
		handle("GET /metrics/instance", s.handleMetricsInstance)
		handle("GET /metrics/fleet", s.handleMetricsFleet)
	}
	handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = fmt.Fprintln(w, "ok")
	})
	handle("GET /readyz", s.handleReadyz)
	return mux
}

// statusFor maps controller errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, controller.ErrUnknownCall):
		return http.StatusNotFound
	case errors.Is(err, controller.ErrDuplicateCall):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// callHandler is a call-control handler bound late to a controller: the
// route wrapper picks which controller serves the request (the fleet-wide one
// when unsharded, the owning shard's otherwise) and hands over the raw body
// so a non-owned request can be forwarded verbatim.
type callHandler func(ctrl *controller.Controller, body []byte, w http.ResponseWriter, r *http.Request)

// callRoute wraps a call-control handler with leadership/shard routing. The
// body is read up front: routing needs the conference ID before dispatch, and
// forwarding needs the raw bytes.
func (s *Server) callRoute(h callHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := s.readBody(w, r)
		if !ok {
			return
		}
		if s.Shards == nil {
			if s.standby(w) {
				return
			}
			h(s.ctrl, body, w, r)
			return
		}
		// Routing only needs the conference ID; the handler's strict decode
		// still validates the full body once the request lands on its owner.
		var probe struct {
			ID uint64 `json:"id"`
		}
		if err := json.Unmarshal(body, &probe); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		m := s.Shards.Manager
		// BeginWrite pins the request to the current ring epoch: while a
		// reshard is copying, writes to moving keys are registered so the
		// journal-handoff barrier can wait them out; during the barrier
		// itself they are Held (503, nothing admitted, nothing to lose).
		d, release := m.BeginWrite(probe.ID)
		if release != nil {
			defer release()
		}
		w.Header().Set(ShardHeader, strconv.Itoa(d.Shard))
		if d.Held {
			s.Shards.heldResponse(d, w)
			return
		}
		if m.Owns(d.Shard) {
			ctrl := m.Controller(d.Shard)
			if d.DoubleRead && !ctrl.Knows(probe.ID) {
				// Cutover double-read: the call may still live under its
				// pre-cutover owner's prefix; pull it forward before serving.
				// Best effort — an unknown call stays a clean 404.
				_, _ = ctrl.RecoverCall(r.Context(), probe.ID, shard.KeyPrefix(d.OldShard))
			}
			h(ctrl, body, w, r)
			return
		}
		s.Shards.relay(d, body, w, r)
	}
}

// controllers returns every controller this process hosts: the single
// fleet-wide one, or one per shard.
func (s *Server) controllers() []*controller.Controller {
	if s.Shards != nil {
		return s.Shards.Manager.Controllers()
	}
	return []*controller.Controller{s.ctrl}
}

// StartRequest is the body of POST /v1/call/start.
type StartRequest struct {
	ID       uint64 `json:"id"`
	Country  string `json:"country"`
	SeriesID uint64 `json:"series_id,omitempty"`
}

// StartResponse is the reply to POST /v1/call/start.
type StartResponse struct {
	DC     int    `json:"dc"`
	DCName string `json:"dc_name"`
}

func (s *Server) handleStart(ctrl *controller.Controller, body []byte, w http.ResponseWriter, r *http.Request) {
	var req StartRequest
	if !s.decodeBytes(w, body, &req) {
		return
	}
	dc, err := ctrl.CallStartedWithSeries(r.Context(), req.ID, geo.CountryCode(req.Country), req.SeriesID, s.Now())
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	s.reply(w, StartResponse{DC: dc, DCName: s.world.DCs()[dc].Name})
}

// ConfigRequest is the body of POST /v1/call/config.
type ConfigRequest struct {
	ID     uint64 `json:"id"`
	Config string `json:"config"`
}

// ConfigResponse is the reply to POST /v1/call/config.
type ConfigResponse struct {
	DC       int    `json:"dc"`
	DCName   string `json:"dc_name"`
	Migrated bool   `json:"migrated"`
}

func (s *Server) handleConfig(ctrl *controller.Controller, body []byte, w http.ResponseWriter, r *http.Request) {
	var req ConfigRequest
	if !s.decodeBytes(w, body, &req) {
		return
	}
	cfg, err := model.ParseConfigKey(req.Config)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dc, migrated, err := ctrl.ConfigKnown(r.Context(), req.ID, cfg, s.Now())
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	s.reply(w, ConfigResponse{DC: dc, DCName: s.world.DCs()[dc].Name, Migrated: migrated})
}

// EndRequest is the body of POST /v1/call/end.
type EndRequest struct {
	ID uint64 `json:"id"`
}

func (s *Server) handleEnd(ctrl *controller.Controller, body []byte, w http.ResponseWriter, r *http.Request) {
	var req EndRequest
	if !s.decodeBytes(w, body, &req) {
		return
	}
	if err := ctrl.CallEnded(r.Context(), req.ID); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	s.reply(w, map[string]bool{"ok": true})
}

// DCRequest is the body of POST /v1/dc/fail and /v1/dc/recover.
type DCRequest struct {
	DC int `json:"dc"`
}

func (s *Server) handleDCFail(w http.ResponseWriter, r *http.Request) {
	var req DCRequest
	if !s.decode(w, r, &req) {
		return
	}
	// A DC failure is world state, not call state: every controller this
	// process hosts (one per shard when sharded) drains its own calls.
	moved := 0
	for _, c := range s.controllers() {
		n, err := c.FailDC(r.Context(), req.DC)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		moved += n
	}
	s.reply(w, map[string]any{"failed": req.DC, "drained": moved})
}

func (s *Server) handleDCRecover(w http.ResponseWriter, r *http.Request) {
	var req DCRequest
	if !s.decode(w, r, &req) {
		return
	}
	for _, c := range s.controllers() {
		if err := c.RecoverDC(req.DC); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
	}
	s.reply(w, map[string]any{"recovered": req.DC})
}

// standby reports whether this replica must refuse work because another
// controller holds the leadership lease. When it does, it writes the full
// 503: a Retry-After derived from the lease TTL (leadership settles within
// one TTL, so that is the honest back-off), the obs.StandbyHeader so the
// middleware keeps the refusal out of the availability burn (a correct
// standby is not an outage), and a JSON body carrying the current leader's ID
// so clients can re-aim.
func (s *Server) standby(w http.ResponseWriter) bool {
	if s.Elector == nil || s.Elector.IsLeader() {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", retryAfterSecs(s.Elector.TTL()))
	w.Header().Set(obs.StandbyHeader, "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"ready":  false,
		"reason": "standby",
		"leader": s.Elector.LeaderHint(),
	})
	return true
}

// leaderOnly gates a mutating route on holding the leadership lease.
func (s *Server) leaderOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.standby(w) {
			return
		}
		h(w, r)
	}
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.standby(w) {
		return
	}
	// A sharded node is degraded only if a shard it LEADS is journaling;
	// standby shards journal by design and must not fail readiness — that
	// would let one dead shard 503 the whole fleet.
	degraded, depth := false, 0
	if s.Shards != nil {
		for _, sh := range s.Shards.Manager.Owned() {
			if c := s.Shards.Manager.Controller(sh); c.Degraded() {
				degraded = true
				depth += c.JournalDepth()
			}
		}
	} else if s.ctrl.Degraded() {
		degraded, depth = true, s.ctrl.JournalDepth()
	}
	if degraded {
		w.Header().Set("Content-Type", "application/json")
		// Degraded is a real (if survivable) failure — unlike the standby
		// 503 it carries no exemption header and burns the availability SLO;
		// Retry-After reflects the journal-replay probe cadence.
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		out := map[string]any{
			"ready":         false,
			"reason":        "store degraded; journaling call-state writes",
			"journal_depth": depth,
		}
		if s.SLO != nil {
			out["slo"] = s.SLO.Summary()
		}
		_ = json.NewEncoder(w).Encode(out)
		return
	}
	out := map[string]any{"ready": true}
	if s.Elector != nil {
		out["leader"] = true
	}
	if s.Shards != nil {
		out["owned_shards"] = s.Shards.Manager.Owned()
	}
	if s.SLO != nil {
		out["slo"] = s.SLO.Summary()
	}
	s.reply(w, out)
}

// handleShards serves the routing map: every shard, whether this node leads
// it, and the best-known leader address otherwise.
func (s *Server) handleShards(w http.ResponseWriter, _ *http.Request) {
	m := s.Shards.Manager
	type shardDTO struct {
		Shard  int    `json:"shard"`
		Owned  bool   `json:"owned"`
		Leader string `json:"leader,omitempty"`
		Epoch  int64  `json:"epoch,omitempty"`
	}
	shardMap := make([]shardDTO, m.Ring().Shards())
	for i := range shardMap {
		d := shardDTO{Shard: i, Owned: m.Owns(i), Epoch: m.Epoch(i)}
		if d.Owned {
			d.Leader = m.ID()
		} else {
			d.Leader = m.OwnerHint(i)
		}
		shardMap[i] = d
	}
	out := map[string]any{
		"shards":     m.Ring().Shards(),
		"self":       m.ID(),
		"owned":      m.Owned(),
		"map":        shardMap,
		"ring_epoch": m.RingEpoch(),
		"phase":      m.Phase(),
	}
	if st, ok := m.Reshard(); ok {
		out["migration"] = map[string]any{
			"from": st.From, "to": st.To, "phase": st.Phase,
			"copied": st.Copied, "total": st.Total,
		}
	}
	s.reply(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ctrls := s.controllers()
	var st controller.Stats
	active := 0
	for _, c := range ctrls {
		st.Accumulate(c.Stats())
		active += c.ActiveCalls()
	}
	out := map[string]any{
		"started":                  st.Started,
		"frozen":                   st.Frozen,
		"migrated":                 st.Migrated,
		"unplanned":                st.Unplanned,
		"ended":                    st.Ended,
		"predicted":                st.Predicted,
		"migration_rate":           st.MigrationRate(),
		"recurring_migration_rate": st.RecurringMigrationRate(),
		"active_calls":             active,
		"degraded":                 st.Degraded,
		"journal_depth":            st.JournalDepth,
		"replayed":                 st.Replayed,
		"dropped":                  st.Dropped,
		"failed_over":              st.FailedOver,
		"fenced":                   st.Fenced,
		"failed_dcs":               ctrls[0].FailedDCs(),
	}
	if s.Shards != nil {
		out["shards"] = s.Shards.Manager.Ring().Shards()
		out["owned_shards"] = s.Shards.Manager.Owned()
	}
	if s.KV != nil {
		out["kv_redials"] = s.KV.Redials()
		out["kv_retries"] = s.KV.Retries()
		out["kv_poisonings"] = s.KV.Poisonings()
	}
	s.reply(w, out)
}

func (s *Server) handleWorld(w http.ResponseWriter, _ *http.Request) {
	type dcDTO struct {
		ID      int     `json:"id"`
		Name    string  `json:"name"`
		Country string  `json:"country"`
		Region  string  `json:"region"`
		Cost    float64 `json:"core_cost"`
	}
	out := make([]dcDTO, 0, len(s.world.DCs()))
	for _, dc := range s.world.DCs() {
		out = append(out, dcDTO{
			ID: dc.ID, Name: dc.Name, Country: string(dc.Country),
			Region: dc.Region.String(), Cost: dc.CoreCost,
		})
	}
	s.reply(w, map[string]any{"dcs": out, "countries": len(s.world.Countries()), "links": len(s.world.Links())})
}

// readBody slurps the (bounded) request body; routing and forwarding need
// the raw bytes before any handler decodes them.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			httpError(w, http.StatusBadRequest, err)
		}
		return nil, false
	}
	return body, true
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, ok := s.readBody(w, r)
	if !ok {
		return false
	}
	return s.decodeBytes(w, body, v)
}

// decodeBytes strictly unmarshals one JSON document from body.
func (s *Server) decodeBytes(w http.ResponseWriter, body []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	// Exactly one JSON document per request: trailing garbage is a client
	// bug we refuse rather than silently ignore.
	if dec.More() {
		httpError(w, http.StatusBadRequest, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
