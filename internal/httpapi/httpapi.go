// Package httpapi exposes the realtime controller over HTTP — the service
// surface cmd/switchboard serves. Handlers are plain net/http so they can be
// tested with httptest and embedded in other binaries.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// Server wires the controller to HTTP routes.
type Server struct {
	world *geo.World
	ctrl  *controller.Controller
	// Now returns the current time; overridable for tests.
	Now func() time.Time
}

// New returns a Server for the given world and controller.
func New(world *geo.World, ctrl *controller.Controller) *Server {
	return &Server{world: world, ctrl: ctrl, Now: time.Now}
}

// Mux returns the route table:
//
//	POST /v1/call/start  {"id":1,"country":"JP","series_id":7}
//	POST /v1/call/config {"id":1,"config":"video|ID:5,JP:3"}
//	POST /v1/call/end    {"id":1}
//	GET  /v1/stats
//	GET  /v1/world
//	GET  /healthz
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/call/start", s.handleStart)
	mux.HandleFunc("POST /v1/call/config", s.handleConfig)
	mux.HandleFunc("POST /v1/call/end", s.handleEnd)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/world", s.handleWorld)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// StartRequest is the body of POST /v1/call/start.
type StartRequest struct {
	ID       uint64 `json:"id"`
	Country  string `json:"country"`
	SeriesID uint64 `json:"series_id,omitempty"`
}

// StartResponse is the reply to POST /v1/call/start.
type StartResponse struct {
	DC     int    `json:"dc"`
	DCName string `json:"dc_name"`
}

func (s *Server) handleStart(w http.ResponseWriter, r *http.Request) {
	var req StartRequest
	if !s.decode(w, r, &req) {
		return
	}
	dc, err := s.ctrl.CallStartedWithSeries(req.ID, geo.CountryCode(req.Country), req.SeriesID, s.Now())
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	s.reply(w, StartResponse{DC: dc, DCName: s.world.DCs()[dc].Name})
}

// ConfigRequest is the body of POST /v1/call/config.
type ConfigRequest struct {
	ID     uint64 `json:"id"`
	Config string `json:"config"`
}

// ConfigResponse is the reply to POST /v1/call/config.
type ConfigResponse struct {
	DC       int    `json:"dc"`
	DCName   string `json:"dc_name"`
	Migrated bool   `json:"migrated"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	var req ConfigRequest
	if !s.decode(w, r, &req) {
		return
	}
	cfg, err := model.ParseConfigKey(req.Config)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	dc, migrated, err := s.ctrl.ConfigKnown(req.ID, cfg, s.Now())
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	s.reply(w, ConfigResponse{DC: dc, DCName: s.world.DCs()[dc].Name, Migrated: migrated})
}

// EndRequest is the body of POST /v1/call/end.
type EndRequest struct {
	ID uint64 `json:"id"`
}

func (s *Server) handleEnd(w http.ResponseWriter, r *http.Request) {
	var req EndRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.ctrl.CallEnded(req.ID); err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	s.reply(w, map[string]bool{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.ctrl.Stats()
	s.reply(w, map[string]any{
		"started":                  st.Started,
		"frozen":                   st.Frozen,
		"migrated":                 st.Migrated,
		"unplanned":                st.Unplanned,
		"ended":                    st.Ended,
		"predicted":                st.Predicted,
		"migration_rate":           st.MigrationRate(),
		"recurring_migration_rate": st.RecurringMigrationRate(),
		"active_calls":             s.ctrl.ActiveCalls(),
	})
}

func (s *Server) handleWorld(w http.ResponseWriter, _ *http.Request) {
	type dcDTO struct {
		ID      int     `json:"id"`
		Name    string  `json:"name"`
		Country string  `json:"country"`
		Region  string  `json:"region"`
		Cost    float64 `json:"core_cost"`
	}
	out := make([]dcDTO, 0, len(s.world.DCs()))
	for _, dc := range s.world.DCs() {
		out = append(out, dcDTO{
			ID: dc.ID, Name: dc.Name, Country: string(dc.Country),
			Region: dc.Region.String(), Cost: dc.CoreCost,
		})
	}
	s.reply(w, map[string]any{"dcs": out, "countries": len(s.world.Countries()), "links": len(s.world.Links())})
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
