package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/model"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	world := geo.DefaultWorld()
	ctrl, err := controller.New(controller.Config{
		World: world,
		Placer: &controller.MinACLPlacer{
			ACLOf: func(cfg model.CallConfig, dc int) float64 { return cfg.ACL(world, dc) },
			NDCs:  len(world.DCs()),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(world, ctrl)
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestCallLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	// Start in Japan: assigned to tokyo.
	resp, out := post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"})
	if resp.StatusCode != http.StatusOK || out["dc_name"] != "tokyo" {
		t.Fatalf("start: %d %v", resp.StatusCode, out)
	}
	// Config turns out Indonesia-majority: migrate (the §5.4 example).
	resp, out = post(t, ts, "/v1/call/config", ConfigRequest{ID: 1, Config: "video|ID:5,JP:3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config: %d %v", resp.StatusCode, out)
	}
	if out["migrated"] != true {
		t.Errorf("expected migration: %v", out)
	}
	resp, _ = post(t, ts, "/v1/call/end", EndRequest{ID: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("end: %d", resp.StatusCode)
	}

	_, stats := get(t, ts, "/v1/stats")
	if stats["started"].(float64) != 1 || stats["migrated"].(float64) != 1 || stats["active_calls"].(float64) != 0 {
		t.Errorf("stats = %v", stats)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	// Unknown country.
	resp, _ := post(t, ts, "/v1/call/start", StartRequest{ID: 9, Country: "ZZ"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unknown country -> %d, want 409", resp.StatusCode)
	}
	// Malformed config string.
	post(t, ts, "/v1/call/start", StartRequest{ID: 2, Country: "US"})
	resp, _ = post(t, ts, "/v1/call/config", ConfigRequest{ID: 2, Config: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad config -> %d, want 400", resp.StatusCode)
	}
	// Unknown call ID.
	resp, _ = post(t, ts, "/v1/call/end", EndRequest{ID: 777})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unknown call end -> %d, want 409", resp.StatusCode)
	}
	// Unknown JSON field rejected.
	resp, err := http.Post(ts.URL+"/v1/call/start", "application/json",
		bytes.NewReader([]byte(`{"id":3,"country":"US","bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field -> %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/call/start")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route -> %d, want 405", resp.StatusCode)
	}
}

func TestWorldAndHealth(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := get(t, ts, "/v1/world")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("world: %d", resp.StatusCode)
	}
	dcs, ok := out["dcs"].([]any)
	if !ok || len(dcs) != 12 {
		t.Errorf("world dcs = %v", out["dcs"])
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}
