package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/obs"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	world := geo.DefaultWorld()
	ctrl, err := controller.New(controller.Config{
		World: world,
		Placer: &controller.MinACLPlacer{
			ACLOf: func(cfg model.CallConfig, dc int) float64 { return cfg.ACL(world, dc) },
			NDCs:  len(world.DCs()),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(world, ctrl)
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestCallLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	// Start in Japan: assigned to tokyo.
	resp, out := post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"})
	if resp.StatusCode != http.StatusOK || out["dc_name"] != "tokyo" {
		t.Fatalf("start: %d %v", resp.StatusCode, out)
	}
	// Config turns out Indonesia-majority: migrate (the §5.4 example).
	resp, out = post(t, ts, "/v1/call/config", ConfigRequest{ID: 1, Config: "video|ID:5,JP:3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config: %d %v", resp.StatusCode, out)
	}
	if out["migrated"] != true {
		t.Errorf("expected migration: %v", out)
	}
	resp, _ = post(t, ts, "/v1/call/end", EndRequest{ID: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("end: %d", resp.StatusCode)
	}

	_, stats := get(t, ts, "/v1/stats")
	if stats["started"].(float64) != 1 || stats["migrated"].(float64) != 1 || stats["active_calls"].(float64) != 0 {
		t.Errorf("stats = %v", stats)
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	// Unknown country: a bad request, not a conflict.
	resp, _ := post(t, ts, "/v1/call/start", StartRequest{ID: 9, Country: "ZZ"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown country -> %d, want 400", resp.StatusCode)
	}
	// Malformed config string.
	post(t, ts, "/v1/call/start", StartRequest{ID: 2, Country: "US"})
	resp, _ = post(t, ts, "/v1/call/config", ConfigRequest{ID: 2, Config: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad config -> %d, want 400", resp.StatusCode)
	}
	// Duplicate start: conflict.
	resp, _ = post(t, ts, "/v1/call/start", StartRequest{ID: 2, Country: "US"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate start -> %d, want 409", resp.StatusCode)
	}
	// Unknown call ID: not found.
	resp, _ = post(t, ts, "/v1/call/end", EndRequest{ID: 777})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown call end -> %d, want 404", resp.StatusCode)
	}
	// Unknown JSON field rejected.
	resp, err := http.Post(ts.URL+"/v1/call/start", "application/json",
		bytes.NewReader([]byte(`{"id":3,"country":"US","bogus":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field -> %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/v1/call/start")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST route -> %d, want 405", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	big := bytes.Repeat([]byte("x"), maxRequestBody+1024)
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed json", "/v1/call/start", `{"id":`, http.StatusBadRequest},
		{"wrong type", "/v1/call/start", `{"id":"one","country":"US"}`, http.StatusBadRequest},
		{"unknown field", "/v1/call/start", `{"id":3,"country":"US","bogus":1}`, http.StatusBadRequest},
		{"trailing garbage", "/v1/call/start", `{"id":3,"country":"US"} extra`, http.StatusBadRequest},
		{"oversized body", "/v1/call/start", `{"id":3,"country":"` + string(big) + `"}`, http.StatusRequestEntityTooLarge},
		{"unknown call config", "/v1/call/config", `{"id":555,"config":"audio|US:2"}`, http.StatusNotFound},
		{"unknown call end", "/v1/call/end", `{"id":556}`, http.StatusNotFound},
		{"bad dc fail", "/v1/dc/fail", `{"dc":-3}`, http.StatusBadRequest},
		{"bad dc recover", "/v1/dc/recover", `{"dc":9999}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s -> %d, want %d", tc.path, tc.name, resp.StatusCode, tc.want)
			}
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out["error"] == "" {
				t.Errorf("error body = %v, %v; want an error field", out, err)
			}
		})
	}
}

func TestReadyzTracksDegradation(t *testing.T) {
	world := geo.DefaultWorld()
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	client, err := kvstore.DialOptions(l.Addr().String(), kvstore.Options{
		DialTimeout: 250 * time.Millisecond,
		IOTimeout:   250 * time.Millisecond,
		MaxRetries:  -1,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctrl, err := controller.New(controller.Config{World: world, Store: client, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(world, ctrl).Mux())
	defer ts.Close()

	// Healthy: both probes pass.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s while healthy: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}

	// Kill the store and force a degraded write.
	srv.Close()
	post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while degraded: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, out := get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while degraded -> %d, want 503", resp.StatusCode)
	}
	if out["ready"] != false || out["journal_depth"].(float64) < 1 {
		t.Errorf("readyz body = %v", out)
	}
	_, stats := get(t, ts, "/v1/stats")
	if stats["degraded"].(float64) < 1 || stats["journal_depth"].(float64) < 1 {
		t.Errorf("stats while degraded = %v", stats)
	}

	// Recover: restart the store on the same address, drain the journal, and
	// readiness must flip back to 200.
	srv2 := kvstore.NewServer()
	addr := l.Addr().String()
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go srv2.Serve(l2)
	defer srv2.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := ctrl.ReplayJournal(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal did not drain after store restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, out = get(t, ts, "/readyz")
	if resp.StatusCode != http.StatusOK || out["ready"] != true {
		t.Errorf("readyz after recovery -> %d %v, want 200 ready", resp.StatusCode, out)
	}
	_, stats = get(t, ts, "/v1/stats")
	if stats["journal_depth"].(float64) != 0 {
		t.Errorf("journal_depth after drain = %v, want 0", stats["journal_depth"])
	}
}

// TestStatsKVCounters checks that the client's robustness counters surface
// in /v1/stats once the API is handed the store client, and that a store
// outage actually moves them.
func TestStatsKVCounters(t *testing.T) {
	world := geo.DefaultWorld()
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	client, err := kvstore.DialOptions(l.Addr().String(), kvstore.Options{
		DialTimeout: 250 * time.Millisecond,
		IOTimeout:   250 * time.Millisecond,
		MaxRetries:  -1,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctrl, err := controller.New(controller.Config{World: world, Store: client, ProbeInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s := New(world, ctrl)
	s.KV = client
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	_, stats := get(t, ts, "/v1/stats")
	for _, k := range []string{"kv_redials", "kv_retries", "kv_poisonings"} {
		if _, ok := stats[k].(float64); !ok {
			t.Fatalf("stats missing %s: %v", k, stats)
		}
	}

	// Sever the store: the degraded write poisons the connection.
	srv.Close()
	post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"})
	_, stats = get(t, ts, "/v1/stats")
	if stats["kv_poisonings"].(float64) < 1 {
		t.Errorf("kv_poisonings after outage = %v, want >= 1", stats["kv_poisonings"])
	}
}

// TestMuxMetrics routes requests through the obs middleware and checks the
// per-route counters and latency histograms in the exposition, including a
// 4xx outcome.
func TestMuxMetrics(t *testing.T) {
	s, _ := newTestServer(t)
	reg := obs.NewRegistry()
	s.HTTP = obs.NewHTTPMetrics(reg)
	ts := httptest.NewServer(s.Mux())
	defer ts.Close()

	if resp, _ := post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts, "/v1/call/start", StartRequest{ID: 2, Country: "ZZ"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad start: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/v1/stats"); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sb_http_requests_total{route="POST /v1/call/start",code="2xx"} 1`,
		`sb_http_requests_total{route="POST /v1/call/start",code="4xx"} 1`,
		`sb_http_requests_total{route="GET /v1/stats",code="2xx"} 1`,
		`sb_http_request_seconds_count{route="POST /v1/call/start"} 2`,
		"sb_http_inflight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDCFailEndpointDrains(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start: %d", resp.StatusCode)
	}
	dc := int(out["dc"].(float64))

	resp, out = post(t, ts, "/v1/dc/fail", DCRequest{DC: dc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail: %d %v", resp.StatusCode, out)
	}
	if out["drained"].(float64) != 1 {
		t.Errorf("drained = %v, want 1", out["drained"])
	}
	_, stats := get(t, ts, "/v1/stats")
	if stats["failed_over"].(float64) != 1 {
		t.Errorf("failed_over = %v", stats["failed_over"])
	}
	dcs, ok := stats["failed_dcs"].([]any)
	if !ok || len(dcs) != 1 || int(dcs[0].(float64)) != dc {
		t.Errorf("failed_dcs = %v", stats["failed_dcs"])
	}
	// A new JP call avoids the failed DC.
	resp, out = post(t, ts, "/v1/call/start", StartRequest{ID: 2, Country: "JP"})
	if resp.StatusCode != http.StatusOK || int(out["dc"].(float64)) == dc {
		t.Errorf("post-fail start: %d %v", resp.StatusCode, out)
	}

	resp, _ = post(t, ts, "/v1/dc/recover", DCRequest{DC: dc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recover: %d", resp.StatusCode)
	}
	_, stats = get(t, ts, "/v1/stats")
	if dcs, _ := stats["failed_dcs"].([]any); len(dcs) != 0 {
		t.Errorf("failed_dcs after recover = %v", stats["failed_dcs"])
	}
}

func TestWorldAndHealth(t *testing.T) {
	_, ts := newTestServer(t)
	resp, out := get(t, ts, "/v1/world")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("world: %d", resp.StatusCode)
	}
	dcs, ok := out["dcs"].([]any)
	if !ok || len(dcs) != 12 {
		t.Errorf("world dcs = %v", out["dcs"])
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestStandbyRefusesWithLeaderHint drives the leadership-aware API surface:
// while another controller holds the lease, call-control POSTs and /readyz
// answer 503 with Retry-After, the standby-exemption header, and the leader's
// ID in the body — and none of those 503s burn the availability SLO. When
// leadership arrives, the same routes serve normally.
func TestStandbyRefusesWithLeaderHint(t *testing.T) {
	store := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go store.Serve(l)
	t.Cleanup(func() { store.Close() })
	dial := func() *kvstore.Client {
		c, err := kvstore.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Another controller already leads.
	admin := dial()
	if _, err := admin.SetLease(controller.DefaultLeaseKey, "ctrl-B", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	el := controller.NewElector(controller.ElectorConfig{
		Store: dial(),
		ID:    "api-node",
		TTL:   200 * time.Millisecond,
		Renew: 20 * time.Millisecond,
	})
	go el.Run()
	t.Cleanup(func() { el.Stop(); <-el.Done() })

	s, _ := newTestServer(t)
	reg := obs.NewRegistry()
	s.HTTP = obs.NewHTTPMetrics(reg)
	s.Elector = el
	ts := httptest.NewServer(s.Mux())
	t.Cleanup(ts.Close)

	deadline := time.Now().Add(5 * time.Second)
	for el.LeaderHint() != "ctrl-B" {
		if time.Now().After(deadline) {
			t.Fatal("elector never observed the leader")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("standby POST status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if resp.Header.Get(obs.StandbyHeader) == "" {
		t.Fatal("standby 503 missing the SLO exemption header")
	}
	if body["leader"] != "ctrl-B" || body["reason"] != "standby" {
		t.Fatalf("standby body = %v", body)
	}
	if resp, body := get(t, ts, "/readyz"); resp.StatusCode != http.StatusServiceUnavailable || body["leader"] != "ctrl-B" {
		t.Fatalf("standby /readyz = %d %v", resp.StatusCode, body)
	}
	if _, err5xx := s.HTTP.Totals(); err5xx != 0 {
		t.Fatalf("standby 503s burned the SLO: err5xx = %d", err5xx)
	}

	// Leadership moves here; the same surface must start serving.
	if err := admin.DelLease(controller.DefaultLeaseKey, "ctrl-B"); err != nil {
		t.Fatal(err)
	}
	for !el.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("elector never took over")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, body := post(t, ts, "/v1/call/start", StartRequest{ID: 1, Country: "JP"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader POST = %d %v", resp.StatusCode, body)
	}
	if resp, body := get(t, ts, "/readyz"); resp.StatusCode != http.StatusOK || body["leader"] != true {
		t.Fatalf("leader /readyz = %d %v", resp.StatusCode, body)
	}
}
