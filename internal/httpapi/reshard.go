// Reshard admin surface: POST /v1/reshard starts (or resumes) a live shard
// split, GET /v1/reshard reports its progress, POST /v1/reshard/abort rolls
// a pre-cutover migration back. The endpoints only launch and observe — the
// coordinator itself is store-driven (see internal/shard), so the fleet
// converges even if the node that accepted the POST dies mid-flight and the
// operator re-POSTs anywhere else.

package httpapi

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"

	"switchboard/internal/shard"
)

// ReshardAdmin launches reshard coordinators on behalf of the admin API.
// Wired by cmd/switchboard; nil leaves the endpoints unregistered.
type ReshardAdmin struct {
	// Manager supplies the observed epoch/phase/progress for GET.
	Manager *shard.Manager
	// NewCoordinator builds a coordinator with its own store client; the
	// admin closes it when the run ends.
	NewCoordinator func() (*shard.Coordinator, error)
	Logger         *slog.Logger

	mu      sync.Mutex
	running bool               // a coordinator goroutine is live on this node
	cancel  context.CancelFunc // cancels the local run
}

// errReshardBusy distinguishes 409s from 500s at the handler.
type errReshardBusy struct{ holder string }

func (e errReshardBusy) Error() string {
	if e.holder != "" {
		return "reshard coordinator lease held by " + e.holder
	}
	return "reshard coordinator already running on this node"
}

// Start launches a coordinator run toward target shards in the background.
func (ra *ReshardAdmin) Start(target int) error {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	if ra.running {
		return errReshardBusy{}
	}
	co, err := ra.NewCoordinator()
	if err != nil {
		return err
	}
	// Advisory pre-check so a second node's POST answers 409 instead of
	// silently queueing a coordinator behind the live one. Racy by nature —
	// the lease, not this check, is what actually arbitrates.
	if holder := co.LeaseHolder(); holder != "" && holder != ra.Manager.ID() {
		_ = co.Close()
		return errReshardBusy{holder: holder}
	}
	ctx, cancel := context.WithCancel(context.Background())
	ra.running, ra.cancel = true, cancel
	go func() {
		defer func() {
			cancel()
			_ = co.Close()
			ra.mu.Lock()
			ra.running, ra.cancel = false, nil
			ra.mu.Unlock()
		}()
		st, err := co.Run(ctx, target)
		if err != nil && ra.Logger != nil {
			ra.Logger.Warn("reshard run ended with error",
				"target", target, "phase", st.Phase, "err", err)
		}
	}()
	return nil
}

// Abort cancels any local run, then rolls the checkpointed migration back.
// ctx bounds the wait for the coordinator lease.
func (ra *ReshardAdmin) Abort(ctx context.Context) (shard.ReshardState, error) {
	ra.mu.Lock()
	if ra.cancel != nil {
		ra.cancel() // the local run releases the lease on its way out
	}
	ra.mu.Unlock()
	co, err := ra.NewCoordinator()
	if err != nil {
		return shard.ReshardState{}, err
	}
	defer func() { _ = co.Close() }()
	if holder := co.LeaseHolder(); holder != "" && holder != ra.Manager.ID() {
		return shard.ReshardState{}, errReshardBusy{holder: holder}
	}
	return co.Abort(ctx)
}

// ReshardStartRequest is the body of POST /v1/reshard.
type ReshardStartRequest struct {
	TargetShards int `json:"target_shards"`
}

func (s *Server) handleReshardStart(w http.ResponseWriter, r *http.Request) {
	var req ReshardStartRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.TargetShards <= s.Reshard.Manager.Ring().Shards() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("target_shards %d does not grow the %d-shard ring",
				req.TargetShards, s.Reshard.Manager.Ring().Shards()))
		return
	}
	if err := s.Reshard.Start(req.TargetShards); err != nil {
		code := http.StatusInternalServerError
		if _, busy := err.(errReshardBusy); busy {
			code = http.StatusConflict
		}
		httpError(w, code, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	s.reply(w, map[string]any{"status": "started", "target_shards": req.TargetShards})
}

func (s *Server) handleReshardStatus(w http.ResponseWriter, _ *http.Request) {
	m := s.Reshard.Manager
	out := map[string]any{
		"ring_epoch": m.RingEpoch(),
		"phase":      m.Phase(),
		"shards":     m.Ring().Shards(),
	}
	if st, ok := m.Reshard(); ok {
		out["migration"] = map[string]any{
			"from": st.From, "to": st.To, "phase": st.Phase,
			"copied": st.Copied, "total": st.Total,
		}
	}
	s.reply(w, out)
}

func (s *Server) handleReshardAbort(w http.ResponseWriter, r *http.Request) {
	st, err := s.Reshard.Abort(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if _, busy := err.(errReshardBusy); busy {
			code = http.StatusConflict
		}
		httpError(w, code, err)
		return
	}
	s.reply(w, map[string]any{"status": "aborted", "was_phase": st.Phase})
}
