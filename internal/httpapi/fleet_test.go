package httpapi

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
	"switchboard/internal/shard"
)

// fleetNode is one member of an in-process fleet with full telemetry: its own
// registry (controller metrics wired), span ring, and tracer, serving the
// /metrics/instance and /metrics/fleet routes.
type fleetNode struct {
	addr  string
	mgr   *shard.Manager
	api   *Server
	hs    *http.Server
	spans *span.Ring
}

// startFleetNode builds a node on a pre-opened listener so every node can know
// the full peer list (including nodes started after it).
func startFleetNode(t *testing.T, l net.Listener, storeAddr string, ring *shard.Ring, prefer []int, peers []string) *fleetNode {
	t.Helper()
	addr := l.Addr().String()
	world := geo.DefaultWorld()
	reg := obs.NewRegistry()
	metrics := controller.NewMetrics(reg)
	spans := span.NewRing(256)
	ctrls := make([]*controller.Controller, ring.Shards())
	for i := range ctrls {
		kc, err := kvstore.Dial(storeAddr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = kc.Close() })
		ctrls[i], err = controller.New(controller.Config{
			World:     world,
			Store:     kc,
			KeyPrefix: shard.KeyPrefix(i),
			Shard:     i,
			Metrics:   metrics,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mgr, err := shard.NewManager(shard.Config{
		Ring:        ring,
		ID:          addr,
		Controllers: ctrls,
		ElectorStore: func(i int) (*kvstore.Client, error) {
			return kvstore.Dial(storeAddr)
		},
		Prefer: prefer,
		TTL:    300 * time.Millisecond,
		Renew:  75 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		mgr.Stop(ctx)
		cancel()
	})
	s := New(world, nil)
	s.Shards = &ShardRouter{Manager: mgr, Forward: true, Peers: peers}
	s.Registry = reg
	s.Tracer = span.NewTracer(int64(len(peers)+1), spans)
	hs := &http.Server{Handler: s.Mux()}
	go func() { _ = hs.Serve(l) }()
	t.Cleanup(func() { _ = hs.Close() })
	return &fleetNode{addr: addr, mgr: mgr, api: s, hs: hs, spans: spans}
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func findFamily(fams []obs.SnapFamily, name string) *obs.SnapFamily {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

func familyCount(fams []obs.SnapFamily, name string) uint64 {
	f := findFamily(fams, name)
	if f == nil {
		return 0
	}
	var n uint64
	for _, p := range f.Points {
		n += p.Count
	}
	return n
}

// TestFleetMetricsFederation runs a 3-node, 3-shard fleet, places calls on
// every shard, and checks the federated invariants the fleet scrape promises:
// merged counter sums equal the sum of per-instance sums, high-latency
// histogram buckets carry exemplar trace IDs resolvable in the owning node's
// span ring, and killing one node leaves /metrics/fleet serveable with the
// dead instance marked stale — its cached contribution still in the sums.
func TestFleetMetricsFederation(t *testing.T) {
	store := startShardStore(t)
	ring, err := shard.NewRing(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	listeners := make([]net.Listener, 3)
	peers := make([]string, 3)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = l.Addr().String()
	}
	nodes := make([]*fleetNode, 3)
	for i := range nodes {
		nodes[i] = startFleetNode(t, listeners[i], store, ring, []int{i}, peers)
	}
	for _, n := range nodes {
		n.mgr.Start()
	}
	deadline := time.Now().Add(8 * time.Second)
	for settled := false; !settled; {
		settled = true
		for i, n := range nodes {
			if !n.mgr.Owns(i) {
				settled = false
			}
		}
		if !settled {
			if time.Now().After(deadline) {
				t.Fatalf("fleet never split: %v %v %v",
					nodes[0].mgr.Owned(), nodes[1].mgr.Owned(), nodes[2].mgr.Owned())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Place two calls per shard, at each shard's owner.
	const perShard = 2
	var id uint64 = 1
	for sh, n := range nodes {
		for c := 0; c < perShard; c++ {
			id = confOnShard(ring, sh, id)
			if resp := postStart(t, n.addr, id, nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("start on shard %d: %d", sh, resp.StatusCode)
			}
			id++
		}
	}
	total := uint64(perShard * len(nodes))

	// Per-instance sums.
	var instSum uint64
	for _, n := range nodes {
		var inst InstanceMetrics
		if code := getJSON(t, "http://"+n.addr+"/metrics/instance", &inst); code != http.StatusOK {
			t.Fatalf("/metrics/instance on %s: %d", n.addr, code)
		}
		if inst.Instance != n.addr {
			t.Fatalf("instance id = %q, want %q", inst.Instance, n.addr)
		}
		instSum += familyCount(inst.Families, "sb_controller_calls_started_total")
	}
	if instSum != total {
		t.Fatalf("per-instance started sum = %d, want %d", instSum, total)
	}

	// Fleet merge: sums match, all instances live.
	var fleet FleetMetrics
	if code := getJSON(t, "http://"+nodes[0].addr+"/metrics/fleet", &fleet); code != http.StatusOK {
		t.Fatalf("/metrics/fleet: %d", code)
	}
	if got := familyCount(fleet.Families, "sb_controller_calls_started_total"); got != total {
		t.Fatalf("fleet started sum = %d, want %d", got, total)
	}
	if len(fleet.Instances) != 3 {
		t.Fatalf("fleet instances = %d, want 3", len(fleet.Instances))
	}
	for _, inst := range fleet.Instances {
		if inst.Stale || inst.Error != "" {
			t.Fatalf("instance %s unexpectedly stale: %+v", inst.Instance, inst)
		}
	}

	// Exemplars: every placement ran under a root span, so the place-seconds
	// histogram must carry trace IDs, and each must resolve in some node's
	// span ring.
	ph := findFamily(fleet.Families, "sb_controller_place_seconds")
	if ph == nil {
		t.Fatal("fleet snapshot missing sb_controller_place_seconds")
	}
	exemplars := 0
	for _, p := range ph.Points {
		for _, e := range p.Exemplars {
			exemplars++
			if len(e.Trace) != 16 {
				t.Fatalf("exemplar trace %q: want 16 hex digits", e.Trace)
			}
			raw, err := strconv.ParseUint(e.Trace, 16, 64)
			if err != nil || raw == 0 {
				t.Fatalf("exemplar trace %q unparseable: %v", e.Trace, err)
			}
			resolved := false
			for _, n := range nodes {
				if len(n.spans.Trace(span.ID(raw))) > 0 {
					resolved = true
					break
				}
			}
			if !resolved {
				t.Fatalf("exemplar trace %s resolves in no node's span ring", e.Trace)
			}
		}
	}
	if exemplars == 0 {
		t.Fatal("no exemplars on sb_controller_place_seconds; traced placements must stamp them")
	}

	// Kill node 2's API listener (its cached snapshot is warm from the scrape
	// above). The fleet view must stay serveable: the dead instance is marked
	// stale, and its cached counts keep the sums whole.
	_ = nodes[2].hs.Close()
	var after FleetMetrics
	if code := getJSON(t, "http://"+nodes[0].addr+"/metrics/fleet", &after); code != http.StatusOK {
		t.Fatalf("/metrics/fleet with dead peer: %d", code)
	}
	if got := familyCount(after.Families, "sb_controller_calls_started_total"); got != total {
		t.Fatalf("fleet started sum with dead peer = %d, want %d", got, total)
	}
	foundStale := false
	for _, inst := range after.Instances {
		if inst.Instance == nodes[2].addr {
			if !inst.Stale || inst.Error == "" {
				t.Fatalf("dead instance not marked stale: %+v", inst)
			}
			foundStale = true
		} else if inst.Stale {
			t.Fatalf("live instance %s marked stale", inst.Instance)
		}
	}
	if !foundStale {
		t.Fatalf("dead instance missing from fleet view: %+v", after.Instances)
	}
}
