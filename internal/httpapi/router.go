package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"switchboard/internal/obs"
	"switchboard/internal/shard"
)

// Routing headers for the sharded control plane.
const (
	// HopsHeader counts how many nodes have forwarded a request; it bounds
	// forward chains when ownership hints are stale fleet-wide.
	HopsHeader = "X-Switchboard-Hops"
	// ShardLeaderHeader carries the owning shard leader's address on 307
	// redirects and routing 503s, so clients can re-aim without re-probing.
	ShardLeaderHeader = "X-Switchboard-Shard-Leader"
	// ShardHeader carries the shard the request's conference ID maps to.
	ShardHeader = "X-Switchboard-Shard"
	// PrevShardLeaderHeader carries the pre-cutover owner's leader during a
	// reshard's double-read window: a client chasing a 307 can fall back to
	// the old owner if the new one has not finished recovering the call.
	PrevShardLeaderHeader = "X-Switchboard-Shard-Leader-Prev"
)

// Forwarding defaults, sized like the kvstore MOVED-following client: a few
// bounded, jittered attempts that in total stay well under a lease TTL.
const (
	// DefaultMaxHops bounds node-to-node forward chains.
	DefaultMaxHops = 3
	// DefaultForwardAttempts bounds per-request forward attempts on this node.
	DefaultForwardAttempts = 3
	// DefaultAttemptTimeout is the per-attempt deadline.
	DefaultAttemptTimeout = 2 * time.Second
	// forwardBackoffBase seeds the jittered exponential backoff between
	// attempts.
	forwardBackoffBase = 25 * time.Millisecond
)

// ShardRouter steers call-control requests to the shard that owns their
// conference ID. Requests for locally-led shards are served in place; for the
// rest the router either proxies to the owner (Forward) or degrades to
// routing hints — a 307 with ShardLeaderHeader when the owner is known, a
// Retry-After 503 when it is not. A non-owning node therefore keeps serving
// reads and routing instead of 503ing the world.
type ShardRouter struct {
	// Manager supplies the ring, local ownership, and per-shard leader hints.
	Manager *shard.Manager
	// Forward enables server-side proxying to the owner; when false every
	// non-local request answers with a redirect or routing 503.
	Forward bool
	// MaxHops bounds forward chains (DefaultMaxHops when 0).
	MaxHops int
	// Attempts bounds forward attempts per request (DefaultForwardAttempts
	// when 0).
	Attempts int
	// AttemptTimeout is the per-attempt deadline (DefaultAttemptTimeout
	// when 0).
	AttemptTimeout time.Duration
	// Client issues forwarded requests; nil means a zero http.Client (the
	// per-attempt context carries the deadline, so no global timeout).
	Client *http.Client
	// Peers lists the other nodes' API addresses. When a shard's leader is
	// unknown (fresh boot, hint lost with a crashed elector), forwarding
	// falls back to round-robining the peers — whoever receives it either
	// owns the shard or knows more than we do, and the hop bound caps the
	// walk.
	Peers []string

	rng atomic.Uint32 // xorshift state for backoff jitter
}

func (rt *ShardRouter) maxHops() int {
	if rt.MaxHops <= 0 {
		return DefaultMaxHops
	}
	return rt.MaxHops
}

func (rt *ShardRouter) attempts() int {
	if rt.Attempts <= 0 {
		return DefaultForwardAttempts
	}
	return rt.Attempts
}

func (rt *ShardRouter) attemptTimeout() time.Duration {
	if rt.AttemptTimeout <= 0 {
		return DefaultAttemptTimeout
	}
	return rt.AttemptTimeout
}

func (rt *ShardRouter) client() *http.Client {
	if rt.Client != nil {
		return rt.Client
	}
	return &http.Client{
		// Forwarded 307s must bounce back to the caller, not be chased
		// server-side: following here would defeat the hop bound.
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
}

// backoff mirrors the kvstore client's retry pacing: exponential from the
// base with ±25% xorshift jitter so a fleet of routers chasing one moved
// shard doesn't thunder in lockstep.
func (rt *ShardRouter) backoff(attempt int) time.Duration {
	d := forwardBackoffBase << attempt
	s := rt.rng.Load()
	if s == 0 {
		s = uint32(time.Now().UnixNano()) | 1
	}
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	rt.rng.Store(s)
	jitter := (int64(s%511) - 255) * int64(d) / 1024 // ±25%
	return d + time.Duration(jitter)
}

// ownerHint returns the last observed leader of a shard, "" when unknown or
// when the hint points at this very node (which is not the owner, or the
// request would have been served locally).
func (rt *ShardRouter) ownerHint(sh int) string {
	hint := rt.Manager.OwnerHint(sh)
	if hint == rt.Manager.ID() {
		return ""
	}
	return hint
}

// peerFallback picks a forward target when no owner hint exists, rotating
// through the configured peers (skipping this node) across attempts.
func (rt *ShardRouter) peerFallback(attempt int) string {
	self := rt.Manager.ID()
	n := len(rt.Peers)
	for i := 0; i < n; i++ {
		p := rt.Peers[(attempt+i)%n]
		if p != "" && p != self {
			return p
		}
	}
	return ""
}

// retryAfterSecs renders a duration as a Retry-After value: whole seconds,
// rounded up, at least 1.
func retryAfterSecs(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// relay handles a call-control request whose shard this node does not lead.
// A request that already burned its hop budget gets a typed 503 instead of
// another bounce: when ownership hints are stale fleet-wide (mid-failover,
// mid-reshard), forward chains would otherwise walk in circles.
func (rt *ShardRouter) relay(d shard.RouteDecision, body []byte, w http.ResponseWriter, r *http.Request) {
	hops, _ := strconv.Atoi(r.Header.Get(HopsHeader))
	if hops >= rt.maxHops() {
		rt.hopsExhausted(d.Shard, w)
		return
	}
	if rt.Forward && rt.forward(d.Shard, hops, body, w, r) {
		return
	}
	rt.hintResponse(d, w, r)
}

// hopsExhausted answers the typed proxy-hop-budget 503: Retry-After from the
// lease TTL (ownership settles within one), StandbyHeader so a routing
// refusal does not burn the availability SLO, and a machine-readable reason
// so clients and drills can tell it from a standby or degraded 503.
func (rt *ShardRouter) hopsExhausted(sh int, w http.ResponseWriter) {
	if m := rt.Manager.Metrics(); m != nil {
		m.ProxyHopsExhausted.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(obs.StandbyHeader, "1")
	w.Header().Set("Retry-After", retryAfterSecs(rt.Manager.TTL()))
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shard": sh, "reason": "proxy hop budget exhausted",
	})
}

// heldResponse answers a write paused by the journal-handoff barrier: the
// key is mid-move and its source shard is draining. The pause lasts well
// under a second on a healthy fleet, so Retry-After is the minimum; the
// write was never admitted, so the client retry loses nothing.
func (rt *ShardRouter) heldResponse(d shard.RouteDecision, w http.ResponseWriter) {
	if m := rt.Manager.Metrics(); m != nil {
		m.HandoffHeld.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(obs.StandbyHeader, "1")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shard": d.Shard, "reason": "write held: key migrating (journal handoff)",
	})
}

// hintResponse degrades to routing information: 307 + leader hint when the
// owner is known, else a Retry-After 503 bounded by the lease TTL (ownership
// settles within one). Both carry obs.StandbyHeader — correct routing by a
// non-owner is not an outage, so it must not burn the availability SLO.
// During a cutover's double-read window the 307 also names the pre-cutover
// owner's leader, so a client that strikes out on the new owner has the
// fallback in hand.
func (rt *ShardRouter) hintResponse(d shard.RouteDecision, w http.ResponseWriter, r *http.Request) {
	sh := d.Shard
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(obs.StandbyHeader, "1")
	w.Header().Set("Retry-After", retryAfterSecs(rt.Manager.TTL()))
	if d.DoubleRead && d.OldShard >= 0 {
		if prev := rt.Manager.OwnerHint(d.OldShard); prev != "" {
			w.Header().Set(PrevShardLeaderHeader, prev)
		} else if rt.Manager.Owns(d.OldShard) {
			w.Header().Set(PrevShardLeaderHeader, rt.Manager.ID())
		}
	}
	if hint := rt.ownerHint(sh); hint != "" {
		w.Header().Set(ShardLeaderHeader, hint)
		w.Header().Set("Location", "http://"+hint+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect) // 307 preserves method+body
		_ = json.NewEncoder(w).Encode(map[string]any{
			"shard": sh, "leader": hint, "reason": "not shard owner",
		})
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"shard": sh, "reason": "shard leader unknown",
	})
}

// forward proxies the request to the shard's owner, re-resolving the hint
// and backing off between attempts; it reports whether a response (any
// response) was relayed to the caller. A 503 standby answer from a node that
// just lost the shard is retried — ownership is moving and the next hint
// resolution usually lands on the new owner.
func (rt *ShardRouter) forward(sh, hops int, body []byte, w http.ResponseWriter, r *http.Request) bool {
	attempts := rt.attempts()
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-r.Context().Done():
				return false
			case <-time.After(rt.backoff(a - 1)):
			}
		}
		hint := rt.ownerHint(sh)
		if hint == "" {
			hint = rt.peerFallback(a)
		}
		if hint == "" {
			continue
		}
		retriable := a+1 < attempts
		if done, relayed := rt.forwardOnce(hint, hops, body, w, r, retriable); done {
			return relayed
		}
	}
	return false
}

// forwardOnce issues one proxied attempt. done=false means "retry" (transport
// error, or a retriable standby 503); done=true means the attempt concluded —
// relayed tells whether a response went to the caller.
func (rt *ShardRouter) forwardOnce(hint string, hops int, body []byte, w http.ResponseWriter, r *http.Request, retriable bool) (done, relayed bool) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.attemptTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, "http://"+hint+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return true, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HopsHeader, strconv.Itoa(hops+1))
	resp, err := rt.client().Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			return true, false // caller gone; nothing to relay to
		}
		return false, false
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get(obs.StandbyHeader) != "" && retriable {
		return false, false
	}
	for _, h := range []string{"Content-Type", "Retry-After", "Location", ShardLeaderHeader, PrevShardLeaderHeader, ShardHeader, obs.StandbyHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, maxRequestBody))
	return true, true
}
