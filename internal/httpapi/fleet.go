package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"switchboard/internal/obs"
)

// Fleet metric federation: every node serves its own registry snapshot on
// /metrics/instance, and any node can answer /metrics/fleet by fanning out to
// the shard peers, merging the per-instance snapshots label-wise
// (obs.MergeFamilies — exact integer counter/bucket sums, highest-value
// exemplar per bucket), and reporting which instances answered live versus
// from a cached last-good snapshot. A dead peer therefore degrades the fleet
// view to slightly stale numbers for that instance instead of failing the
// whole scrape; its entry carries stale=true and the snapshot's age so
// dashboards (cmd/sbtop) can flag it.

// DefaultFleetTimeout bounds each peer scrape in a /metrics/fleet fan-out.
// Peers answer from in-memory atomics, so anything slower than this is down.
const DefaultFleetTimeout = 2 * time.Second

// maxInstanceBody caps a peer snapshot read; a registry snapshot is a few
// hundred KB at most even with every per-verb family populated.
const maxInstanceBody = 8 << 20

// InstanceMetrics is the /metrics/instance payload: one node's registry
// snapshot plus its fleet identity.
type InstanceMetrics struct {
	Instance string           `json:"instance"`
	Families []obs.SnapFamily `json:"families"`
}

// FleetInstance describes one instance's contribution to a fleet snapshot.
type FleetInstance struct {
	Instance string `json:"instance"`
	// Stale marks a contribution served from this node's last-good cache
	// because the live scrape failed; AgeMs is how old that cache entry is.
	Stale bool  `json:"stale,omitempty"`
	AgeMs int64 `json:"age_ms,omitempty"`
	// Error is the live-scrape failure for a stale or missing instance.
	Error string `json:"error,omitempty"`
}

// FleetMetrics is the /metrics/fleet payload.
type FleetMetrics struct {
	Self      string           `json:"self"`
	Instances []FleetInstance  `json:"instances"`
	Families  []obs.SnapFamily `json:"families"`
}

// peerSnapshot is a last-good cache entry for one peer.
type peerSnapshot struct {
	payload InstanceMetrics
	at      time.Time
}

// fleetCache holds last-good peer snapshots; lives on the Server lazily so a
// zero Server works.
type fleetCache struct {
	mu   sync.Mutex
	last map[string]peerSnapshot // guarded by mu; key = peer address
}

func (c *fleetCache) get(peer string) (peerSnapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap, ok := c.last[peer]
	return snap, ok
}

func (c *fleetCache) put(peer string, snap peerSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last == nil {
		c.last = map[string]peerSnapshot{}
	}
	c.last[peer] = snap
}

// instanceID names this node in fleet snapshots.
func (s *Server) instanceID() string {
	if s.Instance != "" {
		return s.Instance
	}
	if s.Shards != nil {
		return s.Shards.Manager.ID()
	}
	return "self"
}

func (s *Server) fleetTimeout() time.Duration {
	if s.FleetTimeout > 0 {
		return s.FleetTimeout
	}
	return DefaultFleetTimeout
}

// handleMetricsInstance serves this node's registry snapshot — the unit of
// fleet federation, and what /metrics/fleet scrapes from each peer.
func (s *Server) handleMetricsInstance(w http.ResponseWriter, _ *http.Request) {
	s.reply(w, InstanceMetrics{Instance: s.instanceID(), Families: s.Registry.Gather()})
}

// handleMetricsFleet fans out to every peer concurrently, folds the
// per-instance snapshots into one merged family set, and reports per-instance
// liveness. The local snapshot is taken in-process (never stale); peer
// failures fall back to the last-good cache.
func (s *Server) handleMetricsFleet(w http.ResponseWriter, r *http.Request) {
	local := InstanceMetrics{Instance: s.instanceID(), Families: s.Registry.Gather()}
	peers := s.fleetPeers()

	type peerResult struct {
		info FleetInstance
		fams []obs.SnapFamily
	}
	results := make([]peerResult, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			payload, err := s.scrapePeer(r.Context(), peer)
			if err == nil {
				s.fleet.put(peer, peerSnapshot{payload: payload, at: s.Now()})
				results[i] = peerResult{info: FleetInstance{Instance: payload.Instance}, fams: payload.Families}
				return
			}
			info := FleetInstance{Instance: peer, Stale: true, Error: err.Error()}
			if snap, ok := s.fleet.get(peer); ok {
				info.Instance = snap.payload.Instance
				info.AgeMs = s.Now().Sub(snap.at).Milliseconds()
				results[i] = peerResult{info: info, fams: snap.payload.Families}
				return
			}
			// Never scraped successfully: nothing to contribute, but the
			// instance still shows up so its absence is visible.
			results[i] = peerResult{info: info}
		}(i, peer)
	}
	wg.Wait()

	instances := []FleetInstance{{Instance: local.Instance}}
	sets := [][]obs.SnapFamily{local.Families}
	for _, res := range results {
		instances = append(instances, res.info)
		if res.fams != nil {
			sets = append(sets, res.fams)
		}
	}
	sort.Slice(instances, func(i, j int) bool { return instances[i].Instance < instances[j].Instance })
	s.reply(w, FleetMetrics{
		Self:      local.Instance,
		Instances: instances,
		Families:  obs.MergeFamilies(sets...),
	})
}

// fleetPeers lists the peer addresses to scrape: the shard router's peer set
// minus this node (an unsharded node federates with itself only).
func (s *Server) fleetPeers() []string {
	if s.Shards == nil {
		return nil
	}
	self := s.Shards.Manager.ID()
	peers := make([]string, 0, len(s.Shards.Peers))
	for _, p := range s.Shards.Peers {
		if p != "" && p != self {
			peers = append(peers, p)
		}
	}
	return peers
}

// scrapePeer fetches one peer's /metrics/instance snapshot.
func (s *Server) scrapePeer(ctx context.Context, peer string) (InstanceMetrics, error) {
	ctx, cancel := context.WithTimeout(ctx, s.fleetTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/metrics/instance", nil)
	if err != nil {
		return InstanceMetrics{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return InstanceMetrics{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return InstanceMetrics{}, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
	var payload InstanceMetrics
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxInstanceBody)).Decode(&payload); err != nil {
		return InstanceMetrics{}, fmt.Errorf("peer %s: %w", peer, err)
	}
	return payload, nil
}
