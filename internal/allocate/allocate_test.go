package allocate

import (
	"math"
	"testing"

	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/provision"
	"switchboard/internal/records"
	"switchboard/internal/trace"
)

func buildModel(t *testing.T) *provision.LoadModel {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Days = 2
	cfg.CallsPerDay = 1200
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := geo.DefaultWorld()
	db := records.New(cfg.Start, w)
	g.EachCall(func(r *model.CallRecord) bool { db.Add(r); return true })
	in := &provision.Inputs{
		World:              w,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(10),
		LatencyThresholdMs: 120,
		SlotStride:         8,
	}
	lm, err := provision.NewLoadModel(in)
	if err != nil {
		t.Fatal(err)
	}
	return lm
}

func TestBuildValidation(t *testing.T) {
	lm := buildModel(t)
	if _, err := Build(lm, []float64{1}, make([]float64, len(lm.World().Links()))); err == nil {
		t.Error("wrong cores length should error")
	}
	if _, err := Build(lm, make([]float64, len(lm.World().DCs())), []float64{1}); err == nil {
		t.Error("wrong links length should error")
	}
}

func TestPlanWithinCapacityMatchesLF(t *testing.T) {
	// With abundant capacity the plan should place every call at its
	// min-ACL DC — matching locality-first, as §6.3 observes for SB with
	// backup headroom.
	lm := buildModel(t)
	w := lm.World()
	cores := make([]float64, len(w.DCs()))
	links := make([]float64, len(w.Links()))
	for i := range cores {
		cores[i] = 1e9
	}
	for i := range links {
		links[i] = 1e9
	}
	res, err := Build(lm, cores, links)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow > 1e-9 {
		t.Errorf("overflow %g with infinite capacity", res.Overflow)
	}
	d := lm.Demand()
	for t2 := range res.Alloc {
		for c := range res.Alloc[t2] {
			dem := d.Counts[t2][c]
			var got float64
			best := lm.MinACLDC(c)
			for x, s := range res.Alloc[t2][c] {
				got += s
				if s > 1e-9 && math.Abs(lm.ACL(c, x)-lm.ACL(c, best)) > 1e-9 {
					t.Fatalf("slot %d config %d placed at DC %d (ACL %g) despite free capacity at %d (ACL %g)",
						t2, c, x, lm.ACL(c, x), best, lm.ACL(c, best))
				}
			}
			if math.Abs(got-dem) > 1e-6*(1+dem) {
				t.Fatalf("slot %d config %d allocated %g, want %g", t2, c, got, dem)
			}
		}
	}
}

func TestPlanRespectsCapacity(t *testing.T) {
	lm := buildModel(t)
	w := lm.World()

	// Provision with Switchboard, then allocate within those capacities.
	sb, err := provision.Switchboard(&provision.Inputs{
		World:              w,
		Latency:            estimatorFor(t, w),
		Demand:             lm.Demand(),
		LatencyThresholdMs: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(lm, sb.Cores, sb.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	usage := provision.PeakPerDC(lm.ComputeUsage(res.Alloc))
	for x, u := range usage {
		if u > sb.Cores[x]+1e-5 {
			t.Errorf("DC %d usage %g exceeds capacity %g", x, u, sb.Cores[x])
		}
	}
	linkUse := provision.PeakPerDC(lm.LinkUsage(res.Alloc, -1))
	for l, u := range linkUse {
		if u > sb.LinkGbps[l]+1e-5 {
			t.Errorf("link %d usage %g exceeds capacity %g", l, u, sb.LinkGbps[l])
		}
	}
	if res.Overflow > 1e-6 {
		t.Errorf("overflow %g within SB-provisioned capacity", res.Overflow)
	}
	if res.MeanACL <= 0 {
		t.Errorf("mean ACL = %g", res.MeanACL)
	}
}

func estimatorFor(t *testing.T, w *geo.World) *records.LatencyEstimator {
	t.Helper()
	db := records.New(trace.DefaultConfig().Start, w)
	return db.Estimator(1)
}

func TestScarcityForcesOverflow(t *testing.T) {
	lm := buildModel(t)
	w := lm.World()
	cores := make([]float64, len(w.DCs())) // zero compute anywhere
	links := make([]float64, len(w.Links()))
	res, err := Build(lm, cores, links)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	d := lm.Demand()
	for t2 := range d.Counts {
		for _, v := range d.Counts[t2] {
			want += v
		}
	}
	if math.Abs(res.Overflow-want) > 1e-6*(1+want) {
		t.Errorf("overflow %g, want all demand %g", res.Overflow, want)
	}
}

func TestTightComputeShiftsCalls(t *testing.T) {
	// Give the min-ACL DC of the heaviest config almost no capacity and
	// everyone else plenty: the plan must shift calls off it.
	lm := buildModel(t)
	w := lm.World()
	cores := make([]float64, len(w.DCs()))
	links := make([]float64, len(w.Links()))
	for i := range cores {
		cores[i] = 1e9
	}
	for i := range links {
		links[i] = 1e9
	}
	starved := lm.MinACLDC(0)
	cores[starved] = 0
	res, err := Build(lm, cores, links)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range res.Alloc {
		for c := range res.Alloc[t2] {
			if s := res.Alloc[t2][c][starved]; s > 1e-9 {
				t.Fatalf("slot %d config %d still uses starved DC (%g)", t2, c, s)
			}
		}
	}
	if res.Overflow > 1e-6 {
		t.Errorf("unexpected overflow %g; other DCs had capacity", res.Overflow)
	}
}
