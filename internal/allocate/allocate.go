// Package allocate implements the offline stage of MP server allocation
// (§5.3, "Allocation plan"): once a day, for every time slot and call config,
// decide what fraction of calls to place at each DC so that the mean average
// call latency is minimized within the already-provisioned compute and
// network capacities (the paper's Eq 10 secondary objective).
//
// Because capacities are fixed, slots decouple: the plan solves one small LP
// per slot instead of the provisioning LP's coupled formulation, which keeps
// the daily job cheap. Per-config overflow variables (heavily penalized)
// guarantee feasibility even if demand exceeds the plan's capacity — the
// realtime selector treats overflow as "host at the min-ACL DC and flag it".
package allocate

import (
	"fmt"

	"switchboard/internal/lp"
	"switchboard/internal/provision"
)

// overflowPenaltyMs prices a call that cannot fit into provisioned capacity;
// it only needs to dominate any realistic ACL.
const overflowPenaltyMs = 1e5

// Result is a daily allocation plan.
type Result struct {
	// Alloc[t][c][x] is the number of calls of config c in slot t the
	// plan hosts at DC x.
	Alloc [][][]float64
	// Overflow is the total number of calls (across slots and configs)
	// that did not fit into provisioned capacity.
	Overflow float64
	// MeanACL is the demand-weighted mean ACL of the plan, excluding
	// overflow.
	MeanACL float64
}

// Build computes the allocation plan for the given provisioned capacities.
// cores and linkGbps must be indexed like the world's DCs and links.
func Build(lm *provision.LoadModel, cores, linkGbps []float64) (*Result, error) {
	w := lm.World()
	if len(cores) != len(w.DCs()) {
		return nil, fmt.Errorf("allocate: %d core capacities for %d DCs", len(cores), len(w.DCs()))
	}
	if len(linkGbps) != len(w.Links()) {
		return nil, fmt.Errorf("allocate: %d link capacities for %d links", len(linkGbps), len(w.Links()))
	}
	d := lm.Demand()
	nT, nC, nD := len(d.Counts), len(d.Configs), len(w.DCs())
	res := &Result{Alloc: make([][][]float64, nT)}
	var aclSum, calls float64
	for t := 0; t < nT; t++ {
		alloc, overflow, err := solveSlot(lm, t, cores, linkGbps)
		if err != nil {
			return nil, fmt.Errorf("allocate: slot %d: %w", t, err)
		}
		res.Alloc[t] = alloc
		res.Overflow += overflow
		for c := 0; c < nC; c++ {
			for x := 0; x < nD; x++ {
				if s := alloc[c][x]; s > 0 {
					aclSum += s * lm.ACL(c, x)
					calls += s
				}
			}
		}
	}
	if calls > 0 {
		res.MeanACL = aclSum / calls
	}
	return res, nil
}

// solveSlot solves the per-slot latency-minimization LP.
func solveSlot(lm *provision.LoadModel, t int, cores, linkGbps []float64) ([][]float64, float64, error) {
	w := lm.World()
	d := lm.Demand()
	nC, nD, nL := len(d.Configs), len(w.DCs()), len(w.Links())

	p := lp.New(lp.Minimize)
	type sRef struct{ col, c, x int }
	var refs []sRef
	var overflowVars []int

	computeCols := make([][]int, nD)
	computeVals := make([][]float64, nD)
	netCols := make([][]int, nL)
	netVals := make([][]float64, nL)

	anyDemand := false
	for c := 0; c < nC; c++ {
		dem := d.Counts[t][c]
		if dem <= 0 {
			continue
		}
		anyDemand = true
		var rowCols []int
		var rowVals []float64
		for _, x := range lm.Allowed(c) {
			v := p.AddVar(fmt.Sprintf("S[%d,%d]", c, x), lm.ACL(c, x))
			refs = append(refs, sRef{v, c, x})
			rowCols = append(rowCols, v)
			rowVals = append(rowVals, 1)
			computeCols[x] = append(computeCols[x], v)
			computeVals[x] = append(computeVals[x], lm.ComputeLoad(c))
			for _, ll := range lm.LinkLoads(c, x) {
				netCols[ll.Link] = append(netCols[ll.Link], v)
				netVals[ll.Link] = append(netVals[ll.Link], ll.Gbps)
			}
		}
		ov := p.AddVar(fmt.Sprintf("overflow[%d]", c), overflowPenaltyMs)
		overflowVars = append(overflowVars, ov)
		rowCols = append(rowCols, ov)
		rowVals = append(rowVals, 1)
		p.AddRow(fmt.Sprintf("demand[%d]", c), rowCols, rowVals, lp.EQ, dem)
	}
	if !anyDemand {
		alloc := make([][]float64, nC)
		for c := range alloc {
			alloc[c] = make([]float64, nD)
		}
		return alloc, 0, nil
	}
	for x := 0; x < nD; x++ {
		if len(computeCols[x]) > 0 {
			p.AddRow(fmt.Sprintf("cpu[%d]", x), computeCols[x], computeVals[x], lp.LE, cores[x])
		}
	}
	for l := 0; l < nL; l++ {
		if len(netCols[l]) > 0 {
			p.AddRow(fmt.Sprintf("net[%d]", l), netCols[l], netVals[l], lp.LE, linkGbps[l])
		}
	}

	sol, err := p.Solve(lp.Options{})
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.Optimal {
		return nil, 0, fmt.Errorf("LP finished %v", sol.Status)
	}
	alloc := make([][]float64, nC)
	for c := range alloc {
		alloc[c] = make([]float64, nD)
	}
	for _, r := range refs {
		alloc[r.c][r.x] = sol.X[r.col]
	}
	var overflow float64
	for _, ov := range overflowVars {
		overflow += sol.X[ov]
	}
	return alloc, overflow, nil
}
