package predict

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/trace"
)

// synthSeries builds a series whose members attend with fixed propensities.
func synthSeries(id uint64, nMembers, nInstances int, seed int64) *Series {
	rng := rand.New(rand.NewSource(seed))
	s := &Series{ID: id}
	probs := make([]float64, nMembers)
	countries := []geo.CountryCode{"US", "IN", "JP", "DE"}
	for m := 0; m < nMembers; m++ {
		probs[m] = 0.2 + 0.7*rng.Float64()
		s.Members = append(s.Members, Member{ID: uint64(m + 1), Country: countries[m%len(countries)]})
	}
	s.Attendance = make([][]bool, nInstances)
	for t := range s.Attendance {
		row := make([]bool, nMembers)
		for m := range row {
			row[m] = rng.Float64() < probs[m]
		}
		s.Attendance[t] = row
	}
	return s
}

func synthDataset(nSeries, nMembers, nInstances int) *Dataset {
	ds := &Dataset{}
	for i := 0; i < nSeries; i++ {
		ds.Series = append(ds.Series, synthSeries(uint64(i+1), nMembers, nInstances, int64(i+100)))
	}
	return ds
}

func TestBuildDataset(t *testing.T) {
	start := time.Date(2022, 9, 5, 9, 0, 0, 0, time.UTC)
	mk := func(id uint64, day int, users ...uint64) *model.CallRecord {
		r := &model.CallRecord{ID: id, SeriesID: 7, Start: start.AddDate(0, 0, day), Duration: time.Hour}
		for _, u := range users {
			r.Legs = append(r.Legs, model.LegRecord{Participant: u, Country: "US"})
		}
		return r
	}
	recs := map[uint64][]*model.CallRecord{
		7: {mk(1, 0, 1, 2), mk(2, 1, 1), mk(3, 2, 1, 2, 3)},
		8: {mk(4, 0, 9)}, // too few instances
	}
	ds := BuildDataset(recs, 3)
	if len(ds.Series) != 1 {
		t.Fatalf("got %d series, want 1", len(ds.Series))
	}
	s := ds.Series[0]
	if len(s.Members) != 3 || len(s.Attendance) != 3 {
		t.Fatalf("members=%d instances=%d", len(s.Members), len(s.Attendance))
	}
	if !s.Attendance[0][0] || !s.Attendance[0][1] || s.Attendance[0][2] {
		t.Errorf("instance 0 attendance = %v", s.Attendance[0])
	}
	if !s.Attendance[2][2] {
		t.Error("member 3 should attend instance 2")
	}
}

func TestMomcProbLearnsPattern(t *testing.T) {
	// Alternating attendance: P(attend | absent last time) must be high.
	s := &Series{
		Members:    []Member{{ID: 1, Country: "US"}},
		Attendance: make([][]bool, 12),
	}
	for t2 := range s.Attendance {
		s.Attendance[t2] = []bool{t2%2 == 0}
	}
	// At t=11, last instance (10) was attended -> pattern [true]; history
	// says attendance after attended is ~0.
	pAfterPresent := momcProb(s, 0, 11, 1)
	if pAfterPresent > 0.3 {
		t.Errorf("P(attend|present) = %g, want low for alternating member", pAfterPresent)
	}
	// At t=10, last instance (9) was a miss -> history says ~1.
	pAfterAbsent := momcProb(s, 0, 10, 1)
	if pAfterAbsent < 0.7 {
		t.Errorf("P(attend|absent) = %g, want high", pAfterAbsent)
	}
	if p := momcProb(s, 0, 0, 1); p != 0.5 {
		t.Errorf("no-history prior = %g, want 0.5", p)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(&Dataset{}, TrainOptions{}); err == nil {
		t.Error("empty dataset should error")
	}
}

func TestModelBeatsBaseline(t *testing.T) {
	// With stationary propensities, per-member frequency features beat
	// copying the (noisy) previous instance — the §8 result's shape.
	ds := synthDataset(30, 12, 20)
	m, err := Train(ds, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, base, err := Evaluate(ds, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Instances == 0 {
		t.Fatal("no evaluation instances")
	}
	if acc.RMSE >= base.RMSE {
		t.Errorf("model RMSE %.3f not better than baseline %.3f", acc.RMSE, base.RMSE)
	}
	if acc.MAE >= base.MAE {
		t.Errorf("model MAE %.3f not better than baseline %.3f", acc.MAE, base.MAE)
	}
}

func TestPredictAttendanceProbabilitiesValid(t *testing.T) {
	ds := synthDataset(5, 8, 15)
	m, err := Train(ds, TrainOptions{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Series[0]
	probs := m.PredictAttendance(s, len(s.Attendance)-1)
	if len(probs) != len(s.Members) {
		t.Fatalf("got %d probs", len(probs))
	}
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("invalid probability %g", p)
		}
	}
}

func TestAlwaysAttendeePredicted(t *testing.T) {
	// A member who always attends must be predicted to attend.
	ds := synthDataset(20, 10, 16)
	s := &Series{Members: []Member{{ID: 1, Country: "US"}, {ID: 2, Country: "IN"}}}
	s.Attendance = make([][]bool, 16)
	for t2 := range s.Attendance {
		s.Attendance[t2] = []bool{true, false}
	}
	ds.Series = append(ds.Series, s)
	m, err := Train(ds, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	counts := m.PredictCounts(s, 15)
	if counts["US"] != 1 {
		t.Errorf("always-attendee not predicted: %v", counts)
	}
	if counts["IN"] != 0 {
		t.Errorf("never-attendee predicted: %v", counts)
	}
}

func TestBaselineCounts(t *testing.T) {
	s := synthSeries(1, 6, 10, 3)
	base := BaselineCounts(s, 5)
	actualPrev := ActualCounts(s, 4)
	for c, n := range actualPrev {
		if base[c] != n {
			t.Errorf("baseline[%s] = %d, want %d", c, base[c], n)
		}
	}
	if len(BaselineCounts(s, 0)) != 0 {
		t.Error("baseline at t=0 should be empty")
	}
}

func TestEndToEndWithTraceSeries(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.Days = 12 // ~10 weekday instances per series
	cfg.CallsPerDay = 1200
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seriesRecs := make(map[uint64][]*model.CallRecord)
	g.EachCall(func(r *model.CallRecord) bool {
		if r.SeriesID != 0 {
			seriesRecs[r.SeriesID] = append(seriesRecs[r.SeriesID], r)
		}
		return true
	})
	ds := BuildDataset(seriesRecs, 6)
	if len(ds.Series) == 0 {
		t.Fatal("no recurring series in trace")
	}
	m, err := Train(ds, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc, base, err := Evaluate(ds, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	// §8 shape: the MOMC model beats the previous-instance baseline.
	if acc.RMSE >= base.RMSE {
		t.Errorf("model RMSE %.3f vs baseline %.3f: expected improvement", acc.RMSE, base.RMSE)
	}
	t.Logf("model RMSE=%.3f MAE=%.3f; baseline RMSE=%.3f MAE=%.3f over %d instances",
		acc.RMSE, acc.MAE, base.RMSE, base.MAE, acc.Instances)
}
