// Package predict implements the §8 call-configuration predictor for
// recurring meetings: variable-length multi-order Markov chains (MOMC)
// capture each participant's temporal attendance predispositions, a logistic
// regression maps those features to a per-participant attendance
// probability, and the per-country aggregation of predicted attendees yields
// the predicted call config. The baseline predicts the previous instance's
// config verbatim, as in the paper.
package predict

import (
	"fmt"
	"math"
	"sort"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// maxOrder is the longest attendance-history pattern the MOMC features
// condition on.
const maxOrder = 3

// Series is one recurring meeting's attendance history.
type Series struct {
	ID uint64
	// Members lists every participant ever seen in the series.
	Members []Member
	// Attendance[t][m] reports whether member m attended instance t.
	Attendance [][]bool
}

// Member is one recurring participant.
type Member struct {
	ID      uint64
	Country geo.CountryCode
}

// Dataset is a collection of series, split into feature-extraction history
// and evaluation instances by the callers.
type Dataset struct {
	Series []*Series
}

// BuildDataset derives attendance matrices from retained call records
// grouped by series ID (records.DB.SeriesRecords). Series with fewer than
// minInstances occurrences are dropped (the paper trains on meetings with at
// least 3 past occurrences).
func BuildDataset(seriesRecs map[uint64][]*model.CallRecord, minInstances int) *Dataset {
	ds := &Dataset{}
	ids := make([]uint64, 0, len(seriesRecs))
	for id := range seriesRecs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		recs := seriesRecs[id]
		if len(recs) < minInstances {
			continue
		}
		memberIx := make(map[uint64]int)
		s := &Series{ID: id}
		for _, r := range recs {
			for _, leg := range r.Legs {
				if leg.Participant == 0 {
					continue
				}
				if _, ok := memberIx[leg.Participant]; !ok {
					memberIx[leg.Participant] = len(s.Members)
					s.Members = append(s.Members, Member{ID: leg.Participant, Country: leg.Country})
				}
			}
		}
		if len(s.Members) == 0 {
			continue
		}
		s.Attendance = make([][]bool, len(recs))
		for t, r := range recs {
			row := make([]bool, len(s.Members))
			for _, leg := range r.Legs {
				if ix, ok := memberIx[leg.Participant]; ok {
					row[ix] = true
				}
			}
			s.Attendance[t] = row
		}
		ds.Series = append(ds.Series, s)
	}
	return ds
}

// numFeatures: bias, last-1, last-2, last-3, overall frequency, and one MOMC
// conditional probability per order.
const numFeatures = 5 + maxOrder

// features builds the feature vector for member m of series s at instance t,
// using only history before t.
func features(s *Series, m, t int) []float64 {
	f := make([]float64, numFeatures)
	f[0] = 1 // bias
	for k := 1; k <= maxOrder; k++ {
		if t-k >= 0 && s.Attendance[t-k][m] {
			f[k] = 1
		}
	}
	// Overall attendance frequency.
	attended := 0
	for i := 0; i < t; i++ {
		if s.Attendance[i][m] {
			attended++
		}
	}
	if t > 0 {
		f[4] = float64(attended) / float64(t)
	} else {
		f[4] = 0.5
	}
	// MOMC conditionals: P(attend | exact pattern of the last k
	// instances), Laplace-smoothed, estimated from this member's own
	// history — the "variable length multi-order Markov chains" of §8.
	for k := 1; k <= maxOrder; k++ {
		f[4+k] = momcProb(s, m, t, k)
	}
	return f
}

// momcProb estimates P(attend at i | attendance pattern of (i-k .. i-1)
// equals the pattern now in effect at t) over the member's history.
func momcProb(s *Series, m, t, k int) float64 {
	if t < k {
		return 0.5
	}
	pattern := make([]bool, k)
	for j := 0; j < k; j++ {
		pattern[j] = s.Attendance[t-k+j][m]
	}
	match, attend := 0, 0
	for i := k; i < t; i++ {
		ok := true
		for j := 0; j < k; j++ {
			if s.Attendance[i-k+j][m] != pattern[j] {
				ok = false
				break
			}
		}
		if ok {
			match++
			if s.Attendance[i][m] {
				attend++
			}
		}
	}
	// Laplace smoothing toward 1/2.
	return (float64(attend) + 1) / (float64(match) + 2)
}

// Model is a trained logistic regression over MOMC features.
type Model struct {
	Weights []float64
}

// TrainOptions tune training; zero values select defaults.
type TrainOptions struct {
	// Epochs of full-batch gradient descent (default 200).
	Epochs int
	// LearningRate (default 0.5).
	LearningRate float64
	// L2 regularization strength (default 1e-4).
	L2 float64
	// MinHistory is the first instance index used as a training target
	// (default maxOrder, so every feature has context).
	MinHistory int
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 200
	}
	if o.LearningRate == 0 {
		o.LearningRate = 0.5
	}
	if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.MinHistory == 0 {
		o.MinHistory = maxOrder
	}
	return o
}

// Train fits the logistic regression on all (member, instance) pairs of the
// dataset with at least MinHistory preceding instances.
func Train(ds *Dataset, opts TrainOptions) (*Model, error) {
	opts = opts.withDefaults()
	var xs [][]float64
	var ys []float64
	for _, s := range ds.Series {
		for t := opts.MinHistory; t < len(s.Attendance); t++ {
			for m := range s.Members {
				xs = append(xs, features(s, m, t))
				if s.Attendance[t][m] {
					ys = append(ys, 1)
				} else {
					ys = append(ys, 0)
				}
			}
		}
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("predict: no training examples (need series with > %d instances)", opts.MinHistory)
	}
	w := make([]float64, numFeatures)
	grad := make([]float64, numFeatures)
	n := float64(len(xs))
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for j := range grad {
			grad[j] = opts.L2 * w[j]
		}
		for i, x := range xs {
			p := sigmoid(dot(w, x))
			e := p - ys[i]
			for j, xj := range x {
				grad[j] += e * xj / n
			}
		}
		for j := range w {
			w[j] -= opts.LearningRate * grad[j]
		}
	}
	return &Model{Weights: w}, nil
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// PredictAttendance returns each member's probability of attending instance
// t of series s, using only history before t.
func (m *Model) PredictAttendance(s *Series, t int) []float64 {
	out := make([]float64, len(s.Members))
	for i := range s.Members {
		out[i] = sigmoid(dot(m.Weights, features(s, i, t)))
	}
	return out
}

// PredictCounts aggregates attendance probabilities into per-country
// participant counts: the expected count per country, rounded. For count
// accuracy this dominates thresholding each member independently (the sum of
// probabilities is the minimum-squared-error estimate of the count).
func (m *Model) PredictCounts(s *Series, t int) map[geo.CountryCode]int {
	probs := m.PredictAttendance(s, t)
	expected := make(map[geo.CountryCode]float64)
	for i, p := range probs {
		expected[s.Members[i].Country] += p
	}
	counts := make(map[geo.CountryCode]int)
	for c, e := range expected {
		if n := int(math.Round(e)); n > 0 {
			counts[c] = n
		}
	}
	return counts
}

// ActualCounts returns the ground-truth per-country counts of instance t.
func ActualCounts(s *Series, t int) map[geo.CountryCode]int {
	counts := make(map[geo.CountryCode]int)
	for i, attended := range s.Attendance[t] {
		if attended {
			counts[s.Members[i].Country]++
		}
	}
	return counts
}

// BaselineCounts predicts instance t as a copy of instance t-1 (the paper's
// baseline).
func BaselineCounts(s *Series, t int) map[geo.CountryCode]int {
	if t == 0 {
		return map[geo.CountryCode]int{}
	}
	return ActualCounts(s, t-1)
}

// Accuracy aggregates per-(instance, country) count errors.
type Accuracy struct {
	RMSE      float64
	MAE       float64
	Instances int
}

// Evaluate scores predicted-vs-actual counts over the last evalInstances of
// every series, comparing the model against the previous-instance baseline.
func Evaluate(ds *Dataset, m *Model, evalInstances int) (model, baseline Accuracy, err error) {
	var se, ae, seB, aeB float64
	var n, nB, instances int
	for _, s := range ds.Series {
		start := len(s.Attendance) - evalInstances
		if start < maxOrder+1 {
			start = maxOrder + 1
		}
		for t := start; t < len(s.Attendance); t++ {
			instances++
			actual := ActualCounts(s, t)
			pred := m.PredictCounts(s, t)
			base := BaselineCounts(s, t)
			for _, country := range unionKeys(actual, pred) {
				d := float64(pred[country] - actual[country])
				se += d * d
				ae += math.Abs(d)
				n++
			}
			for _, country := range unionKeys(actual, base) {
				d := float64(base[country] - actual[country])
				seB += d * d
				aeB += math.Abs(d)
				nB++
			}
		}
	}
	if n == 0 || nB == 0 {
		return Accuracy{}, Accuracy{}, fmt.Errorf("predict: no evaluation instances")
	}
	model = Accuracy{RMSE: math.Sqrt(se / float64(n)), MAE: ae / float64(n), Instances: instances}
	baseline = Accuracy{RMSE: math.Sqrt(seB / float64(nB)), MAE: aeB / float64(nB), Instances: instances}
	return model, baseline, nil
}

func unionKeys(a, b map[geo.CountryCode]int) []geo.CountryCode {
	seen := make(map[geo.CountryCode]bool, len(a)+len(b))
	var out []geo.CountryCode
	for k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
