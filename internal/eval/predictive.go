package eval

import (
	"fmt"
	"time"

	"switchboard/internal/controller"

	"switchboard/internal/model"
	"switchboard/internal/predict"
)

// seriesPredictor adapts the §8 MOMC predictor to the controller's Predictor
// interface: for each known series it predicts the spread of the next
// instance from training-window attendance history.
type seriesPredictor struct {
	model   *predict.Model
	series  map[uint64]*predict.Series
	media   map[uint64]model.MediaType
	minSize int
}

// PredictConfig implements controller.Predictor.
func (p *seriesPredictor) PredictConfig(seriesID uint64, _ time.Time) (model.CallConfig, bool) {
	s, ok := p.series[seriesID]
	if !ok || len(s.Attendance) < p.minSize {
		return model.CallConfig{}, false
	}
	counts := p.model.PredictCounts(s, len(s.Attendance))
	if len(counts) == 0 {
		return model.CallConfig{}, false
	}
	return model.CallConfig{Spread: model.NewSpread(counts), Media: p.media[seriesID]}, true
}

// PredictiveMigrationResult compares migration behaviour of the
// plan-following controller with and without §8 config prediction at call
// start. The interesting deltas are on recurring calls — the only ones a
// series predictor can help.
type PredictiveMigrationResult struct {
	// Without / With are overall migration rates.
	Without, With float64
	// RecurringWithout / RecurringWith restrict to recurring calls.
	RecurringWithout, RecurringWith float64
	// PredictedCalls counts calls placed from a prediction.
	PredictedCalls int64
	// RecurringCalls counts frozen recurring calls in the replay.
	RecurringCalls int64
}

// PredictiveMigration trains the §8 predictor on the training window, then
// replays the evaluation window twice through the Switchboard controller —
// with and without predictive placement — and reports the migration-rate
// deltas (the paper's §8 motivation: accurate config prediction "can
// significantly reduce inter-DC migrations").
func PredictiveMigration(env *Env) (*PredictiveMigrationResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: PredictiveMigration needs KeepEvalRecords")
	}

	// Train the predictor on training-window series history only.
	trainSeries := env.TrainDB.SeriesRecords()
	ds := predict.BuildDataset(trainSeries, 6)
	if len(ds.Series) == 0 {
		return nil, fmt.Errorf("eval: no recurring series with enough history")
	}
	m, err := predict.Train(ds, predict.TrainOptions{})
	if err != nil {
		return nil, err
	}
	sp := &seriesPredictor{
		model:   m,
		series:  make(map[uint64]*predict.Series, len(ds.Series)),
		media:   make(map[uint64]model.MediaType),
		minSize: 4,
	}
	for _, s := range ds.Series {
		sp.series[s.ID] = s
	}
	for id, recs := range trainSeries {
		if len(recs) > 0 {
			sp.media[id] = recs[0].Config().Media
		}
	}

	// One provisioning plan shared by both replays (and memoized across
	// experiments).
	lm, _, planAlloc, err := env.SBWithBackup()
	if err != nil {
		return nil, err
	}
	aclOf := func(cfg model.CallConfig, dc int) float64 { return env.Est.ACL(cfg, dc) }
	events := controller.BuildEvents(env.EvalRecords, controller.DefaultFreeze)
	scaled := scaleAlloc(planAlloc.Alloc, float64(env.Cfg.EvalDays))

	replay := func(pred controller.Predictor) (controller.Stats, error) {
		placer := controller.NewPlanPlacer(lm.Demand().Configs, scaled, aclOf, len(env.World.DCs()))
		ctrl, err := controller.New(controller.Config{
			World:     env.World,
			Placer:    placer,
			Predictor: pred,
		})
		if err != nil {
			return controller.Stats{}, err
		}
		return ctrl.Replay(events)
	}

	base, err := replay(nil)
	if err != nil {
		return nil, err
	}
	predicted, err := replay(sp)
	if err != nil {
		return nil, err
	}
	return &PredictiveMigrationResult{
		Without:          base.MigrationRate(),
		With:             predicted.MigrationRate(),
		RecurringWithout: base.RecurringMigrationRate(),
		RecurringWith:    predicted.RecurringMigrationRate(),
		PredictedCalls:   predicted.Predicted,
		RecurringCalls:   predicted.FrozenRecurring,
	}, nil
}
