package eval

import (
	"fmt"
	"net"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/predict"
	"switchboard/internal/provision"
)

// Fig3Result holds per-country compute demand over a day, normalized to the
// maximum peak observed across the countries.
type Fig3Result struct {
	Countries []geo.CountryCode
	// Series[i][t] is country i's demand in slot-of-day t.
	Series [][]float64
	// PeakSlot[i] is the UTC slot where country i peaks.
	PeakSlot []int
}

// Fig3 extracts the time-shifted demand peaks of Japan, Hong Kong, and India
// (the paper's Fig 3 countries).
func Fig3(env *Env) *Fig3Result {
	countries := []geo.CountryCode{"JP", "HK", "IN"}
	res := &Fig3Result{Countries: countries}
	var max float64
	for _, c := range countries {
		s := env.TrainDB.ComputeDemandByCountry(c)
		res.Series = append(res.Series, s)
		for _, v := range s {
			if v > max {
				max = v
			}
		}
	}
	for _, s := range res.Series {
		peak := 0
		for t, v := range s {
			if max > 0 {
				s[t] = v / max
			}
			if s[t] > s[peak] {
				peak = t
			}
		}
		res.PeakSlot = append(res.PeakSlot, peak)
	}
	env.countRun("fig3")
	return res
}

// Fig4Result holds the §4.2 worked example's outcomes.
type Fig4Result struct {
	// Serving is each DC's peak serving demand (JP, HK, IN).
	Serving []float64
	// DefaultTotal is the total capacity under serving + §3.2 backup
	// (Fig 4b; 480 in the paper's example).
	DefaultTotal float64
	// PeakAware is the per-DC capacity under peak-aware planning
	// (Fig 4c; 100/110/110).
	PeakAware []float64
	// PeakAwareTotal is its sum (320).
	PeakAwareTotal float64
}

// Fig4 reproduces the paper's worked example exactly.
func Fig4() (*Fig4Result, error) {
	demand := [][]float64{
		{100, 60, 20},
		{30, 110, 60},
		{20, 40, 110},
	}
	serving := []float64{100, 110, 110}
	bk, err := provision.DefaultBackup(serving)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Serving: serving}
	for i := range serving {
		res.DefaultTotal += serving[i] + bk[i]
	}
	res.PeakAware, err = provision.PeakAwareBackup(demand)
	if err != nil {
		return nil, err
	}
	for _, c := range res.PeakAware {
		res.PeakAwareTotal += c
	}
	return res, nil
}

// Fig8Result is the participant join-time CDF.
type Fig8Result struct {
	// CDF[i] is the fraction of participants joined by minute i.
	CDF []float64
	// At300s is the fraction joined five minutes in (~0.8 in the paper).
	At300s float64
}

// Fig8 extracts the join-time distribution that motivates A = 300 s.
func Fig8(env *Env) *Fig8Result {
	cdf := env.TrainDB.JoinCDF()
	res := &Fig8Result{CDF: cdf}
	if len(cdf) > 5 {
		res.At300s = cdf[5]
	}
	env.countRun("fig8")
	return res
}

// MigrationResult compares migration rates of the Switchboard plan-following
// controller and the locality-first controller (§6.4).
type MigrationResult struct {
	SB Stats
	LF Stats
}

// Stats is a migration-rate summary.
type Stats struct {
	Calls     int64
	Migrated  int64
	Rate      float64
	Unplanned int64
}

// Migration replays the evaluation window's calls through the realtime
// controller twice: once following the Switchboard allocation plan, once
// with locality-first placement.
func Migration(env *Env) (*MigrationResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: Migration needs KeepEvalRecords")
	}
	lm, _, planAlloc, err := env.SBWithBackup()
	if err != nil {
		return nil, err
	}

	events := controller.BuildEvents(env.EvalRecords, controller.DefaultFreeze)
	aclOf := func(cfg model.CallConfig, dc int) float64 { return env.Est.ACL(cfg, dc) }

	// One realtime day consumes the daily plan; scale the plan's slots by
	// the number of replayed days so multi-day replays stay accountable.
	scaled := scaleAlloc(planAlloc.Alloc, float64(env.Cfg.EvalDays))
	sbPlacer := controller.NewPlanPlacer(lm.Demand().Configs, scaled, aclOf, len(env.World.DCs()))
	sbCtrl, err := controller.New(controller.Config{World: env.World, Placer: sbPlacer})
	if err != nil {
		return nil, err
	}
	sbStats, err := sbCtrl.Replay(events)
	if err != nil {
		return nil, err
	}

	lfCtrl, err := controller.New(controller.Config{
		World:  env.World,
		Placer: &controller.MinACLPlacer{ACLOf: aclOf, NDCs: len(env.World.DCs())},
	})
	if err != nil {
		return nil, err
	}
	lfStats, err := lfCtrl.Replay(events)
	if err != nil {
		return nil, err
	}

	env.countRun("migration")
	return &MigrationResult{
		SB: Stats{Calls: sbStats.Frozen, Migrated: sbStats.Migrated, Rate: sbStats.MigrationRate(), Unplanned: sbStats.Unplanned},
		LF: Stats{Calls: lfStats.Frozen, Migrated: lfStats.Migrated, Rate: lfStats.MigrationRate(), Unplanned: lfStats.Unplanned},
	}, nil
}

func scaleAlloc(alloc [][][]float64, factor float64) [][][]float64 {
	out := make([][][]float64, len(alloc))
	for t := range alloc {
		out[t] = make([][]float64, len(alloc[t]))
		for c := range alloc[t] {
			row := make([]float64, len(alloc[t][c]))
			for x, v := range alloc[t][c] {
				row[x] = v * factor
			}
			out[t][c] = row
		}
	}
	return out
}

// ProductionPeakRate is the event arrival rate (events/second) the Fig 10
// throughput numbers are normalized against. The paper replays a trace with
// millions of calls and events per day; the synthetic trace is far smaller,
// so throughput is normalized against a fixed production-scale peak instead
// of the trace's own peak (DESIGN.md, substitution table). The value is
// calibrated so that, with the simulated store round trip, the 1.4× crossing
// lands around ten worker threads as in the paper's Fig 10.
const ProductionPeakRate = 3600.0

// StoreSimulatedRTT is the minimum simulated store round trip; the kvstore's
// heavy-tailed jitter extends it to ~4.2 ms, reproducing the paper's
// 0.3-4.2 ms Azure Redis write band.
const StoreSimulatedRTT = 300 * time.Microsecond

// fig10MaxEvents caps the replayed stream so the slowest (single-thread)
// sweep point stays under half a minute.
const fig10MaxEvents = 20000

// Fig10Result is the controller throughput sweep.
type Fig10Result struct {
	Runs []controller.ThroughputResult
	// PeakRate is the normalization target (events/second).
	PeakRate float64
}

// Fig10 replays the evaluation window's event stream against an in-process
// kvstore (with simulated cloud-store latency) at increasing worker counts,
// reporting sustained throughput normalized to the production-scale peak
// rate (§6.6).
func Fig10(env *Env, workers []int) (*Fig10Result, error) {
	events, l, cleanup, err := fig10Setup(env)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	res := &Fig10Result{PeakRate: ProductionPeakRate}
	for _, w := range workers {
		run, err := controller.BenchThroughput(l.Addr().String(), w, events, ProductionPeakRate)
		if err != nil {
			return nil, err
		}
		res.Runs = append(res.Runs, run)
	}
	env.countRun("fig10")
	return res, nil
}

func fig10Setup(env *Env) ([]controller.Event, net.Listener, func(), error) {
	if env.EvalRecords == nil {
		return nil, nil, nil, fmt.Errorf("eval: Fig10 needs KeepEvalRecords")
	}
	events := controller.BuildEvents(env.EvalRecords, controller.DefaultFreeze)
	if len(events) > fig10MaxEvents {
		events = events[:fig10MaxEvents]
	}
	srv := kvstore.NewServer()
	srv.SetSimulatedLatency(StoreSimulatedRTT)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, err
	}
	go func() { _ = srv.Serve(l) }()
	return events, l, func() { _ = srv.Close() }, nil
}

// PredictResult compares the §8 MOMC+logistic-regression config predictor
// against the previous-instance baseline.
type PredictResult struct {
	Model    predict.Accuracy
	Baseline predict.Accuracy
	Series   int
}

// Predict trains and evaluates the recurring-meeting config predictor on the
// trace's meeting series.
func Predict(env *Env) (*PredictResult, error) {
	series := env.TrainDB.SeriesRecords()
	// Continue histories into the eval window.
	for id, recs := range env.EvalDB.SeriesRecords() {
		series[id] = append(series[id], recs...)
	}
	ds := predict.BuildDataset(series, 6)
	if len(ds.Series) == 0 {
		return nil, fmt.Errorf("eval: no recurring series with enough history")
	}
	m, err := predict.Train(ds, predict.TrainOptions{})
	if err != nil {
		return nil, err
	}
	acc, base, err := predict.Evaluate(ds, m, 3)
	if err != nil {
		return nil, err
	}
	env.countRun("predict")
	return &PredictResult{Model: acc, Baseline: base, Series: len(ds.Series)}, nil
}

// AblationResult compares two Switchboard variants' raw resources and cost.
type AblationResult struct {
	Name             string
	BaseCores        float64
	BaseWAN          float64
	BaseCost         float64
	BaseComputeCost  float64
	VariantCores     float64
	VariantWAN       float64
	VariantCost      float64
	VariantCompute   float64
	CostRatioVariant float64
	// ComputeRatioVariant is variant compute cost / base compute cost.
	ComputeRatioVariant float64
}

// AblationJoint quantifies the §4.3 idea: joint compute+network optimization
// versus pricing network at zero (compute-only), both charged at true prices.
func AblationJoint(env *Env) (*AblationResult, error) {
	demand := env.EvalDB.PeakEnvelope(env.Cfg.TopConfigs)
	base := &provision.Inputs{
		World: env.World, Latency: env.Est, Demand: demand,
		LatencyThresholdMs: env.Cfg.LatencyThresholdMs, SlotStride: env.Cfg.SlotStride,
	}
	joint, err := provision.Switchboard(base)
	if err != nil {
		return nil, err
	}
	variantIn := *base
	variantIn.IgnoreNetworkCost = true
	variant, err := provision.Switchboard(&variantIn)
	if err != nil {
		return nil, err
	}
	return ablation("joint-vs-compute-only", env, joint, variant), nil
}

// AblationBackup quantifies the §4.2 idea on the full system: peak-aware
// scenario provisioning versus serving capacity plus the §3.2 default backup
// bolted on top. Both arms protect against single-DC failures only, so the
// comparison is apples-to-apples; compare compute (ComputeCost fields),
// since the default-backup arm provisions no WAN redundancy at all.
func AblationBackup(env *Env) (*AblationResult, error) {
	demand := env.EvalDB.PeakEnvelope(env.Cfg.TopConfigs)
	in := &provision.Inputs{
		World: env.World, Latency: env.Est, Demand: demand,
		LatencyThresholdMs: env.Cfg.LatencyThresholdMs, SlotStride: env.Cfg.SlotStride,
		WithBackup: true, DCFailuresOnly: true,
	}
	peakAware, err := provision.Switchboard(in)
	if err != nil {
		return nil, err
	}

	// Variant: serving-only Switchboard + default backup on top.
	servingIn := *in
	servingIn.WithBackup = false
	serving, err := provision.Switchboard(&servingIn)
	if err != nil {
		return nil, err
	}
	variant := &provision.Plan{
		Scheme:   "switchboard+default-backup",
		Cores:    append([]float64(nil), serving.Cores...),
		LinkGbps: append([]float64(nil), serving.LinkGbps...),
		Alloc:    serving.Alloc,
		Demand:   serving.Demand,
	}
	for _, r := range geo.Regions() {
		dcs := env.World.DCsInRegion(r)
		if len(dcs) < 2 {
			continue
		}
		sv := make([]float64, len(dcs))
		for i, x := range dcs {
			sv[i] = serving.Cores[x]
		}
		bk, err := provision.DefaultBackup(sv)
		if err != nil {
			return nil, err
		}
		for i, x := range dcs {
			variant.Cores[x] += bk[i]
		}
	}
	res := ablation("peak-aware-vs-default-backup", env, peakAware, variant)
	return res, nil
}

func ablation(name string, env *Env, base, variant *provision.Plan) *AblationResult {
	res := &AblationResult{
		Name:            name,
		BaseCores:       base.TotalCores(),
		BaseWAN:         base.TotalGbps(),
		BaseCost:        base.Cost(env.World),
		BaseComputeCost: computeCost(env, base),
		VariantCores:    variant.TotalCores(),
		VariantWAN:      variant.TotalGbps(),
		VariantCost:     variant.Cost(env.World),
		VariantCompute:  computeCost(env, variant),
	}
	if res.BaseCost > 0 {
		res.CostRatioVariant = res.VariantCost / res.BaseCost
	}
	if res.BaseComputeCost > 0 {
		res.ComputeRatioVariant = res.VariantCompute / res.BaseComputeCost
	}
	return res
}

func computeCost(env *Env, p *provision.Plan) float64 {
	var c float64
	for x, cores := range p.Cores {
		c += env.World.DCs()[x].CoreCost * cores
	}
	return c
}

// ScaleCheck verifies the controller keeps up with a load multiple of the
// production-scale peak (the paper's "1.4× current demand with 10 threads"
// claim, §6.6).
func ScaleCheck(env *Env, workers int, factor float64) (bool, controller.ThroughputResult, error) {
	events, l, cleanup, err := fig10Setup(env)
	if err != nil {
		return false, controller.ThroughputResult{}, err
	}
	defer cleanup()
	run, err := controller.BenchThroughput(l.Addr().String(), workers, events, ProductionPeakRate)
	if err != nil {
		return false, run, err
	}
	return run.Normalized >= factor, run, nil
}
