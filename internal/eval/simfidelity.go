package eval

import (
	"fmt"
	"time"

	"switchboard/internal/provision"
	"switchboard/internal/sim"
)

// SimFidelityResult validates the fractional LP plan against integral,
// call-level replay: the provisioning LP reasons in per-slot averages, while
// the simulator admits whole calls with real start times and durations.
type SimFidelityResult struct {
	// PlanACL is the allocation plan's (fractional) mean ACL; the two
	// realized ACLs come from the call-level replay.
	PlanACL float64
	Plan    *sim.Result
	Greedy  *sim.Result
}

// SimFidelity provisions Switchboard-with-backup from the evaluation
// window's demand, then replays the window call by call under the
// plan-following and greedy-local policies.
func SimFidelity(env *Env) (*SimFidelityResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: SimFidelity needs KeepEvalRecords")
	}
	lm, plan, alloc, err := env.SBWithBackup()
	if err != nil {
		return nil, err
	}
	s, err := sim.New(lm, env.Est, plan.Cores, plan.LinkGbps)
	if err != nil {
		return nil, err
	}
	planRes, err := s.Run(env.EvalRecords, &sim.PlanPolicy{LM: lm, Alloc: alloc.Alloc, Origin: env.EvalStart})
	if err != nil {
		return nil, err
	}
	greedyRes, err := s.Run(env.EvalRecords, &sim.GreedyLocalPolicy{LM: lm})
	if err != nil {
		return nil, err
	}
	return &SimFidelityResult{PlanACL: alloc.MeanACL, Plan: planRes, Greedy: greedyRes}, nil
}

// DrillResult compares a DC-failure drill under the backup-provisioned plan
// versus a serving-only plan — the system-level payoff of Eq 7-8's failure
// scenarios.
type DrillResult struct {
	FailedDC      string
	WithBackup    *sim.DrillResult
	WithoutBackup *sim.DrillResult
}

// Drill fails the busiest DC at the middle of the evaluation window's first
// day and replays calls under both plans.
func Drill(env *Env) (*DrillResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: Drill needs KeepEvalRecords")
	}
	lm, backupPlan, _, err := env.SBWithBackup()
	if err != nil {
		return nil, err
	}
	servingIn := &provision.Inputs{
		World:              env.World,
		Latency:            env.Est,
		Demand:             env.EvalDB.PeakEnvelope(env.Cfg.TopConfigs),
		LatencyThresholdMs: env.Cfg.LatencyThresholdMs,
		WithBackup:         false,
		SlotStride:         env.Cfg.SlotStride,
	}
	servingPlan, err := provision.Switchboard(servingIn)
	if err != nil {
		return nil, err
	}
	failed := 0
	for x, cores := range backupPlan.Cores {
		if cores > backupPlan.Cores[failed] {
			failed = x
		}
	}
	failAt := env.EvalStart.Add(9 * time.Hour)
	run := func(plan *provision.Plan) (*sim.DrillResult, error) {
		s, err := sim.New(lm, env.Est, plan.Cores, plan.LinkGbps)
		if err != nil {
			return nil, err
		}
		return s.RunFailureDrill(env.EvalRecords, &sim.GreedyLocalPolicy{LM: lm}, failed, failAt)
	}
	withBackup, err := run(backupPlan)
	if err != nil {
		return nil, err
	}
	withoutBackup, err := run(servingPlan)
	if err != nil {
		return nil, err
	}
	return &DrillResult{
		FailedDC:      env.World.DCs()[failed].Name,
		WithBackup:    withBackup,
		WithoutBackup: withoutBackup,
	}, nil
}
