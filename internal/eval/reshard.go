package eval

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/shard"
)

// ReshardResult reports the live shard-split drill: the evaluation window's
// events replayed against a 3-shard fleet that is split to 4 shards online,
// a third of the way through the stream, with the stream still flowing.
type ReshardResult struct {
	// Calls and Events describe the replayed stream; the ring grows from
	// FromShards to ToShards mid-stream.
	Calls, Events        int
	FromShards, ToShards int
	// EventsPerSec is the sustained rate across the whole run, split
	// included.
	EventsPerSec float64
	// SplitDuration is the coordinator's wall-clock time from start to the
	// fleet landing stable on the target ring.
	SplitDuration time.Duration
	// HeldWrites counts operations that hit the journal-handoff write hold
	// on a migrating key and had to wait; MaxHeldStall is the longest such
	// wait. Bounded by the handoff barrier, not the copy.
	HeldWrites   int
	MaxHeldStall time.Duration
	// MaxStall is the longest any single non-held operation took during the
	// split.
	MaxStall time.Duration
	// LostTransitions counts calls whose terminal state never reached the
	// store under their POST-SPLIT owner's key prefix (must be 0).
	LostTransitions int
	// FinalEpoch is the ring epoch after the split (boot epoch + 1).
	FinalEpoch int64
	// Seed reproduces the drill's client jitter.
	Seed int64
}

// reshardDrillTo is the target ring width; the drill grows drillShards →
// reshardDrillTo so exactly one shard's worth of keys (~1/4) migrates.
const reshardDrillTo = 4

// ReshardDrill replays the evaluation window's events against a single-node
// 3-shard fleet and splits the ring to 4 shards online, a third of the way
// into the stream. Unlike ShardDrill — which kills a leader and measures
// failover — this drill keeps every node healthy and measures the cost of
// growth itself: the stream routes every op through BeginWrite, so it feels
// the journal-handoff write holds on migrating keys and the cutover
// double-read window exactly as the HTTP data plane does. The audit then
// requires every call's terminal state under its post-split owner's prefix:
// the split may slow writes (boundedly), but may not lose one.
func ReshardDrill(env *Env, seed int64) (*ReshardResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: ReshardDrill needs KeepEvalRecords")
	}
	recs := env.EvalRecords
	if len(recs) > chaosMaxCalls {
		recs = recs[:chaosMaxCalls]
	}
	events := controller.BuildEvents(recs, controller.DefaultFreeze)
	res := &ReshardResult{
		Calls: len(recs), Events: len(events),
		FromShards: drillShards, ToShards: reshardDrillTo, Seed: seed,
	}

	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()
	addr := l.Addr().String()

	ring, err := shard.NewRing(drillShards, 64)
	if err != nil {
		return nil, err
	}
	opts := kvstore.Options{
		DialTimeout: 200 * time.Millisecond,
		IOTimeout:   200 * time.Millisecond,
		MaxRetries:  1,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	var clients []*kvstore.Client
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	newCtrl := func(i int) (*controller.Controller, error) {
		o := opts
		o.Seed = seed + int64(i)
		store, err := kvstore.DialOptions(addr, o)
		if err != nil {
			return nil, err
		}
		clients = append(clients, store)
		return controller.New(controller.Config{
			World: env.World,
			Placer: &controller.MinACLPlacer{
				ACLOf: func(cfg model.CallConfig, dc int) float64 { return cfg.ACL(env.World, dc) },
				NDCs:  len(env.World.DCs()),
			},
			Store:         store,
			KeyPrefix:     shard.KeyPrefix(i),
			Shard:         i,
			ProbeInterval: 20 * time.Millisecond,
		})
	}
	ctrls := make([]*controller.Controller, drillShards)
	for i := range ctrls {
		if ctrls[i], err = newCtrl(i); err != nil {
			return nil, err
		}
	}
	m, err := shard.NewManager(shard.Config{
		Ring:        ring,
		ID:          "reshard-drill",
		Controllers: ctrls,
		ElectorStore: func(i int) (*kvstore.Client, error) {
			o := opts
			o.Seed = seed + 100 + int64(i)
			return kvstore.DialOptions(addr, o)
		},
		NewController: newCtrl,
		WatchStore: func() (*kvstore.Client, error) {
			o := opts
			o.Seed = seed + 200
			return kvstore.DialOptions(addr, o)
		},
		EpochPoll: 50 * time.Millisecond,
		Prefer:    []int{0, 1, 2},
		TTL:       300 * time.Millisecond,
		Renew:     75 * time.Millisecond,
		Recover:   true,
	})
	if err != nil {
		return nil, err
	}
	m.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		m.Stop(ctx)
	}()

	settle := time.Now().Add(10 * time.Second) //sblint:allow nondeterminism -- real-time settle deadline
	for !(m.Owns(0) && m.Owns(1) && m.Owns(2)) {
		if time.Now().After(settle) { //sblint:allow nondeterminism -- real-time settle deadline
			return nil, fmt.Errorf("eval: reshard fleet never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	coStore, err := kvstore.DialOptions(addr, func() kvstore.Options { o := opts; o.Seed = seed + 300; return o }())
	if err != nil {
		return nil, err
	}
	co, err := shard.NewCoordinator(shard.CoordinatorConfig{
		Store:       coStore, // Close()d by the coordinator
		ID:          "reshard-drill-co",
		BootShards:  drillShards,
		BootVNodes:  64,
		TTL:         300 * time.Millisecond,
		Renew:       75 * time.Millisecond,
		Poll:        25 * time.Millisecond,
		CutoverHold: 600 * time.Millisecond,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
	})
	if err != nil {
		_ = coStore.Close()
		return nil, err
	}
	defer func() { _ = co.Close() }()

	// The split launches a third of the way into the stream and runs
	// concurrently with it; splitDone carries the coordinator's verdict.
	cutAt := len(events) / 3
	splitDone := make(chan error, 1)
	var splitStart time.Time
	coCtx, coCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer coCancel()

	start := time.Now() //sblint:allow nondeterminism -- measuring real elapsed time
	for i, e := range events {
		if i == cutAt {
			splitStart = time.Now() //sblint:allow nondeterminism -- split duration reference point
			go func() {
				_, err := co.Run(coCtx, reshardDrillTo)
				splitDone <- err
			}()
		}
		opStart := time.Now() //sblint:allow nondeterminism -- measuring real per-op stall
		held := false
		// Route exactly as the HTTP data plane does: BeginWrite, honor the
		// handoff hold by waiting it out, recover through the double-read
		// window at cutover.
		var d shard.RouteDecision
		var release func()
		holdDeadline := time.Now().Add(10 * time.Second) //sblint:allow nondeterminism -- real-time hold deadline
		for {
			d, release = m.BeginWrite(e.CallID)
			if !d.Held {
				break
			}
			held = true
			if time.Now().After(holdDeadline) { //sblint:allow nondeterminism -- real-time hold deadline
				return nil, fmt.Errorf("eval: write hold on conf %d never lifted", e.CallID)
			}
			time.Sleep(5 * time.Millisecond)
		}
		ctrl := m.Controller(d.Shard)
		if ctrl == nil {
			return nil, fmt.Errorf("eval: no controller for shard %d", d.Shard)
		}
		if d.DoubleRead && !ctrl.Knows(e.CallID) {
			_, _ = ctrl.RecoverCall(context.Background(), e.CallID, shard.KeyPrefix(d.OldShard))
		}
		switch e.Kind {
		case controller.EventStart:
			_, err = ctrl.CallStartedWithSeries(context.Background(), e.CallID, e.Country, e.SeriesID, e.Time)
		case controller.EventJoin:
			ctrl.ParticipantJoined(context.Background(), e.CallID, e.Country, e.Media)
			err = nil
		case controller.EventFreeze:
			_, _, err = ctrl.ConfigKnown(context.Background(), e.CallID, e.Config, e.Time)
		case controller.EventEnd:
			err = ctrl.CallEnded(context.Background(), e.CallID)
		}
		if release != nil {
			release()
		}
		if err != nil {
			return nil, fmt.Errorf("eval: reshard replay %v(%d): %w", e.Kind, e.CallID, err)
		}
		stall := time.Since(opStart) //sblint:allow nondeterminism -- measuring real per-op stall
		if held {
			res.HeldWrites++
			if stall > res.MaxHeldStall {
				res.MaxHeldStall = stall
			}
		} else if stall > res.MaxStall {
			res.MaxStall = stall
		}
	}
	elapsed := time.Since(start) //sblint:allow nondeterminism -- measuring real elapsed time
	res.EventsPerSec = float64(len(events)) / elapsed.Seconds()

	if err := <-splitDone; err != nil {
		return nil, fmt.Errorf("eval: split failed: %w", err)
	}
	converge := time.Now().Add(10 * time.Second) //sblint:allow nondeterminism -- real-time convergence deadline
	for !(m.Phase() == shard.PhaseStable && m.Ring().Shards() == reshardDrillTo) {
		if time.Now().After(converge) { //sblint:allow nondeterminism -- real-time convergence deadline
			return nil, fmt.Errorf("eval: fleet never converged on the target ring")
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.SplitDuration = time.Since(splitStart) //sblint:allow nondeterminism -- split duration measurement
	res.FinalEpoch = m.RingEpoch()

	// Audit against the post-split ring: every call's terminal state under
	// its NEW owner's prefix. A lost moved key — copied but retired before
	// the copy landed, or stranded under the source prefix — shows up here.
	ringTo, err := shard.NewRing(reshardDrillTo, 64)
	if err != nil {
		return nil, err
	}
	reader, err := kvstore.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer func() { _ = reader.Close() }()
	for _, r := range recs {
		sh := ringTo.Lookup(r.ID)
		v, err := reader.HGet(shard.KeyPrefix(sh)+"call:"+strconv.FormatUint(r.ID, 10), "state")
		if err != nil || v != "ended" {
			res.LostTransitions++
		}
	}

	env.countRun("reshard")
	if env.Obs != nil {
		env.Obs.Counter("sb_eval_reshard_lost_total",
			"Call transitions lost across reshard drills (must stay 0).").Add(uint64(res.LostTransitions))
	}
	return res, nil
}
