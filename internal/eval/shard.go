package eval

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/shard"
)

// ShardResult reports the sharded-control-plane drill: the evaluation
// window's events replayed against a 3-shard fleet whose majority owner is
// hard-killed a third of the way through the stream. The survivor must take
// over the dead node's shards, the untouched shard must keep serving
// throughout, and no call transition may be lost.
type ShardResult struct {
	// Calls and Events describe the replayed stream; Shards is the ring
	// width.
	Calls, Events, Shards int
	// EventsPerSec is the sustained rate across the whole run, takeover
	// stall included.
	EventsPerSec float64
	// PromotionLatency is how long the survivor took to own both of the
	// dead node's shards after the kill.
	PromotionLatency time.Duration
	// MaxStall is the longest any single operation on a failed-over shard
	// took — bounded by lease TTL + takeover delay, not by the kill.
	MaxStall time.Duration
	// UntouchedMaxStall is the longest stall on the shard whose leader
	// survived; the kill must not perturb it.
	UntouchedMaxStall time.Duration
	// LostTransitions counts calls whose terminal state never reached the
	// store under their shard's key prefix (must be 0: every op was acked
	// by a live shard leader against a healthy store).
	LostTransitions int
	// Seed reproduces the drill's client jitter.
	Seed int64
}

// drillShards is the ring width: small enough that two nodes cover it, wide
// enough that one node's death strands a majority of the key space.
const drillShards = 3

// ShardDrill replays the evaluation window's events against a 3-shard fleet
// of two nodes — node A preferred owner of shards 0 and 1, node B of shard 2
// — and hard-kills node A (its store and elector paths both severed, like a
// process crash) a third of the way in. Unlike PartitionDrill — one lease,
// one failover — this drill exercises independent per-shard leases: B's
// electors race the two orphaned leases after the takeover delay, recover
// in-flight call state under each shard's key prefix, and the stream resumes,
// while shard 2 serves throughout.
func ShardDrill(env *Env, seed int64) (*ShardResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: ShardDrill needs KeepEvalRecords")
	}
	recs := env.EvalRecords
	if len(recs) > chaosMaxCalls {
		recs = recs[:chaosMaxCalls]
	}
	events := controller.BuildEvents(recs, controller.DefaultFreeze)
	res := &ShardResult{Calls: len(recs), Events: len(events), Shards: drillShards, Seed: seed}

	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()

	// Node A reaches the store only through the chaos proxy; Cut() is its
	// kill switch. Node B dials direct — it survives.
	proxy, err := faults.NewProxy(l.Addr().String(), nil)
	if err != nil {
		return nil, err
	}
	defer func() { _ = proxy.Close() }()

	ring, err := shard.NewRing(drillShards, 64)
	if err != nil {
		return nil, err
	}
	opts := kvstore.Options{
		DialTimeout: 200 * time.Millisecond,
		IOTimeout:   200 * time.Millisecond,
		MaxRetries:  1,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	var clients []*kvstore.Client
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	newNode := func(via, id string, prefer []int, seed int64) (*shard.Manager, error) {
		ctrls := make([]*controller.Controller, drillShards)
		for i := range ctrls {
			o := opts
			o.Seed = seed + int64(i)
			store, err := kvstore.DialOptions(via, o)
			if err != nil {
				return nil, err
			}
			clients = append(clients, store)
			ctrls[i], err = controller.New(controller.Config{
				World: env.World,
				Placer: &controller.MinACLPlacer{
					ACLOf: func(cfg model.CallConfig, dc int) float64 { return cfg.ACL(env.World, dc) },
					NDCs:  len(env.World.DCs()),
				},
				Store:         store,
				KeyPrefix:     shard.KeyPrefix(i),
				Shard:         i,
				ProbeInterval: 20 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
		}
		return shard.NewManager(shard.Config{
			Ring:        ring,
			ID:          id,
			Controllers: ctrls,
			ElectorStore: func(i int) (*kvstore.Client, error) {
				o := opts
				o.Seed = seed + 100 + int64(i)
				return kvstore.DialOptions(via, o)
			},
			Prefer:        prefer,
			TTL:           300 * time.Millisecond,
			Renew:         75 * time.Millisecond,
			TakeoverDelay: 300 * time.Millisecond,
			Recover:       true,
		})
	}
	a, err := newNode(proxy.Addr(), "drill-a", []int{0, 1}, seed)
	if err != nil {
		return nil, err
	}
	b, err := newNode(l.Addr().String(), "drill-b", []int{2}, seed+1000)
	if err != nil {
		return nil, err
	}
	a.Start()
	b.Start()
	stop := func(m *shard.Manager) {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		m.Stop(ctx)
	}
	defer stop(b)
	defer stop(a)

	// The fleet settles onto its preference map before the stream starts.
	settle := time.Now().Add(10 * time.Second) //sblint:allow nondeterminism -- real-time settle deadline
	for !(a.Owns(0) && a.Owns(1) && b.Owns(2)) {
		if time.Now().After(settle) { //sblint:allow nondeterminism -- real-time settle deadline
			return nil, fmt.Errorf("eval: shard fleet never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ownerFor routes an op to the live leader of the call's shard, waiting
	// out the takeover window when the leader just died. After the kill
	// node A is never consulted: like a load balancer dropping a dead
	// backend, so no op can be acked into a journal that dies with it.
	killed := false
	ownerFor := func(sh int) *controller.Controller {
		deadline := time.Now().Add(10 * time.Second) //sblint:allow nondeterminism -- real-time takeover deadline
		for {
			if !killed && a.Owns(sh) {
				return a.Controller(sh)
			}
			if b.Owns(sh) {
				return b.Controller(sh)
			}
			if time.Now().After(deadline) { //sblint:allow nondeterminism -- real-time takeover deadline
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Replay, killing node A a third of the way in. The drill measures real
	// wall-clock takeover latency and stalls of a live fleet; the clock IS
	// the measurement.
	cutAt := len(events) / 3
	promoted := make(chan time.Time, 1)
	var cutTime time.Time
	start := time.Now() //sblint:allow nondeterminism -- measuring real elapsed time
	for i, e := range events {
		if i == cutAt {
			killed = true
			proxy.Cut()
			cutTime = time.Now() //sblint:allow nondeterminism -- takeover latency reference point
			go func() {
				for !(b.Owns(0) && b.Owns(1)) {
					time.Sleep(5 * time.Millisecond)
				}
				promoted <- time.Now() //sblint:allow nondeterminism -- takeover timestamp
			}()
		}
		sh := ring.Lookup(e.CallID)
		opStart := time.Now() //sblint:allow nondeterminism -- measuring real per-op stall
		ctrl := ownerFor(sh)
		if ctrl == nil {
			return nil, fmt.Errorf("eval: no live leader for shard %d", sh)
		}
		var err error
		switch e.Kind {
		case controller.EventStart:
			_, err = ctrl.CallStartedWithSeries(context.Background(), e.CallID, e.Country, e.SeriesID, e.Time)
		case controller.EventJoin:
			ctrl.ParticipantJoined(context.Background(), e.CallID, e.Country, e.Media)
		case controller.EventFreeze:
			_, _, err = ctrl.ConfigKnown(context.Background(), e.CallID, e.Config, e.Time)
		case controller.EventEnd:
			err = ctrl.CallEnded(context.Background(), e.CallID)
		}
		if err != nil {
			return nil, fmt.Errorf("eval: shard replay %v(%d): %w", e.Kind, e.CallID, err)
		}
		stall := time.Since(opStart) //sblint:allow nondeterminism -- measuring real per-op stall
		if sh == 2 {
			if stall > res.UntouchedMaxStall {
				res.UntouchedMaxStall = stall
			}
		} else if stall > res.MaxStall {
			res.MaxStall = stall
		}
	}
	elapsed := time.Since(start) //sblint:allow nondeterminism -- measuring real elapsed time
	res.EventsPerSec = float64(len(events)) / elapsed.Seconds()

	var promotedAt time.Time
	select {
	case promotedAt = <-promoted:
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("eval: survivor never took over the dead node's shards")
	}
	res.PromotionLatency = promotedAt.Sub(cutTime)

	// Audit: every call's terminal state must be in the store under its
	// shard's key prefix — written by whichever node led the shard when the
	// op ran.
	reader, err := kvstore.Dial(l.Addr().String())
	if err != nil {
		return nil, err
	}
	defer func() { _ = reader.Close() }()
	for _, r := range recs {
		sh := ring.Lookup(r.ID)
		v, err := reader.HGet(shard.KeyPrefix(sh)+"call:"+strconv.FormatUint(r.ID, 10), "state")
		if err != nil || v != "ended" {
			res.LostTransitions++
		}
	}

	env.countRun("shard")
	if env.Obs != nil {
		env.Obs.Counter("sb_eval_shard_lost_total",
			"Call transitions lost across shard drills (must stay 0).").Add(uint64(res.LostTransitions))
	}
	return res, nil
}
