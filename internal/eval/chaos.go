package eval

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
)

// chaosMaxCalls bounds the replayed call set so the drill (two full replays
// plus a per-call audit) stays fast.
const chaosMaxCalls = 1500

// ChaosResult reports the fault-injection drill: the same event stream
// replayed twice — once against a healthy store, once through the chaos
// proxy, which injects latency and severs the store for the middle third of
// the stream.
type ChaosResult struct {
	// Calls and Events describe the replayed stream.
	Calls, Events int
	// CleanEventsPerSec and ChaosEventsPerSec are the controller's
	// sustained rates in the two runs.
	CleanEventsPerSec, ChaosEventsPerSec float64
	// CleanMigrated and ChaosMigrated compare placement decisions; faults
	// must not change where calls are hosted, so these should be equal.
	CleanMigrated, ChaosMigrated int64
	// MaxStall is the longest any single controller operation took during
	// the chaos run — bounded by the client's deadlines, not the outage.
	MaxStall time.Duration
	// Degraded / Replayed / Dropped are the chaos run's journal counters.
	Degraded, Replayed, Dropped int64
	// LostTransitions counts calls whose final state never reached the
	// store (must be 0: the journal replays everything on reconnect).
	LostTransitions int
	// Seed reproduces the injected fault schedule.
	Seed int64
}

// Chaos replays the evaluation window's events through the fault-injection
// proxy (injected latency plus a full store partition for the middle third
// of the stream) and audits that graceful degradation lost nothing.
func Chaos(env *Env, seed int64) (*ChaosResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: Chaos needs KeepEvalRecords")
	}
	recs := env.EvalRecords
	if len(recs) > chaosMaxCalls {
		recs = recs[:chaosMaxCalls]
	}
	events := controller.BuildEvents(recs, controller.DefaultFreeze)
	res := &ChaosResult{Calls: len(recs), Events: len(events), Seed: seed}

	newCtrl := func(addr string) (*controller.Controller, *kvstore.Client, error) {
		client, err := kvstore.DialOptions(addr, kvstore.Options{
			DialTimeout: 250 * time.Millisecond,
			IOTimeout:   250 * time.Millisecond,
			MaxRetries:  -1,
			BackoffMin:  10 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			Seed:        seed,
		})
		if err != nil {
			return nil, nil, err
		}
		ctrl, err := controller.New(controller.Config{
			World: env.World,
			Placer: &controller.MinACLPlacer{
				ACLOf: func(cfg model.CallConfig, dc int) float64 { return cfg.ACL(env.World, dc) },
				NDCs:  len(env.World.DCs()),
			},
			Store:         client,
			ProbeInterval: 20 * time.Millisecond,
		})
		if err != nil {
			_ = client.Close()
			return nil, nil, err
		}
		return ctrl, client, nil
	}

	// replay drives the event stream; when proxy is non-nil the store is
	// partitioned away for the middle third.
	replay := func(ctrl *controller.Controller, proxy *faults.Proxy) (time.Duration, time.Duration, error) {
		cutAt, restoreAt := len(events)/3, 2*len(events)/3
		var maxStall time.Duration
		// The chaos drill measures real wall-clock throughput and stalls of a
		// live controller+kvstore under injected faults; the clock IS the
		// measurement, not hidden state leaking into replayed outputs.
		start := time.Now() //sblint:allow nondeterminism -- measuring real elapsed time
		for i, e := range events {
			if proxy != nil {
				if i == cutAt {
					proxy.Cut()
				}
				if i == restoreAt {
					proxy.Restore()
				}
			}
			opStart := time.Now() //sblint:allow nondeterminism -- measuring real per-op stall
			var err error
			switch e.Kind {
			case controller.EventStart:
				_, err = ctrl.CallStartedWithSeries(context.Background(), e.CallID, e.Country, e.SeriesID, e.Time)
			case controller.EventJoin:
				ctrl.ParticipantJoined(context.Background(), e.CallID, e.Country, e.Media)
			case controller.EventFreeze:
				_, _, err = ctrl.ConfigKnown(context.Background(), e.CallID, e.Config, e.Time)
			case controller.EventEnd:
				err = ctrl.CallEnded(context.Background(), e.CallID)
			}
			if err != nil {
				return 0, 0, fmt.Errorf("eval: chaos replay %v(%d): %w", e.Kind, e.CallID, err)
			}
			if stall := time.Since(opStart); stall > maxStall { //sblint:allow nondeterminism -- measuring real per-op stall
				maxStall = stall
			}
		}
		return time.Since(start), maxStall, nil //sblint:allow nondeterminism -- measuring real elapsed time
	}

	// Clean run.
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(l) }()
	ctrl, client, err := newCtrl(l.Addr().String())
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	elapsed, _, err := replay(ctrl, nil)
	_ = client.Close()
	_ = srv.Close()
	if err != nil {
		return nil, err
	}
	res.CleanEventsPerSec = float64(len(events)) / elapsed.Seconds()
	res.CleanMigrated = ctrl.Stats().Migrated

	// Chaos run: same stream through the proxy, with injected latency on
	// top of the partition.
	srv2 := kvstore.NewServer()
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv2.Serve(l2) }()
	defer func() { _ = srv2.Close() }()
	inj := faults.NewInjector(seed, faults.Rule{Kind: faults.Latency, Prob: 0.02, Delay: time.Millisecond})
	proxy, err := faults.NewProxy(l2.Addr().String(), inj)
	if err != nil {
		return nil, err
	}
	defer func() { _ = proxy.Close() }()
	ctrl2, client2, err := newCtrl(proxy.Addr())
	if err != nil {
		return nil, err
	}
	defer func() { _ = client2.Close() }()
	elapsed2, maxStall, err := replay(ctrl2, proxy)
	if err != nil {
		return nil, err
	}
	res.ChaosEventsPerSec = float64(len(events)) / elapsed2.Seconds()
	res.MaxStall = maxStall
	res.ChaosMigrated = ctrl2.Stats().Migrated

	// Heal and drain the journal, retrying through the client's backoff.
	deadline := time.Now().Add(10 * time.Second) //sblint:allow nondeterminism -- real-time retry deadline
	for {
		if _, err := ctrl2.ReplayJournal(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) { //sblint:allow nondeterminism -- real-time retry deadline
			return nil, fmt.Errorf("eval: chaos journal did not drain")
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := ctrl2.Stats()
	res.Degraded, res.Replayed, res.Dropped = st.Degraded, st.Replayed, st.Dropped

	// Audit: the store never lost data (only connectivity), so every call
	// must have reached its terminal state.
	reader, err := kvstore.Dial(l2.Addr().String())
	if err != nil {
		return nil, err
	}
	defer func() { _ = reader.Close() }()
	for _, r := range recs {
		v, err := reader.HGet("call:"+strconv.FormatUint(r.ID, 10), "state")
		if err != nil || v != "ended" {
			res.LostTransitions++
		}
	}
	env.countRun("chaos")
	if env.Obs != nil {
		env.Obs.Counter("sb_eval_chaos_replayed_total",
			"Journaled writes replayed across chaos drills.").Add(uint64(res.Replayed))
		env.Obs.Counter("sb_eval_chaos_dropped_total",
			"Journaled writes dropped across chaos drills.").Add(uint64(res.Dropped))
		env.Obs.Counter("sb_eval_chaos_lost_total",
			"Call transitions lost across chaos drills (must stay 0).").Add(uint64(res.LostTransitions))
	}
	return res, nil
}
