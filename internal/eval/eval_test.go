package eval

import (
	"math"
	"sync"
	"testing"
	"time"
)

// sharedEnv is built once; experiments read it without mutating.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// skipUnderShort marks the single-threaded LP-replay experiments that take
// tens of seconds each (minutes under -race) and exercise no concurrency.
// The race gate (make check-race) runs with -short; the plain gate still
// runs them in full.
func skipUnderShort(t *testing.T) {
	t.Helper()
	if testing.Short() || raceEnabled {
		t.Skip("heavy deterministic replay; skipped under -short and -race")
	}
}

func quickEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(QuickConfig())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestNewEnvValidation(t *testing.T) {
	if _, err := NewEnv(Config{}); err == nil {
		t.Error("zero config should error")
	}
}

func TestEnvSplit(t *testing.T) {
	env := quickEnv(t)
	if env.TrainDB.TotalCalls() == 0 || env.EvalDB.TotalCalls() == 0 {
		t.Fatal("empty windows")
	}
	// Train window is much longer than eval window.
	if env.TrainDB.TotalCalls() < env.EvalDB.TotalCalls() {
		t.Errorf("train %d < eval %d calls", env.TrainDB.TotalCalls(), env.EvalDB.TotalCalls())
	}
	for _, r := range env.EvalRecords {
		if r.Start.Before(env.EvalStart) {
			t.Fatal("eval record before eval window")
		}
	}
}

func TestTable3Shape(t *testing.T) {
	skipUnderShort(t)
	env := quickEnv(t)
	res, err := Table3(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]Table3Row{res.Without, res.With} {
		if len(rows) != 3 {
			t.Fatalf("got %d rows", len(rows))
		}
		rr, lf, sb := rows[0], rows[1], rows[2]
		if rr.Cores != 1 || rr.WAN != 1 || rr.Cost != 1 || rr.MeanACL != 1 {
			t.Errorf("RR row not normalized: %+v", rr)
		}
		// The paper's Table 3 shape:
		// LF uses more compute than RR; SB never exceeds LF's compute.
		if lf.Cores < 1 {
			t.Errorf("LF cores %.3f < RR", lf.Cores)
		}
		// WAN: LF and SB far below RR; SB <= LF.
		if lf.WAN >= 1 || sb.WAN >= 1 {
			t.Errorf("WAN ratios LF=%.3f SB=%.3f, want < 1", lf.WAN, sb.WAN)
		}
		if sb.WAN > lf.WAN*1.05 {
			t.Errorf("SB WAN %.3f above LF %.3f", sb.WAN, lf.WAN)
		}
		// Cost: SB cheapest.
		if sb.Cost > lf.Cost*1.001 || sb.Cost > 1 {
			t.Errorf("SB cost %.3f (LF %.3f RR 1) not the cheapest", sb.Cost, lf.Cost)
		}
		// ACL: LF well below RR; SB no worse than RR and near LF.
		if lf.MeanACL >= 0.95 {
			t.Errorf("LF ACL ratio %.3f, want well below 1", lf.MeanACL)
		}
		if sb.MeanACL > 1.001 {
			t.Errorf("SB ACL ratio %.3f above RR", sb.MeanACL)
		}
	}
	// With backup, every scheme provisions at least as many raw cores.
	for i := range res.RawWithout {
		if res.RawWith[i].Cores < res.RawWithout[i].Cores-1e-6 {
			t.Errorf("%s: backup cores below serving-only", res.RawWith[i].Scheme)
		}
	}
}

func TestTable4Reasonable(t *testing.T) {
	skipUnderShort(t)
	env := quickEnv(t)
	res, err := Table4(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]Table4Row{res.Without, res.With} {
		if len(rows) != 3 {
			t.Fatalf("got %d rows", len(rows))
		}
		for _, r := range rows {
			// The paper sees deltas within ±13%; synthetic forecasts
			// should stay within a loose band.
			if math.Abs(r.CoresDelta) > 60 || math.Abs(r.WANDelta) > 60 {
				t.Errorf("%s: deltas cores=%.1f%% wan=%.1f%% implausibly large", r.Scheme, r.CoresDelta, r.WANDelta)
			}
		}
	}
}

func TestFig3PeaksShift(t *testing.T) {
	env := quickEnv(t)
	res := Fig3(env)
	if len(res.Series) != 3 {
		t.Fatal("want 3 countries")
	}
	// All series normalized to [0, 1].
	var sawOne bool
	for _, s := range res.Series {
		for _, v := range s {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("normalized value %g", v)
			}
			if v > 0.999 {
				sawOne = true
			}
		}
	}
	if !sawOne {
		t.Error("no series touches the normalization peak")
	}
	// Japan (UTC+9) peaks before India (UTC+5.5) in UTC terms.
	if res.PeakSlot[0] >= res.PeakSlot[2] {
		t.Errorf("JP peak slot %d not before IN peak slot %d", res.PeakSlot[0], res.PeakSlot[2])
	}
}

func TestFig4Numbers(t *testing.T) {
	res, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DefaultTotal-480) > 1e-6 {
		t.Errorf("default total = %g, want 480", res.DefaultTotal)
	}
	if math.Abs(res.PeakAwareTotal-320) > 1e-6 {
		t.Errorf("peak-aware total = %g, want 320", res.PeakAwareTotal)
	}
}

func TestFig7a(t *testing.T) {
	env := quickEnv(t)
	res, err := Fig7a(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Forecast) != len(res.Truth) || len(res.Forecast) == 0 {
		t.Fatal("series length mismatch")
	}
	// The top config is forecastable: normalized RMSE under 60%.
	if res.Accuracy.NormRMSE > 0.6 {
		t.Errorf("top-config normalized RMSE %.2f too high", res.Accuracy.NormRMSE)
	}
}

func TestFig7bGrowthNormalized(t *testing.T) {
	env := quickEnv(t)
	res, err := Fig7b(env, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Growth) == 0 {
		t.Fatal("no growth series")
	}
	var max float64
	for _, g := range res.Growth {
		if g <= 0 || g > 1+1e-9 {
			t.Fatalf("normalized growth %g outside (0,1]", g)
		}
		if g > max {
			max = g
		}
	}
	if math.Abs(max-1) > 1e-9 {
		t.Errorf("max normalized growth = %g, want 1", max)
	}
}

func TestFig7cCoverage(t *testing.T) {
	env := quickEnv(t)
	res := Fig7c(env)
	if res.Distinct < 100 {
		t.Fatalf("only %d distinct configs", res.Distinct)
	}
	for i := 1; i < len(res.Coverage); i++ {
		if res.Coverage[i] < res.Coverage[i-1]-1e-12 {
			t.Fatal("coverage not monotone")
		}
	}
	if last := res.Coverage[len(res.Coverage)-1]; math.Abs(last-1) > 1e-9 {
		t.Errorf("full coverage = %g", last)
	}
	// Concentration: the top 10% of configs cover most calls.
	var at10 float64
	for i, f := range res.TopFracs {
		if f == 0.10 {
			at10 = res.Coverage[i]
		}
	}
	if at10 < 0.5 {
		t.Errorf("top-10%% coverage %.2f, want >= 0.5", at10)
	}
}

func TestFig8At300s(t *testing.T) {
	env := quickEnv(t)
	res := Fig8(env)
	if res.At300s < 0.7 || res.At300s > 0.95 {
		t.Errorf("fraction joined at 300s = %.2f, want ~0.8", res.At300s)
	}
}

func TestForecastBaselines(t *testing.T) {
	env := quickEnv(t)
	res, err := ForecastBaselines(env, env.Cfg.TopConfigs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs == 0 {
		t.Fatal("no configs compared")
	}
	// Holt-Winters should win on most configs of a trending, seasonal
	// workload (the reason §5.2 picks it).
	if res.Wins*2 < res.Configs {
		t.Errorf("HW wins only %d of %d configs", res.Wins, res.Configs)
	}
	if res.MeanHW > res.MeanSeasonalNaive {
		t.Errorf("mean HW RMSE %.3f above seasonal naive %.3f", res.MeanHW, res.MeanSeasonalNaive)
	}
}

func TestFig9Medians(t *testing.T) {
	env := quickEnv(t)
	res, err := Fig9(env, env.Cfg.TopConfigs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Configs == 0 {
		t.Fatal("no configs scored")
	}
	// §6.5 reports median normalized RMSE 13% and MAE 8%; synthetic data
	// should land in the same ballpark (well under 1.0, MAE <= RMSE).
	if res.MedianRMSE > 0.5 {
		t.Errorf("median normalized RMSE %.3f too high", res.MedianRMSE)
	}
	if res.MedianMAE > res.MedianRMSE+1e-9 {
		t.Errorf("median MAE %.3f above median RMSE %.3f", res.MedianMAE, res.MedianRMSE)
	}
}

func TestMigrationRates(t *testing.T) {
	env := quickEnv(t)
	res, err := Migration(env)
	if err != nil {
		t.Fatal(err)
	}
	// §6.4: both SB and LF migrate a small fraction of calls, and the two
	// are comparable.
	for name, s := range map[string]Stats{"SB": res.SB, "LF": res.LF} {
		if s.Calls == 0 {
			t.Fatalf("%s: no calls", name)
		}
		if s.Rate < 0 || s.Rate > 0.25 {
			t.Errorf("%s migration rate %.3f outside plausible band", name, s.Rate)
		}
	}
}

func TestFig10ThroughputScales(t *testing.T) {
	env := quickEnv(t)
	res, err := Fig10(env, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 || res.PeakRate != ProductionPeakRate {
		t.Fatalf("res = %+v", res)
	}
	// Throughput must scale with threads against the simulated
	// cloud-store latency (the Fig 10 shape).
	if res.Runs[1].EventsPerSec < 2*res.Runs[0].EventsPerSec {
		t.Errorf("4 workers %g ev/s not >= 2x 1 worker %g ev/s",
			res.Runs[1].EventsPerSec, res.Runs[0].EventsPerSec)
	}
	// Simulated writes are cloud-store-like: sub-millisecond floor with a
	// tail. The floor is deterministic (injected latency), but the observed
	// max rides the host scheduler — a CPU-starved runner executing the
	// whole suite in parallel stalls goroutine wakeups by hundreds of ms —
	// so the ceiling only rules out genuine hangs (the client's IOTimeout
	// scale), not tail inflation.
	for _, r := range res.Runs {
		if r.MinWrite < 250*time.Microsecond || r.MaxWrite > time.Second {
			t.Errorf("%d workers: writes %v..%v outside plausible band", r.Workers, r.MinWrite, r.MaxWrite)
		}
	}
}

func TestPredictExperiment(t *testing.T) {
	env := quickEnv(t)
	res, err := Predict(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == 0 {
		t.Fatal("no series")
	}
	if res.Model.RMSE >= res.Baseline.RMSE {
		t.Errorf("model RMSE %.3f not better than baseline %.3f", res.Model.RMSE, res.Baseline.RMSE)
	}
}

func TestAblations(t *testing.T) {
	skipUnderShort(t)
	env := quickEnv(t)
	joint, err := AblationJoint(env)
	if err != nil {
		t.Fatal(err)
	}
	// Compute-only pricing can only cost more at true prices.
	if joint.CostRatioVariant < 0.999 {
		t.Errorf("compute-only variant cheaper than joint: %.3f", joint.CostRatioVariant)
	}
	backup, err := AblationBackup(env)
	if err != nil {
		t.Fatal(err)
	}
	// Peak-aware DC-failure provisioning should need no more compute than
	// default backup bolted on top (Fig 4's 320 vs 480, system-scale).
	if backup.ComputeRatioVariant < 0.999 {
		t.Errorf("default-backup variant needs less compute than peak-aware: %.3f", backup.ComputeRatioVariant)
	}
}

func TestSimFidelity(t *testing.T) {
	env := quickEnv(t)
	res, err := SimFidelity(env)
	if err != nil {
		t.Fatal(err)
	}
	// Overflow comes from tail traffic outside the planned top-N config
	// universe; at QuickConfig's coverage (~50%) that tail is large, so
	// the bound is loose. The default scale lands near 5%.
	for name, r := range map[string]interface {
		OverflowRate() float64
	}{"plan": res.Plan, "greedy": res.Greedy} {
		if rate := r.OverflowRate(); rate > 0.25 {
			t.Errorf("%s policy overflow rate %.3f for in-sample replay", name, rate)
		}
	}
	if res.Plan.Calls == 0 || res.Greedy.Calls != res.Plan.Calls {
		t.Fatalf("call counts plan=%d greedy=%d", res.Plan.Calls, res.Greedy.Calls)
	}
	// Realized latencies should be in the same regime as the plan's
	// fractional ACL (both policies follow latency-minimizing choices).
	if res.Plan.MeanACL > 3*res.PlanACL+10 {
		t.Errorf("realized plan ACL %.1f far above fractional %.1f", res.Plan.MeanACL, res.PlanACL)
	}
}

func TestDrill(t *testing.T) {
	env := quickEnv(t)
	res, err := Drill(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithBackup.Replaced == 0 || res.WithBackup.PostCalls == 0 {
		t.Fatalf("drill displaced nothing: %+v", res.WithBackup)
	}
	// Backup provisioning absorbs the failure better than serving-only.
	if res.WithBackup.OverflowRateAfter() > res.WithoutBackup.OverflowRateAfter() {
		t.Errorf("backup plan overflow %.3f above serving-only %.3f",
			res.WithBackup.OverflowRateAfter(), res.WithoutBackup.OverflowRateAfter())
	}
}

func TestPredictiveMigration(t *testing.T) {
	env := quickEnv(t)
	res, err := PredictiveMigration(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecurringCalls == 0 {
		t.Fatal("no recurring calls in replay")
	}
	if res.PredictedCalls == 0 {
		t.Fatal("predictor never fired")
	}
	// §8's motivation: prediction should not worsen migrations on
	// recurring calls (and typically reduces them).
	if res.RecurringWith > res.RecurringWithout+0.02 {
		t.Errorf("recurring migration rate rose: %.3f -> %.3f", res.RecurringWithout, res.RecurringWith)
	}
}

func TestScaleCheck(t *testing.T) {
	// §6.6: around ten threads the controller sustains 1.4x the
	// production-scale peak. The unit test uses a lower bar (1.15x with
	// 16 threads) so CPU contention from parallel test/bench runs cannot
	// flake it; `sbexp -exp scale` performs the paper's exact check on an
	// idle machine.
	env := quickEnv(t)
	ok, run, err := ScaleCheck(env, 16, 1.15)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("controller did not sustain 1.15x peak with 16 threads: %+v", run)
	}
}

func TestChaosDrill(t *testing.T) {
	env := quickEnv(t)
	res, err := Chaos(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 || res.Events == 0 {
		t.Fatalf("empty drill: %+v", res)
	}
	if res.Degraded < 1 {
		t.Error("chaos run never degraded")
	}
	if res.Replayed == 0 {
		t.Error("no journaled writes replayed")
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d journaled writes", res.Dropped)
	}
	if res.LostTransitions != 0 {
		t.Errorf("lost %d transitions", res.LostTransitions)
	}
	// Faults change timing, never placement.
	if res.CleanMigrated != res.ChaosMigrated {
		t.Errorf("migrations diverged under faults: %d vs %d", res.CleanMigrated, res.ChaosMigrated)
	}
	if res.MaxStall > 2*time.Second {
		t.Errorf("an op stalled %v under faults", res.MaxStall)
	}
}

func TestPartitionDrill(t *testing.T) {
	env := quickEnv(t)
	res, err := PartitionDrill(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 || res.Events == 0 {
		t.Fatalf("empty drill: %+v", res)
	}
	if res.PromotionLatency <= 0 || res.PromotionLatency > 5*time.Second {
		t.Errorf("promotion latency = %v", res.PromotionLatency)
	}
	if res.ReplicatedSeq == 0 {
		t.Error("standby promoted with an empty replication log")
	}
	if res.Dropped != 0 {
		t.Errorf("dropped %d journaled writes", res.Dropped)
	}
	if res.LostTransitions != 0 {
		t.Errorf("lost %d transitions across failover", res.LostTransitions)
	}
	// Client deadlines, not the partition, bound every stall.
	if res.MaxStall > 3*time.Second {
		t.Errorf("an op stalled %v across failover", res.MaxStall)
	}
}

func TestShardDrill(t *testing.T) {
	env := quickEnv(t)
	res, err := ShardDrill(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 || res.Events == 0 {
		t.Fatalf("empty drill: %+v", res)
	}
	if res.PromotionLatency <= 0 || res.PromotionLatency > 5*time.Second {
		t.Errorf("takeover latency = %v", res.PromotionLatency)
	}
	if res.LostTransitions != 0 {
		t.Errorf("lost %d transitions across the shard takeover", res.LostTransitions)
	}
	// Lease TTL + takeover delay bound the failed-over shards' stalls; the
	// untouched shard must not feel the kill at all.
	if res.MaxStall > 5*time.Second {
		t.Errorf("an op stalled %v across the takeover", res.MaxStall)
	}
	if res.UntouchedMaxStall > time.Second {
		t.Errorf("the untouched shard stalled %v", res.UntouchedMaxStall)
	}
}

func TestReshardDrill(t *testing.T) {
	env := quickEnv(t)
	res, err := ReshardDrill(env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 || res.Events == 0 {
		t.Fatalf("empty drill: %+v", res)
	}
	if res.FinalEpoch < 1 {
		t.Errorf("final ring epoch = %d, want the split to bump it", res.FinalEpoch)
	}
	if res.SplitDuration <= 0 || res.SplitDuration > 30*time.Second {
		t.Errorf("split duration = %v", res.SplitDuration)
	}
	if res.LostTransitions != 0 {
		t.Errorf("lost %d transitions across the split", res.LostTransitions)
	}
	// The handoff barrier, not the copy, bounds every held write.
	if res.MaxHeldStall > 5*time.Second {
		t.Errorf("a held write stalled %v", res.MaxHeldStall)
	}
	if res.MaxStall > 5*time.Second {
		t.Errorf("an op stalled %v during the split", res.MaxStall)
	}
}
