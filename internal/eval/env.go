// Package eval drives Switchboard's evaluation (§6): it wires the synthetic
// trace, records database, forecaster, provisioners, allocation plan,
// controller, and predictor into one experiment per table and figure of the
// paper, each returning structured results that cmd/sbexp prints and
// bench_test.go regenerates.
package eval

import (
	"fmt"
	"sync"
	"time"

	"switchboard/internal/allocate"
	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/obs"
	"switchboard/internal/provision"
	"switchboard/internal/records"
	"switchboard/internal/trace"
)

// Config scales an experiment environment. DefaultConfig matches the scale
// the committed EXPERIMENTS.md numbers were produced at; QuickConfig is a
// fast variant for tests.
type Config struct {
	// Seed drives the synthetic trace.
	Seed int64
	// TrainDays of history feed forecasting and latency estimation.
	TrainDays int
	// EvalDays is the provisioning / evaluation window that follows.
	EvalDays int
	// CallsPerDay is the day-0 global call volume.
	CallsPerDay int
	// TopConfigs bounds how many call configs are individually
	// provisioned (the paper's top-1%).
	TopConfigs int
	// SlotStride coarsens provisioning time slots (see provision.Inputs).
	SlotStride int
	// LatencyThresholdMs is LAT_th.
	LatencyThresholdMs float64
	// MinLatencySamples gates pooled-median latency estimates.
	MinLatencySamples int64
	// KeepEvalRecords retains the evaluation window's full call records
	// (needed by the migration and controller-throughput experiments).
	KeepEvalRecords bool
}

// DefaultConfig is the scale used for the committed experiment outputs.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		TrainDays:          28,
		EvalDays:           7,
		CallsPerDay:        12000,
		TopConfigs:         50,
		SlotStride:         6,
		LatencyThresholdMs: 120,
		MinLatencySamples:  30,
		KeepEvalRecords:    true,
	}
}

// QuickConfig is a reduced scale for unit tests.
func QuickConfig() Config {
	return Config{
		Seed:               1,
		TrainDays:          15,
		EvalDays:           2,
		CallsPerDay:        2000,
		TopConfigs:         30,
		SlotStride:         8,
		LatencyThresholdMs: 120,
		MinLatencySamples:  15,
		KeepEvalRecords:    true,
	}
}

// Env is a built experiment environment: one continuous synthetic trace
// split into a training window (history) and an evaluation window.
type Env struct {
	Cfg   Config
	World *geo.World
	// TrainDB holds the history window; EvalDB the evaluation window.
	TrainDB, EvalDB *records.DB
	// Est estimates Lat(x, u) from the training window.
	Est *records.LatencyEstimator
	// EvalRecords is the evaluation window's calls (nil unless
	// KeepEvalRecords).
	EvalRecords []*model.CallRecord
	// EvalStart is the first instant of the evaluation window.
	EvalStart time.Time

	// Obs, when non-nil, receives experiment telemetry: one completed-run
	// counter per experiment plus the chaos drill's journal tallies.
	Obs *obs.Registry

	// experiments is the lazily registered completed-run counter family.
	expOnce sync.Once
	expRuns *obs.CounterVec

	// Memoized heavy artifacts shared by experiments (several experiments
	// provision Switchboard-with-backup over the same ground-truth
	// demand; solving those scenario LPs once saves most of a full-run's
	// wall clock).
	sbOnce  sync.Once
	sbLM    *provision.LoadModel
	sbPlan  *provision.Plan
	sbAlloc *allocate.Result
	sbErr   error
}

// countRun counts one completed experiment under
// sb_eval_experiments_total{name=...}. No-op without an Obs registry.
func (env *Env) countRun(name string) {
	if env.Obs == nil {
		return
	}
	env.expOnce.Do(func() {
		env.expRuns = env.Obs.CounterVec("sb_eval_experiments_total",
			"Completed evaluation experiments, by name.", "name")
	})
	env.expRuns.With(name).Inc()
}

// SBWithBackup returns the memoized Switchboard-with-backup plan over the
// evaluation window's ground-truth demand envelope, together with its load
// model and the daily allocation plan within its capacities.
func (env *Env) SBWithBackup() (*provision.LoadModel, *provision.Plan, *allocate.Result, error) {
	env.sbOnce.Do(func() {
		in := &provision.Inputs{
			World:              env.World,
			Latency:            env.Est,
			Demand:             env.EvalDB.PeakEnvelope(env.Cfg.TopConfigs),
			LatencyThresholdMs: env.Cfg.LatencyThresholdMs,
			WithBackup:         true,
			SlotStride:         env.Cfg.SlotStride,
		}
		env.sbLM, env.sbErr = provision.NewLoadModel(in)
		if env.sbErr != nil {
			return
		}
		env.sbPlan, env.sbErr = provision.Switchboard(in)
		if env.sbErr != nil {
			return
		}
		env.sbAlloc, env.sbErr = allocate.Build(env.sbLM, env.sbPlan.Cores, env.sbPlan.LinkGbps)
	})
	return env.sbLM, env.sbPlan, env.sbAlloc, env.sbErr
}

// NewEnv generates the trace and populates the databases.
func NewEnv(cfg Config) (*Env, error) {
	if cfg.TrainDays <= 0 || cfg.EvalDays <= 0 {
		return nil, fmt.Errorf("eval: TrainDays and EvalDays must be positive")
	}
	tc := trace.DefaultConfig()
	tc.Seed = cfg.Seed
	tc.Days = cfg.TrainDays + cfg.EvalDays
	tc.CallsPerDay = cfg.CallsPerDay
	g, err := trace.NewGenerator(tc)
	if err != nil {
		return nil, err
	}
	w := geo.DefaultWorld()
	env := &Env{
		Cfg:       cfg,
		World:     w,
		TrainDB:   records.New(tc.Start, w),
		EvalStart: tc.Start.AddDate(0, 0, cfg.TrainDays),
	}
	env.EvalDB = records.New(env.EvalStart, w)
	g.EachCall(func(r *model.CallRecord) bool {
		if r.Start.Before(env.EvalStart) {
			env.TrainDB.Add(r)
		} else {
			env.EvalDB.Add(r)
			if cfg.KeepEvalRecords {
				env.EvalRecords = append(env.EvalRecords, r)
			}
		}
		return true
	})
	env.Est = env.TrainDB.Estimator(cfg.MinLatencySamples)
	return env, nil
}
