package eval

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"switchboard/internal/controller"
	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
	"switchboard/internal/kvstore/replica"
	"switchboard/internal/model"
)

// PartitionResult reports the HA failover drill: the evaluation window's
// events replayed against a primary/standby kvstore pair whose primary is
// partitioned away (silently — connections stay open, bytes vanish) a third
// of the way through the stream. The standby must promote itself, the
// controller's failover client must chase it, and no call transition may be
// lost.
type PartitionResult struct {
	// Calls and Events describe the replayed stream.
	Calls, Events int
	// EventsPerSec is the sustained rate across the whole run, promotion
	// stall included.
	EventsPerSec float64
	// PromotionLatency is how long the standby took to detect the silent
	// primary and promote itself after the partition was injected.
	PromotionLatency time.Duration
	// MaxStall is the longest any single controller operation took —
	// bounded by the client's deadlines, not by the partition.
	MaxStall time.Duration
	// ReplicatedSeq is the promoted standby's replication log position; it
	// covers every write acked before the partition.
	ReplicatedSeq uint64
	// Degraded / Replayed / Dropped are the controller's journal counters:
	// writes that failed during the failover window are journaled and
	// drained against the promoted standby.
	Degraded, Replayed, Dropped int64
	// LostTransitions counts calls whose terminal state never reached the
	// promoted standby (must be 0: acked writes were replicated, failed
	// writes were journaled).
	LostTransitions int
	// Seed reproduces the drill's client jitter.
	Seed int64
}

// PartitionDrill replays the evaluation window's events against a replicated
// store pair and partitions the primary mid-stream. Unlike Chaos — which
// severs a single store and leans on the journal alone — this drill has a hot
// standby: acked writes survive on the replica, the standby promotes within
// its failover timeout, and the client follows it, so the journal only has to
// cover the promotion window.
func PartitionDrill(env *Env, seed int64) (*PartitionResult, error) {
	if env.EvalRecords == nil {
		return nil, fmt.Errorf("eval: PartitionDrill needs KeepEvalRecords")
	}
	recs := env.EvalRecords
	if len(recs) > chaosMaxCalls {
		recs = recs[:chaosMaxCalls]
	}
	events := controller.BuildEvents(recs, controller.DefaultFreeze)
	res := &PartitionResult{Calls: len(recs), Events: len(events), Seed: seed}

	// Primary behind the chaos proxy, so the partition hits replication
	// stream and client traffic alike.
	psrv := kvstore.NewServer()
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = psrv.Serve(pl) }()
	defer func() { _ = psrv.Close() }()
	replica.NewPrimary(psrv, 0, replica.PrimaryOptions{
		Heartbeat:  25 * time.Millisecond,
		AckTimeout: 500 * time.Millisecond,
	})
	proxy, err := faults.NewProxy(pl.Addr().String(), nil)
	if err != nil {
		return nil, err
	}
	defer func() { _ = proxy.Close() }()

	// Hot standby syncing through the proxy; it must see the same silence
	// the clients do.
	ssrv := kvstore.NewServer()
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = ssrv.Serve(sl) }()
	defer func() { _ = ssrv.Close() }()
	promoted := make(chan *replica.Primary, 1)
	var promotedAt time.Time // written before the promoted send, read after the receive
	standby := replica.NewStandby(ssrv, proxy.Addr(), replica.StandbyOptions{
		FailoverTimeout: 500 * time.Millisecond,
		DialTimeout:     100 * time.Millisecond,
		ReadTimeout:     150 * time.Millisecond,
		RedialInterval:  20 * time.Millisecond,
		OnPromote: func(p *replica.Primary) {
			promotedAt = time.Now() //sblint:allow nondeterminism -- promotion timestamp
			promoted <- p
		},
	})
	go standby.Run()
	defer standby.Stop()

	client, err := kvstore.DialFailover([]string{proxy.Addr(), sl.Addr().String()}, kvstore.Options{
		DialTimeout: 100 * time.Millisecond,
		IOTimeout:   250 * time.Millisecond,
		MaxRetries:  2,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = client.Close() }()
	ctrl, err := controller.New(controller.Config{
		World: env.World,
		Placer: &controller.MinACLPlacer{
			ACLOf: func(cfg model.CallConfig, dc int) float64 { return cfg.ACL(env.World, dc) },
			NDCs:  len(env.World.DCs()),
		},
		Store:         client,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	// Replay, partitioning the primary a third of the way in. The failover
	// drill measures real wall-clock promotion latency and stalls of a live
	// replicated pair; the clock IS the measurement.
	cutAt := len(events) / 3
	var partitionedAt time.Time
	var maxStall time.Duration
	start := time.Now() //sblint:allow nondeterminism -- measuring real elapsed time
	for i, e := range events {
		if i == cutAt {
			proxy.Partition()
			partitionedAt = time.Now() //sblint:allow nondeterminism -- promotion latency reference point
		}
		opStart := time.Now() //sblint:allow nondeterminism -- measuring real per-op stall
		var err error
		switch e.Kind {
		case controller.EventStart:
			_, err = ctrl.CallStartedWithSeries(context.Background(), e.CallID, e.Country, e.SeriesID, e.Time)
		case controller.EventJoin:
			ctrl.ParticipantJoined(context.Background(), e.CallID, e.Country, e.Media)
		case controller.EventFreeze:
			_, _, err = ctrl.ConfigKnown(context.Background(), e.CallID, e.Config, e.Time)
		case controller.EventEnd:
			err = ctrl.CallEnded(context.Background(), e.CallID)
		}
		if err != nil {
			return nil, fmt.Errorf("eval: partition replay %v(%d): %w", e.Kind, e.CallID, err)
		}
		if stall := time.Since(opStart); stall > maxStall { //sblint:allow nondeterminism -- measuring real per-op stall
			maxStall = stall
		}
	}
	elapsed := time.Since(start) //sblint:allow nondeterminism -- measuring real elapsed time
	res.EventsPerSec = float64(len(events)) / elapsed.Seconds()
	res.MaxStall = maxStall

	// The standby must have promoted itself during the stream.
	var newPrimary *replica.Primary
	select {
	case newPrimary = <-promoted:
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("eval: standby never promoted after the partition")
	}
	res.PromotionLatency = promotedAt.Sub(partitionedAt)
	res.ReplicatedSeq = newPrimary.LastSeq()

	// Drain whatever the failover window journaled against the promoted
	// standby, retrying through the client's backoff.
	deadline := time.Now().Add(10 * time.Second) //sblint:allow nondeterminism -- real-time retry deadline
	for {
		if _, err := ctrl.ReplayJournal(context.Background()); err == nil {
			break
		}
		if time.Now().After(deadline) { //sblint:allow nondeterminism -- real-time retry deadline
			return nil, fmt.Errorf("eval: journal did not drain against the promoted standby")
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := ctrl.Stats()
	res.Degraded, res.Replayed, res.Dropped = st.Degraded, st.Replayed, st.Dropped

	// Audit against the promoted standby: every call must have reached its
	// terminal state — replicated before the partition or replayed after.
	reader, err := kvstore.Dial(sl.Addr().String())
	if err != nil {
		return nil, err
	}
	defer func() { _ = reader.Close() }()
	for _, r := range recs {
		v, err := reader.HGet("call:"+strconv.FormatUint(r.ID, 10), "state")
		if err != nil || v != "ended" {
			res.LostTransitions++
		}
	}

	env.countRun("partition")
	if env.Obs != nil {
		env.Obs.Counter("sb_eval_partition_replayed_total",
			"Journaled writes replayed across partition drills.").Add(uint64(res.Replayed))
		env.Obs.Counter("sb_eval_partition_lost_total",
			"Call transitions lost across partition drills (must stay 0).").Add(uint64(res.LostTransitions))
	}
	return res, nil
}
