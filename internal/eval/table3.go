package eval

import (
	"fmt"

	"switchboard/internal/allocate"
	"switchboard/internal/provision"
	"switchboard/internal/records"
)

// Table3Row is one scheme's provisioning outcome, normalized to Round-Robin
// within the same backup setting (as the paper's Table 3 does).
type Table3Row struct {
	Scheme  string
	Cores   float64
	WAN     float64
	Cost    float64
	MeanACL float64
}

// Table3Result reproduces Table 3: resources, cost, and mean ACL for RR, LF,
// and Switchboard, with and without backup provisioning.
type Table3Result struct {
	Without []Table3Row
	With    []Table3Row
	// RawWithout/RawWith carry the pre-normalization values for
	// cross-checks (cores, Gbps, cost, ms).
	RawWithout []Table3Row
	RawWith    []Table3Row
}

// Table3 runs the headline provisioning comparison over the evaluation
// window's ground-truth demand.
func Table3(env *Env) (*Table3Result, error) {
	demand := env.EvalDB.PeakEnvelope(env.Cfg.TopConfigs)
	res := &Table3Result{}
	for _, withBackup := range []bool{false, true} {
		rows, err := table3Rows(env, demand, withBackup, withBackup)
		if err != nil {
			return nil, err
		}
		norm := normalizeRows(rows)
		if withBackup {
			res.RawWith, res.With = rows, norm
		} else {
			res.RawWithout, res.Without = rows, norm
		}
	}
	return res, nil
}

// table3Rows provisions all three schemes over demand. memoSB reuses the
// environment's memoized Switchboard-with-backup plan, valid only when
// demand is the ground-truth envelope and withBackup is set.
func table3Rows(env *Env, demand *records.Demand, withBackup, memoSB bool) ([]Table3Row, error) {
	in := &provision.Inputs{
		World:              env.World,
		Latency:            env.Est,
		Demand:             demand,
		LatencyThresholdMs: env.Cfg.LatencyThresholdMs,
		WithBackup:         withBackup,
		SlotStride:         env.Cfg.SlotStride,
	}
	lm, err := provision.NewLoadModel(in)
	if err != nil {
		return nil, err
	}

	rows := make([]Table3Row, 0, 3)
	for _, scheme := range []struct {
		name string
		f    func(*provision.Inputs) (*provision.Plan, error)
	}{
		{"RR", provision.RoundRobin},
		{"LF", provision.LocalityFirst},
		{"SB", provision.Switchboard},
	} {
		var plan *provision.Plan
		var acl float64
		if scheme.name == "SB" && memoSB {
			memoLM, memoPlan, memoAlloc, err := env.SBWithBackup()
			if err != nil {
				return nil, err
			}
			_ = memoLM
			plan, acl = memoPlan, memoAlloc.MeanACL
			rows = append(rows, Table3Row{
				Scheme:  scheme.name,
				Cores:   plan.TotalCores(),
				WAN:     plan.TotalGbps(),
				Cost:    plan.Cost(env.World),
				MeanACL: acl,
			})
			continue
		}
		plan, err = scheme.f(in)
		if err != nil {
			return nil, fmt.Errorf("eval: %s (backup=%v): %w", scheme.name, withBackup, err)
		}
		acl = plan.MeanACL(lm)
		if scheme.name == "SB" {
			// Switchboard's runtime allocation follows the daily plan
			// (Eq 10) within the provisioned capacities, which is what
			// users actually experience.
			planAlloc, err := allocate.Build(lm, plan.Cores, plan.LinkGbps)
			if err != nil {
				return nil, fmt.Errorf("eval: SB allocation plan: %w", err)
			}
			acl = planAlloc.MeanACL
		}
		rows = append(rows, Table3Row{
			Scheme:  scheme.name,
			Cores:   plan.TotalCores(),
			WAN:     plan.TotalGbps(),
			Cost:    plan.Cost(env.World),
			MeanACL: acl,
		})
	}
	return rows, nil
}

// normalizeRows divides every metric by the first (RR) row's value.
func normalizeRows(rows []Table3Row) []Table3Row {
	if len(rows) == 0 {
		return nil
	}
	rr := rows[0]
	out := make([]Table3Row, len(rows))
	for i, r := range rows {
		out[i] = Table3Row{
			Scheme:  r.Scheme,
			Cores:   ratio(r.Cores, rr.Cores),
			WAN:     ratio(r.WAN, rr.WAN),
			Cost:    ratio(r.Cost, rr.Cost),
			MeanACL: ratio(r.MeanACL, rr.MeanACL),
		}
	}
	return out
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Table4Row is one scheme's forecast-vs-truth provisioning delta in percent:
// (truth − forecast) / truth × 100, so negative means the forecast
// over-provisioned (the paper's sign convention).
type Table4Row struct {
	Scheme     string
	CoresDelta float64
	WANDelta   float64
}

// Table4Result reproduces Table 4.
type Table4Result struct {
	Without []Table4Row
	With    []Table4Row
}

// Table4 provisions once from forecast demand and once from ground truth,
// reporting the per-scheme resource deltas.
func Table4(env *Env) (*Table4Result, error) {
	forecastDemand, err := ForecastDemand(env)
	if err != nil {
		return nil, err
	}
	truthDemand := env.EvalDB.PeakEnvelope(env.Cfg.TopConfigs)

	res := &Table4Result{}
	for _, withBackup := range []bool{false, true} {
		fRows, err := table3Rows(env, forecastDemand, withBackup, false)
		if err != nil {
			return nil, err
		}
		tRows, err := table3Rows(env, truthDemand, withBackup, withBackup)
		if err != nil {
			return nil, err
		}
		rows := make([]Table4Row, len(fRows))
		for i := range fRows {
			rows[i] = Table4Row{
				Scheme:     fRows[i].Scheme,
				CoresDelta: 100 * (tRows[i].Cores - fRows[i].Cores) / tRows[i].Cores,
				WANDelta:   100 * (tRows[i].WAN - fRows[i].WAN) / tRows[i].WAN,
			}
		}
		if withBackup {
			res.With = rows
		} else {
			res.Without = rows
		}
	}
	return res, nil
}
