package eval

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"switchboard/internal/des"
	"switchboard/internal/geo"
)

// DESSweepConfig parameterizes the million-call fleet sweep. It deliberately
// does not take an Env: the sweep builds its own 12-DC fleet straight from
// the geo world, so it runs in milliseconds of setup even at 10M calls.
type DESSweepConfig struct {
	// Calls per run (the workload replays identically under every policy).
	Calls int
	// Seed drives workload and engine streams.
	Seed int64
	// Policies are the placement policies to compare (des.PlacementByName).
	Policies []string
	// DetectDelays, when non-empty, adds a DC failure to every run and
	// sweeps the failover detection delay over these values — the paper's
	// failover-timing axis in one knob.
	DetectDelays []time.Duration
	// Headroom scales capacity over the workload's expected peak (0: 1.25).
	Headroom float64
	// TraceEvery samples 1-in-N calls into the decision trace
	// (0: Calls/10000, min 1). The trace is written for the first
	// (policy, delay) run only.
	TraceEvery int
}

func (c *DESSweepConfig) withDefaults() DESSweepConfig {
	out := *c
	if out.Calls <= 0 {
		out.Calls = 10_000_000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if len(out.Policies) == 0 {
		out.Policies = []string{"lowest-acl", "least-loaded", "power-of-two", "best-fit"}
	}
	if out.Headroom <= 0 {
		out.Headroom = 1.25
	}
	if out.TraceEvery <= 0 {
		out.TraceEvery = out.Calls / 10_000
		if out.TraceEvery < 1 {
			out.TraceEvery = 1
		}
	}
	return out
}

// DESSweepRow is one (policy, detection delay) run.
type DESSweepRow struct {
	Policy string
	// Detect is the failover detection delay (zero on no-failure runs).
	Detect time.Duration
	Res    des.Result
}

// desOrigin anchors virtual time zero, matching the synthetic trace
// generator's default start so simulated and generated timestamps align.
var desOrigin = time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC)

// desScenario builds the fleet and a fresh workload for one run. The
// workload is reconstructed per run from the same seed, so every policy and
// every detection delay sees the identical arrival stream.
func desScenario(cfg DESSweepConfig) (*des.Fleet, *des.SynthSource, error) {
	w := geo.DefaultWorld()
	src, err := des.NewSynthSource(w, des.SynthConfig{Seed: cfg.Seed, Calls: cfg.Calls})
	if err != nil {
		return nil, nil, err
	}
	f, err := des.NewFleet(w, src.Configs(), 120)
	if err != nil {
		return nil, nil, err
	}
	cores, gbps := src.ExpectedPeakLoad(f)
	for i := range cores {
		cores[i] *= cfg.Headroom
	}
	for i := range gbps {
		gbps[i] *= cfg.Headroom
	}
	if err := f.SetCapacity(cores, gbps); err != nil {
		return nil, nil, err
	}
	return f, src, nil
}

// desFailure is the sweep's outage scenario: the workload's busiest DC dies
// at the diurnal peak and recovers two hours later.
func desFailure(f *des.Fleet) des.DCFailure {
	busiest := int32(0)
	for x := 1; x < f.NumDCs(); x++ {
		if f.CapCores[x] > f.CapCores[busiest] {
			busiest = int32(x)
		}
	}
	return des.DCFailure{DC: busiest, At: 13 * time.Hour, Recover: 15 * time.Hour}
}

// DESSweep runs every (policy, detection delay) combination over the same
// workload and returns one row per run. traceW, when non-nil, receives the
// decision trace of the first run (span JSONL, sbtrace-compatible). The
// returned rows are in policy-major order. An error is returned if any run
// drops events — the engine's own audit, promoted to a hard failure so CI
// smoke runs cannot silently pass a broken queue.
func DESSweep(cfg DESSweepConfig, traceW io.Writer) ([]DESSweepRow, error) {
	cfg = cfg.withDefaults()
	delays := cfg.DetectDelays
	withFailure := len(delays) > 0
	if !withFailure {
		delays = []time.Duration{0}
	}
	var rows []DESSweepRow
	first := true
	for _, pname := range cfg.Policies {
		pol, ok := des.PlacementByName(pname)
		if !ok {
			return nil, fmt.Errorf("dessweep: unknown policy %q", pname)
		}
		for _, d := range delays {
			f, src, err := desScenario(cfg)
			if err != nil {
				return nil, err
			}
			ec := des.Config{
				Fleet:     f,
				Source:    src,
				Placement: pol,
				Seed:      cfg.Seed,
			}
			if withFailure {
				ec.Failover = des.FixedDetection{Delay: d}
				ec.Failures = []des.DCFailure{desFailure(f)}
			}
			if first && traceW != nil {
				ec.Trace = des.NewTrace(traceW, cfg.Seed, desOrigin, cfg.TraceEvery)
			}
			first = false
			res, err := des.Run(ec)
			if err != nil {
				return nil, err
			}
			if res.DroppedEvents != 0 {
				return nil, fmt.Errorf("dessweep: %s/%v dropped %d events", pname, d, res.DroppedEvents)
			}
			rows = append(rows, DESSweepRow{Policy: pname, Detect: d, Res: res})
		}
	}
	return rows, nil
}

// DESSeedStable is the sweep's self-check: it runs the first policy twice at
// a reduced call count with tracing on and reports whether the decision
// traces are byte-identical (they must be) and whether a different seed
// diverges (it must). Returns an error describing the first violation.
func DESSeedStable(cfg DESSweepConfig) error {
	cfg = cfg.withDefaults()
	if cfg.Calls > 100_000 {
		cfg.Calls = 100_000
	}
	cfg.TraceEvery = 10
	cfg.Policies = cfg.Policies[:1]
	run := func(seed int64) ([]byte, error) {
		c := cfg
		c.Seed = seed
		var buf bytes.Buffer
		if _, err := DESSweep(c, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	a, err := run(cfg.Seed)
	if err != nil {
		return err
	}
	b, err := run(cfg.Seed)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("dessweep: same seed %d produced different decision traces (%d vs %d bytes)",
			cfg.Seed, len(a), len(b))
	}
	c, err := run(cfg.Seed + 1)
	if err != nil {
		return err
	}
	if bytes.Equal(a, c) {
		return fmt.Errorf("dessweep: seeds %d and %d produced identical traces", cfg.Seed, cfg.Seed+1)
	}
	return nil
}
