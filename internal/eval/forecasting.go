package eval

import (
	"fmt"
	"math"
	"sort"

	"switchboard/internal/forecast"
	"switchboard/internal/model"
	"switchboard/internal/records"
)

// weekSlots is the Holt-Winters season: one week of 30-minute slots,
// capturing both the diurnal and the weekday/weekend cycle.
const weekSlots = 7 * model.SlotsPerDay

// peakAllowanceZ converts a forecast mean into a peak estimate. The demand
// envelope provisions for the per-slot *maximum* across the window's d days;
// a forecast is a per-slot *mean*. With per-slot call counts around n, the
// realized max of d days exceeds the mean by about z(d)·√n (Poisson noise),
// where z(d) is the expected maximum of d standard normals — so
// forecast-based provisioning adds that allowance. This is the counterpart
// of the paper's validation-calibrated cushion (§5.2): at Teams scale
// (n in the many thousands) the allowance is a rounding error, at synthetic
// scale it is ~25% and dominates Table 4 if omitted.
func peakAllowanceZ(days int) float64 {
	// E[max of d N(0,1)] for small d; √(2·ln d) asymptotically.
	table := []float64{0, 0, 0.56, 0.85, 1.03, 1.16, 1.27, 1.35, 1.42, 1.49, 1.54}
	if days < len(table) {
		if days < 1 {
			return 0
		}
		return table[days]
	}
	return math.Sqrt(2 * math.Log(float64(days)))
}

// ForecastDemand fits Holt-Winters per top config on the training window and
// projects the evaluation window, returning a provisioning demand envelope
// built from the forecasts (§5.2's pipeline, used by Table 4).
func ForecastDemand(env *Env) (*records.Demand, error) {
	top := env.TrainDB.TopConfigs(env.Cfg.TopConfigs)
	if len(top) == 0 {
		return nil, fmt.Errorf("eval: no training configs")
	}
	horizon := env.Cfg.EvalDays * model.SlotsPerDay
	series := make([]records.ConfigSeries, 0, len(top))
	for _, cs := range top {
		m, err := forecast.FitAuto(cs.Counts, weekSlots)
		if err != nil {
			return nil, fmt.Errorf("eval: fit %q: %w", cs.Config.Key(), err)
		}
		f := m.Forecast(horizon)
		z := peakAllowanceZ(env.Cfg.EvalDays)
		var total float64
		for i, v := range f {
			f[i] = v + z*math.Sqrt(v)
			total += f[i]
		}
		series = append(series, records.ConfigSeries{Config: cs.Config, Counts: f, Total: total})
	}
	// The cushion for uncovered tail configs comes from the training
	// window's coverage, as §5.2 prescribes.
	var covered float64
	for _, cs := range top {
		covered += cs.Total
	}
	cushion := 1.0
	if covered > 0 {
		cushion = float64(env.TrainDB.TotalCalls()) / covered
	}
	return records.EnvelopeFromSeries(series, cushion), nil
}

// Fig7aResult is one config's forecast against ground truth over the
// evaluation window.
type Fig7aResult struct {
	ConfigKey string
	Truth     []float64
	Forecast  []float64
	Accuracy  forecast.Accuracy
}

// Fig7a forecasts the most popular config's demand and compares it with the
// evaluation window's ground truth.
func Fig7a(env *Env) (*Fig7aResult, error) {
	top := env.TrainDB.TopConfigs(1)
	if len(top) == 0 {
		return nil, fmt.Errorf("eval: empty training window")
	}
	cs := top[0]
	m, err := forecast.FitAuto(cs.Counts, weekSlots)
	if err != nil {
		return nil, err
	}
	horizon := env.Cfg.EvalDays * model.SlotsPerDay
	f := m.Forecast(horizon)
	truth := truthSeries(env, cs.Config, horizon)
	acc, err := forecast.Evaluate(f, truth)
	if err != nil {
		return nil, err
	}
	return &Fig7aResult{ConfigKey: cs.Config.Key(), Truth: truth, Forecast: f, Accuracy: acc}, nil
}

// truthSeries reads a config's ground-truth eval-window series (zeros when
// the config never occurs there).
func truthSeries(env *Env, cfg model.CallConfig, horizon int) []float64 {
	out := make([]float64, horizon)
	for _, cs := range env.EvalDB.TopConfigs(env.EvalDB.NumConfigs()) {
		if cs.Config.Key() == cfg.Key() {
			copy(out, cs.Counts)
			break
		}
	}
	return out
}

// Fig7bResult reports normalized per-config growth over the training window.
type Fig7bResult struct {
	ConfigKeys []string
	// Growth[i] is config i's (last week mean / first week mean), scaled
	// by the maximum across configs (the paper normalizes because the
	// absolute growth is business-sensitive).
	Growth []float64
}

// Fig7b measures demand growth for a sample of top configs.
func Fig7b(env *Env, n int) (*Fig7bResult, error) {
	top := env.TrainDB.TopConfigs(n)
	if len(top) == 0 {
		return nil, fmt.Errorf("eval: empty training window")
	}
	res := &Fig7bResult{}
	var max float64
	for _, cs := range top {
		if len(cs.Counts) < 2*weekSlots {
			continue
		}
		first := mean(cs.Counts[:weekSlots])
		last := mean(cs.Counts[len(cs.Counts)-weekSlots:])
		if first <= 0 {
			continue
		}
		g := last / first
		res.ConfigKeys = append(res.ConfigKeys, cs.Config.Key())
		res.Growth = append(res.Growth, g)
		if g > max {
			max = g
		}
	}
	if max > 0 {
		for i := range res.Growth {
			res.Growth[i] /= max
		}
	}
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Fig7cResult reports the fraction of calls covered by the top fraction of
// configs.
type Fig7cResult struct {
	TopFracs []float64
	Coverage []float64
	// Distinct is the number of distinct configs observed.
	Distinct int
}

// Fig7c measures config concentration on the training window.
func Fig7c(env *Env) *Fig7cResult {
	fracs := []float64{0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0}
	return &Fig7cResult{
		TopFracs: fracs,
		Coverage: env.TrainDB.Coverage(fracs),
		Distinct: env.TrainDB.NumConfigs(),
	}
}

// BaselinesResult compares Holt-Winters against the seasonal-naive and
// drift baselines across top configs (a justification for §5.2's model
// choice the paper asserts but does not tabulate).
type BaselinesResult struct {
	Configs int
	// Wins counts configs where Holt-Winters has the lowest RMSE.
	Wins int
	// MedianSkill is the median relative RMSE improvement of
	// Holt-Winters over the best baseline (positive = HW better).
	MedianSkill float64
	// MeanRMSE per method, averaged over configs.
	MeanHW, MeanSeasonalNaive, MeanDrift float64
}

// ForecastBaselines runs the three-way comparison for the top configs.
func ForecastBaselines(env *Env, topN int) (*BaselinesResult, error) {
	top := env.TrainDB.TopConfigs(topN)
	if len(top) == 0 {
		return nil, fmt.Errorf("eval: empty training window")
	}
	horizon := env.Cfg.EvalDays * model.SlotsPerDay
	truthByKey := make(map[string][]float64)
	for _, cs := range env.EvalDB.TopConfigs(env.EvalDB.NumConfigs()) {
		truthByKey[cs.Config.Key()] = cs.Counts
	}
	res := &BaselinesResult{}
	var skills []float64
	for _, cs := range top {
		truth := make([]float64, horizon)
		copy(truth, truthByKey[cs.Config.Key()])
		if maxOf(truth) == 0 {
			continue
		}
		cmp, err := forecast.Compare(cs.Counts, truth, weekSlots)
		if err != nil {
			continue
		}
		res.Configs++
		res.MeanHW += cmp.HoltWinters.RMSE
		res.MeanSeasonalNaive += cmp.SeasonalNaive.RMSE
		res.MeanDrift += cmp.Drift.RMSE
		if cmp.HoltWinters.RMSE <= cmp.SeasonalNaive.RMSE && cmp.HoltWinters.RMSE <= cmp.Drift.RMSE {
			res.Wins++
		}
		skills = append(skills, cmp.Skill())
	}
	if res.Configs == 0 {
		return nil, fmt.Errorf("eval: no comparable configs")
	}
	n := float64(res.Configs)
	res.MeanHW /= n
	res.MeanSeasonalNaive /= n
	res.MeanDrift /= n
	sort.Float64s(skills)
	res.MedianSkill = skills[len(skills)/2]
	return res, nil
}

// Fig9Result is the distribution of per-config normalized forecast errors.
type Fig9Result struct {
	// NormRMSE and NormMAE are sorted ascending (CDF x-values).
	NormRMSE []float64
	NormMAE  []float64
	// MedianRMSE and MedianMAE summarize them (§6.5 reports 13% / 8%).
	MedianRMSE float64
	MedianMAE  float64
	Configs    int
}

// Fig9 forecasts every top config and reports the CDF of normalized RMSE and
// MAE against the evaluation window's ground truth.
func Fig9(env *Env, topN int) (*Fig9Result, error) {
	top := env.TrainDB.TopConfigs(topN)
	if len(top) == 0 {
		return nil, fmt.Errorf("eval: empty training window")
	}
	horizon := env.Cfg.EvalDays * model.SlotsPerDay
	truthByKey := make(map[string][]float64)
	for _, cs := range env.EvalDB.TopConfigs(env.EvalDB.NumConfigs()) {
		truthByKey[cs.Config.Key()] = cs.Counts
	}
	res := &Fig9Result{}
	for _, cs := range top {
		m, err := forecast.FitAuto(cs.Counts, weekSlots)
		if err != nil {
			continue
		}
		f := m.Forecast(horizon)
		truth := make([]float64, horizon)
		copy(truth, truthByKey[cs.Config.Key()])
		acc, err := forecast.Evaluate(f, truth)
		if err != nil || acc.NormRMSE == 0 && acc.NormMAE == 0 && maxOf(truth) == 0 {
			continue // config vanished in the eval window
		}
		res.NormRMSE = append(res.NormRMSE, acc.NormRMSE)
		res.NormMAE = append(res.NormMAE, acc.NormMAE)
	}
	if len(res.NormRMSE) == 0 {
		return nil, fmt.Errorf("eval: no forecastable configs")
	}
	sort.Float64s(res.NormRMSE)
	sort.Float64s(res.NormMAE)
	res.MedianRMSE = res.NormRMSE[len(res.NormRMSE)/2]
	res.MedianMAE = res.NormMAE[len(res.NormMAE)/2]
	res.Configs = len(res.NormRMSE)
	return res, nil
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
