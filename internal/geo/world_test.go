package geo

import (
	"math"
	"testing"
)

func TestDefaultWorldValid(t *testing.T) {
	w := DefaultWorld()
	if len(w.Countries()) < 40 {
		t.Errorf("got %d countries, want >= 40", len(w.Countries()))
	}
	if len(w.DCs()) != 12 {
		t.Errorf("got %d DCs, want 12", len(w.DCs()))
	}
	if len(w.Links()) < 50 {
		t.Errorf("got %d links, want >= 50", len(w.Links()))
	}
}

func TestEveryRegionHasDCs(t *testing.T) {
	w := DefaultWorld()
	for _, r := range Regions() {
		if len(w.DCsInRegion(r)) < 2 {
			t.Errorf("region %v has %d DCs, want >= 2 (needed for failover)", r, len(w.DCsInRegion(r)))
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// London to New York is about 5570 km.
	d := HaversineKm(51.5, -0.1, 40.7, -74)
	if d < 5400 || d > 5700 {
		t.Errorf("London-NYC = %g km, want ~5570", d)
	}
	if d := HaversineKm(10, 20, 10, 20); d != 0 {
		t.Errorf("zero distance = %g", d)
	}
}

func TestLatencySameCountry(t *testing.T) {
	w := DefaultWorld()
	var tokyoDC int = -1
	for _, dc := range w.DCs() {
		if dc.Name == "tokyo" {
			tokyoDC = dc.ID
		}
	}
	if tokyoDC < 0 {
		t.Fatal("no tokyo DC")
	}
	lat := w.Latency(tokyoDC, "JP")
	if lat != accessMs+sameCityMs {
		t.Errorf("intra-country latency = %g, want %g", lat, accessMs+sameCityMs)
	}
}

func TestLatencyOrdering(t *testing.T) {
	w := DefaultWorld()
	var pune, tokyo, usEast int
	for _, dc := range w.DCs() {
		switch dc.Name {
		case "pune":
			pune = dc.ID
		case "tokyo":
			tokyo = dc.ID
		case "us-east":
			usEast = dc.ID
		}
	}
	// A participant in India should see pune < tokyo < us-east.
	lp := w.Latency(pune, "IN")
	lt := w.Latency(tokyo, "IN")
	lu := w.Latency(usEast, "IN")
	if !(lp < lt && lt < lu) {
		t.Errorf("IN latencies pune=%g tokyo=%g us-east=%g, want increasing", lp, lt, lu)
	}
	// The 120 ms threshold should separate in-region from trans-ocean:
	// tokyo serves India under it, us-east does not.
	if lt > 120 {
		t.Errorf("tokyo->IN = %g ms, want <= 120 (in-region feasible)", lt)
	}
	if lu < 120 {
		t.Errorf("us-east->IN = %g ms, want > 120 (cross-ocean infeasible)", lu)
	}
}

func TestNearestDC(t *testing.T) {
	w := DefaultWorld()
	id := w.NearestDC("JP", true)
	if id < 0 || w.DCs()[id].Name != "tokyo" {
		t.Errorf("nearest DC to JP = %v, want tokyo", id)
	}
	if w.NearestDC("ZZ", false) != -1 {
		t.Error("unknown country should return -1")
	}
	// Region restriction: nearest in-region DC for Brazil must be in AMER.
	id = w.NearestDC("BR", true)
	if w.DCs()[id].Region != AMER {
		t.Errorf("nearest in-region DC for BR is %v in %v", w.DCs()[id].Name, w.DCs()[id].Region)
	}
}

func TestPathValidAndConnected(t *testing.T) {
	w := DefaultWorld()
	for _, dc := range w.DCs() {
		for _, c := range w.Countries() {
			p := w.Path(dc.ID, c.Code)
			if p == nil {
				t.Fatalf("no path %s -> %s", dc.Name, c.Code)
			}
			// Verify the path is a connected walk from the DC country
			// to the target country.
			cur := dc.Country
			for _, lid := range p {
				l := w.Links()[lid]
				switch cur {
				case l.A:
					cur = l.B
				case l.B:
					cur = l.A
				default:
					t.Fatalf("path %s->%s: link %s-%s does not touch %s", dc.Name, c.Code, l.A, l.B, cur)
				}
			}
			if cur != c.Code {
				t.Fatalf("path %s->%s ends at %s", dc.Name, c.Code, cur)
			}
		}
	}
}

// TestPathDistanceAtLeastGeodesic: a routed path can never be shorter than
// the great-circle distance between its endpoints (triangle inequality).
func TestPathDistanceAtLeastGeodesic(t *testing.T) {
	w := DefaultWorld()
	for _, dc := range w.DCs() {
		dcc, _ := w.Country(dc.Country)
		for _, c := range w.Countries() {
			if c.Code == dc.Country {
				continue
			}
			var pathKm float64
			for _, lid := range w.Path(dc.ID, c.Code) {
				pathKm += w.Links()[lid].DistKm
			}
			direct := HaversineKm(dcc.Lat, dcc.Lon, c.Lat, c.Lon)
			if pathKm < direct-1 {
				t.Errorf("%s->%s path %g km < geodesic %g km", dc.Name, c.Code, pathKm, direct)
			}
		}
	}
}

func TestPathAvoidingReroutes(t *testing.T) {
	w := DefaultWorld()
	var pune int
	for _, dc := range w.DCs() {
		if dc.Name == "pune" {
			pune = dc.ID
		}
	}
	base := w.Path(pune, "SG")
	if len(base) == 0 {
		t.Fatal("no path IN->SG")
	}
	banned := base[0]
	alt := w.PathAvoiding(pune, "SG", banned)
	if alt == nil {
		t.Fatal("no alternative path when first link removed")
	}
	for _, l := range alt {
		if l == banned {
			t.Fatalf("rerouted path still uses banned link %d", banned)
		}
	}
	if w.LatencyAvoiding(pune, "SG", banned) < w.Latency(pune, "SG") {
		t.Error("avoiding a shortest-path link must not reduce latency")
	}
}

func TestDCsByLatencySorted(t *testing.T) {
	w := DefaultWorld()
	ids := w.DCsByLatency("DE")
	if len(ids) != len(w.DCs()) {
		t.Fatalf("got %d ids", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if w.Latency(ids[i-1], "DE") > w.Latency(ids[i], "DE") {
			t.Fatal("not sorted by latency")
		}
	}
}

func TestLinkCostsPositiveAndMonotonicScale(t *testing.T) {
	w := DefaultWorld()
	for _, l := range w.Links() {
		if l.CostPerGbps <= 0 {
			t.Errorf("link %s-%s has cost %g", l.A, l.B, l.CostPerGbps)
		}
		if l.A >= l.B {
			t.Errorf("link endpoints not normalized: %s-%s", l.A, l.B)
		}
	}
	if linkCost(8000) <= linkCost(800) {
		t.Error("longer links should cost more")
	}
}

func TestNewWorldValidation(t *testing.T) {
	cs := []Country{{Code: "AA", Lat: 0, Lon: 0}, {Code: "BB", Lat: 1, Lon: 1}}
	if _, err := NewWorld(cs, nil, []LinkSpec{{A: "AA", B: "CC"}}); err == nil {
		t.Error("unknown link endpoint should error")
	}
	if _, err := NewWorld(cs, []DC{{Name: "d", Country: "XX"}}, []LinkSpec{{A: "AA", B: "BB"}}); err == nil {
		t.Error("DC in unknown country should error")
	}
	if _, err := NewWorld(cs, nil, nil); err == nil {
		t.Error("disconnected graph should error")
	}
	if _, err := NewWorld([]Country{{Code: "AA"}, {Code: "AA"}}, nil, nil); err == nil {
		t.Error("duplicate country should error")
	}
	if _, err := NewWorld(cs, nil, []LinkSpec{{A: "AA", B: "AA"}}); err == nil {
		t.Error("self link should error")
	}
	if _, err := NewWorld(nil, nil, nil); err == nil {
		t.Error("empty world should error")
	}
}

func TestUnknownCountryLatency(t *testing.T) {
	w := DefaultWorld()
	if l := w.Latency(0, "ZZ"); l != noPathPenMs {
		t.Errorf("latency to unknown country = %g, want %g", l, noPathPenMs)
	}
	if p := w.Path(0, "ZZ"); p != nil {
		t.Errorf("path to unknown country = %v, want nil", p)
	}
}

func TestConcurrentPathLookups(t *testing.T) {
	w := DefaultWorld()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for _, dc := range w.DCs() {
				for _, c := range w.Countries() {
					w.Latency(dc.ID, c.Code)
					w.LatencyAvoiding(dc.ID, c.Code, 3)
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestRegionStrings(t *testing.T) {
	if AMER.String() != "AMER" || EMEA.String() != "EMEA" || APAC.String() != "APAC" {
		t.Error("region strings wrong")
	}
	if Region(9).String() == "" {
		t.Error("unknown region should still stringify")
	}
}

// TestNoBridgeLinks: no single WAN link failure may disconnect a country —
// otherwise link-failure provisioning scenarios would face unservable
// participants (the real Azure WAN is similarly redundant).
func TestNoBridgeLinks(t *testing.T) {
	w := DefaultWorld()
	for _, l := range w.Links() {
		for _, c := range w.Countries() {
			if w.Path(0, c.Code) != nil && w.PathAvoiding(0, c.Code, l.ID) == nil {
				t.Errorf("link %s-%s is a bridge: its failure isolates %s", l.A, l.B, c.Code)
			}
		}
	}
}

func TestWeightsPositive(t *testing.T) {
	for _, c := range DefaultWorld().Countries() {
		if c.Weight <= 0 {
			t.Errorf("country %s weight %g", c.Code, c.Weight)
		}
		if math.Abs(c.Lat) > 90 || math.Abs(c.Lon) > 180 {
			t.Errorf("country %s has invalid coordinates", c.Code)
		}
	}
}
