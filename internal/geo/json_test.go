package geo

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWorldSpecRoundTrip(t *testing.T) {
	w := DefaultWorld()
	var buf bytes.Buffer
	if err := WriteWorld(&buf, w); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Countries()) != len(w.Countries()) ||
		len(back.DCs()) != len(w.DCs()) ||
		len(back.Links()) != len(w.Links()) {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			len(back.Countries()), len(back.DCs()), len(back.Links()),
			len(w.Countries()), len(w.DCs()), len(w.Links()))
	}
	// Link prices survive (cost factors re-derived).
	for i, l := range w.Links() {
		if math.Abs(back.Links()[i].CostPerGbps-l.CostPerGbps) > 1e-6*l.CostPerGbps {
			t.Errorf("link %d cost %g vs %g", i, back.Links()[i].CostPerGbps, l.CostPerGbps)
		}
	}
	// Latencies identical.
	for _, dc := range w.DCs() {
		for _, c := range w.Countries() {
			if math.Abs(back.Latency(dc.ID, c.Code)-w.Latency(dc.ID, c.Code)) > 1e-9 {
				t.Fatalf("latency mismatch %s->%s", dc.Name, c.Code)
			}
		}
	}
}

const tinyWorld = `{
  "countries": [
    {"code": "AA", "name": "Aland", "region": "EMEA", "lat": 10, "lon": 10, "utc_offset_min": 0, "weight": 5},
    {"code": "BB", "name": "Beland", "region": "EMEA", "lat": 12, "lon": 14, "utc_offset_min": 60, "weight": 3}
  ],
  "dcs": [
    {"name": "alpha", "country": "AA", "core_cost": 1.0},
    {"name": "beta", "country": "BB", "core_cost": 1.5}
  ],
  "links": [
    {"a": "AA", "b": "BB"}
  ]
}`

func TestReadWorldCustom(t *testing.T) {
	w, err := ReadWorld(strings.NewReader(tinyWorld))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.DCs()) != 2 || w.DCs()[1].Region != EMEA {
		t.Fatalf("DCs = %+v", w.DCs())
	}
	if w.NearestDC("BB", true) != 1 {
		t.Error("nearest DC wrong")
	}
}

func TestReadWorldValidation(t *testing.T) {
	cases := map[string]string{
		"bad region":      strings.Replace(tinyWorld, "EMEA", "MOON", 1),
		"bad weight":      strings.Replace(tinyWorld, `"weight": 5`, `"weight": 0`, 1),
		"unknown dc host": strings.Replace(tinyWorld, `"country": "AA", "core_cost": 1.0`, `"country": "ZZ", "core_cost": 1.0`, 1),
		"bad core cost":   strings.Replace(tinyWorld, `"core_cost": 1.0`, `"core_cost": -1`, 1),
		"unknown field":   strings.Replace(tinyWorld, `"countries"`, `"countriez"`, 1),
		"not json":        "][",
	}
	for name, text := range cases {
		if _, err := ReadWorld(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseRegion(t *testing.T) {
	for _, r := range Regions() {
		got, err := ParseRegion(r.String())
		if err != nil || got != r {
			t.Errorf("round trip %v failed", r)
		}
	}
	if _, err := ParseRegion("ATLANTIS"); err == nil {
		t.Error("unknown region should error")
	}
}
