// Package geo models the physical substrate Switchboard provisions over: a
// world of countries with time zones and call-demand weights, datacenters
// (DCs) hosting media-processing capacity, and an inter-country WAN graph
// with shortest-path routing, a distance-derived latency model, and per-DC /
// per-link cost tables.
//
// The paper runs over the Azure WAN with measured Teams latencies and
// confidential prices; this package provides the synthetic equivalent
// (see DESIGN.md for the substitution argument). All outputs are
// deterministic functions of the world definition, so experiments are
// reproducible.
package geo

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Region is a coarse service region; calls are normally hosted inside the
// region they originate from (as in Microsoft Teams).
type Region int

// Service regions.
const (
	AMER Region = iota // North + South America
	EMEA               // Europe, Middle East, Africa
	APAC               // Asia-Pacific
	numRegions
)

func (r Region) String() string {
	switch r {
	case AMER:
		return "AMER"
	case EMEA:
		return "EMEA"
	case APAC:
		return "APAC"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Regions lists all regions.
func Regions() []Region { return []Region{AMER, EMEA, APAC} }

// CountryCode is an ISO-3166-like two-letter country identifier.
type CountryCode string

// Country is one participant location.
type Country struct {
	Code   CountryCode
	Name   string
	Region Region
	// Lat and Lon are representative coordinates in degrees.
	Lat, Lon float64
	// UTCOffsetMin is the offset of local time from UTC in minutes
	// (for example India is +330).
	UTCOffsetMin int
	// Weight is the relative share of conferencing demand originating in
	// the country (arbitrary units; only ratios matter).
	Weight float64
}

// DC is a datacenter that can host media-processing (MP) servers.
type DC struct {
	// ID is the dense index of the DC in World.DCs().
	ID int
	// Name is a short human-readable site name, e.g. "tokyo".
	Name string
	// Country hosts the DC; WAN paths start at this country's node.
	Country CountryCode
	Region  Region
	// CoreCost is the cost of one provisioned core for the provisioning
	// horizon (relative units; mirrors the paper's per-DC Azure prices).
	CoreCost float64
}

// Link is one undirected inter-country WAN edge.
type Link struct {
	// ID is the dense index of the link in World.Links().
	ID int
	// A and B are the endpoint countries (A < B lexicographically).
	A, B CountryCode
	// DistKm is the great-circle distance between the endpoints.
	DistKm float64
	// CostPerGbps is the cost of one provisioned Gbps on the link for the
	// provisioning horizon (relative units).
	CostPerGbps float64
}

// LinkSpec names an undirected edge when constructing a custom world.
type LinkSpec struct {
	A, B CountryCode
	// CostFactor scales the distance-derived link cost; 0 means 1.
	CostFactor float64
}

// World is an immutable snapshot of countries, DCs, and the WAN graph, with
// cached shortest paths. It is safe for concurrent use.
type World struct {
	countries []Country
	countryIx map[CountryCode]int
	dcs       []DC
	links     []Link
	adj       [][]halfEdge // adjacency by country index

	mu      sync.Mutex
	pathsOK map[pathKey][]int // guarded by mu; cached link-ID paths

	// Steady-state tables precomputed at construction (immutable after
	// NewWorld): per country-pair one-way latency with no banned links, and
	// the nearest DC per country. These turn the per-call placement queries
	// (NearestDC, Latency) into lock-free slice reads; Dijkstra + pathsOK
	// only run for banned-link what-if queries and explicit Path calls.
	latMs        []float64 // [from*len(countries)+to] one-way ms
	nearestAny   []int     // [countryIdx] nearest DC ID, any region
	nearestInReg []int     // [countryIdx] nearest DC ID within the country's region
}

type halfEdge struct {
	to   int // country index
	link int // link ID
	w    float64
}

type pathKey struct {
	fromCountry int
	toCountry   int
	banned      string // canonical encoding of the banned link set
}

// bannedKey canonicalizes a banned-link set for cache keys. Singletons and
// the empty set are the overwhelmingly common cases; the multi-ban encoding
// below only runs for link-failure what-if queries.
//
//sblint:allowalloc(cache-key encoding; hot lookups pass empty or single-link sets, which return before any allocation)
func bannedKey(banned []int) string {
	switch len(banned) {
	case 0:
		return ""
	case 1:
		return strconv.Itoa(banned[0])
	}
	s := append([]int(nil), banned...)
	sort.Ints(s)
	var b strings.Builder
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(l))
	}
	return b.String()
}

// NewWorld builds a world from explicit data. Link distances and costs are
// derived from country coordinates; a LinkSpec cost factor scales the
// distance-derived price. It validates that all referenced countries exist
// and that the WAN graph is connected.
func NewWorld(countries []Country, dcs []DC, linkSpecs []LinkSpec) (*World, error) {
	w := &World{
		countries: append([]Country(nil), countries...),
		countryIx: make(map[CountryCode]int, len(countries)),
		pathsOK:   make(map[pathKey][]int),
	}
	for i, c := range w.countries {
		if _, dup := w.countryIx[c.Code]; dup {
			return nil, fmt.Errorf("geo: duplicate country %q", c.Code)
		}
		w.countryIx[c.Code] = i
	}
	w.dcs = append([]DC(nil), dcs...)
	for i := range w.dcs {
		w.dcs[i].ID = i
		if _, ok := w.countryIx[w.dcs[i].Country]; !ok {
			return nil, fmt.Errorf("geo: DC %q in unknown country %q", w.dcs[i].Name, w.dcs[i].Country)
		}
	}
	w.adj = make([][]halfEdge, len(w.countries))
	for _, spec := range linkSpecs {
		ai, ok := w.countryIx[spec.A]
		if !ok {
			return nil, fmt.Errorf("geo: link endpoint %q unknown", spec.A)
		}
		bi, ok := w.countryIx[spec.B]
		if !ok {
			return nil, fmt.Errorf("geo: link endpoint %q unknown", spec.B)
		}
		if ai == bi {
			return nil, fmt.Errorf("geo: self-link at %q", spec.A)
		}
		a, b := spec.A, spec.B
		if a > b {
			a, b = b, a
		}
		dist := HaversineKm(w.countries[ai].Lat, w.countries[ai].Lon, w.countries[bi].Lat, w.countries[bi].Lon)
		factor := spec.CostFactor
		if factor == 0 {
			factor = 1
		}
		l := Link{
			ID:          len(w.links),
			A:           a,
			B:           b,
			DistKm:      dist,
			CostPerGbps: linkCost(dist) * factor,
		}
		w.links = append(w.links, l)
		w.adj[ai] = append(w.adj[ai], halfEdge{to: bi, link: l.ID, w: dist})
		w.adj[bi] = append(w.adj[bi], halfEdge{to: ai, link: l.ID, w: dist})
	}
	if err := w.checkConnected(); err != nil {
		return nil, err
	}
	w.precompute()
	return w, nil
}

// precompute fills the steady-state latency and nearest-DC tables: one full
// Dijkstra settle per country (tracking hop counts alongside distances), then
// a scan over DCs per country. Runs once at construction; every per-call
// placement query afterwards is a slice read.
func (w *World) precompute() {
	n := len(w.countries)
	w.latMs = make([]float64, n*n)
	dist := make([]float64, n)
	hops := make([]int, n)
	done := make([]bool, n)
	for from := 0; from < n; from++ {
		for i := range dist {
			dist[i] = math.Inf(1)
			hops[i] = 0
			done[i] = false
		}
		dist[from] = 0
		h := &distHeap{items: []heapItem{{node: from, d: 0}}}
		for h.Len() > 0 {
			it := h.pop()
			if done[it.node] {
				continue
			}
			done[it.node] = true
			for _, e := range w.adj[it.node] {
				if done[e.to] {
					continue
				}
				if nd := dist[it.node] + e.w; nd < dist[e.to] {
					dist[e.to] = nd
					hops[e.to] = hops[it.node] + 1
					h.push(heapItem{node: e.to, d: nd})
				}
			}
		}
		row := w.latMs[from*n : (from+1)*n]
		for to := 0; to < n; to++ {
			switch {
			case to == from:
				row[to] = accessMs + sameCityMs
			case math.IsInf(dist[to], 1):
				row[to] = noPathPenMs
			default:
				row[to] = accessMs + dist[to]/kmPerMs + float64(hops[to])*perHopMs
			}
		}
	}
	w.nearestAny = make([]int, n)
	w.nearestInReg = make([]int, n)
	for ci := range w.countries {
		bestA, bestAL := -1, math.Inf(1)
		bestR, bestRL := -1, math.Inf(1)
		reg := w.countries[ci].Region
		for _, dc := range w.dcs {
			l := w.latMs[w.countryIx[dc.Country]*n+ci]
			if l < bestAL {
				bestA, bestAL = dc.ID, l
			}
			if dc.Region == reg && l < bestRL {
				bestR, bestRL = dc.ID, l
			}
		}
		w.nearestAny[ci] = bestA
		w.nearestInReg[ci] = bestR
	}
}

func (w *World) checkConnected() error {
	if len(w.countries) == 0 {
		return fmt.Errorf("geo: no countries")
	}
	seen := make([]bool, len(w.countries))
	stack := []int{0}
	seen[0] = true
	n := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range w.adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				n++
				stack = append(stack, e.to)
			}
		}
	}
	if n != len(w.countries) {
		for i, s := range seen {
			if !s {
				return fmt.Errorf("geo: WAN graph disconnected: country %q unreachable", w.countries[i].Code)
			}
		}
	}
	return nil
}

// Countries returns the countries in index order. The slice must not be
// modified.
func (w *World) Countries() []Country { return w.countries }

// DCs returns the datacenters in ID order. The slice must not be modified.
func (w *World) DCs() []DC { return w.dcs }

// Links returns the WAN links in ID order. The slice must not be modified.
func (w *World) Links() []Link { return w.links }

// Country returns the country with the given code.
func (w *World) Country(code CountryCode) (Country, bool) {
	i, ok := w.countryIx[code]
	if !ok {
		return Country{}, false
	}
	return w.countries[i], true
}

// DCsInRegion returns the IDs of the DCs in region r.
func (w *World) DCsInRegion(r Region) []int {
	var ids []int
	for _, dc := range w.dcs {
		if dc.Region == r {
			ids = append(ids, dc.ID)
		}
	}
	return ids
}

// NearestDC returns the ID of the DC with the lowest latency to the given
// country, optionally restricted to the country's region (as Teams does).
func (w *World) NearestDC(code CountryCode, sameRegionOnly bool) int {
	i, ok := w.countryIx[code]
	if !ok {
		return -1
	}
	if sameRegionOnly {
		return w.nearestInReg[i]
	}
	return w.nearestAny[i]
}

// DCsByLatency returns all DC IDs sorted by ascending latency to the country.
//
//sblint:allowalloc(reroute-only: called when a DC fails, never on per-call admission)
func (w *World) DCsByLatency(code CountryCode) []int {
	ids := make([]int, len(w.dcs))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return w.Latency(ids[a], code) < w.Latency(ids[b], code)
	})
	return ids
}

// Latency model parameters. Real WAN paths are far from geodesic, so the
// effective propagation speed is calibrated to ~100 km/ms one-way, with a
// per-hop switching penalty and a fixed access (DC/last-mile) term. The
// result approximates observed one-way conferencing latencies well enough
// that the paper's 120 ms ACL threshold separates in-region from cross-ocean
// placements.
const (
	kmPerMs     = 100.0
	perHopMs    = 2.0
	accessMs    = 6.0
	sameCityMs  = 2.0 // participant in the DC's own country
	noPathPenMs = 1e6 // latency reported when routing is impossible
)

// Latency returns the modeled one-way latency in milliseconds between DC dc
// and a participant in the given country, following the WAN shortest path.
func (w *World) Latency(dc int, code CountryCode) float64 {
	return w.LatencyAvoiding(dc, code, -1)
}

// LatencyAvoiding is Latency with one WAN link removed (a link-failure
// scenario). banned is a link ID, or -1 for none.
func (w *World) LatencyAvoiding(dc int, code CountryCode, banned int) float64 {
	return w.LatencyAvoidingSet(dc, code, singleBan(banned))
}

// LatencyAvoidingSet is Latency with a set of WAN links removed.
func (w *World) LatencyAvoidingSet(dc int, code CountryCode, banned []int) float64 {
	from := w.countryIx[w.dcs[dc].Country]
	to, ok := w.countryIx[code]
	if !ok {
		return noPathPenMs
	}
	if len(banned) == 0 {
		return w.latMs[from*len(w.countries)+to]
	}
	if from == to {
		return accessMs + sameCityMs
	}
	path, dist := w.shortestPath(from, to, banned)
	if path == nil {
		return noPathPenMs
	}
	return accessMs + dist/kmPerMs + float64(len(path))*perHopMs
}

func singleBan(banned int) []int {
	if banned < 0 {
		return nil
	}
	return []int{banned} //sblint:allowalloc(link-failure queries only; the hot path passes -1 and gets nil)
}

// Path returns the link IDs on the WAN route between the DC and the country
// (empty when they share a country). The returned slice must not be modified.
func (w *World) Path(dc int, code CountryCode) []int {
	return w.PathAvoiding(dc, code, -1)
}

// PathAvoiding is Path with one WAN link removed. It returns nil when no
// route exists.
func (w *World) PathAvoiding(dc int, code CountryCode, banned int) []int {
	return w.PathAvoidingSet(dc, code, singleBan(banned))
}

// PathAvoidingSet is Path with a set of WAN links removed (a compound
// failure scenario). It returns nil when no route exists.
func (w *World) PathAvoidingSet(dc int, code CountryCode, banned []int) []int {
	from := w.countryIx[w.dcs[dc].Country]
	to, ok := w.countryIx[code]
	if !ok {
		return nil
	}
	if from == to {
		return []int{}
	}
	path, _ := w.shortestPath(from, to, banned)
	return path
}

// shortestPath runs Dijkstra between country indices, skipping the banned
// links, caching results. It returns the link-ID path and its total
// distance.
//
//sblint:allowalloc(Dijkstra scratch on the cache-miss path only; pathsOK serves steady-state lookups allocation-free)
func (w *World) shortestPath(from, to int, banned []int) ([]int, float64) {
	key := pathKey{from, to, bannedKey(banned)}
	w.mu.Lock()
	if p, ok := w.pathsOK[key]; ok {
		w.mu.Unlock()
		return p, w.pathDist(p)
	}
	w.mu.Unlock()

	n := len(w.countries)
	dist := make([]float64, n)
	prevLink := make([]int, n)
	prevNode := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevLink[i] = -1
		prevNode[i] = -1
	}
	bannedSet := make(map[int]bool, len(banned))
	for _, l := range banned {
		bannedSet[l] = true
	}
	dist[from] = 0
	h := &distHeap{items: []heapItem{{node: from, d: 0}}}
	for h.Len() > 0 {
		it := h.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		if it.node == to {
			break
		}
		for _, e := range w.adj[it.node] {
			if bannedSet[e.link] || done[e.to] {
				continue
			}
			if nd := dist[it.node] + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prevLink[e.to] = e.link
				prevNode[e.to] = it.node
				h.push(heapItem{node: e.to, d: nd})
			}
		}
	}
	var path []int
	if !math.IsInf(dist[to], 1) {
		for u := to; u != from; u = prevNode[u] {
			path = append(path, prevLink[u])
		}
		// Reverse so the path reads DC -> participant.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
	}
	w.mu.Lock()
	w.pathsOK[key] = path
	w.mu.Unlock()
	return path, dist[to]
}

func (w *World) pathDist(path []int) float64 {
	var d float64
	for _, l := range path {
		d += w.links[l].DistKm
	}
	return d
}

// HaversineKm returns the great-circle distance in kilometers between two
// points given in degrees.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := math.Pi / 180
	φ1, φ2 := lat1*rad, lat2*rad
	dφ := (lat2 - lat1) * rad
	dλ := (lon2 - lon1) * rad
	a := math.Sin(dφ/2)*math.Sin(dφ/2) + math.Cos(φ1)*math.Cos(φ2)*math.Sin(dλ/2)*math.Sin(dλ/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// wanCostScale calibrates WAN prices against compute prices so that, under
// the round-robin baseline, WAN accounts for the dominant share (~75-85%) of
// total provisioning cost. That split is implied by the paper's Table 3
// (LF's 1.08× cores and 0.18× WAN combining to 0.35× cost requires WAN to
// carry ≈80% of RR's cost), and it is what makes joint provisioning trade
// the way the paper describes (audio offloads first, video stays local).
const wanCostScale = 9.0

// linkCost derives a relative per-Gbps price from link length: longer links
// cost more, sublinearly (long-haul capacity has economies of scale), with a
// premium for cross-ocean spans.
func linkCost(distKm float64) float64 {
	c := 0.3 + math.Pow(distKm/1000, 0.7)
	if distKm > 3000 {
		c *= 1.4 // submarine / long-haul premium
	}
	return c * wanCostScale
}

// distHeap is a minimal binary min-heap for Dijkstra (no container/heap
// interface indirection on the hot path).
type distHeap struct {
	items []heapItem
}

type heapItem struct {
	node int
	d    float64
}

func (h *distHeap) Len() int { return len(h.items) }

func (h *distHeap) push(it heapItem) {
	h.items = append(h.items, it) //sblint:allowalloc(heap growth happens only on the Dijkstra cache-miss path)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].d <= h.items[i].d {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < len(h.items) && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
