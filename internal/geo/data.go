package geo

// This file defines the built-in world used by the experiments: 44 countries
// across three regions, 12 datacenters, and a hand-curated WAN backbone that
// roughly follows real submarine/terrestrial cable geography. Weights are
// relative conferencing-demand shares (knowledge-worker population scaled);
// only their ratios matter.

func defaultCountries() []Country {
	return []Country{
		// AMER
		{Code: "US", Name: "United States", Region: AMER, Lat: 39, Lon: -98, UTCOffsetMin: -360, Weight: 100},
		{Code: "CA", Name: "Canada", Region: AMER, Lat: 45, Lon: -79, UTCOffsetMin: -300, Weight: 14},
		{Code: "MX", Name: "Mexico", Region: AMER, Lat: 19, Lon: -99, UTCOffsetMin: -360, Weight: 9},
		{Code: "BR", Name: "Brazil", Region: AMER, Lat: -23, Lon: -46, UTCOffsetMin: -180, Weight: 18},
		{Code: "AR", Name: "Argentina", Region: AMER, Lat: -34, Lon: -58, UTCOffsetMin: -180, Weight: 5},
		{Code: "CL", Name: "Chile", Region: AMER, Lat: -33, Lon: -70, UTCOffsetMin: -240, Weight: 3},
		{Code: "CO", Name: "Colombia", Region: AMER, Lat: 4, Lon: -74, UTCOffsetMin: -300, Weight: 4},
		{Code: "PE", Name: "Peru", Region: AMER, Lat: -12, Lon: -77, UTCOffsetMin: -300, Weight: 2},

		// EMEA
		{Code: "GB", Name: "United Kingdom", Region: EMEA, Lat: 51.5, Lon: 0, UTCOffsetMin: 0, Weight: 30},
		{Code: "IE", Name: "Ireland", Region: EMEA, Lat: 53, Lon: -6, UTCOffsetMin: 0, Weight: 4},
		{Code: "FR", Name: "France", Region: EMEA, Lat: 48.8, Lon: 2.3, UTCOffsetMin: 60, Weight: 20},
		{Code: "DE", Name: "Germany", Region: EMEA, Lat: 52.5, Lon: 13.4, UTCOffsetMin: 60, Weight: 26},
		{Code: "NL", Name: "Netherlands", Region: EMEA, Lat: 52.4, Lon: 4.9, UTCOffsetMin: 60, Weight: 8},
		{Code: "ES", Name: "Spain", Region: EMEA, Lat: 40.4, Lon: -3.7, UTCOffsetMin: 60, Weight: 12},
		{Code: "IT", Name: "Italy", Region: EMEA, Lat: 41.9, Lon: 12.5, UTCOffsetMin: 60, Weight: 13},
		{Code: "SE", Name: "Sweden", Region: EMEA, Lat: 59.3, Lon: 18.1, UTCOffsetMin: 60, Weight: 5},
		{Code: "NO", Name: "Norway", Region: EMEA, Lat: 59.9, Lon: 10.7, UTCOffsetMin: 60, Weight: 3},
		{Code: "PL", Name: "Poland", Region: EMEA, Lat: 52.2, Lon: 21, UTCOffsetMin: 60, Weight: 8},
		{Code: "CH", Name: "Switzerland", Region: EMEA, Lat: 47.4, Lon: 8.5, UTCOffsetMin: 60, Weight: 5},
		{Code: "TR", Name: "Turkey", Region: EMEA, Lat: 41, Lon: 29, UTCOffsetMin: 180, Weight: 7},
		{Code: "IL", Name: "Israel", Region: EMEA, Lat: 32.1, Lon: 34.8, UTCOffsetMin: 120, Weight: 4},
		{Code: "EG", Name: "Egypt", Region: EMEA, Lat: 30, Lon: 31.2, UTCOffsetMin: 120, Weight: 4},
		{Code: "SA", Name: "Saudi Arabia", Region: EMEA, Lat: 24.7, Lon: 46.7, UTCOffsetMin: 180, Weight: 5},
		{Code: "AE", Name: "UAE", Region: EMEA, Lat: 25.2, Lon: 55.3, UTCOffsetMin: 240, Weight: 6},
		{Code: "ZA", Name: "South Africa", Region: EMEA, Lat: -26.2, Lon: 28, UTCOffsetMin: 120, Weight: 6},
		{Code: "NG", Name: "Nigeria", Region: EMEA, Lat: 6.5, Lon: 3.4, UTCOffsetMin: 60, Weight: 3},
		{Code: "KE", Name: "Kenya", Region: EMEA, Lat: -1.3, Lon: 36.8, UTCOffsetMin: 180, Weight: 2},

		// APAC
		{Code: "IN", Name: "India", Region: APAC, Lat: 18.9, Lon: 72.8, UTCOffsetMin: 330, Weight: 60},
		{Code: "PK", Name: "Pakistan", Region: APAC, Lat: 24.9, Lon: 67, UTCOffsetMin: 300, Weight: 4},
		{Code: "BD", Name: "Bangladesh", Region: APAC, Lat: 23.8, Lon: 90.4, UTCOffsetMin: 360, Weight: 3},
		{Code: "JP", Name: "Japan", Region: APAC, Lat: 35.7, Lon: 139.7, UTCOffsetMin: 540, Weight: 26},
		{Code: "KR", Name: "South Korea", Region: APAC, Lat: 37.6, Lon: 127, UTCOffsetMin: 540, Weight: 11},
		{Code: "CN", Name: "China", Region: APAC, Lat: 31.2, Lon: 121.5, UTCOffsetMin: 480, Weight: 8},
		{Code: "TW", Name: "Taiwan", Region: APAC, Lat: 25, Lon: 121.5, UTCOffsetMin: 480, Weight: 5},
		{Code: "HK", Name: "Hong Kong", Region: APAC, Lat: 22.3, Lon: 114.2, UTCOffsetMin: 480, Weight: 7},
		{Code: "PH", Name: "Philippines", Region: APAC, Lat: 14.6, Lon: 121, UTCOffsetMin: 480, Weight: 6},
		{Code: "VN", Name: "Vietnam", Region: APAC, Lat: 21, Lon: 105.8, UTCOffsetMin: 420, Weight: 4},
		{Code: "TH", Name: "Thailand", Region: APAC, Lat: 13.8, Lon: 100.5, UTCOffsetMin: 420, Weight: 5},
		{Code: "MY", Name: "Malaysia", Region: APAC, Lat: 3.1, Lon: 101.7, UTCOffsetMin: 480, Weight: 4},
		{Code: "SG", Name: "Singapore", Region: APAC, Lat: 1.35, Lon: 103.8, UTCOffsetMin: 480, Weight: 6},
		{Code: "ID", Name: "Indonesia", Region: APAC, Lat: -6.2, Lon: 106.8, UTCOffsetMin: 420, Weight: 9},
		{Code: "AU", Name: "Australia", Region: APAC, Lat: -33.9, Lon: 151.2, UTCOffsetMin: 600, Weight: 12},
		{Code: "NZ", Name: "New Zealand", Region: APAC, Lat: -36.8, Lon: 174.8, UTCOffsetMin: 720, Weight: 3},
	}
}

func defaultDCs() []DC {
	// CoreCost values mirror the paper's observation that per-DC compute
	// prices vary significantly by location; they are chosen so that the
	// §4.3 joint trade-off (cheap network to an expensive-compute DC can
	// beat expensive network to a cheap-compute DC) actually arises, e.g.
	// Indonesia between Singapore and Japan.
	return []DC{
		{Name: "us-east", Country: "US", Region: AMER, CoreCost: 0.80},
		{Name: "sao-paulo", Country: "BR", Region: AMER, CoreCost: 1.60},
		{Name: "dublin", Country: "IE", Region: EMEA, CoreCost: 1.00},
		{Name: "amsterdam", Country: "NL", Region: EMEA, CoreCost: 1.10},
		{Name: "london", Country: "GB", Region: EMEA, CoreCost: 1.20},
		{Name: "dubai", Country: "AE", Region: EMEA, CoreCost: 1.50},
		{Name: "johannesburg", Country: "ZA", Region: EMEA, CoreCost: 1.40},
		{Name: "pune", Country: "IN", Region: APAC, CoreCost: 0.90},
		{Name: "tokyo", Country: "JP", Region: APAC, CoreCost: 1.30},
		{Name: "singapore", Country: "SG", Region: APAC, CoreCost: 1.50},
		{Name: "hong-kong", Country: "HK", Region: APAC, CoreCost: 1.40},
		{Name: "sydney", Country: "AU", Region: APAC, CoreCost: 1.30},
	}
}

func defaultLinks() []LinkSpec {
	return []LinkSpec{
		// AMER terrestrial + coastal
		{A: "US", B: "CA"}, {A: "US", B: "MX"}, {A: "MX", B: "CO"},
		{A: "US", B: "CO"}, {A: "CO", B: "PE"}, {A: "PE", B: "CL"},
		{A: "CL", B: "AR"}, {A: "AR", B: "BR"}, {A: "BR", B: "US", CostFactor: 1.2},
		{A: "BR", B: "CO"},
		// Transatlantic
		{A: "US", B: "GB", CostFactor: 1.1}, {A: "US", B: "IE"},
		{A: "CA", B: "GB"}, {A: "US", B: "FR", CostFactor: 1.2},
		{A: "BR", B: "ES", CostFactor: 1.3},
		// Europe
		{A: "IE", B: "GB"}, {A: "GB", B: "FR"}, {A: "GB", B: "NL"},
		{A: "FR", B: "DE"}, {A: "NL", B: "DE"}, {A: "FR", B: "ES"},
		{A: "ES", B: "IT"}, {A: "FR", B: "CH"}, {A: "CH", B: "IT"},
		{A: "DE", B: "PL"}, {A: "DE", B: "SE"}, {A: "SE", B: "NO"},
		{A: "GB", B: "NO"}, {A: "IT", B: "TR"}, {A: "GB", B: "SE"},
		{A: "CH", B: "DE"}, {A: "IT", B: "IL"}, {A: "PL", B: "SE"},
		// Middle East / Africa
		{A: "IT", B: "EG"}, {A: "EG", B: "IL"}, {A: "TR", B: "IL"},
		{A: "EG", B: "SA"}, {A: "SA", B: "AE"}, {A: "EG", B: "KE"},
		{A: "KE", B: "ZA", CostFactor: 1.3}, {A: "GB", B: "NG", CostFactor: 1.3},
		{A: "NG", B: "ZA", CostFactor: 1.3}, {A: "KE", B: "AE"},
		// Middle East <-> South Asia
		{A: "AE", B: "IN", CostFactor: 1.2}, {A: "AE", B: "PK"},
		{A: "EG", B: "IN", CostFactor: 1.3},
		// Asia
		{A: "PK", B: "IN"}, {A: "IN", B: "BD"}, {A: "BD", B: "TH"},
		{A: "IN", B: "SG", CostFactor: 1.2},
		{A: "SG", B: "MY"}, {A: "MY", B: "TH"}, {A: "TH", B: "VN"},
		{A: "VN", B: "HK"}, {A: "SG", B: "ID", CostFactor: 0.8}, {A: "SG", B: "HK"},
		{A: "HK", B: "CN"}, {A: "CN", B: "KR"}, {A: "KR", B: "JP"},
		{A: "HK", B: "TW"}, {A: "TW", B: "JP"}, {A: "HK", B: "JP"},
		{A: "PH", B: "HK"}, {A: "PH", B: "SG"}, {A: "SG", B: "JP", CostFactor: 1.1},
		{A: "ID", B: "JP", CostFactor: 1.6}, {A: "IN", B: "HK", CostFactor: 1.4},
		// Oceania
		{A: "SG", B: "AU", CostFactor: 1.2}, {A: "AU", B: "NZ"},
		{A: "JP", B: "AU", CostFactor: 1.3}, {A: "NZ", B: "US", CostFactor: 1.5},
		// Transpacific
		{A: "JP", B: "US", CostFactor: 1.3}, {A: "SG", B: "US", CostFactor: 1.5},
		{A: "AU", B: "US", CostFactor: 1.4},
	}
}

// DefaultWorld returns the built-in 44-country, 12-DC world used by the
// experiments. It panics only if the built-in tables are inconsistent, which
// is covered by tests.
func DefaultWorld() *World {
	w, err := NewWorld(defaultCountries(), defaultDCs(), defaultLinks())
	if err != nil {
		panic("geo: built-in world invalid: " + err.Error())
	}
	return w
}
