package geo

import (
	"encoding/json"
	"fmt"
	"io"
)

// WorldSpec is the JSON shape of a world definition, so deployments can
// describe their own countries, datacenters, and WAN topology instead of the
// built-in one (cmd tools accept it via -world).
type WorldSpec struct {
	Countries []CountrySpec  `json:"countries"`
	DCs       []DCSpec       `json:"dcs"`
	Links     []LinkSpecJSON `json:"links"`
}

// CountrySpec is the JSON shape of one country.
type CountrySpec struct {
	Code         string  `json:"code"`
	Name         string  `json:"name"`
	Region       string  `json:"region"`
	Lat          float64 `json:"lat"`
	Lon          float64 `json:"lon"`
	UTCOffsetMin int     `json:"utc_offset_min"`
	Weight       float64 `json:"weight"`
}

// DCSpec is the JSON shape of one datacenter.
type DCSpec struct {
	Name     string  `json:"name"`
	Country  string  `json:"country"`
	CoreCost float64 `json:"core_cost"`
}

// LinkSpecJSON is the JSON shape of one WAN link.
type LinkSpecJSON struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	CostFactor float64 `json:"cost_factor,omitempty"`
}

// ParseRegion maps a region name to its Region value.
func ParseRegion(s string) (Region, error) {
	switch s {
	case "AMER":
		return AMER, nil
	case "EMEA":
		return EMEA, nil
	case "APAC":
		return APAC, nil
	}
	return 0, fmt.Errorf("geo: unknown region %q (want AMER, EMEA, or APAC)", s)
}

// FromSpec builds a validated World from a spec. DC regions are inherited
// from their host country.
func FromSpec(spec *WorldSpec) (*World, error) {
	countries := make([]Country, len(spec.Countries))
	regionOf := make(map[CountryCode]Region, len(spec.Countries))
	for i, cs := range spec.Countries {
		region, err := ParseRegion(cs.Region)
		if err != nil {
			return nil, fmt.Errorf("geo: country %q: %w", cs.Code, err)
		}
		if cs.Weight <= 0 {
			return nil, fmt.Errorf("geo: country %q: weight must be positive", cs.Code)
		}
		countries[i] = Country{
			Code:         CountryCode(cs.Code),
			Name:         cs.Name,
			Region:       region,
			Lat:          cs.Lat,
			Lon:          cs.Lon,
			UTCOffsetMin: cs.UTCOffsetMin,
			Weight:       cs.Weight,
		}
		regionOf[countries[i].Code] = region
	}
	dcs := make([]DC, len(spec.DCs))
	for i, ds := range spec.DCs {
		region, ok := regionOf[CountryCode(ds.Country)]
		if !ok {
			return nil, fmt.Errorf("geo: DC %q: unknown country %q", ds.Name, ds.Country)
		}
		if ds.CoreCost <= 0 {
			return nil, fmt.Errorf("geo: DC %q: core_cost must be positive", ds.Name)
		}
		dcs[i] = DC{Name: ds.Name, Country: CountryCode(ds.Country), Region: region, CoreCost: ds.CoreCost}
	}
	links := make([]LinkSpec, len(spec.Links))
	for i, ls := range spec.Links {
		links[i] = LinkSpec{A: CountryCode(ls.A), B: CountryCode(ls.B), CostFactor: ls.CostFactor}
	}
	return NewWorld(countries, dcs, links)
}

// ReadWorld decodes a JSON WorldSpec and builds the world.
func ReadWorld(r io.Reader) (*World, error) {
	var spec WorldSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("geo: decoding world spec: %w", err)
	}
	return FromSpec(&spec)
}

// Spec exports the world back to its JSON shape (links keep their derived
// cost via cost_factor 0, i.e. the distance default; explicit factors are
// not recoverable and omitted).
func (w *World) Spec() *WorldSpec {
	spec := &WorldSpec{}
	for _, c := range w.countries {
		spec.Countries = append(spec.Countries, CountrySpec{
			Code:         string(c.Code),
			Name:         c.Name,
			Region:       c.Region.String(),
			Lat:          c.Lat,
			Lon:          c.Lon,
			UTCOffsetMin: c.UTCOffsetMin,
			Weight:       c.Weight,
		})
	}
	for _, dc := range w.dcs {
		spec.DCs = append(spec.DCs, DCSpec{Name: dc.Name, Country: string(dc.Country), CoreCost: dc.CoreCost})
	}
	for _, l := range w.links {
		factor := l.CostPerGbps / linkCost(l.DistKm)
		ls := LinkSpecJSON{A: string(l.A), B: string(l.B)}
		if factor < 0.999 || factor > 1.001 {
			ls.CostFactor = factor
		}
		spec.Links = append(spec.Links, ls)
	}
	return spec
}

// WriteWorld encodes the world's spec as indented JSON.
func WriteWorld(w io.Writer, world *World) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(world.Spec())
}
