package provision

import (
	"math"
	"testing"

	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/records"
	"switchboard/internal/trace"
)

// testInputs builds a small demand from a short synthetic trace.
func testInputs(t *testing.T, withBackup bool) *Inputs {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.Days = 2
	cfg.CallsPerDay = 1500
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := geo.DefaultWorld()
	db := records.New(cfg.Start, w)
	g.EachCall(func(r *model.CallRecord) bool { db.Add(r); return true })
	return &Inputs{
		World:              w,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(12),
		LatencyThresholdMs: 120,
		WithBackup:         withBackup,
		SlotStride:         8, // 6 coarse slots keep the LPs small in tests
	}
}

func TestInputsValidation(t *testing.T) {
	if _, err := RoundRobin(&Inputs{}); err == nil {
		t.Error("nil fields should error")
	}
	in := testInputs(t, false)
	in.LatencyThresholdMs = 0
	if _, err := RoundRobin(in); err == nil {
		t.Error("zero threshold should error")
	}
	in = testInputs(t, false)
	in.Demand = &records.Demand{}
	if _, err := LocalityFirst(in); err == nil {
		t.Error("empty demand should error")
	}
}

func TestDefaultBackupEqualServing(t *testing.T) {
	// §3.1: four DCs with equal serving s need s/(n-1) backup each.
	bk, err := DefaultBackup([]float64{25, 25, 25, 25})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, b := range bk {
		total += b
	}
	if math.Abs(total-100.0/3) > 1e-6 {
		t.Errorf("total backup = %g, want 33.33", total)
	}
}

func TestDefaultBackupSkewedServing(t *testing.T) {
	// §3.2's example: one DC holding 75% forces 75% total backup.
	bk, err := DefaultBackup([]float64{75, 10, 10, 5})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i, b := range bk {
		if b < -1e-9 {
			t.Errorf("negative backup[%d] = %g", i, b)
		}
		total += b
	}
	if math.Abs(total-75) > 1e-6 {
		t.Errorf("total backup = %g, want 75", total)
	}
	// Verify the failure constraints hold.
	serving := []float64{75, 10, 10, 5}
	for x := range serving {
		var cover float64
		for y, b := range bk {
			if y != x {
				cover += b
			}
		}
		if cover < serving[x]-1e-6 {
			t.Errorf("failure of DC %d uncovered: %g < %g", x, cover, serving[x])
		}
	}
}

func TestDefaultBackupEdgeCases(t *testing.T) {
	if bk, err := DefaultBackup(nil); err != nil || bk != nil {
		t.Error("empty serving should be a no-op")
	}
	if _, err := DefaultBackup([]float64{10}); err == nil {
		t.Error("single DC with load cannot be backed up")
	}
	if bk, err := DefaultBackup([]float64{0}); err != nil || bk[0] != 0 {
		t.Error("single idle DC needs no backup")
	}
}

// TestPeakAwareBackupFig4 reproduces the paper's Fig 4 worked example
// exactly: demand (JP, HK, IN) over three slots; the default plan needs
// 160 cores per DC while the peak-aware plan needs only 100/110/110.
func TestPeakAwareBackupFig4(t *testing.T) {
	demand := [][]float64{
		{100, 60, 20}, // T1: Japan at peak
		{30, 110, 60}, // T2: Hong Kong at peak
		{20, 40, 110}, // T3: India at peak
	}

	// Default plan (Fig 4b): serving peaks (100,110,110) + §3.2 backup.
	serving := []float64{100, 110, 110}
	bk, err := DefaultBackup(serving)
	if err != nil {
		t.Fatal(err)
	}
	var defaultTotal float64
	for i := range serving {
		defaultTotal += serving[i] + bk[i]
	}
	if math.Abs(defaultTotal-480) > 1e-6 {
		t.Errorf("default plan total = %g, want 480 (160 per DC)", defaultTotal)
	}

	// Peak-aware plan (Fig 4c): 100 + 110 + 110 = 320.
	caps, err := PeakAwareBackup(demand)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, c := range caps {
		total += c
	}
	if math.Abs(total-320) > 1e-6 {
		t.Errorf("peak-aware total = %g, want 320 (got %v)", total, caps)
	}
	want := []float64{100, 110, 110}
	for i := range want {
		if math.Abs(caps[i]-want[i]) > 1e-6 {
			t.Errorf("caps[%d] = %g, want %g", i, caps[i], want[i])
		}
	}
}

func TestPeakAwareBackupValidation(t *testing.T) {
	if _, err := PeakAwareBackup(nil); err == nil {
		t.Error("empty demand should error")
	}
	if _, err := PeakAwareBackup([][]float64{{5}}); err == nil {
		t.Error("single DC should error")
	}
	if _, err := PeakAwareBackup([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged demand should error")
	}
}

func TestRoundRobinSpreadsEqually(t *testing.T) {
	in := testInputs(t, false)
	plan, err := RoundRobin(in)
	if err != nil {
		t.Fatal(err)
	}
	w := in.World
	lm, _ := NewLoadModel(in)
	d := lm.Demand()
	for t2 := range plan.Alloc {
		for c := range plan.Alloc[t2] {
			dem := d.Counts[t2][c]
			if dem == 0 {
				continue
			}
			region := majorityRegion(w, d.Configs[c])
			nDCs := len(w.DCsInRegion(region))
			var total float64
			for x, s := range plan.Alloc[t2][c] {
				if s > 0 {
					if w.DCs()[x].Region != region {
						t.Fatalf("RR placed config %d outside region %v", c, region)
					}
					if math.Abs(s-dem/float64(nDCs)) > 1e-9 {
						t.Fatalf("RR share %g, want %g", s, dem/float64(nDCs))
					}
				}
				total += s
			}
			if math.Abs(total-dem) > 1e-9 {
				t.Fatalf("RR total %g != demand %g", total, dem)
			}
		}
	}
}

func TestRoundRobinWeighted(t *testing.T) {
	in := testInputs(t, false)
	w := in.World
	// Double weight on us-east within AMER; zero elsewhere-but-positive
	// defaults for the other regions.
	weights := make([]float64, len(w.DCs()))
	for i := range weights {
		weights[i] = 1
	}
	var usEast, saoPaulo int
	for _, dc := range w.DCs() {
		switch dc.Name {
		case "us-east":
			usEast = dc.ID
		case "sao-paulo":
			saoPaulo = dc.ID
		}
	}
	weights[usEast] = 3
	plan, err := RoundRobinWeighted(in, weights)
	if err != nil {
		t.Fatal(err)
	}
	lm, _ := NewLoadModel(in)
	d := lm.Demand()
	for t2 := range plan.Alloc {
		for c := range plan.Alloc[t2] {
			dem := d.Counts[t2][c]
			if dem == 0 || majorityRegion(w, d.Configs[c]) != geo.AMER {
				continue
			}
			// AMER has two DCs with weights 3:1.
			if math.Abs(plan.Alloc[t2][c][usEast]-dem*0.75) > 1e-9 {
				t.Fatalf("us-east share %g, want %g", plan.Alloc[t2][c][usEast], dem*0.75)
			}
			if math.Abs(plan.Alloc[t2][c][saoPaulo]-dem*0.25) > 1e-9 {
				t.Fatalf("sao-paulo share %g, want %g", plan.Alloc[t2][c][saoPaulo], dem*0.25)
			}
		}
	}

	// Validation.
	if _, err := RoundRobinWeighted(in, []float64{1}); err == nil {
		t.Error("wrong weight count should error")
	}
	weights[usEast] = -1
	if _, err := RoundRobinWeighted(in, weights); err == nil {
		t.Error("negative weight should error")
	}
}

func TestRoundRobinWeightedZeroRegion(t *testing.T) {
	// Zero out an entire region: its calls fall back to their min-ACL DC
	// and none are lost.
	in := testInputs(t, false)
	w := in.World
	weights := make([]float64, len(w.DCs()))
	for _, dc := range w.DCs() {
		if dc.Region != geo.APAC {
			weights[dc.ID] = 1
		}
	}
	plan, err := RoundRobinWeighted(in, weights)
	if err != nil {
		t.Fatal(err)
	}
	lm, _ := NewLoadModel(in)
	d := lm.Demand()
	for t2 := range plan.Alloc {
		for c := range plan.Alloc[t2] {
			var got float64
			for _, s := range plan.Alloc[t2][c] {
				got += s
			}
			if math.Abs(got-d.Counts[t2][c]) > 1e-9*(1+d.Counts[t2][c]) {
				t.Fatalf("slot %d config %d allocated %g, want %g", t2, c, got, d.Counts[t2][c])
			}
		}
	}
}

func TestLocalityFirstMinimizesACL(t *testing.T) {
	in := testInputs(t, false)
	plan, err := LocalityFirst(in)
	if err != nil {
		t.Fatal(err)
	}
	lm, _ := NewLoadModel(in)
	for t2 := range plan.Alloc {
		for c := range plan.Alloc[t2] {
			for x, s := range plan.Alloc[t2][c] {
				if s > 0 && x != lm.MinACLDC(c) {
					t.Fatalf("LF hosted config %d at %d, want %d", c, x, lm.MinACLDC(c))
				}
			}
		}
	}
	rr, err := RoundRobin(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MeanACL(lm) >= rr.MeanACL(lm) {
		t.Errorf("LF ACL %g should beat RR ACL %g", plan.MeanACL(lm), rr.MeanACL(lm))
	}
	if plan.TotalGbps() >= rr.TotalGbps() {
		t.Errorf("LF WAN %g should be below RR WAN %g", plan.TotalGbps(), rr.TotalGbps())
	}
}

func TestSwitchboardMeetsDemandAndBeatsBaselinesOnCost(t *testing.T) {
	in := testInputs(t, false)
	sb, err := Switchboard(in)
	if err != nil {
		t.Fatal(err)
	}
	lm, _ := NewLoadModel(in)
	d := lm.Demand()

	// Completeness: every slot/config fully allocated.
	for t2 := range sb.Alloc {
		for c := range sb.Alloc[t2] {
			var total float64
			for _, s := range sb.Alloc[t2][c] {
				total += s
			}
			if math.Abs(total-d.Counts[t2][c]) > 1e-5*(1+d.Counts[t2][c]) {
				t.Fatalf("SB slot %d config %d allocated %g, want %g", t2, c, total, d.Counts[t2][c])
			}
		}
	}
	// Capacity covers usage.
	usage := PeakPerDC(lm.ComputeUsage(sb.Alloc))
	for x, u := range usage {
		if u > sb.Cores[x]+1e-6 {
			t.Fatalf("DC %d usage %g > cores %g", x, u, sb.Cores[x])
		}
	}
	// Latency constraint honored where feasible.
	for t2 := range sb.Alloc {
		for c := range sb.Alloc[t2] {
			feasible := false
			for _, x := range lm.Allowed(c) {
				if lm.ACL(c, x) <= in.LatencyThresholdMs {
					feasible = true
				}
			}
			for x, s := range sb.Alloc[t2][c] {
				if s > 1e-9 && feasible && lm.ACL(c, x) > in.LatencyThresholdMs {
					t.Fatalf("SB placed config %d at DC %d with ACL %g > %g",
						c, x, lm.ACL(c, x), in.LatencyThresholdMs)
				}
			}
		}
	}

	// Cost optimality within the latency constraint: SB must not exceed
	// either baseline's cost (Table 3's headline).
	rr, err := RoundRobin(in)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := LocalityFirst(in)
	if err != nil {
		t.Fatal(err)
	}
	w := in.World
	if sb.Cost(w) > rr.Cost(w)*1.001 {
		t.Errorf("SB cost %g exceeds RR %g", sb.Cost(w), rr.Cost(w))
	}
	if sb.Cost(w) > lf.Cost(w)*1.001 {
		t.Errorf("SB cost %g exceeds LF %g", sb.Cost(w), lf.Cost(w))
	}
}

func TestSwitchboardWithBackupDominatesWithout(t *testing.T) {
	in := testInputs(t, false)
	noBk, err := Switchboard(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := testInputs(t, true)
	withBk, err := Switchboard(in2)
	if err != nil {
		t.Fatal(err)
	}
	if withBk.TotalCores() < noBk.TotalCores()-1e-6 {
		t.Errorf("backup cores %g < serving-only cores %g", withBk.TotalCores(), noBk.TotalCores())
	}
	if withBk.Cost(in.World) < noBk.Cost(in.World)-1e-6 {
		t.Errorf("backup cost below serving-only cost")
	}
	// Survivability: for every DC failure, surviving capacity must cover
	// the peak total compute demand of feasible reassignment. We check the
	// aggregate condition: total surviving cores >= peak demand load.
	lm, _ := NewLoadModel(in2)
	peak := 0.0
	for t2 := range lm.Demand().Counts {
		var load float64
		for c, dem := range lm.Demand().Counts[t2] {
			load += dem * lm.ComputeLoad(c)
		}
		if load > peak {
			peak = load
		}
	}
	for f := range in2.World.DCs() {
		var surviving float64
		for x, cores := range withBk.Cores {
			if x != f {
				surviving += cores
			}
		}
		if surviving < peak-1e-6 {
			t.Errorf("DC %d failure leaves %g cores < peak demand %g", f, surviving, peak)
		}
	}
}

func TestBaselinesWithBackupGrow(t *testing.T) {
	for _, scheme := range []struct {
		name string
		f    func(*Inputs) (*Plan, error)
	}{{"rr", RoundRobin}, {"lf", LocalityFirst}} {
		without, err := scheme.f(testInputs(t, false))
		if err != nil {
			t.Fatal(err)
		}
		with, err := scheme.f(testInputs(t, true))
		if err != nil {
			t.Fatal(err)
		}
		if with.TotalCores() <= without.TotalCores() {
			t.Errorf("%s: backup cores %g not above serving %g", scheme.name, with.TotalCores(), without.TotalCores())
		}
		if with.TotalGbps() < without.TotalGbps()-1e-9 {
			t.Errorf("%s: backup WAN %g below serving WAN %g", scheme.name, with.TotalGbps(), without.TotalGbps())
		}
	}
}

func TestLFComputeAtLeastRR(t *testing.T) {
	// §3.2: the sum of time-shifted local peaks >= the global peak, so LF
	// provisions at least as much compute as RR.
	in := testInputs(t, false)
	rr, err := RoundRobin(in)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := LocalityFirst(in)
	if err != nil {
		t.Fatal(err)
	}
	if lf.TotalCores() < rr.TotalCores()*0.999 {
		t.Errorf("LF cores %g below RR cores %g", lf.TotalCores(), rr.TotalCores())
	}
}

func TestSlotStrideCoarsening(t *testing.T) {
	in := testInputs(t, false)
	in.SlotStride = 0
	lmFine, err := NewLoadModel(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := testInputs(t, false)
	in2.SlotStride = 8
	lmCoarse, err := NewLoadModel(in2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(lmCoarse.Demand().Counts), 6; got != want {
		t.Errorf("coarse slots = %d, want %d", got, want)
	}
	if len(lmFine.Demand().Counts) != model.SlotsPerDay {
		t.Errorf("fine slots = %d", len(lmFine.Demand().Counts))
	}
	// Coarsening takes maxima, so per-config coarse demand >= any fine
	// slot in its group.
	for t2 := 0; t2 < 6; t2++ {
		for c := range lmCoarse.Demand().Configs {
			for s := t2 * 8; s < (t2+1)*8; s++ {
				if lmFine.Demand().Counts[s][c] > lmCoarse.Demand().Counts[t2][c]+1e-9 {
					t.Fatalf("coarse max violated at slot %d config %d", s, c)
				}
			}
		}
	}
}

func TestMaxDCsPerConfigCap(t *testing.T) {
	in := testInputs(t, false)
	in.MaxDCsPerConfig = 2
	lm, err := NewLoadModel(in)
	if err != nil {
		t.Fatal(err)
	}
	for c := range lm.Demand().Configs {
		if len(lm.Allowed(c)) > 2 {
			t.Fatalf("config %d has %d candidates, cap is 2", c, len(lm.Allowed(c)))
		}
	}
}

func TestCandidateFallbackToMinACL(t *testing.T) {
	// An impossible threshold forces the min-ACL escape hatch.
	in := testInputs(t, false)
	in.LatencyThresholdMs = 0.001
	lm, err := NewLoadModel(in)
	if err != nil {
		t.Fatal(err)
	}
	for c := range lm.Demand().Configs {
		allowed := lm.Allowed(c)
		if len(allowed) != 1 || allowed[0] != lm.MinACLDC(c) {
			t.Fatalf("config %d fallback = %v, want [%d]", c, allowed, lm.MinACLDC(c))
		}
	}
}

func TestPlanAccessors(t *testing.T) {
	p := &Plan{Cores: []float64{1, 2}, LinkGbps: []float64{3, 4, 5}}
	if p.TotalCores() != 3 || p.TotalGbps() != 12 {
		t.Error("totals wrong")
	}
}

func TestExtraScenariosCompoundFailure(t *testing.T) {
	// Provision for the simultaneous loss of both APAC anchor DCs (pune +
	// tokyo). The resulting plan must dominate the single-failure plan
	// and leave enough surviving capacity for the peak.
	in := testInputs(t, true)
	in.DCFailuresOnly = true
	base, err := Switchboard(in)
	if err != nil {
		t.Fatal(err)
	}
	var pune, tokyo int
	for _, dc := range in.World.DCs() {
		switch dc.Name {
		case "pune":
			pune = dc.ID
		case "tokyo":
			tokyo = dc.ID
		}
	}
	in2 := testInputs(t, true)
	in2.DCFailuresOnly = true
	in2.ExtraScenarios = []Scenario{{Name: "F_APAC_pair", DCs: []int{pune, tokyo}}}
	compound, err := Switchboard(in2)
	if err != nil {
		t.Fatal(err)
	}
	if compound.TotalCores() < base.TotalCores()-1e-9 {
		t.Errorf("compound-failure plan has fewer cores (%g) than single-failure plan (%g)",
			compound.TotalCores(), base.TotalCores())
	}
	for x := range compound.Cores {
		if compound.Cores[x] < base.Cores[x]-1e-6 {
			t.Errorf("DC %d capacity shrank under a stricter failure model", x)
		}
	}
	// Survivability of the compound event: surviving cores cover the peak
	// demand load.
	lm, _ := NewLoadModel(in2)
	peak := 0.0
	for t2 := range lm.Demand().Counts {
		var load float64
		for c, dem := range lm.Demand().Counts[t2] {
			load += dem * lm.ComputeLoad(c)
		}
		if load > peak {
			peak = load
		}
	}
	surviving := compound.TotalCores() - compound.Cores[pune] - compound.Cores[tokyo]
	if surviving < peak-1e-6 {
		t.Errorf("losing pune+tokyo leaves %g cores < peak %g", surviving, peak)
	}
}

func TestScenarioString(t *testing.T) {
	if (Scenario{Name: "x"}).String() != "x" {
		t.Error("named scenario should print its name")
	}
	if (Scenario{DCs: []int{1}}).String() == "" {
		t.Error("anonymous scenario should describe itself")
	}
	if !(Scenario{}).empty() || (Scenario{Links: []int{1}}).empty() {
		t.Error("empty detection wrong")
	}
}

func TestIgnoreNetworkCostIncreasesWAN(t *testing.T) {
	in := testInputs(t, false)
	joint, err := Switchboard(in)
	if err != nil {
		t.Fatal(err)
	}
	in2 := testInputs(t, false)
	in2.IgnoreNetworkCost = true
	computeOnly, err := Switchboard(in2)
	if err != nil {
		t.Fatal(err)
	}
	// Pricing WAN at zero can only shift cost into network usage: the
	// true total cost of the compute-only plan is >= the joint plan's.
	w := in.World
	if computeOnly.Cost(w) < joint.Cost(w)-1e-6 {
		t.Errorf("compute-only cost %g below joint cost %g", computeOnly.Cost(w), joint.Cost(w))
	}
}
