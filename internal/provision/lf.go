package provision

import (
	"fmt"
	"math"

	"switchboard/internal/geo"
)

// LocalityFirst implements the §3.2 baseline: every call is hosted at the DC
// with the lowest average call latency for its config. Latency and WAN usage
// are minimal, but each DC must be provisioned for its own local peak, and
// the sum of time-shifted local peaks exceeds the global peak; the skew also
// inflates backup capacity.
func LocalityFirst(in *Inputs) (*Plan, error) {
	lm, err := NewLoadModel(in)
	if err != nil {
		return nil, err
	}
	return localityFirstWith(lm)
}

func localityFirstWith(lm *LoadModel) (*Plan, error) {
	w := lm.world
	d := lm.demand
	nT, nC, nD := len(d.Counts), len(d.Configs), len(w.DCs())

	alloc := newAlloc(nT, nC, nD)
	home := make([]int, nC)
	for c := range d.Configs {
		home[c] = lm.MinACLDC(c)
		for t := 0; t < nT; t++ {
			if dem := d.Counts[t][c]; dem > 0 {
				alloc[t][c][home[c]] = dem
			}
		}
	}

	serving := PeakPerDC(lm.ComputeUsage(alloc))
	cores := append([]float64(nil), serving...)
	link := PeakPerDC(lm.LinkUsage(alloc, -1))

	if lm.in.WithBackup {
		// §3.2 compute backup, per region (fail-over stays in-region to
		// keep latency acceptable, as in the paper's examples).
		for _, r := range geo.Regions() {
			dcs := w.DCsInRegion(r)
			if len(dcs) < 2 {
				continue
			}
			sv := make([]float64, len(dcs))
			for i, x := range dcs {
				sv[i] = serving[x]
			}
			bk, err := DefaultBackup(sv)
			if err != nil {
				return nil, fmt.Errorf("provision: LF backup (%v): %w", r, err)
			}
			for i, x := range dcs {
				cores[x] += bk[i]
			}
		}
		// WAN backup: on DC failure, LF moves each affected call to the
		// next-lowest-ACL surviving DC.
		link = backupWAN(lm, alloc, func(t, c, failed int, shares []float64) []float64 {
			out := append([]float64(nil), shares...)
			moved := out[failed]
			out[failed] = 0
			next, nextACL := -1, math.Inf(1)
			for x := 0; x < nD; x++ {
				if x == failed {
					continue
				}
				if a := lm.ACL(c, x); a < nextACL {
					next, nextACL = x, a
				}
			}
			if next >= 0 {
				out[next] += moved
			}
			return out
		})
	}

	return &Plan{
		Scheme:   "locality-first",
		Cores:    cores,
		LinkGbps: link,
		Alloc:    alloc,
		Demand:   d,
	}, nil
}
