// Package provision implements MP capacity provisioning (§5.3): given a
// demand envelope over call configs, decide how many compute cores to
// provision at every datacenter and how much bandwidth on every WAN link.
//
// Three provisioners are implemented:
//
//   - RoundRobin (§3.1): spreads every call equally over the DCs of its
//     region; minimal compute, heavy WAN usage.
//   - LocalityFirst (§3.2): hosts every call at its minimum-ACL DC; minimal
//     latency and WAN, but compute must cover the sum of shifted local peaks.
//   - Switchboard (§5.3): a joint compute+network LP per failure scenario
//     with peak-aware sharing across time slots (Eq 3–9), taking the
//     max-over-scenarios capacity (Eq 7–8).
//
// All three share the same load-accounting model so their outputs are
// directly comparable (Table 3).
package provision

import (
	"fmt"
	"math"

	"switchboard/internal/geo"
	"switchboard/internal/model"
	"switchboard/internal/records"
)

// Inputs bundles everything a provisioner needs.
type Inputs struct {
	// World supplies DCs, links, and WAN routing.
	World *geo.World
	// Latency answers Lat(x, u) queries (pooled medians with model
	// fallback; see records.LatencyEstimator).
	Latency *records.LatencyEstimator
	// Demand is the per-slot, per-config call demand envelope.
	Demand *records.Demand
	// LatencyThresholdMs is LAT_th (the paper uses 120 ms one-way).
	LatencyThresholdMs float64
	// WithBackup selects whether failure scenarios (one DC or one WAN
	// link down at a time) are provisioned for.
	WithBackup bool
	// DCFailuresOnly restricts the Switchboard backup scenarios to DC
	// failures, skipping link failures. Used by the §4.2 ablation so
	// both arms protect against the same events.
	DCFailuresOnly bool
	// SlotStride optionally coarsens time: consecutive groups of this
	// many slots are merged by per-config max before optimization. 0 or
	// 1 keeps all slots. Only the Switchboard LP's size depends on it;
	// the baselines are cheap either way.
	SlotStride int
	// MaxDCsPerConfig optionally caps each config's candidate DC set to
	// the K lowest-ACL feasible DCs (0 = no cap). This bounds LP columns
	// on large worlds at a small optimality cost.
	MaxDCsPerConfig int
	// IgnoreNetworkCost makes the Switchboard LP price WAN capacity at
	// (almost) zero, optimizing compute alone. Used by the joint-vs-
	// compute-only ablation of the §4.3 idea; WAN peaks are still
	// reported so the induced network cost can be compared.
	IgnoreNetworkCost bool
	// ExtraScenarios adds compound failure scenarios (multiple DCs
	// and/or links down at once) on top of the standard single-failure
	// set when WithBackup is set.
	ExtraScenarios []Scenario
}

func (in *Inputs) validate() error {
	if in.World == nil || in.Latency == nil || in.Demand == nil {
		return fmt.Errorf("provision: World, Latency, and Demand are required")
	}
	if in.LatencyThresholdMs <= 0 {
		return fmt.Errorf("provision: LatencyThresholdMs must be positive, got %g", in.LatencyThresholdMs)
	}
	if len(in.Demand.Configs) == 0 {
		return fmt.Errorf("provision: empty demand")
	}
	return nil
}

// Plan is a provisioning decision plus the no-failure allocation it was
// computed from.
type Plan struct {
	// Scheme identifies the provisioner that produced the plan.
	Scheme string
	// Cores[x] is the total provisioned cores at DC x (serving plus any
	// backup).
	Cores []float64
	// LinkGbps[l] is the provisioned bandwidth of WAN link l.
	LinkGbps []float64
	// Alloc[t][c][x] is the number of calls of config c in slot t hosted
	// at DC x in the no-failure scenario.
	Alloc [][][]float64
	// Demand echoes the input demand the plan was computed for.
	Demand *records.Demand
}

// TotalCores returns the summed provisioned cores across DCs.
func (p *Plan) TotalCores() float64 {
	var s float64
	for _, v := range p.Cores {
		s += v
	}
	return s
}

// TotalGbps returns the summed provisioned bandwidth across WAN links (the
// paper's "Total WAN capacity" metric: the sum of per-link peaks).
func (p *Plan) TotalGbps() float64 {
	var s float64
	for _, v := range p.LinkGbps {
		s += v
	}
	return s
}

// Cost returns the provisioning cost under the world's price tables (Eq 3).
func (p *Plan) Cost(w *geo.World) float64 {
	var c float64
	for x, cores := range p.Cores {
		c += w.DCs()[x].CoreCost * cores
	}
	for l, gbps := range p.LinkGbps {
		c += w.Links()[l].CostPerGbps * gbps
	}
	return c
}

// MeanACL returns the demand-weighted mean average call latency of the
// plan's no-failure allocation.
func (p *Plan) MeanACL(lm *LoadModel) float64 {
	var sum, calls float64
	for t := range p.Alloc {
		for c := range p.Alloc[t] {
			for x, share := range p.Alloc[t][c] {
				if share > 0 {
					sum += share * lm.ACL(c, x)
					calls += share
				}
			}
		}
	}
	if calls == 0 {
		return 0
	}
	return sum / calls
}

// LoadModel precomputes, per (config, DC), the compute load, ACL, and the
// per-link network load of hosting that config there. It is shared by all
// provisioners so comparisons use identical accounting.
type LoadModel struct {
	in      *Inputs
	world   *geo.World
	demand  *records.Demand
	cl      []float64   // cores per call, by config
	acl     [][]float64 // [config][dc] average call latency
	allowed [][]int     // [config] candidate DCs after Eq 4 filtering
	// linkLoad[c][x] lists (link, Gbps-per-call) pairs for hosting one
	// call of config c at DC x along current (unbanned) paths.
	linkLoad [][][]linkShare
}

type linkShare struct {
	link int
	gbps float64
}

// NewLoadModel validates inputs, applies the SlotStride coarsening, and
// precomputes the load tables.
func NewLoadModel(in *Inputs) (*LoadModel, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	demand := in.Demand
	if in.SlotStride > 1 {
		demand = coarsenDemand(demand, in.SlotStride)
	}
	lm := &LoadModel{in: in, world: in.World, demand: demand}
	nc := len(demand.Configs)
	nd := len(in.World.DCs())
	lm.cl = make([]float64, nc)
	lm.acl = make([][]float64, nc)
	lm.allowed = make([][]int, nc)
	lm.linkLoad = make([][][]linkShare, nc)
	for c, cfg := range demand.Configs {
		lm.cl[c] = cfg.ComputeLoad()
		lm.acl[c] = make([]float64, nd)
		lm.linkLoad[c] = make([][]linkShare, nd)
		for x := 0; x < nd; x++ {
			lm.acl[c][x] = in.Latency.ACL(cfg, x)
			lm.linkLoad[c][x] = lm.pathLoads(cfg, x, -1)
		}
		lm.allowed[c] = lm.candidateDCs(c)
	}
	return lm, nil
}

// pathLoads aggregates the per-link Gbps of one call of cfg hosted at DC x,
// optionally avoiding a failed link.
func (lm *LoadModel) pathLoads(cfg model.CallConfig, x int, bannedLink int) []linkShare {
	if bannedLink < 0 {
		return lm.pathLoadsMulti(cfg, x, nil)
	}
	return lm.pathLoadsMulti(cfg, x, []int{bannedLink})
}

// pathLoadsMulti is pathLoads with a set of failed links.
func (lm *LoadModel) pathLoadsMulti(cfg model.CallConfig, x int, banned []int) []linkShare {
	perLink := make(map[int]float64)
	mbps := cfg.Media.NetworkLoad()
	for _, cc := range cfg.Spread {
		path := lm.world.PathAvoidingSet(x, cc.Country, banned)
		for _, l := range path {
			perLink[l] += mbps * float64(cc.Count) / 1000 // Mbps -> Gbps
		}
	}
	return sortedShares(perLink)
}

// candidateDCs applies the latency constraint (Eq 4): DCs whose ACL is under
// the threshold, or the single minimum-ACL DC when none qualifies, optionally
// capped to the K best.
func (lm *LoadModel) candidateDCs(c int) []int {
	nd := len(lm.world.DCs())
	var feasible []int
	best, bestACL := -1, math.Inf(1)
	for x := 0; x < nd; x++ {
		a := lm.acl[c][x]
		if a <= lm.in.LatencyThresholdMs {
			feasible = append(feasible, x)
		}
		if a < bestACL {
			best, bestACL = x, a
		}
	}
	if len(feasible) == 0 {
		return []int{best}
	}
	if k := lm.in.MaxDCsPerConfig; k > 0 && len(feasible) > k {
		// Keep the K lowest-ACL candidates.
		sortByACL(feasible, lm.acl[c])
		feasible = feasible[:k]
	}
	return feasible
}

func sortByACL(dcs []int, acl []float64) {
	for i := 1; i < len(dcs); i++ {
		for j := i; j > 0 && acl[dcs[j]] < acl[dcs[j-1]]; j-- {
			dcs[j], dcs[j-1] = dcs[j-1], dcs[j]
		}
	}
}

// Demand returns the (possibly slot-coarsened) demand the model operates on.
func (lm *LoadModel) Demand() *records.Demand { return lm.demand }

// ACL returns the average call latency of config c at DC x.
func (lm *LoadModel) ACL(c, x int) float64 { return lm.acl[c][x] }

// ComputeLoad returns the cores one call of config c consumes.
func (lm *LoadModel) ComputeLoad(c int) float64 { return lm.cl[c] }

// Allowed returns config c's candidate DCs under the latency constraint.
func (lm *LoadModel) Allowed(c int) []int { return lm.allowed[c] }

// LinkLoad is one (link, Gbps-per-call) contribution of hosting a config at
// a DC.
type LinkLoad struct {
	Link int
	Gbps float64
}

// LinkLoads returns the per-link bandwidth one call of config c consumes
// when hosted at DC x, under no-failure routing.
func (lm *LoadModel) LinkLoads(c, x int) []LinkLoad {
	shares := lm.linkLoad[c][x]
	out := make([]LinkLoad, len(shares))
	for i, ls := range shares {
		out[i] = LinkLoad{Link: ls.link, Gbps: ls.gbps}
	}
	return out
}

// World returns the world the model was built over.
func (lm *LoadModel) World() *geo.World { return lm.world }

// MinACLDC returns the DC with the lowest ACL for config c.
func (lm *LoadModel) MinACLDC(c int) int {
	best, bestACL := 0, math.Inf(1)
	for x := range lm.acl[c] {
		if lm.acl[c][x] < bestACL {
			best, bestACL = x, lm.acl[c][x]
		}
	}
	return best
}

// ComputeUsage returns, per slot and DC, the cores consumed by an allocation.
func (lm *LoadModel) ComputeUsage(alloc [][][]float64) [][]float64 {
	nd := len(lm.world.DCs())
	out := make([][]float64, len(alloc))
	for t := range alloc {
		out[t] = make([]float64, nd)
		for c := range alloc[t] {
			for x, share := range alloc[t][c] {
				if share != 0 {
					out[t][x] += share * lm.cl[c]
				}
			}
		}
	}
	return out
}

// LinkUsage returns, per slot and link, the Gbps consumed by an allocation,
// optionally with one link failed (traffic reroutes around it).
func (lm *LoadModel) LinkUsage(alloc [][][]float64, bannedLink int) [][]float64 {
	nl := len(lm.world.Links())
	out := make([][]float64, len(alloc))
	for t := range alloc {
		out[t] = make([]float64, nl)
		for c := range alloc[t] {
			for x, share := range alloc[t][c] {
				if share == 0 {
					continue
				}
				shares := lm.linkLoad[c][x]
				if bannedLink >= 0 {
					shares = lm.pathLoads(lm.demand.Configs[c], x, bannedLink)
				}
				for _, ls := range shares {
					out[t][ls.link] += share * ls.gbps
				}
			}
		}
	}
	return out
}

// PeakPerDC reduces a per-slot usage matrix to its per-DC (or per-link) peak.
func PeakPerDC(usage [][]float64) []float64 {
	if len(usage) == 0 {
		return nil
	}
	out := make([]float64, len(usage[0]))
	for _, row := range usage {
		for i, v := range row {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// coarsenDemand merges groups of stride consecutive slots by per-config max.
func coarsenDemand(d *records.Demand, stride int) *records.Demand {
	nT := (len(d.Counts) + stride - 1) / stride
	out := &records.Demand{
		Configs:     d.Configs,
		Counts:      make([][]float64, nT),
		Cushion:     d.Cushion,
		CoveredFrac: d.CoveredFrac,
	}
	for t := range out.Counts {
		out.Counts[t] = make([]float64, len(d.Configs))
		for s := t * stride; s < (t+1)*stride && s < len(d.Counts); s++ {
			for c, v := range d.Counts[s] {
				if v > out.Counts[t][c] {
					out.Counts[t][c] = v
				}
			}
		}
	}
	return out
}

// newAlloc allocates a zeroed [T][C][X] allocation tensor.
func newAlloc(nT, nC, nX int) [][][]float64 {
	a := make([][][]float64, nT)
	for t := range a {
		a[t] = make([][]float64, nC)
		for c := range a[t] {
			a[t][c] = make([]float64, nX)
		}
	}
	return a
}

// majorityRegion returns the region of the config's majority country.
func majorityRegion(w *geo.World, cfg model.CallConfig) geo.Region {
	maj, _ := cfg.Spread.Majority()
	if c, ok := w.Country(maj); ok {
		return c.Region
	}
	return geo.AMER
}
