package provision

import (
	"fmt"

	"switchboard/internal/geo"
)

// RoundRobin implements the §3.1 baseline: every call is spread equally over
// the DCs of its (majority) region. Compute is minimal — each DC carries an
// equal share of the regional peak and backup is the smallest possible — but
// calls land on far-away DCs, inflating WAN usage and latency.
func RoundRobin(in *Inputs) (*Plan, error) {
	return RoundRobinWeighted(in, nil)
}

// RoundRobinWeighted is the weighted generalization §3.1 mentions: calls are
// spread over their region's DCs proportionally to the given per-DC weights
// (indexed like World.DCs(); zero-weight DCs host nothing). nil weights mean
// equal weights, i.e. plain round-robin.
func RoundRobinWeighted(in *Inputs, weights []float64) (*Plan, error) {
	lm, err := NewLoadModel(in)
	if err != nil {
		return nil, err
	}
	if weights != nil {
		if len(weights) != len(in.World.DCs()) {
			return nil, fmt.Errorf("provision: %d weights for %d DCs", len(weights), len(in.World.DCs()))
		}
		for x, w := range weights {
			if w < 0 {
				return nil, fmt.Errorf("provision: negative weight for DC %d", x)
			}
		}
	}
	return roundRobinWith(lm, weights)
}

func roundRobinWith(lm *LoadModel, weights []float64) (*Plan, error) {
	w := lm.world
	d := lm.demand
	nT, nC, nD := len(d.Counts), len(d.Configs), len(w.DCs())

	regionDCs := make(map[geo.Region][]int)
	for _, r := range geo.Regions() {
		regionDCs[r] = w.DCsInRegion(r)
	}

	weightOf := func(x int) float64 {
		if weights == nil {
			return 1
		}
		return weights[x]
	}
	alloc := newAlloc(nT, nC, nD)
	for c, cfg := range d.Configs {
		region := majorityRegion(w, cfg)
		dcs := regionDCs[region]
		var total float64
		for _, x := range dcs {
			total += weightOf(x)
		}
		if len(dcs) == 0 || total <= 0 {
			// No (weighted) DC in region: everything goes to the
			// config's best DC regardless of weights.
			dcs = []int{lm.MinACLDC(c)}
			total = 0
		}
		for t := 0; t < nT; t++ {
			dem := d.Counts[t][c]
			if dem == 0 {
				continue
			}
			if total <= 0 {
				alloc[t][c][dcs[0]] = dem
				continue
			}
			for _, x := range dcs {
				if share := weightOf(x) / total; share > 0 {
					alloc[t][c][x] = dem * share
				}
			}
		}
	}

	serving := PeakPerDC(lm.ComputeUsage(alloc))
	cores := append([]float64(nil), serving...)
	link := PeakPerDC(lm.LinkUsage(alloc, -1))

	if lm.in.WithBackup {
		// Compute backup per region via the §3.2 LP.
		for _, r := range geo.Regions() {
			dcs := regionDCs[r]
			if len(dcs) < 2 {
				continue
			}
			sv := make([]float64, len(dcs))
			for i, x := range dcs {
				sv[i] = serving[x]
			}
			bk, err := DefaultBackup(sv)
			if err != nil {
				return nil, fmt.Errorf("provision: RR backup (%v): %w", r, err)
			}
			for i, x := range dcs {
				cores[x] += bk[i]
			}
		}
		// WAN backup: on DC failure, RR redistributes the failed DC's
		// share over the surviving in-region DCs (by weight).
		link = backupWAN(lm, alloc, func(t, c, failed int, shares []float64) []float64 {
			out := append([]float64(nil), shares...)
			moved := out[failed]
			out[failed] = 0
			region := w.DCs()[failed].Region
			var survivors []int
			var total float64
			for _, x := range regionDCs[region] {
				if x != failed && weightOf(x) > 0 {
					survivors = append(survivors, x)
					total += weightOf(x)
				}
			}
			equalSplit := weights == nil
			if len(survivors) == 0 {
				// No weighted survivor in the region: fail over
				// across all DCs, equally.
				equalSplit = true
				for x := range out {
					if x != failed {
						survivors = append(survivors, x)
					}
				}
			}
			for _, x := range survivors {
				if equalSplit {
					out[x] += moved / float64(len(survivors))
				} else {
					out[x] += moved * weightOf(x) / total
				}
			}
			return out
		})
	}

	return &Plan{
		Scheme:   "round-robin",
		Cores:    cores,
		LinkGbps: link,
		Alloc:    alloc,
		Demand:   d,
	}, nil
}
