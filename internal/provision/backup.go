package provision

import (
	"fmt"

	"switchboard/internal/lp"
)

// DefaultBackup solves the paper's §3.2 backup LP: given each DC's peak
// serving capacity, find per-DC backup capacities minimizing the total while
// surviving any single DC failure:
//
//	min  Σ_x Backup_x
//	s.t. Serving_x ≤ Σ_{y≠x} Backup_y   for every DC x
//
// It returns the per-DC backup capacities. Used by the RR and LF baselines,
// which plan backup over and above serving capacity.
func DefaultBackup(serving []float64) ([]float64, error) {
	n := len(serving)
	if n == 0 {
		return nil, nil
	}
	if n == 1 {
		if serving[0] > 0 {
			return nil, fmt.Errorf("provision: cannot back up a single DC")
		}
		return []float64{0}, nil
	}
	p := lp.New(lp.Minimize)
	vars := make([]int, n)
	for x := range vars {
		vars[x] = p.AddVar(fmt.Sprintf("backup[%d]", x), 1)
	}
	for x := 0; x < n; x++ {
		var cols []int
		var vals []float64
		for y := 0; y < n; y++ {
			if y != x {
				cols = append(cols, vars[y])
				vals = append(vals, 1)
			}
		}
		p.AddRow(fmt.Sprintf("fail[%d]", x), cols, vals, lp.GE, serving[x])
	}
	sol, err := p.Solve(lp.Options{})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("provision: backup LP %v", sol.Status)
	}
	out := make([]float64, n)
	copy(out, sol.X[:n])
	return out, nil
}

// PeakAwareBackup implements the §4.2 idea in isolation (the Fig 4 worked
// example): given per-DC serving demand over time, find total per-DC
// capacities that cover serving at all times and any single-DC failure at
// any time, repurposing off-peak serving headroom as backup:
//
//	min  Σ_x C_x
//	s.t. C_x ≥ demand_x(t)                            for all x, t
//	     Σ_{y≠f} (C_y − demand_y(t)) ≥ demand_f(t)    for all f, t
//
// demand is indexed [slot][dc]. It returns the per-DC total capacities.
func PeakAwareBackup(demand [][]float64) ([]float64, error) {
	if len(demand) == 0 {
		return nil, fmt.Errorf("provision: empty demand")
	}
	n := len(demand[0])
	if n < 2 {
		return nil, fmt.Errorf("provision: need at least 2 DCs, got %d", n)
	}
	p := lp.New(lp.Minimize)
	vars := make([]int, n)
	for x := range vars {
		vars[x] = p.AddVar(fmt.Sprintf("cap[%d]", x), 1)
	}
	for t, row := range demand {
		if len(row) != n {
			return nil, fmt.Errorf("provision: ragged demand at slot %d", t)
		}
		for x, d := range row {
			if d > 0 {
				p.AddRow(fmt.Sprintf("serve[%d,%d]", t, x), []int{vars[x]}, []float64{1}, lp.GE, d)
			}
		}
		// Failure of DC f at slot t: survivors' headroom covers f.
		var total float64
		for _, d := range row {
			total += d
		}
		for f := 0; f < n; f++ {
			var cols []int
			var vals []float64
			for y := 0; y < n; y++ {
				if y != f {
					cols = append(cols, vars[y])
					vals = append(vals, 1)
				}
			}
			// Σ_{y≠f} C_y ≥ Σ_{y≠f} d_y(t) + d_f(t) = total(t).
			p.AddRow(fmt.Sprintf("fail[%d,%d]", t, f), cols, vals, lp.GE, total)
		}
	}
	sol, err := p.Solve(lp.Options{})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("provision: peak-aware backup LP %v", sol.Status)
	}
	out := make([]float64, n)
	copy(out, sol.X[:n])
	return out, nil
}

// backupWAN replays failure scenarios for a baseline plan: for every DC
// failure, the failed DC's calls are redistributed by the redistribute
// callback and link usage recomputed; for every loaded link failure, traffic
// reroutes around the link. It returns the per-link capacity needed: the max
// usage across the no-failure case and all scenarios.
//
// redistribute(t, c, failed, alloc) must return the scenario allocation row
// (shares per DC, with alloc[failed] == 0) for config c at slot t.
func backupWAN(lm *LoadModel, alloc [][][]float64, redistribute func(t, c, failed int, shares []float64) []float64) []float64 {
	nd := len(lm.world.DCs())
	need := PeakPerDC(lm.LinkUsage(alloc, -1))
	baseLoad := append([]float64(nil), need...)

	// Single-DC failures.
	for f := 0; f < nd; f++ {
		failed := newAlloc(len(alloc), len(alloc[0]), nd)
		touched := false
		for t := range alloc {
			for c := range alloc[t] {
				if alloc[t][c][f] > 0 {
					touched = true
					copy(failed[t][c], redistribute(t, c, f, alloc[t][c]))
				} else {
					copy(failed[t][c], alloc[t][c])
				}
			}
		}
		if !touched {
			continue
		}
		for l, v := range PeakPerDC(lm.LinkUsage(failed, -1)) {
			if v > need[l] {
				need[l] = v
			}
		}
	}

	// Single-link failures, only for links carrying traffic in the
	// no-failure case (an unloaded link's failure changes nothing).
	for l, used := range baseLoad {
		if used <= 1e-12 {
			continue
		}
		scenario := PeakPerDC(lm.LinkUsage(alloc, l))
		for l2, v := range scenario {
			if v > need[l2] {
				need[l2] = v
			}
		}
	}
	return need
}
