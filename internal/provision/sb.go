package provision

import (
	"fmt"
	"sort"

	"switchboard/internal/lp"
)

// Scenario is one failure scenario: a set of DCs and WAN links that are down
// simultaneously. The paper's default model is a single DC or a single link
// (§5.3, "Failure model"); it also notes the framework easily incorporates
// more sophisticated scenarios — pass those via Inputs.ExtraScenarios (for
// example a whole region's DCs, or a seismic event taking several cables).
type Scenario struct {
	// Name labels the scenario in errors and logs.
	Name string
	// DCs are the failed datacenter IDs.
	DCs []int
	// Links are the failed WAN link IDs.
	Links []int
}

func (s Scenario) String() string {
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("F{dcs=%v links=%v}", s.DCs, s.Links)
}

func (s Scenario) dcDown(x int) bool {
	for _, d := range s.DCs {
		if d == x {
			return true
		}
	}
	return false
}

func (s Scenario) linkDown(l int) bool {
	for _, f := range s.Links {
		if f == l {
			return true
		}
	}
	return false
}

// empty reports whether this is the no-failure scenario F0.
func (s Scenario) empty() bool { return len(s.DCs) == 0 && len(s.Links) == 0 }

// Switchboard implements the paper's provisioning LP (§5.3, Eq 3–9): a joint
// compute+network optimization that is peak-aware (allocation shares S[t,c,x]
// vary per slot while capacity pays only for the peak) and, with backup
// enabled, provisions for every single-DC and single-loaded-link failure
// scenario — plus any Inputs.ExtraScenarios — taking the per-resource
// maximum across scenarios (Eq 7–8).
func Switchboard(in *Inputs) (*Plan, error) {
	lm, err := NewLoadModel(in)
	if err != nil {
		return nil, err
	}
	return switchboardWith(lm)
}

func switchboardWith(lm *LoadModel) (*Plan, error) {
	nD := len(lm.world.DCs())
	nL := len(lm.world.Links())

	cores, link, alloc, err := solveScenario(lm, Scenario{Name: "F0"})
	if err != nil {
		return nil, fmt.Errorf("provision: scenario F0: %w", err)
	}

	if lm.in.WithBackup {
		var scenarios []Scenario
		for f := 0; f < nD; f++ {
			scenarios = append(scenarios, Scenario{
				Name: "F_DC(" + lm.world.DCs()[f].Name + ")",
				DCs:  []int{f},
			})
		}
		if !lm.in.DCFailuresOnly {
			// Single-link failures; only links loaded in the
			// no-failure solution can force extra capacity elsewhere.
			for l := 0; l < nL; l++ {
				if link[l] <= 1e-12 {
					continue
				}
				scenarios = append(scenarios, Scenario{
					Name:  fmt.Sprintf("F_L(%d)", l),
					Links: []int{l},
				})
			}
		}
		scenarios = append(scenarios, lm.in.ExtraScenarios...)
		for _, sc := range scenarios {
			if sc.empty() {
				continue
			}
			c2, l2, _, err := solveScenario(lm, sc)
			if err != nil {
				return nil, fmt.Errorf("provision: scenario %v: %w", sc, err)
			}
			maxInto(cores, c2)
			maxInto(link, l2)
		}
	}

	return &Plan{
		Scheme:   "switchboard",
		Cores:    cores,
		LinkGbps: link,
		Alloc:    alloc,
		Demand:   lm.demand,
	}, nil
}

func maxInto(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

// solveScenario builds and solves the provisioning LP for one failure
// scenario: failed DCs are removed (with all their traffic rehomed), failed
// links are removed (paths reroute around them; DCs whose path to a
// participant disappears become ineligible for that config).
func solveScenario(lm *LoadModel, sc Scenario) (cores, link []float64, alloc [][][]float64, err error) {
	w := lm.world
	d := lm.demand
	nT, nC := len(d.Counts), len(d.Configs)
	nD, nL := len(w.DCs()), len(w.Links())

	cand, loads, err := scenarioCandidates(lm, sc)
	if err != nil {
		return nil, nil, nil, err
	}

	p := lp.New(lp.Minimize)

	cpVar := make([]int, nD)
	for x := range cpVar {
		cpVar[x] = -1
		if !sc.dcDown(x) {
			cpVar[x] = p.AddVar(fmt.Sprintf("CP[%s]", w.DCs()[x].Name), w.DCs()[x].CoreCost)
		}
	}
	npVar := make([]int, nL)
	for l := range npVar {
		npVar[l] = -1
		if !sc.linkDown(l) {
			cost := w.Links()[l].CostPerGbps
			if lm.in.IgnoreNetworkCost {
				cost *= 1e-6
			}
			npVar[l] = p.AddVar(fmt.Sprintf("NP[%d]", l), cost)
		}
	}

	// S variables, created only where demand exists. Bookkeeping arrays
	// map each S column back to (t, c, x) for extraction.
	type sRef struct{ t, c, x int }
	var refs []sRef
	// Per-(t,x) and per-(t,l) accumulation of row terms.
	computeCols := make(map[[2]int][]int)     // (t,x) -> S columns
	computeVals := make(map[[2]int][]float64) // matching CL coefficients
	netCols := make(map[[2]int][]int)         // (t,l) -> S columns
	netVals := make(map[[2]int][]float64)

	for t := 0; t < nT; t++ {
		for c := 0; c < nC; c++ {
			dem := d.Counts[t][c]
			if dem <= 0 {
				continue
			}
			var rowCols []int
			var rowVals []float64
			for _, x := range cand[c] {
				v := p.AddVar(fmt.Sprintf("S[%d,%d,%d]", t, c, x), 0)
				refs = append(refs, sRef{t, c, x})
				rowCols = append(rowCols, v)
				rowVals = append(rowVals, 1)

				k := [2]int{t, x}
				computeCols[k] = append(computeCols[k], v)
				computeVals[k] = append(computeVals[k], lm.cl[c])
				for _, ls := range loads[c][x] {
					k := [2]int{t, ls.link}
					netCols[k] = append(netCols[k], v)
					netVals[k] = append(netVals[k], ls.gbps)
				}
			}
			if len(rowCols) == 0 {
				return nil, nil, nil, fmt.Errorf("config %q has no eligible DC in scenario %v",
					d.Configs[c].Key(), sc)
			}
			// Completeness (Eq 9).
			p.AddRow(fmt.Sprintf("demand[%d,%d]", t, c), rowCols, rowVals, lp.EQ, dem)
		}
	}

	// Serving capacity constraints (Eq 5, 6): usage ≤ peak variable. Rows
	// are emitted in sorted key order so solves are fully deterministic.
	for _, k := range sortedKeys(computeCols) {
		cols := append(append([]int(nil), computeCols[k]...), cpVar[k[1]])
		vals := append(append([]float64(nil), computeVals[k]...), -1)
		p.AddRow(fmt.Sprintf("cpu[%d,%d]", k[0], k[1]), cols, vals, lp.LE, 0)
	}
	for _, k := range sortedKeys(netCols) {
		if npVar[k[1]] < 0 {
			// Load mapped onto a failed link: impossible by
			// construction (paths avoid it).
			return nil, nil, nil, fmt.Errorf("internal: load on failed link %d", k[1])
		}
		cols := append(append([]int(nil), netCols[k]...), npVar[k[1]])
		vals := append(append([]float64(nil), netVals[k]...), -1)
		p.AddRow(fmt.Sprintf("net[%d,%d]", k[0], k[1]), cols, vals, lp.LE, 0)
	}

	sol, err := p.Solve(lp.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil, nil, fmt.Errorf("LP finished %v", sol.Status)
	}

	cores = make([]float64, nD)
	for x, v := range cpVar {
		if v >= 0 {
			cores[x] = sol.X[v]
		}
	}
	link = make([]float64, nL)
	for l, v := range npVar {
		if v >= 0 {
			link[l] = sol.X[v]
		}
	}
	alloc = newAlloc(nT, nC, nD)
	base := nDvars(cpVar) + nDvars(npVar)
	for i, r := range refs {
		alloc[r.t][r.c][r.x] = sol.X[base+i]
	}
	return cores, link, alloc, nil
}

func sortedKeys(m map[[2]int][]int) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func nDvars(vars []int) int {
	n := 0
	for _, v := range vars {
		if v >= 0 {
			n++
		}
	}
	return n
}

// scenarioCandidates computes each config's eligible DCs and per-DC link
// loads under the scenario. A DC is eligible if it passed the latency filter
// (Eq 4), is alive, and can still route to every participant.
func scenarioCandidates(lm *LoadModel, sc Scenario) ([][]int, [][][]linkShare, error) {
	nC := len(lm.demand.Configs)
	nD := len(lm.world.DCs())
	cand := make([][]int, nC)
	loads := make([][][]linkShare, nC)
	for c := 0; c < nC; c++ {
		loads[c] = make([][]linkShare, nD)
		for _, x := range lm.allowed[c] {
			if sc.dcDown(x) {
				continue
			}
			ls, ok := scenarioPathLoads(lm, c, x, sc.Links)
			if !ok {
				continue
			}
			cand[c] = append(cand[c], x)
			loads[c][x] = ls
		}
		if len(cand[c]) == 0 {
			// Fall back to the best-ACL DC that is alive and routable
			// (the paper's min-ACL escape hatch, applied per scenario).
			if best, ok := bestReachableDC(lm, c, sc); ok {
				ls, _ := scenarioPathLoads(lm, c, best, sc.Links)
				cand[c] = []int{best}
				loads[c][best] = ls
				continue
			}
			// Some participant is cut off from every DC (the failed
			// links formed a cut). No provisioning decision can reach
			// them; serve the reachable participants from the best
			// alive DC and account only their traffic.
			best := partitionFallbackDC(lm, c, sc)
			if best < 0 {
				return nil, nil, fmt.Errorf("no DC alive in scenario %v", sc)
			}
			cand[c] = []int{best}
			loads[c][best] = partialPathLoads(lm, c, best, sc.Links)
		}
	}
	return cand, loads, nil
}

// scenarioPathLoads returns per-link loads for (config, DC) under link
// failures, reporting ok=false when some participant becomes unreachable.
func scenarioPathLoads(lm *LoadModel, c, x int, failedLinks []int) ([]linkShare, bool) {
	if len(failedLinks) == 0 {
		return lm.linkLoad[c][x], true
	}
	cfg := lm.demand.Configs[c]
	usesFailed := false
	for _, ls := range lm.linkLoad[c][x] {
		for _, f := range failedLinks {
			if ls.link == f {
				usesFailed = true
				break
			}
		}
	}
	if !usesFailed {
		return lm.linkLoad[c][x], true
	}
	for _, cc := range cfg.Spread {
		if lm.world.PathAvoidingSet(x, cc.Country, failedLinks) == nil {
			return nil, false
		}
	}
	return lm.pathLoadsMulti(cfg, x, failedLinks), true
}

// partitionFallbackDC picks the lowest-ACL alive DC for a config whose
// participants are partially unreachable under link failures.
func partitionFallbackDC(lm *LoadModel, c int, sc Scenario) int {
	best, bestACL := -1, 0.0
	for x := range lm.world.DCs() {
		if sc.dcDown(x) {
			continue
		}
		if a := lm.acl[c][x]; best < 0 || a < bestACL {
			best, bestACL = x, a
		}
	}
	return best
}

// partialPathLoads aggregates link loads for only the participants that
// remain reachable from DC x when the failed links are down.
func partialPathLoads(lm *LoadModel, c, x int, failedLinks []int) []linkShare {
	cfg := lm.demand.Configs[c]
	perLink := make(map[int]float64)
	mbps := cfg.Media.NetworkLoad()
	for _, cc := range cfg.Spread {
		path := lm.world.PathAvoidingSet(x, cc.Country, failedLinks)
		if path == nil {
			continue // behind the partition
		}
		for _, l := range path {
			perLink[l] += mbps * float64(cc.Count) / 1000
		}
	}
	return sortedShares(perLink)
}

func sortedShares(perLink map[int]float64) []linkShare {
	out := make([]linkShare, 0, len(perLink))
	for l, g := range perLink {
		out = append(out, linkShare{link: l, gbps: g})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].link < out[j].link })
	return out
}

func bestReachableDC(lm *LoadModel, c int, sc Scenario) (int, bool) {
	best, bestACL := -1, 0.0
	for x := range lm.world.DCs() {
		if sc.dcDown(x) {
			continue
		}
		if _, ok := scenarioPathLoads(lm, c, x, sc.Links); !ok {
			continue
		}
		if a := lm.acl[c][x]; best < 0 || a < bestACL {
			best, bestACL = x, a
		}
	}
	return best, best >= 0
}
