package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// HotPathAllocAnalyzer enforces the zero-allocation contract on annotated
// hot paths: a function whose doc comment carries //sblint:hotpath — and
// everything it transitively calls through static edges — must not
// heap-allocate. The analyzer flags:
//
//   - composite literals taken by address and map/slice literals
//   - make/new and channel/goroutine creation
//   - append growth and map-index inserts
//   - non-constant string concatenation and string<->[]byte conversions
//   - function literals (closure capture allocates)
//   - interface boxing at call arguments, returns, and assignments
//   - calls into a small list of known-allocating stdlib functions
//     (fmt.*, errors.New, strconv/strings formatters, time.After, ...)
//   - variadic calls that materialize their argument slice
//   - horizon edges (interface dispatch, func values): a dynamic call
//     cannot be proven allocation-free, so it must be justified
//
// Intentional allocations are justified in place with
//
//	//sblint:allowalloc(reason)
//
// on the offending line or the line above it; placed in a function's doc
// comment it exempts that whole body (its callees stay in the closure).
// The generic //sblint:allow hotpathalloc escape also works.
func HotPathAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "//sblint:hotpath closures must be heap-allocation-free (escape with //sblint:allowalloc(reason))",
		RunGraph: func(g *CallGraph) []Finding {
			return runHotPathAlloc(g)
		},
	}
}

var allowAllocRe = regexp.MustCompile(`^//\s*sblint:allowalloc\((.+)\)`)

// allocAllows indexes //sblint:allowalloc(reason) directives by file:line,
// mirroring allowSet semantics (the directive's line and the line below).
type allocAllows map[string]struct{}

func collectAllocAllows(pkgs []*Package) allocAllows {
	s := make(allocAllows)
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !allowAllocRe.MatchString(c.Text) {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					s[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = struct{}{}
					s[fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)] = struct{}{}
				}
			}
		}
	}
	return s
}

func (s allocAllows) has(pos token.Position) bool {
	_, ok := s[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	return ok
}

// stdlibAllocators lists stdlib functions known to allocate on every (or
// nearly every) call. Callees outside this list and outside the graph are
// assumed allocation-free — the list covers the allocation surface this
// repo's hot paths can plausibly reach; extend it as closures grow.
var stdlibAllocators = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Errorf": true, "fmt.Fprintf": true, "fmt.Printf": true,
	"errors.New":   true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true,
	"strings.ToUpper": true, "strings.ToLower": true, "strings.Join": true,
	"strings.Repeat": true, "strings.Replace": true, "strings.ReplaceAll": true,
	"strings.Split": true, "strings.Fields": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Strings": true, "sort.Ints": true,
	"time.After": true, "time.NewTimer": true, "time.NewTicker": true, "time.AfterFunc": true,
	"context.WithCancel": true, "context.WithTimeout": true,
	"context.WithDeadline": true, "context.WithValue": true,
	"bytes.NewReader": true, "strings.NewReader": true,
	"bufio.NewReader": true, "bufio.NewWriter": true, "bufio.NewReadWriter": true,
}

func runHotPathAlloc(g *CallGraph) []Finding {
	roots := g.rootsWithDirective("hotpath")
	if len(roots) == 0 {
		return nil
	}
	allows := collectAllocAllows(g.Pkgs)
	closure := g.Reachable(roots)
	nodes := make([]*FuncNode, 0, len(closure))
	for n := range closure {
		nodes = append(nodes, n)
	}
	sortNodes(g.Fset, nodes)
	var out []Finding
	for _, n := range nodes {
		out = append(out, checkHotFunc(g, n, allows)...)
	}
	return out
}

// checkHotFunc flags allocation sites in one closure member. A doc-level
// //sblint:allowalloc exempts the body (the function stays in the closure:
// its callees are still checked).
func checkHotFunc(g *CallGraph, n *FuncNode, allows allocAllows) []Finding {
	if docAllowsAlloc(n.Decl.Doc) {
		return nil
	}
	w := &hotWalker{g: g, n: n, allows: allows}
	// Walk statements, tracking map-index assignment targets so m[k] = v is
	// reported as an insert rather than a read.
	ast.Inspect(n.Decl.Body, w.visit)
	// Horizon edges: dynamic dispatch cannot be verified.
	for _, h := range n.Horizon {
		w.flag(h.Site.Pos(), "dynamic call through %s cannot be proven allocation-free", h.Desc)
	}
	// Static edges into known stdlib allocators.
	for _, e := range n.Calls {
		if e.Node != nil || e.Callee.Pkg() == nil {
			continue
		}
		key := e.Callee.Pkg().Name() + "." + e.Callee.Name()
		if stdlibAllocators[key] && e.Callee.Type().(*types.Signature).Recv() == nil {
			w.flag(e.Site.Pos(), "calls %s, which allocates", key)
		}
	}
	return w.out
}

func docAllowsAlloc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if allowAllocRe.MatchString(c.Text) {
			return true
		}
	}
	return false
}

type hotWalker struct {
	g      *CallGraph
	n      *FuncNode
	allows allocAllows
	out    []Finding
}

func (w *hotWalker) flag(pos token.Pos, format string, args ...any) {
	p := w.g.Fset.Position(pos)
	if w.allows.has(p) {
		return
	}
	name := w.n.Obj.Name()
	w.out = append(w.out, Finding{
		Pos:     p,
		Message: fmt.Sprintf(format, args...) + fmt.Sprintf(" (in hot-path closure via %s)", name),
	})
}

func (w *hotWalker) info() *types.Info { return w.n.Pkg.Info }

// isConst reports whether an expression folded to a compile-time constant
// (the compiler statically allocates those — no runtime cost).
func (w *hotWalker) isConst(e ast.Expr) bool {
	tv, ok := w.info().Types[e]
	return ok && tv.Value != nil
}

func (w *hotWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.info().Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (w *hotWalker) visit(node ast.Node) bool {
	switch x := node.(type) {
	case *ast.GoStmt:
		w.flag(x.Pos(), "go statement allocates a goroutine")
	case *ast.FuncLit:
		w.flag(x.Pos(), "function literal allocates (closure capture)")
		return true // still check the body
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				w.flag(cl.Pos(), "&composite literal escapes to the heap")
				return true
			}
		}
	case *ast.CompositeLit:
		switch w.underlying(x).(type) {
		case *types.Map:
			w.flag(x.Pos(), "map literal allocates")
		case *types.Slice:
			w.flag(x.Pos(), "slice literal allocates")
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD && isStringType(w.typeOf(x)) && !w.isConst(x) {
			w.flag(x.Pos(), "string concatenation allocates")
			return false // don't re-flag nested concats of the same chain
		}
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if _, isMap := w.underlyingOf(ix.X).(*types.Map); isMap {
					w.flag(ix.Pos(), "map insert may allocate")
				}
			}
		}
		if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(w.typeOf(x.Lhs[0])) {
			w.flag(x.Pos(), "string += allocates")
		}
	case *ast.CallExpr:
		w.visitCall(x)
	case *ast.ReturnStmt:
		w.checkReturns(x)
	}
	return true
}

func (w *hotWalker) underlying(e ast.Expr) types.Type {
	if t := w.typeOf(e); t != nil {
		return t.Underlying()
	}
	return nil
}

func (w *hotWalker) underlyingOf(e ast.Expr) types.Type { return w.underlying(e) }

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *hotWalker) visitCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := w.info().Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				w.flag(call.Pos(), "make allocates")
			case "new":
				w.flag(call.Pos(), "new allocates")
			case "append":
				w.flag(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	// Conversions: string([]byte), []byte(string) copy.
	if tv, ok := w.info().Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst, src := tv.Type, w.typeOf(call.Args[0])
			if convAllocates(dst, src) && !w.isConst(call.Args[0]) {
				w.flag(call.Pos(), "%s conversion copies", types.TypeString(dst, nil))
			}
		}
		return
	}
	// Signature-based checks: boxing at arguments, variadic slices.
	sigT := w.typeOf(fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	w.checkCallArgs(call, sig)
}

// convAllocates reports whether a conversion from src to dst copies memory.
func convAllocates(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	d, s := dst.Underlying(), src.Underlying()
	if isStringType(dst) && isByteSlice(s) {
		return true
	}
	if isByteSlice(d) && isStringType(src) {
		return true
	}
	return false
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkCallArgs flags interface boxing of concrete arguments and variadic
// slice materialization.
func (w *hotWalker) checkCallArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // pass-through slice, no new backing array
			}
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
			if i == np-1 {
				w.flag(call.Pos(), "variadic call materializes an argument slice")
			}
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		w.checkBox(arg, pt, "argument")
	}
}

// checkBox flags a concrete, non-constant value converted to an interface.
func (w *hotWalker) checkBox(expr ast.Expr, target types.Type, what string) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	at := w.typeOf(expr)
	if at == nil || types.IsInterface(at.Underlying()) {
		return // interface-to-interface: no box
	}
	if w.isConst(expr) || isNilExpr(w.info(), expr) {
		return
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if isPointerLike(at) {
		return // pointers/chans/maps/funcs fit in the iface word: no box
	}
	if st, ok := at.Underlying().(*types.Struct); ok && st.NumFields() == 0 {
		return // zero-size values box to the runtime's shared zerobase
	}
	w.flag(expr.Pos(), "%s boxes %s into %s", what,
		types.TypeString(at, types.RelativeTo(w.n.Pkg.TypesPkg)),
		types.TypeString(target, types.RelativeTo(w.n.Pkg.TypesPkg)))
}

// isPointerLike reports types whose interface representation needs no
// allocation (a single pointer word).
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	if tv.Value != nil && tv.Value.Kind() == constant.Unknown {
		return true
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	return false
}

// checkReturns flags boxing at return statements when a result type is an
// interface and the returned expression is concrete.
func (w *hotWalker) checkReturns(ret *ast.ReturnStmt) {
	sig, ok := w.n.Obj.Type().(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	if results.Len() != len(ret.Results) {
		return // naked return or multi-value call result: nothing boxed here
	}
	for i, e := range ret.Results {
		w.checkBox(e, results.At(i).Type(), "return value")
	}
}
