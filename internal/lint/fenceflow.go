package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// FenceFlowAnalyzer guards the epoch-fencing contract: every kvstore
// mutation issued from a controller persist/journal-drain path must go
// through the fence-arming typed wrappers (HSet, Set, Del, ...), never a
// raw Do/DoContext/Pipeline call that would bypass the FENCE prefix the
// client prepends to mutating commands.
//
// Entry points carry //sblint:fencepath in their doc comment. The analyzer
// walks the static call closure from each entry point and flags raw
// command-level calls (Do, DoContext, Pipeline, PipelineContext) on any
// fence-capable client — a named type that also declares SetFence — when
// the command verb is a mutating literal, or is not a literal at all (an
// unprovable write). As defense in depth, a raw *mutating-literal* call
// anywhere in a package that declares a fencepath entry point is flagged
// even outside the closure: such packages have standardized on the typed
// wrappers.
//
// The package that defines the fence-capable client is exempt — its typed
// wrappers are exactly where raw commands are supposed to live.
func FenceFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "fenceflow",
		Doc:  "mutations reachable from //sblint:fencepath entry points must use fence-arming typed wrappers, not raw Do(...)",
		RunGraph: func(g *CallGraph) []Finding {
			return runFenceFlow(g)
		},
	}
}

// mutatingVerbs mirrors kvstore.Mutates: the command verbs the store's
// fencing layer gates. Keep in sync with internal/kvstore/replication.go.
var mutatingVerbs = map[string]bool{
	"SET": true, "DEL": true, "INCR": true, "INCRBY": true, "HSET": true,
	"HCOPY": true, "EXPIRE": true, "PERSIST": true, "PEXPIREAT": true,
	"FLUSHALL": true, "SETLEASE": true, "DELLEASE": true, "LEASEGRANT": true,
	"LEASEDEL": true,
}

// rawCommandMethods are the command-level escape hatches on the client.
var rawCommandMethods = map[string]bool{
	"Do": true, "DoContext": true, "Pipeline": true, "PipelineContext": true,
}

func runFenceFlow(g *CallGraph) []Finding {
	roots := g.rootsWithDirective("fencepath")
	if len(roots) == 0 {
		return nil
	}
	closure := g.Reachable(roots)

	// Packages that declare at least one fencepath entry point get the
	// package-wide raw-mutation check.
	fencePkgs := make(map[*Package]bool)
	for _, r := range roots {
		fencePkgs[r.Pkg] = true
	}

	nodes := allNodes(g)
	sortNodes(g.Fset, nodes)

	var out []Finding
	for _, n := range nodes {
		inClosure := closure[n]
		if !inClosure && !fencePkgs[n.Pkg] {
			continue
		}
		for _, e := range n.Calls {
			f, ok := checkRawCall(g, n, e, inClosure)
			if ok {
				out = append(out, f)
			}
		}
	}
	return out
}

// allNodes returns every node in the graph (unsorted).
func allNodes(g *CallGraph) []*FuncNode {
	nodes := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	return nodes
}

// checkRawCall inspects one static edge for a raw command call on a
// fence-capable client.
func checkRawCall(g *CallGraph, n *FuncNode, e Edge, inClosure bool) (Finding, bool) {
	callee := e.Callee
	if !rawCommandMethods[callee.Name()] {
		return Finding{}, false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return Finding{}, false
	}
	recvT := deref(sig.Recv().Type())
	named, ok := recvT.(*types.Named)
	if !ok || !hasMethod(named, "SetFence") {
		return Finding{}, false
	}
	// The client's own package implements the wrappers in terms of the raw
	// calls; that is the blessed location.
	if named.Obj().Pkg() == n.Pkg.TypesPkg {
		return Finding{}, false
	}
	verb, isLit := commandVerb(n.Pkg, e.Site, callee.Name())
	switch {
	case isLit && mutatingVerbs[strings.ToUpper(verb)]:
		return Finding{
			Pos: g.Fset.Position(e.Site.Pos()),
			Message: fmt.Sprintf("raw %s(%q) bypasses the fence-arming typed wrappers (reached from a //sblint:fencepath entry point: use the %s wrapper)",
				callee.Name(), verb, wrapperHint(verb)),
		}, true
	case isLit:
		return Finding{}, false // read-only verb: fencing does not apply
	case inClosure:
		return Finding{
			Pos: g.Fset.Position(e.Site.Pos()),
			Message: fmt.Sprintf("raw %s with a non-constant command on a fence-capable client cannot be proven fenced (reached from a //sblint:fencepath entry point)",
				callee.Name()),
		}, true
	}
	return Finding{}, false
}

// commandVerb extracts the command verb from a raw call's first
// command-position argument when it is a string literal. Pipeline variants
// take [][]string; any literal verb inside counts (first mutating one wins).
func commandVerb(p *Package, call *ast.CallExpr, method string) (verb string, isLiteral bool) {
	argIdx := 0
	if strings.HasSuffix(method, "Context") {
		argIdx = 1
	}
	if len(call.Args) <= argIdx {
		return "", false
	}
	arg := ast.Unparen(call.Args[argIdx])
	if strings.HasPrefix(method, "Pipeline") {
		// [][]string literal: scan nested literals for a mutating verb.
		cl, ok := arg.(*ast.CompositeLit)
		if !ok {
			return "", false
		}
		var first string
		for _, el := range cl.Elts {
			inner, ok := ast.Unparen(el).(*ast.CompositeLit)
			if !ok || len(inner.Elts) == 0 {
				return "", false
			}
			v, ok := stringLit(inner.Elts[0])
			if !ok {
				return "", false
			}
			if first == "" {
				first = v
			}
			if mutatingVerbs[strings.ToUpper(v)] {
				return v, true
			}
		}
		return first, first != ""
	}
	v, ok := stringLit(arg)
	return v, ok
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// wrapperHint names the typed wrapper for a mutating verb.
func wrapperHint(verb string) string {
	switch strings.ToUpper(verb) {
	case "SET":
		return "Set"
	case "DEL":
		return "Del"
	case "INCR", "INCRBY":
		return "Incr"
	case "HSET":
		return "HSet/HSetContext"
	case "HCOPY":
		return "HCopyContext"
	default:
		return "typed"
	}
}

// hasMethod reports whether the named type (or its pointer receiver set)
// declares a method with the given name.
func hasMethod(named *types.Named, name string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}
