package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// floatComparePackages hold the LP pivoting and capacity-packing math where
// exact float equality silently hides NaN and accumulated-roundoff bugs.
var floatComparePackages = []string{
	"internal/lp",
	"internal/allocate",
	"internal/provision",
}

// FloatCompareAnalyzer flags == and != between floating-point operands in
// the numeric packages unless one side is an exact-zero sentinel (constant
// 0, the one value float arithmetic can test exactly against when used as
// an "unset" marker) or a named epsilon/tolerance. Everything else should
// compare through an epsilon: math.Abs(a-b) <= eps.
func FloatCompareAnalyzer() *Analyzer {
	return &Analyzer{
		Name:    "floatcompare",
		Doc:     "floats compare via epsilon, not ==/!=",
		Applies: func(rel string) bool { return pathIn(rel, floatComparePackages...) },
		Run:     runFloatCompare,
	}
}

func runFloatCompare(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, be.X) && !isFloat(p, be.Y) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) ||
				isEpsilonName(be.X) || isEpsilonName(be.Y) {
				return true
			}
			out = append(out, Finding{
				Pos:     p.Fset.Position(be.OpPos),
				Message: "float " + be.Op.String() + " comparison (use an epsilon, compare to a constant zero sentinel, or name the tolerance)",
			})
			return true
		})
	}
	return out
}

// isFloat reports whether e's type is a floating-point kind. Missing type
// information degrades to false (no finding), never to a false positive.
func isFloat(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time constant equal to zero
// (the literal 0, a named zero constant, or an expression folding to 0).
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isEpsilonName reports whether e is an identifier (or selector) whose name
// declares a tolerance: eps, epsilon, tol, tolerance, in any case, as a
// whole word or prefix/suffix ("pivotEps", "TolPrimal").
func isEpsilonName(e ast.Expr) bool {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	lower := strings.ToLower(name)
	for _, marker := range []string{"eps", "epsilon", "tol", "tolerance"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}
