package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Baseline is an accepted-findings file for incremental adoption: findings
// whose canonical rendering (with module-relative paths) appears in the
// baseline are suppressed, so a new analyzer can land with the existing
// debt frozen while any *new* finding still fails the build. The format is
// one canonical finding line per entry; blank lines and '#' comments are
// ignored. An empty baseline means "the module is clean and must stay so".
type Baseline struct {
	entries map[string]int // canonical line -> times allowed (dup-tolerant)
}

// LoadBaseline parses a baseline file. A missing file is an error — an
// intentionally empty baseline should be an empty committed file, not an
// absent one.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	b := &Baseline{entries: make(map[string]int)}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.entries[line]++
	}
	return b, nil
}

// Filter splits findings into new (not in the baseline) and suppressed
// (matched a baseline entry). Each baseline entry absorbs at most as many
// findings as times it is listed, so duplicates cannot mask growth.
func (b *Baseline) Filter(findings []Finding) (fresh, suppressed []Finding) {
	if b == nil {
		return findings, nil
	}
	budget := make(map[string]int, len(b.entries))
	for k, n := range b.entries {
		budget[k] = n
	}
	for _, f := range findings {
		key := f.String()
		if budget[key] > 0 {
			budget[key]--
			suppressed = append(suppressed, f)
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed
}

// FormatBaseline renders findings as baseline file content (sorted input
// assumed; Run already sorts canonically).
func FormatBaseline(findings []Finding) []byte {
	var buf bytes.Buffer
	buf.WriteString("# sblint baseline: accepted findings, one canonical line each.\n")
	buf.WriteString("# Regenerate with: go run ./cmd/sblint -write-baseline <path> ./...\n")
	for _, f := range findings {
		buf.WriteString(f.String())
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// MarshalFindings renders findings as a deterministic JSON array (the
// order is the canonical sort Run produced).
func MarshalFindings(findings []Finding) ([]byte, error) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
