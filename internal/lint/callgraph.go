package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural layer under the v2 analyzers: a call
// graph over the loaded package set. Static calls (package-level functions,
// methods invoked through concrete receivers, generic functions and methods)
// resolve to edges; calls the front end cannot resolve statically —
// interface dispatch, func values, fields of func type — are recorded as
// "horizon" edges so analyzers can see exactly where their reasoning stops
// instead of silently assuming the best.

// CallGraph is the package-set call graph. Nodes exist for every function
// or method with a body in the loaded packages; edges point at callees,
// which may be outside the set (stdlib, unselected packages) in which case
// Edge.Node is nil.
type CallGraph struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Nodes indexes by the *generic origin* func object, so instantiated
	// calls (F[int], (*S[T]).M) resolve to the single checked body.
	Nodes map[*types.Func]*FuncNode
}

// FuncNode is one function body in the graph.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls are statically resolved call sites, in source order.
	Calls []Edge
	// Horizon are dynamic call sites the graph cannot resolve, in source
	// order.
	Horizon []HorizonEdge
}

// Edge is one statically resolved call site.
type Edge struct {
	// Site is the call expression (in the caller's body).
	Site *ast.CallExpr
	// Callee is the resolved target, normalized to its generic origin.
	Callee *types.Func
	// Node is the callee's body when it is in the graph; nil for callees
	// outside the loaded set (stdlib and friends).
	Node *FuncNode
}

// HorizonEdge is one dynamic call site the graph cannot see through.
type HorizonEdge struct {
	Site *ast.CallExpr
	// Kind classifies the dispatch: "interface", "func-value".
	Kind string
	// Desc names the call target as well as it can be named
	// ("(io.Writer).Write", "func value c.onLead").
	Desc string
}

// BuildCallGraph constructs the graph over the given packages. Cross-package
// edges resolve whenever both sides were loaded in the same Load pass (the
// loader type-checks the whole module with a shared importer, so the func
// objects are identical on both sides).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Pkgs: pkgs, Nodes: make(map[*types.Func]*FuncNode)}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	// Pass 1: one node per declared body.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Name == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // tolerate typecheck holes
				}
				g.Nodes[origin(obj)] = &FuncNode{Obj: origin(obj), Decl: fd, Pkg: p}
			}
		}
	}
	// Pass 2: resolve call sites.
	for _, n := range g.Nodes {
		g.resolveCalls(n)
	}
	return g
}

// origin maps an instantiated generic func/method to its generic form; for
// non-generic functions it is the identity.
func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// NodeFor returns the body node for a (possibly instantiated) func object,
// nil when its body is outside the graph.
func (g *CallGraph) NodeFor(fn *types.Func) *FuncNode {
	return g.Nodes[origin(fn)]
}

// resolveCalls walks one body, classifying every call expression (including
// those inside nested function literals — a FuncLit's calls belong to its
// enclosing declaration for reachability purposes).
func (g *CallGraph) resolveCalls(n *FuncNode) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		g.classify(n, info, call)
		return true
	})
}

// classify resolves one call expression into a static edge, a horizon edge,
// or nothing (conversions, builtins — the per-analyzer body walks handle
// those directly).
func (g *CallGraph) classify(n *FuncNode, info *types.Info, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) / m[T1,T2](...): unwrap the index.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fn].(type) {
		case *types.Func: // package-level function (possibly generic)
			n.addEdge(g, call, obj)
		case *types.Builtin, *types.TypeName, nil:
			// builtin or conversion: body walks see these directly
		case *types.Var: // func value
			n.Horizon = append(n.Horizon, HorizonEdge{
				Site: call, Kind: "func-value",
				Desc: "func value " + fn.Name,
			})
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				callee, _ := sel.Obj().(*types.Func)
				if callee == nil {
					return
				}
				recv := sel.Recv()
				if types.IsInterface(deref(recv)) {
					n.Horizon = append(n.Horizon, HorizonEdge{
						Site: call, Kind: "interface",
						Desc: fmt.Sprintf("(%s).%s", types.TypeString(recv, types.RelativeTo(n.Pkg.TypesPkg)), callee.Name()),
					})
					return
				}
				n.addEdge(g, call, callee)
			case types.FieldVal: // struct field of func type, called
				n.Horizon = append(n.Horizon, HorizonEdge{
					Site: call, Kind: "func-value",
					Desc: "func-typed field " + fn.Sel.Name,
				})
			case types.MethodExpr:
				if callee, ok := info.Uses[fn.Sel].(*types.Func); ok {
					n.addEdge(g, call, callee)
				}
			}
			return
		}
		// No selection: qualified identifier (pkg.F) or conversion (pkg.T).
		switch obj := info.Uses[fn.Sel].(type) {
		case *types.Func:
			n.addEdge(g, call, obj)
		case *types.Var: // imported func-typed var
			n.Horizon = append(n.Horizon, HorizonEdge{
				Site: call, Kind: "func-value",
				Desc: "func value " + fn.Sel.Name,
			})
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is inspected inline as part
		// of the enclosing declaration, so there is nothing to resolve.
	default:
		// Calls through arbitrary expressions ((m[k])(x), chan receives of
		// funcs, ...) — dynamic.
		n.Horizon = append(n.Horizon, HorizonEdge{Site: call, Kind: "func-value", Desc: "dynamic call"})
	}
}

func (n *FuncNode) addEdge(g *CallGraph, call *ast.CallExpr, callee *types.Func) {
	o := origin(callee)
	n.Calls = append(n.Calls, Edge{Site: call, Callee: o, Node: g.Nodes[o]})
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// Reachable returns the transitive closure of the graph from the given
// roots, following static edges only (horizon edges are surfaced to the
// analyzers at the node where they occur, not traversed).
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	var walk func(n *FuncNode)
	walk = func(n *FuncNode) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, e := range n.Calls {
			walk(e.Node)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// rootsWithDirective returns every FuncNode whose doc comment carries the
// given //sblint:<directive> marker, in deterministic (position) order.
func (g *CallGraph) rootsWithDirective(directive string) []*FuncNode {
	var roots []*FuncNode
	for _, n := range g.Nodes {
		if hasDirective(n.Decl.Doc, directive) {
			roots = append(roots, n)
		}
	}
	sortNodes(g.Fset, roots)
	return roots
}

// hasDirective reports whether a comment group contains a line-comment of
// the exact form //sblint:<name> (optionally followed by text).
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if directiveName(c.Text) == name {
			return true
		}
	}
	return false
}

// directiveName extracts "hotpath" from "//sblint:hotpath ..." ("" when the
// comment is not an sblint directive).
func directiveName(text string) string {
	const prefix = "//sblint:"
	if len(text) < len(prefix) || text[:len(prefix)] != prefix {
		return ""
	}
	rest := text[len(prefix):]
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case ' ', '\t', '(':
			return rest[:i]
		}
	}
	return rest
}

func sortNodes(fset *token.FileSet, nodes []*FuncNode) {
	posLess := func(a, b *FuncNode) bool {
		pa, pb := fset.Position(a.Decl.Pos()), fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Line < pb.Line
	}
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && posLess(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}
