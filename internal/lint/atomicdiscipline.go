package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicDisciplineAnalyzer enforces all-or-nothing atomics: once a field or
// package-level variable is touched through sync/atomic anywhere in the
// module, every other access must be atomic too. Mixing
// atomic.AddInt64(&s.n, 1) on one goroutine with a plain `s.n++` or
// `v := s.n` on another is a data race the race detector only catches when
// the schedule cooperates; this analyzer catches it structurally.
//
// Two families are covered:
//
//   - func-style atomics: a variable whose address is passed to a
//     sync/atomic function (AddInt64, LoadUint32, CompareAndSwap..., ...)
//     is "atomic"; any plain read or write of it elsewhere is flagged.
//   - typed atomics (atomic.Int64, atomic.Uint32, atomic.Bool, ...): the
//     type system already forces Load/Store/Add, so the only plain access
//     is copying or overwriting the whole value — both flagged.
//
// Composite-literal initialization (zero-value construction before the
// value is shared) is exempt. Cross-package accesses are checked: the
// analyzer runs over the whole loaded package set.
func AtomicDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomicdiscipline",
		Doc:  "a field touched via sync/atomic anywhere must never be read or written plainly elsewhere",
		RunGraph: func(g *CallGraph) []Finding {
			return runAtomicDiscipline(g)
		},
	}
}

// atomicFuncs are the sync/atomic package functions whose first pointer
// argument marks its target as atomically-accessed.
func isAtomicFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || sig.Params().Len() == 0 {
		return false
	}
	_, ptr := sig.Params().At(0).Type().(*types.Pointer)
	return ptr
}

// typedAtomic reports whether t is one of sync/atomic's typed wrappers.
func typedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func runAtomicDiscipline(g *CallGraph) []Finding {
	// Pass 1: collect func-style atomic targets (&x passed to sync/atomic)
	// and the exact sites of those sanctioned accesses.
	atomicVars := make(map[*types.Var]token.Pos) // var -> first atomic site
	sanctioned := make(map[ast.Expr]bool)        // operand exprs inside atomic calls
	for _, p := range g.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
				if !ok || !isAtomicFunc(fn) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					target := ast.Unparen(un.X)
					if v := varOf(p.Info, target); v != nil {
						if _, seen := atomicVars[v]; !seen {
							atomicVars[v] = call.Pos()
						}
						sanctioned[target] = true
					}
				}
				return true
			})
		}
	}

	var out []Finding
	// Pass 2: flag plain accesses of func-style atomic vars, and plain
	// copies/overwrites of typed-atomic fields.
	for _, p := range g.Pkgs {
		for _, f := range p.Files {
			w := &atomicWalker{p: p, atomicVars: atomicVars, sanctioned: sanctioned}
			w.walk(f, nil)
			out = append(out, w.out...)
		}
	}
	return out
}

// varOf resolves a selector or identifier to the variable object it
// denotes (field or package-level var); nil for locals and everything else.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		if v != nil && (v.IsField() || isPackageLevel(v)) {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		v, _ := info.Uses[x.Sel].(*types.Var)
		if v != nil && isPackageLevel(v) {
			return v
		}
	}
	return nil
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// atomicWalker walks a file with a parent stack so it can tell a plain
// access from a sanctioned one (method receiver, atomic call operand,
// composite-literal init).
type atomicWalker struct {
	p          *Package
	atomicVars map[*types.Var]token.Pos
	sanctioned map[ast.Expr]bool
	out        []Finding
}

func (w *atomicWalker) flag(pos token.Pos, format string, args ...any) {
	w.out = append(w.out, Finding{
		Pos:     w.p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

func (w *atomicWalker) walk(node ast.Node, stack []ast.Node) {
	if node == nil {
		return
	}
	switch x := node.(type) {
	case *ast.SelectorExpr:
		w.checkAccess(x, stack)
	case *ast.Ident:
		w.checkAccess(x, stack)
	}
	stack = append(stack, node)
	for _, child := range childNodes(node) {
		w.walk(child, stack)
	}
}

// childNodes enumerates direct AST children via ast.Inspect's depth
// bookkeeping.
func childNodes(node ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if first { // the node itself
			first = false
			return true
		}
		out = append(out, n)
		return false // do not descend further; walk recurses
	})
	return out
}

// checkAccess decides whether one use of a variable-denoting expression is
// a plain (flagged) access.
func (w *atomicWalker) checkAccess(e ast.Expr, stack []ast.Node) {
	v := varOf(w.p.Info, e)
	if v == nil {
		return
	}
	parent := parentOf(stack)
	// Skip the Sel half of a selector (the selector expr itself was
	// checked) and the X half of a qualified name.
	if sel, ok := parent.(*ast.SelectorExpr); ok {
		if id, isID := e.(*ast.Ident); isID && (sel.Sel == id || sel.X == id) {
			return
		}
	}
	if _, funcStyle := w.atomicVars[v]; funcStyle {
		if w.plainAccess(e, stack) {
			w.flag(e.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere; use atomic operations everywhere", v.Name())
		}
		return
	}
	// Typed atomics: flag whole-value copies and overwrites.
	if v.IsField() && typedAtomic(v.Type()) {
		if w.typedPlainAccess(e, stack) {
			w.flag(e.Pos(), "%s is an %s; copy or reassignment races with its atomic methods", v.Name(),
				types.TypeString(v.Type(), types.RelativeTo(w.p.TypesPkg)))
		}
	}
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func grandparentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// plainAccess reports whether a func-style atomic variable's use is plain:
// not the operand of a sanctioned &x inside an atomic call, not a
// composite-literal key, not inside the declaring struct's method that
// merely takes its address for an atomic call.
func (w *atomicWalker) plainAccess(e ast.Expr, stack []ast.Node) bool {
	if w.sanctioned[e] {
		return false
	}
	parent := parentOf(stack)
	switch p := parent.(type) {
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			// Address taken outside an atomic call: could flow anywhere;
			// treat as sanctioned only when the atomic pass saw it.
			return !w.sanctioned[ast.Unparen(p.X)]
		}
	case *ast.KeyValueExpr:
		if p.Key == e {
			return false // composite-literal field name
		}
		if _, inLit := grandparentOf(stack).(*ast.CompositeLit); inLit {
			return false // zero-to-initial construction
		}
	}
	return true
}

// typedPlainAccess reports whether a typed-atomic field use is a copy or
// reassignment (anything but a method call on it or taking its address).
func (w *atomicWalker) typedPlainAccess(e ast.Expr, stack []ast.Node) bool {
	parent := parentOf(stack)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// s.counter.Load(): the field is the X of a method selector.
		if p.X == e {
			return false
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return false // &s.counter handed to something atomic-aware
		}
	case *ast.KeyValueExpr:
		return false // composite-literal init
	}
	return true
}
