package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// LockDisciplineAnalyzer enforces "// guarded by <mu>" field annotations:
// any access to an annotated field from a method of the owning struct must
// be dominated by a Lock/RLock of that mutex (a field of the same struct).
//
// The analysis is deliberately conservative and annotation-driven:
//
//   - Only fields carrying "// guarded by <mu>" in their comment are
//     tracked; unannotated structs produce no findings.
//   - Lock state is tracked linearly through a method body. A Lock taken
//     inside a branch, loop, or closure does not count as held after it —
//     a mutex "dominates" an access only if it is locked on every path
//     reaching it.
//   - `defer recv.mu.Unlock()` keeps the mutex held for the rest of the
//     body; an inline Unlock releases it at that point.
//   - Function literals run where they are written (the synchronous
//     callback case) and inherit the current lock state — except bodies of
//     `go` and `defer` statements, which run later and start unlocked.
//   - A method whose contract is "caller holds mu" declares it with a
//     "//sblint:holds <mu>" line in its doc comment; the analyzer then
//     also checks that annotated helpers are not themselves re-locking.
//
// Accesses through anything but the receiver identifier (aliases, other
// instances) are out of scope, as are plain functions: the annotation
// convention is for methods of the synchronized type.
func LockDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockdiscipline",
		Doc:  "accesses to '// guarded by <mu>' fields must hold that mutex",
		Run:  runLockDiscipline,
	}
}

var (
	guardedRe = regexp.MustCompile(`guarded by (\w+)`)
	holdsRe   = regexp.MustCompile(`^//\s*sblint:holds\s+(\w+(?:\s+\w+)*)\s*$`)
)

// guardedFields maps struct type name -> field name -> guarding mutex name.
type guardedFields map[string]map[string]string

// collectGuarded finds "// guarded by <mu>" annotations on struct fields.
// The annotation may sit in the field's doc comment or its trailing
// same-line comment.
func collectGuarded(p *Package) guardedFields {
	g := make(guardedFields)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field.Doc)
				if mu == "" {
					mu = guardAnnotation(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if g[ts.Name.Name] == nil {
						g[ts.Name.Name] = make(map[string]string)
					}
					g[ts.Name.Name][name.Name] = mu
				}
			}
			return true
		})
	}
	return g
}

func guardAnnotation(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// holdsAnnotations returns the mutexes a method's doc comment declares as
// held by the caller.
func holdsAnnotations(fd *ast.FuncDecl) []string {
	if fd.Doc == nil {
		return nil
	}
	var out []string
	for _, c := range fd.Doc.List {
		if m := holdsRe.FindStringSubmatch(c.Text); m != nil {
			out = append(out, strings.Fields(m[1])...)
		}
	}
	return out
}

func runLockDiscipline(p *Package) []Finding {
	guarded := collectGuarded(p)
	if len(guarded) == 0 {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv, typeName := receiverName(fd)
			fields := guarded[typeName]
			if recv == "" || len(fields) == 0 {
				continue
			}
			w := &lockWalker{p: p, recv: recv, fields: fields}
			held := make(map[string]bool)
			for _, mu := range holdsAnnotations(fd) {
				held[mu] = true
			}
			w.stmts(fd.Body.List, held)
			out = append(out, w.findings...)
		}
	}
	return out
}

// lockWalker tracks, per statement, which receiver mutexes are held.
type lockWalker struct {
	p        *Package
	recv     string
	fields   map[string]string // guarded field -> mutex
	findings []Finding
}

// copyHeld snapshots the lock state for a branch: state changes inside the
// branch must not leak to the code after it.
func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// recvMutexCall matches recv.<mu>.<method>() and returns (mu, method).
func (w *lockWalker) recvMutexCall(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || id.Name != w.recv {
		return "", ""
	}
	return inner.Sel.Name, sel.Sel.Name
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if mu, method := w.recvMutexCall(call); mu != "" {
				switch method {
				case "Lock", "RLock":
					held[mu] = true
					return
				case "Unlock", "RUnlock":
					held[mu] = false
					return
				}
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if mu, method := w.recvMutexCall(s.Call); mu != "" && (method == "Unlock" || method == "RUnlock") {
			return // releases at return; held for the rest of the body
		}
		// The deferred call runs at return time: its body (for a literal)
		// starts with no locks assumed, its arguments evaluate now.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(fl.Body.List, make(map[string]bool))
		} else {
			w.expr(s.Call.Fun, held)
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(fl.Body.List, make(map[string]bool))
		} else {
			w.expr(s.Call.Fun, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := copyHeld(held)
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e, held)
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, copyHeld(held))
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// expr flags guarded-field accesses and descends into nested expressions.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok && id.Name == w.recv {
			if mu, guarded := w.fields[e.Sel.Name]; guarded && !held[mu] {
				w.findings = append(w.findings, Finding{
					Pos:     w.p.Fset.Position(e.Pos()),
					Message: "access to " + w.recv + "." + e.Sel.Name + " (guarded by " + mu + ") without holding " + mu,
				})
			}
			return
		}
		w.expr(e.X, held)
	case *ast.CallExpr:
		w.expr(e.Fun, held)
		for _, a := range e.Args {
			w.expr(a, held)
		}
	case *ast.FuncLit:
		// Runs where it is written (synchronous callback); go/defer
		// literals are handled at statement level.
		w.stmts(e.Body.List, copyHeld(held))
	case *ast.UnaryExpr:
		w.expr(e.X, held)
	case *ast.BinaryExpr:
		w.expr(e.X, held)
		w.expr(e.Y, held)
	case *ast.ParenExpr:
		w.expr(e.X, held)
	case *ast.StarExpr:
		w.expr(e.X, held)
	case *ast.IndexExpr:
		w.expr(e.X, held)
		w.expr(e.Index, held)
	case *ast.IndexListExpr:
		w.expr(e.X, held)
		for _, i := range e.Indices {
			w.expr(i, held)
		}
	case *ast.SliceExpr:
		w.expr(e.X, held)
		w.expr(e.Low, held)
		w.expr(e.High, held)
		w.expr(e.Max, held)
	case *ast.TypeAssertExpr:
		w.expr(e.X, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, held)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, held)
		w.expr(e.Value, held)
	}
}
