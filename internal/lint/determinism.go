package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPackages are the module-relative paths whose outputs must be
// pure functions of their inputs and seeds: every experiment in
// EXPERIMENTS.md replays through them, and the paper's 15-month-replay
// methodology only holds if the same seed yields the same bytes.
var deterministicPackages = []string{
	"internal/trace",
	"internal/sim",
	"internal/des",
	"internal/eval",
	"internal/forecast",
	"internal/predict",
	"internal/provision",
	"internal/allocate",
	"internal/lp",
	"internal/model",
	"internal/geo",
	"internal/records",
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than touching the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// timeForbidden are the time package functions that read the wall clock.
// (time.Sleep is deliberately not listed: it changes timing, not output.)
var timeForbidden = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// DeterminismAnalyzer forbids wall-clock reads, global math/rand use, and
// map-range-order-dependent appends in the deterministic packages. Escape
// hatch: //sblint:allow nondeterminism -- <justification>.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name:     "determinism",
		AllowKey: "nondeterminism",
		Doc:      "replay packages must be pure functions of their seeds",
		Applies:  func(rel string) bool { return pathIn(rel, deterministicPackages...) },
		Run:      runDeterminism,
	}
}

func runDeterminism(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		aliases := importAliases(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgPath, fn := resolvePkgFunc(p, n, aliases)
				switch {
				case pkgPath == "time" && timeForbidden[fn]:
					out = append(out, Finding{
						Pos:     p.Fset.Position(n.Pos()),
						Message: "wall-clock read time." + fn + " in a deterministic package (inject the clock or derive it from the trace)",
					})
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[fn] && !isTypeRef(p, n.Sel):
					out = append(out, Finding{
						Pos:     p.Fset.Position(n.Pos()),
						Message: "global math/rand." + fn + " in a deterministic package (use a seeded *rand.Rand)",
					})
				}
			case *ast.BlockStmt:
				out = append(out, mapRangeAppendsIn(p, n.List)...)
			case *ast.CaseClause:
				out = append(out, mapRangeAppendsIn(p, n.Body)...)
			case *ast.CommClause:
				out = append(out, mapRangeAppendsIn(p, n.Body)...)
			}
			return true
		})
	}
	return out
}

// importAliases maps the in-file package identifier to its import path.
func importAliases(f *ast.File) map[string]string {
	m := make(map[string]string)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		m[name] = path
	}
	return m
}

// resolvePkgFunc resolves sel to (importPath, funcName) when its X is a
// package identifier, preferring type information (shadowing-proof) and
// falling back to the file's import table when type info is incomplete.
func resolvePkgFunc(p *Package, sel *ast.SelectorExpr, aliases map[string]string) (string, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if obj, known := p.Info.Uses[id]; known {
		pn, isPkg := obj.(*types.PkgName)
		if !isPkg {
			return "", "" // a value named like a package, not an import
		}
		return pn.Imported().Path(), sel.Sel.Name
	}
	return aliases[id.Name], sel.Sel.Name
}

// isTypeRef reports whether the selector names a type (rand.Rand in a
// declaration) rather than a function or variable.
func isTypeRef(p *Package, sel *ast.Ident) bool {
	if obj, ok := p.Info.Uses[sel]; ok {
		_, isType := obj.(*types.TypeName)
		return isType
	}
	// No type info: fall back to the exported type names of math/rand{,/v2}.
	switch sel.Name {
	case "Rand", "Source", "Source64", "Zipf", "PCG", "ChaCha8":
		return true
	}
	return false
}

// mapRangeAppendsIn flags `for k := range m { ... x = append(x, ...) ... }`
// where m is a map and x outlives the loop: the append order then depends
// on Go's randomized map iteration. The one idiom recognized as safe is
// collect-then-sort — a sort.* / slices.Sort* call on x later in the same
// statement list. Anything else needs a sort or an explicit
// //sblint:allow nondeterminism with justification.
func mapRangeAppendsIn(p *Package, list []ast.Stmt) []Finding {
	var out []Finding
	for i, s := range list {
		rs, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for j, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p, call) || j >= len(as.Lhs) {
					continue
				}
				target, ok := as.Lhs[j].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[target]
				if obj == nil {
					obj = p.Info.Uses[target]
				}
				if obj == nil {
					continue
				}
				// Declared inside the loop body => the slice dies with
				// the iteration and its order cannot leak out.
				if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
					continue
				}
				if sortedLater(p, list[i+1:], target.Name) {
					continue
				}
				out = append(out, Finding{
					Pos:     p.Fset.Position(as.Pos()),
					Message: "append to " + target.Name + " while ranging over a map: iteration order is randomized (sort keys first or sort the result)",
				})
			}
			return true
		})
	}
	return out
}

// sortedLater reports whether a later statement in the same list sorts the
// named slice (sort.Strings(x), sort.Slice(x, ...), slices.Sort(x), ...).
func sortedLater(p *Package, rest []ast.Stmt, name string) bool {
	for _, s := range rest {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, _ := resolvePkgFunc(p, sel, nil)
		if pkg != "sort" && pkg != "slices" {
			continue
		}
		// The slice may be wrapped (sort.Sort(sort.Reverse(sort.Float64Slice(x))));
		// any mention inside the call's arguments counts.
		found := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == name {
					found = true
				}
				return !found
			})
		}
		if found {
			return true
		}
	}
	return false
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(p *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj := p.Info.Uses[id]; obj != nil {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}
