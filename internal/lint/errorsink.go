package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrorSinkAnalyzer flags calls at statement position (including go/defer)
// that return an error which nothing receives. Stock `go vet` only checks a
// fixed list of stdlib functions; this covers every call with an error in
// its result tuple.
//
// An explicit discard (`_ = f()` / `x, _ := f()`) is a deliberate,
// greppable decision and is not flagged. Writers with sticky error
// semantics whose failures surface at a later checked call are exempt:
// methods on *bufio.Writer, *bytes.Buffer, and *strings.Builder (the
// first's errors resurface at Flush; the latter two cannot fail), and
// fmt.Print/Printf/Println to stdout, matching vet's own tolerance.
// Telemetry sinks are exempt too: metric methods from internal/obs
// (Inc/Add/Observe/Set), span lifecycle methods from internal/obs/span
// (End/SetStatus/SetAttr/SetError/ExportSpan), and log/slog calls. All are
// fire-and-forget by contract, and instrumentation sites must not need
// `_ =` noise.
func ErrorSinkAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errorsink",
		Doc:  "error results must be checked or explicitly discarded",
		Run:  runErrorSink,
	}
}

func runErrorSink(p *Package) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr, how string) {
		if !returnsError(p, call) || exemptSink(p, call) {
			return
		}
		out = append(out, Finding{
			Pos:     p.Fset.Position(call.Pos()),
			Message: how + " (check it or discard explicitly with _ =)",
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(call, "error result dropped")
				}
			case *ast.DeferStmt:
				report(n.Call, "deferred call drops its error")
			case *ast.GoStmt:
				report(n.Call, "goroutine call drops its error")
			}
			return true
		})
	}
	return out
}

// returnsError reports whether the call's result tuple contains an error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false // type conversion or builtin
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptReceivers are types whose dropped write errors are, by design,
// either impossible or deferred to a later checked call (matched with the
// pointer star stripped, so value and pointer receivers both hit).
var exemptReceivers = map[string]bool{
	"bufio.Writer":    true,
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

// exemptFuncs are package-level functions whose error is conventionally
// ignored (terminal output).
var exemptFuncs = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

// obsSinkMethods are the fire-and-forget metric sink methods on internal/obs
// types. Instrumentation calls them at statement position everywhere;
// telemetry failure is not an error the caller can act on, so the sink
// contract is "never report" and the sites stay free of `_ =` noise. Today's
// sinks return nothing (the exemption is vacuous for them); it pins the
// contract so an error-returning sink variant cannot sneak that noise in.
var obsSinkMethods = map[string]bool{
	"Inc":     true,
	"Add":     true,
	"Observe": true,
	"Set":     true,
}

// spanSinkMethods are the fire-and-forget span lifecycle methods on
// internal/obs/span types, under the same contract: a span that fails to
// export is lost telemetry, never an error the traced code handles.
var spanSinkMethods = map[string]bool{
	"End":        true,
	"SetStatus":  true,
	"SetAttr":    true,
	"SetError":   true,
	"ExportSpan": true,
}

// isObsSink reports whether the selection is a fire-and-forget telemetry
// sink: a metric method on an internal/obs type, a span lifecycle method on
// an internal/obs/span type, or any log/slog method (logging shares the
// contract — slog.Handler.Handle returns an error no call site acts on).
func isObsSink(s *types.Selection, name string) bool {
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	switch {
	case strings.HasSuffix(path, "internal/obs"):
		return obsSinkMethods[name]
	case strings.HasSuffix(path, "internal/obs/span"):
		return spanSinkMethods[name]
	case path == "log/slog":
		return true
	}
	return false
}

func exemptSink(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Method with an exempt receiver type.
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return exemptReceivers[strings.TrimPrefix(s.Recv().String(), "*")] ||
			isObsSink(s, sel.Sel.Name)
	}
	// Package function on the exempt list.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
			// All of log/slog is a telemetry sink (see isObsSink).
			if pn.Imported().Path() == "log/slog" {
				return true
			}
			qual := pn.Imported().Path() + "." + sel.Sel.Name
			if exemptFuncs[qual] {
				return true
			}
			// fmt.Fprint* to the terminal is Print* in disguise, and to a
			// sticky-error writer the failure resurfaces at the checked
			// Flush — both mirror the direct-call exemptions above.
			switch qual {
			case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
				return len(call.Args) > 0 &&
					(isStdStream(p, call.Args[0]) || isExemptWriter(p, call.Args[0]))
			}
		}
	}
	return false
}

// isExemptWriter reports whether e's static type is one of the
// sticky/never-fail writer types.
func isExemptWriter(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return exemptReceivers[strings.TrimPrefix(tv.Type.String(), "*")]
}

// isStdStream reports whether e is os.Stdout or os.Stderr.
func isStdStream(p *Package, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path() == "os"
	}
	return id.Name == "os"
}
