package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture materializes files (module-relative path -> source) as a
// throwaway module, loads it, and runs the single named analyzer. Expected
// findings are declared in the fixture sources themselves with analysistest
// style comments: `// want "substring"` on the offending line (several
// quoted substrings may follow one want). The test fails on any missed or
// unexpected finding.
func runFixture(t *testing.T, analyzer *Analyzer, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("fixture does not typecheck: %v", terr)
		}
	}

	type key struct {
		file string
		line int
	}
	want := make(map[key][]string)
	wantRe := regexp.MustCompile(`//\s*want\s+(.*)$`)
	quoted := regexp.MustCompile(`"([^"]*)"`)
	for rel, src := range files {
		for i, line := range strings.Split(src, "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			k := key{filepath.Join(dir, filepath.FromSlash(rel)), i + 1}
			for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
				want[k] = append(want[k], q[1])
			}
		}
	}

	got := Run(pkgs, []*Analyzer{analyzer})
	for _, f := range got {
		k := key{f.Pos.Filename, f.Pos.Line}
		subs := want[k]
		matched := -1
		for i, s := range subs {
			if strings.Contains(f.Message, s) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		want[k] = append(subs[:matched], subs[matched+1:]...)
		if len(want[k]) == 0 {
			delete(want, k)
		}
	}
	for k, subs := range want {
		for _, s := range subs {
			t.Errorf("missing finding at %s:%d matching %q", filepath.Base(k.file), k.line, s)
		}
	}
}

func TestDeterminismAnalyzer(t *testing.T) {
	runFixture(t, DeterminismAnalyzer(), map[string]string{
		"internal/trace/fixture.go": `package trace

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now()          // want "wall-clock read time.Now"
	d := time.Since(t)       // want "wall-clock read time.Since"
	_ = time.Until(t)        // want "wall-clock read time.Until"
	return d.Nanoseconds()
}

func allowed() time.Time {
	//sblint:allow nondeterminism -- test fixture justification
	return time.Now()
}

func globalRand() (int, float64) {
	return rand.Intn(10), rand.Float64() // want "global math/rand.Intn" "global math/rand.Float64"
}

func seeded(seed int64) *rand.Rand { // rand.Rand is a type, not a global read
	return rand.New(rand.NewSource(seed)) // constructors are fine
}

func mapOrder(m map[string]int) ([]string, []string) {
	var leak []string
	for k := range m { // iteration order is randomized
		leak = append(leak, k) // want "append to leak while ranging over a map"
	}
	var sorted []string
	for k := range m {
		sorted = append(sorted, k) // collect-then-sort is the blessed idiom
	}
	sort.Strings(sorted)
	return leak, sorted
}
`,
		"internal/web/fixture.go": `package web

import "time"

// Not a deterministic package: wall clock is fine here.
func Uptime(start time.Time) time.Duration { return time.Since(start) }
`,
	})
}

func TestLockDisciplineAnalyzer(t *testing.T) {
	runFixture(t, LockDisciplineAnalyzer(), map[string]string{
		"internal/controller/fixture.go": `package controller

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	hi int // guarded by mu

	free int // unannotated fields are not checked
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++ // held: fine
	if c.n > c.hi {
		c.hi = c.n
	}
	c.mu.Unlock()
	c.free++
}

func (c *counter) Racy() int {
	return c.n // want "without holding mu"
}

func (c *counter) UnlockedAfter() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want "without holding mu"
}

func (c *counter) Deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n // deferred unlock keeps the lock held to the end
}

//sblint:holds mu
func (c *counter) bumpLocked() {
	c.n++ // caller holds mu by contract
}

func (c *counter) Escapes() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "without holding mu"
	}()
}
`,
	})
}

func TestLockDisciplineLeaseRenewalGoroutine(t *testing.T) {
	// The shape of controller.Elector: leadership state guarded by a mutex,
	// mutated from a renewal goroutine. The analyzer must follow the guarded
	// fields into the goroutine body — a renewal loop that forgets the lock
	// is exactly the race the fencing machinery cannot survive.
	runFixture(t, LockDisciplineAnalyzer(), map[string]string{
		"internal/controller/lease_fixture.go": `package controller

import (
	"sync"
	"time"
)

type elector struct {
	mu      sync.Mutex
	leading bool  // guarded by mu
	epoch   int64 // guarded by mu

	stopCh chan struct{}
}

func (e *elector) renewLoop(renew time.Duration) {
	t := time.NewTicker(renew)
	defer t.Stop()
	go func() {
		for {
			select {
			case <-e.stopCh:
				return
			case <-t.C:
				e.mu.Lock()
				was := e.leading // held: fine
				e.mu.Unlock()
				if !was {
					continue
				}
				e.epoch++ // want "without holding mu"
			}
		}
	}()
}

func (e *elector) observe() (bool, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.leading, e.epoch // deferred unlock holds to the end
}

func (e *elector) hintRace() bool {
	return e.leading // want "without holding mu"
}

//sblint:holds mu
func (e *elector) wonLocked(epoch int64) {
	e.leading = true // caller holds mu by contract
	e.epoch = epoch
}
`,
	})
}

func TestLockDisciplineGuardedShardMap(t *testing.T) {
	// The shape of shard.Manager: an ownership map guarded by a mutex,
	// flipped by per-shard election callbacks and timer bodies, read by
	// routing accessors that must copy under the lock. Timer/goroutine
	// bodies start unlocked even when armed under the lock, and locked
	// helpers declare their contract with //sblint:holds.
	runFixture(t, LockDisciplineAnalyzer(), map[string]string{
		"internal/shard/fixture.go": `package shard

import (
	"sync"
	"time"
)

type manager struct {
	mu      sync.Mutex
	owned   map[int]bool // guarded by mu
	stopped bool         // guarded by mu
}

func (m *manager) lead(sh int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return
	}
	m.owned[sh] = true // held: fine
}

func (m *manager) Owns(sh int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.owned[sh] // deferred unlock holds to the end
}

func (m *manager) Owned() []int {
	var out []int
	for sh := range m.owned { // want "without holding mu"
		out = append(out, sh)
	}
	return out
}

func (m *manager) takeoverLater(sh int, after time.Duration) {
	time.AfterFunc(after, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.stopped {
			return
		}
		m.owned[sh] = true // timer body re-locks: fine
	})
}

func (m *manager) handoff(sh int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		delete(m.owned, sh) // want "without holding mu"
	}()
}

//sblint:holds mu
func (m *manager) dropLocked(sh int) {
	delete(m.owned, sh) // caller holds mu by contract
}

func (m *manager) lose(sh int) {
	m.mu.Lock()
	m.dropLocked(sh)
	m.mu.Unlock()
}
`,
	})
}

func TestFloatCompareAnalyzer(t *testing.T) {
	runFixture(t, FloatCompareAnalyzer(), map[string]string{
		"internal/lp/fixture.go": `package lp

const pivotEps = 1e-9

func compare(a, b float64) bool {
	if a == b { // want "float == comparison"
		return true
	}
	if a != b { // want "float != comparison"
		return false
	}
	if a == 0 { // constant-zero sentinel is allowed
		return true
	}
	if b == pivotEps { // named epsilon is allowed
		return true
	}
	return a < b // ordering comparisons are fine
}
`,
		"internal/model/fixture.go": `package model

// Not a numeric package: exact compares are not flagged here.
func Same(a, b float64) bool { return a == b }
`,
	})
}

func TestErrorSinkAnalyzer(t *testing.T) {
	runFixture(t, ErrorSinkAnalyzer(), map[string]string{
		"internal/web/fixture.go": `package web

import (
	"fmt"
	"os"
	"strings"
)

func open(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	f.Close()                   // want "error result dropped"
	defer f.Close()             // want "deferred call drops its error"
	go f.Close()                // want "goroutine call drops its error"
	_ = f.Close()               // explicit discard is a decision
	fmt.Println("checked:", f)  // terminal output is exempt
	fmt.Fprintln(os.Stderr, "") // std streams are exempt
	var b strings.Builder
	b.WriteString("x")    // sticky writers are exempt
	fmt.Fprintf(&b, "%d", 1)
	return nil
}

func fine() { println("no error in the tuple") }
`,
	})
}

// TestErrorSinkObsExemption pins the telemetry-sink carve-out: Inc/Add/
// Observe/Set on internal/obs types are fire-and-forget even when a sink
// variant returns an error, while non-sink obs methods and same-named
// methods on other packages' types stay flagged.
func TestErrorSinkObsExemption(t *testing.T) {
	runFixture(t, ErrorSinkAnalyzer(), map[string]string{
		"internal/obs/fixture.go": `package obs

// A hypothetical remote-write sink whose methods report transport errors;
// the sink contract says call sites still fire and forget.
type Counter struct{}

func (c *Counter) Inc() error            { return nil }
func (c *Counter) Add(n uint64) error    { return nil }
func (c *Counter) Flush() error          { return nil }

type Gauge struct{}

func (g Gauge) Set(v float64) error     { return nil }
func (g Gauge) Observe(v float64) error { return nil }
`,
		"internal/web/fixture.go": `package web

import "fixture/internal/obs"

type impostor struct{}

func (impostor) Inc() error { return nil }

func instrument(c *obs.Counter, g obs.Gauge) {
	c.Inc()             // obs sink: exempt
	c.Add(2)            // obs sink: exempt
	g.Set(1.5)          // obs sink: exempt
	g.Observe(0.1)      // obs sink: exempt
	defer c.Inc()       // sinks stay exempt under defer
	go c.Add(1)         // ... and in goroutines
	c.Flush()           // want "error result dropped"
	impostor{}.Inc()    // want "error result dropped"
}
`,
	})
}

// TestErrorSinkSpanAndSlogExemption pins the tracing/logging half of the
// telemetry carve-out: span lifecycle methods (End/SetStatus/SetAttr/
// SetError/ExportSpan) on internal/obs/span types and log/slog calls are
// fire-and-forget even when they return an error, while non-sink span
// methods stay flagged.
func TestErrorSinkSpanAndSlogExemption(t *testing.T) {
	runFixture(t, ErrorSinkAnalyzer(), map[string]string{
		"internal/obs/span/fixture.go": `package span

// A hypothetical exporter-backed span whose lifecycle methods surface
// transport errors; the sink contract says call sites fire and forget.
type Span struct{}

func (s *Span) End() error                   { return nil }
func (s *Span) SetStatus(st string) error    { return nil }
func (s *Span) SetAttr(k, v string) error    { return nil }
func (s *Span) SetError(err error) error     { return nil }
func (s *Span) Flush() error                 { return nil }

type Exporter struct{}

func (e *Exporter) ExportSpan(s *Span) error { return nil }
`,
		"internal/web/fixture.go": `package web

import (
	"context"
	"log/slog"

	"fixture/internal/obs/span"
)

func traced(sp *span.Span, exp *span.Exporter, h slog.Handler) {
	defer sp.End()                      // span sink: exempt
	sp.SetAttr("k", "v")                // span sink: exempt
	sp.SetStatus("error")               // span sink: exempt
	sp.SetError(nil)                    // span sink: exempt
	exp.ExportSpan(sp)                  // span sink: exempt
	slog.Info("placed", "dc", 3)        // slog package call: exempt
	h.Handle(context.Background(), slog.Record{}) // slog method: exempt
	sp.Flush()                          // want "error result dropped"
}
`,
	})
}

// TestFindingString pins the canonical output format the Makefile gate and
// editors parse.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "errorsink", Message: "boom"}
	f.Pos.Filename = "a/b.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, want := f.String(), "a/b.go:3:7: [errorsink] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestSeededViolationFails proves the gate property end to end: a package
// with a seeded violation must produce at least one finding through the
// same Load/Run path `sblint ./...` uses.
func TestSeededViolationFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package trace\n\nimport \"time\"\n\nfunc Stamp() int64 { return time.Now().UnixNano() }\n"
	if err := os.MkdirAll(filepath.Join(dir, "internal", "trace"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "internal", "trace", "stamp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(Select(pkgs, []string{"./..."}), Analyzers())
	if len(findings) == 0 {
		t.Fatal("seeded time.Now violation produced no findings")
	}
	for _, f := range findings {
		if f.Analyzer == "determinism" && strings.Contains(f.Message, "time.Now") {
			return
		}
	}
	t.Fatalf("no determinism finding among %v", findings)
}

// TestAllowRequiresMatchingKey ensures an allow for one analyzer does not
// silence another.
func TestAllowRequiresMatchingKey(t *testing.T) {
	runFixture(t, DeterminismAnalyzer(), map[string]string{
		"internal/sim/fixture.go": `package sim

import "time"

func wrongKey() time.Time {
	//sblint:allow errorsink -- wrong key must not suppress determinism
	return time.Now() // want "wall-clock read time.Now"
}
`,
	})
}
