// Package lint is Switchboard's project-specific static-analysis suite
// ("sblint"). It implements four analyzers the Go compiler and stock vet
// cannot express for this codebase:
//
//   - determinism: the replay/experiment packages must be pure functions of
//     their seeds — wall-clock reads, the global math/rand generator, and
//     map-iteration-order-dependent appends are forbidden there.
//   - lockdiscipline: struct fields annotated "// guarded by <mu>" may only
//     be touched by methods that hold that mutex on a dominating path.
//   - floatcompare: ==/!= on floats in the LP/packing packages, where
//     silent NaN and tolerance bugs hide, unless guarded by a named epsilon
//     or an exact constant-zero sentinel.
//   - errorsink: error results silently discarded at statement position
//     (vet's printf-style fixed function list does not cover this).
//
// The suite is dependency-free: packages are loaded with go/parser and
// type-checked with go/types, resolving stdlib imports through the go/
// importer source importer. Findings print as
//
//	file:line:col: [analyzer] message
//
// and any finding makes `sblint ./...` exit non-zero, which is how the
// tier-1 gate (make check) consumes it.
//
// False positives are silenced in place with a justified escape hatch:
//
//	//sblint:allow <key> -- why this is safe
//
// on the offending line or the line directly above it. The determinism
// analyzer uses the key "nondeterminism"; the other analyzers use their own
// names. See DESIGN.md ("Static analysis") for the conventions and for how
// to add a new analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical "file:line:col: [analyzer] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one project-specific check run over a loaded package.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// AllowKey is an alternate //sblint:allow key (e.g. "nondeterminism"
	// for the determinism analyzer); empty means Name only.
	AllowKey string
	// Doc is a one-line description.
	Doc string
	// Applies reports whether the analyzer runs on the package with the
	// given module-relative path ("internal/lp"). A nil Applies runs
	// everywhere.
	Applies func(relPath string) bool
	// Run emits findings for one package. Suppression via //sblint:allow
	// is handled by the runner, not by Run.
	Run func(p *Package) []Finding
	// RunGraph, when set, makes this an interprocedural analyzer: it runs
	// once over the call graph of the whole package set instead of
	// per-package (Run and Applies are ignored). Findings are still
	// subject to //sblint:allow suppression.
	RunGraph func(g *CallGraph) []Finding
}

// Analyzers returns the full suite in stable order: the four intra-
// procedural v1 analyzers, then the four interprocedural v2 analyzers
// built on the call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		LockDisciplineAnalyzer(),
		FloatCompareAnalyzer(),
		ErrorSinkAnalyzer(),
		HotPathAllocAnalyzer(),
		FenceFlowAnalyzer(),
		CtxFlowAnalyzer(),
		AtomicDisciplineAnalyzer(),
	}
}

// allowDirective is one parsed //sblint:allow comment.
type allowDirective struct {
	file string
	line int
	key  string
}

var allowRe = regexp.MustCompile(`^//\s*sblint:allow\s+([a-z]+)`)

// allowSet indexes directives by (file, line, key).
type allowSet map[string]struct{}

func (s allowSet) add(file string, line int, key string) {
	s[fmt.Sprintf("%s:%d:%s", file, line, key)] = struct{}{}
}

func (s allowSet) has(file string, line int, key string) bool {
	_, ok := s[fmt.Sprintf("%s:%d:%s", file, line, key)]
	return ok
}

// collectAllows parses //sblint:allow directives from every comment in the
// package. A directive suppresses matching findings on its own line and on
// the line directly below it (so it can sit above the offending statement).
func collectAllows(p *Package) allowSet {
	s := make(allowSet)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				s.add(pos.Filename, pos.Line, m[1])
				s.add(pos.Filename, pos.Line+1, m[1])
			}
		}
	}
	return s
}

// Run applies every analyzer to every package, drops //sblint:allow-ed
// findings, and returns the rest sorted by (file, line, col, analyzer,
// message) — a total order, so CI diffs and baseline files are stable
// across runs regardless of map-iteration order anywhere upstream.
//
// Interprocedural analyzers (RunGraph set) run once over the call graph of
// the whole package set; narrowing pkgs therefore narrows what they can
// see, so whole-module invocations (./...) give the strongest guarantees.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	allAllows := make(allowSet)
	for _, p := range pkgs {
		allows := collectAllows(p)
		for k := range allows {
			allAllows[k] = struct{}{}
		}
		for _, a := range analyzers {
			if a.RunGraph != nil {
				continue
			}
			if a.Applies != nil && !a.Applies(p.RelPath) {
				continue
			}
			for _, f := range a.Run(p) {
				if suppressed(allows, a, f) {
					continue
				}
				f.Analyzer = a.Name
				out = append(out, f)
			}
		}
	}
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunGraph == nil {
			continue
		}
		if graph == nil {
			graph = BuildCallGraph(pkgs)
		}
		for _, f := range a.RunGraph(graph) {
			if suppressed(allAllows, a, f) {
				continue
			}
			f.Analyzer = a.Name
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// suppressed reports whether an //sblint:allow directive covers the
// finding's line under the analyzer's name or alternate key.
func suppressed(allows allowSet, a *Analyzer, f Finding) bool {
	if allows.has(f.Pos.Filename, f.Pos.Line, a.Name) {
		return true
	}
	return a.AllowKey != "" && allows.has(f.Pos.Filename, f.Pos.Line, a.AllowKey)
}

// less is the canonical finding order: (file, line, col, analyzer, message).
func less(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Analyzer != b.Analyzer {
		return a.Analyzer < b.Analyzer
	}
	return a.Message < b.Message
}

// pathIn reports whether relPath is one of the given module-relative
// package paths or a subpackage of one.
func pathIn(relPath string, roots ...string) bool {
	for _, r := range roots {
		if relPath == r || strings.HasPrefix(relPath, r+"/") {
			return true
		}
	}
	return false
}

// receiverName returns the receiver identifier and the receiver's named
// type for a method declaration ("" when absent or anonymous).
func receiverName(fd *ast.FuncDecl) (recv, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", ""
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recv = field.Names[0].Name
	}
	t := field.Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return recv, tt.Name
		default:
			return recv, ""
		}
	}
}
