package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxFlowAnalyzer keeps span chains intact: a function that receives a
// context.Context (or an *http.Request, whose Context() carries one) is on
// a request path, and must thread that context forward. It flags:
//
//   - context.Background() / context.TODO() passed as a call argument —
//     the caller's context (deadline, trace span) is silently dropped
//   - calls to a context-less function or method when a sibling taking a
//     context exists (Keys vs KeysContext, HSet vs HSetContext, Ping vs
//     PingContext): the sibling is there precisely so the context can flow
//
// Functions that do not receive a context are exempt — fire-and-forget
// loops and detached background work legitimately mint their own root
// contexts. Deliberate detachment inside a request path is escaped with
// //sblint:allow ctxflow -- reason.
func CtxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "functions receiving a context must propagate it (no Background/TODO, no ctx-less calls when a Context sibling exists)",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !receivesContext(p, fd) {
				continue
			}
			out = append(out, checkCtxBody(p, fd)...)
		}
	}
	return out
}

// receivesContext reports whether the function declares a context.Context
// or *http.Request parameter.
func receivesContext(p *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if isContextType(tv.Type) || isHTTPRequestPtr(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// checkCtxBody walks one context-receiving body (including nested function
// literals, which capture the context lexically).
func checkCtxBody(p *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Background()/TODO() as an argument to another call.
		for _, arg := range call.Args {
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if name := freshContextCall(p, inner); name != "" {
					out = append(out, Finding{
						Pos:     p.Fset.Position(inner.Pos()),
						Message: fmt.Sprintf("context.%s() drops the caller's context in a function that receives one", name),
					})
				}
			}
		}
		// ctx-less call with a Context-taking sibling.
		if f := contextSiblingFinding(p, fd, call); f != nil {
			out = append(out, *f)
		}
		return true
	})
	// Also catch `ctx := context.Background()` assignments that shadow the
	// incoming context path.
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			if inner, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if name := freshContextCall(p, inner); name != "" {
					out = append(out, Finding{
						Pos:     p.Fset.Position(inner.Pos()),
						Message: fmt.Sprintf("context.%s() discards the received context", name),
					})
				}
			}
		}
		return true
	})
	return out
}

// freshContextCall reports "Background" or "TODO" when the call mints a
// fresh root context, "" otherwise.
func freshContextCall(p *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// contextSiblingFinding flags a call to F(...) when the callee takes no
// context but a sibling named F+"Context" with a leading context parameter
// exists on the same receiver type (or in the same package scope).
func contextSiblingFinding(p *Package, fd *ast.FuncDecl, call *ast.CallExpr) *Finding {
	fun := ast.Unparen(call.Fun)
	var callee *types.Func
	switch x := fun.(type) {
	case *ast.Ident:
		callee, _ = p.Info.Uses[x].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
			callee, _ = sel.Obj().(*types.Func)
		} else if fn, ok := p.Info.Uses[x.Sel].(*types.Func); ok {
			callee = fn
		}
	}
	if callee == nil || callee.Pkg() == nil {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || signatureTakesContext(sig) {
		return nil
	}
	sibling := lookupContextSibling(callee)
	if sibling == nil {
		return nil
	}
	return &Finding{
		Pos: p.Fset.Position(call.Pos()),
		Message: fmt.Sprintf("%s drops the context; use %s to propagate it",
			callee.Name(), sibling.Name()),
	}
}

func signatureTakesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// lookupContextSibling finds a callee's Context-taking variant: a method
// named <Name>Context on the same receiver type, or a package-level
// function of that name, whose signature takes a context.
func lookupContextSibling(callee *types.Func) *types.Func {
	want := callee.Name() + "Context"
	sig := callee.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		named, ok := deref(recv.Type()).(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() != want {
				continue
			}
			if ms, ok := m.Type().(*types.Signature); ok && signatureTakesContext(ms) {
				return m
			}
		}
		return nil
	}
	scope := callee.Pkg().Scope()
	if obj, ok := scope.Lookup(want).(*types.Func); ok {
		if fs, ok := obj.Type().(*types.Signature); ok && signatureTakesContext(fs) {
			return obj
		}
	}
	return nil
}
