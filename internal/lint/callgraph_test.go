package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// loadFixturePkgs materializes files as a throwaway module and loads it,
// failing the test on load or typecheck errors.
func loadFixturePkgs(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("fixture does not typecheck: %v", terr)
		}
	}
	return pkgs
}

func nodeByName(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for _, n := range g.Nodes {
		if n.Obj.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

func edgesTo(n *FuncNode, callee *FuncNode) int {
	count := 0
	for _, e := range n.Calls {
		if e.Node == callee {
			count++
		}
	}
	return count
}

// TestCallGraphEdges covers the static/horizon split: direct calls and
// concrete-receiver methods resolve to edges; func-typed fields, func
// values, and interface dispatch become horizon edges. Calls inside a
// function literal belong to the enclosing declaration.
func TestCallGraphEdges(t *testing.T) {
	pkgs := loadFixturePkgs(t, map[string]string{"internal/app/app.go": `package app

type svc struct{ hook func() }

type doer interface{ Do() }

func A() { B(); _ = C(3) }
func B() {}
func C(n int) int { return n }

type T struct{}

func (t *T) M() { A() }

func dyn(s *svc, w doer) {
	s.hook()
	w.Do()
	f := func() { B() }
	f()
}
`})
	g := BuildCallGraph(pkgs)

	a := nodeByName(t, g, "A")
	b := nodeByName(t, g, "B")
	c := nodeByName(t, g, "C")
	if got := edgesTo(a, b); got != 1 {
		t.Errorf("A -> B edges = %d, want 1", got)
	}
	if got := edgesTo(a, c); got != 1 {
		t.Errorf("A -> C edges = %d, want 1", got)
	}

	m := nodeByName(t, g, "M")
	if got := edgesTo(m, a); got != 1 {
		t.Errorf("M -> A edges = %d, want 1", got)
	}

	dyn := nodeByName(t, g, "dyn")
	// The literal's B() call is attributed to dyn; the three dynamic calls
	// (field, interface, func value) are horizon edges.
	if got := edgesTo(dyn, b); got != 1 {
		t.Errorf("dyn -> B edges (via func literal) = %d, want 1", got)
	}
	kinds := map[string]int{}
	for _, h := range dyn.Horizon {
		kinds[h.Kind]++
	}
	if kinds["interface"] != 1 || kinds["func-value"] != 2 {
		t.Errorf("dyn horizon kinds = %v, want 1 interface + 2 func-value", kinds)
	}

	reach := g.Reachable([]*FuncNode{m})
	for _, n := range []*FuncNode{m, a, b, c} {
		if !reach[n] {
			t.Errorf("%s not reachable from M", n.Obj.Name())
		}
	}
	if reach[dyn] {
		t.Error("dyn wrongly reachable from M")
	}
}

// TestCallGraphGenerics pins satellite 3: instantiated calls to generic
// functions and to methods on generic receivers resolve to the single
// generic-origin node — never skipped, never degraded to horizon edges.
func TestCallGraphGenerics(t *testing.T) {
	pkgs := loadFixturePkgs(t, map[string]string{"internal/gen/gen.go": `package gen

func Root() {
	_ = Identity(1)
	_ = Identity[string]("x")
	var p Pair[int]
	p.Set(2)
	_ = p.Get()
}

func Identity[T any](v T) T { return v }

type Pair[T any] struct{ v T }

func (p *Pair[T]) Set(v T) { p.v = v }
func (p *Pair[T]) Get() T  { return p.v }
`})
	g := BuildCallGraph(pkgs)

	root := nodeByName(t, g, "Root")
	id := nodeByName(t, g, "Identity")
	set := nodeByName(t, g, "Set")
	get := nodeByName(t, g, "Get")

	if got := edgesTo(root, id); got != 2 {
		t.Errorf("Root -> Identity edges = %d, want 2 (both instantiations resolve to the origin)", got)
	}
	if got := edgesTo(root, set); got != 1 {
		t.Errorf("Root -> Set edges = %d, want 1", got)
	}
	if got := edgesTo(root, get); got != 1 {
		t.Errorf("Root -> Get edges = %d, want 1", got)
	}
	if len(root.Horizon) != 0 {
		t.Errorf("Root has %d horizon edges, want 0 (generic calls are static)", len(root.Horizon))
	}

	reach := g.Reachable([]*FuncNode{root})
	for _, n := range []*FuncNode{id, set, get} {
		if !reach[n] {
			t.Errorf("%s not reachable from Root", n.Obj.Name())
		}
	}
}

// TestCallGraphCrossPackage ensures edges resolve across package boundaries
// (the loader's shared importer makes func objects identical on both sides).
func TestCallGraphCrossPackage(t *testing.T) {
	pkgs := loadFixturePkgs(t, map[string]string{
		"internal/lib/lib.go": `package lib

func Helper() int { return 1 }
`,
		"internal/app/app.go": `package app

import "fixture/internal/lib"

func Entry() int { return lib.Helper() }
`})
	g := BuildCallGraph(pkgs)
	entry := nodeByName(t, g, "Entry")
	helper := nodeByName(t, g, "Helper")
	if got := edgesTo(entry, helper); got != 1 {
		t.Errorf("Entry -> lib.Helper edges = %d, want 1", got)
	}
	if !g.Reachable([]*FuncNode{entry})[helper] {
		t.Error("lib.Helper not reachable from app.Entry")
	}
}

// TestDirectiveName pins the directive parser used for hotpath/fencepath
// roots and allowalloc reasons.
func TestDirectiveName(t *testing.T) {
	cases := map[string]string{
		"//sblint:hotpath":                 "hotpath",
		"//sblint:hotpath and a note":      "hotpath",
		"//sblint:fencepath\tnote":         "fencepath",
		"//sblint:allowalloc(reason here)": "allowalloc",
		"// sblint:hotpath":                "", // directives are unspaced by convention
		"//sblint:":                        "",
		"// regular comment":               "",
	}
	for text, want := range cases {
		if got := directiveName(text); got != want {
			t.Errorf("directiveName(%q) = %q, want %q", text, got, want)
		}
	}
}
