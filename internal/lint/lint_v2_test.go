package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHotPathAllocAnalyzer(t *testing.T) {
	runFixture(t, HotPathAllocAnalyzer(), map[string]string{
		"internal/hot/fixture.go": `package hot

import (
	"errors"
	"io"
)

// Root is the annotated entry point; everything reachable from it is in the
// zero-allocation closure.
//
//sblint:hotpath
func Root(w io.Writer, n int, s string) error {
	if n < 0 {
		return errors.New("negative") // want "calls errors.New"
	}
	b := make([]byte, n) // want "make allocates"
	_, _ = w.Write(b)    // want "dynamic call through"
	return helper(n, s)
}

func helper(n int, s string) error {
	m := map[int]bool{} // want "map literal allocates"
	m[n] = true         // want "map insert may allocate"
	var xs []int
	xs = append(xs, n) // want "append may grow its backing array"
	_ = xs
	_ = key(s, "suffix")
	sink(n)        // want "argument boxes int into any"
	variadic(1, n) // want "variadic call materializes an argument slice"
	justified()
	docExempt()
	return nil
}

func key(a, b string) string {
	return a + b // want "string concatenation allocates"
}

func sink(v any) {}

func variadic(vs ...int) {}

func justified() {
	_ = make([]byte, 8) //sblint:allowalloc(fixture-justified allocation)
}

// docExempt's whole body is justified at the doc level.
//
//sblint:allowalloc(fixture-justified body)
func docExempt() {
	_ = make([]byte, 8)
	_ = []byte("copy")
}

func cold() {
	_ = make([]byte, 1) // unreachable from any hotpath root: unflagged
}
`})
}

// TestHotPathAllocGenerics pins the generics contract: instantiated calls to
// generic functions and methods on generic receivers resolve to the checked
// generic body — they are neither skipped nor degraded to horizon edges.
func TestHotPathAllocGenerics(t *testing.T) {
	runFixture(t, HotPathAllocAnalyzer(), map[string]string{
		"internal/ghot/fixture.go": `package ghot

// Root exercises generic instantiation inside a hot-path closure.
//
//sblint:hotpath
func Root() {
	_ = box[int](1)
	_ = box(2.5)
	var c Cache[string]
	c.put("k")
}

func box[T any](v T) []T {
	return []T{v} // want "slice literal allocates"
}

type Cache[K comparable] struct{ m map[K]bool }

func (c *Cache[K]) put(k K) {
	c.m[k] = true // want "map insert may allocate"
}
`})
}

func TestFenceFlowAnalyzer(t *testing.T) {
	runFixture(t, FenceFlowAnalyzer(), map[string]string{
		"internal/kv/client.go": `package kv

import "context"

// Client is a minimal fence-capable store client: it declares SetFence, so
// the analyzer treats its raw command methods as fencing-relevant.
type Client struct {
	fenceKey   string
	fenceEpoch int64
}

func (c *Client) SetFence(key string, epoch int64) { c.fenceKey, c.fenceEpoch = key, epoch }

// Do is the raw escape hatch; inside the defining package it is the blessed
// implementation surface for the typed wrappers.
func (c *Client) Do(args ...string) (any, error) { return nil, nil }

func (c *Client) DoContext(ctx context.Context, args ...string) (any, error) {
	return c.Do(args...)
}

func (c *Client) HSet(key, field, value string) error {
	_, err := c.Do("HSET", key, field, value)
	return err
}

func (c *Client) Del(key string) error {
	_, err := c.Do("DEL", key)
	return err
}
`,
		"internal/ctrl/ctrl.go": `package ctrl

import (
	"context"

	"fixture/internal/kv"
)

type C struct{ store *kv.Client }

// Persist is a fencing entry point: all store mutations below it must ride
// the typed wrappers.
//
//sblint:fencepath
func (c *C) Persist(ctx context.Context, key, field, value string) error {
	if err := c.store.HSet(key, field, value); err != nil { // typed wrapper: fine
		return err
	}
	if _, err := c.store.DoContext(ctx, "DEL", key); err != nil { // want "bypasses the fence-arming"
		return err
	}
	c.drain("HSET")
	_, err := c.store.Do("HSET", key, field, value) // want "bypasses the fence-arming"
	return err
}

func (c *C) drain(cmd string) {
	_, _ = c.store.Do(cmd, "k", "v") // want "cannot be proven fenced"
}

// Sideline is outside the Persist closure; the package-wide check still
// catches literal mutations in a package that declares a fencepath.
func (c *C) Sideline(key string) error {
	_, err := c.store.Do("DEL", key) // want "bypasses the fence-arming"
	return err
}

func (c *C) Read(key string) (any, error) {
	return c.store.Do("GET", key) // read verb: fencing does not apply
}
`})
}

func TestCtxFlowAnalyzer(t *testing.T) {
	runFixture(t, CtxFlowAnalyzer(), map[string]string{
		"internal/web/fixture.go": `package web

import "context"

type store struct{}

func (s *store) Keys() []string                           { return nil }
func (s *store) KeysContext(ctx context.Context) []string { return nil }
func (s *store) Ping() error                              { return nil }

func work(ctx context.Context) {}

func handle(ctx context.Context, s *store) {
	_ = s.Keys()               // want "Keys drops the context; use KeysContext"
	work(context.Background()) // want "drops the caller's context"
	_ = s.Ping()               // no Context sibling: fine
	work(ctx)
}

func rebase(ctx context.Context) {
	ctx = context.TODO() // want "discards the received context"
	work(ctx)
}

func detached(s *store) {
	_ = s.Keys() // no context received: exempt
	work(context.Background())
}

func escaped(ctx context.Context) {
	//sblint:allow ctxflow -- fixture-justified detachment
	work(context.Background())
	work(ctx)
}
`})
}

func TestAtomicDisciplineAnalyzer(t *testing.T) {
	runFixture(t, AtomicDisciplineAnalyzer(), map[string]string{
		"internal/stats/fixture.go": `package stats

import "sync/atomic"

type counters struct {
	hits  int64
	total atomic.Int64
}

func (c *counters) hit() {
	atomic.AddInt64(&c.hits, 1)
	c.total.Add(1)
}

func (c *counters) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) snapshot() int64 {
	return c.hits // want "plain access to hits"
}

func (c *counters) reset() {
	c.hits = 0 // want "plain access to hits"
}

func (c *counters) copyTotal() atomic.Int64 {
	return c.total // want "copy or reassignment races"
}

func (c *counters) readTotal() int64 {
	return c.total.Load()
}

func fresh() *counters {
	return &counters{} // zero-value construction: fine
}

var gen uint64

func next() uint64 { return atomic.AddUint64(&gen, 1) }

func peek() uint64 {
	return gen // want "plain access to gen"
}
`})
}

// TestBaselineFilterBudget pins the dup-budget semantics: a baseline entry
// absorbs at most as many findings as times it is listed, so duplicated
// findings cannot hide behind a single accepted line.
func TestBaselineFilterBudget(t *testing.T) {
	f := Finding{Analyzer: "hotpathalloc", Message: "make allocates"}
	f.Pos.Filename = "internal/x/x.go"
	f.Pos.Line, f.Pos.Column = 3, 2

	path := filepath.Join(t.TempDir(), "baseline")
	if err := os.WriteFile(path, FormatBaseline([]Finding{f}), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, suppressed := b.Filter([]Finding{f, f})
	if len(suppressed) != 1 || len(fresh) != 1 {
		t.Fatalf("Filter = %d fresh, %d suppressed; want 1 and 1", len(fresh), len(suppressed))
	}
}

// TestBaselineEmptyMeansClean pins the adoption contract: an empty committed
// baseline suppresses nothing.
func TestBaselineEmptyMeansClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline")
	if err := os.WriteFile(path, []byte("# comment only\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	f := Finding{Analyzer: "ctxflow", Message: "m"}
	fresh, suppressed := b.Filter([]Finding{f})
	if len(fresh) != 1 || len(suppressed) != 0 {
		t.Fatalf("Filter = %d fresh, %d suppressed; want 1 and 0", len(fresh), len(suppressed))
	}
}

// TestBaselineMissingFileIsError: an absent baseline is a configuration
// error, not an implicit empty one.
func TestBaselineMissingFileIsError(t *testing.T) {
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("LoadBaseline on a missing file did not error")
	}
}

// TestFindingOrderIsTotal pins the canonical sort key (file, line, col,
// analyzer, message) CI diffs and baselines depend on.
func TestFindingOrderIsTotal(t *testing.T) {
	mk := func(file string, line, col int, analyzer, msg string) Finding {
		f := Finding{Analyzer: analyzer, Message: msg}
		f.Pos.Filename, f.Pos.Line, f.Pos.Column = file, line, col
		return f
	}
	ordered := []Finding{
		mk("a.go", 1, 1, "ctxflow", "m"),
		mk("a.go", 1, 1, "fenceflow", "m"),
		mk("a.go", 1, 1, "fenceflow", "n"),
		mk("a.go", 1, 2, "ctxflow", "m"),
		mk("a.go", 2, 1, "ctxflow", "m"),
		mk("b.go", 1, 1, "ctxflow", "m"),
	}
	for i := 0; i < len(ordered)-1; i++ {
		if !less(ordered[i], ordered[i+1]) {
			t.Errorf("ordered[%d] not < ordered[%d]", i, i+1)
		}
		if less(ordered[i+1], ordered[i]) {
			t.Errorf("comparator not asymmetric at %d", i)
		}
	}
}

func TestMarshalFindings(t *testing.T) {
	f := Finding{Analyzer: "atomicdiscipline", Message: "plain access"}
	f.Pos.Filename, f.Pos.Line, f.Pos.Column = "internal/x/x.go", 7, 3
	out, err := MarshalFindings([]Finding{f})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"analyzer": "atomicdiscipline"`, `"line": 7`, `"file": "internal/x/x.go"`} {
		if !strings.Contains(string(out), want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
	empty, err := MarshalFindings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(empty)) != "[]" {
		t.Errorf("MarshalFindings(nil) = %q, want []", empty)
	}
}
