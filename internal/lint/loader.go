package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the full import path ("switchboard/internal/lp").
	Path string
	// RelPath is the module-relative path ("internal/lp", "" for the
	// module root package). Analyzer scoping matches on RelPath so the
	// suite is testable against fixture packages.
	RelPath string
	// Dir is the package directory on disk ("" for fixtures).
	Dir string

	Fset  *token.FileSet
	Files []*ast.File

	// TypesPkg and Info hold go/types results. Type-checking is tolerant:
	// when it fails partway (TypeErrors non-empty) the analyzers still run
	// on whatever type information exists, degrading conservatively.
	TypesPkg   *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Module locates the enclosing Go module: it walks up from dir to the first
// go.mod and returns the module root directory and module path.
func Module(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// skipDir names directories never descended into during package discovery.
func skipDir(name string) bool {
	switch name {
	case "testdata", "vendor", "node_modules":
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// packageDirs returns every directory under root holding at least one
// non-test .go file, as module-relative slash paths ("" for the root).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if rel == "." {
			rel = ""
		}
		dirs = append(dirs, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// Deduplicate (one entry per .go file was appended).
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// srcPackage is a parsed-but-not-yet-checked package during loading.
type srcPackage struct {
	rel     string
	dir     string
	files   []*ast.File
	imports []string // local (in-module) import paths
}

// Load parses and type-checks every package in the module containing dir.
// Only non-test files are loaded: the analyzers' contracts (determinism,
// lock discipline, float compares, error sinks) are about production code,
// and test files are free to use wall clocks and drop errors.
//
// Stdlib imports resolve through the go/importer source importer, so the
// loader needs a working GOROOT but no external dependencies.
func Load(dir string) ([]*Package, error) {
	root, modPath, err := Module(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	srcs := make(map[string]*srcPackage, len(dirs)) // by full import path
	for _, rel := range dirs {
		abs := root
		if rel != "" {
			abs = filepath.Join(root, filepath.FromSlash(rel))
		}
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, err
		}
		sp := &srcPackage{rel: rel, dir: abs}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(abs, name), err)
			}
			sp.files = append(sp.files, f)
		}
		if len(sp.files) == 0 {
			continue
		}
		for _, f := range sp.files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == modPath || strings.HasPrefix(p, modPath+"/") {
					sp.imports = append(sp.imports, p)
				}
			}
		}
		path := modPath
		if rel != "" {
			path = modPath + "/" + rel
		}
		srcs[path] = sp
	}

	// Type-check in dependency order so in-module imports resolve from the
	// cache; everything else falls through to the stdlib source importer.
	chain := &chainImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: make(map[string]*types.Package),
	}
	checked := make(map[string]*Package, len(srcs))
	var order []string
	for path := range srcs {
		order = append(order, path)
	}
	sort.Strings(order)
	visiting := make(map[string]bool)
	var check func(path string) error
	check = func(path string) error {
		if _, done := checked[path]; done {
			return nil
		}
		if visiting[path] {
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		visiting[path] = true
		defer delete(visiting, path)
		sp := srcs[path]
		for _, dep := range sp.imports {
			if srcs[dep] != nil {
				if err := check(dep); err != nil {
					return err
				}
			}
		}
		pkg := typecheck(fset, path, sp.rel, sp.files, chain)
		pkg.Dir = sp.dir
		checked[path] = pkg
		chain.local[path] = pkg.TypesPkg
		return nil
	}
	for _, path := range order {
		if err := check(path); err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(checked))
	for _, path := range order {
		out = append(out, checked[path])
	}
	return out, nil
}

// typecheck runs the tolerant go/types pass over one package.
func typecheck(fset *token.FileSet, path, rel string, files []*ast.File, imp types.Importer) *Package {
	pkg := &Package{
		Path:    path,
		RelPath: rel,
		Fset:    fset,
		Files:   files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never returns a useful error beyond what the Error hook saw;
	// the partially filled Info is what the analyzers consume.
	tp, _ := conf.Check(path, fset, files, pkg.Info)
	pkg.TypesPkg = tp
	return pkg
}

// chainImporter serves in-module packages from the loader's cache and
// everything else (the stdlib) from the source importer.
type chainImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok && p != nil {
		return p, nil
	}
	return c.std.Import(path)
}

// Select filters pkgs by command-line patterns relative to the module root:
// "" or "./..." selects everything, "dir/..." selects a subtree, and a
// plain directory selects that one package.
func Select(pkgs []*Package, patterns []string) []*Package {
	if len(patterns) == 0 {
		return pkgs
	}
	var out []*Package
	for _, p := range pkgs {
		for _, pat := range patterns {
			pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
			var ok bool
			if pat == "..." || pat == "" {
				ok = true
			} else if sub, rec := strings.CutSuffix(pat, "/..."); rec {
				ok = pathIn(p.RelPath, sub)
			} else {
				ok = p.RelPath == pat
			}
			if ok {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
