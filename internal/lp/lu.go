package lp

import (
	"fmt"
	"math"
)

// luFactor is a dense LU factorization with partial pivoting: P·A = L·U with
// unit-diagonal L. It backs the revised simplex basis.
type luFactor struct {
	n    int
	lu   []float64 // n×n row-major, L (strictly lower) and U packed together
	perm []int     // perm[i] = original row index selected as the i-th pivot
}

// luFactorize factors the n×n row-major matrix a. a is copied, not modified.
// It returns an error when the matrix is numerically singular.
func luFactorize(a []float64, n int) (*luFactor, error) {
	f := &luFactor{
		n:    n,
		lu:   make([]float64, n*n),
		perm: make([]int, n),
	}
	copy(f.lu, a)
	for i := range f.perm {
		f.perm[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Partial pivoting: largest magnitude in column k at or below
		// the diagonal.
		p, best := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best < 1e-13 {
			return nil, fmt.Errorf("lp: singular basis (pivot %g at column %d)", best, k)
		}
		if p != k {
			rk, rp := lu[k*n:k*n+n], lu[p*n:p*n+n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.perm[k], f.perm[p] = f.perm[p], f.perm[k]
		}
		pivInv := 1 / lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] * pivInv
			if l == 0 {
				continue
			}
			lu[i*n+k] = l
			ri, rk := lu[i*n:i*n+n], lu[k*n:k*n+n]
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rk[j]
			}
		}
	}
	return f, nil
}

// solve overwrites b (length n) with the solution of A·x = b.
func (f *luFactor) solve(b []float64) {
	n, lu := f.n, f.lu
	// Apply the row permutation: x = P·b.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		ri := lu[i*n : i*n+n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := lu[i*n : i*n+n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	copy(b, x)
}

// solveT overwrites b (length n) with the solution of Aᵀ·x = b.
// Since P·A = L·U, Aᵀ = Uᵀ·Lᵀ·P, so we solve Uᵀy = b, Lᵀw = y, x = Pᵀw.
func (f *luFactor) solveT(b []float64) {
	n, lu := f.n, f.lu
	// Uᵀ is lower triangular: forward substitution.
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= lu[j*n+i] * b[j]
		}
		b[i] = s / lu[i*n+i]
	}
	// Lᵀ is unit upper triangular: back substitution.
	for i := n - 2; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= lu[j*n+i] * b[j]
		}
		b[i] = s
	}
	// x = Pᵀ·w: scatter through the permutation.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[f.perm[i]] = b[i]
	}
	copy(b, x)
}
