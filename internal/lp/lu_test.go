package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func matVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		y[i] = s
	}
	return y
}

func matTVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += a[i*n+j] * x[i]
		}
		y[j] = s
	}
	return y
}

func TestLUSolveKnown(t *testing.T) {
	// A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3]
	a := []float64{2, 1, 1, 3}
	f, err := luFactorize(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{5, 10}
	f.solve(b)
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", b)
	}
}

func TestLUSingular(t *testing.T) {
	a := []float64{1, 2, 2, 4}
	if _, err := luFactorize(a, 2); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestLUPermutationNeeded(t *testing.T) {
	// Zero on the first diagonal forces a row swap.
	a := []float64{0, 1, 1, 0}
	f, err := luFactorize(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{3, 7}
	f.solve(b)
	if math.Abs(b[0]-7) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [7 3]", b)
	}
}

// TestLURoundTrip is a property test: for random well-conditioned matrices,
// solve(A, A·x) recovers x and solveT(A, Aᵀ·x) recovers x.
func TestLURoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		a := make([]float64, n*n)
		for i := range a {
			a[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the matrix well-conditioned.
		for i := 0; i < n; i++ {
			a[i*n+i] += float64(n) + 1
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		fac, err := luFactorize(a, n)
		if err != nil {
			return false
		}
		b := matVec(a, n, x)
		fac.solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		bt := matTVec(a, n, x)
		fac.solveT(bt)
		for i := range x {
			if math.Abs(bt[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLUFactorize200(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := luFactorize(a, n); err != nil {
			b.Fatal(err)
		}
	}
}
