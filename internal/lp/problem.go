// Package lp implements linear programming from scratch on top of the
// standard library, providing the optimization substrate Switchboard's
// capacity-provisioning and allocation formulations run on.
//
// Two solver backends are provided:
//
//   - MethodDense: a classic two-phase full-tableau simplex. Simple, easy to
//     audit, and used as the reference implementation in tests.
//   - MethodRevised: a two-phase revised simplex with a sparse column store,
//     an LU-factorized basis, and product-form (eta) updates with periodic
//     refactorization. This is the production backend and handles the
//     thousands-of-rows provisioning LPs.
//
// Problems are stated in the natural form
//
//	min (or max)  cᵀx
//	s.t.          aᵢᵀx  {≤,=,≥}  bᵢ      for every row i
//	              x ≥ 0
//
// Upper bounds or free variables, when needed, are expressed as extra rows or
// variable splits by the caller; Switchboard's formulations only need
// nonnegative variables.
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Sense is the optimization direction of a Problem.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

func (s Sense) String() string {
	switch s {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Rel is the relation of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // aᵀx ≤ b
	GE            // aᵀx ≥ b
	EQ            // aᵀx = b
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints.
	Infeasible
	// Unbounded means the objective can be improved without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted before
	// optimality was proven.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// entry is a single nonzero coefficient.
type entry struct {
	col int
	val float64
}

// row is one constraint.
type row struct {
	name    string
	entries []entry
	rel     Rel
	rhs     float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create instances with New.
type Problem struct {
	sense    Sense
	obj      []float64
	varNames []string
	rows     []row
}

// New returns an empty problem with the given optimization sense.
func New(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// Sense returns the optimization direction.
func (p *Problem) Sense() Sense { return p.sense }

// NumVars returns the number of structural variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows returns the number of constraint rows added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a nonnegative structural variable with the given objective
// coefficient and returns its column index.
func (p *Problem) AddVar(name string, objCoeff float64) int {
	p.obj = append(p.obj, objCoeff)
	p.varNames = append(p.varNames, name)
	return len(p.obj) - 1
}

// SetObj overwrites the objective coefficient of variable j.
func (p *Problem) SetObj(j int, coeff float64) {
	p.obj[j] = coeff
}

// VarName returns the name given to variable j at creation.
func (p *Problem) VarName(j int) string { return p.varNames[j] }

// AddRow adds the constraint Σ vals[k]·x[cols[k]] rel rhs and returns its row
// index. cols and vals must have equal length; duplicate column indices
// within one row are summed. Column indices must refer to variables already
// added with AddVar.
func (p *Problem) AddRow(name string, cols []int, vals []float64, rel Rel, rhs float64) int {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("lp: AddRow %q: %d cols but %d vals", name, len(cols), len(vals)))
	}
	merged := make(map[int]float64, len(cols))
	for k, c := range cols {
		if c < 0 || c >= len(p.obj) {
			panic(fmt.Sprintf("lp: AddRow %q: column %d out of range [0,%d)", name, c, len(p.obj)))
		}
		merged[c] += vals[k]
	}
	entries := make([]entry, 0, len(merged))
	for c, v := range merged {
		if v != 0 {
			entries = append(entries, entry{col: c, val: v})
		}
	}
	// Deterministic entry order keeps solves reproducible run to run.
	sort.Slice(entries, func(i, j int) bool { return entries[i].col < entries[j].col })
	p.rows = append(p.rows, row{name: name, entries: entries, rel: rel, rhs: rhs})
	return len(p.rows) - 1
}

// RowName returns the name given to row i at creation.
func (p *Problem) RowName(i int) string { return p.rows[i].name }

// Eval returns the left-hand-side value of row i at point x.
func (p *Problem) Eval(i int, x []float64) float64 {
	var sum float64
	for _, e := range p.rows[i].entries {
		sum += e.val * x[e.col]
	}
	return sum
}

// ObjValue returns cᵀx for the structural variables in x.
func (p *Problem) ObjValue(x []float64) float64 {
	var sum float64
	for j, c := range p.obj {
		sum += c * x[j]
	}
	return sum
}

// CheckFeasible reports whether x satisfies every constraint and the
// nonnegativity bounds within tolerance tol. It returns a descriptive error
// for the first violated condition, which makes it convenient in tests.
func (p *Problem) CheckFeasible(x []float64, tol float64) error {
	if len(x) != len(p.obj) {
		return fmt.Errorf("lp: point has %d entries, problem has %d variables", len(x), len(p.obj))
	}
	for j, v := range x {
		if v < -tol {
			return fmt.Errorf("lp: variable %q = %g violates x >= 0", p.varNames[j], v)
		}
	}
	for i, r := range p.rows {
		lhs := p.Eval(i, x)
		switch r.rel {
		case LE:
			if lhs > r.rhs+tol {
				return fmt.Errorf("lp: row %q: %g <= %g violated by %g", r.name, lhs, r.rhs, lhs-r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol {
				return fmt.Errorf("lp: row %q: %g >= %g violated by %g", r.name, lhs, r.rhs, r.rhs-lhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				return fmt.Errorf("lp: row %q: %g == %g violated by %g", r.name, lhs, r.rhs, math.Abs(lhs-r.rhs))
			}
		}
	}
	return nil
}

// Method selects a solver backend.
type Method int

// Solver backends.
const (
	// MethodAuto picks MethodDense for small problems and MethodRevised
	// for large ones.
	MethodAuto Method = iota
	// MethodDense is the full-tableau two-phase simplex.
	MethodDense
	// MethodRevised is the revised simplex with LU-factorized basis.
	MethodRevised
)

// Options tune a solve. The zero value requests defaults.
type Options struct {
	// Method selects the backend; MethodAuto by default.
	Method Method
	// MaxIters bounds simplex iterations per phase; 0 means an automatic
	// limit proportional to the problem size.
	MaxIters int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
	// RefactorEvery is the revised-simplex refactorization interval in
	// basis changes; 0 means 64.
	RefactorEvery int
	// Presolve runs the reduction pass (empty rows, fixed variables)
	// before the simplex; see Presolve.
	Presolve bool
	// PartialPricing makes the revised simplex price candidate columns in
	// rotating blocks of this size instead of scanning every column each
	// iteration (0 disables). Optimality is unaffected: when a block has
	// no improving column the scan continues into the next block until a
	// full pass proves optimality. Worthwhile for LPs with very many
	// columns relative to rows.
	PartialPricing int
}

func (o Options) withDefaults(nRows, nCols int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200 * (nRows + nCols + 10)
	}
	if o.RefactorEvery == 0 {
		o.RefactorEvery = 64
	}
	if o.Method == MethodAuto {
		if nRows*nCols > 1<<18 {
			o.Method = MethodRevised
		} else {
			o.Method = MethodDense
		}
	}
	return o
}

// Solution is the result of a solve.
type Solution struct {
	// Status reports the solve outcome; X and Objective are only
	// meaningful when Status is Optimal.
	Status Status
	// Objective is the optimal objective value in the problem's original
	// sense.
	Objective float64
	// X holds the values of the structural variables.
	X []float64
	// Duals holds one dual multiplier per constraint row (the simplex
	// multipliers mapped back to the original row orientation).
	Duals []float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Solve optimizes the problem and returns the solution. A non-Optimal status
// is reported in Solution.Status, not as an error; errors are reserved for
// malformed problems.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	if len(p.obj) == 0 {
		return nil, fmt.Errorf("lp: problem has no variables")
	}
	if opts.Presolve {
		opts.Presolve = false // the reduced problem solves directly
		return SolvePresolved(p, opts)
	}
	opts = opts.withDefaults(len(p.rows), len(p.obj))
	std := standardize(p)
	var sol *Solution
	var err error
	switch opts.Method {
	case MethodDense:
		sol, err = solveDense(std, opts)
	case MethodRevised:
		sol, err = solveRevised(std, opts)
	default:
		return nil, fmt.Errorf("lp: unknown method %d", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	if sol.Status == Optimal && p.sense == Maximize {
		sol.Objective = -sol.Objective
		for i := range sol.Duals {
			sol.Duals[i] = -sol.Duals[i]
		}
	}
	return sol, nil
}

// standard is the internal standard form: min cᵀx s.t. Ax = b, x ≥ 0, b ≥ 0,
// stored column-wise. Columns 0..nStruct-1 are structural; the rest are
// slack/surplus columns. Artificial columns are appended by the solvers.
type standard struct {
	nStruct int       // structural variable count
	nCols   int       // structural + slack/surplus
	m       int       // rows
	cost    []float64 // length nCols; minimization costs
	colIdx  [][]int32
	colVal  [][]float64
	b       []float64
	rowSign []float64 // +1 if original row kept, -1 if negated (for duals)
	slackOf []int     // slackOf[i] = column index of row i's slack/surplus, or -1
}

// standardize converts p to equality standard form with nonnegative RHS.
func standardize(p *Problem) *standard {
	m := len(p.rows)
	n := len(p.obj)
	s := &standard{
		nStruct: n,
		m:       m,
		b:       make([]float64, m),
		rowSign: make([]float64, m),
		slackOf: make([]int, m),
	}
	// Count slack columns to size the cost slice.
	nSlack := 0
	for _, r := range p.rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	s.nCols = n + nSlack
	s.cost = make([]float64, s.nCols)
	sign := 1.0
	if p.sense == Maximize {
		sign = -1.0
	}
	for j := 0; j < n; j++ {
		s.cost[j] = sign * p.obj[j]
	}
	s.colIdx = make([][]int32, s.nCols)
	s.colVal = make([][]float64, s.nCols)

	// Build structural columns, flipping rows with negative RHS so b ≥ 0.
	flip := make([]float64, m)
	for i, r := range p.rows {
		f := 1.0
		if r.rhs < 0 {
			f = -1.0
		}
		flip[i] = f
		s.rowSign[i] = f
		s.b[i] = f * r.rhs
	}
	for i, r := range p.rows {
		for _, e := range r.entries {
			s.colIdx[e.col] = append(s.colIdx[e.col], int32(i))
			s.colVal[e.col] = append(s.colVal[e.col], flip[i]*e.val)
		}
	}
	// Slack/surplus columns. A flipped LE row becomes GE and vice versa.
	next := n
	for i, r := range p.rows {
		s.slackOf[i] = -1
		rel := r.rel
		if flip[i] < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			s.colIdx[next] = []int32{int32(i)}
			s.colVal[next] = []float64{1}
			s.slackOf[i] = next
			next++
		case GE:
			s.colIdx[next] = []int32{int32(i)}
			s.colVal[next] = []float64{-1}
			s.slackOf[i] = next
			next++
		}
	}
	return s
}

// recoverDuals maps simplex multipliers y (for the standardized rows) back to
// the original row orientation.
func (s *standard) recoverDuals(y []float64) []float64 {
	duals := make([]float64, s.m)
	for i := range duals {
		duals[i] = s.rowSign[i] * y[i]
	}
	return duals
}
