package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveFixesSingletonEquality(t *testing.T) {
	// x = 4 fixed; min x + y s.t. x = 4, x + y >= 10 -> y = 6, obj 10.
	p := New(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddRow("fix", []int{x}, []float64{2}, EQ, 8)
	p.AddRow("sum", []int{x, y}, []float64{1, 1}, GE, 10)

	ps, err := Presolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != Optimal || ps.Reduced == nil {
		t.Fatalf("presolve status %v reduced %v", ps.Status, ps.Reduced)
	}
	if ps.Reduced.NumVars() != 1 || ps.Reduced.NumRows() != 1 {
		t.Errorf("reduced to %dx%d, want 1x1", ps.Reduced.NumRows(), ps.Reduced.NumVars())
	}
	sol, err := SolvePresolved(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-10) > 1e-9 {
		t.Fatalf("sol = %v obj %g, want optimal 10", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[x]-4) > 1e-9 || math.Abs(sol.X[y]-6) > 1e-9 {
		t.Errorf("x = %v", sol.X)
	}
}

func TestPresolveForcedZero(t *testing.T) {
	// 3x <= 0 forces x = 0.
	p := New(Minimize)
	x := p.AddVar("x", -5) // would be pushed up without the forcing row
	y := p.AddVar("y", 1)
	p.AddRow("zero", []int{x}, []float64{3}, LE, 0)
	p.AddRow("cap", []int{x, y}, []float64{1, 1}, LE, 7)
	ps, err := Presolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ps.fixed[x]) || ps.fixed[x] != 0 {
		t.Errorf("x not fixed to zero: %v", ps.fixed[x])
	}
	sol, err := SolvePresolved(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.X[x] != 0 {
		t.Fatalf("sol = %+v", sol)
	}
	// -x >= 0 also forces x = 0.
	p2 := New(Minimize)
	x2 := p2.AddVar("x", -5)
	p2.AddRow("zero", []int{x2}, []float64{-2}, GE, 0)
	ps2, err := Presolve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if ps2.fixed[x2] != 0 {
		t.Errorf("GE forcing failed: %v", ps2.fixed[x2])
	}
}

func TestPresolveDetectsInfeasibility(t *testing.T) {
	// x = -3 contradicts x >= 0.
	p := New(Minimize)
	x := p.AddVar("x", 1)
	p.AddRow("neg", []int{x}, []float64{1}, EQ, -3)
	ps, err := Presolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", ps.Status)
	}
	// Empty inconsistent row after substitution: x = 2 and x = 5.
	p2 := New(Minimize)
	x2 := p2.AddVar("x", 1)
	p2.AddRow("a", []int{x2}, []float64{1}, EQ, 2)
	p2.AddRow("b", []int{x2}, []float64{1}, EQ, 5)
	ps2, err := Presolve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if ps2.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", ps2.Status)
	}
	// Singleton LE with negative rhs and positive coefficient.
	p3 := New(Minimize)
	x3 := p3.AddVar("x", 1)
	p3.AddRow("bad", []int{x3}, []float64{2}, LE, -4)
	ps3, err := Presolve(p3)
	if err != nil {
		t.Fatal(err)
	}
	if ps3.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", ps3.Status)
	}
}

func TestPresolveAllFixed(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 3)
	p.AddRow("fix", []int{x}, []float64{1}, EQ, 2)
	sol, err := SolvePresolved(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-6) > 1e-12 || sol.X[x] != 2 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestOptionsPresolveFlag(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	p.AddRow("fix", []int{x}, []float64{1}, EQ, 3)
	p.AddRow("min", []int{x, y}, []float64{1, 1}, GE, 5)
	sol, err := p.Solve(Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-7) > 1e-9 {
		t.Fatalf("sol = %v obj=%g, want optimal 7", sol.Status, sol.Objective)
	}
	if sol.X[x] != 3 || math.Abs(sol.X[y]-2) > 1e-9 {
		t.Errorf("x = %v", sol.X)
	}
}

// TestPropertyPresolveMatchesDirect: presolved solves agree with direct
// solves on random feasible LPs.
func TestPropertyPresolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		p := randomFeasibleLP(rng)
		direct, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		pre, err := SolvePresolved(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if direct.Status != pre.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, direct.Status, pre.Status)
		}
		if direct.Status != Optimal {
			continue
		}
		if math.Abs(direct.Objective-pre.Objective) > 1e-5*(1+math.Abs(direct.Objective)) {
			t.Fatalf("trial %d: objective %g vs %g", trial, direct.Objective, pre.Objective)
		}
		if err := p.CheckFeasible(pre.X, 1e-6); err != nil {
			t.Fatalf("trial %d: recovered point infeasible: %v", trial, err)
		}
	}
}
