package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestMPSRoundTrip(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	z := p.AddVar("z", 0)
	p.AddRow("sum", []int{x, y, z}, []float64{1, 1, 1}, GE, 10)
	p.AddRow("cap", []int{x}, []float64{1}, LE, 4)
	p.AddRow("eq", []int{y, z}, []float64{2, -1}, EQ, 3)

	var buf bytes.Buffer
	if err := WriteMPS(&buf, p, "trip test!"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMPS(&buf, Minimize)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars() != p.NumVars() || back.NumRows() != p.NumRows() {
		t.Fatalf("shape %dx%d, want %dx%d", back.NumRows(), back.NumVars(), p.NumRows(), p.NumVars())
	}
	a, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status || math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Fatalf("solutions differ: %v/%g vs %v/%g", a.Status, a.Objective, b.Status, b.Objective)
	}
}

// TestPropertyMPSRoundTripPreservesOptimum: for random LPs, write+read MPS
// preserves the optimal objective.
func TestPropertyMPSRoundTripPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		p := randomFeasibleLP(rng)
		var buf bytes.Buffer
		if err := WriteMPS(&buf, p, "rt"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMPS(&buf, Minimize)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		a, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Status != b.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, a.Status, b.Status)
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6*(1+math.Abs(a.Objective)) {
			t.Fatalf("trial %d: objective %g vs %g", trial, a.Objective, b.Objective)
		}
	}
}

func TestReadMPSErrors(t *testing.T) {
	cases := map[string]string{
		"bad row type":   "ROWS\n X  R0\nENDATA\n",
		"unknown row":    "ROWS\n N COST\nCOLUMNS\n    C0 R9 1\nENDATA\n",
		"bad value":      "ROWS\n N COST\n L R0\nCOLUMNS\n    C0 R0 banana\nENDATA\n",
		"bad rhs row":    "ROWS\n N COST\nRHS\n    RHS R9 1\nENDATA\n",
		"bounds section": "ROWS\n N COST\nBOUNDS\n UP BND C0 1\nENDATA\n",
		"odd columns":    "ROWS\n N COST\n L R0\nCOLUMNS\n    C0 R0\nENDATA\n",
	}
	for name, text := range cases {
		if _, err := ReadMPS(strings.NewReader(text), Minimize); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSanitizeMPSName(t *testing.T) {
	if got := sanitizeMPSName(""); got != "LP" {
		t.Errorf("empty name -> %q", got)
	}
	if got := sanitizeMPSName("hello world/42"); got != "hello_world_42" {
		t.Errorf("got %q", got)
	}
	if got := sanitizeMPSName(strings.Repeat("x", 40)); len(got) != 16 {
		t.Errorf("long name not truncated: %q", got)
	}
}
