package lp

import (
	"fmt"
	"math"
)

// solveRevised runs a two-phase revised simplex with an LU-factorized basis
// and product-form (eta) updates. Constraint columns stay sparse, the basis
// inverse is never formed explicitly, and the factorization is rebuilt every
// Options.RefactorEvery basis changes to bound numerical drift.
func solveRevised(s *standard, opts Options) (*Solution, error) {
	if s.m == 0 {
		return solveDense(s, opts)
	}
	rv, err := newRevised(s, opts)
	if err != nil {
		return nil, err
	}

	iters := 0
	if rv.nArt > 0 {
		// Phase 1: minimize the sum of artificials.
		c1 := make([]float64, rv.nTotal)
		for j := rv.artStart; j < rv.nTotal; j++ {
			c1[j] = 1
		}
		rv.cost = c1
		st, n, err := rv.iterate(rv.nTotal, opts.MaxIters)
		iters += n
		if err != nil {
			return nil, err
		}
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: iters}, nil
		}
		if rv.objective() > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: iters}, nil
		}
	}

	// Phase 2: true costs. Artificials are excluded from pricing; any that
	// remain basic sit at zero, and the ratio test pushes them out (they
	// are treated as bounded above by zero) so they can never turn
	// positive.
	c2 := make([]float64, rv.nTotal)
	copy(c2, s.cost)
	rv.cost = c2
	st, n, err := rv.iterate(rv.artStart, opts.MaxIters)
	iters += n
	if err != nil {
		return nil, err
	}
	switch st {
	case IterLimit, Unbounded:
		return &Solution{Status: st, Iterations: iters}, nil
	}

	x := make([]float64, s.nStruct)
	for i, bj := range rv.basis {
		if bj < s.nStruct {
			v := rv.xB[i]
			if v < 0 && v > -1e-9 {
				v = 0
			}
			x[bj] = v
		}
	}
	y := rv.btranCosts()
	return &Solution{
		Status:     Optimal,
		Objective:  rv.objective(),
		X:          x,
		Duals:      s.recoverDuals(y),
		Iterations: iters,
	}, nil
}

// eta is one product-form basis update: the basis matrix was post-multiplied
// by the identity with column r replaced by d = B⁻¹·a_entering.
type eta struct {
	r int
	d []float64
}

type revised struct {
	s        *standard
	m        int
	nTotal   int // structural + slack + artificial columns
	artStart int
	nArt     int
	cost     []float64

	// Sparse columns, artificial identity columns included.
	colIdx [][]int32
	colVal [][]float64

	basis    []int
	basicPos []int // basicPos[j] = row of basic variable j, else -1
	xB       []float64

	lu      *luFactor
	etas    []eta
	refactK int
	tol     float64

	// Partial pricing state: block size (0 = full pricing) and the
	// rotating scan cursor.
	priceBlock  int
	priceCursor int

	// Scratch buffers reused across iterations.
	scratch []float64
}

func newRevised(s *standard, opts Options) (*revised, error) {
	m := s.m
	basis := make([]int, m)
	needArt := make([]bool, m)
	nArt := 0
	for i := 0; i < m; i++ {
		j := s.slackOf[i]
		if j >= 0 && s.colVal[j][0] > 0 {
			basis[i] = j
		} else {
			needArt[i] = true
			nArt++
		}
	}
	nTotal := s.nCols + nArt
	colIdx := make([][]int32, nTotal)
	colVal := make([][]float64, nTotal)
	copy(colIdx, s.colIdx)
	copy(colVal, s.colVal)
	art := s.nCols
	for i := 0; i < m; i++ {
		if needArt[i] {
			colIdx[art] = []int32{int32(i)}
			colVal[art] = []float64{1}
			basis[i] = art
			art++
		}
	}
	basicPos := make([]int, nTotal)
	for j := range basicPos {
		basicPos[j] = -1
	}
	for i, bj := range basis {
		basicPos[bj] = i
	}
	rv := &revised{
		s: s, m: m, nTotal: nTotal, artStart: s.nCols, nArt: nArt,
		colIdx: colIdx, colVal: colVal,
		basis: basis, basicPos: basicPos,
		xB:         make([]float64, m),
		refactK:    opts.RefactorEvery,
		tol:        opts.Tol,
		priceBlock: opts.PartialPricing,
		scratch:    make([]float64, m),
	}
	if err := rv.refactorize(); err != nil {
		return nil, err
	}
	return rv, nil
}

// refactorize rebuilds the LU factorization of the current basis, drops the
// eta file, and recomputes the basic solution from scratch.
func (rv *revised) refactorize() error {
	m := rv.m
	bmat := make([]float64, m*m)
	for i, bj := range rv.basis {
		idx, val := rv.colIdx[bj], rv.colVal[bj]
		for k, r := range idx {
			bmat[int(r)*m+i] = val[k]
		}
	}
	lu, err := luFactorize(bmat, m)
	if err != nil {
		return fmt.Errorf("lp: refactorization failed: %w", err)
	}
	rv.lu = lu
	rv.etas = rv.etas[:0]
	copy(rv.xB, rv.s.b)
	rv.lu.solve(rv.xB)
	for i, v := range rv.xB {
		if v < 0 && v > -1e-9 {
			rv.xB[i] = 0
		}
	}
	return nil
}

// ftran computes x = B⁻¹·(sparse column j), returning a dense vector that the
// caller owns.
func (rv *revised) ftran(j int) []float64 {
	x := make([]float64, rv.m)
	idx, val := rv.colIdx[j], rv.colVal[j]
	for k, r := range idx {
		x[r] = val[k]
	}
	rv.lu.solve(x)
	for _, e := range rv.etas {
		xr := x[e.r] / e.d[e.r]
		if xr == 0 && x[e.r] == 0 {
			continue
		}
		for i, di := range e.d {
			if i == e.r {
				continue
			}
			x[i] -= di * xr
		}
		x[e.r] = xr
	}
	return x
}

// btran computes y with yᵀ·B = cᵀ for the dense vector c (overwritten).
func (rv *revised) btran(c []float64) []float64 {
	for k := len(rv.etas) - 1; k >= 0; k-- {
		e := rv.etas[k]
		dot := 0.0
		for i, di := range e.d {
			if i != e.r {
				dot += di * c[i]
			}
		}
		c[e.r] = (c[e.r] - dot) / e.d[e.r]
	}
	rv.lu.solveT(c)
	return c
}

// btranCosts returns the simplex multipliers y = B⁻ᵀ·c_B for the current
// phase costs.
func (rv *revised) btranCosts() []float64 {
	cb := make([]float64, rv.m)
	for i, bj := range rv.basis {
		cb[i] = rv.cost[bj]
	}
	return rv.btran(cb)
}

func (rv *revised) objective() float64 {
	var obj float64
	for i, bj := range rv.basis {
		obj += rv.cost[bj] * rv.xB[i]
	}
	return obj
}

// iterate runs simplex pivots until optimality for the current costs,
// pricing only columns < priceLimit as entering candidates.
func (rv *revised) iterate(priceLimit, maxIters int) (Status, int, error) {
	iters := 0
	stall := 0
	bland := false
	prevObj := math.Inf(1)
	for ; iters < maxIters; iters++ {
		y := rv.btranCosts()
		q := rv.price(y, priceLimit, bland)
		if q < 0 {
			return Optimal, iters, nil
		}
		d := rv.ftran(q)
		r := rv.ratioTest(d, bland)
		if r < 0 {
			return Unbounded, iters, nil
		}
		rv.update(q, r, d)
		obj := rv.objective()
		if obj >= prevObj-1e-12 {
			stall++
			if stall > 2*rv.m+20 {
				bland = true
			}
		} else {
			stall = 0
			bland = false
		}
		prevObj = obj
		if len(rv.etas) >= rv.refactK {
			if err := rv.refactorize(); err != nil {
				return Optimal, iters, err
			}
		}
	}
	return IterLimit, iters, nil
}

// price selects an entering column with negative reduced cost, or -1 when
// none exists. Dantzig rule normally, Bland's rule under stalling. With
// partial pricing enabled, columns are scanned in rotating blocks and the
// best candidate of the first block containing any improving column wins;
// a full wrap-around with no candidate proves optimality.
func (rv *revised) price(y []float64, priceLimit int, bland bool) int {
	if bland || rv.priceBlock <= 0 || rv.priceBlock >= priceLimit {
		return rv.priceRange(y, 0, priceLimit, bland)
	}
	if rv.priceCursor >= priceLimit {
		rv.priceCursor = 0
	}
	scanned := 0
	for scanned < priceLimit {
		lo := rv.priceCursor
		hi := lo + rv.priceBlock
		if hi > priceLimit {
			hi = priceLimit
		}
		q := rv.priceRange(y, lo, hi, false)
		scanned += hi - lo
		rv.priceCursor = hi % priceLimit
		if q >= 0 {
			return q
		}
	}
	return -1
}

// priceRange scans columns [lo, hi) for the most negative reduced cost.
func (rv *revised) priceRange(y []float64, lo, hi int, bland bool) int {
	q := -1
	best := -rv.tol
	for j := lo; j < hi; j++ {
		if rv.basicPos[j] >= 0 {
			continue
		}
		// Reduced cost c_j − yᵀ·a_j over the sparse column.
		z := rv.cost[j]
		idx, val := rv.colIdx[j], rv.colVal[j]
		for k, r := range idx {
			z -= y[r] * val[k]
		}
		if bland {
			if z < -rv.tol {
				return j
			}
			continue
		}
		if z < best {
			best = z
			q = j
		}
	}
	return q
}

// ratioTest picks the leaving row for direction d, or -1 when the step is
// unbounded. Basic artificials (pinned at zero) also leave when d would push
// them positive, which keeps phase 2 honest without Big-M costs.
func (rv *revised) ratioTest(d []float64, bland bool) int {
	r := -1
	minRatio := math.Inf(1)
	for i := 0; i < rv.m; i++ {
		di := d[i]
		var ratio float64
		switch {
		case di > rv.tol:
			ratio = rv.xB[i] / di
		case di < -rv.tol && rv.basis[i] >= rv.artStart:
			// An artificial must stay at zero; a negative direction
			// component would raise it, so it leaves immediately.
			ratio = -rv.xB[i] / di
		default:
			continue
		}
		if ratio < 0 {
			ratio = 0
		}
		if ratio < minRatio-1e-12 {
			minRatio = ratio
			r = i
		} else if ratio < minRatio+1e-12 && r >= 0 && bland && rv.basis[i] < rv.basis[r] {
			r = i
		}
	}
	return r
}

// update applies the pivot: variable q enters, the variable in row r leaves,
// the basic solution moves by step θ, and an eta records the basis change.
func (rv *revised) update(q, r int, d []float64) {
	theta := rv.xB[r] / d[r]
	for i := range rv.xB {
		if i == r {
			continue
		}
		rv.xB[i] -= theta * d[i]
		if rv.xB[i] < 0 && rv.xB[i] > -1e-9 {
			rv.xB[i] = 0
		}
	}
	rv.xB[r] = theta
	rv.basicPos[rv.basis[r]] = -1
	rv.basis[r] = q
	rv.basicPos[q] = r
	rv.etas = append(rv.etas, eta{r: r, d: d})
}
