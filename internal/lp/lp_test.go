package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveBoth(t *testing.T, p *Problem) (dense, revised *Solution) {
	t.Helper()
	d, err := p.Solve(Options{Method: MethodDense})
	if err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	r, err := p.Solve(Options{Method: MethodRevised})
	if err != nil {
		t.Fatalf("revised solve: %v", err)
	}
	return d, r
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig
	// example; optimum 36 at x=2, y=6).
	p := New(Maximize)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.AddRow("r1", []int{x}, []float64{1}, LE, 4)
	p.AddRow("r2", []int{y}, []float64{2}, LE, 12)
	p.AddRow("r3", []int{x, y}, []float64{3, 2}, LE, 18)
	for _, sol := range func() []*Solution { d, r := solveBoth(t, p); return []*Solution{d, r} }() {
		if sol.Status != Optimal {
			t.Fatalf("status = %v, want optimal", sol.Status)
		}
		if math.Abs(sol.Objective-36) > 1e-6 {
			t.Errorf("objective = %g, want 36", sol.Objective)
		}
		if math.Abs(sol.X[x]-2) > 1e-6 || math.Abs(sol.X[y]-6) > 1e-6 {
			t.Errorf("x = %v, want [2 6]", sol.X)
		}
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3. Optimum: x=7, y=3 -> 23.
	p := New(Minimize)
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	p.AddRow("sum", []int{x, y}, []float64{1, 1}, GE, 10)
	p.AddRow("xmin", []int{x}, []float64{1}, GE, 2)
	p.AddRow("ymin", []int{y}, []float64{1}, GE, 3)
	d, r := solveBoth(t, p)
	for _, sol := range []*Solution{d, r} {
		if sol.Status != Optimal {
			t.Fatalf("status = %v", sol.Status)
		}
		if math.Abs(sol.Objective-23) > 1e-6 {
			t.Errorf("objective = %g, want 23", sol.Objective)
		}
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + 2y + 3z s.t. x+y+z = 6, y - z = 1. One optimum: z=0,y=1,x=5 -> 10... check:
	// obj(5,1,0)=5+2=7. Try x=0: y+z=6, y-z=1 -> y=3.5,z=2.5 -> 7+7.5=14.5. So x big is better: 7.
	p := New(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	z := p.AddVar("z", 3)
	p.AddRow("sum", []int{x, y, z}, []float64{1, 1, 1}, EQ, 6)
	p.AddRow("diff", []int{y, z}, []float64{1, -1}, EQ, 1)
	d, r := solveBoth(t, p)
	for _, sol := range []*Solution{d, r} {
		if sol.Status != Optimal {
			t.Fatalf("status = %v", sol.Status)
		}
		if math.Abs(sol.Objective-7) > 1e-6 {
			t.Errorf("objective = %g, want 7 (x=%v)", sol.Objective, sol.X)
		}
		if err := p.CheckFeasible(sol.X, 1e-7); err != nil {
			t.Errorf("solution infeasible: %v", err)
		}
	}
}

func TestInfeasible(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1)
	p.AddRow("lo", []int{x}, []float64{1}, GE, 5)
	p.AddRow("hi", []int{x}, []float64{1}, LE, 3)
	d, r := solveBoth(t, p)
	if d.Status != Infeasible {
		t.Errorf("dense status = %v, want infeasible", d.Status)
	}
	if r.Status != Infeasible {
		t.Errorf("revised status = %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddRow("r", []int{x, y}, []float64{1, -1}, LE, 4)
	d, r := solveBoth(t, p)
	if d.Status != Unbounded {
		t.Errorf("dense status = %v, want unbounded", d.Status)
	}
	if r.Status != Unbounded {
		t.Errorf("revised status = %v, want unbounded", r.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -5  (i.e. x >= 5)
	p := New(Minimize)
	x := p.AddVar("x", 1)
	p.AddRow("r", []int{x}, []float64{-1}, LE, -5)
	d, r := solveBoth(t, p)
	for _, sol := range []*Solution{d, r} {
		if sol.Status != Optimal || math.Abs(sol.X[x]-5) > 1e-7 {
			t.Errorf("got %v x=%v, want optimal x=5", sol.Status, sol.X)
		}
	}
}

func TestDegenerate(t *testing.T) {
	// A degenerate problem that cycles under naive pivoting (Beale's
	// example). min -0.75x4 + 150x5 - 0.02x6 + 6x7 with classic rows.
	p := New(Minimize)
	x4 := p.AddVar("x4", -0.75)
	x5 := p.AddVar("x5", 150)
	x6 := p.AddVar("x6", -0.02)
	x7 := p.AddVar("x7", 6)
	p.AddRow("r1", []int{x4, x5, x6, x7}, []float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddRow("r2", []int{x4, x5, x6, x7}, []float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddRow("r3", []int{x6}, []float64{1}, LE, 1)
	d, r := solveBoth(t, p)
	for _, sol := range []*Solution{d, r} {
		if sol.Status != Optimal {
			t.Fatalf("status = %v, want optimal", sol.Status)
		}
		if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
			t.Errorf("objective = %g, want -0.05", sol.Objective)
		}
	}
}

func TestRedundantRows(t *testing.T) {
	// Duplicate equality rows force a redundant artificial to stay basic.
	p := New(Minimize)
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddRow("e1", []int{x, y}, []float64{1, 1}, EQ, 4)
	p.AddRow("e2", []int{x, y}, []float64{2, 2}, EQ, 8)
	p.AddRow("e3", []int{x, y}, []float64{1, 1}, EQ, 4)
	d, r := solveBoth(t, p)
	for _, sol := range []*Solution{d, r} {
		if sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-6 {
			t.Errorf("got %v obj=%g, want optimal obj=4", sol.Status, sol.Objective)
		}
	}
}

func TestDualsTransportation(t *testing.T) {
	// Small transportation problem; verify strong duality: cᵀx = bᵀy for
	// the recovered duals.
	p := New(Minimize)
	cost := [][]float64{{4, 6}, {5, 3}}
	var vars [2][2]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			vars[i][j] = p.AddVar("s", cost[i][j])
		}
	}
	supply := []float64{30, 20}
	demand := []float64{25, 25}
	var rhs []float64
	for i := 0; i < 2; i++ {
		p.AddRow("supply", []int{vars[i][0], vars[i][1]}, []float64{1, 1}, LE, supply[i])
		rhs = append(rhs, supply[i])
	}
	for j := 0; j < 2; j++ {
		p.AddRow("demand", []int{vars[0][j], vars[1][j]}, []float64{1, 1}, GE, demand[j])
		rhs = append(rhs, demand[j])
	}
	d, r := solveBoth(t, p)
	for name, sol := range map[string]*Solution{"dense": d, "revised": r} {
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v", name, sol.Status)
		}
		var dualObj float64
		for i, y := range sol.Duals {
			dualObj += y * rhs[i]
		}
		if math.Abs(dualObj-sol.Objective) > 1e-6 {
			t.Errorf("%s: dual objective %g != primal %g", name, dualObj, sol.Objective)
		}
	}
}

// randomFeasibleLP builds a random LP that is guaranteed feasible (a known
// nonnegative point is used to set compatible RHS values) and bounded (all
// objective coefficients are nonnegative under Minimize).
func randomFeasibleLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(8)
	m := 1 + rng.Intn(8)
	p := New(Minimize)
	point := make([]float64, n)
	for j := 0; j < n; j++ {
		p.AddVar("x", float64(rng.Intn(10)))
		point[j] = float64(rng.Intn(5))
	}
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(n)
		cols := rng.Perm(n)[:k]
		vals := make([]float64, k)
		lhs := 0.0
		for t := range vals {
			vals[t] = float64(rng.Intn(11) - 5)
			lhs += vals[t] * point[cols[t]]
		}
		switch rng.Intn(3) {
		case 0:
			p.AddRow("r", cols, vals, LE, lhs+float64(rng.Intn(5)))
		case 1:
			p.AddRow("r", cols, vals, GE, lhs-float64(rng.Intn(5)))
		default:
			p.AddRow("r", cols, vals, EQ, lhs)
		}
	}
	return p
}

// TestPropertyDenseMatchesRevised cross-validates the two backends on many
// random feasible LPs: identical status, matching objectives, and feasible
// primal points.
func TestPropertyDenseMatchesRevised(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		p := randomFeasibleLP(rng)
		d, err := p.Solve(Options{Method: MethodDense})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		r, err := p.Solve(Options{Method: MethodRevised, RefactorEvery: 4})
		if err != nil {
			t.Fatalf("trial %d: revised: %v", trial, err)
		}
		if d.Status != r.Status {
			t.Fatalf("trial %d: status dense=%v revised=%v", trial, d.Status, r.Status)
		}
		if d.Status != Optimal {
			continue
		}
		if math.Abs(d.Objective-r.Objective) > 1e-5*(1+math.Abs(d.Objective)) {
			t.Fatalf("trial %d: objective dense=%g revised=%g", trial, d.Objective, r.Objective)
		}
		if err := p.CheckFeasible(d.X, 1e-6); err != nil {
			t.Fatalf("trial %d: dense point: %v", trial, err)
		}
		if err := p.CheckFeasible(r.X, 1e-6); err != nil {
			t.Fatalf("trial %d: revised point: %v", trial, err)
		}
	}
}

// TestPropertyDualityGap checks strong duality on random feasible, bounded
// LPs for both backends.
func TestPropertyDualityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randomFeasibleLP(rng)
		for _, method := range []Method{MethodDense, MethodRevised} {
			sol, err := p.Solve(Options{Method: method})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if sol.Status != Optimal {
				continue
			}
			var dualObj float64
			for i := range p.rows {
				dualObj += sol.Duals[i] * p.rows[i].rhs
			}
			if math.Abs(dualObj-sol.Objective) > 1e-5*(1+math.Abs(sol.Objective)) {
				t.Fatalf("trial %d method %v: duality gap primal=%g dual=%g", trial, method, sol.Objective, dualObj)
			}
		}
	}
}

// TestPropertyPartialPricingMatchesFull: partial pricing changes the pivot
// order but never the optimum.
func TestPropertyPartialPricingMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 150; trial++ {
		p := randomFeasibleLP(rng)
		full, err := p.Solve(Options{Method: MethodRevised})
		if err != nil {
			t.Fatal(err)
		}
		partial, err := p.Solve(Options{Method: MethodRevised, PartialPricing: 3})
		if err != nil {
			t.Fatal(err)
		}
		if full.Status != partial.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, full.Status, partial.Status)
		}
		if full.Status == Optimal {
			if math.Abs(full.Objective-partial.Objective) > 1e-5*(1+math.Abs(full.Objective)) {
				t.Fatalf("trial %d: objective %g vs %g", trial, full.Objective, partial.Objective)
			}
			if err := p.CheckFeasible(partial.X, 1e-6); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestMaximizeDualsSign(t *testing.T) {
	p := New(Maximize)
	x := p.AddVar("x", 1)
	p.AddRow("cap", []int{x}, []float64{1}, LE, 7)
	sol, err := p.Solve(Options{Method: MethodDense})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", err, sol)
	}
	if math.Abs(sol.Objective-7) > 1e-9 {
		t.Errorf("objective = %g, want 7", sol.Objective)
	}
	// Shadow price of the capacity should be +1 in the maximize sense.
	if math.Abs(sol.Duals[0]-1) > 1e-7 {
		t.Errorf("dual = %g, want 1", sol.Duals[0])
	}
}

func TestNoVariables(t *testing.T) {
	p := New(Minimize)
	if _, err := p.Solve(Options{}); err == nil {
		t.Fatal("expected error for empty problem")
	}
}

func TestNoConstraints(t *testing.T) {
	p := New(Minimize)
	p.AddVar("x", 2)
	sol, err := p.Solve(Options{Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.X[0] != 0 {
		t.Errorf("got %v %v, want optimal x=0", sol.Status, sol.X)
	}
	p2 := New(Maximize)
	p2.AddVar("x", 2)
	sol2, err := p2.Solve(Options{Method: MethodDense})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Unbounded {
		t.Errorf("got %v, want unbounded", sol2.Status)
	}
}

func TestDuplicateColumnsMerged(t *testing.T) {
	p := New(Minimize)
	x := p.AddVar("x", 1)
	p.AddRow("r", []int{x, x}, []float64{1, 1}, GE, 10) // 2x >= 10
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[x]-5) > 1e-7 {
		t.Errorf("x = %g, want 5", sol.X[x])
	}
}

func TestAddRowValidation(t *testing.T) {
	p := New(Minimize)
	p.AddVar("x", 1)
	mustPanic := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { p.AddRow("bad", []int{0}, []float64{1, 2}, LE, 1) })
	mustPanic(func() { p.AddRow("bad", []int{5}, []float64{1}, LE, 1) })
}

func TestAutoMethodSelection(t *testing.T) {
	o := Options{}.withDefaults(10, 10)
	if o.Method != MethodDense {
		t.Errorf("small problem picked %v, want dense", o.Method)
	}
	o = Options{}.withDefaults(1000, 5000)
	if o.Method != MethodRevised {
		t.Errorf("large problem picked %v, want revised", o.Method)
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Minimize.String(), "minimize"},
		{Maximize.String(), "maximize"},
		{LE.String(), "<="},
		{GE.String(), ">="},
		{EQ.String(), "=="},
		{Optimal.String(), "optimal"},
		{Infeasible.String(), "infeasible"},
		{Unbounded.String(), "unbounded"},
		{IterLimit.String(), "iteration-limit"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
