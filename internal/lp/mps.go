package lp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMPS writes the problem in (free-form) MPS format, the de-facto
// interchange format for LP instances. Dumping a provisioning LP lets it be
// inspected or cross-checked with an external solver.
//
// Variable and row names are synthesized as C<j> and R<i> (MPS forbids the
// arbitrary characters AddVar/AddRow names may contain); the original names
// are emitted as comments.
func WriteMPS(w io.Writer, p *Problem, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "* %d rows, %d columns, sense %v\n", len(p.rows), len(p.obj), p.sense)
	for j, n := range p.varNames {
		if n != "" {
			fmt.Fprintf(bw, "* C%d = %s\n", j, n)
		}
	}
	fmt.Fprintf(bw, "NAME          %s\n", sanitizeMPSName(name))
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintln(bw, " N  COST")
	for i, r := range p.rows {
		var kind byte
		switch r.rel {
		case LE:
			kind = 'L'
		case GE:
			kind = 'G'
		case EQ:
			kind = 'E'
		}
		fmt.Fprintf(bw, " %c  R%d\n", kind, i)
	}
	fmt.Fprintln(bw, "COLUMNS")
	// MPS is column-major; gather per-column entries.
	colRows := make([][]entry, len(p.obj)) // entry.col reused as row index
	for i, r := range p.rows {
		for _, e := range r.entries {
			colRows[e.col] = append(colRows[e.col], entry{col: i, val: e.val})
		}
	}
	for j := range p.obj {
		if p.obj[j] != 0 {
			fmt.Fprintf(bw, "    C%-9d COST      %.17g\n", j, p.obj[j])
		}
		for _, e := range colRows[j] {
			fmt.Fprintf(bw, "    C%-9d R%-9d %.17g\n", j, e.col, e.val)
		}
	}
	fmt.Fprintln(bw, "RHS")
	for i, r := range p.rows {
		if r.rhs != 0 {
			fmt.Fprintf(bw, "    RHS       R%-9d %.17g\n", i, r.rhs)
		}
	}
	// All variables are x >= 0, the MPS default; no BOUNDS section.
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

func sanitizeMPSName(s string) string {
	if s == "" {
		return "LP"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && i < 16; i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}

// ReadMPS parses the free-form MPS subset produced by WriteMPS (N/L/G/E
// rows, COLUMNS, RHS; default bounds). The objective sense is not encoded in
// MPS; pass the intended sense.
func ReadMPS(r io.Reader, sense Sense) (*Problem, error) {
	p := New(sense)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	type rowInfo struct {
		rel  Rel
		cols []int
		vals []float64
		rhs  float64
	}
	var rowOrder []string
	rows := map[string]*rowInfo{}
	objName := ""
	cols := map[string]int{}
	section := ""

	colIndex := func(name string) int {
		j, ok := cols[name]
		if !ok {
			j = p.AddVar(name, 0)
			cols[name] = j
		}
		return j
	}

	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			fields := strings.Fields(line)
			section = strings.ToUpper(fields[0])
			if section == "ENDATA" {
				break
			}
			continue
		}
		fields := strings.Fields(line)
		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: bad ROWS line %q", line)
			}
			switch strings.ToUpper(fields[0]) {
			case "N":
				if objName == "" {
					objName = fields[1]
				}
			case "L":
				rows[fields[1]] = &rowInfo{rel: LE}
				rowOrder = append(rowOrder, fields[1])
			case "G":
				rows[fields[1]] = &rowInfo{rel: GE}
				rowOrder = append(rowOrder, fields[1])
			case "E":
				rows[fields[1]] = &rowInfo{rel: EQ}
				rowOrder = append(rowOrder, fields[1])
			default:
				return nil, fmt.Errorf("lp: unknown row type %q", fields[0])
			}
		case "COLUMNS":
			// Pairs of (rowname, value) after the column name.
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("lp: bad COLUMNS line %q", line)
			}
			j := colIndex(fields[0])
			for k := 1; k < len(fields); k += 2 {
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: bad value in %q: %w", line, err)
				}
				if fields[k] == objName {
					p.SetObj(j, v)
					continue
				}
				ri, ok := rows[fields[k]]
				if !ok {
					return nil, fmt.Errorf("lp: unknown row %q", fields[k])
				}
				ri.cols = append(ri.cols, j)
				ri.vals = append(ri.vals, v)
			}
		case "RHS":
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("lp: bad RHS line %q", line)
			}
			for k := 1; k < len(fields); k += 2 {
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: bad RHS value in %q: %w", line, err)
				}
				ri, ok := rows[fields[k]]
				if !ok {
					return nil, fmt.Errorf("lp: RHS for unknown row %q", fields[k])
				}
				ri.rhs = v
			}
		case "BOUNDS":
			return nil, fmt.Errorf("lp: BOUNDS section not supported")
		case "NAME", "":
			// ignore
		default:
			return nil, fmt.Errorf("lp: unknown section %q", section)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range rowOrder {
		ri := rows[name]
		p.AddRow(name, ri.cols, ri.vals, ri.rel, ri.rhs)
	}
	return p, nil
}
