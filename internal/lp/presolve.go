package lp

import (
	"fmt"
	"math"
)

// Presolve simplifies a problem before the simplex runs:
//
//   - empty rows (no nonzero coefficients) are checked for consistency and
//     dropped;
//   - singleton equality rows (a·x = b) fix their variable, which is then
//     substituted out of every other row and the objective;
//   - variables fixed at zero by singleton LE rows (a·x ≤ 0 with a > 0) are
//     likewise eliminated.
//
// The provisioning LPs contain many such rows (zero-demand slots, forced
// S variables under the latency filter), so presolve meaningfully shrinks
// them. Presolve returns a reduced problem plus a recovery function mapping
// a reduced solution back to the full variable space; it reports
// infeasibility found during reduction via Status.
type Presolved struct {
	// Reduced is the smaller problem; nil when presolve already decided
	// the outcome (Status != Optimal) or nothing remained to solve.
	Reduced *Problem
	// Status is Optimal when a solve of Reduced is still required,
	// otherwise the decided outcome (Infeasible).
	Status Status
	// FixedObjective is the objective contribution of eliminated
	// variables (in the original sense).
	FixedObjective float64

	origVars int
	fixed    []float64 // fixed value per original var, NaN if free
	keepMap  []int     // original var index per reduced column
}

// Presolve reduces the problem. The original problem is not modified.
func Presolve(p *Problem) (*Presolved, error) {
	ps := &Presolved{
		origVars: len(p.obj),
		fixed:    make([]float64, len(p.obj)),
		Status:   Optimal,
	}
	for j := range ps.fixed {
		ps.fixed[j] = math.NaN()
	}

	// Iterate to a fixed point: fixing one variable can create new
	// singleton or empty rows.
	type liveRow struct {
		name string
		cols []int
		vals []float64
		rel  Rel
		rhs  float64
	}
	live := make([]liveRow, 0, len(p.rows))
	for _, r := range p.rows {
		lr := liveRow{name: r.name, rel: r.rel, rhs: r.rhs}
		for _, e := range r.entries {
			lr.cols = append(lr.cols, e.col)
			lr.vals = append(lr.vals, e.val)
		}
		live = append(live, lr)
	}

	const tol = 1e-12
	changed := true
	for changed {
		changed = false
		for i := range live {
			r := &live[i]
			// Drop fixed variables from the row.
			k := 0
			for idx, c := range r.cols {
				if !math.IsNaN(ps.fixed[c]) {
					r.rhs -= r.vals[idx] * ps.fixed[c]
					changed = true
					continue
				}
				r.cols[k] = c
				r.vals[k] = r.vals[idx]
				k++
			}
			r.cols = r.cols[:k]
			r.vals = r.vals[:k]

			switch len(r.cols) {
			case 0:
				// Empty row: must hold trivially.
				ok := true
				switch r.rel {
				case LE:
					ok = r.rhs >= -1e-9
				case GE:
					ok = r.rhs <= 1e-9
				case EQ:
					ok = math.Abs(r.rhs) <= 1e-9
				}
				if !ok {
					ps.Status = Infeasible
					return ps, nil
				}
			case 1:
				a, c := r.vals[0], r.cols[0]
				if math.Abs(a) < tol {
					continue
				}
				v := r.rhs / a
				switch r.rel {
				case EQ:
					if v < -1e-9 {
						ps.Status = Infeasible
						return ps, nil
					}
					if v < 0 {
						v = 0
					}
					ps.fixed[c] = v
					r.cols = r.cols[:0]
					r.rhs = 0
					r.rel = EQ
					changed = true
				case LE:
					// a·x <= b with a > 0 and b <= 0 forces x = 0
					// (x >= 0); b < 0 is infeasible.
					if a > 0 && v <= 1e-12 {
						if v < -1e-9 {
							ps.Status = Infeasible
							return ps, nil
						}
						ps.fixed[c] = 0
						r.cols = r.cols[:0]
						r.rhs = 0
						r.rel = LE
						changed = true
					}
				case GE:
					// a·x >= b with a < 0 means x <= b/a: a negative
					// upper bound is infeasible, a zero one forces
					// x = 0, a positive one is a plain bound we leave
					// to the simplex.
					if a < 0 && v <= 1e-12 {
						if v < -1e-9 {
							ps.Status = Infeasible
							return ps, nil
						}
						ps.fixed[c] = 0
						r.cols = r.cols[:0]
						r.rhs = 0
						r.rel = GE
						changed = true
					}
				}
			}
		}
	}

	// Build the reduced problem over surviving variables and rows.
	reduced := New(p.sense)
	ps.keepMap = make([]int, 0, len(p.obj))
	newIx := make([]int, len(p.obj))
	for j := range p.obj {
		if math.IsNaN(ps.fixed[j]) {
			newIx[j] = reduced.AddVar(p.varNames[j], p.obj[j])
			ps.keepMap = append(ps.keepMap, j)
		} else {
			newIx[j] = -1
			ps.FixedObjective += p.obj[j] * ps.fixed[j]
		}
	}
	for i := range live {
		r := &live[i]
		if len(r.cols) == 0 {
			continue
		}
		cols := make([]int, len(r.cols))
		for k, c := range r.cols {
			cols[k] = newIx[c]
			if cols[k] < 0 {
				return nil, fmt.Errorf("lp: internal presolve error: fixed var survived in row %q", r.name)
			}
		}
		reduced.AddRow(r.name, cols, r.vals, r.rel, r.rhs)
	}
	if reduced.NumVars() > 0 {
		ps.Reduced = reduced
	}
	return ps, nil
}

// Recover maps a reduced-space solution vector back to the original variable
// space, filling in eliminated variables.
func (ps *Presolved) Recover(reducedX []float64) ([]float64, error) {
	if len(reducedX) != len(ps.keepMap) {
		return nil, fmt.Errorf("lp: recover: got %d values, want %d", len(reducedX), len(ps.keepMap))
	}
	x := make([]float64, ps.origVars)
	for j, v := range ps.fixed {
		if !math.IsNaN(v) {
			x[j] = v
		}
	}
	for k, j := range ps.keepMap {
		x[j] = reducedX[k]
	}
	return x, nil
}

// SolvePresolved presolves, solves the reduced problem, and recovers the
// full solution. It behaves like Problem.Solve with an extra reduction step,
// except that Duals are not recovered (eliminated rows have no multipliers
// in the reduced space); use a direct solve when duals are needed.
func SolvePresolved(p *Problem, opts Options) (*Solution, error) {
	ps, err := Presolve(p)
	if err != nil {
		return nil, err
	}
	if ps.Status != Optimal {
		return &Solution{Status: ps.Status}, nil
	}
	if ps.Reduced == nil {
		// Everything was fixed by presolve.
		x, err := ps.Recover(nil)
		if err != nil {
			return nil, err
		}
		if err := p.CheckFeasible(x, 1e-7); err != nil {
			return &Solution{Status: Infeasible}, nil
		}
		return &Solution{Status: Optimal, Objective: ps.FixedObjective, X: x}, nil
	}
	sol, err := ps.Reduced.Solve(opts)
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal {
		return sol, nil
	}
	x, err := ps.Recover(sol.X)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Status:     Optimal,
		Objective:  sol.Objective + ps.FixedObjective,
		X:          x,
		Iterations: sol.Iterations,
	}, nil
}
