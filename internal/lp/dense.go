package lp

import (
	"math"
)

// solveDense runs a two-phase full-tableau simplex on the standardized
// problem. It is the reference backend: O(m·n) per pivot and O(m·n) memory,
// straightforward to audit, and used to cross-validate the revised backend.
func solveDense(s *standard, opts Options) (*Solution, error) {
	m := s.m
	if m == 0 {
		// No constraints: optimum is x = 0 when costs are nonnegative,
		// otherwise unbounded below.
		for _, c := range s.cost {
			if c < -opts.Tol {
				return &Solution{Status: Unbounded}, nil
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, s.nStruct), Duals: nil}, nil
	}

	// Decide which rows get artificial columns: rows whose slack enters
	// with +1 can use the slack as the initial basic variable.
	basis := make([]int, m)
	needArt := make([]bool, m)
	nArt := 0
	for i := 0; i < m; i++ {
		j := s.slackOf[i]
		if j >= 0 && s.colVal[j][0] > 0 {
			basis[i] = j
		} else {
			needArt[i] = true
			nArt++
		}
	}
	nTotal := s.nCols + nArt
	artStart := s.nCols

	// Dense row-major tableau.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, nTotal)
	}
	for j := 0; j < s.nCols; j++ {
		idx, val := s.colIdx[j], s.colVal[j]
		for k, r := range idx {
			a[r][j] = val[k]
		}
	}
	idCol := make([]int, m) // initial identity column per row, for duals
	art := artStart
	for i := 0; i < m; i++ {
		if needArt[i] {
			a[i][art] = 1
			basis[i] = art
			idCol[i] = art
			art++
		} else {
			idCol[i] = basis[i]
		}
	}
	rhs := make([]float64, m)
	copy(rhs, s.b)

	t := &denseTableau{
		a: a, rhs: rhs, basis: basis,
		nTotal: nTotal, artStart: artStart, m: m,
		tol: opts.Tol,
	}

	iters := 0
	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		c1 := make([]float64, nTotal)
		for j := artStart; j < nTotal; j++ {
			c1[j] = 1
		}
		t.setCosts(c1)
		st, n := t.iterate(nTotal, opts.MaxIters)
		iters += n
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: iters}, nil
		}
		if t.objVal() > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: iters}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: minimize the true cost, pricing only non-artificials.
	c2 := make([]float64, nTotal)
	copy(c2, s.cost)
	t.setCosts(c2)
	st, n := t.iterate(artStart, opts.MaxIters)
	iters += n
	switch st {
	case IterLimit, Unbounded:
		return &Solution{Status: st, Iterations: iters}, nil
	}

	x := make([]float64, s.nStruct)
	for i, bj := range t.basis {
		if bj < s.nStruct {
			x[bj] = t.rhs[i]
		}
	}
	// Duals: y_i = c_idCol - z_idCol; initial basic columns have cost 0
	// (slack or artificial), so y_i = -z[idCol[i]].
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		y[i] = c2[idCol[i]] - t.z[idCol[i]]
		if idCol[i] >= artStart {
			y[i] = -t.z[idCol[i]]
		}
	}
	return &Solution{
		Status:     Optimal,
		Objective:  t.objVal(),
		X:          x,
		Duals:      s.recoverDuals(y),
		Iterations: iters,
	}, nil
}

// denseTableau holds the canonical-form tableau B⁻¹A together with the
// reduced-cost row for the current phase.
type denseTableau struct {
	a        [][]float64
	rhs      []float64
	basis    []int
	z        []float64 // reduced costs
	obj      float64   // current objective value (minimization)
	nTotal   int
	artStart int
	m        int
	tol      float64
}

func (t *denseTableau) objVal() float64 { return t.obj }

// setCosts recomputes the reduced-cost row z_j = c_j − c_Bᵀ B⁻¹ a_j for the
// current basis, using the already-canonicalized tableau rows.
func (t *denseTableau) setCosts(c []float64) {
	z := make([]float64, t.nTotal)
	copy(z, c)
	obj := 0.0
	for i, bj := range t.basis {
		cb := c[bj]
		if cb == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			z[j] -= cb * ai[j]
		}
		obj += cb * t.rhs[i]
	}
	t.z = z
	t.obj = obj
}

// iterate pivots until optimal for the current cost row, considering only
// entering columns < priceLimit. It returns a status (Optimal, Unbounded, or
// IterLimit) and the number of pivots performed.
func (t *denseTableau) iterate(priceLimit, maxIters int) (Status, int) {
	iters := 0
	stall := 0
	bland := false
	for ; iters < maxIters; iters++ {
		// Pricing: Dantzig rule normally, Bland's rule under stalling
		// to guarantee termination on degenerate problems.
		q := -1
		if bland {
			for j := 0; j < priceLimit; j++ {
				if t.z[j] < -t.tol {
					q = j
					break
				}
			}
		} else {
			best := -t.tol
			for j := 0; j < priceLimit; j++ {
				if t.z[j] < best {
					best = t.z[j]
					q = j
				}
			}
		}
		if q < 0 {
			return Optimal, iters
		}
		// Ratio test.
		r := -1
		minRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			d := t.a[i][q]
			if d > t.tol {
				ratio := t.rhs[i] / d
				if ratio < minRatio-1e-12 || (bland && ratio < minRatio+1e-12 && (r < 0 || t.basis[i] < t.basis[r])) {
					minRatio = ratio
					r = i
				}
			}
		}
		if r < 0 {
			return Unbounded, iters
		}
		prevObj := t.obj
		t.pivot(r, q)
		if t.obj >= prevObj-1e-12 {
			stall++
			if stall > 2*t.m+20 {
				bland = true
			}
		} else {
			stall = 0
			bland = false
		}
	}
	return IterLimit, iters
}

// pivot makes column q basic in row r by Gauss-Jordan elimination over the
// tableau, the RHS, and the reduced-cost row.
func (t *denseTableau) pivot(r, q int) {
	ar := t.a[r]
	piv := ar[q]
	inv := 1 / piv
	for j := 0; j < t.nTotal; j++ {
		ar[j] *= inv
	}
	ar[q] = 1 // kill roundoff
	t.rhs[r] *= inv
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][q]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.nTotal; j++ {
			ai[j] -= f * ar[j]
		}
		ai[q] = 0
		t.rhs[i] -= f * t.rhs[r]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	f := t.z[q]
	if f != 0 {
		for j := 0; j < t.nTotal; j++ {
			t.z[j] -= f * ar[j]
		}
		t.z[q] = 0
		t.obj += f * t.rhs[r]
	}
	t.basis[r] = q
}

// evictArtificials pivots zero-valued artificial variables out of the basis
// after phase 1 so they cannot re-enter in phase 2. Rows whose every
// non-artificial coefficient is zero are redundant and left untouched: their
// artificial stays basic at zero and can never be selected by a ratio test.
func (t *denseTableau) evictArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.artStart; j++ {
			if math.Abs(ai[j]) > 1e-8 {
				t.pivot(i, j)
				break
			}
		}
	}
}
