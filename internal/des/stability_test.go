package des

import (
	"bytes"
	"testing"
	"time"

	"switchboard/internal/geo"
)

// runTraced executes a fixed 8k-call scenario (with a DC failure, so every
// event kind is exercised) and returns the decision-trace bytes.
func runTraced(t *testing.T, engineSeed, workloadSeed int64) []byte {
	t.Helper()
	w := geo.DefaultWorld()
	src, err := NewSynthSource(w, SynthConfig{Seed: workloadSeed, Calls: 8000})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(w, src.Configs(), 120)
	if err != nil {
		t.Fatal(err)
	}
	cores, gbps := src.ExpectedPeakLoad(f)
	for i := range cores {
		cores[i] *= 1.25
	}
	if err := f.SetCapacity(cores, gbps); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewTrace(&buf, engineSeed, time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC), 10)
	_, err = Run(Config{
		Fleet:     f,
		Source:    src,
		Placement: PowerOfTwo{}, // exercises the policy RNG stream
		Failover:  FixedDetection{Delay: 30 * time.Second},
		Failures:  []DCFailure{{DC: 2, At: 6 * time.Hour, Recover: 8 * time.Hour}},
		Seed:      engineSeed,
		Trace:     tw,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeedStability is the engine's determinism contract: the same seed and
// workload must reproduce the decision trace byte for byte, and a different
// seed must not.
func TestSeedStability(t *testing.T) {
	a := runTraced(t, 77, 7)
	b := runTraced(t, 77, 7)
	if len(a) == 0 {
		t.Fatal("empty decision trace")
	}
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("same seed diverged at byte %d of %d/%d", i, len(a), len(b))
	}
	c := runTraced(t, 78, 7)
	if bytes.Equal(a, c) {
		t.Fatal("different engine seeds produced identical traces")
	}
	d := runTraced(t, 77, 8)
	if bytes.Equal(a, d) {
		t.Fatal("different workload seeds produced identical traces")
	}
}
