package des

import (
	"testing"

	"switchboard/internal/geo"
)

// benchRig builds a fixed 100k-call scenario outside the timed region.
func benchRig(b *testing.B, calls int) Config {
	b.Helper()
	w := geo.DefaultWorld()
	src, err := NewSynthSource(w, SynthConfig{Seed: 5, Calls: calls})
	if err != nil {
		b.Fatal(err)
	}
	f, err := NewFleet(w, src.Configs(), 120)
	if err != nil {
		b.Fatal(err)
	}
	cores, gbps := src.ExpectedPeakLoad(f)
	for i := range cores {
		cores[i] *= 1.25
	}
	if err := f.SetCapacity(cores, gbps); err != nil {
		b.Fatal(err)
	}
	return Config{Fleet: f, Source: src, Placement: LowestACL{}, Seed: 5}
}

// BenchmarkEngine100k measures the full engine loop: ns/op divided by
// 200k events is the per-event cost cmd/sbbench reports as
// core_des_events_per_sec.
func BenchmarkEngine100k(b *testing.B) {
	const calls = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchRig(b, calls)
		b.StartTimer()
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Placed != calls || res.DroppedEvents != 0 {
			b.Fatalf("bad books: %+v", res)
		}
	}
	b.ReportMetric(float64(2*calls), "events/op")
}
