// Package des is Switchboard's deterministic discrete-event simulation
// engine: a shared virtual clock, a binary-heap event queue keyed by
// (time, priority, sequence) for stable tie-breaking, and seeded splitmix64
// RNG streams per entity, so the same seed and workload replay to the byte —
// across runs, machines, and map-iteration shuffles.
//
// Where internal/sim is a call-level replay drill (it walks a pre-sorted
// event list against one provisioning plan), des is a fleet laboratory: it
// models the 12-DC world of internal/geo with per-(config, DC) latency and
// link loads precomputed from internal/model, exposes pluggable policy
// interfaces for placement, admission, and failover timing, injects DC
// failure/recovery events mid-run, and sustains millions of calls per second
// of simulated traffic on one core. The provisioning results in Table 4 of
// the paper come from exactly this kind of trace-against-policy replay at
// production scale.
//
// The engine emits the same decision-trace record format as the live
// controller — internal/obs/span JSONL with the controller's leg names
// (controller.start, controller.persist, kv.HSET, controller.faildc) — so
// cmd/sbtrace renders percentiles, waterfalls, and critical paths from a
// simulated run without modification. Each sampled decision also carries
// counterfactual "what if this call had been placed at DC j" child spans
// with the candidate's ACL and headroom at decision time.
//
// Determinism contract (enforced by the sblint determinism analyzer): no
// wall-clock reads, no global math/rand, no map-iteration-ordered output.
// Virtual time is int64 nanoseconds from a caller-supplied origin; all
// randomness flows from Stream values derived from the run seed.
package des
