package des

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/obs/span"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/sim_spans.jsonl from the canonical scenario")

const (
	simGolden  = "testdata/sim_spans.jsonl"
	liveGolden = "testdata/live_controller_spans.jsonl"
)

// goldenTrace runs the canonical fixture scenario: 400 calls over one
// simulated day, a midday DC outage, 1-in-20 sampling. Small enough to check
// in, rich enough to cover every record shape EmitCall/EmitFailover produce.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	w := geo.DefaultWorld()
	src, err := NewSynthSource(w, SynthConfig{Seed: 11, Calls: 400})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(w, src.Configs(), 120)
	if err != nil {
		t.Fatal(err)
	}
	cores, gbps := src.ExpectedPeakLoad(f)
	for i := range cores {
		cores[i] *= 1.25
	}
	if err := f.SetCapacity(cores, gbps); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewTrace(&buf, 11, time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC), 20)
	_, err = Run(Config{
		Fleet:     f,
		Source:    src,
		Placement: LowestACL{},
		Failover:  FixedDetection{Delay: 30 * time.Second},
		Failures:  []DCFailure{{DC: 0, At: 13 * time.Hour, Recover: 15 * time.Hour}},
		Seed:      11,
		Trace:     tw,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenSimTrace pins the simulated decision trace byte for byte. A
// change here means the on-disk trace format (or the engine's decision
// sequence) moved — regenerate with `go test ./internal/des -run Golden
// -update` and re-check cmd/sbtrace against the new fixture.
func TestGoldenSimTrace(t *testing.T) {
	got := goldenTrace(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(simGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(simGolden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", simGolden, len(got))
		return
	}
	want, err := os.ReadFile(simGolden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("simulated trace diverged from golden at byte %d (got %d bytes, want %d); regenerate with -update if intentional",
			i, len(got), len(want))
	}
}

// readFixture parses a fixture through span.ReadRecords — the same parser
// cmd/sbtrace uses — so the test proves both traces go through the one
// toolchain.
func readFixture(t *testing.T, path string) []span.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	recs, err := span.ReadRecords(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(recs) == 0 {
		t.Fatalf("%s: no records", path)
	}
	return recs
}

// auditRecords applies the structural checks cmd/sbtrace relies on —
// nonzero IDs, resolvable parentage within the trace, at least one root per
// trace, positive durations — and returns the set of leg names.
func auditRecords(t *testing.T, path string, recs []span.Record) map[string]bool {
	t.Helper()
	spansByTrace := map[span.ID]map[span.ID]bool{}
	for _, r := range recs {
		if r.Trace == 0 || r.Span == 0 {
			t.Errorf("%s: record %q has a zero trace/span ID", path, r.Name)
		}
		if r.Duration <= 0 {
			t.Errorf("%s: span %s (%q) has non-positive duration %v", path, r.Span, r.Name, r.Duration)
		}
		m := spansByTrace[r.Trace]
		if m == nil {
			m = map[span.ID]bool{}
			spansByTrace[r.Trace] = m
		}
		m[r.Span] = true
	}
	legs := map[string]bool{}
	roots := map[span.ID]bool{}
	for _, r := range recs {
		legs[r.Name] = true
		if r.Parent == 0 {
			roots[r.Trace] = true
		} else if !spansByTrace[r.Trace][r.Parent] {
			t.Errorf("%s: span %s (%q) references parent %s outside its trace", path, r.Span, r.Name, r.Parent)
		}
	}
	for tr := range spansByTrace {
		if !roots[tr] {
			t.Errorf("%s: trace %s has no root span", path, tr)
		}
	}
	return legs
}

// TestSimTraceParsesLikeLive is the format-compatibility contract: the
// simulated fixture and a span log captured from a live `switchboard
// -span-log` run (testdata/live_controller_spans.jsonl, recorded against the
// real HTTP API) must parse through span.ReadRecords — cmd/sbtrace's reader —
// into structurally identical records, and every controller leg the engine
// synthesizes must be a leg the live controller actually emits, so sbtrace's
// per-leg tables line up across the two.
func TestSimTraceParsesLikeLive(t *testing.T) {
	sim := readFixture(t, simGolden)
	live := readFixture(t, liveGolden)

	simLegs := auditRecords(t, simGolden, sim)
	liveLegs := auditRecords(t, liveGolden, live)

	for _, leg := range []string{"controller.start", "controller.persist", "kv.HSET", "controller.faildc"} {
		if !simLegs[leg] {
			t.Errorf("simulated trace missing live leg %q", leg)
		}
		if !liveLegs[leg] {
			t.Errorf("live fixture missing leg %q (was it captured with the full drive script?)", leg)
		}
	}
	// The engine's own legs are namespaced sim.* so they can never shadow a
	// live leg in a mixed analysis.
	for leg := range simLegs {
		if !liveLegs[leg] && leg != "sim.call" && leg != "sim.whatif" {
			t.Errorf("simulated trace emits leg %q that the live controller does not", leg)
		}
	}

	// Round-trip: marshaling a parsed simulated record reproduces every field
	// of its input line (attr order is canonicalized by the parser, so the
	// comparison is on JSON values, not bytes).
	raw, err := os.ReadFile(simGolden)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	if len(lines) != len(sim) {
		t.Fatalf("fixture has %d lines but parsed to %d records", len(lines), len(sim))
	}
	for i, r := range sim {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var got, want map[string]any
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(lines[i], &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d does not round-trip:\n got %s\nwant %s", i, b, lines[i])
		}
	}
}
